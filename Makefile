.PHONY: check test bench

check:
	./scripts/check.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...
