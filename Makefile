.PHONY: check test bench

check:
	./scripts/check.sh

test:
	go test ./...

bench:
	./scripts/bench.sh snapshot
