// Package repro's root benchmark suite: one benchmark per evaluation
// table/figure (see DESIGN.md's experiment index). Each benchmark runs the
// corresponding experiment end-to-end in Quick mode — whole simulated
// networks per iteration — so `go test -bench=. -benchmem` regenerates a
// compact version of the entire evaluation and reports its cost.
package repro

import (
	"io"
	"testing"
	"time"

	"repro/internal/citysim"
	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/span"
)

// benchExperiment runs the experiment with the given id once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	spec, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := spec.Run(experiments.Options{Seed: int64(i%4 + 1), Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		if _, err := res.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1MeshFormation(b *testing.B)   { benchExperiment(b, "E1") }
func BenchmarkE2PacketCodec(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3Convergence(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE4Overhead(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5Delivery(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6LargePayload(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7Baseline(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8DutyCycle(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Density(b *testing.B)         { benchExperiment(b, "E9") }
func BenchmarkE10Repair(b *testing.B)         { benchExperiment(b, "E10") }
func BenchmarkE11GatewayUplink(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12ChaosMatrix(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13Security(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14Observer(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15CityMesh(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16SelfHealing(b *testing.B)    { benchExperiment(b, "E16") }
func BenchmarkE17Ingest(b *testing.B)         { benchExperiment(b, "E17") }
func BenchmarkA1SplitHorizon(b *testing.B)    { benchExperiment(b, "A1") }
func BenchmarkA2HelloPeriod(b *testing.B)     { benchExperiment(b, "A2") }
func BenchmarkA3ARQWindow(b *testing.B)       { benchExperiment(b, "A3") }
func BenchmarkA4SpreadingFactor(b *testing.B) { benchExperiment(b, "A4") }
func BenchmarkA5CAD(b *testing.B)             { benchExperiment(b, "A5") }
func BenchmarkX1Energy(b *testing.B)          { benchExperiment(b, "X1") }
func BenchmarkX2Sleep(b *testing.B)           { benchExperiment(b, "X2") }
func BenchmarkX3Mobility(b *testing.B)        { benchExperiment(b, "X3") }
func BenchmarkX4SNRRouting(b *testing.B)      { benchExperiment(b, "X4") }
func BenchmarkX5Partition(b *testing.B)       { benchExperiment(b, "X5") }
func BenchmarkX6Reactive(b *testing.B)        { benchExperiment(b, "X6") }
func BenchmarkX7Strategies(b *testing.B)      { benchExperiment(b, "X7") }

// benchCity runs one city simulation per iteration: the same 2000-node
// telemetry workload on the serial reference executor and on four shards.
// The committed snapshot pair is the scale gate's paper trail — the
// sharded executor must hold at least a 2x events/sec advantage (in
// practice far more; the win is algorithmic, not goroutine parallelism).
func benchCity(b *testing.B, shards int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := citysim.New(citysim.Config{Nodes: 2000, Shards: shards, Seed: int64(i%4 + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(2 * time.Minute); err != nil {
			b.Fatal(err)
		}
		if st := sim.Stats(); st.FramesDelivered == 0 {
			b.Fatalf("no deliveries: %+v", st)
		}
	}
}

func BenchmarkE15CitySerial(b *testing.B)  { benchCity(b, 0) }
func BenchmarkE15CityShards4(b *testing.B) { benchCity(b, 4) }

// benchX7Strategy runs one forwarding strategy on the 2000-node city
// workload per iteration. The committed snapshot pair prices the
// strategy-API dispatch at scale: the ICN engine (content store, PIT,
// per-cell strategy state) against the proactive default — a regression
// in either strategy's city-engine handlers shows up here, not just in
// the X7 table.
func benchX7Strategy(b *testing.B, strategy string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := citysim.New(citysim.Config{
			Nodes: 2000, Shards: 2, Seed: int64(i%4 + 1), Strategy: strategy,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(2 * time.Minute); err != nil {
			b.Fatal(err)
		}
		if st := sim.Stats(); st.FramesDelivered == 0 {
			b.Fatalf("no deliveries: %+v", st)
		}
	}
}

func BenchmarkX7CityProactive(b *testing.B) { benchX7Strategy(b, "proactive") }
func BenchmarkX7CityICN(b *testing.B)       { benchX7Strategy(b, "icn") }

// benchIngest runs one ingest load pass per iteration against a live
// HTTP backend with a simulated round trip. The committed snapshot pair
// is the ingest gate's paper trail: the pipelined configuration must
// hold its lead over serial — a regression in sharding, group commit,
// or the uplink window shows up here as the pair converging.
func benchIngest(b *testing.B, cfg gateway.LoadConfig) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run := cfg
		run.SpoolDir = b.TempDir()
		run.Seed = int64(i%4 + 1)
		rep, err := gateway.RunLoad(run)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.ExactlyOnce() {
			b.Fatalf("delivery not exactly-once: %s", rep)
		}
	}
}

func BenchmarkE17IngestSerial(b *testing.B) {
	benchIngest(b, gateway.LoadConfig{
		Readings: 4000, Origins: 64, BatchSize: 64,
		BackendLatency: 5 * time.Millisecond,
	})
}

func BenchmarkE17IngestPipelined(b *testing.B) {
	benchIngest(b, gateway.LoadConfig{
		Readings: 4000, Origins: 64, BatchSize: 64,
		Shards: 4, Pipeline: 4, GroupCommit: 2 * time.Millisecond,
		BackendLatency: 5 * time.Millisecond,
	})
}

// BenchmarkSpanRecordNoSink is the observer's hot-path guard: recording
// a span segment with no trace sink attached must stay allocation-free
// (the bench gate compares ns/op; the hard 0 allocs/op assertion lives
// in internal/span's TestRecordNoSinkZeroAlloc).
func BenchmarkSpanRecordNoSink(b *testing.B) {
	r := span.NewRecorder(8192)
	at := time.Unix(0, 0)
	node := "0001"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(at, node, 42, span.SegAirtime, 70*time.Millisecond, "DATA")
	}
	if r.Total() == 0 {
		b.Fatal("recorder captured nothing")
	}
}

// TestAllExperimentsQuick runs every experiment once in Quick mode so the
// full evaluation pipeline stays green under `go test`.
func TestAllExperimentsQuick(t *testing.T) {
	for _, spec := range experiments.All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			res, err := spec.Run(experiments.Options{Seed: 1, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("no rows produced")
			}
			if res.ID != spec.ID {
				t.Errorf("result id %q != spec id %q", res.ID, spec.ID)
			}
		})
	}
}
