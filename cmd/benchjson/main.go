// benchjson turns `go test -bench` output into a committed, diffable
// JSON snapshot and compares two snapshots for regressions. It is the
// evidence layer behind scripts/bench.sh: the repo commits a
// BENCH_baseline.json, every optimization PR commits its post-change
// snapshot next to it, and CI re-runs the comparison so a speedup (or a
// regression) is recorded in-tree rather than asserted in a PR body.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson parse -label opt -out BENCH_opt.json
//	benchjson compare -baseline BENCH_baseline.json -current BENCH_opt.json
//
// parse reads benchmark lines ("BenchmarkE3Convergence-8  4  1379235 ns/op
// 448208 B/op  4472 allocs/op") from stdin or -in and emits one JSON
// document with per-benchmark ns/op, B/op, allocs/op plus host metadata.
//
// compare loads two snapshots and fails (exit 1) when any benchmark
// present in both regressed by more than -threshold (default 0.15, i.e.
// 15%) on ns/op or allocs/op. Benchmarks present on only one side are
// reported but never fail the run, so adding or retiring a benchmark
// does not require regenerating the baseline in the same commit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measured cost.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the whole BENCH_<label>.json document.
type Snapshot struct {
	Label      string      `json:"label"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "parse":
		err = runParse(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchjson parse   -label <name> [-in bench.txt] [-out BENCH_<label>.json]
  benchjson compare -baseline BENCH_a.json -current BENCH_b.json [-threshold 0.15]`)
}

func runParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	label := fs.String("label", "snapshot", "snapshot label (BENCH_<label>.json)")
	in := fs.String("in", "", "benchmark output to read (default stdin)")
	out := fs.String("out", "", "file to write (default BENCH_<label>.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	benches, err := ParseBench(r)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	snap := Snapshot{
		Label:      *label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Benchmarks: benches,
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", path, len(benches))
	return nil
}

// ParseBench extracts benchmark result lines from `go test -bench` output.
// The trailing -<procs> suffix is stripped from names so snapshots taken
// at different GOMAXPROCS still compare benchmark-to-benchmark.
func ParseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-N  iters  X ns/op  [Y B/op  Z allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: name, Iterations: iters}
		if b.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			continue
		}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func loadSnapshot(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline snapshot (required)")
	curPath := fs.String("current", "", "current snapshot (required)")
	threshold := fs.Float64("threshold", 0.15, "max allowed fractional regression on ns/op or allocs/op")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *curPath == "" {
		return fmt.Errorf("compare needs -baseline and -current")
	}
	base, err := loadSnapshot(*basePath)
	if err != nil {
		return err
	}
	cur, err := loadSnapshot(*curPath)
	if err != nil {
		return err
	}
	report, failures := Compare(base, cur, *threshold)
	fmt.Print(report)
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", failures, *threshold*100)
	}
	return nil
}

// Compare renders a per-benchmark delta table and counts benchmarks whose
// ns/op or allocs/op regressed beyond the threshold. Totals across the
// shared benchmark set come last, so the suite-level speedup the
// acceptance criteria track is part of the committed evidence.
func Compare(base, cur *Snapshot, threshold float64) (string, int) {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "comparing %q (base) vs %q (current), threshold %.0f%%\n",
		base.Label, cur.Label, threshold*100)
	fmt.Fprintf(&sb, "%-28s %14s %14s %8s %10s\n", "benchmark", "base ns/op", "cur ns/op", "Δns", "Δallocs")

	failures := 0
	var baseNs, curNs, baseAllocs, curAllocs float64
	seen := make(map[string]bool)
	for _, c := range cur.Benchmarks {
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-28s %14s %14.0f   (new benchmark, not compared)\n", c.Name, "-", c.NsPerOp)
			continue
		}
		seen[c.Name] = true
		baseNs += b.NsPerOp
		curNs += c.NsPerOp
		baseAllocs += b.AllocsPerOp
		curAllocs += c.AllocsPerOp
		dNs := frac(b.NsPerOp, c.NsPerOp)
		dAllocs := frac(b.AllocsPerOp, c.AllocsPerOp)
		mark := ""
		if dNs > threshold || dAllocs > threshold {
			mark = "  REGRESSION"
			failures++
		}
		fmt.Fprintf(&sb, "%-28s %14.0f %14.0f %7.1f%% %9.1f%%%s\n",
			c.Name, b.NsPerOp, c.NsPerOp, dNs*100, dAllocs*100, mark)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(&sb, "%-28s %14.0f %14s   (missing from current, not compared)\n", b.Name, b.NsPerOp, "-")
		}
	}
	if baseNs > 0 {
		fmt.Fprintf(&sb, "total (shared set): ns/op %.0f -> %.0f (%.2fx)", baseNs, curNs, safeRatio(baseNs, curNs))
		if baseAllocs > 0 {
			fmt.Fprintf(&sb, ", allocs/op %.0f -> %.0f (%.2fx)", baseAllocs, curAllocs, safeRatio(baseAllocs, curAllocs))
		}
		sb.WriteByte('\n')
	}
	return sb.String(), failures
}

// frac is the fractional regression of cur vs base (positive = slower).
func frac(base, cur float64) float64 {
	if base <= 0 {
		return 0
	}
	return (cur - base) / base
}

func safeRatio(base, cur float64) float64 {
	if cur <= 0 {
		return 0
	}
	return base / cur
}
