// meshbench regenerates the evaluation's tables and figures. Each
// experiment (E1–E10) and ablation (A1–A5) maps to one table/figure in
// DESIGN.md's experiment index; EXPERIMENTS.md records the expected
// shapes.
//
// Usage:
//
//	meshbench              # run every experiment
//	meshbench -exp E5,E7   # run selected experiments
//	meshbench -quick       # reduced sweeps (CI-sized)
//	meshbench -seed 7      # different random seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "reduced sweeps and durations")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "table", "table | csv | json")
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-4s %s\n", s.ID, s.Title)
		}
		return
	}

	var specs []experiments.Spec
	if *exp == "" {
		specs = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			s, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "meshbench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			specs = append(specs, s)
		}
	}

	opt := experiments.Options{Seed: *seed, Quick: *quick}
	failed := 0
	for _, s := range specs {
		start := time.Now()
		res, err := s.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshbench: %s failed: %v\n", s.ID, err)
			failed++
			continue
		}
		var werr error
		switch *format {
		case "table":
			_, werr = res.WriteTo(os.Stdout)
		case "csv":
			werr = res.WriteCSV(os.Stdout)
		case "json":
			werr = res.WriteJSON(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "meshbench: unknown format %q\n", *format)
			os.Exit(1)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "meshbench: writing %s: %v\n", s.ID, werr)
			failed++
			continue
		}
		if *format == "table" {
			fmt.Printf("(%s completed in %v wall time)\n\n", s.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
