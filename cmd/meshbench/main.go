// meshbench regenerates the evaluation's tables and figures. Each
// experiment (E1–E11) and ablation (A1–A5) maps to one table/figure in
// DESIGN.md's experiment index; EXPERIMENTS.md records the expected
// shapes.
//
// Usage:
//
//	meshbench              # run every experiment
//	meshbench -exp E5,E7   # run selected experiments
//	meshbench -quick       # reduced sweeps (CI-sized)
//	meshbench -seed 7      # different random seed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// options collects everything a run needs; flags map onto it 1:1.
type options struct {
	exp    string
	quick  bool
	seed   int64
	list   bool
	format string
}

func main() {
	var o options
	flag.StringVar(&o.exp, "exp", "", "comma-separated experiment ids (default: all)")
	flag.BoolVar(&o.quick, "quick", false, "reduced sweeps and durations")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.BoolVar(&o.list, "list", false, "list experiment ids and exit")
	flag.StringVar(&o.format, "format", "table", "table | csv | json")
	flag.Parse()
	if err := run(os.Stdout, os.Stderr, o); err != nil {
		fmt.Fprintf(os.Stderr, "meshbench: %v\n", err)
		os.Exit(1)
	}
}

func run(w, ew io.Writer, o options) error {
	if o.list {
		for _, s := range experiments.All() {
			fmt.Fprintf(w, "%-4s %s\n", s.ID, s.Title)
		}
		return nil
	}

	var specs []experiments.Spec
	if o.exp == "" {
		specs = experiments.All()
	} else {
		for _, id := range strings.Split(o.exp, ",") {
			s, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			specs = append(specs, s)
		}
	}

	opt := experiments.Options{Seed: o.seed, Quick: o.quick}
	failed := 0
	for _, s := range specs {
		start := time.Now()
		res, err := s.Run(opt)
		if err != nil {
			fmt.Fprintf(ew, "meshbench: %s failed: %v\n", s.ID, err)
			failed++
			continue
		}
		var werr error
		switch o.format {
		case "table":
			_, werr = res.WriteTo(w)
		case "csv":
			werr = res.WriteCSV(w)
		case "json":
			werr = res.WriteJSON(w)
		default:
			return fmt.Errorf("unknown format %q", o.format)
		}
		if werr != nil {
			fmt.Fprintf(ew, "meshbench: writing %s: %v\n", s.ID, werr)
			failed++
			continue
		}
		if o.format == "table" {
			fmt.Fprintf(w, "(%s completed in %v wall time)\n\n", s.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
