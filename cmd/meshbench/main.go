// meshbench regenerates the evaluation's tables and figures. Each
// experiment (E1–E11) and ablation (A1–A5) maps to one table/figure in
// DESIGN.md's experiment index; EXPERIMENTS.md records the expected
// shapes.
//
// Usage:
//
//	meshbench              # run every experiment
//	meshbench -exp E5,E7   # run selected experiments
//	meshbench -quick       # reduced sweeps (CI-sized)
//	meshbench -seed 7      # different random seed
//	meshbench -parallel 4  # sweep-point workers (0 = GOMAXPROCS)
//	meshbench -cpuprofile meshbench.prof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/forward"
	"repro/internal/meshsec"
)

// options collects everything a run needs; flags map onto it 1:1.
type options struct {
	exp        string
	quick      bool
	seed       int64
	list       bool
	format     string
	parallel   int
	nodes      int
	shards     int
	strategy   string
	cpuprofile string
	// seckey, 32 hex digits, replaces the built-in network key in the
	// security-aware experiments (E13).
	seckey string
}

func main() {
	var o options
	flag.StringVar(&o.exp, "exp", "", "comma-separated experiment ids (default: all)")
	flag.BoolVar(&o.quick, "quick", false, "reduced sweeps and durations")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.BoolVar(&o.list, "list", false, "list experiment ids and exit")
	flag.StringVar(&o.format, "format", "table", "table | csv | json")
	flag.IntVar(&o.parallel, "parallel", 0,
		"worker goroutines per sweep (0 = GOMAXPROCS, 1 = serial); tables are identical at any setting")
	flag.IntVar(&o.nodes, "nodes", 0, "override the city-scale experiment's node sweep with one size (E15)")
	flag.IntVar(&o.shards, "shards", 0, "restrict the city-scale experiment to this shard count (E15; 0 = default sweep)")
	flag.StringVar(&o.strategy, "strategy", "", "restrict X7's city section to one forwarding strategy (proactive | reactive | icn | slotted)")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.seckey, "seckey", "", "network key as 32 hex digits for the security experiments (default: built-in key)")
	flag.Parse()
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "meshbench: %v\n", err)
			os.Exit(1)
		}
	}
	err := run(os.Stdout, os.Stderr, o)
	if o.cpuprofile != "" {
		// Flushed explicitly: os.Exit below would skip a deferred stop.
		pprof.StopCPUProfile()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshbench: %v\n", err)
		os.Exit(1)
	}
}

func run(w, ew io.Writer, o options) error {
	if o.list {
		for _, s := range experiments.All() {
			fmt.Fprintf(w, "%-4s %s\n", s.ID, s.Title)
		}
		return nil
	}

	var specs []experiments.Spec
	if o.exp == "" {
		specs = experiments.All()
	} else {
		for _, id := range strings.Split(o.exp, ",") {
			s, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			specs = append(specs, s)
		}
	}

	if o.strategy != "" {
		if _, err := forward.ParseKind(o.strategy); err != nil {
			return err
		}
	}
	opt := experiments.Options{Seed: o.seed, Quick: o.quick, Parallel: o.parallel,
		Nodes: o.nodes, Shards: o.shards, Strategy: o.strategy}
	if o.seckey != "" {
		key, err := meshsec.ParseKey(o.seckey)
		if err != nil {
			return err
		}
		opt.SecKey = &key
	}
	failed := 0
	for _, s := range specs {
		start := time.Now()
		res, err := s.Run(opt)
		if err != nil {
			fmt.Fprintf(ew, "meshbench: %s failed: %v\n", s.ID, err)
			failed++
			continue
		}
		var werr error
		switch o.format {
		case "table":
			_, werr = res.WriteTo(w)
		case "csv":
			werr = res.WriteCSV(w)
		case "json":
			werr = res.WriteJSON(w)
		default:
			return fmt.Errorf("unknown format %q", o.format)
		}
		if werr != nil {
			fmt.Fprintf(ew, "meshbench: writing %s: %v\n", s.ID, werr)
			failed++
			continue
		}
		if o.format == "table" {
			fmt.Fprintf(w, "(%s completed in %v wall time)\n\n", s.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
