package main

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

// TestMeshbenchSmoke runs one fast experiment end to end in every output
// format and checks each rendering is well-formed.
func TestMeshbenchSmoke(t *testing.T) {
	// E2 computes packet formats analytically; no simulation, so the
	// smoke test stays fast.
	base := options{exp: "E2", quick: true, seed: 1}

	t.Run("table", func(t *testing.T) {
		var out, errOut strings.Builder
		o := base
		o.format = "table"
		if err := run(&out, &errOut, o); err != nil {
			t.Fatalf("run: %v\n%s", err, errOut.String())
		}
		s := out.String()
		for _, want := range []string{"== E2:", "DATA", "completed in"} {
			if !strings.Contains(s, want) {
				t.Errorf("table output missing %q:\n%s", want, s)
			}
		}
	})

	t.Run("csv", func(t *testing.T) {
		var out, errOut strings.Builder
		o := base
		o.format = "csv"
		if err := run(&out, &errOut, o); err != nil {
			t.Fatalf("run: %v\n%s", err, errOut.String())
		}
		cr := csv.NewReader(strings.NewReader(out.String()))
		cr.FieldsPerRecord = -1
		recs, err := cr.ReadAll()
		if err != nil {
			t.Fatalf("output is not valid CSV: %v\n%s", err, out.String())
		}
		// Comment row, header row, and at least one data row.
		if len(recs) < 3 || recs[0][0] != "# E2" {
			t.Fatalf("unexpected CSV shape: %v", recs)
		}
		if len(recs[2]) != len(recs[1]) {
			t.Fatalf("data row width %d != header width %d", len(recs[2]), len(recs[1]))
		}
	})

	t.Run("json", func(t *testing.T) {
		var out, errOut strings.Builder
		o := base
		o.format = "json"
		if err := run(&out, &errOut, o); err != nil {
			t.Fatalf("run: %v\n%s", err, errOut.String())
		}
		var doc struct {
			ID     string     `json:"id"`
			Header []string   `json:"header"`
			Rows   [][]string `json:"rows"`
		}
		if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
			t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
		}
		if doc.ID != "E2" || len(doc.Header) == 0 || len(doc.Rows) == 0 {
			t.Fatalf("unexpected JSON document: %+v", doc)
		}
	})
}

func TestMeshbenchList(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(&out, &errOut, options{list: true}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E1", "E11", "A1", "X1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list missing %s", want)
		}
	}
}

func TestMeshbenchUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(&out, &errOut, options{exp: "E99"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	if err := run(&out, &errOut, options{exp: "E2", format: "yaml"}); err == nil {
		t.Fatal("unknown format must fail")
	}
}

// TestMeshbenchSecKey checks the -seckey plumbing: a valid key reaches
// the security experiment, a malformed one fails before any experiment
// runs.
func TestMeshbenchSecKey(t *testing.T) {
	var out, errOut strings.Builder
	o := options{exp: "E13", quick: true, seed: 1, format: "table",
		seckey: "000102030405060708090a0b0c0d0e0f"}
	if err := run(&out, &errOut, o); err != nil {
		t.Fatalf("run: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "== E13:") {
		t.Errorf("output missing the E13 table:\n%s", out.String())
	}

	o.seckey = "tooshort"
	if err := run(&out, &errOut, o); err == nil {
		t.Fatal("malformed -seckey must fail")
	}
}

// TestMeshbenchStrategyFlag pins the -strategy override: X7's city
// section collapses to the one named strategy, and malformed values fail
// before any experiment runs.
func TestMeshbenchStrategyFlag(t *testing.T) {
	var out, errOut strings.Builder
	o := options{exp: "X7", quick: true, seed: 1, format: "csv",
		nodes: 300, shards: 2, strategy: "icn"}
	if err := run(&out, &errOut, o); err != nil {
		t.Fatalf("run: %v\n%s", err, errOut.String())
	}
	cr := csv.NewReader(strings.NewReader(out.String()))
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v\n%s", err, out.String())
	}
	var city [][]string
	for _, rec := range recs[2:] {
		if len(rec) > 1 && strings.HasPrefix(rec[1], "citysim") {
			city = append(city, rec)
		}
	}
	if len(city) != 1 || city[0][0] != "icn" {
		t.Errorf("want exactly one icn city row, got %v", city)
	}

	o.strategy = "bogus"
	if err := run(&out, &errOut, o); err == nil || !strings.Contains(err.Error(), `unknown strategy "bogus"`) {
		t.Errorf("malformed -strategy: got %v, want unknown-strategy error", err)
	}
}

// TestMeshbenchCityFlags pins the -nodes/-shards overrides: E15 collapses
// to one size with a serial baseline plus the requested shard count.
func TestMeshbenchCityFlags(t *testing.T) {
	var out, errOut strings.Builder
	o := options{exp: "E15", quick: true, seed: 1, format: "csv", nodes: 300, shards: 2}
	if err := run(&out, &errOut, o); err != nil {
		t.Fatalf("run: %v\n%s", err, errOut.String())
	}
	cr := csv.NewReader(strings.NewReader(out.String()))
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v\n%s", err, out.String())
	}
	// Comment, header, then exactly two rows: serial and 2-shard.
	if len(recs) != 4 {
		t.Fatalf("want 2 data rows, got %d: %v", len(recs)-2, recs)
	}
	if recs[2][0] != "300" || recs[2][1] != "serial" {
		t.Errorf("first row not the 300-node serial baseline: %v", recs[2])
	}
	if recs[3][1] != "2-shard" {
		t.Errorf("second row not the 2-shard run: %v", recs[3])
	}
	// The digest column (last) is the determinism witness across rows.
	if d0, d1 := recs[2][len(recs[2])-1], recs[3][len(recs[3])-1]; d0 != d1 {
		t.Errorf("digest diverged between executors: %s vs %s", d0, d1)
	}
}
