// meshgw demonstrates the full store-and-forward bridge on real sockets:
// it boots an in-process UDP mesh chain, attaches a gateway to the sink
// node, and drains field telemetry into an uplink backend — the embedded
// test backend by default, or any external collector via -url.
//
// Usage examples:
//
//	meshgw                          # 4-node chain, embedded backend
//	meshgw -n 6 -count 10           # 10 readings per source, then exit
//	meshgw -url http://host:9000/up # uplink to an external backend
//	meshgw -spool gw.wal            # durable spool, survives restarts
//	meshgw -metrics 127.0.0.1:9100  # serve gateway metrics + health
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/udpnet"
)

// options collects everything a run needs; flags map onto it 1:1.
type options struct {
	n         int
	url       string
	spool     string
	batch     int
	flush     time.Duration
	interval  time.Duration
	count     int
	duration  time.Duration
	timescale float64
	hello     time.Duration
	metrics   string
	downlink  bool
	// controlFile loads a desired-state document (JSON); the gateway's
	// sink node runs the self-healing controller against it, reconciling
	// the live UDP mesh over the same downlink path readings ride up.
	controlFile string
}

func main() {
	var o options
	flag.IntVar(&o.n, "n", 4, "nodes in the chain (node 1 is the sink gateway)")
	flag.StringVar(&o.url, "url", "", "backend uplink URL (empty: start the embedded backend)")
	flag.StringVar(&o.spool, "spool", "", "WAL spool path (empty: in-memory only)")
	flag.IntVar(&o.batch, "batch", 8, "uplink batch size")
	flag.DurationVar(&o.flush, "flush", 2*time.Second, "uplink flush interval")
	flag.DurationVar(&o.interval, "interval", time.Second, "reading interval per source node")
	flag.IntVar(&o.count, "count", 5, "readings per source (0: run for -duration)")
	flag.DurationVar(&o.duration, "duration", 30*time.Second, "run time when -count is 0; drain timeout otherwise")
	flag.Float64Var(&o.timescale, "timescale", 50, "protocol time compression")
	flag.DurationVar(&o.hello, "hello", 2*time.Second, "HELLO beacon period (protocol time)")
	flag.StringVar(&o.metrics, "metrics", "", "serve gateway /metrics and /healthz on this address")
	flag.BoolVar(&o.downlink, "downlink", true, "demonstrate a backend->mesh downlink command")
	flag.StringVar(&o.controlFile, "control", "", "reconcile the mesh toward this desired-state JSON document (controller at the sink)")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintf(os.Stderr, "meshgw: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o options) error {
	if o.n < 2 {
		return fmt.Errorf("need at least 2 nodes, got %d", o.n)
	}

	// Backend: embedded unless an external URL is given.
	var backend *gateway.Backend
	url := o.url
	if url == "" {
		backend = gateway.NewBackend()
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: backend}
		go srv.Serve(lis)
		defer srv.Close()
		url = "http://" + lis.Addr().String() + "/uplink"
		fmt.Fprintf(w, "embedded backend listening on %s\n", url)
	}

	// The mesh: a chain of UDP hosts on localhost, adjacent peers only,
	// so traffic from the far end really multi-hops to the sink.
	hosts := make([]*udpnet.Host, o.n)
	for i := range hosts {
		h, err := udpnet.Start(udpnet.Config{
			Listen: "127.0.0.1:0",
			Node: core.Config{
				Address:        packet.Address(i + 1),
				HelloPeriod:    o.hello,
				DutyCycleLimit: 1,
				Routing:        routing.Config{EntryTTL: 15 * o.hello},
			},
			TimeScale: o.timescale,
			Seed:      int64(i + 1),
		})
		if err != nil {
			return err
		}
		hosts[i] = h
		defer h.Close()
	}
	for i := 0; i < o.n-1; i++ {
		if err := hosts[i].AddPeer(hosts[i+1].Addr().String()); err != nil {
			return err
		}
		if err := hosts[i+1].AddPeer(hosts[i].Addr().String()); err != nil {
			return err
		}
	}
	sink := hosts[0]
	fmt.Fprintf(w, "mesh: %d-node chain, sink %v at %s\n", o.n, sink.MeshAddress(), sink.Addr())

	// The gateway rides on the sink.
	g, err := gateway.New(gateway.Config{
		URL:           url,
		SpoolPath:     o.spool,
		BatchSize:     o.batch,
		FlushInterval: o.flush,
		RetryBase:     500 * time.Millisecond,
		RetryMax:      10 * time.Second,
	})
	if err != nil {
		return err
	}
	gateway.AttachHost(sink, g)
	g.Start()
	defer g.Close()

	if o.metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(g.Metrics))
		mux.Handle("/healthz", metrics.HealthHandler(func() map[string]any {
			return map[string]any{
				"pending": g.Pending(),
				"breaker": g.BreakerOpen(),
			}
		}))
		lis, err := net.Listen("tcp", o.metrics)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(lis)
		defer srv.Close()
		fmt.Fprintf(w, "gateway metrics on http://%s/metrics\n", lis.Addr())
	}

	// Wait for routes so the first readings aren't dropped on the floor.
	deadline := time.Now().Add(o.duration)
	for {
		ok := true
		for _, h := range hosts[1:] {
			if !h.HasRoute(sink.MeshAddress()) {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mesh did not converge within %v", o.duration)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Fprintf(w, "mesh converged; %d sources reporting every %v\n", o.n-1, o.interval)

	// The self-healing controller rides the sink like the gateway does:
	// commands go out as ordinary downlink datagrams, and acks come back
	// as deliveries — intercepted in front of the gateway's uplink hook
	// so a control report is never spooled to the backend as telemetry.
	var ctl *control.Controller
	if o.controlFile != "" {
		desired, err := control.LoadFile(o.controlFile)
		if err != nil {
			return err
		}
		addrs := make([]packet.Address, o.n)
		for i := range addrs {
			addrs[i] = hosts[i].MeshAddress()
		}
		ctl, err = control.New(control.Config{
			State: desired,
			Nodes: addrs,
			Self:  sink.MeshAddress(),
			Send: func(to packet.Address, payload []byte, reliable bool) error {
				if reliable {
					_, err := sink.SendReliable(to, payload)
					return err
				}
				return sink.Send(to, payload)
			},
			Local: func(cmd control.Command) control.Report {
				var rep control.Report
				sink.Do(func(n *core.Node) { rep = n.ApplyControl(cmd) })
				return rep
			},
			// The chain's rollout distance is its hop count from the
			// sink, which address order encodes.
			Distance: func(a packet.Address) float64 { return float64(a) },
			// Wall-clock pacing: the controller is outside the mesh's
			// compressed protocol time, like a real operator's would be.
			PollInterval:  250 * time.Millisecond,
			RetryInterval: 2 * time.Second,
			Cooldown:      30 * time.Second,
		})
		if err != nil {
			return err
		}
		sink.SetOnMessage(func(m core.AppMessage) {
			if control.IsReport(m.Payload) && ctl.ObserveReport(time.Now(), m.From, m.Payload) {
				return
			}
			g.OfferMessage(m)
		})
		ctlStop := make(chan struct{})
		defer close(ctlStop)
		go func() {
			tick := time.NewTicker(ctl.PollInterval())
			defer tick.Stop()
			for {
				select {
				case <-ctlStop:
					return
				case now := <-tick.C:
					ctl.Poll(now)
				}
			}
		}()
		fmt.Fprintf(w, "controller reconciling toward %s (state version %d)\n", o.controlFile, desired.Version)
	}

	// Sources: every non-sink node emits readings toward the sink.
	stop := make(chan struct{})
	for idx, h := range hosts[1:] {
		go func(idx int, h *udpnet.Host) {
			tick := time.NewTicker(o.interval)
			defer tick.Stop()
			for i := 0; o.count == 0 || i < o.count; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				payload := []byte(fmt.Sprintf("node%d reading %d", idx+1, i))
				if err := h.Send(sink.MeshAddress(), payload); err != nil {
					fmt.Fprintf(w, "send from %v: %v\n", h.MeshAddress(), err)
				}
			}
		}(idx, h)
	}
	defer close(stop)

	// The reverse path: queue a command for the far end of the chain; it
	// rides back in an uplink response and re-enters the mesh at the sink.
	far := hosts[o.n-1]
	if o.downlink && backend != nil {
		backend.PushDownlink(gateway.Downlink{
			To: far.MeshAddress(), Payload: []byte("downlink ping"),
		})
	}

	// Run: either until every counted reading is uplinked, or for the
	// fixed duration.
	want := (o.n - 1) * o.count
	if o.count > 0 && backend != nil {
		for backend.Distinct() < want && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		// One more flush window so trailing partial batches depart.
		time.Sleep(o.flush + 200*time.Millisecond)
	} else {
		time.Sleep(time.Until(deadline))
	}

	// Report.
	reg := g.Metrics()
	fmt.Fprintf(w, "\ngateway: offered %d, uplinked %d readings in %d batches, %d failures, pending %d\n",
		reg.Counter("gw.offered").Value(), reg.Counter("gw.uplink.readings").Value(),
		reg.Counter("gw.uplink.batches").Value(), reg.Counter("gw.uplink.failures").Value(),
		g.Pending())
	if backend != nil {
		fmt.Fprintf(w, "backend: %d distinct readings, %d duplicates, %d batches\n",
			backend.Distinct(), backend.Duplicates(), backend.Batches())
		for _, h := range hosts[1:] {
			fmt.Fprintf(w, "  from %v: %d readings\n", h.MeshAddress(), len(backend.FromAddr(h.MeshAddress())))
		}
		if o.count > 0 && backend.Distinct() < want {
			return fmt.Errorf("only %d/%d readings uplinked before the deadline", backend.Distinct(), want)
		}
	}
	if o.downlink && backend != nil {
		got := false
		for _, m := range far.Messages() {
			if string(m.Payload) == "downlink ping" {
				got = true
				break
			}
		}
		fmt.Fprintf(w, "downlink to %v delivered: %v\n", far.MeshAddress(), got)
	}
	if ctl != nil {
		snap := ctl.Metrics().Snapshot()
		state := "still reconciling"
		if ctl.Converged() {
			state = "converged"
		}
		fmt.Fprintf(w, "controller: %s  commands sent %d  acks %d\n",
			state, int64(snap["ctl.commands.sent"]), int64(snap["ctl.acks.ok"]))
		for _, a := range ctl.Actions() {
			fmt.Fprintf(w, "  %s\n", a)
		}
	}
	return nil
}
