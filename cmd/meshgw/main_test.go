package main

import (
	"strings"
	"testing"
	"time"
)

// TestMeshgwEndToEnd boots the full demo — UDP chain, sink gateway,
// embedded backend — and checks that every counted reading is uplinked
// exactly once and the downlink command crosses back into the mesh.
func TestMeshgwEndToEnd(t *testing.T) {
	var sb strings.Builder
	o := options{
		n:         3,
		batch:     4,
		flush:     300 * time.Millisecond,
		interval:  150 * time.Millisecond,
		count:     4,
		duration:  30 * time.Second,
		timescale: 100,
		hello:     2 * time.Second,
		downlink:  true,
	}
	if err := run(&sb, o); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"embedded backend listening",
		"mesh converged",
		"backend: 8 distinct readings, 0 duplicates",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The downlink is best-effort within the run window but should make
	// it across a healthy 3-node chain.
	if !strings.Contains(out, "downlink to 0003 delivered: true") {
		t.Errorf("downlink did not arrive:\n%s", out)
	}
}

func TestMeshgwValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{n: 1}); err == nil {
		t.Fatal("n=1 should be rejected")
	}
}
