// meshload is the ingest load harness: it drives a gateway fleet against
// an in-process sharded HTTP backend at memory speed and reports
// wall-clock ingest throughput plus the exactly-once ledger. Its job is
// to locate the batching/pipelining knee — sweep a knob and watch where
// readings/sec stops climbing — and to prove delivery stays exactly-once
// under handover and crash/restart while it climbs.
//
// Usage examples:
//
//	meshload                                   # one serial baseline run
//	meshload -shards 4 -pipeline 4 -gc 2ms     # the pipelined config
//	meshload -gateways 2 -overlap 0.2 -crash -spool /tmp/ml  # fleet+crash
//	meshload -sweep pipeline -values 1,2,4,8   # knee hunt over one knob
//	meshload -check                            # exit 1 unless exactly-once
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/gateway"
)

func main() {
	var cfg gateway.LoadConfig
	flag.IntVar(&cfg.Readings, "readings", 20000, "total distinct readings to offer")
	flag.IntVar(&cfg.Origins, "origins", 64, "distinct origin addresses (shard key population)")
	flag.IntVar(&cfg.Gateways, "gateways", 1, "fleet size")
	flag.IntVar(&cfg.Shards, "shards", 1, "backend shard count")
	flag.IntVar(&cfg.BatchSize, "batch", 64, "readings per uplink POST")
	flag.IntVar(&cfg.Pipeline, "pipeline", 1, "in-flight batches per backend shard")
	flag.DurationVar(&cfg.GroupCommit, "gc", 0, "WAL group-commit interval (0 = flush per record)")
	flag.DurationVar(&cfg.FlushInterval, "flush", 200*time.Millisecond, "partial-batch flush interval")
	flag.StringVar(&cfg.SpoolDir, "spool", "", "directory for WAL spools (empty = memory-only)")
	flag.Float64Var(&cfg.Overlap, "overlap", 0, "fraction of readings offered to a second gateway")
	flag.BoolVar(&cfg.CrashRestart, "crash", false, "crash gateway 0 mid-run, hand over, restart from WAL")
	flag.DurationVar(&cfg.BackendLatency, "rtt", 10*time.Millisecond, "simulated backend round-trip latency")
	flag.Int64Var(&cfg.Seed, "seed", 1, "assignment seed")
	flag.DurationVar(&cfg.Timeout, "timeout", 60*time.Second, "drain deadline")
	sweep := flag.String("sweep", "", "knob to sweep: batch | pipeline | shards | gateways")
	values := flag.String("values", "", "comma-separated sweep values")
	check := flag.Bool("check", false, "exit nonzero unless every run is exactly-once")
	flag.Parse()

	runs, err := plan(cfg, *sweep, *values)
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshload:", err)
		os.Exit(2)
	}
	ok := true
	for _, rc := range runs {
		rep, err := gateway.RunLoad(rc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshload:", err)
			os.Exit(2)
		}
		fmt.Println(rep)
		if !rep.ExactlyOnce() {
			ok = false
		}
	}
	if *check && !ok {
		fmt.Fprintln(os.Stderr, "meshload: delivery was not exactly-once")
		os.Exit(1)
	}
}

// plan expands a sweep directive into the run list (or the single run).
func plan(base gateway.LoadConfig, sweep, values string) ([]gateway.LoadConfig, error) {
	if sweep == "" {
		return []gateway.LoadConfig{base}, nil
	}
	if values == "" {
		return nil, fmt.Errorf("-sweep needs -values")
	}
	var runs []gateway.LoadConfig
	for _, f := range strings.Split(values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("sweep value %q: %w", f, err)
		}
		rc := base
		switch sweep {
		case "batch":
			rc.BatchSize = v
		case "pipeline":
			rc.Pipeline = v
		case "shards":
			rc.Shards = v
		case "gateways":
			rc.Gateways = v
		default:
			return nil, fmt.Errorf("unknown sweep knob %q", sweep)
		}
		runs = append(runs, rc)
	}
	return runs, nil
}
