package main

import (
	"testing"

	"repro/internal/gateway"
)

func TestPlanSingleRun(t *testing.T) {
	runs, err := plan(gateway.LoadConfig{Readings: 10}, "", "")
	if err != nil || len(runs) != 1 || runs[0].Readings != 10 {
		t.Fatalf("plan = %v, %v", runs, err)
	}
}

func TestPlanSweep(t *testing.T) {
	runs, err := plan(gateway.LoadConfig{Readings: 10}, "pipeline", "1, 2,4")
	if err != nil {
		t.Fatal(err)
	}
	got := []int{}
	for _, r := range runs {
		got = append(got, r.Pipeline)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("pipeline sweep = %v", got)
	}
	for _, r := range runs {
		if r.Readings != 10 {
			t.Errorf("sweep dropped base config: %+v", r)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := plan(gateway.LoadConfig{}, "pipeline", ""); err == nil {
		t.Error("missing values: want error")
	}
	if _, err := plan(gateway.LoadConfig{}, "bogus", "1"); err == nil {
		t.Error("unknown knob: want error")
	}
	if _, err := plan(gateway.LoadConfig{}, "batch", "x"); err == nil {
		t.Error("non-integer value: want error")
	}
}
