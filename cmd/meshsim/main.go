// meshsim runs one mesh scenario and reports what happened: topology map,
// convergence, routing tables, traffic outcome, per-node statistics, and
// (optionally) the event trace.
//
// Usage examples:
//
//	meshsim                                   # 5-node chain, defaults
//	meshsim -topology random -n 12 -duration 2h -traffic sink
//	meshsim -topology grid -n 9 -protocol flooding -traffic pairs
//	meshsim -trace 50                         # show the last 50 events
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/loramesher"
)

func main() {
	var (
		topology = flag.String("topology", "line", "line | grid | star | random")
		n        = flag.Int("n", 5, "number of nodes")
		spacing  = flag.Float64("spacing", 8000, "node spacing / radius in meters")
		protocol = flag.String("protocol", "mesher", "mesher | flooding | reactive")
		duration = flag.Duration("duration", time.Hour, "simulated duration after convergence")
		traffic  = flag.String("traffic", "pairs", "none | pairs | sink")
		interval = flag.Duration("interval", 5*time.Minute, "mean traffic interval per flow")
		hello    = flag.Duration("hello", 2*time.Minute, "HELLO beacon period")
		seed     = flag.Int64("seed", 1, "random seed")
		traceN   = flag.Int("trace", 0, "print the last N trace events")
		shadow   = flag.Float64("shadow", 0, "log-normal shadowing sigma in dB")
		topoFile = flag.String("topo", "", "load node positions from a topology JSON file (overrides -topology)")
		saveTopo = flag.String("save-topo", "", "save the generated topology to a JSON file and continue")
	)
	flag.Parse()
	if err := run(*topology, *n, *spacing, *protocol, *duration, *traffic, *interval, *hello, *seed, *traceN, *shadow, *topoFile, *saveTopo); err != nil {
		fmt.Fprintf(os.Stderr, "meshsim: %v\n", err)
		os.Exit(1)
	}
}

func buildTopology(kind string, n int, spacing float64, seed int64) (*geo.Topology, error) {
	switch kind {
	case "line":
		return geo.Line(n, spacing)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return geo.Grid(side, (n+side-1)/side, spacing)
	case "star":
		return geo.Star(n, spacing)
	case "random":
		field := spacing * float64(n) / 2
		return geo.ConnectedRandomGeometric(n, field, field, 13000, seed, 2000)
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}

func run(topology string, n int, spacing float64, protocol string, duration time.Duration,
	traffic string, interval, hello time.Duration, seed int64, traceN int, shadow float64,
	topoFile, saveTopo string) error {

	var topo *geo.Topology
	var err error
	if topoFile != "" {
		topo, err = geo.LoadFile(topoFile)
	} else {
		topo, err = buildTopology(topology, n, spacing, seed)
	}
	if err != nil {
		return err
	}
	if saveTopo != "" {
		if err := topo.SaveFile(saveTopo); err != nil {
			return err
		}
		fmt.Printf("topology saved to %s\n", saveTopo)
	}
	cfg := netsim.Config{
		Topology: topo,
		Seed:     seed,
		Node:     loramesher.Config{HelloPeriod: hello},
		Flood:    baseline.Config{},
	}
	cfg.Medium.ShadowSigmaDB = shadow
	switch protocol {
	case "mesher":
		cfg.Protocol = netsim.KindMesher
	case "flooding":
		cfg.Protocol = netsim.KindFlooding
	case "reactive":
		cfg.Protocol = netsim.KindReactive
	default:
		return fmt.Errorf("unknown protocol %q", protocol)
	}
	if traceN > 0 {
		cfg.TraceCapacity = traceN
	}
	sim, err := netsim.New(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("topology %s: %d nodes\n", topo.Name, topo.N())
	printMap(os.Stdout, topo)
	fmt.Println()

	if cfg.Protocol == netsim.KindMesher {
		conv, ok := sim.TimeToConvergence(10*time.Second, 12*time.Hour)
		if !ok {
			return fmt.Errorf("mesh did not converge in 12 h — check density vs radio range")
		}
		fmt.Printf("mesh converged in %v\n\n", conv.Round(time.Second))
	}

	var stats []*netsim.TrafficStats
	switch traffic {
	case "none":
	case "pairs":
		for i := 0; i < sim.N(); i++ {
			st, err := sim.StartFlow(netsim.Flow{
				From: i, To: (i + sim.N()/2) % sim.N(), Payload: 24,
				Interval: interval, Poisson: true,
			})
			if err != nil {
				return err
			}
			stats = append(stats, st)
		}
	case "sink":
		all, err := sim.StartManyToOne(0, 24, interval, true)
		if err != nil {
			return err
		}
		stats = all
	default:
		return fmt.Errorf("unknown traffic pattern %q", traffic)
	}

	sim.Run(duration)

	if len(stats) > 0 {
		total := netsim.MergeStats(stats)
		fmt.Printf("traffic (%s, mean interval %v) over %v:\n", traffic, interval, duration)
		fmt.Printf("  offered %d  delivered %d  PDR %.1f%%  mean latency %v\n\n",
			total.Offered, total.Delivered, 100*total.DeliveryRatio(),
			total.MeanLatency().Round(time.Millisecond))
	}

	fmt.Println("per-node summary:")
	fmt.Println("  node   tx      rx      fwd     routes  airtime     mean mA  life@3000mAh")
	report, _ := sim.EnergyReport(energy.DefaultProfile(), 3000)
	for i := 0; i < sim.N(); i++ {
		h := sim.Handle(i)
		m := h.Proto.Metrics()
		routes := "-"
		if h.Mesher != nil {
			routes = fmt.Sprintf("%d", h.Mesher.Table().Len())
		}
		air, _ := sim.Medium.StationAirtime(h.Station)
		ma, life := "-", "-"
		if i < len(report) {
			ma = fmt.Sprintf("%.1f", report[i].MeanCurrentMA)
			life = fmt.Sprintf("%.1fd", report[i].BatteryLife.Hours()/24)
		}
		fmt.Printf("  %v   %-6d  %-6d  %-6d  %-6s  %-10v  %-7s  %s\n", h.Addr,
			m.Counter("tx.frames").Value(), m.Counter("rx.frames").Value(),
			m.Counter("fwd.frames").Value(), routes, air.Round(time.Millisecond), ma, life)
	}

	ms := sim.Medium.Stats()
	fmt.Printf("\nchannel: %d frames sent, %d receptions, %d lost to collisions, %d below sensitivity\n",
		ms.FramesSent, ms.FramesDelivered, ms.LostCollision, ms.LostBelowSensitivity)

	if traceN > 0 && sim.Tracer != nil {
		fmt.Printf("\nlast %d events:\n", traceN)
		if _, err := sim.Tracer.WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// printMap renders node positions on a coarse ASCII grid.
func printMap(w io.Writer, topo *geo.Topology) {
	const cols, rows = 60, 16
	minX, minY := topo.Positions[0].X, topo.Positions[0].Y
	maxX, maxY := minX, minY
	for _, p := range topo.Positions {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", cols))
	}
	for i, p := range topo.Positions {
		x := int((p.X - minX) / spanX * float64(cols-1))
		y := int((p.Y - minY) / spanY * float64(rows-1))
		label := byte('0' + i%10)
		grid[y][x] = label
	}
	for _, row := range grid {
		fmt.Fprintf(w, "  %s\n", row)
	}
	fmt.Fprintf(w, "  (field %.1f x %.1f km)\n", spanX/1000, spanY/1000)
}
