// meshsim runs one mesh scenario and reports what happened: topology map,
// convergence, routing tables, traffic outcome, per-node statistics, and
// (optionally) the event trace.
//
// Usage examples:
//
//	meshsim                                   # 5-node chain, defaults
//	meshsim -topology random -n 12 -duration 2h -traffic sink
//	meshsim -topology grid -n 9 -protocol flooding -traffic pairs
//	meshsim -strategy icn -n 8 -topology grid     # pull workload, in-mesh caching
//	meshsim -strategy slotted                     # TDMA schedule + latency bound
//	meshsim -trace 50                         # show the last 50 events
//	meshsim -trace-out events.jsonl           # stream every event as JSONL
//	meshsim -trace-packet 9c4f...a1           # reconstruct one packet's journey
//	meshsim -faults plan.json -seed 7         # inject faults; same seed = same run
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/citysim"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/forward"
	"repro/internal/geo"
	"repro/internal/icn"
	"repro/internal/meshsec"
	"repro/internal/netsim"
	"repro/internal/slotted"
	"repro/internal/span"
	"repro/internal/trace"
	"repro/loramesher"
)

// options collects everything a run needs; flags map onto it 1:1.
type options struct {
	topology string
	n        int
	// shards >= 0 routes the run to the city-scale sharded engine
	// (internal/citysim) instead of the per-node protocol stack: 0 is the
	// serial reference executor, k >= 1 runs k column-stripe shards. -1
	// keeps the default per-node engine.
	shards   int
	spacing  float64
	protocol string
	// strategy, when set, selects the forwarding strategy by its
	// forward.Kind name (proactive, reactive, icn, slotted, flooding),
	// overriding -protocol. ICN runs a pull workload (interest rounds
	// against a node-0 producer) instead of the push -traffic patterns;
	// slotted runs under a default 3-slot superframe with node 0 as sink.
	strategy string
	duration time.Duration
	traffic  string
	interval time.Duration
	hello    time.Duration
	seed     int64
	traceN   int
	shadow   float64
	topoFile string
	saveTopo string
	// traceOut streams every trace event to this file as JSONL ("-" for
	// stdout); packetdump -events reads the format back.
	traceOut string
	// tracePacket, a 16-hex-digit trace ID, prints that packet's
	// reconstructed hop-by-hop journey after the run.
	tracePacket string
	// faultsFile loads a fault-injection plan (JSON) applied once the
	// mesh has converged. Runs are deterministic in (plan, -seed): rerun
	// with the same pair to replay a failure exactly.
	faultsFile string
	// seckey, 32 hex digits, turns on link-layer security: every frame
	// is encrypted and authenticated under this network key (mesher
	// protocol only).
	seckey string
	// spanCap arms hop-level span capture with a flight-recorder ring of
	// this many segments; with -trace-out the segments also stream as
	// KindSpan JSONL events for packetdump -spans.
	spanCap int
	// health runs the always-on mesh health monitor at this virtual-time
	// poll interval, printing the verdict after the run.
	health time.Duration
	// controlFile loads a desired-state document (JSON) and attaches the
	// self-healing controller at node 0, reconciling the mesh toward it
	// and running the recovery playbooks off the health monitor's
	// violation feed. Implies -health (30s) when not set explicitly.
	controlFile string
}

func main() {
	var o options
	flag.StringVar(&o.topology, "topology", "line", "line | grid | star | random")
	flag.IntVar(&o.n, "n", 5, "number of nodes")
	flag.Float64Var(&o.spacing, "spacing", 8000, "node spacing / radius in meters")
	flag.IntVar(&o.shards, "shards", -1, "run the city-scale sharded engine with -n nodes and this many shards (0 = serial reference executor; -1 = per-node engine)")
	flag.StringVar(&o.protocol, "protocol", "mesher", "mesher | flooding | reactive")
	flag.StringVar(&o.strategy, "strategy", "", "forwarding strategy: proactive | reactive | icn | slotted | flooding (overrides -protocol; icn/slotted not available with -protocol)")
	flag.DurationVar(&o.duration, "duration", time.Hour, "simulated duration after convergence")
	flag.StringVar(&o.traffic, "traffic", "pairs", "none | pairs | sink")
	flag.DurationVar(&o.interval, "interval", 5*time.Minute, "mean traffic interval per flow")
	flag.DurationVar(&o.hello, "hello", 2*time.Minute, "HELLO beacon period")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.traceN, "trace", 0, "print the last N trace events")
	flag.Float64Var(&o.shadow, "shadow", 0, "log-normal shadowing sigma in dB")
	flag.StringVar(&o.topoFile, "topo", "", "load node positions from a topology JSON file (overrides -topology)")
	flag.StringVar(&o.saveTopo, "save-topo", "", "save the generated topology to a JSON file and continue")
	flag.StringVar(&o.traceOut, "trace-out", "", "stream all trace events to this file as JSONL (\"-\" for stdout)")
	flag.StringVar(&o.tracePacket, "trace-packet", "", "print the hop-by-hop journey of the packet with this trace ID")
	flag.StringVar(&o.faultsFile, "faults", "", "apply a fault-injection plan from this JSON file (deterministic in -seed)")
	flag.StringVar(&o.seckey, "seckey", "", "network key as 32 hex digits; enables link-layer security (mesher only)")
	flag.IntVar(&o.spanCap, "spans", 0, "capture hop-level spans in a ring of this many segments (streamed to -trace-out as span events)")
	flag.DurationVar(&o.health, "health", 0, "poll the mesh health monitor at this interval (0 disables)")
	flag.StringVar(&o.controlFile, "control", "", "reconcile the mesh toward this desired-state JSON document (self-healing controller at node 0; implies -health 30s)")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintf(os.Stderr, "meshsim: %v\n", err)
		os.Exit(1)
	}
}

func buildTopology(kind string, n int, spacing float64, seed int64) (*geo.Topology, error) {
	switch kind {
	case "line":
		return geo.Line(n, spacing)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return geo.Grid(side, (n+side-1)/side, spacing)
	case "star":
		return geo.Star(n, spacing)
	case "random":
		field := spacing * float64(n) / 2
		return geo.ConnectedRandomGeometric(n, field, field, 13000, seed, 2000)
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}

func run(w io.Writer, o options) error {
	var strat forward.Kind
	if o.strategy != "" {
		var err error
		if strat, err = forward.ParseKind(o.strategy); err != nil {
			return err
		}
	}
	if o.shards >= 0 {
		return runCity(w, o)
	}
	var topo *geo.Topology
	var err error
	if o.topoFile != "" {
		topo, err = geo.LoadFile(o.topoFile)
	} else {
		topo, err = buildTopology(o.topology, o.n, o.spacing, o.seed)
	}
	if err != nil {
		return err
	}
	if o.saveTopo != "" {
		if err := topo.SaveFile(o.saveTopo); err != nil {
			return err
		}
		fmt.Fprintf(w, "topology saved to %s\n", o.saveTopo)
	}
	var wantID trace.TraceID
	if o.tracePacket != "" {
		if wantID, err = trace.ParseTraceID(o.tracePacket); err != nil {
			return err
		}
	}
	cfg := netsim.Config{
		Topology: topo,
		Seed:     o.seed,
		Node:     loramesher.Config{HelloPeriod: o.hello},
		Flood:    baseline.Config{},
	}
	cfg.Medium.ShadowSigmaDB = o.shadow
	if o.seckey != "" {
		key, err := meshsec.ParseKey(o.seckey)
		if err != nil {
			return err
		}
		cfg.SecKey = &key
	}
	if strat != "" {
		pk, ok := netsim.KindForStrategy(strat)
		if !ok {
			return fmt.Errorf("no engine runs strategy %q", strat)
		}
		cfg.Protocol = pk
	} else {
		switch o.protocol {
		case "mesher":
			cfg.Protocol = netsim.KindMesher
		case "flooding":
			cfg.Protocol = netsim.KindFlooding
		case "reactive":
			cfg.Protocol = netsim.KindReactive
		default:
			return fmt.Errorf("unknown protocol %q", o.protocol)
		}
	}
	switch cfg.Protocol {
	case netsim.KindICN:
		// The PIT window sits below the 40 s application re-express
		// cadence of icnReads, so a lost round re-floods instead of
		// aggregating against a dead pending interest.
		cfg.ICN = icn.Config{
			RebroadcastDelay: 200 * time.Millisecond,
			PITTimeout:       20 * time.Second,
		}
		cfg.ICNProduce = func(i int, name string) []byte {
			if i == 0 {
				return []byte("demo(" + name + ")")
			}
			return nil
		}
	case netsim.KindSlotted:
		sf := defaultSuperframe()
		cfg.Slotted = slotted.Config{Superframe: sf, Sink: 0x0001}
		cfg.FlowLatencyBound = sf.LatencyBound.D()
	}
	if o.traceN > 0 {
		cfg.TraceCapacity = o.traceN
	}
	cfg.SpanCapacity = o.spanCap
	cfg.HealthInterval = o.health
	if cfg.Protocol == netsim.KindSlotted && cfg.HealthInterval <= 0 {
		// The superframe's latency bound is enforced by the health
		// monitor; a slotted run without one would declare a bound nobody
		// checks.
		cfg.HealthInterval = time.Minute
	}
	var desired *control.State
	if o.controlFile != "" {
		if desired, err = control.LoadFile(o.controlFile); err != nil {
			return err
		}
		if cfg.HealthInterval <= 0 {
			// The playbooks are driven by the health monitor's violation
			// feed; a controller without one would only do config pushes.
			// The silent detector's window (3 polls) must exceed the HELLO
			// period, or a healthy-but-quiet node gets "recovered" with a
			// reboot every time a beacon misses the window.
			cfg.HealthInterval = 30 * time.Second
			if min := o.hello / 2; cfg.HealthInterval < min {
				cfg.HealthInterval = min
			}
		}
	}
	if cfg.TraceCapacity == 0 && (o.traceOut != "" || o.tracePacket != "") {
		// Tracing is implied; the sink sees everything regardless of the
		// ring size, and journeys need a reasonable window.
		cfg.TraceCapacity = 4096
	}
	sim, err := netsim.New(cfg)
	if err != nil {
		return err
	}
	if o.traceOut != "" {
		sinkW := w
		if o.traceOut != "-" {
			f, err := os.Create(o.traceOut)
			if err != nil {
				return err
			}
			defer f.Close()
			sinkW = f
		}
		sim.Tracer.SetSink(sinkW)
	}

	fmt.Fprintf(w, "topology %s: %d nodes\n", topo.Name, topo.N())
	printMap(w, topo)
	fmt.Fprintln(w)

	if cfg.SecKey != nil {
		fmt.Fprintf(w, "link-layer security: on (frames encrypted and authenticated)\n\n")
	}
	if strat != "" {
		fmt.Fprintf(w, "forwarding strategy: %s\n\n", strat)
	}
	if cfg.Protocol == netsim.KindMesher || cfg.Protocol == netsim.KindSlotted {
		conv, ok := sim.TimeToConvergence(10*time.Second, 12*time.Hour)
		if !ok {
			return fmt.Errorf("mesh did not converge in 12 h — check density vs radio range")
		}
		fmt.Fprintf(w, "mesh converged in %v\n\n", conv.Round(time.Second))
	}

	var ctl *control.Controller
	if desired != nil {
		if ctl, err = sim.AttachController(netsim.ControllerConfig{State: desired}); err != nil {
			return err
		}
		fmt.Fprintf(w, "self-healing controller attached at %v (state version %d, poll %v)\n\n",
			sim.Handle(0).Addr, desired.Version, ctl.PollInterval())
	}

	if o.faultsFile != "" {
		plan, err := faults.LoadFile(o.faultsFile)
		if err != nil {
			return err
		}
		if err := sim.ApplyFaultPlan(plan); err != nil {
			return err
		}
		fmt.Fprintf(w, "fault plan %q armed (seed %d; event times relative to now)\n\n",
			plan.Name, o.seed)
	}

	// MergeStats snapshots by value, so push-strategy flows are merged only
	// after the run; the ICN accounting object is mutated in place.
	var flows []*netsim.TrafficStats
	var icnStats *netsim.TrafficStats
	trafficLabel := o.traffic
	switch {
	case o.traffic == "none":
	case cfg.Protocol == netsim.KindICN:
		// ICN routes by name, not address: the push patterns cannot drive
		// it, so every non-producer node pulls a per-round datum instead.
		icnStats = icnReads(sim, o.duration, o.interval)
		trafficLabel = "interest rounds"
	case o.traffic == "pairs":
		for i := 0; i < sim.N(); i++ {
			st, err := sim.StartFlow(netsim.Flow{
				From: i, To: (i + sim.N()/2) % sim.N(), Payload: 24,
				Interval: o.interval, Poisson: true,
			})
			if err != nil {
				return err
			}
			flows = append(flows, st)
		}
	case o.traffic == "sink":
		all, err := sim.StartManyToOne(0, 24, o.interval, true)
		if err != nil {
			return err
		}
		flows = all
	default:
		return fmt.Errorf("unknown traffic pattern %q", o.traffic)
	}

	sim.Run(o.duration)

	total := icnStats
	if total == nil && len(flows) > 0 {
		total = netsim.MergeStats(flows)
	}
	if total != nil {
		fmt.Fprintf(w, "traffic (%s, mean interval %v) over %v:\n", trafficLabel, o.interval, o.duration)
		fmt.Fprintf(w, "  offered %d  delivered %d  PDR %.1f%%  mean latency %v\n\n",
			total.Offered, total.Delivered, 100*total.DeliveryRatio(),
			total.MeanLatency().Round(time.Millisecond))
	}
	if cfg.Protocol == netsim.KindICN {
		snap := sim.AggregateMetrics().Snapshot()
		fmt.Fprintf(w, "icn: interests expressed %.0f  aggregated %.0f  cache hits %.0f  misses %.0f  airtime saved %.0fms\n\n",
			snap["total.icn.interest.expressed"], snap["total.icn.interest.aggregated"],
			snap["total.icn.cs.hit"], snap["total.icn.cs.miss"], snap["total.icn.airtime.saved_ms"])
	}

	fmt.Fprintln(w, "per-node summary:")
	fmt.Fprintln(w, "  node   tx      rx      fwd     routes  airtime     mean mA  life@3000mAh")
	report, _ := sim.EnergyReport(energy.DefaultProfile(), 3000)
	for i := 0; i < sim.N(); i++ {
		h := sim.Handle(i)
		m := h.Proto.Metrics()
		routes := "-"
		if h.Mesher != nil {
			routes = fmt.Sprintf("%d", h.Mesher.Table().Len())
		}
		air, _ := sim.Medium.StationAirtime(h.Station)
		ma, life := "-", "-"
		if i < len(report) {
			ma = fmt.Sprintf("%.1f", report[i].MeanCurrentMA)
			life = fmt.Sprintf("%.1fd", report[i].BatteryLife.Hours()/24)
		}
		fmt.Fprintf(w, "  %v   %-6d  %-6d  %-6d  %-6s  %-10v  %-7s  %s\n", h.Addr,
			m.Counter("tx.frames").Value(), m.Counter("rx.frames").Value(),
			m.Counter("fwd.frames").Value(), routes, air.Round(time.Millisecond), ma, life)
	}

	ms := sim.Medium.Stats()
	fmt.Fprintf(w, "\nchannel: %d frames sent, %d receptions, %d lost to collisions, %d below sensitivity\n",
		ms.FramesSent, ms.FramesDelivered, ms.LostCollision, ms.LostBelowSensitivity)

	if o.faultsFile != "" {
		fs := sim.FaultStats()
		fmt.Fprintf(w, "fault layer: ")
		if len(fs) == 0 {
			fmt.Fprintln(w, "no frames affected")
		} else {
			parts := make([]string, 0, len(fs))
			for _, reason := range faults.Reasons(fs) {
				parts = append(parts, fmt.Sprintf("%s=%d", reason, fs[reason]))
			}
			fmt.Fprintln(w, strings.Join(parts, "  "))
		}
	}

	if sim.Spans != nil {
		recs := sim.Spans.Records()
		fmt.Fprintf(w, "\nspan capture: %d segments recorded (%d retained, %d traces); render with packetdump -events <jsonl> -spans <id>\n",
			sim.Spans.Total(), len(recs), len(span.TraceIDs(recs)))
	}
	if sim.Health != nil {
		v := sim.Health.Verdict()
		fmt.Fprintf(w, "\nmesh health: %v (%v polls, %v violations)\n", v["status"], v["polls"], v["violations"])
		for _, viol := range sim.Health.Violations() {
			fmt.Fprintf(w, "  %v\n", viol)
		}
	}
	if ctl != nil {
		snap := ctl.Metrics().Snapshot()
		state := "reconciling"
		if ctl.Converged() {
			state = "converged"
		}
		fmt.Fprintf(w, "\ncontroller: %s (version acked fleet-wide: %v)  commands sent %d  acks %d  escalations %d  key epoch %d\n",
			state, ctl.Converged(),
			int64(snap["ctl.commands.sent"]), int64(snap["ctl.acks.ok"]),
			int64(snap["ctl.escalations"]), ctl.KeyEpoch())
		if acts := ctl.Actions(); len(acts) > 0 {
			fmt.Fprintln(w, "controller journal:")
			for _, a := range acts {
				fmt.Fprintf(w, "  %s\n", a)
			}
		}
	}
	if o.traceN > 0 && sim.Tracer != nil {
		fmt.Fprintf(w, "\nlast %d events:\n", o.traceN)
		if _, err := sim.Tracer.WriteTo(w); err != nil {
			return err
		}
	}
	if o.tracePacket != "" {
		if err := printJourney(w, sim.Tracer, wantID); err != nil {
			return err
		}
	}
	if err := sim.Tracer.SinkErr(); err != nil {
		return fmt.Errorf("trace sink: %w", err)
	}
	return nil
}

// defaultSuperframe is the TDMA schedule -strategy slotted runs under:
// three slots of 2 s with a 100 ms guard, and a 90 s end-to-end latency
// bound the health monitor enforces per delivery.
func defaultSuperframe() control.Superframe {
	return control.Superframe{
		Slots:        3,
		SlotLen:      control.Duration(2 * time.Second),
		Guard:        control.Duration(100 * time.Millisecond),
		LatencyBound: control.Duration(90 * time.Second),
	}
}

// icnReads drives the pull equivalent of the push traffic patterns: every
// node but the node-0 producer expresses interest in a shared per-round
// name each interval, re-expressing up to twice (40 s apart) while
// unsatisfied — the strategy never retransmits, so retry is the
// application's job. Offered counts one per (consumer, round); latency
// runs from a consumer's first expression to its first delivery.
func icnReads(sim *netsim.Sim, duration, interval time.Duration) *netsim.TrafficStats {
	stats := &netsim.TrafficStats{}
	type key struct{ consumer, round int }
	exprAt := make(map[key]time.Time)
	satisfied := make(map[key]bool)

	for c := 1; c < sim.N(); c++ {
		c := c
		h := sim.Handle(c)
		prev := h.OnMessage
		h.OnMessage = func(msg core.AppMessage) {
			if prev != nil {
				prev(msg)
			}
			sep := bytes.IndexByte(msg.Payload, 0)
			if sep < 0 {
				return
			}
			var round int
			if _, err := fmt.Sscanf(string(msg.Payload[:sep]), "demo/reading/%d", &round); err != nil {
				return
			}
			k := key{c, round}
			at, ok := exprAt[k]
			if !ok || satisfied[k] {
				return
			}
			satisfied[k] = true
			stats.Delivered++
			stats.Latencies = append(stats.Latencies, msg.At.Sub(at))
		}
	}

	for r := 0; r < int(duration/interval); r++ {
		name := fmt.Sprintf("demo/reading/%d", r)
		for c := 1; c < sim.N(); c++ {
			k := key{c, r}
			base := time.Duration(r)*interval + time.Second +
				time.Duration(c-1)*1700*time.Millisecond
			for attempt := 0; attempt < 3; attempt++ {
				at := base + time.Duration(attempt)*40*time.Second
				if at >= duration {
					continue
				}
				sim.Sched.MustAfter(at, func() {
					if satisfied[k] {
						return
					}
					if _, ok := exprAt[k]; !ok {
						exprAt[k] = sim.Now()
						stats.Offered++
					}
					if sim.Handle(k.consumer).ICN.Express(name) == nil {
						stats.Accepted++
					}
				})
			}
		}
	}
	return stats
}

// printJourney renders every retained event carrying the trace ID — the
// packet's hop-by-hop reconstruction, drop reason included.
func printJourney(w io.Writer, t *trace.Tracer, id trace.TraceID) error {
	journey := trace.Filter(t.Events(), id)
	fmt.Fprintf(w, "\npacket %v journey (%d events):\n", id, len(journey))
	if len(journey) == 0 {
		fmt.Fprintln(w, "  no retained events carry this trace ID; raise -trace or use -trace-out and packetdump -events")
		return nil
	}
	for _, ev := range journey {
		fmt.Fprintf(w, "  %v\n", ev)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(w, "  (ring evicted %d earlier events; the journey may be truncated)\n", d)
	}
	return nil
}

// printMap renders node positions on a coarse ASCII grid.
func printMap(w io.Writer, topo *geo.Topology) {
	const cols, rows = 60, 16
	minX, minY := topo.Positions[0].X, topo.Positions[0].Y
	maxX, maxY := minX, minY
	for _, p := range topo.Positions {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", cols))
	}
	for i, p := range topo.Positions {
		x := int((p.X - minX) / spanX * float64(cols-1))
		y := int((p.Y - minY) / spanY * float64(rows-1))
		label := byte('0' + i%10)
		grid[y][x] = label
	}
	for _, row := range grid {
		fmt.Fprintf(w, "  %s\n", row)
	}
	fmt.Fprintf(w, "  (field %.1f x %.1f km)\n", spanX/1000, spanY/1000)
}

// runCity drives the city-scale sharded engine: same seed-deterministic
// contract as the per-node path, but a compact telemetry-profile workload
// that scales to 10k-100k nodes. The digest line is the determinism
// witness — identical across -shards settings for a given seed.
func runCity(w io.Writer, o options) error {
	sim, err := citysim.New(citysim.Config{
		Nodes:         o.n,
		Shards:        o.shards,
		Seed:          o.seed,
		Strategy:      o.strategy,
		HelloPeriod:   o.hello,
		ShadowSigmaDB: o.shadow,
	})
	if err != nil {
		return err
	}
	if err := sim.Run(o.duration); err != nil {
		return err
	}
	st := sim.Stats()
	executor := "serial reference"
	if o.shards > 0 {
		executor = fmt.Sprintf("%d shards", st.Shards)
	}
	fmt.Fprintf(w, "== city mesh: %d nodes, %s ==\n", st.Nodes, executor)
	fmt.Fprintf(w, "cells %d  sinks %d  simulated %v  wall %v\n", st.Cells, st.Sinks, o.duration, st.Wall.Round(time.Millisecond))
	fmt.Fprintf(w, "frames sent %d  delivered %d  collisions %d  below-sens %d  half-duplex %d\n",
		st.FramesSent, st.FramesDelivered, st.LostCollision, st.LostBelowSensitivity, st.LostHalfDuplex)
	fmt.Fprintf(w, "telemetry offered %d  delivered %d  PDR %.1f%%  mean latency %v\n",
		st.Offered, st.Delivered, 100*st.PDR(), st.MeanLatency().Round(time.Millisecond))
	fmt.Fprintf(w, "windows %d  fast-forwards %d  events %d  events/sec %.0f  state %.1fMB\n",
		st.Windows, st.FastForwards, st.EventsFired, st.EventsPerSec(), float64(st.StateBytes)/(1<<20))
	fmt.Fprintf(w, "digest %016x\n", sim.Digest())
	return nil
}
