package main

import (
	"strings"
	"testing"
)

func TestBuildTopologyKinds(t *testing.T) {
	for _, kind := range []string{"line", "grid", "star", "random"} {
		topo, err := buildTopology(kind, 6, 8000, 1)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if topo.N() < 6 {
			t.Errorf("%s produced %d nodes, want >= 6", kind, topo.N())
		}
	}
	if _, err := buildTopology("klein-bottle", 6, 8000, 1); err == nil {
		t.Error("unknown topology: want error")
	}
}

func TestPrintMapRendersEveryNode(t *testing.T) {
	topo, err := buildTopology("line", 4, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	printMap(&sb, topo)
	out := sb.String()
	for _, label := range []string{"0", "1", "2", "3"} {
		if !strings.Contains(out, label) {
			t.Errorf("map missing node %s:\n%s", label, out)
		}
	}
	if !strings.Contains(out, "km)") {
		t.Error("map missing scale line")
	}
}

func TestRunSmoke(t *testing.T) {
	// End-to-end CLI logic on a tiny scenario (output goes to stdout;
	// correctness is "no error").
	err := run("line", 3, 8000, "mesher", 600e9, "pairs", 300e9, 120e9, 1, 0, 0, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := run("line", 3, 8000, "flooding", 60e9, "none", 300e9, 120e9, 1, 0, 0, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("line", 3, 8000, "reactive", 60e9, "pairs", 300e9, 120e9, 1, 0, 0, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("line", 3, 8000, "mesher", 60e9, "bogus", 300e9, 120e9, 1, 0, 0, "", ""); err == nil {
		t.Error("bogus traffic pattern: want error")
	}
}
