package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestBuildTopologyKinds(t *testing.T) {
	for _, kind := range []string{"line", "grid", "star", "random"} {
		topo, err := buildTopology(kind, 6, 8000, 1)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if topo.N() < 6 {
			t.Errorf("%s produced %d nodes, want >= 6", kind, topo.N())
		}
	}
	if _, err := buildTopology("klein-bottle", 6, 8000, 1); err == nil {
		t.Error("unknown topology: want error")
	}
}

func TestPrintMapRendersEveryNode(t *testing.T) {
	topo, err := buildTopology("line", 4, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	printMap(&sb, topo)
	out := sb.String()
	for _, label := range []string{"0", "1", "2", "3"} {
		if !strings.Contains(out, label) {
			t.Errorf("map missing node %s:\n%s", label, out)
		}
	}
	if !strings.Contains(out, "km)") {
		t.Error("map missing scale line")
	}
}

// opts returns a tiny base scenario; tests tweak what they need.
func opts() options {
	return options{
		topology: "line", n: 3, spacing: 8000, protocol: "mesher",
		duration: 600e9, traffic: "pairs", interval: 300e9, hello: 120e9,
		seed: 1, shards: -1,
	}
}

func TestRunSmoke(t *testing.T) {
	// End-to-end CLI logic on a tiny scenario (correctness is "no error").
	var out bytes.Buffer
	if err := run(&out, opts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "per-node summary") {
		t.Error("report missing per-node summary")
	}
	o := opts()
	o.protocol, o.duration, o.traffic = "flooding", 60e9, "none"
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	o = opts()
	o.protocol, o.duration = "reactive", 60e9
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	o = opts()
	o.traffic = "bogus"
	if err := run(&out, o); err == nil {
		t.Error("bogus traffic pattern: want error")
	}
}

func TestRunTraceOutEmitsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	o := opts()
	o.traceOut = path
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatalf("trace-out is not valid JSONL: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("trace-out captured nothing")
	}
	// Traffic ran, so some events must be tied to packets.
	var traced int
	for _, ev := range evs {
		if ev.Trace != 0 {
			traced++
		}
	}
	if traced == 0 {
		t.Error("no event carries a trace ID")
	}
}

func TestRunTracePacketPrintsJourney(t *testing.T) {
	// First run with a sink to discover a real trace ID...
	path := filepath.Join(t.TempDir(), "events.jsonl")
	o := opts()
	o.traceOut = path
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	var id trace.TraceID
	for _, ev := range evs {
		if ev.Trace != 0 {
			id = ev.Trace
			break
		}
	}
	if id == 0 {
		t.Fatal("no traced packet in the run")
	}
	// ...then re-run the same seed asking for that packet's journey.
	o = opts()
	o.tracePacket = id.String()
	out.Reset()
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "journey") || !strings.Contains(report, id.String()) {
		t.Errorf("report missing the packet journey:\n%s", report)
	}

	o.tracePacket = "not-hex"
	if err := run(&out, o); err == nil {
		t.Error("malformed trace ID: want error")
	}
}

func TestRunFaultPlanFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	plan := `{
		"name": "cli-test",
		"links": [{"from": 0, "to": 1, "symmetric": true, "kind": "bernoulli", "p": 0.3}],
		"corrupt": {"rate": 0.1}
	}`
	if err := os.WriteFile(path, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	o := opts()
	o.faultsFile = path
	o.duration = 3600e9
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, `fault plan "cli-test" armed`) {
		t.Error("report missing fault plan banner")
	}
	if !strings.Contains(report, "fault layer:") || !strings.Contains(report, "loss=") {
		t.Errorf("report missing fault-layer drop summary:\n%s", report)
	}

	// A broken plan file must fail loudly, not inject nothing.
	if err := os.WriteFile(path, []byte(`{"links": [{"from": 0, "to": 9, "kind": "block"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&out, o); err == nil {
		t.Error("plan referencing a missing node: want error")
	}
}

func TestRunSecuredSmoke(t *testing.T) {
	o := opts()
	o.seckey = "2b7e151628aed2a6abf7158809cf4f3c"
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "link-layer security: on") {
		t.Error("report missing the security banner")
	}

	o.seckey = "not-a-key"
	if err := run(&out, o); err == nil {
		t.Error("malformed -seckey: want error")
	}

	// Link security is a mesher feature; the baselines must refuse the
	// key rather than silently run plaintext.
	o = opts()
	o.seckey = "2b7e151628aed2a6abf7158809cf4f3c"
	o.protocol, o.traffic, o.duration = "flooding", "none", 60e9
	if err := run(&out, o); err == nil {
		t.Error("-seckey with flooding protocol: want error")
	}
}

func TestRunStrategySmoke(t *testing.T) {
	// ICN swaps the push traffic patterns for interest rounds and reports
	// the cache evidence.
	o := opts()
	o.topology, o.n, o.strategy, o.duration, o.interval = "grid", 6, "icn", 1800e9, 600e9
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"forwarding strategy: icn", "interest rounds", "cache hits"} {
		if !strings.Contains(s, want) {
			t.Errorf("icn report missing %q:\n%s", want, s)
		}
	}

	// Slotted converges like the proactive engine and arms the health
	// monitor for its latency bound.
	o = opts()
	o.strategy, o.duration = "slotted", 1800e9
	out.Reset()
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	s = out.String()
	for _, want := range []string{"forwarding strategy: slotted", "mesh converged", "mesh health"} {
		if !strings.Contains(s, want) {
			t.Errorf("slotted report missing %q:\n%s", want, s)
		}
	}

	// -strategy proactive matches the -protocol mesher default path.
	o = opts()
	o.strategy, o.duration = "proactive", 600e9
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}

	// Malformed values fail cleanly on both engine paths.
	o = opts()
	o.strategy = "bogus"
	if err := run(&out, o); err == nil || !strings.Contains(err.Error(), `unknown strategy "bogus"`) {
		t.Errorf("malformed -strategy: got %v, want unknown-strategy error", err)
	}
	o.shards = 2
	if err := run(&out, o); err == nil || !strings.Contains(err.Error(), `unknown strategy "bogus"`) {
		t.Errorf("malformed -strategy on city path: got %v, want unknown-strategy error", err)
	}
}

// TestRunCityStrategy drives the -shards path under a non-default
// strategy and checks the strategy reaches the city engine (a different
// digest than the proactive default proves it was not ignored).
func TestRunCityStrategy(t *testing.T) {
	digest := func(strategy string) string {
		var out bytes.Buffer
		o := opts()
		o.n, o.shards, o.duration, o.strategy = 200, 2, 300e9, strategy
		if err := run(&out, o); err != nil {
			t.Fatal(err)
		}
		s := out.String()
		i := strings.Index(s, "digest ")
		if i < 0 {
			t.Fatalf("city report missing digest:\n%s", s)
		}
		return strings.TrimSpace(s[i+len("digest "):])
	}
	if d, p := digest("icn"), digest("proactive"); d == p {
		t.Errorf("icn digest %s equals proactive digest — strategy ignored", d)
	}
}

// TestRunCitySmoke drives the -shards path: the city-scale engine runs
// serial and sharded on the same seed and must report the same digest.
func TestRunCitySmoke(t *testing.T) {
	digest := func(shards int) string {
		var out bytes.Buffer
		o := opts()
		o.n, o.shards, o.duration = 200, shards, 300e9
		if err := run(&out, o); err != nil {
			t.Fatal(err)
		}
		s := out.String()
		for _, want := range []string{"city mesh: 200 nodes", "PDR", "digest "} {
			if !strings.Contains(s, want) {
				t.Fatalf("city report missing %q:\n%s", want, s)
			}
		}
		i := strings.Index(s, "digest ")
		return strings.TrimSpace(s[i+len("digest "):])
	}
	serial := digest(0)
	if sharded := digest(2); sharded != serial {
		t.Errorf("sharded digest %s != serial %s", sharded, serial)
	}
}
