// packetdump decodes LoRaMesher frames captured as hex — from a logic
// analyzer, an SDR, or the simulator's traces — into human-readable form,
// including HELLO routing-table payloads and per-SF airtime.
//
//	$ packetdump ffff00010412340103
//	HELLO 0001->FFFF len=9
//	  airtime SF7/BW125: 41ms
//	  routing entries (1):
//	    1234 metric 1 default
//
// Frames can also be piped on stdin, one hex string per line.
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/loraphy"
	"repro/internal/packet"
)

func main() {
	sf := flag.Int("sf", 7, "spreading factor for airtime annotation (7-12)")
	flag.Parse()

	params := loraphy.DefaultParams()
	params.SpreadingFactor = loraphy.SpreadingFactor(*sf)
	if err := params.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "packetdump: %v\n", err)
		os.Exit(1)
	}

	inputs := flag.Args()
	if len(inputs) == 0 {
		scanner := bufio.NewScanner(os.Stdin)
		for scanner.Scan() {
			if line := strings.TrimSpace(scanner.Text()); line != "" {
				inputs = append(inputs, line)
			}
		}
	}
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "packetdump: no frames given (args or stdin)")
		os.Exit(1)
	}

	failed := 0
	for _, in := range inputs {
		if err := dump(os.Stdout, in, params); err != nil {
			fmt.Fprintf(os.Stderr, "packetdump: %q: %v\n", in, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// dump decodes one hex frame and writes its description.
func dump(w io.Writer, hexFrame string, params loraphy.Params) error {
	clean := strings.Map(func(r rune) rune {
		if r == ' ' || r == ':' || r == '-' {
			return -1
		}
		return r
	}, hexFrame)
	frame, err := hex.DecodeString(clean)
	if err != nil {
		return fmt.Errorf("bad hex: %w", err)
	}
	p, err := packet.Unmarshal(frame)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, p)
	if air, err := params.Airtime(len(frame)); err == nil {
		fmt.Fprintf(w, "  airtime %v/%v: %v\n", params.SpreadingFactor, params.Bandwidth, air)
	}
	switch {
	case p.Type == packet.TypeHello:
		entries, err := packet.UnmarshalHello(p.Payload)
		if err != nil {
			return fmt.Errorf("hello payload: %w", err)
		}
		fmt.Fprintf(w, "  routing entries (%d):\n", len(entries))
		for _, e := range entries {
			fmt.Fprintf(w, "    %v metric %d %v\n", e.Addr, e.Metric, e.Role)
		}
	case len(p.Payload) > 0:
		fmt.Fprintf(w, "  payload (%d B): %s\n", len(p.Payload), previewPayload(p.Payload))
	}
	return nil
}

// previewPayload renders small payloads as text when printable, hex
// otherwise.
func previewPayload(b []byte) string {
	printable := true
	for _, c := range b {
		if c < 0x20 || c > 0x7e {
			printable = false
			break
		}
	}
	const max = 48
	trunc := b
	suffix := ""
	if len(trunc) > max {
		trunc = trunc[:max]
		suffix = "..."
	}
	if printable {
		return fmt.Sprintf("%q%s", trunc, suffix)
	}
	return hex.EncodeToString(trunc) + suffix
}
