// packetdump decodes LoRaMesher frames captured as hex — from a logic
// analyzer, an SDR, or the simulator's traces — into human-readable form,
// including HELLO routing-table payloads and per-SF airtime.
//
//	$ packetdump ffff00010412340103
//	HELLO 0001->FFFF len=9
//	  airtime SF7/BW125: 41ms
//	  routing entries (1):
//	    1234 metric 1 default
//
// Frames can also be piped on stdin, one hex string per line.
//
// With -events it instead reads a JSONL trace stream (as written by
// meshsim -trace-out), pretty-printing each event with optional filters:
//
//	$ packetdump -events events.jsonl -trace 9c4f21aa03b7e5d1
//	$ meshsim -trace-out - | packetdump -events - -kind drop -node 0003
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/loraphy"
	"repro/internal/packet"
	"repro/internal/trace"
)

func main() {
	sf := flag.Int("sf", 7, "spreading factor for airtime annotation (7-12)")
	events := flag.String("events", "", "read a JSONL trace stream from this file (\"-\" for stdin) instead of hex frames")
	traceID := flag.String("trace", "", "with -events: only events for this trace ID (the packet's journey)")
	kind := flag.String("kind", "", "with -events: only events of this kind (tx, rx, drop, route, app, stream, failure)")
	node := flag.String("node", "", "with -events: only events from this node address")
	flag.Parse()

	if *events != "" {
		r := os.Stdin
		if *events != "-" {
			f, err := os.Open(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "packetdump: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		if err := dumpEvents(os.Stdout, r, *traceID, *kind, *node); err != nil {
			fmt.Fprintf(os.Stderr, "packetdump: %v\n", err)
			os.Exit(1)
		}
		return
	}

	params := loraphy.DefaultParams()
	params.SpreadingFactor = loraphy.SpreadingFactor(*sf)
	if err := params.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "packetdump: %v\n", err)
		os.Exit(1)
	}

	inputs := flag.Args()
	if len(inputs) == 0 {
		scanner := bufio.NewScanner(os.Stdin)
		for scanner.Scan() {
			if line := strings.TrimSpace(scanner.Text()); line != "" {
				inputs = append(inputs, line)
			}
		}
	}
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "packetdump: no frames given (args or stdin)")
		os.Exit(1)
	}

	failed := 0
	for _, in := range inputs {
		if err := dump(os.Stdout, in, params); err != nil {
			fmt.Fprintf(os.Stderr, "packetdump: %q: %v\n", in, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// dumpEvents pretty-prints a JSONL trace stream, keeping only events that
// pass every given filter (empty filters pass everything).
func dumpEvents(w io.Writer, r io.Reader, traceID, kind, node string) error {
	var wantID trace.TraceID
	if traceID != "" {
		id, err := trace.ParseTraceID(traceID)
		if err != nil {
			return err
		}
		wantID = id
	}
	evs, err := trace.ReadJSONL(r)
	if err != nil {
		return err
	}
	shown := 0
	for _, ev := range evs {
		if wantID != 0 && ev.Trace != wantID {
			continue
		}
		if kind != "" && string(ev.Kind) != kind {
			continue
		}
		if node != "" && ev.Node != node {
			continue
		}
		fmt.Fprintln(w, ev)
		shown++
	}
	fmt.Fprintf(w, "%d of %d events\n", shown, len(evs))
	return nil
}

// dump decodes one hex frame and writes its description.
func dump(w io.Writer, hexFrame string, params loraphy.Params) error {
	clean := strings.Map(func(r rune) rune {
		if r == ' ' || r == ':' || r == '-' {
			return -1
		}
		return r
	}, hexFrame)
	frame, err := hex.DecodeString(clean)
	if err != nil {
		return fmt.Errorf("bad hex: %w", err)
	}
	p, err := packet.Unmarshal(frame)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, p)
	if air, err := params.Airtime(len(frame)); err == nil {
		fmt.Fprintf(w, "  airtime %v/%v: %v\n", params.SpreadingFactor, params.Bandwidth, air)
	}
	switch {
	case p.Type == packet.TypeHello:
		entries, err := packet.UnmarshalHello(p.Payload)
		if err != nil {
			return fmt.Errorf("hello payload: %w", err)
		}
		fmt.Fprintf(w, "  routing entries (%d):\n", len(entries))
		for _, e := range entries {
			fmt.Fprintf(w, "    %v metric %d %v\n", e.Addr, e.Metric, e.Role)
		}
	case len(p.Payload) > 0:
		fmt.Fprintf(w, "  payload (%d B): %s\n", len(p.Payload), previewPayload(p.Payload))
	}
	return nil
}

// previewPayload renders small payloads as text when printable, hex
// otherwise.
func previewPayload(b []byte) string {
	printable := true
	for _, c := range b {
		if c < 0x20 || c > 0x7e {
			printable = false
			break
		}
	}
	const max = 48
	trunc := b
	suffix := ""
	if len(trunc) > max {
		trunc = trunc[:max]
		suffix = "..."
	}
	if printable {
		return fmt.Sprintf("%q%s", trunc, suffix)
	}
	return hex.EncodeToString(trunc) + suffix
}
