// packetdump decodes LoRaMesher frames captured as hex — from a logic
// analyzer, an SDR, or the simulator's traces — into human-readable form,
// including HELLO routing-table payloads, ICN interest/named-data
// payloads, TDMA slot beacons, and per-SF airtime.
//
//	$ packetdump ffff00010412340103
//	HELLO 0001->FFFF len=9
//	  airtime SF7/BW125: 41ms
//	  routing entries (1):
//	    1234 metric 1 default
//
// Frames can also be piped on stdin, one hex string per line.
//
// Secured frames (link-layer security on) dump their header in the
// clear but keep the payload opaque until -key supplies the network key,
// which adds per-frame authentication and replay verdicts:
//
//	$ packetdump -key 2b7e151628aed2a6abf7158809cf4f3c 0002800100...9af3
//	DATA 0001->0002 via 0002 sec(ctr=7) len=29
//	  security: auth ok, counter 7 fresh
//	  payload (10 B): "hello mesh"
//
// With -events it instead reads a JSONL trace stream (as written by
// meshsim -trace-out), pretty-printing each event with optional filters:
//
//	$ packetdump -events events.jsonl -trace 9c4f21aa03b7e5d1
//	$ meshsim -trace-out - | packetdump -events - -kind drop -node 0003
//
// With -spans it reconstructs the causal hop tree for a packet from the
// stream's span events (meshsim -spans), showing per-hop, per-segment
// latency and the queue-wait/airtime/end-to-end breakdown; -chrome
// exports the same records as Chrome trace_event JSON for
// chrome://tracing or Perfetto:
//
//	$ packetdump -events events.jsonl -spans 9c4f21aa03b7e5d1
//	$ packetdump -events events.jsonl -spans all
//	$ packetdump -events events.jsonl -chrome timeline.json
package main

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/loraphy"
	"repro/internal/meshsec"
	"repro/internal/packet"
	"repro/internal/span"
	"repro/internal/trace"
)

func main() {
	sf := flag.Int("sf", 7, "spreading factor for airtime annotation (7-12)")
	events := flag.String("events", "", "read a JSONL trace stream from this file (\"-\" for stdin) instead of hex frames")
	traceID := flag.String("trace", "", "with -events: only events for this trace ID (the packet's journey)")
	kind := flag.String("kind", "", "with -events: only events of this kind (tx, rx, drop, route, app, stream, failure, interest, data, slot-beacon)")
	node := flag.String("node", "", "with -events: only events from this node address")
	spans := flag.String("spans", "", "with -events: render the causal hop span tree for this trace ID (\"all\" for every trace in the stream)")
	chrome := flag.String("chrome", "", "with -events: export span records as Chrome trace_event JSON to this file (\"-\" for stdout)")
	key := flag.String("key", "", "network key as 32 hex digits: authenticate and decrypt secured frames, with replay verdicts across the dump")
	flag.Parse()

	var link *meshsec.Link
	if *key != "" {
		k, err := meshsec.ParseKey(*key)
		if err != nil {
			fmt.Fprintf(os.Stderr, "packetdump: %v\n", err)
			os.Exit(1)
		}
		// The link's own address never matters offline: verification keys
		// off each frame's origin, and the shared replay windows give
		// per-origin verdicts across the whole dump.
		link = meshsec.NewLink(k, 0)
	}

	if *events != "" {
		r := os.Stdin
		if *events != "-" {
			f, err := os.Open(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "packetdump: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		var err error
		if *spans != "" || *chrome != "" {
			err = dumpSpans(os.Stdout, r, *spans, *chrome)
		} else {
			err = dumpEvents(os.Stdout, r, *traceID, *kind, *node)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "packetdump: %v\n", err)
			os.Exit(1)
		}
		return
	}

	params := loraphy.DefaultParams()
	params.SpreadingFactor = loraphy.SpreadingFactor(*sf)
	if err := params.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "packetdump: %v\n", err)
		os.Exit(1)
	}

	inputs := flag.Args()
	if len(inputs) == 0 {
		scanner := bufio.NewScanner(os.Stdin)
		for scanner.Scan() {
			if line := strings.TrimSpace(scanner.Text()); line != "" {
				inputs = append(inputs, line)
			}
		}
	}
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "packetdump: no frames given (args or stdin)")
		os.Exit(1)
	}

	failed := 0
	for _, in := range inputs {
		if err := dump(os.Stdout, in, params, link); err != nil {
			fmt.Fprintf(os.Stderr, "packetdump: %q: %v\n", in, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// dumpEvents pretty-prints a JSONL trace stream, keeping only events that
// pass every given filter (empty filters pass everything).
func dumpEvents(w io.Writer, r io.Reader, traceID, kind, node string) error {
	var wantID trace.TraceID
	if traceID != "" {
		id, err := trace.ParseTraceID(traceID)
		if err != nil {
			return err
		}
		wantID = id
	}
	evs, err := trace.ReadJSONL(r)
	if err != nil {
		return err
	}
	shown := 0
	for _, ev := range evs {
		if wantID != 0 && ev.Trace != wantID {
			continue
		}
		if kind != "" && string(ev.Kind) != kind {
			continue
		}
		if node != "" && ev.Node != node {
			continue
		}
		fmt.Fprintln(w, ev)
		shown++
	}
	fmt.Fprintf(w, "%d of %d events\n", shown, len(evs))
	return nil
}

// dumpSpans reconstructs hop span trees from a JSONL trace stream's span
// events. With a trace ID (or "all") it renders the indented causal tree
// per trace; with a chrome output path it instead exports every span
// record as Chrome trace_event JSON.
func dumpSpans(w io.Writer, r io.Reader, traceID, chromeOut string) error {
	evs, err := trace.ReadJSONL(r)
	if err != nil {
		return err
	}
	recs := span.FromEvents(evs)
	if len(recs) == 0 {
		return fmt.Errorf("no span events in stream (capture with meshsim -spans)")
	}
	if chromeOut != "" {
		out := w
		if chromeOut != "-" {
			f, err := os.Create(chromeOut)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := span.WriteChromeTrace(out, recs); err != nil {
			return err
		}
		if chromeOut != "-" {
			fmt.Fprintf(w, "wrote %d span records for %d traces to %s\n",
				len(recs), len(span.TraceIDs(recs)), chromeOut)
		}
		return nil
	}
	ids := span.TraceIDs(recs)
	if traceID != "all" {
		id, err := trace.ParseTraceID(traceID)
		if err != nil {
			return err
		}
		ids = []trace.TraceID{id}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := span.WriteTree(w, id, recs); err != nil {
			return err
		}
	}
	return nil
}

// dump decodes one hex frame and writes its description. With a link it
// also authenticates secured frames, decrypts their payloads, and runs
// the replay window shared across the dump, so a capture containing a
// replayed frame shows the verdict on the second copy.
func dump(w io.Writer, hexFrame string, params loraphy.Params, link *meshsec.Link) error {
	clean := strings.Map(func(r rune) rune {
		if r == ' ' || r == ':' || r == '-' {
			return -1
		}
		return r
	}, hexFrame)
	frame, err := hex.DecodeString(clean)
	if err != nil {
		return fmt.Errorf("bad hex: %w", err)
	}
	p, err := packet.Unmarshal(frame)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, p)
	if air, err := params.Airtime(len(frame)); err == nil {
		fmt.Fprintf(w, "  airtime %v/%v: %v\n", params.SpreadingFactor, params.Bandwidth, air)
	}
	if p.Secured {
		switch {
		case link == nil:
			fmt.Fprintln(w, "  security: unauthenticated (no key; pass -key to verify)")
			return nil // the payload is ciphertext; nothing below can parse it
		default:
			pt, ok := link.VerifyOnly(p)
			if !ok {
				fmt.Fprintln(w, "  security: auth FAILED (wrong key or tampered frame)")
				return nil
			}
			// Only authenticated counters touch the window, mirroring the
			// engine: a forged counter must not poison the verdicts.
			if link.ReplayCheck(p.Src, p.Counter) {
				fmt.Fprintf(w, "  security: auth ok, counter %d fresh\n", p.Counter)
			} else {
				fmt.Fprintf(w, "  security: auth ok, counter %d REPLAY (already seen in this dump)\n", p.Counter)
			}
			p.Payload = pt
		}
	}
	switch {
	case p.Type == packet.TypeHello:
		entries, err := packet.UnmarshalHello(p.Payload)
		if err != nil {
			return fmt.Errorf("hello payload: %w", err)
		}
		fmt.Fprintf(w, "  routing entries (%d):\n", len(entries))
		for _, e := range entries {
			fmt.Fprintf(w, "    %v metric %d %v\n", e.Addr, e.Metric, e.Role)
		}
	case p.Type == packet.TypeInterest:
		// nonce(2) + hops(1) + prevHop(2) + name (see internal/icn).
		if len(p.Payload) < 6 {
			return fmt.Errorf("interest payload: %d bytes, want >= 6", len(p.Payload))
		}
		nonce := binary.BigEndian.Uint16(p.Payload[0:2])
		hops := p.Payload[2]
		prevHop := packet.Address(binary.BigEndian.Uint16(p.Payload[3:5]))
		name := string(p.Payload[5:])
		fmt.Fprintf(w, "  interest %s nonce=%d hops=%d prev-hop=%v\n",
			previewPayload([]byte(name)), nonce, hops, prevHop)
	case p.Type == packet.TypeNamedData:
		// producer(2) + hops(1) + nameLen(1) + name + content.
		if len(p.Payload) < 4 || len(p.Payload) < 4+int(p.Payload[3]) {
			return fmt.Errorf("named-data payload: %d bytes, name length %d",
				len(p.Payload), p.Payload[3])
		}
		producer := packet.Address(binary.BigEndian.Uint16(p.Payload[0:2]))
		hops := p.Payload[2]
		nameLen := int(p.Payload[3])
		name := p.Payload[4 : 4+nameLen]
		content := p.Payload[4+nameLen:]
		fmt.Fprintf(w, "  data %s producer=%v hops=%d\n", previewPayload(name), producer, hops)
		fmt.Fprintf(w, "  content (%d B): %s\n", len(content), previewPayload(content))
	case p.Type == packet.TypeSlotBeacon:
		// slots(1) + slot(1) + depth(1), exactly.
		if len(p.Payload) != 3 {
			return fmt.Errorf("slot-beacon payload: %d bytes, want 3", len(p.Payload))
		}
		fmt.Fprintf(w, "  slot beacon: slot %d of %d, sender depth %d\n",
			p.Payload[1], p.Payload[0], p.Payload[2])
	case len(p.Payload) > 0:
		fmt.Fprintf(w, "  payload (%d B): %s\n", len(p.Payload), previewPayload(p.Payload))
	}
	return nil
}

// previewPayload renders small payloads as text when printable, hex
// otherwise.
func previewPayload(b []byte) string {
	printable := true
	for _, c := range b {
		if c < 0x20 || c > 0x7e {
			printable = false
			break
		}
	}
	const max = 48
	trunc := b
	suffix := ""
	if len(trunc) > max {
		trunc = trunc[:max]
		suffix = "..."
	}
	if printable {
		return fmt.Sprintf("%q%s", trunc, suffix)
	}
	return hex.EncodeToString(trunc) + suffix
}
