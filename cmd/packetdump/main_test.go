package main

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/loraphy"
	"repro/internal/meshsec"
	"repro/internal/packet"
	"repro/internal/span"
	"repro/internal/trace"
)

func encodeHex(t *testing.T, p *packet.Packet) string {
	t.Helper()
	buf, err := packet.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	const hexdigits = "0123456789abcdef"
	var sb strings.Builder
	for _, b := range buf {
		sb.WriteByte(hexdigits[b>>4])
		sb.WriteByte(hexdigits[b&0xf])
	}
	return sb.String()
}

func TestDumpHello(t *testing.T) {
	payload, err := packet.MarshalHello([]packet.HelloEntry{
		{Addr: 0x1234, Metric: 2, Role: packet.RoleSink},
	})
	if err != nil {
		t.Fatal(err)
	}
	hexFrame := encodeHex(t, &packet.Packet{
		Dst: packet.Broadcast, Src: 1, Type: packet.TypeHello, Payload: payload,
	})
	var sb strings.Builder
	if err := dump(&sb, hexFrame, loraphy.DefaultParams(), nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"HELLO", "1234 metric 2 sink", "airtime"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpDataWithSeparators(t *testing.T) {
	hexFrame := encodeHex(t, &packet.Packet{
		Dst: 9, Src: 2, Type: packet.TypeData, Via: 3, Payload: []byte("hi"),
	})
	// Insert separators; dump must strip them.
	spaced := strings.Join(strings.Split(hexFrame, ""), " ")
	var sb strings.Builder
	if err := dump(&sb, spaced, loraphy.DefaultParams(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"hi"`) {
		t.Errorf("dump output = %s", sb.String())
	}
}

func TestDumpErrors(t *testing.T) {
	var sb strings.Builder
	if err := dump(&sb, "zz", loraphy.DefaultParams(), nil); err == nil {
		t.Error("bad hex: want error")
	}
	if err := dump(&sb, "0102", loraphy.DefaultParams(), nil); err == nil {
		t.Error("truncated frame: want error")
	}
}

func TestPreviewPayload(t *testing.T) {
	if got := previewPayload([]byte("plain")); got != `"plain"` {
		t.Errorf("printable preview = %s", got)
	}
	if got := previewPayload([]byte{0x00, 0xff}); got != "00ff" {
		t.Errorf("binary preview = %s", got)
	}
	long := make([]byte, 100)
	for i := range long {
		long[i] = 'a'
	}
	if got := previewPayload(long); !strings.HasSuffix(got, "...") {
		t.Errorf("long preview not truncated: %s", got)
	}
}

func TestDumpEvents(t *testing.T) {
	// Build a small stream the way meshsim's sink would.
	tr := trace.New(16)
	var jsonl bytes.Buffer
	tr.SetSink(&jsonl)
	at := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	id := trace.TraceID(0x9c4f21aa03b7e5d1)
	tr.EmitPacket(at, "0001", trace.KindTx, id, "tx DATA")
	tr.EmitPacket(at.Add(time.Second), "0002", trace.KindRx, id, "rx DATA")
	tr.EmitPacket(at.Add(2*time.Second), "0002", trace.KindDrop, id, "drop: no route")
	tr.Emit(at.Add(3*time.Second), "0003", trace.KindTx, "unrelated beacon")

	run := func(traceID, kind, node string) string {
		t.Helper()
		var out bytes.Buffer
		if err := dumpEvents(&out, bytes.NewReader(jsonl.Bytes()), traceID, kind, node); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}

	all := run("", "", "")
	if !strings.Contains(all, "4 of 4 events") {
		t.Errorf("unfiltered dump:\n%s", all)
	}
	byTrace := run(id.String(), "", "")
	if !strings.Contains(byTrace, "3 of 4 events") || strings.Contains(byTrace, "unrelated") {
		t.Errorf("trace filter:\n%s", byTrace)
	}
	if !strings.Contains(byTrace, "drop: no route") {
		t.Error("journey lost its drop reason")
	}
	byKind := run("", "drop", "")
	if !strings.Contains(byKind, "1 of 4 events") {
		t.Errorf("kind filter:\n%s", byKind)
	}
	byNode := run("", "", "0002")
	if !strings.Contains(byNode, "2 of 4 events") {
		t.Errorf("node filter:\n%s", byNode)
	}
	combined := run(id.String(), "rx", "0002")
	if !strings.Contains(combined, "1 of 4 events") {
		t.Errorf("combined filters:\n%s", combined)
	}

	if err := dumpEvents(io.Discard, bytes.NewReader(jsonl.Bytes()), "zzz", "", ""); err == nil {
		t.Error("bad trace ID: want error")
	}
	if err := dumpEvents(io.Discard, strings.NewReader("{not json}\n"), "", "", ""); err == nil {
		t.Error("malformed JSONL: want error")
	}
}

func TestDumpInterest(t *testing.T) {
	// nonce(2) + hops(1) + prevHop(2) + name, as internal/icn sends it.
	name := "city/7/air"
	payload := make([]byte, 5+len(name))
	binary.BigEndian.PutUint16(payload[0:2], 258)
	payload[2] = 3
	binary.BigEndian.PutUint16(payload[3:5], 0x0007)
	copy(payload[5:], name)
	hexFrame := encodeHex(t, &packet.Packet{
		Dst: packet.Broadcast, Src: 0x0002, Type: packet.TypeInterest, Payload: payload,
	})
	var sb strings.Builder
	if err := dump(&sb, hexFrame, loraphy.DefaultParams(), nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"INTEREST", `"city/7/air"`, "nonce=258", "hops=3", "prev-hop=0007"} {
		if !strings.Contains(out, want) {
			t.Errorf("interest dump missing %q:\n%s", want, out)
		}
	}

	short := encodeHex(t, &packet.Packet{
		Dst: packet.Broadcast, Src: 0x0002, Type: packet.TypeInterest, Payload: []byte{1, 2, 3},
	})
	if err := dump(io.Discard, short, loraphy.DefaultParams(), nil); err == nil {
		t.Error("truncated interest payload: want error")
	}
}

func TestDumpNamedData(t *testing.T) {
	// producer(2) + hops(1) + nameLen(1) + name + content.
	name := "city/7/air"
	content := "21.5C"
	payload := make([]byte, 4+len(name)+len(content))
	binary.BigEndian.PutUint16(payload[0:2], 0x0009)
	payload[2] = 2
	payload[3] = uint8(len(name))
	copy(payload[4:], name)
	copy(payload[4+len(name):], content)
	hexFrame := encodeHex(t, &packet.Packet{
		Dst: 0x0002, Src: 0x0005, Via: 0x0003, Type: packet.TypeNamedData, Payload: payload,
	})
	var sb strings.Builder
	if err := dump(&sb, hexFrame, loraphy.DefaultParams(), nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"NAMED_DATA", `"city/7/air"`, "producer=0009", "hops=2", `content (5 B): "21.5C"`} {
		if !strings.Contains(out, want) {
			t.Errorf("named-data dump missing %q:\n%s", want, out)
		}
	}

	// A name length pointing past the payload is rejected.
	bad := encodeHex(t, &packet.Packet{
		Dst: 0x0002, Src: 0x0005, Via: 0x0003, Type: packet.TypeNamedData,
		Payload: []byte{0x00, 0x09, 2, 200, 'x'},
	})
	if err := dump(io.Discard, bad, loraphy.DefaultParams(), nil); err == nil {
		t.Error("overlong name length: want error")
	}
}

func TestDumpSlotBeacon(t *testing.T) {
	hexFrame := encodeHex(t, &packet.Packet{
		Dst: packet.Broadcast, Src: 0x0004, Type: packet.TypeSlotBeacon,
		Payload: []byte{3, 1, 2},
	})
	var sb strings.Builder
	if err := dump(&sb, hexFrame, loraphy.DefaultParams(), nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"SLOT_BEACON", "slot 1 of 3", "sender depth 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("slot-beacon dump missing %q:\n%s", want, out)
		}
	}

	bad := encodeHex(t, &packet.Packet{
		Dst: packet.Broadcast, Src: 0x0004, Type: packet.TypeSlotBeacon,
		Payload: []byte{3, 1},
	})
	if err := dump(io.Discard, bad, loraphy.DefaultParams(), nil); err == nil {
		t.Error("short slot-beacon payload: want error")
	}
}

func TestDumpEventsStrategyKinds(t *testing.T) {
	tr := trace.New(16)
	var jsonl bytes.Buffer
	tr.SetSink(&jsonl)
	at := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	id := trace.TraceID(0x1122334455667788)
	tr.EmitPacket(at, "0002", trace.KindInterest, id, "interest %q nonce=%d hops=%d", "city/7/air", 258, 0)
	tr.EmitPacket(at.Add(time.Second), "0009", trace.KindData, id, "data %q hops=%d", "city/7/air", 1)
	tr.Emit(at.Add(2*time.Second), "0004", trace.KindSlotBeacon, "beacon slot=1")

	run := func(kind string) string {
		t.Helper()
		var out bytes.Buffer
		if err := dumpEvents(&out, bytes.NewReader(jsonl.Bytes()), "", kind, ""); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	for kind, want := range map[string]string{
		"interest":    "interest \"city/7/air\"",
		"data":        "data \"city/7/air\"",
		"slot-beacon": "beacon slot=1",
	} {
		out := run(kind)
		if !strings.Contains(out, "1 of 3 events") || !strings.Contains(out, want) {
			t.Errorf("-kind %s filter:\n%s", kind, out)
		}
	}
}

func TestDumpSpansCacheHit(t *testing.T) {
	// A cache-hit journey as the ICN engine records it: requester tx,
	// cache node rx + cache-hit + data tx, requester rx + deliver.
	tr := trace.New(32)
	var jsonl bytes.Buffer
	tr.SetSink(&jsonl)
	rec := span.NewRecorder(32)
	rec.AttachTracer(tr)
	at := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	id := trace.TraceID(0x9c4f21aa03b7e5d1)
	rec.Record(at, "0001", id, span.SegEnqueue, 0, "INTEREST")
	rec.Record(at.Add(10*time.Millisecond), "0001", id, span.SegAirtime, 41*time.Millisecond, "INTEREST")
	rec.Record(at.Add(51*time.Millisecond), "0003", id, span.SegRx, 0, "INTEREST")
	rec.Record(at.Add(52*time.Millisecond), "0003", id, span.SegCacheHit, 0, "city/7/air")
	rec.Record(at.Add(60*time.Millisecond), "0003", id, span.SegAirtime, 46*time.Millisecond, "NAMED_DATA")
	rec.Record(at.Add(106*time.Millisecond), "0001", id, span.SegRx, 0, "NAMED_DATA")
	rec.Record(at.Add(107*time.Millisecond), "0001", id, span.SegDeliver, 0, "NAMED_DATA")

	var out bytes.Buffer
	if err := dumpSpans(&out, bytes.NewReader(jsonl.Bytes()), "all", ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"cache-hit", "city/7/air", "hop 0003", "delivered"} {
		if !strings.Contains(got, want) {
			t.Errorf("span tree missing %q:\n%s", want, got)
		}
	}
}

// sealedHex builds one secured DATA frame under key/counter and returns
// it as hex, exactly as a capture would present it.
func sealedHex(t *testing.T, key meshsec.Key, src packet.Address, counter uint32, payload string) string {
	t.Helper()
	p := &packet.Packet{
		Dst: 0x0002, Src: src, Via: 0x0002, Type: packet.TypeData,
		Payload: []byte(payload),
		Secured: true, SecFlags: packet.SecFlagEncrypted, Counter: counter,
	}
	frame, err := packet.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := meshsec.NewLink(key, src).SealFrame(frame, p); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(frame)
}

func TestDumpSecuredFrames(t *testing.T) {
	key := meshsec.Key{
		0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
	}
	frame := sealedHex(t, key, 0x0001, 7, "hello mesh")

	// Without a key: the frame parses but stays opaque.
	var sb strings.Builder
	if err := dump(&sb, frame, loraphy.DefaultParams(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "unauthenticated (no key") {
		t.Errorf("keyless dump missing the no-key notice:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "hello mesh") {
		t.Errorf("keyless dump leaked plaintext:\n%s", sb.String())
	}

	// With the key: auth ok, decrypted payload, and the second copy of
	// the same frame is called out as a replay.
	link := meshsec.NewLink(key, 0)
	sb.Reset()
	if err := dump(&sb, frame, loraphy.DefaultParams(), link); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "auth ok, counter 7 fresh") {
		t.Errorf("dump missing auth verdict:\n%s", out)
	}
	if !strings.Contains(out, "hello mesh") {
		t.Errorf("dump missing decrypted payload:\n%s", out)
	}
	sb.Reset()
	if err := dump(&sb, frame, loraphy.DefaultParams(), link); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "REPLAY") {
		t.Errorf("second copy not flagged as replay:\n%s", sb.String())
	}

	// A tampered MIC fails authentication.
	raw, _ := hex.DecodeString(frame)
	raw[len(raw)-1] ^= 0x01
	sb.Reset()
	if err := dump(&sb, hex.EncodeToString(raw), loraphy.DefaultParams(), link); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "auth FAILED") {
		t.Errorf("tampered frame not flagged:\n%s", sb.String())
	}

	// The wrong key also fails authentication.
	other := meshsec.NewLink(meshsec.Key{1, 2, 3}, 0)
	sb.Reset()
	if err := dump(&sb, frame, loraphy.DefaultParams(), other); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "auth FAILED") {
		t.Errorf("wrong-key dump not flagged:\n%s", sb.String())
	}

	// Legacy plaintext frames are untouched by the key path.
	plain := encodeHex(t, &packet.Packet{
		Dst: 0x0002, Src: 0x0001, Via: 0x0002, Type: packet.TypeData, Payload: []byte("plain"),
	})
	sb.Reset()
	if err := dump(&sb, plain, loraphy.DefaultParams(), link); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"plain"`) || strings.Contains(sb.String(), "security:") {
		t.Errorf("plaintext frame dump changed under -key:\n%s", sb.String())
	}
}
