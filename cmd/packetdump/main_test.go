package main

import (
	"strings"
	"testing"

	"repro/internal/loraphy"
	"repro/internal/packet"
)

func encodeHex(t *testing.T, p *packet.Packet) string {
	t.Helper()
	buf, err := packet.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	const hexdigits = "0123456789abcdef"
	var sb strings.Builder
	for _, b := range buf {
		sb.WriteByte(hexdigits[b>>4])
		sb.WriteByte(hexdigits[b&0xf])
	}
	return sb.String()
}

func TestDumpHello(t *testing.T) {
	payload, err := packet.MarshalHello([]packet.HelloEntry{
		{Addr: 0x1234, Metric: 2, Role: packet.RoleSink},
	})
	if err != nil {
		t.Fatal(err)
	}
	hexFrame := encodeHex(t, &packet.Packet{
		Dst: packet.Broadcast, Src: 1, Type: packet.TypeHello, Payload: payload,
	})
	var sb strings.Builder
	if err := dump(&sb, hexFrame, loraphy.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"HELLO", "1234 metric 2 sink", "airtime"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpDataWithSeparators(t *testing.T) {
	hexFrame := encodeHex(t, &packet.Packet{
		Dst: 9, Src: 2, Type: packet.TypeData, Via: 3, Payload: []byte("hi"),
	})
	// Insert separators; dump must strip them.
	spaced := strings.Join(strings.Split(hexFrame, ""), " ")
	var sb strings.Builder
	if err := dump(&sb, spaced, loraphy.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"hi"`) {
		t.Errorf("dump output = %s", sb.String())
	}
}

func TestDumpErrors(t *testing.T) {
	var sb strings.Builder
	if err := dump(&sb, "zz", loraphy.DefaultParams()); err == nil {
		t.Error("bad hex: want error")
	}
	if err := dump(&sb, "0102", loraphy.DefaultParams()); err == nil {
		t.Error("truncated frame: want error")
	}
}

func TestPreviewPayload(t *testing.T) {
	if got := previewPayload([]byte("plain")); got != `"plain"` {
		t.Errorf("printable preview = %s", got)
	}
	if got := previewPayload([]byte{0x00, 0xff}); got != "00ff" {
		t.Errorf("binary preview = %s", got)
	}
	long := make([]byte, 100)
	for i := range long {
		long[i] = 'a'
	}
	if got := previewPayload(long); !strings.HasSuffix(got, "...") {
		t.Errorf("long preview not truncated: %s", got)
	}
}
