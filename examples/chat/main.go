// Chat: two people at opposite ends of a valley exchange messages through
// a LoRa mesh — the distributed application "hosted only on tiny IoT
// nodes" the demo paper closes on. Messages use the reliable transport, so
// each side knows when a message actually arrived; the nodes in between
// are plain LoRaMesher routers.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/loramesher"
	"repro/lorasim"
)

// line is one scripted chat message.
type line struct {
	fromAlice bool
	text      string
}

var script = []line{
	{true, "anyone on the ridge? over."},
	{false, "reading you through three hops. signal is clean."},
	{true, "sending tomorrow's sensor placement map next."},
	{false, "got it. the mesh rerouted around node 3 last night, no data lost."},
	{true, "good. powering down until 06:00."},
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("chat: %v", err)
	}
}

func run() error {
	// A 5-node chain: Alice - r1 - r2 - r3 - Bob.
	topo, err := lorasim.LineTopology(5, 8000)
	if err != nil {
		return err
	}
	sim, err := lorasim.New(lorasim.Config{
		Topology: topo,
		Seed:     7,
		Node:     loramesher.Config{HelloPeriod: 30 * time.Second},
	})
	if err != nil {
		return err
	}
	alice, bob := sim.Handle(0), sim.Handle(4)
	fmt.Printf("alice=%v ... 3 routers ... bob=%v (32 km end to end)\n\n", alice.Addr, bob.Addr)

	if _, ok := lorasim.RunUntilConverged(sim, time.Second, time.Hour); !ok {
		return fmt.Errorf("mesh did not converge")
	}
	if e, ok := alice.Mesher.Table().Lookup(bob.Addr); ok {
		fmt.Printf("alice reaches bob in %d hops via %v\n\n", e.Metric, e.Via)
	}

	// Print deliveries as they happen, with virtual timestamps.
	start := sim.Now()
	show := func(who string, h *lorasim.Handle) {
		h.OnMessage = func(msg loramesher.Message) {
			fmt.Printf("[%7v] %s ⇐ %q\n",
				msg.At.Sub(start).Round(time.Millisecond), who, msg.Payload)
		}
	}
	show("bob  ", bob)
	show("alice", alice)

	for i, l := range script {
		src, dst := alice, bob
		if !l.fromAlice {
			src, dst = bob, alice
		}
		if _, err := src.Mesher.SendReliable(dst.Addr, []byte(l.text)); err != nil {
			return fmt.Errorf("message %d: %w", i, err)
		}
		// Wait for the ack'd delivery before the reply, like a real chat.
		sent := len(src.StreamEvents)
		for tries := 0; len(src.StreamEvents) == sent && tries < 600; tries++ {
			sim.Run(time.Second)
		}
		if len(src.StreamEvents) == sent {
			return fmt.Errorf("message %d never acknowledged", i)
		}
		if ev := src.StreamEvents[len(src.StreamEvents)-1]; ev.Err != nil {
			return fmt.Errorf("message %d failed: %w", i, ev.Err)
		}
	}

	fmt.Printf("\n%d messages delivered and acknowledged end-to-end\n", len(script))
	relay := sim.Handle(2)
	fmt.Printf("middle router %v forwarded %d frames without ever reading a message\n",
		relay.Addr, relay.Proto.Metrics().Counter("fwd.frames").Value())
	return nil
}
