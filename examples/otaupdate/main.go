// OTA update: push a firmware image to a far node across the mesh with the
// reliable large-payload transport (SYNC / XL_DATA / ACK / LOST). The
// image is orders of magnitude larger than one LoRa frame, so it is
// chunked, acknowledged, and retransmitted hop by hop across a lossy
// channel — the stress case for LoRaMesher's transport.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/loramesher"
	"repro/lorasim"
)

func main() {
	size := flag.Int("size", 8192, "firmware image size in bytes")
	hops := flag.Int("hops", 3, "radio hops between server and target")
	loss := flag.Float64("loss", 0.05, "injected per-link frame loss rate")
	seed := flag.Int64("seed", 3, "simulation seed")
	flag.Parse()
	if err := run(*size, *hops, *loss, *seed); err != nil {
		log.SetFlags(0)
		log.Fatalf("otaupdate: %v", err)
	}
}

func run(size, hops int, loss float64, seed int64) error {
	topo, err := lorasim.LineTopology(hops+1, 8000)
	if err != nil {
		return err
	}
	sim, err := lorasim.New(lorasim.Config{
		Topology: topo,
		Seed:     seed,
		Medium:   lorasim.ChannelConfig{ExtraFrameLossRate: loss},
		Node: loramesher.Config{
			HelloPeriod: time.Minute,
			StreamRetry: 20 * time.Second,
			// OTA images are long transfers; give the stream more
			// retry budget than the interactive default.
			StreamMaxRetries: 10,
		},
	})
	if err != nil {
		return err
	}
	server, target := sim.Handle(0), sim.Handle(hops)
	fmt.Printf("ota: pushing %d B firmware from %v to %v over %d hops, %.0f%% link loss\n",
		size, server.Addr, target.Addr, hops, loss*100)

	if _, ok := lorasim.RunUntilConverged(sim, time.Second, time.Hour); !ok {
		return fmt.Errorf("mesh did not converge")
	}

	image := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(image)

	start := sim.Now()
	id, err := server.Mesher.SendReliable(target.Addr, image)
	if err != nil {
		return err
	}
	fmt.Printf("stream %d opened; transferring...\n", id)

	for tries := 0; len(server.StreamEvents) == 0 && tries < 240; tries++ {
		sim.Run(30 * time.Second)
	}
	if len(server.StreamEvents) == 0 {
		return fmt.Errorf("transfer never completed")
	}
	ev := server.StreamEvents[0]
	if ev.Err != nil {
		return fmt.Errorf("transfer failed: %w", ev.Err)
	}
	if len(target.Msgs) != 1 || !bytes.Equal(target.Msgs[0].Payload, image) {
		return fmt.Errorf("image corrupted in transit")
	}

	elapsed := ev.Elapsed
	fmt.Printf("\nimage delivered intact after %v of network time\n", elapsed.Round(time.Second))
	fmt.Printf("  chunks            %d (%d B each max)\n", ev.Chunks, 244)
	fmt.Printf("  retransmissions   %d\n", ev.Retransmissions)
	fmt.Printf("  goodput           %.1f B/s\n", float64(size)/elapsed.Seconds())
	fmt.Printf("  total airtime     %v across the mesh\n", sim.TotalAirtime().Round(time.Millisecond))
	_ = start
	return nil
}
