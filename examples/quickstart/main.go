// Quickstart: the demo paper's core scene — three LoRa nodes in a line
// where the ends are out of radio range of each other. LoRaMesher forms a
// mesh: the middle node becomes a router, and the end nodes exchange data
// through it with no infrastructure.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/loramesher"
	"repro/lorasim"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("quickstart: %v", err)
	}
}

func run() error {
	// Three nodes, 8 km apart: adjacent pairs hear each other, the ends
	// do not (SF7 closes at ≈13 km under the default channel model).
	topo, err := lorasim.LineTopology(3, 8000)
	if err != nil {
		return err
	}
	sim, err := lorasim.New(lorasim.Config{
		Topology: topo,
		Seed:     1,
		Node: loramesher.Config{
			HelloPeriod: 30 * time.Second,
		},
	})
	if err != nil {
		return err
	}
	a, b, c := sim.Handle(0), sim.Handle(1), sim.Handle(2)
	fmt.Printf("nodes: A=%v  B=%v (router)  C=%v — 8 km spacing, SF7/BW125\n\n", a.Addr, b.Addr, c.Addr)

	fmt.Println("waiting for the distance-vector mesh to converge...")
	elapsed, ok := lorasim.RunUntilConverged(sim, time.Second, time.Hour)
	if !ok {
		return fmt.Errorf("mesh did not converge")
	}
	fmt.Printf("converged after %v of network time\n\n", elapsed.Round(time.Second))

	fmt.Println("A's routing table:")
	for _, e := range a.Mesher.Table().Entries() {
		fmt.Printf("  dst %v  via %v  metric %d\n", e.Addr, e.Via, e.Metric)
	}
	fmt.Println()

	// A datagram from A to C must relay through B.
	payload := []byte("hello from A, routed by B")
	if err := a.Proto.Send(c.Addr, payload); err != nil {
		return err
	}
	sim.Run(30 * time.Second)

	if len(c.Msgs) == 0 {
		return fmt.Errorf("C received nothing")
	}
	msg := c.Msgs[0]
	fmt.Printf("C received %q from %v\n", msg.Payload, msg.From)
	fmt.Printf("B forwarded %d data frame(s) as a router\n",
		b.Proto.Metrics().Counter("fwd.frames").Value())

	// And a reliable multi-frame payload back from C to A.
	blob := make([]byte, 600)
	for i := range blob {
		blob[i] = byte(i)
	}
	if _, err := c.Mesher.SendReliable(a.Addr, blob); err != nil {
		return err
	}
	sim.Run(5 * time.Minute)
	if len(c.StreamEvents) == 0 || c.StreamEvents[0].Err != nil {
		return fmt.Errorf("reliable transfer failed: %+v", c.StreamEvents)
	}
	ev := c.StreamEvents[0]
	fmt.Printf("C→A reliable transfer: %d chunks in %v (%d retransmissions)\n",
		ev.Chunks, ev.Elapsed.Round(time.Millisecond), ev.Retransmissions)

	fmt.Fprintln(os.Stdout, "\nquickstart OK")
	return nil
}
