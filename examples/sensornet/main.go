// Sensornet: the IoT workload from the paper's motivation — a field of
// battery-powered sensor nodes reporting telemetry to a sink over the
// mesh, with no LoRaWAN gateway. Far nodes reach the sink across multiple
// hops; the example reports delivery, latency, per-node routing depth, and
// EU868 duty-cycle compliance over six simulated hours.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/loramesher"
	"repro/lorasim"
)

func main() {
	nodes := flag.Int("nodes", 12, "number of sensor nodes (plus one sink)")
	hours := flag.Int("hours", 6, "simulated duration in hours")
	interval := flag.Duration("interval", 10*time.Minute, "mean telemetry interval per sensor")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()
	if err := run(*nodes, *hours, *interval, *seed); err != nil {
		log.SetFlags(0)
		log.Fatalf("sensornet: %v", err)
	}
}

func run(nodes, hours int, interval time.Duration, seed int64) error {
	// Scatter sensors over a 25x25 km field; SF7 links close at ≈13 km,
	// so the far corners need multi-hop paths to the sink at index 0.
	topo, err := lorasim.RandomTopology(nodes+1, 25000, 25000, 12000, seed)
	if err != nil {
		return err
	}
	sim, err := lorasim.New(lorasim.Config{
		Topology: topo,
		Seed:     seed,
		Node: loramesher.Config{
			HelloPeriod: 2 * time.Minute,
			// EU868 g1: the 1% duty cycle is enforced (the default).
		},
		// The sink advertises its role in HELLOs; sensors discover it
		// instead of being provisioned with its address.
		NodeOverride: func(i int, cfg loramesher.Config) loramesher.Config {
			if i == 0 {
				cfg.Role = loramesher.RoleSink
			}
			return cfg
		},
	})
	if err != nil {
		return err
	}
	sink := sim.Handle(0)
	fmt.Printf("sensornet: %d sensors + sink %v on a 25x25 km field (seed %d)\n",
		nodes, sink.Addr, seed)

	conv, ok := lorasim.RunUntilConverged(sim, 10*time.Second, 4*time.Hour)
	if !ok {
		return fmt.Errorf("mesh did not converge")
	}
	fmt.Printf("mesh converged in %v\n", conv.Round(time.Second))

	// Every sensor can now discover the sink by role — no provisioning.
	discovered := 0
	for i := 1; i <= nodes; i++ {
		if sinks := sim.Handle(i).Mesher.FindByRole(loramesher.RoleSink); len(sinks) == 1 && sinks[0] == sink.Addr {
			discovered++
		}
	}
	fmt.Printf("%d/%d sensors discovered the sink by its advertised role\n\n", discovered, nodes)

	stats, err := sim.StartManyToOne(0, 24, interval, true)
	if err != nil {
		return err
	}
	sim.Run(time.Duration(hours) * time.Hour)

	total := lorasim.MergeStats(stats)
	fmt.Printf("after %d h of telemetry every ~%v per sensor:\n", hours, interval)
	fmt.Printf("  offered    %5d readings\n", total.Offered)
	fmt.Printf("  delivered  %5d (PDR %.1f%%)\n", total.Delivered, 100*total.DeliveryRatio())
	fmt.Printf("  mean latency %v\n\n", total.MeanLatency().Round(time.Millisecond))

	fmt.Println("per-sensor view (hops = routing metric at the sensor):")
	fmt.Println("  node   hops  sent  delivered  airtime     duty-cycle")
	budget := 36 * time.Second // 1% of an hour
	violations := 0
	for i := 1; i <= nodes; i++ {
		h := sim.Handle(i)
		hops := "-"
		if e, ok := h.Mesher.Table().Lookup(sink.Addr); ok {
			hops = fmt.Sprintf("%d", e.Metric)
		}
		st := stats[i]
		air := h.Mesher.AirtimeUsed()
		perHour := air / time.Duration(hours)
		duty := float64(perHour) / float64(time.Hour)
		if perHour > budget {
			violations++
		}
		fmt.Printf("  %v   %3s  %4d  %9d  %-10v  %.3f%%\n",
			h.Addr, hops, st.Offered, st.Delivered, air.Round(time.Millisecond), 100*duty)
	}
	if violations == 0 {
		fmt.Printf("\nall nodes within the EU868 1%% duty-cycle budget (≤%v airtime/hour)\n", budget)
	} else {
		fmt.Printf("\nWARNING: %d nodes exceeded the hourly duty-cycle budget\n", violations)
	}
	return nil
}
