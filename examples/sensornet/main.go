// Sensornet: the IoT workload from the paper's motivation — a field of
// battery-powered sensor nodes reporting telemetry to a sink over the
// mesh, with no LoRaWAN gateway. Far nodes reach the sink across multiple
// hops; the example reports delivery, latency, per-node routing depth, and
// EU868 duty-cycle compliance over six simulated hours.
//
// By default the sink runs the store-and-forward gateway bridge: every
// reading it hears is spooled and uplinked in batches to a local HTTP
// collector, which verifies exactly-once arrival. Pass -stdout for the
// original mesh-only report without the bridge.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/gateway"
	"repro/loramesher"
	"repro/lorasim"
)

func main() {
	nodes := flag.Int("nodes", 12, "number of sensor nodes (plus one sink)")
	hours := flag.Int("hours", 6, "simulated duration in hours")
	interval := flag.Duration("interval", 10*time.Minute, "mean telemetry interval per sensor")
	seed := flag.Int64("seed", 1, "simulation seed")
	stdout := flag.Bool("stdout", false, "mesh-only report, no gateway uplink (pre-bridge behavior)")
	flag.Parse()
	if err := run(*nodes, *hours, *interval, *seed, *stdout); err != nil {
		log.SetFlags(0)
		log.Fatalf("sensornet: %v", err)
	}
}

func run(nodes, hours int, interval time.Duration, seed int64, stdout bool) error {
	// Scatter sensors over a 25x25 km field; SF7 links close at ≈13 km,
	// so the far corners need multi-hop paths to the sink at index 0.
	topo, err := lorasim.RandomTopology(nodes+1, 25000, 25000, 12000, seed)
	if err != nil {
		return err
	}
	sim, err := lorasim.New(lorasim.Config{
		Topology: topo,
		Seed:     seed,
		Node: loramesher.Config{
			HelloPeriod: 2 * time.Minute,
			// EU868 g1: the 1% duty cycle is enforced (the default).
		},
		// The sink advertises its role in HELLOs; sensors discover it
		// instead of being provisioned with its address.
		NodeOverride: func(i int, cfg loramesher.Config) loramesher.Config {
			if i == 0 {
				cfg.Role = loramesher.RoleSink
			}
			return cfg
		},
	})
	if err != nil {
		return err
	}
	sink := sim.Handle(0)
	fmt.Printf("sensornet: %d sensors + sink %v on a 25x25 km field (seed %d)\n",
		nodes, sink.Addr, seed)

	// The backend bridge: the sink's readings drain through a gateway
	// into a local HTTP collector (the embedded backend over a real
	// socket), unless -stdout asks for the mesh-only view.
	var collector *gateway.Backend
	var gw *gateway.Gateway
	if !stdout {
		collector = gateway.NewBackend()
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: collector}
		go srv.Serve(lis)
		defer srv.Close()
		url := "http://" + lis.Addr().String() + "/uplink"
		gw, err = gateway.New(gateway.Config{
			URL:           url,
			BatchSize:     16,
			FlushInterval: time.Minute,
			RetryBase:     10 * time.Second,
			RetryMax:      time.Minute,
		})
		if err != nil {
			return err
		}
		defer gw.Close()
		if _, err := gateway.AttachSim(sim, 0, gw); err != nil {
			return err
		}
		fmt.Printf("gateway bridge on the sink, uplinking to %s\n", url)
	}

	conv, ok := lorasim.RunUntilConverged(sim, 10*time.Second, 4*time.Hour)
	if !ok {
		return fmt.Errorf("mesh did not converge")
	}
	fmt.Printf("mesh converged in %v\n", conv.Round(time.Second))

	// Every sensor can now discover the sink by role — no provisioning.
	discovered := 0
	for i := 1; i <= nodes; i++ {
		if sinks := sim.Handle(i).Mesher.FindByRole(loramesher.RoleSink); len(sinks) == 1 && sinks[0] == sink.Addr {
			discovered++
		}
	}
	fmt.Printf("%d/%d sensors discovered the sink by its advertised role\n\n", discovered, nodes)

	stats, err := sim.StartManyToOne(0, 24, interval, true)
	if err != nil {
		return err
	}
	sim.Run(time.Duration(hours) * time.Hour)

	total := lorasim.MergeStats(stats)
	fmt.Printf("after %d h of telemetry every ~%v per sensor:\n", hours, interval)
	fmt.Printf("  offered    %5d readings\n", total.Offered)
	fmt.Printf("  delivered  %5d (PDR %.1f%%)\n", total.Delivered, 100*total.DeliveryRatio())
	fmt.Printf("  mean latency %v\n\n", total.MeanLatency().Round(time.Millisecond))

	fmt.Println("per-sensor view (hops = routing metric at the sensor):")
	fmt.Println("  node   hops  sent  delivered  airtime     duty-cycle")
	budget := 36 * time.Second // 1% of an hour
	violations := 0
	for i := 1; i <= nodes; i++ {
		h := sim.Handle(i)
		hops := "-"
		if e, ok := h.Mesher.Table().Lookup(sink.Addr); ok {
			hops = fmt.Sprintf("%d", e.Metric)
		}
		st := stats[i]
		air := h.Mesher.AirtimeUsed()
		perHour := air / time.Duration(hours)
		duty := float64(perHour) / float64(time.Hour)
		if perHour > budget {
			violations++
		}
		fmt.Printf("  %v   %3s  %4d  %9d  %-10v  %.3f%%\n",
			h.Addr, hops, st.Offered, st.Delivered, air.Round(time.Millisecond), 100*duty)
	}
	if violations == 0 {
		fmt.Printf("\nall nodes within the EU868 1%% duty-cycle budget (≤%v airtime/hour)\n", budget)
	} else {
		fmt.Printf("\nWARNING: %d nodes exceeded the hourly duty-cycle budget\n", violations)
	}

	if gw != nil {
		// Let the last flush window elapse so trailing readings depart.
		if _, ok := sim.RunUntil(func() bool { return gw.Pending() == 0 },
			30*time.Second, time.Hour); !ok {
			return fmt.Errorf("gateway spool never drained (pending %d)", gw.Pending())
		}
		reg := gw.Metrics()
		fmt.Printf("\ncollector received %d readings in %d batches (%d duplicates)\n",
			collector.Distinct(), collector.Batches(), collector.Duplicates())
		age := reg.Histogram("gw.uplink.age_ms")
		fmt.Printf("uplink batch rtt p95 %v; reading age at uplink mean %v\n",
			time.Duration(reg.Histogram("gw.uplink.rtt_ms").Quantile(0.95))*time.Millisecond,
			(time.Duration(age.Mean()) * time.Millisecond).Round(time.Second))
		if collector.Distinct() == len(sink.Msgs) && collector.Duplicates() == 0 {
			fmt.Println("every reading the sink heard reached the collector exactly once")
		}
	}
	return nil
}
