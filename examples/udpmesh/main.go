// udpmesh runs LoRaMesher over real UDP sockets — the mesh as an actual
// distributed system. Two modes:
//
// Demo (no flags): boots a 4-node chain on localhost inside this process,
// each node on its own UDP port, converges, and exchanges traffic:
//
//	go run ./examples/udpmesh
//
// Distributed (flags): runs ONE node; start several processes (or
// machines) and point them at each other. Peers define who "hears" whom:
//
//	go run ./examples/udpmesh -addr 0x0001 -listen :7001 -peers 127.0.0.1:7002
//	go run ./examples/udpmesh -addr 0x0002 -listen :7002 -peers 127.0.0.1:7001,127.0.0.1:7003
//	go run ./examples/udpmesh -addr 0x0003 -listen :7003 -peers 127.0.0.1:7002 -send 0x0001:hello
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/udpnet"
	"repro/loramesher"
)

func main() {
	var (
		addr    = flag.String("addr", "", "this node's mesh address (hex, e.g. 0x0001); empty runs the in-process demo")
		listen  = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		peers   = flag.String("peers", "", "comma-separated peer UDP addresses")
		scale   = flag.Float64("timescale", 1, "protocol time compression")
		send    = flag.String("send", "", "optional dst:message to send reliably once routed (e.g. 0x0001:hello)")
		metrics = flag.String("metrics", "", "serve Prometheus /metrics and /healthz on this address (e.g. 127.0.0.1:9100)")
	)
	flag.Parse()
	var err error
	if *addr == "" {
		err = demo()
	} else {
		err = single(*addr, *listen, *peers, *scale, *send, *metrics)
	}
	if err != nil {
		log.SetFlags(0)
		log.Fatalf("udpmesh: %v", err)
	}
}

func nodeConfig(a loramesher.Address) loramesher.Config {
	return loramesher.Config{
		Address:     a,
		HelloPeriod: 2 * time.Second,
		StreamRetry: 4 * time.Second,
	}
}

// demo boots a 4-node chain in-process.
func demo() error {
	const n = 4
	fmt.Printf("booting %d mesh nodes on localhost UDP ports (chain connectivity, 100x time)\n", n)
	hosts := make([]*udpnet.Host, n)
	for i := range hosts {
		h, err := udpnet.Start(udpnet.Config{
			Listen:      "127.0.0.1:0",
			Node:        nodeConfig(loramesher.Address(i + 1)),
			TimeScale:   100,
			Seed:        int64(i + 1),
			MetricsAddr: "127.0.0.1:0",
		})
		if err != nil {
			return err
		}
		defer h.Close()
		hosts[i] = h
		fmt.Printf("  node %v on %v (metrics http://%s/metrics)\n", h.MeshAddress(), h.Addr(), h.MetricsAddr())
	}
	for i := 0; i < n-1; i++ {
		if err := hosts[i].AddPeer(hosts[i+1].Addr().String()); err != nil {
			return err
		}
		if err := hosts[i+1].AddPeer(hosts[i].Addr().String()); err != nil {
			return err
		}
	}

	fmt.Println("\nwaiting for the distributed mesh to converge...")
	deadline := time.Now().Add(30 * time.Second)
	for !hosts[0].HasRoute(loramesher.Address(n)) {
		if time.Now().After(deadline) {
			return fmt.Errorf("mesh did not converge")
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("converged: node 0001 has a route to node 0004 across two UDP-relay hops")

	if _, err := hosts[0].SendReliable(loramesher.Address(n), []byte("packets over sockets over virtual radio")); err != nil {
		return err
	}
	deadline = time.Now().Add(30 * time.Second)
	for len(hosts[0].StreamEvents()) == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("reliable transfer never finished")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if ev := hosts[0].StreamEvents()[0]; ev.Err != nil {
		return fmt.Errorf("transfer failed: %w", ev.Err)
	}
	msg := hosts[n-1].Messages()[0]
	fmt.Printf("node %v received %q from %v, end-to-end acknowledged\n",
		loramesher.Address(n), msg.Payload, msg.From)

	// Scrape node 0001's live /metrics endpoint — the same lines a
	// Prometheus server would collect.
	resp, err := http.Get("http://" + hosts[0].MetricsAddr() + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Printf("\nsample of node 0001's /metrics scrape:\n")
	shown := 0
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "tx_frames_total") ||
			strings.HasPrefix(line, "rx_frames_total") ||
			strings.HasPrefix(line, "fwd_frames_total") ||
			strings.HasPrefix(line, "dutycycle_utilization") {
			fmt.Printf("  %s\n", line)
			shown++
		}
	}
	if shown == 0 {
		return fmt.Errorf("metrics scrape returned no counters")
	}
	fmt.Println("\nudpmesh demo OK")
	return nil
}

// single runs one distributed node until interrupted.
func single(addrHex, listen, peers string, scale float64, send, metricsAddr string) error {
	a, err := parseAddr(addrHex)
	if err != nil {
		return err
	}
	var peerList []string
	if peers != "" {
		peerList = strings.Split(peers, ",")
	}
	h, err := udpnet.Start(udpnet.Config{
		Listen:      listen,
		Peers:       peerList,
		Node:        nodeConfig(a),
		TimeScale:   scale,
		MetricsAddr: metricsAddr,
	})
	if err != nil {
		return err
	}
	defer h.Close()
	fmt.Printf("node %v listening on %v, %d peers\n", a, h.Addr(), len(peerList))
	if h.MetricsAddr() != "" {
		fmt.Printf("metrics on http://%s/metrics (health on /healthz)\n", h.MetricsAddr())
	}

	var sendDst loramesher.Address
	var sendMsg string
	if send != "" {
		dst, msg, ok := strings.Cut(send, ":")
		if !ok {
			return fmt.Errorf("-send wants dst:message, got %q", send)
		}
		sendDst, err = parseAddr(dst)
		if err != nil {
			return err
		}
		sendMsg = msg
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	sent := false
	seen := 0
	for {
		select {
		case <-sig:
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
			for _, m := range h.Messages()[seen:] {
				fmt.Printf("⇐ %q from %v\n", m.Payload, m.From)
				seen++
			}
			if sendMsg != "" && !sent && h.HasRoute(sendDst) {
				if _, err := h.SendReliable(sendDst, []byte(sendMsg)); err == nil {
					fmt.Printf("⇒ sending %q to %v\n", sendMsg, sendDst)
					sent = true
				}
			}
		}
	}
}

func parseAddr(s string) (loramesher.Address, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 16)
	if err != nil {
		return 0, fmt.Errorf("mesh address %q: %w", s, err)
	}
	return loramesher.Address(v), nil
}
