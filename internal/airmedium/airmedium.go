// Package airmedium simulates the shared LoRa radio channel. It propagates
// every transmission to every listening station, applying the link budget
// (path loss, sensitivity, SNR floors from internal/loraphy), half-duplex
// constraints, and the capture-effect collision rules, and delivers the
// surviving frames at their end-of-airtime instants through the
// discrete-event scheduler.
//
// The collision model follows the LoRaSim family: two frames interact when
// their airtimes overlap on the same carrier frequency; a frame survives an
// interferer when its received power exceeds the interferer by the
// spreading-factor-dependent capture threshold, or (optionally) when the
// interferer ends before the frame's critical preamble section so the
// receiver can still lock on.
package airmedium

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/loraphy"
	"repro/internal/simtime"
)

// StationID identifies a station on the medium.
type StationID int

// Delivery is a successfully received frame, as handed to a Receiver.
type Delivery struct {
	From    StationID
	Data    []byte
	RSSIDBm float64
	SNRDB   float64
	At      time.Time
}

// Receiver consumes frames delivered to a station. Implementations are
// invoked from scheduler events; they must not block.
//
// The Delivery's Data slice is shared: every receiver of the same
// transmission sees the same backing array (the medium's own copy of the
// frame, which also feeds the collision history). Implementations must
// treat Data as read-only and must not retain it past the OnFrame call —
// copy first if the bytes outlive the callback.
type Receiver interface {
	OnFrame(d Delivery)
}

// TxObserver is an optional extension a Receiver may implement to learn
// when its own transmission completes.
type TxObserver interface {
	OnTxDone(at time.Time)
}

// Config tunes the channel model.
type Config struct {
	// PathLoss is the distance-dependent attenuation model. Nil means
	// the default suburban log-distance fit.
	PathLoss loraphy.PathLossModel
	// ShadowSigmaDB adds static per-link log-normal shadowing.
	ShadowSigmaDB float64
	// LinkBudget holds transmit power and antenna gains. Zero value
	// means the EU868 default (14 dBm, dipoles).
	LinkBudget loraphy.LinkBudget
	// ExtraFrameLossRate injects i.i.d. frame erasures per (frame,
	// receiver) on top of the physical model, for controlled
	// PER sweeps. Must be in [0,1).
	ExtraFrameLossRate float64
	// CaptureCriticalSection enables the preamble critical-section
	// refinement: an interferer that ends before the frame's last
	// preamble symbols does not destroy it.
	CaptureCriticalSection bool
	// SoftDecodingWidthDB widens the sensitivity threshold into a soft
	// PER region: a frame whose SNR margin over the demodulation floor
	// is within this many dB is lost with a probability that falls
	// logistically from ~1 at zero margin to ~0 at the full width —
	// matching LoRa's measured PER-vs-SNR curves. Zero keeps the hard
	// threshold.
	SoftDecodingWidthDB float64
	// PathLossOverride, when set, replaces the geometric model for the
	// ordered station pair (from, to) when it returns ok — testbed
	// replay: feed measured per-link attenuations instead of positions.
	// Pairs it declines fall back to the geometric model. Must be
	// deterministic.
	PathLossOverride func(from, to StationID) (lossDB float64, ok bool)
	// MaxRangeMeters, when positive, enables the spatial cell index: the
	// plane is partitioned into square cells of this side length and a
	// transmission is evaluated only against stations in the 3x3 cell
	// neighborhood of its sender; everything farther is accounted in bulk
	// as below sensitivity. The caller owns the sizing contract: the value
	// must be at least the largest distance at which any station can
	// deliver OR interfere (loraphy.MaxRangeMeters plus a shadowing
	// margin when ShadowSigmaDB > 0 — e.g. the range at maximum path loss
	// plus ~4 sigma for a negligible tail). Delivery outcomes are then
	// identical to the full scan; only the loss-bucket attribution of
	// skipped stations is approximate (a far station is counted
	// below-sensitivity when listening and not-listening otherwise, even
	// if the full scan would have attributed it to a blocked link or an
	// own overlapping transmission first — total losses are conserved).
	//
	// In indexed mode the dense per-pair loss cache is not allocated (it
	// is O(n^2) memory — the reason demo-scale media cannot host a city);
	// instead each sender caches its 3x3 candidate set and link budgets,
	// invalidated per cell: moving one station bumps only the generation
	// of the cells it left and entered, so senders whose neighborhoods do
	// not overlap those cells keep warm caches.
	MaxRangeMeters float64
	// Seed drives shadowing and frame-erasure randomness.
	Seed int64
}

// Stats counts per-medium outcomes. A single transmitted frame can appear
// in several receiver-outcome counters, one per potential receiver.
type Stats struct {
	FramesSent           uint64
	FramesDelivered      uint64
	LostBelowSensitivity uint64
	LostCollision        uint64
	LostHalfDuplex       uint64
	LostRandom           uint64
	LostNotListening     uint64
	AirtimeTotal         time.Duration
	// NeighborhoodRebuilds counts sender candidate-cache rebuilds in
	// indexed mode (Config.MaxRangeMeters > 0): how often a transmission
	// found its cached 3x3 neighborhood stale. Flat across moves far from
	// the sender is the per-cell invalidation working.
	NeighborhoodRebuilds uint64
}

// station is one radio endpoint on the medium.
type station struct {
	id        StationID
	pos       geo.Point
	rx        Receiver
	listening bool
	removed   bool
	// gen counts link-relevant changes to this station (moves, removal,
	// link blocking); cached link budgets tagged with an older generation
	// are stale. See pathLoss.
	gen uint64
	// txUntil is the end of this station's most recent transmission,
	// for half-duplex checks and double-transmit detection.
	txUntil time.Time
	airtime time.Duration
	// cellKey and nbr are live only in indexed mode (Config.MaxRangeMeters
	// > 0): the station's current cell and its cached candidate set as a
	// sender.
	cellKey cellKey
	nbr     nbrCache
}

// cellKey addresses one cell of the sparse spatial index. Stations have no
// field bounds, so cells are keyed by quantized coordinates rather than
// packed into a dense grid (contrast geo.CellGrid, used where bounds are
// known).
type cellKey struct{ cx, cy int32 }

// nbrCache is a sender's memoized 3x3 candidate set: the stations any of
// its transmissions could reach, with their link budgets. It is valid
// while the sender stays in the same cell, the carrier frequency is
// unchanged, and none of the nine neighborhood cells' generations moved.
type nbrCache struct {
	valid  bool
	key    cellKey
	freqHz float64
	gens   [9]uint64
	ids    []StationID // ascending, may include the sender itself
	loss   []float64   // pathLoss(sender -> ids[i]) at freqHz
}

// cellIndex is the sparse cell grid: per-cell sorted membership plus a
// per-cell generation counter. Any membership or position change inside a
// cell bumps only that cell's generation, which lazily invalidates exactly
// the sender caches whose 3x3 neighborhoods overlap it.
type cellIndex struct {
	size    float64
	members map[cellKey][]StationID
	gens    map[cellKey]uint64
}

func newCellIndex(size float64) *cellIndex {
	return &cellIndex{
		size:    size,
		members: make(map[cellKey][]StationID),
		gens:    make(map[cellKey]uint64),
	}
}

func (ci *cellIndex) keyOf(p geo.Point) cellKey {
	return cellKey{cx: int32(math.Floor(p.X / ci.size)), cy: int32(math.Floor(p.Y / ci.size))}
}

func (ci *cellIndex) add(id StationID, k cellKey) {
	list := ci.members[k]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = id
	ci.members[k] = list
	ci.gens[k]++
}

func (ci *cellIndex) remove(id StationID, k cellKey) {
	list := ci.members[k]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	if i < len(list) && list[i] == id {
		ci.members[k] = append(list[:i], list[i+1:]...)
	}
	ci.gens[k]++
}

// forNeighborhood visits the nine neighborhood cell keys of k in a fixed
// row-major order, so generation snapshots and candidate collection agree
// on slot positions.
func (ci *cellIndex) forNeighborhood(k cellKey, fn func(slot int, nk cellKey)) {
	slot := 0
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			fn(slot, cellKey{cx: k.cx + dx, cy: k.cy + dy})
			slot++
		}
	}
}

func (ci *cellIndex) snapshotGens(k cellKey, dst *[9]uint64) {
	ci.forNeighborhood(k, func(slot int, nk cellKey) { dst[slot] = ci.gens[nk] })
}

func (ci *cellIndex) gensEqual(k cellKey, snap *[9]uint64) bool {
	equal := true
	ci.forNeighborhood(k, func(slot int, nk cellKey) {
		if ci.gens[nk] != snap[slot] {
			equal = false
		}
	})
	return equal
}

func (ci *cellIndex) collect(k cellKey, dst []StationID) []StationID {
	ci.forNeighborhood(k, func(_ int, nk cellKey) { dst = append(dst, ci.members[nk]...) })
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

// linkLoss is one cached link-budget entry for an ordered station pair.
// The entry is valid only while both stations' generations match and the
// carrier frequency is unchanged.
type linkLoss struct {
	genFrom, genTo uint64
	freqHz         float64
	lossDB         float64
	valid          bool
}

// transmission is one in-flight or recently ended frame.
type transmission struct {
	from   StationID
	start  time.Time
	end    time.Time
	data   []byte
	params loraphy.Params
}

// criticalStart returns the instant from which the receiver needs a clean
// channel to lock onto this frame: the last CriticalSectionSymbols of the
// preamble.
func (tx *transmission) criticalStart() time.Time {
	sym := tx.params.SymbolTime()
	lockWindow := time.Duration(loraphy.CriticalSectionSymbols) * sym
	pre := tx.params.PreambleTime()
	if lockWindow > pre {
		lockWindow = pre
	}
	return tx.start.Add(pre - lockWindow)
}

// Medium is the shared channel. It is not safe for concurrent use; the
// simulation drives it from the scheduler goroutine.
type Medium struct {
	sched    *simtime.Scheduler
	cfg      Config
	shadow   loraphy.ShadowedModel
	rng      *rand.Rand
	stations []*station
	// recent holds transmissions that may still overlap future frame
	// evaluations; pruned as time advances.
	recent []*transmission
	// blocked marks severed links (partition injection); keys are
	// ordered (lo, hi) station pairs.
	blocked map[[2]StationID]bool
	// lossCache memoizes pathLoss per ordered (from, to) pair: the
	// shadowed link budget is deterministic in (pair, positions, freq),
	// and reception is evaluated at every station per frame, so the
	// log-distance/shadowing math dominates dense-network runs without
	// it. Entries self-invalidate via station generations (bumped on
	// SetPosition and Remove) rather than being cleared eagerly. Not
	// allocated in indexed mode, where per-sender neighborhood caches
	// replace it without the O(n^2) footprint.
	lossCache [][]linkLoss
	// cells is the spatial index, nil unless Config.MaxRangeMeters > 0.
	// activeN / listeningN track non-removed and listening station counts
	// for the bulk accounting of stations the index skips.
	cells      *cellIndex
	activeN    int
	listeningN int
	stats      Stats
}

// New creates a medium on the given scheduler.
func New(sched *simtime.Scheduler, cfg Config) (*Medium, error) {
	if sched == nil {
		return nil, fmt.Errorf("airmedium: nil scheduler")
	}
	if cfg.ExtraFrameLossRate < 0 || cfg.ExtraFrameLossRate >= 1 {
		return nil, fmt.Errorf("airmedium: ExtraFrameLossRate %v out of [0,1)", cfg.ExtraFrameLossRate)
	}
	if cfg.PathLoss == nil {
		cfg.PathLoss = loraphy.DefaultLogDistance()
	}
	if cfg.LinkBudget == (loraphy.LinkBudget{}) {
		cfg.LinkBudget = loraphy.DefaultLinkBudget()
	}
	if cfg.MaxRangeMeters < 0 {
		return nil, fmt.Errorf("airmedium: MaxRangeMeters %v must be >= 0", cfg.MaxRangeMeters)
	}
	var cells *cellIndex
	if cfg.MaxRangeMeters > 0 {
		cells = newCellIndex(cfg.MaxRangeMeters)
	}
	return &Medium{
		cells:   cells,
		sched:   sched,
		cfg:     cfg,
		blocked: make(map[[2]StationID]bool),
		shadow: loraphy.ShadowedModel{
			Base:    cfg.PathLoss,
			SigmaDB: cfg.ShadowSigmaDB,
			Seed:    uint64(cfg.Seed),
		},
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// AddStation registers a new listening station at pos.
func (m *Medium) AddStation(pos geo.Point, rx Receiver) (StationID, error) {
	if rx == nil {
		return 0, fmt.Errorf("airmedium: nil receiver")
	}
	id := StationID(len(m.stations))
	s := &station{id: id, pos: pos, rx: rx, listening: true}
	m.stations = append(m.stations, s)
	m.activeN++
	m.listeningN++
	if m.cells != nil {
		s.cellKey = m.cells.keyOf(pos)
		m.cells.add(id, s.cellKey)
		return id, nil
	}
	// Grow the loss matrix; fresh entries are zero-valued, i.e. invalid.
	for i := range m.lossCache {
		m.lossCache[i] = append(m.lossCache[i], linkLoss{})
	}
	m.lossCache = append(m.lossCache, make([]linkLoss, len(m.stations)))
	return id, nil
}

// Stats returns a copy of the medium-wide counters.
func (m *Medium) Stats() Stats { return m.stats }

// StationAirtime returns the cumulative transmit airtime of a station.
func (m *Medium) StationAirtime(id StationID) (time.Duration, error) {
	s, err := m.station(id)
	if err != nil {
		return 0, err
	}
	return s.airtime, nil
}

// SetPosition moves a station (mobility support).
func (m *Medium) SetPosition(id StationID, pos geo.Point) error {
	s, err := m.station(id)
	if err != nil {
		return err
	}
	s.pos = pos
	s.gen++ // invalidate cached link budgets involving this station
	if m.cells != nil {
		nk := m.cells.keyOf(pos)
		if nk != s.cellKey {
			m.cells.remove(id, s.cellKey)
			m.cells.add(id, nk)
			s.cellKey = nk
		} else {
			// Same cell, but the link budgets to it changed: bump just
			// this cell so only overlapping neighborhoods go cold.
			m.cells.gens[s.cellKey]++
		}
	}
	return nil
}

// Position returns a station's current position.
func (m *Medium) Position(id StationID) (geo.Point, error) {
	s, err := m.station(id)
	if err != nil {
		return geo.Point{}, err
	}
	return s.pos, nil
}

// SetListening controls whether the station's receiver is active (a radio
// in sleep or standby misses frames).
func (m *Medium) SetListening(id StationID, on bool) error {
	s, err := m.station(id)
	if err != nil {
		return err
	}
	if !s.removed && s.listening != on {
		if on {
			m.listeningN++
		} else {
			m.listeningN--
		}
	}
	s.listening = on
	return nil
}

// Remove permanently silences a station (failure injection). Removed
// stations neither transmit nor receive.
func (m *Medium) Remove(id StationID) error {
	s, err := m.station(id)
	if err != nil {
		return err
	}
	if !s.removed {
		m.activeN--
		if s.listening {
			m.listeningN--
		}
		if m.cells != nil {
			m.cells.remove(id, s.cellKey)
		}
	}
	s.removed = true
	s.listening = false
	s.gen++ // invalidate cached link budgets involving this station
	return nil
}

func (m *Medium) station(id StationID) (*station, error) {
	if int(id) < 0 || int(id) >= len(m.stations) {
		return nil, fmt.Errorf("airmedium: unknown station %d", id)
	}
	return m.stations[int(id)], nil
}

// Transmit puts a frame on the air from the given station. It returns the
// frame's airtime; the frame is evaluated and delivered to receivers at
// its end instant, and the sender's TxObserver (if any) is notified then.
func (m *Medium) Transmit(id StationID, data []byte, params loraphy.Params) (time.Duration, error) {
	s, err := m.station(id)
	if err != nil {
		return 0, err
	}
	if s.removed {
		return 0, fmt.Errorf("airmedium: station %d is removed", id)
	}
	if err := params.Validate(); err != nil {
		return 0, fmt.Errorf("airmedium: %w", err)
	}
	now := m.sched.Now()
	if s.txUntil.After(now) {
		return 0, fmt.Errorf("airmedium: station %d already transmitting until %v", id, s.txUntil)
	}
	airtime, err := params.Airtime(len(data))
	if err != nil {
		return 0, fmt.Errorf("airmedium: %w", err)
	}
	tx := &transmission{
		from:   id,
		start:  now,
		end:    now.Add(airtime),
		data:   append([]byte(nil), data...),
		params: params,
	}
	s.txUntil = tx.end
	s.airtime += airtime
	m.recent = append(m.recent, tx)
	m.stats.FramesSent++
	m.stats.AirtimeTotal += airtime
	m.sched.MustAfter(airtime, func() { m.finish(tx) })
	return airtime, nil
}

// finish runs at a frame's end-of-airtime: evaluate reception at every
// station that could plausibly hear it (all of them in full-scan mode, the
// sender's 3x3 cell neighborhood in indexed mode), deliver survivors,
// notify the sender, and prune history.
func (m *Medium) finish(tx *transmission) {
	if m.cells != nil {
		m.finishIndexed(tx)
	} else {
		for _, s := range m.stations {
			if s.id == tx.from || s.removed {
				continue
			}
			m.evaluate(tx, s)
		}
	}
	if sender := m.stations[int(tx.from)]; !sender.removed {
		if obs, ok := sender.rx.(TxObserver); ok {
			obs.OnTxDone(m.sched.Now())
		}
	}
	m.prune()
}

// finishIndexed is finish for indexed mode: only the sender's cached 3x3
// candidate set is visited; everything farther is below sensitivity by the
// MaxRangeMeters contract and is accounted in bulk.
func (m *Medium) finishIndexed(tx *transmission) {
	sender := m.stations[int(tx.from)]
	nb := m.refreshNeighborhood(sender, tx.params.FrequencyHz)
	candActive, candListening := 0, 0
	for _, id := range nb.ids {
		if id == tx.from {
			continue
		}
		s := m.stations[int(id)]
		if s.removed {
			continue
		}
		candActive++
		if s.listening {
			candListening++
		}
		m.evaluate(tx, s)
	}
	senderActive, senderListening := 0, 0
	if !sender.removed {
		senderActive = 1
		if sender.listening {
			senderListening = 1
		}
	}
	skippedActive := m.activeN - senderActive - candActive
	skippedListening := m.listeningN - senderListening - candListening
	m.stats.LostBelowSensitivity += uint64(skippedListening)
	m.stats.LostNotListening += uint64(skippedActive - skippedListening)
}

// refreshNeighborhood returns the sender's candidate cache, rebuilding it
// only when the sender changed cells or frequency, or any of the nine
// neighborhood cells' generations moved — the per-cell invalidation that
// keeps one SetPosition from colding every sender's cache.
func (m *Medium) refreshNeighborhood(s *station, freqHz float64) *nbrCache {
	nb := &s.nbr
	key := m.cells.keyOf(s.pos)
	if nb.valid && nb.key == key && nb.freqHz == freqHz && m.cells.gensEqual(key, &nb.gens) {
		return nb
	}
	m.stats.NeighborhoodRebuilds++
	nb.valid = true
	nb.key = key
	nb.freqHz = freqHz
	m.cells.snapshotGens(key, &nb.gens)
	nb.ids = m.cells.collect(key, nb.ids[:0])
	nb.loss = nb.loss[:0]
	for _, id := range nb.ids {
		nb.loss = append(nb.loss, m.computeLoss(s.id, id, freqHz))
	}
	return nb
}

// evaluate decides whether station s receives frame tx and delivers it.
func (m *Medium) evaluate(tx *transmission, s *station) {
	if m.linkBlocked(tx.from, s.id) {
		m.stats.LostBelowSensitivity++
		return
	}
	if !s.listening {
		m.stats.LostNotListening++
		return
	}
	// Half-duplex: any own transmission overlapping the frame blinds the
	// receiver.
	if m.transmittedDuring(s.id, tx.start, tx.end) {
		m.stats.LostHalfDuplex++
		return
	}
	loss := m.pathLoss(tx.from, s.id, tx.params.FrequencyHz)
	rec, err := loraphy.Receive(tx.params, m.cfg.LinkBudget, loss)
	if err != nil {
		// Params were validated at Transmit; this is a programming bug.
		panic(fmt.Sprintf("airmedium: reception eval: %v", err))
	}
	if !rec.AboveSensitivity {
		m.stats.LostBelowSensitivity++
		return
	}
	if m.cfg.SoftDecodingWidthDB > 0 && m.lostInSoftRegion(tx.params, rec.SNRDB) {
		m.stats.LostBelowSensitivity++
		return
	}
	if !m.survivesInterference(tx, s, rec.RSSIDBm) {
		m.stats.LostCollision++
		return
	}
	if m.cfg.ExtraFrameLossRate > 0 && m.rng.Float64() < m.cfg.ExtraFrameLossRate {
		m.stats.LostRandom++
		return
	}
	m.stats.FramesDelivered++
	// Data aliases the medium's own copy of the frame (made in Transmit);
	// Receiver's contract makes it read-only and non-retained, so one
	// copy serves every receiver of the transmission.
	s.rx.OnFrame(Delivery{
		From:    tx.from,
		Data:    tx.data,
		RSSIDBm: rec.RSSIDBm,
		SNRDB:   rec.SNRDB,
		At:      m.sched.Now(),
	})
}

// transmittedDuring reports whether station id had any own transmission
// overlapping [start, end).
func (m *Medium) transmittedDuring(id StationID, start, end time.Time) bool {
	for _, other := range m.recent {
		if other.from == id && other.start.Before(end) && other.end.After(start) {
			return true
		}
	}
	return false
}

// survivesInterference applies the capture model against every overlapping
// co-frequency transmission at receiver s.
func (m *Medium) survivesInterference(tx *transmission, s *station, signalDBm float64) bool {
	for _, other := range m.recent {
		if other == tx || other.from == s.id || other.from == tx.from {
			// The sender is half-duplex too: it cannot have emitted two
			// overlapping frames (enforced in Transmit), so any other
			// entry from tx.from does not overlap tx.
			continue
		}
		if other.params.FrequencyHz != tx.params.FrequencyHz {
			continue
		}
		if m.linkBlocked(other.from, s.id) {
			continue
		}
		if !(other.start.Before(tx.end) && other.end.After(tx.start)) {
			continue
		}
		if m.cfg.CaptureCriticalSection && !other.end.After(tx.criticalStart()) {
			// Interferer fell silent before the receiver needed to
			// lock; the frame survives it regardless of power.
			continue
		}
		interfLoss := m.pathLoss(other.from, s.id, other.params.FrequencyHz)
		interfDBm := m.cfg.LinkBudget.RSSI(interfLoss)
		// Interference far below the noise floor cannot destroy the frame
		// even at adverse capture thresholds.
		if interfDBm < tx.params.NoiseFloorDBm()-10 {
			continue
		}
		ok, err := loraphy.Survives(tx.params.SpreadingFactor, signalDBm,
			other.params.SpreadingFactor, interfDBm)
		if err != nil {
			panic(fmt.Sprintf("airmedium: capture eval: %v", err))
		}
		if !ok {
			return false
		}
	}
	return true
}

// pathLoss resolves the attenuation between two stations: the measured
// override when one is configured and covers the pair, the geometric
// (optionally shadowed) model otherwise. In full-scan mode geometric
// results are memoized per ordered pair; a cached entry is reused only
// while both stations' generations and the carrier frequency match, so
// moving or removing a station lazily invalidates every link it is part
// of. In indexed mode the sender's neighborhood cache answers when it is
// current (validated against the per-cell generations, so a stale mover's
// entry is never served); other pairs compute directly.
func (m *Medium) pathLoss(from, to StationID, freqHz float64) float64 {
	if m.cfg.PathLossOverride != nil {
		if loss, ok := m.cfg.PathLossOverride(from, to); ok {
			return loss
		}
	}
	if m.cells != nil {
		sf := m.stations[int(from)]
		if nb := &sf.nbr; nb.valid && nb.freqHz == freqHz && nb.key == m.cells.keyOf(sf.pos) &&
			m.cells.gensEqual(nb.key, &nb.gens) {
			i := sort.Search(len(nb.ids), func(i int) bool { return nb.ids[i] >= to })
			if i < len(nb.ids) && nb.ids[i] == to {
				return nb.loss[i]
			}
		}
		return m.computeLoss(from, to, freqHz)
	}
	sf, st := m.stations[int(from)], m.stations[int(to)]
	e := &m.lossCache[int(from)][int(to)]
	if e.valid && e.genFrom == sf.gen && e.genTo == st.gen && e.freqHz == freqHz {
		return e.lossDB
	}
	loss := m.shadow.LinkPathLossDB(uint64(from), uint64(to), sf.pos.Distance(st.pos), freqHz)
	*e = linkLoss{genFrom: sf.gen, genTo: st.gen, freqHz: freqHz, lossDB: loss, valid: true}
	return loss
}

// computeLoss is the uncached geometric path: override-free shadowed link
// budget from current positions. It must stay the single formula both
// cache layers memoize so cached and direct answers are bit-identical.
func (m *Medium) computeLoss(from, to StationID, freqHz float64) float64 {
	sf, st := m.stations[int(from)], m.stations[int(to)]
	return m.shadow.LinkPathLossDB(uint64(from), uint64(to), sf.pos.Distance(st.pos), freqHz)
}

// lostInSoftRegion samples the near-sensitivity PER curve: the loss
// probability falls logistically across the soft width above the SNR
// demodulation floor.
func (m *Medium) lostInSoftRegion(p loraphy.Params, snrDB float64) bool {
	floor, err := p.SpreadingFactor.SNRFloorDB()
	if err != nil {
		return false
	}
	margin := snrDB - floor
	w := m.cfg.SoftDecodingWidthDB
	if margin >= 2*w {
		return false // deep in the clear region: skip the RNG draw
	}
	per := 1 / (1 + math.Exp(4/w*(margin-w/2)))
	return m.rng.Float64() < per
}

// prune drops transmissions that can no longer overlap any active frame.
func (m *Medium) prune() {
	now := m.sched.Now()
	// The earliest start of any still-active frame bounds what future
	// evaluations can look back to.
	horizon := now
	for _, tx := range m.recent {
		if tx.end.After(now) && tx.start.Before(horizon) {
			horizon = tx.start
		}
	}
	kept := m.recent[:0]
	for _, tx := range m.recent {
		if !tx.end.Before(horizon) {
			kept = append(kept, tx)
		}
	}
	// Zero the tail so pruned frames are collectable.
	for i := len(kept); i < len(m.recent); i++ {
		m.recent[i] = nil
	}
	m.recent = kept
}

// linkKey returns the canonical key for an unordered station pair.
func linkKey(a, b StationID) [2]StationID {
	if a > b {
		a, b = b, a
	}
	return [2]StationID{a, b}
}

// SetLinkBlocked severs (or restores) the link between two stations in
// both directions — partition injection. A blocked link passes neither
// signal nor interference, as if an obstruction absorbed it.
func (m *Medium) SetLinkBlocked(a, b StationID, blocked bool) error {
	if _, err := m.station(a); err != nil {
		return err
	}
	if _, err := m.station(b); err != nil {
		return err
	}
	if blocked {
		m.blocked[linkKey(a, b)] = true
	} else {
		delete(m.blocked, linkKey(a, b))
	}
	// Blocking is decided per pair outside the loss caches (evaluate and
	// survivesInterference consult m.blocked directly), and it does not
	// change any link budget — so no generations are bumped and every
	// cache stays warm across partition injection.
	return nil
}

// linkBlocked reports whether the pair is severed.
func (m *Medium) linkBlocked(a, b StationID) bool {
	return m.blocked[linkKey(a, b)]
}

// Busy reports whether station id currently senses energy on the channel:
// some other station's in-flight transmission reaches it above sensitivity.
// This backs channel-activity detection (CAD / listen-before-talk).
func (m *Medium) Busy(id StationID, freqHz float64) (bool, error) {
	if _, err := m.station(id); err != nil {
		return false, err
	}
	now := m.sched.Now()
	for _, tx := range m.recent {
		if tx.from == id || !tx.end.After(now) || tx.start.After(now) {
			continue
		}
		if tx.params.FrequencyHz != freqHz {
			continue
		}
		if m.linkBlocked(tx.from, id) {
			continue
		}
		loss := m.pathLoss(tx.from, id, tx.params.FrequencyHz)
		rec, err := loraphy.Receive(tx.params, m.cfg.LinkBudget, loss)
		if err != nil {
			return false, fmt.Errorf("airmedium: busy eval: %w", err)
		}
		if rec.AboveSensitivity {
			return true, nil
		}
	}
	return false, nil
}
