package airmedium

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/loraphy"
	"repro/internal/simtime"
)

var t0 = time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

// collector records deliveries and TX completions for a test station.
type collector struct {
	frames  []Delivery
	txDones []time.Time
}

func (c *collector) OnFrame(d Delivery)    { c.frames = append(c.frames, d) }
func (c *collector) OnTxDone(at time.Time) { c.txDones = append(c.txDones, at) }

var (
	_ Receiver   = (*collector)(nil)
	_ TxObserver = (*collector)(nil)
)

type fixture struct {
	sched  *simtime.Scheduler
	medium *Medium
	rx     []*collector
	ids    []StationID
}

func newFixture(t *testing.T, cfg Config, positions []geo.Point) *fixture {
	t.Helper()
	sched := simtime.NewScheduler(t0)
	m, err := New(sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{sched: sched, medium: m}
	for _, p := range positions {
		c := &collector{}
		id, err := m.AddStation(p, c)
		if err != nil {
			t.Fatal(err)
		}
		f.rx = append(f.rx, c)
		f.ids = append(f.ids, id)
	}
	return f
}

func (f *fixture) transmit(t *testing.T, from int, data []byte) time.Duration {
	t.Helper()
	d, err := f.medium.Transmit(f.ids[from], data, loraphy.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeliveryInRange(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{X: 0}, {X: 200}})
	air := f.transmit(t, 0, []byte("ping"))
	f.sched.Run(0)

	if len(f.rx[1].frames) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(f.rx[1].frames))
	}
	d := f.rx[1].frames[0]
	if string(d.Data) != "ping" || d.From != f.ids[0] {
		t.Errorf("delivery = %+v", d)
	}
	if want := t0.Add(air); !d.At.Equal(want) {
		t.Errorf("delivered at %v, want end of airtime %v", d.At, want)
	}
	if len(f.rx[0].txDones) != 1 {
		t.Errorf("sender got %d TxDone, want 1", len(f.rx[0].txDones))
	}
	if len(f.rx[0].frames) != 0 {
		t.Errorf("sender received its own frame")
	}
	st := f.medium.Stats()
	if st.FramesSent != 1 || st.FramesDelivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOutOfRangeLost(t *testing.T) {
	// At n=2.7 / 14 dBm / SF7, range is a few km; 100 km is far out.
	f := newFixture(t, Config{}, []geo.Point{{X: 0}, {X: 100e3}})
	f.transmit(t, 0, []byte("x"))
	f.sched.Run(0)
	if len(f.rx[1].frames) != 0 {
		t.Fatal("frame delivered far beyond sensitivity range")
	}
	if st := f.medium.Stats(); st.LostBelowSensitivity != 1 {
		t.Errorf("stats = %+v, want LostBelowSensitivity=1", st)
	}
}

func TestBroadcastReachesAllListeners(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{X: 0}, {X: 100}, {X: 200}, {Y: 150}})
	f.transmit(t, 0, []byte("all"))
	f.sched.Run(0)
	for i := 1; i < 4; i++ {
		if len(f.rx[i].frames) != 1 {
			t.Errorf("station %d got %d frames, want 1", i, len(f.rx[i].frames))
		}
	}
}

func TestNotListeningMissesFrame(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{X: 0}, {X: 100}})
	if err := f.medium.SetListening(f.ids[1], false); err != nil {
		t.Fatal(err)
	}
	f.transmit(t, 0, []byte("x"))
	f.sched.Run(0)
	if len(f.rx[1].frames) != 0 {
		t.Fatal("sleeping receiver got a frame")
	}
	if st := f.medium.Stats(); st.LostNotListening != 1 {
		t.Errorf("stats = %+v, want LostNotListening=1", st)
	}
}

func TestHalfDuplexSelfBlindness(t *testing.T) {
	// Stations 0 and 1 transmit simultaneously; both are deaf to each
	// other, but distant station 2 hears neither (collision) or one
	// (capture). Here 0 and 1 are equidistant from 2 so same-SF capture
	// fails and 2 hears nothing.
	f := newFixture(t, Config{}, []geo.Point{{X: -100}, {X: 100}, {Y: 100}})
	f.transmit(t, 0, []byte("a"))
	f.transmit(t, 1, []byte("b"))
	f.sched.Run(0)
	if len(f.rx[0].frames)+len(f.rx[1].frames) != 0 {
		t.Error("half-duplex station received while transmitting")
	}
	if len(f.rx[2].frames) != 0 {
		t.Error("equal-power same-SF collision should destroy both frames")
	}
	st := f.medium.Stats()
	if st.LostHalfDuplex != 2 {
		t.Errorf("LostHalfDuplex = %d, want 2", st.LostHalfDuplex)
	}
	if st.LostCollision != 2 {
		t.Errorf("LostCollision = %d, want 2", st.LostCollision)
	}
}

func TestCaptureStrongerFrameSurvives(t *testing.T) {
	// Receiver at origin; station 1 very close (strong), station 2 far
	// (weak, but still above sensitivity). Same SF: the strong frame
	// survives, the weak one dies.
	f := newFixture(t, Config{}, []geo.Point{{}, {X: 50}, {X: 2000}})
	f.transmit(t, 1, []byte("strong"))
	f.transmit(t, 2, []byte("weak"))
	f.sched.Run(0)
	if len(f.rx[0].frames) != 1 || string(f.rx[0].frames[0].Data) != "strong" {
		t.Fatalf("receiver frames = %+v, want only the strong frame", f.rx[0].frames)
	}
}

func TestInterSFQuasiOrthogonalBothSurvive(t *testing.T) {
	// Two same-power transmissions at different SFs both decode thanks to
	// quasi-orthogonality.
	sched := simtime.NewScheduler(t0)
	m, err := New(sched, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rx := &collector{}
	if _, err := m.AddStation(geo.Point{}, rx); err != nil {
		t.Fatal(err)
	}
	c1, c2 := &collector{}, &collector{}
	id1, err := m.AddStation(geo.Point{X: 100}, c1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := m.AddStation(geo.Point{X: -100}, c2)
	if err != nil {
		t.Fatal(err)
	}
	p7 := loraphy.DefaultParams()
	p8 := loraphy.DefaultParams()
	p8.SpreadingFactor = loraphy.SF8
	if _, err := m.Transmit(id1, []byte("sf7"), p7); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transmit(id2, []byte("sf8"), p8); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(rx.frames) != 2 {
		t.Fatalf("receiver got %d frames, want both (inter-SF orthogonality)", len(rx.frames))
	}
}

func TestDifferentFrequenciesDoNotInteract(t *testing.T) {
	sched := simtime.NewScheduler(t0)
	m, err := New(sched, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rx := &collector{}
	if _, err := m.AddStation(geo.Point{}, rx); err != nil {
		t.Fatal(err)
	}
	c1, c2 := &collector{}, &collector{}
	id1, _ := m.AddStation(geo.Point{X: 100}, c1)
	id2, _ := m.AddStation(geo.Point{X: -100}, c2)
	pA := loraphy.DefaultParams()
	pB := loraphy.DefaultParams()
	pB.FrequencyHz = 868.3e6
	if _, err := m.Transmit(id1, []byte("chA"), pA); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transmit(id2, []byte("chB"), pB); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(rx.frames) != 2 {
		t.Fatalf("receiver got %d frames, want 2 (separate channels)", len(rx.frames))
	}
}

func TestDoubleTransmitRejected(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{}, {X: 100}})
	f.transmit(t, 0, []byte("first"))
	if _, err := f.medium.Transmit(f.ids[0], []byte("second"), loraphy.DefaultParams()); err == nil {
		t.Fatal("overlapping transmit from one station: want error")
	}
	f.sched.Run(0)
	// After the first frame ends, transmitting again works.
	if _, err := f.medium.Transmit(f.ids[0], []byte("third"), loraphy.DefaultParams()); err != nil {
		t.Fatalf("transmit after TX done: %v", err)
	}
}

func TestRemoveStation(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{}, {X: 100}})
	if err := f.medium.Remove(f.ids[1]); err != nil {
		t.Fatal(err)
	}
	f.transmit(t, 0, []byte("x"))
	f.sched.Run(0)
	if len(f.rx[1].frames) != 0 {
		t.Error("removed station received a frame")
	}
	if _, err := f.medium.Transmit(f.ids[1], []byte("y"), loraphy.DefaultParams()); err == nil {
		t.Error("removed station transmitted")
	}
}

func TestExtraFrameLossRate(t *testing.T) {
	f := newFixture(t, Config{ExtraFrameLossRate: 0.5, Seed: 1}, []geo.Point{{}, {X: 100}})
	sent := 400
	for i := 0; i < sent; i++ {
		f.transmit(t, 0, []byte("x"))
		f.sched.Run(0)
	}
	got := len(f.rx[1].frames)
	if got < sent/2-60 || got > sent/2+60 {
		t.Errorf("delivered %d of %d at 50%% loss, want ≈%d", got, sent, sent/2)
	}
	if st := f.medium.Stats(); st.LostRandom != uint64(sent-got) {
		t.Errorf("LostRandom = %d, want %d", st.LostRandom, sent-got)
	}
}

func TestExtraFrameLossValidation(t *testing.T) {
	sched := simtime.NewScheduler(t0)
	if _, err := New(sched, Config{ExtraFrameLossRate: 1.5}); err == nil {
		t.Error("loss rate 1.5: want error")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil scheduler: want error")
	}
}

func TestCriticalSectionExemption(t *testing.T) {
	// An interferer that ends before the frame's lock window must not
	// destroy it when the refinement is on — arrange a long frame and a
	// short interferer that starts first.
	run := func(critical bool) int {
		sched := simtime.NewScheduler(t0)
		m, err := New(sched, Config{CaptureCriticalSection: critical})
		if err != nil {
			t.Fatal(err)
		}
		rx := &collector{}
		if _, err := m.AddStation(geo.Point{}, rx); err != nil {
			t.Fatal(err)
		}
		cNear, cFar := &collector{}, &collector{}
		near, _ := m.AddStation(geo.Point{X: 2000}, cNear) // the wanted sender (weak)
		far, _ := m.AddStation(geo.Point{X: 50}, cFar)     // the interferer (strong)
		p := loraphy.DefaultParams()
		// Interferer: minimal frame, starts immediately.
		if _, err := m.Transmit(far, []byte{1}, p); err != nil {
			t.Fatal(err)
		}
		// Wanted frame starts at 20 ms with a long payload. The 1-byte
		// interferer lasts ≈25.9 ms, so it overlaps the wanted frame's
		// early preamble but ends before its lock window opens at
		// 20 + (12.544 - 5·1.024) ≈ 27.4 ms.
		sched.MustAfter(20*time.Millisecond, func() {
			if _, err := m.Transmit(near, make([]byte, 200), p); err != nil {
				t.Error(err)
			}
		})
		sched.Run(0)
		return len(rx.frames)
	}
	// With the refinement the weak frame survives the early-preamble
	// overlap; without it, capture kills it.
	if got := run(true); got != 2 {
		t.Errorf("critical-section on: delivered %d, want 2 (both frames)", got)
	}
	if got := run(false); got != 1 {
		t.Errorf("critical-section off: delivered %d, want 1 (strong only)", got)
	}
}

func TestBusy(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{}, {X: 100}})
	freq := loraphy.DefaultParams().FrequencyHz
	busy, err := f.medium.Busy(f.ids[1], freq)
	if err != nil {
		t.Fatal(err)
	}
	if busy {
		t.Error("idle channel reported busy")
	}
	f.transmit(t, 0, []byte("x"))
	// Mid-frame, the channel is busy at station 1 but not on another band.
	f.sched.MustAfter(5*time.Millisecond, func() {
		busy, err := f.medium.Busy(f.ids[1], freq)
		if err != nil {
			t.Error(err)
		}
		if !busy {
			t.Error("mid-frame channel reported idle")
		}
		other, err := f.medium.Busy(f.ids[1], 869.5e6)
		if err != nil {
			t.Error(err)
		}
		if other {
			t.Error("other band reported busy")
		}
	})
	f.sched.Run(0)
	busy, err = f.medium.Busy(f.ids[1], freq)
	if err != nil {
		t.Fatal(err)
	}
	if busy {
		t.Error("channel busy after frame ended")
	}
}

func TestShadowingChangesOutcomes(t *testing.T) {
	// With heavy shadowing, a marginal link flips depending on seed —
	// check determinism per seed and divergence across seeds over many
	// independent links.
	outcomes := func(seed int64) []bool {
		sched := simtime.NewScheduler(t0)
		m, err := New(sched, Config{ShadowSigmaDB: 12, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var res []bool
		for i := 0; i < 30; i++ {
			rx := &collector{}
			a, _ := m.AddStation(geo.Point{Y: float64(i * 10)}, &collector{})
			b, _ := m.AddStation(geo.Point{Y: float64(i * 10), X: 3000}, rx)
			if _, err := m.Transmit(a, []byte("x"), loraphy.DefaultParams()); err != nil {
				t.Fatal(err)
			}
			sched.Run(0)
			res = append(res, len(rx.frames) == 1)
			_ = b
		}
		return res
	}
	a1, a2, b := outcomes(1), outcomes(1), outcomes(2)
	diff12, diffB := 0, 0
	for i := range a1 {
		if a1[i] != a2[i] {
			diff12++
		}
		if a1[i] != b[i] {
			diffB++
		}
	}
	if diff12 != 0 {
		t.Errorf("same seed diverged on %d links", diff12)
	}
	if diffB == 0 {
		t.Error("different seeds produced identical marginal-link outcomes")
	}
}

func TestStationAirtimeAccounting(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{}, {X: 100}})
	air := f.transmit(t, 0, make([]byte, 50))
	f.sched.Run(0)
	got, err := f.medium.StationAirtime(f.ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != air {
		t.Errorf("airtime = %v, want %v", got, air)
	}
	if other, _ := f.medium.StationAirtime(f.ids[1]); other != 0 {
		t.Errorf("receiver airtime = %v, want 0", other)
	}
}

func TestUnknownStationErrors(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{}})
	if _, err := f.medium.Transmit(StationID(9), nil, loraphy.DefaultParams()); err == nil {
		t.Error("unknown station Transmit: want error")
	}
	if err := f.medium.SetListening(StationID(-1), true); err == nil {
		t.Error("negative station: want error")
	}
	if _, err := f.medium.Busy(StationID(5), 868.1e6); err == nil {
		t.Error("unknown station Busy: want error")
	}
}

func TestSoftDecodingRegion(t *testing.T) {
	// Place the receiver so the link closes with only ~1 dB of SNR
	// margin: with soft decoding a large fraction of frames is lost;
	// with the hard threshold none are.
	run := func(width float64) int {
		sched := simtime.NewScheduler(t0)
		m, err := New(sched, Config{SoftDecodingWidthDB: width, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		rx := &collector{}
		// SF7 SNR floor is -7.5 dB; find a distance giving ≈ -6.5 dB SNR.
		// Budget: 14+4.3 dBm, noise floor ≈ -117.1: RSSI ≈ -123.6 needed,
		// so path loss ≈ 141.9 dB → ≈ 12 km at n=2.7.
		a, _ := m.AddStation(geo.Point{}, &collector{})
		b, _ := m.AddStation(geo.Point{X: 11900}, rx)
		sent := 300
		for i := 0; i < sent; i++ {
			if _, err := m.Transmit(a, []byte("x"), loraphy.DefaultParams()); err != nil {
				t.Fatal(err)
			}
			sched.Run(0)
		}
		_ = b
		return len(rx.frames)
	}
	hard := run(0)
	soft := run(3)
	if hard != 300 {
		t.Fatalf("hard threshold delivered %d/300 on a just-closing link", hard)
	}
	if soft >= 290 || soft == 0 {
		t.Errorf("soft decoding delivered %d/300, want partial loss on a marginal link", soft)
	}
}

func TestLinkBlocking(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{}, {X: 100}, {X: 200}})
	if err := f.medium.SetLinkBlocked(f.ids[0], f.ids[1], true); err != nil {
		t.Fatal(err)
	}
	f.transmit(t, 0, []byte("x"))
	f.sched.Run(0)
	if len(f.rx[1].frames) != 0 {
		t.Error("blocked link delivered a frame")
	}
	if len(f.rx[2].frames) != 1 {
		t.Error("unblocked link did not deliver")
	}
	// Blocking is symmetric.
	f.transmit(t, 1, []byte("y"))
	f.sched.Run(0)
	if len(f.rx[0].frames) != 0 {
		t.Error("reverse direction of blocked link delivered")
	}
	// Blocked links pass no interference either: 0 and 1 transmit
	// together; 2 hears both, but 1's frame is blocked toward... check
	// via Busy: station 1 senses nothing from 0.
	f.transmit(t, 0, []byte("z"))
	f.sched.MustAfter(time.Millisecond, func() {
		busy, err := f.medium.Busy(f.ids[1], loraphy.DefaultParams().FrequencyHz)
		if err != nil {
			t.Error(err)
		}
		if busy {
			t.Error("blocked link leaks carrier sense")
		}
	})
	f.sched.Run(0)
	// Healing restores delivery.
	if err := f.medium.SetLinkBlocked(f.ids[0], f.ids[1], false); err != nil {
		t.Fatal(err)
	}
	f.transmit(t, 0, []byte("w"))
	f.sched.Run(0)
	if len(f.rx[1].frames) != 1 {
		t.Error("healed link did not deliver")
	}
	// Unknown stations error.
	if err := f.medium.SetLinkBlocked(StationID(9), f.ids[0], true); err == nil {
		t.Error("unknown station: want error")
	}
}
