package airmedium

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/loraphy"
)

// Transmit copies the caller's buffer, so a sender reusing its scratch
// buffer after Transmit returns must not corrupt the in-flight frame.
func TestTransmitDoesNotRetainCallerBuffer(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{X: 0}, {X: 200}})
	buf := []byte("original")
	f.transmit(t, 0, buf)
	copy(buf, "CLOBBER!")
	f.sched.Run(0)
	if len(f.rx[1].frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(f.rx[1].frames))
	}
	if got := string(f.rx[1].frames[0].Data); got != "original" {
		t.Fatalf("delivered %q after caller mutated buffer, want %q", got, "original")
	}
}

// One shared copy serves every receiver of a broadcast; all of them must
// observe identical bytes.
func TestBroadcastReceiversSeeIdenticalData(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{X: 0}, {X: 100}, {X: 200}, {Y: 150}})
	f.transmit(t, 0, []byte("hello-mesh"))
	f.sched.Run(0)
	for i := 1; i < len(f.rx); i++ {
		if len(f.rx[i].frames) != 1 {
			t.Fatalf("station %d got %d frames, want 1", i, len(f.rx[i].frames))
		}
		if got := string(f.rx[i].frames[0].Data); got != "hello-mesh" {
			t.Fatalf("station %d saw %q", i, got)
		}
	}
}

// The link-budget cache must invalidate when a station moves: a receiver
// that starts out of range and moves into range (and vice versa) must see
// the post-move link budget, not the cached one.
func TestLossCacheInvalidatedBySetPosition(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{X: 0}, {X: 100e3}})
	f.transmit(t, 0, []byte("a"))
	f.sched.Run(0)
	if len(f.rx[1].frames) != 0 {
		t.Fatal("frame delivered at 100 km")
	}
	// Prime both directions of the cache, then move the receiver close.
	if err := f.medium.SetPosition(f.ids[1], geo.Point{X: 200}); err != nil {
		t.Fatal(err)
	}
	f.transmit(t, 0, []byte("b"))
	f.sched.Run(0)
	if len(f.rx[1].frames) != 1 {
		t.Fatal("frame not delivered after receiver moved into range: stale cached loss")
	}
	// And back out again.
	if err := f.medium.SetPosition(f.ids[1], geo.Point{X: 100e3}); err != nil {
		t.Fatal(err)
	}
	f.transmit(t, 0, []byte("c"))
	f.sched.Run(0)
	if len(f.rx[1].frames) != 1 {
		t.Fatal("frame delivered after receiver moved out of range: stale cached loss")
	}
}

// Moving the *sender* must invalidate cached budgets too (the cache is
// keyed per ordered pair and checks both endpoints' generations).
func TestLossCacheInvalidatedBySenderMove(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{X: 0}, {X: 200}})
	f.transmit(t, 0, []byte("a"))
	f.sched.Run(0)
	if len(f.rx[1].frames) != 1 {
		t.Fatal("in-range frame not delivered")
	}
	if err := f.medium.SetPosition(f.ids[0], geo.Point{X: 100e3}); err != nil {
		t.Fatal(err)
	}
	f.transmit(t, 0, []byte("b"))
	f.sched.Run(0)
	if len(f.rx[1].frames) != 1 {
		t.Fatal("frame delivered after sender moved out of range: stale cached loss")
	}
}

// The cache is keyed on carrier frequency: retuning must recompute the
// budget, not reuse a value computed for another frequency.
func TestLossCacheKeyedOnFrequency(t *testing.T) {
	f := newFixture(t, Config{}, []geo.Point{{X: 0}, {X: 200}})
	p := loraphy.DefaultParams()
	if _, err := f.medium.Transmit(f.ids[0], []byte("a"), p); err != nil {
		t.Fatal(err)
	}
	f.sched.Run(0)
	p2 := p
	p2.FrequencyHz = 869525000
	if _, err := f.medium.Transmit(f.ids[0], []byte("b"), p2); err != nil {
		t.Fatal(err)
	}
	f.sched.Run(0)
	if len(f.rx[1].frames) != 2 {
		t.Fatalf("got %d frames across two frequencies, want 2", len(f.rx[1].frames))
	}
	// White-box: both (pair, freq) budgets were computed, and the cached
	// entry now reflects the most recent frequency.
	e := f.medium.lossCache[int(f.ids[0])][int(f.ids[1])]
	if !e.valid || e.freqHz != p2.FrequencyHz {
		t.Fatalf("cache entry = %+v, want valid at freq %v", e, p2.FrequencyHz)
	}
}

// Two identical runs with interleaved moves must produce identical
// delivery outcomes: cache hits and misses may differ in timing but must
// never differ in value (the cache is an optimization, not a model change).
func TestLossCacheDeterministicUnderMoves(t *testing.T) {
	run := func() []int {
		f := newFixture(t, Config{ShadowSigmaDB: 6, Seed: 42},
			[]geo.Point{{X: 0}, {X: 4000}, {X: 8000}, {X: 12000}})
		var counts []int
		for round := 0; round < 6; round++ {
			for i := range f.ids {
				f.transmit(t, i, []byte{byte(round), byte(i)})
				f.sched.Run(0)
			}
			// Shuffle geometry deterministically between rounds.
			if err := f.medium.SetPosition(f.ids[round%4],
				geo.Point{X: float64(round) * 3000, Y: float64(round) * 500}); err != nil {
				t.Fatal(err)
			}
		}
		for _, c := range f.rx {
			counts = append(counts, len(c.frames))
		}
		return counts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery counts diverged between identical runs: %v vs %v", a, b)
		}
	}
}
