package airmedium

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/loraphy"
	"repro/internal/simtime"
)

// recorder captures deliveries in arrival order.
type recorder struct {
	got []string
}

func (r *recorder) OnFrame(d Delivery) {
	r.got = append(r.got, fmt.Sprintf("%d@%d:%s rssi=%.6f snr=%.6f",
		d.From, d.At.UnixNano(), string(d.Data), d.RSSIDBm, d.SNRDB))
}

// buildField creates a medium with n stations scattered over a square
// field, returning the per-station recorders.
func buildField(t *testing.T, cfg Config, n int, fieldMeters float64, seed int64) (*simtime.Scheduler, *Medium, []*recorder) {
	t.Helper()
	sched := simtime.NewScheduler(time.Unix(0, 0).UTC())
	m, err := New(sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := geo.RandomGeometric(n, fieldMeters, fieldMeters, seed)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*recorder, n)
	for i, p := range topo.Positions {
		recs[i] = &recorder{}
		if _, err := m.AddStation(p, recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return sched, m, recs
}

// driveTraffic runs a deterministic transmission schedule: every station
// transmits a few frames at staggered, partially overlapping instants so
// collisions, half-duplex misses, and clean deliveries all occur.
func driveTraffic(t *testing.T, sched *simtime.Scheduler, m *Medium, n int) {
	t.Helper()
	p := loraphy.DefaultParams()
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			id := StationID(i)
			at := time.Duration(round)*time.Second + time.Duration(rng.Intn(200))*time.Millisecond
			payload := []byte(fmt.Sprintf("r%d-s%d", round, i))
			sched.MustAfter(at, func() {
				// Half-duplex clashes are part of the workload: ignore
				// already-transmitting errors.
				_, _ = m.Transmit(id, payload, p)
			})
		}
	}
	sched.RunUntil(sched.Now().Add(10 * time.Second))
}

// TestIndexedMatchesFullScan is the core exactness contract: with
// MaxRangeMeters at the link-budget maximum, the indexed medium delivers
// exactly the frames the full scan delivers — same receivers, instants,
// RSSI/SNR — and agrees on the delivered/collision counters.
func TestIndexedMatchesFullScan(t *testing.T) {
	const n = 60
	p := loraphy.DefaultParams()
	maxRange, err := loraphy.MaxRangeMeters(p, loraphy.DefaultLinkBudget(), loraphy.DefaultLogDistance(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// Field several cells wide so the index actually prunes.
	field := 3 * maxRange
	base := Config{Seed: 7}
	run := func(cfg Config) (Stats, []*recorder) {
		sched, m, recs := buildField(t, cfg, n, field, 21)
		driveTraffic(t, sched, m, n)
		return m.Stats(), recs
	}
	idxCfg := base
	idxCfg.MaxRangeMeters = maxRange
	full, fullRecs := run(base)
	idx, idxRecs := run(idxCfg)

	for i := range fullRecs {
		a, b := fullRecs[i].got, idxRecs[i].got
		if len(a) != len(b) {
			t.Fatalf("station %d: full scan got %d frames, indexed %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("station %d frame %d: full %q vs indexed %q", i, j, a[j], b[j])
			}
		}
	}
	if full.FramesDelivered != idx.FramesDelivered || full.LostCollision != idx.LostCollision ||
		full.FramesSent != idx.FramesSent {
		t.Fatalf("stats diverge: full %+v vs indexed %+v", full, idx)
	}
	// Loss-bucket attribution for skipped far stations is approximate (a
	// far station that was itself transmitting counts half-duplex in the
	// full scan, below-sensitivity in bulk), but the total losses are
	// conserved.
	fullLost := full.LostBelowSensitivity + full.LostHalfDuplex + full.LostNotListening
	idxLost := idx.LostBelowSensitivity + idx.LostHalfDuplex + idx.LostNotListening
	if fullLost != idxLost {
		t.Fatalf("total losses diverge: full %d vs indexed %d", fullLost, idxLost)
	}
	if idx.NeighborhoodRebuilds == 0 {
		t.Fatal("indexed run never built a neighborhood cache")
	}
}

// TestIndexedMatchesFullScanUnderChurn repeats the equivalence with
// mobility, sleep, removal, and link blocking interleaved with traffic —
// the index's incremental maintenance must track all of it.
func TestIndexedMatchesFullScanUnderChurn(t *testing.T) {
	const n = 40
	p := loraphy.DefaultParams()
	maxRange, err := loraphy.MaxRangeMeters(p, loraphy.DefaultLinkBudget(), loraphy.DefaultLogDistance(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	field := 3 * maxRange
	run := func(cfg Config) (Stats, []*recorder) {
		sched, m, recs := buildField(t, cfg, n, field, 5)
		churn := func() {
			// Deterministic churn: move a station across the field, block
			// a link, silence a station, remove another.
			if err := m.SetPosition(3, geo.Point{X: field * 0.9, Y: field * 0.1}); err != nil {
				t.Fatal(err)
			}
			if err := m.SetLinkBlocked(1, 2, true); err != nil {
				t.Fatal(err)
			}
			if err := m.SetListening(4, false); err != nil {
				t.Fatal(err)
			}
			if err := m.Remove(5); err != nil {
				t.Fatal(err)
			}
		}
		sched.MustAfter(1500*time.Millisecond, churn)
		driveTraffic(t, sched, m, n)
		return m.Stats(), recs
	}
	idxCfg := Config{Seed: 7, MaxRangeMeters: maxRange}
	full, fullRecs := run(Config{Seed: 7})
	idx, idxRecs := run(idxCfg)
	for i := range fullRecs {
		a, b := fullRecs[i].got, idxRecs[i].got
		if len(a) != len(b) {
			t.Fatalf("station %d: full scan got %d frames, indexed %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("station %d frame %d: full %q vs indexed %q", i, j, a[j], b[j])
			}
		}
	}
	if full.FramesDelivered != idx.FramesDelivered || full.LostCollision != idx.LostCollision {
		t.Fatalf("stats diverge: full %+v vs indexed %+v", full, idx)
	}
}

// TestPerCellInvalidation pins the satellite fix: one SetPosition must not
// cold the whole medium's caches. Two senders far apart warm their
// neighborhoods; moving a third station near sender A rebuilds only A's.
func TestPerCellInvalidation(t *testing.T) {
	sched := simtime.NewScheduler(time.Unix(0, 0).UTC())
	const cell = 1000.0
	m, err := New(sched, Config{MaxRangeMeters: cell, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A-cluster around the origin, B-cluster ten cells away, a mover.
	add := func(x, y float64) StationID {
		id, err := m.AddStation(geo.Point{X: x, Y: y}, &recorder{})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := add(100, 100)
	add(300, 200)
	b := add(10*cell+100, 100)
	add(10*cell+300, 200)
	mover := add(5*cell, 5*cell)

	p := loraphy.DefaultParams()
	both := func() {
		if _, err := m.Transmit(a, []byte("a"), p); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(time.Second)
		if _, err := m.Transmit(b, []byte("b"), p); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(time.Second)
	}
	both()
	warm := m.Stats().NeighborhoodRebuilds
	if warm != 2 {
		t.Fatalf("first transmissions built %d neighborhoods, want 2", warm)
	}
	both()
	if got := m.Stats().NeighborhoodRebuilds; got != warm {
		t.Fatalf("steady-state transmissions rebuilt caches: %d -> %d", warm, got)
	}
	// Move the mover next to A: only A's neighborhood overlaps the
	// touched cells, so exactly one rebuild follows.
	if err := m.SetPosition(mover, geo.Point{X: 500, Y: 500}); err != nil {
		t.Fatal(err)
	}
	both()
	if got := m.Stats().NeighborhoodRebuilds; got != warm+1 {
		t.Fatalf("after a move near A: rebuilds %d -> %d, want exactly one more", warm, got)
	}
}
