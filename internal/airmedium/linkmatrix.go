package airmedium

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// LinkMatrix holds measured per-link attenuations — testbed replay. A
// reproduction that has access to a deployment's measured link budget
// (from RSSI surveys) can feed it here instead of synthesizing geometry:
// Config.PathLossOverride = matrix.Override and every declared pair uses
// the measured value, with undeclared pairs falling back to the geometric
// model.
//
// JSON form:
//
//	{"name": "campus-2022",
//	 "links": [{"from": 0, "to": 1, "db": 118.5},
//	           {"from": 1, "to": 2, "db": 131.0}]}
//
// Links are directional; Symmetric() mirrors them.
type LinkMatrix struct {
	Name  string `json:"name"`
	Links []Link `json:"links"`

	index map[[2]StationID]float64
}

// Link is one measured attenuation.
type Link struct {
	From StationID `json:"from"`
	To   StationID `json:"to"`
	DB   float64   `json:"db"`
}

// build constructs the lookup index.
func (m *LinkMatrix) build() error {
	m.index = make(map[[2]StationID]float64, len(m.Links))
	for _, l := range m.Links {
		if l.From < 0 || l.To < 0 || l.From == l.To {
			return fmt.Errorf("airmedium: link matrix entry %d->%d invalid", l.From, l.To)
		}
		if l.DB <= 0 {
			return fmt.Errorf("airmedium: link %d->%d loss %v dB must be positive", l.From, l.To, l.DB)
		}
		m.index[[2]StationID{l.From, l.To}] = l.DB
	}
	return nil
}

// Symmetric mirrors every link so the matrix covers both directions;
// explicit reverse entries win.
func (m *LinkMatrix) Symmetric() *LinkMatrix {
	out := &LinkMatrix{Name: m.Name}
	seen := make(map[[2]StationID]bool, 2*len(m.Links))
	for _, l := range m.Links {
		out.Links = append(out.Links, l)
		seen[[2]StationID{l.From, l.To}] = true
	}
	for _, l := range m.Links {
		rev := [2]StationID{l.To, l.From}
		if !seen[rev] {
			out.Links = append(out.Links, Link{From: l.To, To: l.From, DB: l.DB})
			seen[rev] = true
		}
	}
	return out
}

// Override returns the function to install as Config.PathLossOverride.
func (m *LinkMatrix) Override() (func(from, to StationID) (float64, bool), error) {
	if m.index == nil {
		if err := m.build(); err != nil {
			return nil, err
		}
	}
	return func(from, to StationID) (float64, bool) {
		loss, ok := m.index[[2]StationID{from, to}]
		return loss, ok
	}, nil
}

// ReadLinkMatrix parses the JSON form.
func ReadLinkMatrix(r io.Reader) (*LinkMatrix, error) {
	var m LinkMatrix
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("airmedium: decoding link matrix: %w", err)
	}
	if len(m.Links) == 0 {
		return nil, fmt.Errorf("airmedium: link matrix %q has no links", m.Name)
	}
	if err := m.build(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadLinkMatrix reads the JSON form from a file.
func LoadLinkMatrix(path string) (*LinkMatrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("airmedium: %w", err)
	}
	defer f.Close()
	return ReadLinkMatrix(f)
}
