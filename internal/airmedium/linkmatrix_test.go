package airmedium

import (
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/loraphy"
	"repro/internal/simtime"
)

func TestLinkMatrixParseAndOverride(t *testing.T) {
	doc := `{"name":"bench","links":[
		{"from":0,"to":1,"db":100},
		{"from":1,"to":0,"db":105}]}`
	m, err := ReadLinkMatrix(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	ov, err := m.Override()
	if err != nil {
		t.Fatal(err)
	}
	if loss, ok := ov(0, 1); !ok || loss != 100 {
		t.Errorf("0->1 = %v,%v, want 100,true", loss, ok)
	}
	if loss, ok := ov(1, 0); !ok || loss != 105 {
		t.Errorf("1->0 = %v,%v, want 105,true (directional)", loss, ok)
	}
	if _, ok := ov(0, 2); ok {
		t.Error("undeclared pair should fall through")
	}
}

func TestLinkMatrixValidation(t *testing.T) {
	for _, doc := range []string{
		`{"links":[]}`,
		`{"links":[{"from":0,"to":0,"db":100}]}`,
		`{"links":[{"from":0,"to":1,"db":-5}]}`,
		`{"bogus": true}`,
	} {
		if _, err := ReadLinkMatrix(strings.NewReader(doc)); err == nil {
			t.Errorf("doc %s: want error", doc)
		}
	}
}

func TestLinkMatrixSymmetric(t *testing.T) {
	m := &LinkMatrix{Links: []Link{{From: 0, To: 1, DB: 100}}}
	sym := m.Symmetric()
	ov, err := sym.Override()
	if err != nil {
		t.Fatal(err)
	}
	if loss, ok := ov(1, 0); !ok || loss != 100 {
		t.Errorf("mirrored 1->0 = %v,%v, want 100,true", loss, ok)
	}
	// Explicit reverse entries win over mirroring.
	m2 := &LinkMatrix{Links: []Link{{From: 0, To: 1, DB: 100}, {From: 1, To: 0, DB: 130}}}
	ov2, err := m2.Symmetric().Override()
	if err != nil {
		t.Fatal(err)
	}
	if loss, _ := ov2(1, 0); loss != 130 {
		t.Errorf("explicit reverse = %v, want 130", loss)
	}
}

func TestMediumUsesLinkMatrix(t *testing.T) {
	// Two stations at identical positions (geometric loss ~0), but the
	// measured matrix declares the link dead in one direction.
	sched := simtime.NewScheduler(t0)
	matrix := &LinkMatrix{Links: []Link{
		{From: 0, To: 1, DB: 200}, // dead: far below sensitivity
		{From: 1, To: 0, DB: 100}, // fine
	}}
	ov, err := matrix.Override()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(sched, Config{PathLossOverride: ov})
	if err != nil {
		t.Fatal(err)
	}
	rx0, rx1 := &collector{}, &collector{}
	id0, _ := m.AddStation(geo.Point{}, rx0)
	id1, _ := m.AddStation(geo.Point{}, rx1)
	if _, err := m.Transmit(id0, []byte("a"), loraphy.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(rx1.frames) != 0 {
		t.Error("measured-dead link delivered")
	}
	if _, err := m.Transmit(id1, []byte("b"), loraphy.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(rx0.frames) != 1 {
		t.Error("measured-good link did not deliver")
	}
}
