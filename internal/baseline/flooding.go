// Package baseline implements the controlled-flooding comparison protocol
// for the evaluation. Flooding is the standard straw-man LoRaMesher is
// measured against: it needs no routing state — every node rebroadcasts
// every new packet until a hop limit — so it delivers without convergence
// delay but at a duplicate-transmission cost that grows with network size.
//
// The flooding node reuses the LoRaMesher wire header (DATA packets with
// Via = broadcast) and prepends a 3-byte flood header to the payload:
// TTL(1) and a 16-bit origin sequence number used for duplicate
// suppression.
package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/forward"
	"repro/internal/metrics"
	"repro/internal/packet"
)

// floodHeaderLen is TTL(1) + seqno(2).
const floodHeaderLen = 3

// MaxPayload is the application bytes one flooded packet can carry.
var MaxPayload = packet.MaxPayload(packet.TypeData) - floodHeaderLen

// Errors returned by the flooding API.
var (
	ErrTooLarge = errors.New("baseline: payload too large")
	ErrStopped  = errors.New("baseline: node is stopped")
)

// Config parameterizes a flooding node.
type Config struct {
	// Address is the node's mesh address.
	Address packet.Address
	// TTL is the rebroadcast hop limit. Zero means 8.
	TTL uint8
	// RebroadcastDelay is the mean randomized hold-off before a node
	// repeats a packet; the jitter desynchronizes the simultaneous
	// rebroadcasts that otherwise collide. Zero means 500 ms.
	RebroadcastDelay time.Duration
	// DedupCapacity is how many (origin, seq) pairs the duplicate
	// suppressor remembers. Zero means 512.
	DedupCapacity int
}

func (c Config) withDefaults() Config {
	if c.TTL == 0 {
		c.TTL = 8
	}
	if c.RebroadcastDelay <= 0 {
		c.RebroadcastDelay = 500 * time.Millisecond
	}
	if c.DedupCapacity <= 0 {
		c.DedupCapacity = 512
	}
	return c
}

// floodKey identifies a flooded packet network-wide.
type floodKey struct {
	origin packet.Address
	seq    uint16
}

// Node is one controlled-flooding protocol engine. Like core.Node it is a
// host-driven state machine implementing the same engine surface, so the
// simulator runs both protocols on identical substrates.
type Node struct {
	cfg     Config
	env     core.Env
	reg     *metrics.Registry
	stopped bool

	nextSeq uint16
	// seen is a FIFO-evicting dedup set.
	seen     map[floodKey]struct{}
	seenFIFO []floodKey

	queue        []*packet.Packet
	transmitting bool
}

// NewNode creates a flooding node on the given env.
func NewNode(cfg Config, env core.Env) (*Node, error) {
	if env == nil {
		return nil, fmt.Errorf("baseline: nil env")
	}
	if cfg.Address == packet.Broadcast {
		return nil, fmt.Errorf("baseline: node address must not be broadcast")
	}
	return &Node{
		cfg:  cfg.withDefaults(),
		env:  env,
		reg:  metrics.NewRegistry(),
		seen: make(map[floodKey]struct{}),
	}, nil
}

// Address returns the node's mesh address.
func (n *Node) Address() packet.Address { return n.cfg.Address }

// Metrics exposes the node's instruments.
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// Kind identifies the strategy: the controlled-flooding baseline.
func (n *Node) Kind() forward.Kind { return forward.KindFlooding }

// Beacons reports no control beacons: flooding has no control plane.
func (n *Node) Beacons() []forward.Beacon { return nil }

// Start is a no-op: flooding needs no beaconing. It exists so the
// simulator can treat both protocols uniformly.
func (n *Node) Start() error {
	if n.stopped {
		return ErrStopped
	}
	return nil
}

// Stop silences the node.
func (n *Node) Stop() { n.stopped = true }

// Send floods a datagram toward dst (packet.Broadcast floods to everyone).
func (n *Node) Send(dst packet.Address, payload []byte) error {
	if n.stopped {
		return ErrStopped
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: %d > %d bytes", ErrTooLarge, len(payload), MaxPayload)
	}
	seq := n.nextSeq
	n.nextSeq++
	body := make([]byte, floodHeaderLen+len(payload))
	body[0] = n.cfg.TTL
	binary.BigEndian.PutUint16(body[1:3], seq)
	copy(body[floodHeaderLen:], payload)
	p := &packet.Packet{
		Dst:     dst,
		Src:     n.cfg.Address,
		Type:    packet.TypeData,
		Via:     packet.Broadcast,
		Payload: body,
	}
	n.remember(floodKey{origin: n.cfg.Address, seq: seq})
	n.reg.Counter("app.sent").Inc()
	n.enqueue(p, 0)
	return nil
}

// HandleFrame processes a received frame.
func (n *Node) HandleFrame(frame []byte, _ core.RxInfo) {
	if n.stopped {
		return
	}
	// rx.frames counts every frame the radio handed us — parse failures
	// included — so delivered and received frame counts reconcile.
	n.reg.Counter("rx.frames").Inc()
	p, err := packet.Unmarshal(frame)
	if err != nil {
		n.reg.Counter("rx.corrupt").Inc()
		return
	}
	if p.Type != packet.TypeData || len(p.Payload) < floodHeaderLen {
		n.reg.Counter("rx.corrupt").Inc()
		return
	}
	if p.Src == n.cfg.Address {
		return // own flood echoed back
	}
	ttl := p.Payload[0]
	seq := binary.BigEndian.Uint16(p.Payload[1:3])
	key := floodKey{origin: p.Src, seq: seq}
	if n.isDuplicate(key) {
		n.reg.Counter("rx.duplicate").Inc()
		return
	}
	n.remember(key)

	if p.Dst == n.cfg.Address || p.Dst == packet.Broadcast {
		n.reg.Counter("app.delivered").Inc()
		n.env.Deliver(core.AppMessage{
			From:    p.Src,
			To:      p.Dst,
			Payload: append([]byte(nil), p.Payload[floodHeaderLen:]...),
			At:      n.env.Now(),
		})
		if p.Dst == n.cfg.Address {
			return // unicast reached its destination; stop the flood here
		}
	}
	if ttl <= 1 {
		n.reg.Counter("drop.ttl").Inc()
		return
	}
	fwd := p.Clone()
	fwd.Payload[0] = ttl - 1
	n.reg.Counter("fwd.frames").Inc()
	// Randomized hold-off: nodes that heard the same broadcast would
	// otherwise rebroadcast at the same instant and collide.
	delay := time.Duration((0.5 + n.env.Rand()) * float64(n.cfg.RebroadcastDelay))
	n.enqueue(fwd, delay)
}

func (n *Node) isDuplicate(k floodKey) bool {
	_, ok := n.seen[k]
	return ok
}

func (n *Node) remember(k floodKey) {
	if _, ok := n.seen[k]; ok {
		return
	}
	n.seen[k] = struct{}{}
	n.seenFIFO = append(n.seenFIFO, k)
	if len(n.seenFIFO) > n.cfg.DedupCapacity {
		old := n.seenFIFO[0]
		n.seenFIFO = n.seenFIFO[1:]
		delete(n.seen, old)
	}
}

// enqueue schedules a packet for transmission after delay.
func (n *Node) enqueue(p *packet.Packet, delay time.Duration) {
	if delay > 0 {
		n.env.Schedule(delay, func() { n.enqueue(p, 0) })
		return
	}
	n.queue = append(n.queue, p)
	n.pump()
}

func (n *Node) pump() {
	if n.stopped || n.transmitting || len(n.queue) == 0 {
		return
	}
	p := n.queue[0]
	n.queue[0] = nil
	n.queue = n.queue[1:]
	frame, err := packet.Marshal(p)
	if err != nil {
		n.reg.Counter("drop.marshal").Inc()
		n.pump()
		return
	}
	if _, err := n.env.Transmit(frame); err != nil {
		n.reg.Counter("drop.txerror").Inc()
		return
	}
	n.transmitting = true
	n.reg.Counter("tx.frames").Inc()
	n.reg.Counter("tx.bytes").Add(uint64(len(frame)))
}

// HandleTxDone resumes the transmit queue.
func (n *Node) HandleTxDone() {
	if n.stopped {
		return
	}
	n.transmitting = false
	n.pump()
}
