package baseline

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/loraphy"
	"repro/internal/packet"
	"repro/internal/simtime"
)

var t0 = time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

// floodBus is a loopback medium for flooding nodes with a per-link drop
// function, mirroring the core package's test harness.
type floodBus struct {
	sched *simtime.Scheduler
	envs  []*floodEnv
	drop  func(from, to packet.Address) bool
}

type floodEnv struct {
	b        *floodBus
	node     *Node
	addr     packet.Address
	rng      *rand.Rand
	msgs     []core.AppMessage
	txActive bool
}

func (e *floodEnv) Now() time.Time { return e.b.sched.Now() }

func (e *floodEnv) Schedule(d time.Duration, fn func()) func() {
	h := e.b.sched.MustAfter(d, fn)
	return func() { e.b.sched.Cancel(h) }
}

func (e *floodEnv) Transmit(frame []byte) (time.Duration, error) {
	airtime := loraphy.DefaultParams().MustAirtime(len(frame))
	data := append([]byte(nil), frame...)
	e.txActive = true
	e.b.sched.MustAfter(airtime, func() {
		e.txActive = false
		for _, other := range e.b.envs {
			if other == e || other.txActive {
				continue
			}
			if e.b.drop != nil && e.b.drop(e.addr, other.addr) {
				continue
			}
			other.node.HandleFrame(data, core.RxInfo{})
		}
		e.node.HandleTxDone()
	})
	return airtime, nil
}

func (e *floodEnv) ChannelBusy() (bool, error)  { return false, nil }
func (e *floodEnv) Deliver(msg core.AppMessage) { e.msgs = append(e.msgs, msg) }
func (e *floodEnv) StreamDone(core.StreamEvent) {}
func (e *floodEnv) Rand() float64               { return e.rng.Float64() }

var _ core.Env = (*floodEnv)(nil)

func newFloodBus(t *testing.T, cfg Config, addrs ...packet.Address) *floodBus {
	t.Helper()
	b := &floodBus{sched: simtime.NewScheduler(t0)}
	for i, a := range addrs {
		c := cfg
		c.Address = a
		env := &floodEnv{b: b, addr: a, rng: rand.New(rand.NewSource(int64(i) + 1))}
		n, err := NewNode(c, env)
		if err != nil {
			t.Fatal(err)
		}
		env.node = n
		b.envs = append(b.envs, env)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func (b *floodBus) env(a packet.Address) *floodEnv {
	for _, e := range b.envs {
		if e.addr == a {
			return e
		}
	}
	return nil
}

func chainDrop(chain []packet.Address) func(from, to packet.Address) bool {
	idx := make(map[packet.Address]int, len(chain))
	for i, a := range chain {
		idx[a] = i
	}
	return func(from, to packet.Address) bool {
		fi, ok1 := idx[from]
		ti, ok2 := idx[to]
		if !ok1 || !ok2 {
			return true
		}
		d := fi - ti
		return d != 1 && d != -1
	}
}

func TestFloodReachesMultiHopDestination(t *testing.T) {
	chain := []packet.Address{1, 2, 3, 4}
	b := newFloodBus(t, Config{}, chain...)
	b.drop = chainDrop(chain)
	if err := b.env(1).node.Send(4, []byte("flooded")); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(time.Minute)
	msgs := b.env(4).msgs
	if len(msgs) != 1 || string(msgs[0].Payload) != "flooded" || msgs[0].From != 1 {
		t.Fatalf("destination messages = %+v", msgs)
	}
	// Intermediates forwarded but did not deliver a unicast.
	if len(b.env(2).msgs)+len(b.env(3).msgs) != 0 {
		t.Error("intermediate node delivered a unicast flood")
	}
	if b.env(2).node.Metrics().Counter("fwd.frames").Value() == 0 {
		t.Error("intermediate did not rebroadcast")
	}
}

func TestFloodBroadcastDeliversEverywhere(t *testing.T) {
	chain := []packet.Address{1, 2, 3, 4, 5}
	b := newFloodBus(t, Config{}, chain...)
	b.drop = chainDrop(chain)
	if err := b.env(1).node.Send(packet.Broadcast, []byte("all")); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(time.Minute)
	for _, a := range chain[1:] {
		if len(b.env(a).msgs) != 1 {
			t.Errorf("node %v got %d broadcast messages, want 1", a, len(b.env(a).msgs))
		}
	}
}

func TestFloodDuplicateSuppression(t *testing.T) {
	// Full connectivity, 4 nodes: every node hears every rebroadcast but
	// must deliver and forward each flood only once.
	b := newFloodBus(t, Config{}, 1, 2, 3, 4)
	if err := b.env(1).node.Send(packet.Broadcast, []byte("once")); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(time.Minute)
	for _, a := range []packet.Address{2, 3, 4} {
		if got := len(b.env(a).msgs); got != 1 {
			t.Errorf("node %v delivered %d copies, want 1", a, got)
		}
		if got := b.env(a).node.Metrics().Counter("fwd.frames").Value(); got > 1 {
			t.Errorf("node %v rebroadcast %d times, want ≤1", a, got)
		}
	}
}

func TestFloodTTLBoundsPropagation(t *testing.T) {
	chain := []packet.Address{1, 2, 3, 4, 5}
	cfg := Config{TTL: 2} // origin + 1 rebroadcast: reaches 2 hops
	b := newFloodBus(t, cfg, chain...)
	b.drop = chainDrop(chain)
	if err := b.env(1).node.Send(5, []byte("short")); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(time.Minute)
	if len(b.env(5).msgs) != 0 {
		t.Error("flood with TTL 2 crossed 4 hops")
	}
	// TTL drops are counted somewhere along the chain.
	var ttlDrops uint64
	for _, a := range chain {
		ttlDrops += b.env(a).node.Metrics().Counter("drop.ttl").Value()
	}
	if ttlDrops == 0 {
		t.Error("no TTL drops recorded")
	}
}

func TestFloodUnicastStopsAtDestination(t *testing.T) {
	chain := []packet.Address{1, 2, 3}
	b := newFloodBus(t, Config{}, chain...)
	b.drop = chainDrop(chain)
	if err := b.env(1).node.Send(2, []byte("next door")); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(time.Minute)
	if len(b.env(2).msgs) != 1 {
		t.Fatal("neighbor did not receive")
	}
	// Node 2 must not rebroadcast a unicast addressed to itself, so 3
	// never hears it.
	if b.env(3).node.Metrics().Counter("rx.frames").Value() != 0 {
		t.Error("destination rebroadcast a packet addressed to it")
	}
}

func TestFloodValidation(t *testing.T) {
	b := newFloodBus(t, Config{}, 1)
	n := b.env(1).node
	if err := n.Send(2, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize = %v, want ErrTooLarge", err)
	}
	n.Stop()
	if err := n.Send(2, []byte("x")); !errors.Is(err, ErrStopped) {
		t.Errorf("send after stop = %v, want ErrStopped", err)
	}
	if _, err := NewNode(Config{Address: packet.Broadcast}, &floodEnv{}); err == nil {
		t.Error("broadcast address: want error")
	}
	if _, err := NewNode(Config{Address: 1}, nil); err == nil {
		t.Error("nil env: want error")
	}
}

func TestFloodDedupEviction(t *testing.T) {
	cfg := Config{DedupCapacity: 4}
	b := newFloodBus(t, cfg, 1, 2)
	for i := 0; i < 10; i++ {
		if err := b.env(1).node.Send(packet.Broadcast, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		b.sched.RunFor(10 * time.Second)
	}
	if got := len(b.env(2).msgs); got != 10 {
		t.Errorf("delivered %d, want 10 despite dedup eviction", got)
	}
	if got := len(b.env(2).node.seen); got > 4 {
		t.Errorf("dedup set grew to %d, cap 4", got)
	}
}

func TestFloodCorruptFrames(t *testing.T) {
	b := newFloodBus(t, Config{}, 1)
	n := b.env(1).node
	n.HandleFrame([]byte{1, 2}, core.RxInfo{})
	// Valid packet but payload shorter than the flood header.
	p := &packet.Packet{Dst: 1, Src: 2, Type: packet.TypeData, Via: packet.Broadcast, Payload: []byte{9}}
	frame, err := packet.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	n.HandleFrame(frame, core.RxInfo{})
	if got := n.Metrics().Counter("rx.corrupt").Value(); got != 2 {
		t.Errorf("rx.corrupt = %d, want 2", got)
	}
}
