// Package citysim is the city-scale sharded discrete-event simulator: a
// compact telemetry-profile mesh engine (periodic HELLOs building
// Bellman-Ford sink trees, bounded queues, CSMA with deterministic
// backoff, EU868 duty budgets) over the loraphy channel model, designed to
// run 10k-100k nodes where the full per-node engine in internal/netsim
// tops out at tens.
//
// # Spatial sharding
//
// The field is partitioned into a geo.CellGrid whose cell side is at least
// the maximum radio-relevant distance (delivery or interference range plus
// the shadowing margin), so everything a transmission can touch lies in
// the 3x3 cell neighborhood of its sender. Cells are grouped into
// contiguous column stripes balanced by node count; each stripe is a shard
// with its own simtime event wheel. A shard additionally tracks in-flight
// transmissions in its one-column halo so interference and carrier sense
// at its border nodes see foreign traffic.
//
// # Conservative windowed synchronization
//
// Shards run in lockstep windows of width W <= the minimum frame airtime
// (the conservative lookahead: no transmission can start and finish inside
// one window). Each window has two phases with a barrier between them:
// phase A runs every shard's wheel through the window with
// simtime.RunBefore; the barrier merges all shards' transmission outboxes
// into one globally sorted list (by start instant, then sender); phase B
// has every shard integrate that list into its cell tx-index and schedule
// reception evaluations. A frame ending at e is evaluated at e+W, by which
// point every transmission that could overlap it has crossed a barrier —
// the interferer set is exact, at the cost of one extra window of receive
// latency per hop (a documented, mode-independent model semantic, not an
// approximation). Carrier sense is window-quantized the same way: a node
// senses only transmissions that started before the current window.
//
// # Byte-identical determinism contract
//
// For a fixed Config (including Seed) the final Digest is identical for
// the serial reference (Shards: 0, a single wheel doing full O(n) station
// scans) and any sharded run, regardless of shard count or goroutine
// interleaving. The load-bearing rules: all cross-shard effects flow
// through the sorted barrier list; per-cell tx indexes are read-only
// during phases and mutated only at integration in merged order; every
// random draw is a splitmix64 hash of (seed, purpose, node/pair, counter)
// — there is no shared rand.Rand to race on ordering; and both eval paths
// share one linkLoss function so cached and recomputed budgets are
// bit-identical. Unlike airmedium, reception checks sensitivity before
// half-duplex so out-of-range stations land in the same loss bucket
// whether they were scanned individually (serial) or skipped in bulk
// (sharded).
package citysim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/loraphy"
)

// Frame sizes for the two telemetry-profile frame kinds. Fixed sizes keep
// airtimes constant, which gives the windowed synchronizer its minimum
// airtime bound without per-frame bookkeeping.
const (
	helloFrameBytes = 16
	dataFrameBytes  = 24
)

const noRoute = ^uint16(0) // hop-count sentinel: no usable route to a sink

// Config describes one city simulation. The zero value of every field
// selects a sensible default; Nodes is required.
type Config struct {
	// Nodes is the station count (required).
	Nodes int
	// Strategy selects the forwarding strategy, mirroring the full-engine
	// strategy API (internal/forward):
	//
	//	""/"proactive": periodic HELLOs building Bellman-Ford sink trees
	//	                (the default; this path is byte-identical to a
	//	                build without the strategy field)
	//	"reactive":     solicitation-gated beacons — nodes with traffic
	//	                and no route flood a solicit, and only solicited
	//	                (or sink) nodes beacon
	//	"icn":          named-data pub-sub — nodes express interests in
	//	                one well-known content, sinks produce it, every
	//	                hop caches it (TTL-bounded) and aggregates
	//	                concurrent interests in a PIT
	//	"slotted":      proactive routing plus a TDMA gate: data transmits
	//	                only inside the node's depth-derived slot
	Strategy string
	// SlottedSlots is the superframe slot count for Strategy "slotted"
	// (slot = route depth modulo slots). 0 means 8.
	SlottedSlots int
	// Shards selects the execution mode: 0 is the serial reference — one
	// event wheel and full O(n) station scans per transmission, the
	// design that caps internal/netsim at demo scale — and any k >= 1
	// runs k column-stripe shards over the cell index (clamped to the
	// grid's column count). All modes produce the same Digest.
	Shards int
	// Seed drives placement, jitter, backoff, shadowing, and erasures.
	Seed int64
	// Sinks is the number of data collection points, placed on a uniform
	// grid and snapped to the nearest node. 0 means max(1, Nodes/640).
	Sinks int
	// FieldMeters is the square field side. 0 derives it from Nodes and
	// TargetDegree so mean radio degree stays constant as Nodes grows.
	FieldMeters float64
	// TargetDegree is the mean number of neighbors within delivery range
	// used when deriving the field size. 0 means 30.
	TargetDegree float64
	// HelloPeriod is the mean beacon interval (0 = 60s); DataPeriod the
	// mean telemetry generation interval per node (0 = 90s). Both get
	// +-1/8 period of per-node hash jitter.
	HelloPeriod time.Duration
	DataPeriod  time.Duration
	// RouteTTL expires sink routes not refreshed by a beacon. 0 means
	// 3*HelloPeriod + HelloPeriod/2.
	RouteTTL time.Duration
	// QueueCap bounds each node's forwarding queue (0 = 8; oldest drops).
	QueueCap int
	// TTLHops bounds forwarding depth (0 = 32).
	TTLHops int
	// Window overrides the synchronization window. 0 means the minimum
	// frame airtime; larger values are rejected (the conservative bound).
	Window time.Duration
	// PathLossExponent tunes the log-distance model (0 = 3.8, urban).
	PathLossExponent float64
	// ShadowSigmaDB adds per-link log-normal shadowing, truncated at
	// +-2 sigma so the cell size bound stays finite.
	ShadowSigmaDB float64
	// ExtraFrameLossRate injects i.i.d. per-(frame,receiver) erasures.
	ExtraFrameLossRate float64
	// Params and LinkBudget follow loraphy defaults when zero.
	Params     loraphy.Params
	LinkBudget loraphy.LinkBudget
}

// Stats is the merged outcome of a run. Every field except EventsFired,
// Wall, and StateBytes is identical across execution modes per Config.
type Stats struct {
	Nodes, Shards, Cells, Sinks int
	Windows, FastForwards       uint64

	// Radio-level outcomes, airmedium bucket semantics (see package doc
	// for the sensitivity-first ordering).
	FramesSent           uint64
	FramesDelivered      uint64
	LostBelowSensitivity uint64
	LostCollision        uint64
	LostHalfDuplex       uint64
	LostRandom           uint64
	HelloSkips           uint64
	AirtimeTotal         time.Duration

	// Application-level outcomes. In ICN mode Offered counts expressed
	// interests and Delivered counts satisfied ones.
	Offered    uint64 // telemetry readings generated
	Delivered  uint64 // readings arrived at a sink
	DropQueue  uint64
	DropTTL    uint64
	LatencySum time.Duration // sum over delivered readings

	// Strategy-specific outcomes (zero under the proactive default; only
	// folded into the digest in non-proactive modes, keeping the
	// proactive digest byte-identical).
	SolicitsSent       uint64 // reactive: solicit frames transmitted
	InterestsSent      uint64 // icn: interest frames transmitted
	InterestAggregated uint64 // icn: interests collapsed into a live PIT
	CacheHits          uint64 // icn: interests answered from a content store
	SlotDeferrals      uint64 // slotted: transmissions deferred to their slot

	// Machine/mode-dependent (excluded from the digest).
	EventsFired uint64
	Wall        time.Duration
	StateBytes  uint64
}

// PDR returns the delivery ratio of offered telemetry.
func (s Stats) PDR() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Offered)
}

// MeanLatency returns the mean end-to-end latency of delivered readings.
func (s Stats) MeanLatency() time.Duration {
	if s.Delivered == 0 {
		return 0
	}
	return s.LatencySum / time.Duration(s.Delivered)
}

// EventsPerSec returns fired scheduler events per wall second.
func (s Stats) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.EventsFired) / s.Wall.Seconds()
}

// resolved carries the validated, defaulted configuration plus every
// derived physical constant the hot paths need.
type resolved struct {
	Config
	params        loraphy.Params
	budget        loraphy.LinkBudget
	model         loraphy.LogDistance
	field         float64
	eirpDBm       float64 // tx power + both antenna gains
	maxLossDel    float64 // max path loss that still delivers
	maxLossRel    float64 // max radio-relevant loss (delivery or interference + shadow margin)
	noiseDBm      float64
	captureThDB   float64
	helloAirNs    int64
	dataAirNs     int64
	maxAirNs      int64
	winNs         int64
	helloNs       int64
	dataNs        int64
	routeTTLNs    int64
	csmaSlotNs    int64
	noRouteWaitNs int64

	// Strategy-mode constants (see engine.go for the handlers).
	strat        uint8
	slotLenNs    int64 // slotted: one TDMA slot
	slotPeriodNs int64 // slotted: the superframe
	solicitTTLNs int64 // reactive: how long a solicit licenses beacons
	relayJitNs   int64 // reactive/icn: flood-relay jitter window
	pitTTLNs     int64 // icn: pending-interest lifetime
	csTTLNs      int64 // icn: content-store entry freshness
}

// Strategy codes for resolved.strat.
const (
	stratProactive uint8 = iota
	stratReactive
	stratICN
	stratSlotted
)

func (cfg Config) resolve() (resolved, error) {
	r := resolved{Config: cfg}
	if cfg.Nodes < 2 {
		return r, fmt.Errorf("citysim: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Shards < 0 {
		return r, fmt.Errorf("citysim: negative shard count %d", cfg.Shards)
	}
	if cfg.ExtraFrameLossRate < 0 || cfg.ExtraFrameLossRate >= 1 {
		return r, fmt.Errorf("citysim: ExtraFrameLossRate %v out of [0,1)", cfg.ExtraFrameLossRate)
	}
	if cfg.ShadowSigmaDB < 0 {
		return r, fmt.Errorf("citysim: negative ShadowSigmaDB %v", cfg.ShadowSigmaDB)
	}
	r.params = cfg.Params
	if r.params == (loraphy.Params{}) {
		r.params = loraphy.DefaultParams()
	}
	if err := r.params.Validate(); err != nil {
		return r, fmt.Errorf("citysim: %w", err)
	}
	r.budget = cfg.LinkBudget
	if r.budget == (loraphy.LinkBudget{}) {
		r.budget = loraphy.DefaultLinkBudget()
	}
	exp := cfg.PathLossExponent
	if exp == 0 {
		exp = 3.8 // urban canyon; the default suburban 2.7 gives km-scale cells
	}
	base := loraphy.DefaultLogDistance()
	base.Exponent = exp
	r.model = base

	helloAir, err := r.params.Airtime(helloFrameBytes)
	if err != nil {
		return r, fmt.Errorf("citysim: %w", err)
	}
	dataAir, err := r.params.Airtime(dataFrameBytes)
	if err != nil {
		return r, fmt.Errorf("citysim: %w", err)
	}
	r.helloAirNs = helloAir.Nanoseconds()
	r.dataAirNs = dataAir.Nanoseconds()
	r.maxAirNs = r.dataAirNs
	minAir := r.helloAirNs
	if r.dataAirNs < minAir {
		minAir = r.dataAirNs
		r.maxAirNs = r.helloAirNs
	}
	if cfg.Window < 0 || cfg.Window.Nanoseconds() > minAir {
		return r, fmt.Errorf("citysim: window %v exceeds the minimum airtime %v (conservative lookahead bound)",
			cfg.Window, time.Duration(minAir))
	}
	r.winNs = cfg.Window.Nanoseconds()
	if r.winNs == 0 {
		r.winNs = minAir
	}

	sens, err := r.params.SensitivityDBm()
	if err != nil {
		return r, fmt.Errorf("citysim: %w", err)
	}
	snrFloor, err := r.params.SpreadingFactor.SNRFloorDB()
	if err != nil {
		return r, fmt.Errorf("citysim: %w", err)
	}
	r.noiseDBm = r.params.NoiseFloorDBm()
	th, err := loraphy.CaptureThresholdDB(r.params.SpreadingFactor, r.params.SpreadingFactor)
	if err != nil {
		return r, fmt.Errorf("citysim: %w", err)
	}
	r.captureThDB = th
	r.eirpDBm = r.budget.RSSI(0)
	effSens := math.Max(sens, r.noiseDBm+snrFloor)
	r.maxLossDel = r.eirpDBm - effSens
	maxLossInterf := r.eirpDBm - (r.noiseDBm - 10)
	r.maxLossRel = math.Max(r.maxLossDel, maxLossInterf) + 2*cfg.ShadowSigmaDB
	if r.maxLossDel <= 0 {
		return r, fmt.Errorf("citysim: link budget closes at zero range")
	}

	deg := cfg.TargetDegree
	if deg == 0 {
		deg = 30
	}
	if deg <= 0 {
		return r, fmt.Errorf("citysim: TargetDegree %v must be positive", deg)
	}
	delRange := rangeAtLoss(r.model, r.params.FrequencyHz, r.maxLossDel)
	r.field = cfg.FieldMeters
	if r.field == 0 {
		r.field = delRange * math.Sqrt(float64(cfg.Nodes)*math.Pi/deg)
	}
	if r.field <= 0 {
		return r, fmt.Errorf("citysim: field %v must be positive", r.field)
	}

	if r.HelloPeriod == 0 {
		r.HelloPeriod = 60 * time.Second
	}
	if r.DataPeriod == 0 {
		r.DataPeriod = 90 * time.Second
	}
	if r.RouteTTL == 0 {
		r.RouteTTL = 3*r.HelloPeriod + r.HelloPeriod/2
	}
	if r.HelloPeriod <= 0 || r.DataPeriod <= 0 || r.RouteTTL <= 0 {
		return r, fmt.Errorf("citysim: periods must be positive")
	}
	r.helloNs = r.HelloPeriod.Nanoseconds()
	r.dataNs = r.DataPeriod.Nanoseconds()
	r.routeTTLNs = r.RouteTTL.Nanoseconds()
	r.csmaSlotNs = r.helloAirNs
	r.noRouteWaitNs = r.helloNs / 2
	if r.QueueCap == 0 {
		r.QueueCap = 8
	}
	if r.QueueCap < 1 || r.QueueCap > 255 {
		return r, fmt.Errorf("citysim: QueueCap %d out of [1,255]", r.QueueCap)
	}
	if r.TTLHops == 0 {
		r.TTLHops = 32
	}
	if r.TTLHops < 1 || r.TTLHops > 254 {
		return r, fmt.Errorf("citysim: TTLHops %d out of [1,254]", r.TTLHops)
	}
	if r.Sinks == 0 {
		r.Sinks = cfg.Nodes / 640
		if r.Sinks < 1 {
			r.Sinks = 1
		}
	}
	if r.Sinks < 1 || r.Sinks > cfg.Nodes {
		return r, fmt.Errorf("citysim: Sinks %d out of [1,%d]", r.Sinks, cfg.Nodes)
	}

	switch cfg.Strategy {
	case "", "proactive":
		r.strat = stratProactive
	case "reactive":
		r.strat = stratReactive
	case "icn":
		r.strat = stratICN
	case "slotted":
		r.strat = stratSlotted
	default:
		return r, fmt.Errorf("citysim: unknown strategy %q (want proactive, reactive, icn, or slotted)", cfg.Strategy)
	}
	if r.SlottedSlots == 0 {
		r.SlottedSlots = 8
	}
	if r.SlottedSlots < 1 || r.SlottedSlots > 64 {
		return r, fmt.Errorf("citysim: SlottedSlots %d out of [1,64]", r.SlottedSlots)
	}
	// Four data airtimes per slot: the slot always fits a frame (no
	// livelock) with room for CSMA jitter.
	r.slotLenNs = 4 * r.dataAirNs
	r.slotPeriodNs = int64(r.SlottedSlots) * r.slotLenNs
	r.solicitTTLNs = 2*r.helloNs + r.helloNs/2
	r.relayJitNs = 16 * r.csmaSlotNs
	r.pitTTLNs = r.dataNs / 2
	r.csTTLNs = r.routeTTLNs
	return r, nil
}

// rangeAtLoss inverts the monotone log-distance model: the largest
// distance whose base path loss stays within lossDB.
func rangeAtLoss(m loraphy.LogDistance, freqHz, lossDB float64) float64 {
	lo, hi := 1.0, 1.0
	for m.PathLossDB(hi, freqHz) <= lossDB && hi < 1e7 {
		hi *= 2
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if m.PathLossDB(mid, freqHz) <= lossDB {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Sim is one city simulation. Build with New, drive with Run, read with
// Stats and Digest. Not safe for concurrent use.
type Sim struct {
	r    resolved
	grid geo.CellGrid
	// fullScan marks the serial reference mode (Config.Shards == 0).
	fullScan bool
	nodes    nodeState
	// cellStations lists node ids per cell, ascending (static topology).
	cellStations [][]int32
	// pop3x3 is the station count of each cell's 3x3 neighborhood, for
	// bulk loss accounting in sharded mode.
	pop3x3 []int32
	// shardOfCol maps a grid column to its owning shard.
	shardOfCol []int32
	shards     []*shard
	// winTxs is the barrier-merged, globally sorted transmission list of
	// the current window, read-only during phase B.
	winTxs []txRec
	ran    bool
	stats  Stats
}

// New builds the simulation: placement, sink election, link slabs, and
// shard stripes. Memory and build time are O(Nodes * degree), never
// O(Nodes^2).
func New(cfg Config) (*Sim, error) {
	r, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	cellSide := rangeAtLoss(r.model, r.params.FrequencyHz, r.maxLossRel)
	grid, err := geo.NewCellGrid(0, 0, r.field, r.field, cellSide)
	if err != nil {
		return nil, fmt.Errorf("citysim: %w", err)
	}
	s := &Sim{r: r, grid: grid, fullScan: cfg.Shards == 0}

	topo, err := geo.RandomGeometric(cfg.Nodes, r.field, r.field, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("citysim: %w", err)
	}
	s.buildNodes(topo)
	s.electSinks()
	s.buildShards()
	if !s.fullScan {
		s.buildLinks()
	}
	s.scheduleInitialEvents()
	return s, nil
}

// buildNodes fills the position slabs and the static cell membership.
func (s *Sim) buildNodes(topo *geo.Topology) {
	n := s.r.Nodes
	ns := &s.nodes
	ns.alloc(n, s.r.QueueCap)
	s.cellStations = make([][]int32, s.grid.NumCells())
	for i, p := range topo.Positions {
		ns.x[i], ns.y[i] = p.X, p.Y
		c := int32(s.grid.CellOf(p))
		ns.cell[i] = c
		s.cellStations[c] = append(s.cellStations[c], int32(i))
	}
	s.pop3x3 = make([]int32, s.grid.NumCells())
	for c := range s.pop3x3 {
		var pop int32
		s.grid.ForNeighbors(c, func(nc int) { pop += int32(len(s.cellStations[nc])) })
		s.pop3x3[c] = pop
	}
}

// electSinks snaps a uniform sink grid to the nearest nodes: sinks are
// ordinary stations that terminate telemetry and beacon hop 0.
func (s *Sim) electSinks() {
	k := s.r.Sinks
	g := int(math.Ceil(math.Sqrt(float64(k))))
	placed := 0
	for gy := 0; gy < g && placed < k; gy++ {
		for gx := 0; gx < g && placed < k; gx++ {
			px := (float64(gx) + 0.5) * s.r.field / float64(g)
			py := (float64(gy) + 0.5) * s.r.field / float64(g)
			best, bestD := -1, math.MaxFloat64
			for i := 0; i < s.r.Nodes; i++ {
				d := math.Hypot(s.nodes.x[i]-px, s.nodes.y[i]-py)
				if d < bestD {
					best, bestD = i, d
				}
			}
			if best >= 0 && !s.nodes.isSink[best] {
				s.nodes.isSink[best] = true
				s.nodes.hop[best] = 0
				s.stats.Sinks++
			}
			placed++
		}
	}
}

// buildShards partitions grid columns into contiguous stripes balanced by
// node count and creates the per-shard wheels.
func (s *Sim) buildShards() {
	cols := s.grid.Cols()
	nsh := s.r.Shards
	if s.fullScan {
		nsh = 1
	}
	if nsh > cols {
		nsh = cols
	}
	if nsh < 1 {
		nsh = 1
	}
	// Node count per column.
	colPop := make([]int, cols)
	for c, st := range s.cellStations {
		col, _ := s.grid.ColRow(c)
		colPop[col] += len(st)
	}
	s.shardOfCol = make([]int32, cols)
	cum, next := 0, 0
	for col := 0; col < cols; col++ {
		// Advance to the next stripe when the cumulative count passes the
		// proportional boundary, keeping stripes contiguous and non-empty.
		if next < nsh-1 && cum >= (next+1)*s.r.Nodes/nsh && col > next {
			next++
		}
		s.shardOfCol[col] = int32(next)
		cum += colPop[col]
	}
	actual := int(s.shardOfCol[cols-1]) + 1
	s.shards = make([]*shard, actual)
	for i := range s.shards {
		s.shards[i] = newShard(s, int32(i))
	}
	s.stats.Nodes = s.r.Nodes
	s.stats.Shards = actual
	s.stats.Cells = s.grid.NumCells()
}

// shardOfCell returns the shard owning a cell.
func (s *Sim) shardOfCell(cell int32) int32 {
	col, _ := s.grid.ColRow(int(cell))
	return s.shardOfCol[col]
}

// shardOfNode returns the shard owning a node.
func (s *Sim) shardOfNode(i int32) *shard {
	return s.shards[s.shardOfCell(s.nodes.cell[i])]
}

// Run executes the simulation for d of virtual time (rounded up to whole
// synchronization windows). It may be called once.
func (s *Sim) Run(d time.Duration) error {
	if s.ran {
		return fmt.Errorf("citysim: Run called twice")
	}
	if d <= 0 {
		return fmt.Errorf("citysim: non-positive duration %v", d)
	}
	s.ran = true
	start := time.Now()
	s.runWindows(d.Nanoseconds())
	s.stats.Wall = time.Since(start)
	for _, sh := range s.shards {
		s.stats.EventsFired += sh.wheel.Fired()
	}
	s.stats.StateBytes = s.stateBytes()
	return nil
}

// Stats returns the merged run outcome.
func (s *Sim) Stats() Stats {
	out := s.stats
	for _, sh := range s.shards {
		out.merge(&sh.stats)
	}
	return out
}

func (dst *Stats) merge(src *shardStats) {
	dst.FramesSent += src.framesSent
	dst.FramesDelivered += src.framesDelivered
	dst.LostBelowSensitivity += src.lostBelowSens
	dst.LostCollision += src.lostCollision
	dst.LostHalfDuplex += src.lostHalfDuplex
	dst.LostRandom += src.lostRandom
	dst.HelloSkips += src.helloSkips
	dst.AirtimeTotal += time.Duration(src.airtimeNs)
	dst.Offered += src.offered
	dst.Delivered += src.delivered
	dst.DropQueue += src.dropQueue
	dst.DropTTL += src.dropTTL
	dst.LatencySum += time.Duration(src.latencySumNs)
	dst.SolicitsSent += src.solicitsSent
	dst.InterestsSent += src.interestsSent
	dst.InterestAggregated += src.interestAggregated
	dst.CacheHits += src.cacheHits
	dst.SlotDeferrals += src.slotDeferrals
}

// stateBytes approximates the resident engine footprint: node slabs, link
// slabs, queues, and packet pools. Reporting only — not digest material.
func (s *Sim) stateBytes() uint64 {
	b := uint64(s.r.Nodes) * nodeStateBytesPer
	b += uint64(len(s.nodes.qBuf)) * 4
	b += uint64(len(s.nodes.nbrID))*4 + uint64(len(s.nodes.nbrLoss))*8
	for _, sh := range s.shards {
		b += uint64(cap(sh.pkts)) * pktBytes
	}
	return b
}

// SinkIndices returns the node indices elected as sinks, ascending. A
// multi-gateway harness uses these to attribute deliveries to gateways.
func (s *Sim) SinkIndices() []int {
	var out []int
	for i, is := range s.nodes.isSink {
		if is {
			out = append(out, i)
		}
	}
	return out
}

// Delivery is one reading's arrival at a sink, exported from the
// per-shard delivery logs in the digest's deterministic global order.
type Delivery struct {
	// At and Born are virtual-time offsets from the run start.
	At, Born time.Duration
	// Sink and Origin are node indices.
	Sink, Origin int
}

// Deliveries returns the full delivery log sorted into its global order
// (arrival time, then sink, then origin) — the per-shard append order is
// a mode-dependent interleaving, this ordering is not.
func (s *Sim) Deliveries() []Delivery {
	var recs []deliveryRec
	for _, sh := range s.shards {
		recs = append(recs, sh.deliveries...)
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.atNs != b.atNs {
			return a.atNs < b.atNs
		}
		if a.sink != b.sink {
			return a.sink < b.sink
		}
		if a.origin != b.origin {
			return a.origin < b.origin
		}
		return a.bornNs < b.bornNs
	})
	out := make([]Delivery, len(recs))
	for i, r := range recs {
		out[i] = Delivery{
			At:     time.Duration(r.atNs),
			Born:   time.Duration(r.bornNs),
			Sink:   int(r.sink),
			Origin: int(r.origin),
		}
	}
	return out
}
