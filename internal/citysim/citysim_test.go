package citysim

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// runOnce builds and runs one simulation, returning stats and digest.
func runOnce(t *testing.T, cfg Config, d time.Duration) (Stats, uint64) {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(d); err != nil {
		t.Fatal(err)
	}
	return sim.Stats(), sim.Digest()
}

// TestCityBasics checks that a small city forms routes and delivers
// telemetry to its sinks within a few hello periods.
func TestCityBasics(t *testing.T) {
	cfg := Config{Nodes: 300, Seed: 1, Shards: 2, Sinks: 2}
	st, _ := runOnce(t, cfg, 10*time.Minute)
	if st.Sinks != 2 {
		t.Fatalf("elected %d sinks, want 2", st.Sinks)
	}
	if st.FramesSent == 0 || st.FramesDelivered == 0 {
		t.Fatalf("no radio traffic: %+v", st)
	}
	if st.Offered == 0 {
		t.Fatal("no telemetry offered")
	}
	if st.PDR() < 0.5 {
		t.Fatalf("PDR %.3f below 0.5 (delivered %d / offered %d)", st.PDR(), st.Delivered, st.Offered)
	}
	if st.MeanLatency() <= 0 {
		t.Fatalf("mean latency %v not positive", st.MeanLatency())
	}
	if st.Windows == 0 || st.FastForwards == 0 {
		t.Fatalf("window loop never fast-forwarded: %+v", st)
	}
	if st.StateBytes == 0 || st.EventsFired == 0 {
		t.Fatalf("missing resource accounting: %+v", st)
	}
}

// TestCityRunTwiceRejected pins the one-shot Run contract.
func TestCityRunTwiceRejected(t *testing.T) {
	sim, err := New(Config{Nodes: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(time.Second); err == nil {
		t.Fatal("second Run succeeded")
	}
}

// TestCityConfigValidation walks the rejection paths.
func TestCityConfigValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 1},
		{Nodes: 10, Shards: -1},
		{Nodes: 10, ExtraFrameLossRate: 1.0},
		{Nodes: 10, ShadowSigmaDB: -1},
		{Nodes: 10, Window: time.Hour},
		{Nodes: 10, Sinks: 11},
		{Nodes: 10, QueueCap: 300},
		{Nodes: 10, TTLHops: 255},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestCityDeterminism is the tentpole acceptance: the digest — routing
// tables, per-node counters, queue contents, the delivery log, merged
// stats — is byte-identical between the serial reference (Shards: 0) and
// every sharded execution, per (config, seed), including with shadowing
// and erasures switched on.
func TestCityDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := Config{
				Nodes:              240,
				Seed:               seed,
				Sinks:              2,
				ShadowSigmaDB:      4,
				ExtraFrameLossRate: 0.02,
			}
			const d = 8 * time.Minute
			serial, want := runOnce(t, base, d)
			if serial.Shards != 1 {
				t.Fatalf("serial mode ran %d shards", serial.Shards)
			}
			for _, shards := range []int{1, 2, 4} {
				cfg := base
				cfg.Shards = shards
				st, got := runOnce(t, cfg, d)
				if got != want {
					t.Errorf("shards=%d digest %016x, serial %016x (stats %+v vs %+v)",
						shards, got, want, st, serial)
				}
				if st.Windows != serial.Windows || st.FastForwards != serial.FastForwards {
					t.Errorf("shards=%d window sequence diverged: %d/%d vs serial %d/%d",
						shards, st.Windows, st.FastForwards, serial.Windows, serial.FastForwards)
				}
			}
		})
	}
}

// TestCityShardBarrierRace exercises the multi-goroutine barrier under the
// race detector (scripts/check.sh runs this package with -race): a real
// multi-shard run with enough traffic that every phase and the pruning
// path execute concurrently.
func TestCityShardBarrierRace(t *testing.T) {
	cfg := Config{Nodes: 400, Seed: 3, Shards: 4, Sinks: 2, ShadowSigmaDB: 3}
	st, _ := runOnce(t, cfg, 6*time.Minute)
	if st.Shards < 2 {
		t.Fatalf("wanted a multi-shard run, got %d shards", st.Shards)
	}
	if st.FramesDelivered == 0 {
		t.Fatalf("no deliveries: %+v", st)
	}
}

// TestScaleSmoke is the CI scale-regression gate (satellite #1), gated
// behind SCALE_SMOKE=1 because it simulates a 10k-node city. It fails on
// either (a) serial-vs-sharded trace divergence — digest mismatch — or
// (b) an events/sec speedup below SCALE_FLOOR (default 2.0; the sharded
// executor must beat the full-scan design by at least that factor even on
// one core, because its win is algorithmic: cell-bounded neighbor scans
// instead of O(n) per transmission).
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 to run the 10k-node scale gate")
	}
	floor := 2.0
	if v := os.Getenv("SCALE_FLOOR"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("bad SCALE_FLOOR %q: %v", v, err)
		}
		floor = f
	}
	cfg := Config{Nodes: 10000, Seed: 1}
	const d = 2 * time.Minute
	serial, serialDigest := runOnce(t, cfg, d)
	cfg.Shards = 4
	sharded, shardedDigest := runOnce(t, cfg, d)

	t.Logf("serial:  events=%d wall=%v events/sec=%.0f", serial.EventsFired, serial.Wall, serial.EventsPerSec())
	t.Logf("sharded: events=%d wall=%v events/sec=%.0f shards=%d", sharded.EventsFired, sharded.Wall, sharded.EventsPerSec(), sharded.Shards)
	if shardedDigest != serialDigest {
		t.Fatalf("trace divergence: sharded digest %016x != serial %016x", shardedDigest, serialDigest)
	}
	if ratio := sharded.EventsPerSec() / serial.EventsPerSec(); ratio < floor {
		t.Fatalf("scale regression: sharded/serial events/sec ratio %.2f below floor %.2f", ratio, floor)
	}
}

// TestCityDeliveryExports pins the multi-gateway observability surface:
// sink indices match the elected count, and the delivery log is in its
// deterministic global order with every record naming a real sink.
func TestCityDeliveryExports(t *testing.T) {
	sim, err := New(Config{Nodes: 300, Seed: 1, Shards: 2, Sinks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	sinks := sim.SinkIndices()
	if len(sinks) != 2 {
		t.Fatalf("SinkIndices = %v, want 2 sinks", sinks)
	}
	isSink := map[int]bool{sinks[0]: true, sinks[1]: true}
	recs := sim.Deliveries()
	if uint64(len(recs)) != sim.Stats().Delivered {
		t.Fatalf("Deliveries len %d != Stats().Delivered %d", len(recs), sim.Stats().Delivered)
	}
	perSink := map[int]int{}
	for i, r := range recs {
		if !isSink[r.Sink] {
			t.Fatalf("delivery %d at non-sink node %d", i, r.Sink)
		}
		if r.At < r.Born {
			t.Fatalf("delivery %d arrives before it was born: %+v", i, r)
		}
		if i > 0 && recs[i-1].At > r.At {
			t.Fatalf("delivery log out of order at %d", i)
		}
		perSink[r.Sink]++
	}
	if len(perSink) != 2 {
		t.Errorf("all deliveries landed on one sink: %v", perSink)
	}
}

// TestCityStrategyAliasIdentity pins the proactive-untouched guarantee at
// the digest level: Strategy "" and "proactive" are the same run.
func TestCityStrategyAliasIdentity(t *testing.T) {
	base := Config{Nodes: 120, Seed: 5, Shards: 2, Sinks: 1}
	_, blank := runOnce(t, base, 6*time.Minute)
	named := base
	named.Strategy = "proactive"
	_, aliased := runOnce(t, named, 6*time.Minute)
	if blank != aliased {
		t.Fatalf("Strategy \"\" digest %016x != \"proactive\" %016x", blank, aliased)
	}
}

// TestCityStrategyValidation rejects unknown strategies and bad slot
// counts.
func TestCityStrategyValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 10, Strategy: "flooding"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := New(Config{Nodes: 10, Strategy: "slotted", SlottedSlots: 65}); err == nil {
		t.Fatal("SlottedSlots 65 accepted")
	}
}

// TestCityStrategyDeterminism extends the serial-vs-sharded digest gate to
// every strategy mode: the strategy handlers must obey the same barrier
// discipline as the proactive engine.
func TestCityStrategyDeterminism(t *testing.T) {
	for _, strat := range []string{"reactive", "icn", "slotted"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			base := Config{
				Nodes:         240,
				Seed:          9,
				Sinks:         2,
				Strategy:      strat,
				ShadowSigmaDB: 3,
			}
			const d = 8 * time.Minute
			serial, want := runOnce(t, base, d)
			for _, shards := range []int{2, 4} {
				cfg := base
				cfg.Shards = shards
				_, got := runOnce(t, cfg, d)
				if got != want {
					t.Errorf("shards=%d digest %016x, serial %016x", shards, got, want)
				}
			}
			if serial.FramesSent == 0 {
				t.Fatalf("no radio traffic: %+v", serial)
			}
		})
	}
}

// TestCityStrategyBehavior checks each mode's defining mechanism actually
// engages at city scale.
func TestCityStrategyBehavior(t *testing.T) {
	const d = 12 * time.Minute
	base := Config{Nodes: 240, Seed: 2, Shards: 2, Sinks: 2}

	t.Run("reactive", func(t *testing.T) {
		cfg := base
		cfg.Strategy = "reactive"
		st, _ := runOnce(t, cfg, d)
		if st.SolicitsSent == 0 {
			t.Fatalf("no solicits sent: %+v", st)
		}
		if st.Delivered == 0 {
			t.Fatalf("no deliveries under reactive mode: %+v", st)
		}
	})
	t.Run("icn", func(t *testing.T) {
		cfg := base
		cfg.Strategy = "icn"
		st, _ := runOnce(t, cfg, d)
		if st.InterestsSent == 0 || st.Delivered == 0 {
			t.Fatalf("icn never satisfied an interest: %+v", st)
		}
		if st.CacheHits == 0 {
			t.Fatalf("no cache hits across %d interests: %+v", st.Offered, st)
		}
		if st.InterestAggregated == 0 {
			t.Fatalf("no interest aggregation: %+v", st)
		}
	})
	t.Run("slotted", func(t *testing.T) {
		cfg := base
		cfg.Strategy = "slotted"
		st, _ := runOnce(t, cfg, d)
		if st.SlotDeferrals == 0 {
			t.Fatalf("slot gate never deferred: %+v", st)
		}
		if st.Delivered == 0 {
			t.Fatalf("no deliveries under slotted mode: %+v", st)
		}
		pro, _ := runOnce(t, base, d)
		if pro.Delivered == 0 {
			t.Fatalf("no proactive baseline deliveries: %+v", pro)
		}
	})
}
