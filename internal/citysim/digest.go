// digest.go — the byte-identical determinism witness. The digest folds
// every mode-independent piece of final state: per-node routing and
// counters, queue contents, the full delivery log, and the merged
// statistics (minus the three machine/mode-dependent fields). Equal
// digests across Shards settings are the acceptance test for the sharded
// executor.

package citysim

import "sort"

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type digester uint64

func (d *digester) u64(v uint64) {
	h := uint64(*d)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	*d = digester(h)
}

func (d *digester) i64(v int64) { d.u64(uint64(v)) }

// Digest returns the FNV-1a fold of the run's mode-independent final
// state. Call after Run; calling before folds the initial state.
// Strategy-specific state (content stores, PIT crumbs, solicit/interest
// counters, queued frame kinds) is folded only in the non-proactive
// modes, so the proactive digest is byte-identical to a build without
// the strategy field.
func (s *Sim) Digest() uint64 {
	d := digester(fnvOffset)
	ns := &s.nodes
	strategic := s.r.strat != stratProactive
	for i := 0; i < s.r.Nodes; i++ {
		d.u64(uint64(ns.hop[i]))
		d.i64(int64(ns.next[i]))
		d.i64(ns.routeAt[i])
		d.u64(uint64(ns.txSeq[i]))
		d.u64(uint64(ns.helloSeq[i]))
		d.u64(uint64(ns.dataSeq[i]))
		d.u64(uint64(ns.cHelloTx[i]))
		d.u64(uint64(ns.cDataTx[i]))
		d.u64(uint64(ns.cFwd[i]))
		d.u64(uint64(ns.cDelivered[i]))
		// Queue contents, oldest first. Packet slab indexes are
		// mode-dependent; the packets they name are not.
		sh := s.shardOfNode(int32(i))
		d.u64(uint64(ns.qLen[i]))
		for k := 0; k < int(ns.qLen[i]); k++ {
			slot := (int(ns.qHead[i]) + k) % ns.qCap
			p := sh.pkts[ns.qBuf[i*ns.qCap+slot]]
			d.i64(int64(p.origin))
			d.i64(p.born)
			d.u64(uint64(p.hops))
			if strategic {
				d.u64(uint64(p.kind))
				d.i64(int64(p.dst))
			}
		}
		if strategic {
			d.i64(ns.solicitAt[i])
			d.i64(int64(ns.solSeenFrom[i]))
			d.i64(ns.solSeenBorn[i])
			d.i64(int64(ns.intSeenFrom[i]))
			d.i64(ns.intSeenBorn[i])
			d.i64(ns.csAt[i])
			d.u64(uint64(ns.csHops[i]))
			d.u64(uint64(ns.pitLen[i]))
			for k := 0; k < int(ns.pitLen[i]); k++ {
				d.i64(int64(ns.pitDown[i*pitCap+k]))
				d.i64(int64(ns.pitOrigin[i*pitCap+k]))
				d.i64(ns.pitBorn[i*pitCap+k])
			}
		}
	}

	// The delivery log, sorted into its global order (per-shard append
	// order is a mode-dependent interleaving; the multiset is not).
	var recs []deliveryRec
	for _, sh := range s.shards {
		recs = append(recs, sh.deliveries...)
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.atNs != b.atNs {
			return a.atNs < b.atNs
		}
		if a.sink != b.sink {
			return a.sink < b.sink
		}
		if a.origin != b.origin {
			return a.origin < b.origin
		}
		return a.bornNs < b.bornNs
	})
	for _, rec := range recs {
		d.i64(rec.atNs)
		d.i64(rec.bornNs)
		d.i64(int64(rec.sink))
		d.i64(int64(rec.origin))
	}

	st := s.Stats()
	d.u64(uint64(st.Nodes))
	d.u64(uint64(st.Sinks))
	d.u64(st.Windows)
	d.u64(st.FastForwards)
	d.u64(st.FramesSent)
	d.u64(st.FramesDelivered)
	d.u64(st.LostBelowSensitivity)
	d.u64(st.LostCollision)
	d.u64(st.LostHalfDuplex)
	d.u64(st.LostRandom)
	d.u64(st.HelloSkips)
	d.i64(int64(st.AirtimeTotal))
	d.u64(st.Offered)
	d.u64(st.Delivered)
	d.u64(st.DropQueue)
	d.u64(st.DropTTL)
	d.i64(int64(st.LatencySum))
	if strategic {
		d.u64(st.SolicitsSent)
		d.u64(st.InterestsSent)
		d.u64(st.InterestAggregated)
		d.u64(st.CacheHits)
		d.u64(st.SlotDeferrals)
	}
	return uint64(d)
}
