// engine.go — the compact telemetry-profile mesh engine: slab/SoA node
// state and the protocol handlers (beaconing, sink-tree routing, queueing,
// CSMA, duty budgets). Handlers run on the wheel of the shard owning the
// node and only ever write that node's slots; everything cross-node rides
// the barrier as a txRec.

package citysim

import "math"

// nodeStateBytesPer is the approximate fixed SoA footprint per node, for
// the memory column of the scaling curve.
const nodeStateBytesPer = 8 + 8 + 4 + 1 + // x, y, cell, isSink
	2 + 4 + 8 + // hop, next, routeAt
	8 + 4*16 + 1 + // txEnd, txHist, txHistPos
	1 + 1 + // qHead, qLen
	8 + 8 + // dutyBudget, dutyAt
	1 + 1 + 4 + 4 + 4 + // backoff, pumpArmed, txSeq, helloSeq, dataSeq
	4*8 // counters

// pktBytes is the slab footprint of one queued packet.
const pktBytes = 4 + 8 + 1 + 1 + 4 + 6 // origin, born, hops, kind, dst, padding

// pkt is one queued frame awaiting transmission. Under proactive routing
// it is always a telemetry reading (kind/dst unused — the digest of a
// proactive run never folds them); the icn strategy also queues interest
// relays and named-data answers, for which kind selects the frame type
// and dst the unicast breadcrumb hop (-1 broadcasts). Packets live in
// per-shard slabs with freelists; a frame crossing a shard boundary
// travels as txRec fields and re-materializes in the receiving shard's
// slab.
type pkt struct {
	origin int32
	born   int64
	hops   uint8
	kind   uint8
	dst    int32
}

// nodeState is the struct-of-arrays engine state. Each slot is written
// only by the shard owning the node; slices are shared read-only maps of
// the whole city.
type nodeState struct {
	// Static placement.
	x, y   []float64
	cell   []int32
	isSink []bool

	// Distance-vector routing toward the nearest sink.
	hop     []uint16 // hops to a sink; noRoute when none
	next    []int32  // next-hop node id; -1 when none
	routeAt []int64  // ns of last refresh; -1 when never/poisoned

	// Radio state. txHist keeps the last txHistLen own transmissions for
	// half-duplex checks (a receiver deaf during its own airtime).
	txEnd     []int64
	txHist    []int64 // flat [node][txHistLen]{start,end} pairs
	txHistPos []uint8

	// Bounded FIFO queue of pkt slab indexes (per owning shard's slab).
	qBuf  []int32
	qHead []uint8
	qLen  []uint8
	qCap  int

	// EU868 1% duty budget as a token bucket (ns of airtime).
	dutyBudget []int64
	dutyAt     []int64

	backoff   []uint8
	pumpArmed []bool
	txSeq     []uint32
	helloSeq  []uint32
	dataSeq   []uint32

	// Per-node outcome counters (digest material).
	cHelloTx   []uint32
	cDataTx    []uint32
	cFwd       []uint32
	cDelivered []uint32

	// Strategy-mode state (engine_strategy.go). Written only in the
	// non-proactive modes; folded into the digest only there too.
	solicitAt   []int64 // reactive: last solicit heard (-1 never)
	solSeenFrom []int32 // reactive: last relayed solicit flood (origin)
	solSeenBorn []int64 // reactive: last relayed solicit flood (born)
	replyArmed  []bool  // reactive: a triggered hello reply is pending
	intSeenFrom []int32 // icn: last seen interest flood (origin)
	intSeenBorn []int64 // icn: last seen interest flood (born)
	csAt        []int64 // icn: content-store fill instant (-1 empty)
	csHops      []uint16
	pitLen      []uint8 // icn: live crumb count (0 = no entry)
	pitExpiry   []int64
	pitDown     []int32 // flat [node][pitCap] crumb slabs
	pitOrigin   []int32
	pitBorn     []int64

	// Link slabs (sharded modes): per-node sorted neighbor ids with
	// precomputed symmetric link loss. nbrOff has n+1 entries.
	nbrOff  []int32
	nbrID   []int32
	nbrLoss []float64
}

const txHistLen = 4

func (ns *nodeState) alloc(n, qcap int) {
	ns.x = make([]float64, n)
	ns.y = make([]float64, n)
	ns.cell = make([]int32, n)
	ns.isSink = make([]bool, n)
	ns.hop = make([]uint16, n)
	ns.next = make([]int32, n)
	ns.routeAt = make([]int64, n)
	ns.txEnd = make([]int64, n)
	ns.txHist = make([]int64, n*txHistLen*2)
	ns.txHistPos = make([]uint8, n)
	ns.qBuf = make([]int32, n*qcap)
	ns.qHead = make([]uint8, n)
	ns.qLen = make([]uint8, n)
	ns.qCap = qcap
	ns.dutyBudget = make([]int64, n)
	ns.dutyAt = make([]int64, n)
	ns.backoff = make([]uint8, n)
	ns.pumpArmed = make([]bool, n)
	ns.txSeq = make([]uint32, n)
	ns.helloSeq = make([]uint32, n)
	ns.dataSeq = make([]uint32, n)
	ns.cHelloTx = make([]uint32, n)
	ns.cDataTx = make([]uint32, n)
	ns.cFwd = make([]uint32, n)
	ns.cDelivered = make([]uint32, n)
	ns.solicitAt = make([]int64, n)
	ns.solSeenFrom = make([]int32, n)
	ns.solSeenBorn = make([]int64, n)
	ns.replyArmed = make([]bool, n)
	ns.intSeenFrom = make([]int32, n)
	ns.intSeenBorn = make([]int64, n)
	ns.csAt = make([]int64, n)
	ns.csHops = make([]uint16, n)
	ns.pitLen = make([]uint8, n)
	ns.pitExpiry = make([]int64, n)
	ns.pitDown = make([]int32, n*pitCap)
	ns.pitOrigin = make([]int32, n*pitCap)
	ns.pitBorn = make([]int64, n*pitCap)
	for i := 0; i < n; i++ {
		ns.hop[i] = noRoute
		ns.next[i] = -1
		ns.routeAt[i] = -1
		ns.solicitAt[i] = -1
		ns.solSeenFrom[i] = -1
		ns.intSeenFrom[i] = -1
		ns.csAt[i] = -1
	}
}

// recordTx pushes an own-transmission interval into the half-duplex ring.
func (ns *nodeState) recordTx(i int32, startNs, endNs int64) {
	p := int32(ns.txHistPos[i])
	base := (i*txHistLen + p) * 2
	ns.txHist[base] = startNs
	ns.txHist[base+1] = endNs
	ns.txHistPos[i] = uint8((p + 1) % txHistLen)
}

// transmittedDuring reports whether node i had an own transmission
// overlapping [startNs, endNs).
func (ns *nodeState) transmittedDuring(i int32, startNs, endNs int64) bool {
	base := i * txHistLen * 2
	for k := int32(0); k < txHistLen; k++ {
		s, e := ns.txHist[base+2*k], ns.txHist[base+2*k+1]
		if e > startNs && s < endNs {
			return true
		}
	}
	return false
}

// splitmix64 is the avalanche finalizer behind every deterministic draw:
// order-independent (keyed purely on identity and counters, never on
// event ordering), so serial and sharded runs sample identical values.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash purposes, mixed into the key so streams never collide. The
// strategy modes draw from purposes 6+ only, leaving every proactive
// stream untouched.
const (
	purposeHelloJit   uint64 = 1
	purposeDataJit    uint64 = 2
	purposeBackoff    uint64 = 3
	purposeShadow     uint64 = 4
	purposeErasure    uint64 = 5
	purposeRelayJit   uint64 = 6 // reactive/icn: flood-relay hold-off
	purposeSolicitJit uint64 = 7 // reactive: triggered hello-reply hold-off
)

func (s *Sim) hash(purpose uint64, a, b, c uint64) uint64 {
	h := splitmix64(uint64(s.r.Seed) ^ purpose*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ a)
	h = splitmix64(h ^ b)
	return splitmix64(h ^ c)
}

// hash01 maps a hash to a uniform in [0,1).
func hash01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// jitter returns a deterministic offset in [-period/8, period/8).
func (s *Sim) jitter(purpose uint64, node int32, seq uint32, periodNs int64) int64 {
	span := periodNs / 4
	if span <= 0 {
		return 0
	}
	h := s.hash(purpose, uint64(node), uint64(seq), 0)
	return int64(h%uint64(span)) - span/2
}

// linkLoss is the single path-loss formula both execution modes share:
// symmetric (unordered pair key), truncated-shadowed log-distance. The
// precomputed link slabs memoize exactly this function, so serial
// recomputation is bit-identical.
func (s *Sim) linkLoss(a, b int32) float64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	dx := s.nodes.x[a] - s.nodes.x[b]
	dy := s.nodes.y[a] - s.nodes.y[b]
	loss := s.r.model.PathLossDB(math.Hypot(dx, dy), s.r.params.FrequencyHz)
	if sigma := s.r.ShadowSigmaDB; sigma > 0 {
		u1 := hash01(s.hash(purposeShadow, uint64(lo), uint64(hi), 1))
		u2 := hash01(s.hash(purposeShadow, uint64(lo), uint64(hi), 2))
		g := math.Sqrt(-2*math.Log(1-u1)) * math.Cos(2*math.Pi*u2)
		// Truncate at +-2 sigma so maxLossRel's margin is a hard bound,
		// not a tail probability (documented model deviation).
		if g > 2 {
			g = 2
		} else if g < -2 {
			g = -2
		}
		loss += g * sigma
	}
	return loss
}

// buildLinks precomputes each node's radio-relevant neighbor list (ids
// ascending, with link loss) by scanning only the 3x3 cell neighborhood —
// the O(n*degree) substitute for airmedium's O(n^2) loss matrix.
func (s *Sim) buildLinks() {
	n := s.r.Nodes
	ns := &s.nodes
	ns.nbrOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		ns.nbrOff[i] = int32(len(ns.nbrID))
		s.grid.ForNeighbors(int(ns.cell[i]), func(c int) {
			for _, j := range s.cellStations[c] {
				if j == int32(i) {
					continue
				}
				if loss := s.linkLoss(int32(i), j); loss <= s.r.maxLossRel {
					ns.nbrID = append(ns.nbrID, j)
					ns.nbrLoss = append(ns.nbrLoss, loss)
				}
			}
		})
		// Cells are visited row-major, so ids within the segment are not
		// globally sorted; sort the segment for binary-search lookups.
		seg := ns.nbrID[ns.nbrOff[i]:]
		segLoss := ns.nbrLoss[ns.nbrOff[i]:]
		insertionSortPairs(seg, segLoss)
	}
	ns.nbrOff[n] = int32(len(ns.nbrID))
}

// insertionSortPairs sorts ids ascending, carrying losses along. Segments
// are small (mean = radio degree), where insertion sort beats sort.Slice
// and allocates nothing.
func insertionSortPairs(ids []int32, loss []float64) {
	for i := 1; i < len(ids); i++ {
		id, l := ids[i], loss[i]
		j := i - 1
		for j >= 0 && ids[j] > id {
			ids[j+1], loss[j+1] = ids[j], loss[j]
			j--
		}
		ids[j+1], loss[j+1] = id, l
	}
}

// lossBetween resolves the link budget between a node and a peer: slab
// lookup in sharded mode, direct recomputation in the serial full scan.
// ok=false means the pair is beyond radio relevance.
func (s *Sim) lossBetween(node, peer int32) (float64, bool) {
	if s.fullScan {
		loss := s.linkLoss(node, peer)
		return loss, loss <= s.r.maxLossRel
	}
	lo, hi := s.nodes.nbrOff[node], s.nodes.nbrOff[node+1]
	ids := s.nodes.nbrID[lo:hi]
	// Manual binary search: this is the hottest lookup in the simulator.
	i, j := 0, len(ids)
	for i < j {
		m := (i + j) / 2
		if ids[m] < peer {
			i = m + 1
		} else {
			j = m
		}
	}
	if i < len(ids) && ids[i] == peer {
		return s.nodes.nbrLoss[int(lo)+i], true
	}
	return 0, false
}

// effHop returns node i's effective hop count: sinks are always 0, stale
// or poisoned routes read as noRoute.
func (s *Sim) effHop(i int32, nowNs int64) uint16 {
	if s.nodes.isSink[i] {
		return 0
	}
	at := s.nodes.routeAt[i]
	if at < 0 || nowNs-at > s.r.routeTTLNs {
		return noRoute
	}
	return s.nodes.hop[i]
}

// accrueDuty advances node i's 1% duty token bucket to nowNs.
func (s *Sim) accrueDuty(i int32, nowNs int64) {
	ns := &s.nodes
	elapsed := nowNs - ns.dutyAt[i]
	if elapsed > 0 {
		ns.dutyBudget[i] += elapsed / 100
		if cap := 10 * s.r.maxAirNs; ns.dutyBudget[i] > cap {
			ns.dutyBudget[i] = cap
		}
		ns.dutyAt[i] = nowNs
	}
}

// enqueue appends a reading to node i's bounded FIFO, dropping the oldest
// on overflow. pktIdx indexes the owning shard's slab.
func (sh *shard) enqueue(i int32, pktIdx int32) {
	ns := &sh.sim.nodes
	if int(ns.qLen[i]) == ns.qCap {
		head := ns.qBuf[int(i)*ns.qCap+int(ns.qHead[i])]
		sh.freePkt(head)
		ns.qHead[i] = uint8((int(ns.qHead[i]) + 1) % ns.qCap)
		ns.qLen[i]--
		sh.stats.dropQueue++
	}
	slot := (int(ns.qHead[i]) + int(ns.qLen[i])) % ns.qCap
	ns.qBuf[int(i)*ns.qCap+slot] = pktIdx
	ns.qLen[i]++
}

// dequeue pops the oldest queued reading; ok=false when empty.
func (sh *shard) dequeue(i int32) (int32, bool) {
	ns := &sh.sim.nodes
	if ns.qLen[i] == 0 {
		return 0, false
	}
	idx := ns.qBuf[int(i)*ns.qCap+int(ns.qHead[i])]
	ns.qHead[i] = uint8((int(ns.qHead[i]) + 1) % ns.qCap)
	ns.qLen[i]--
	return idx, true
}

// scheduleInitialEvents arms every node's first hello and first telemetry
// reading, hash-staggered across their periods, in ascending node order so
// wheel sequence numbers are deterministic.
func (s *Sim) scheduleInitialEvents() {
	for i := 0; i < s.r.Nodes; i++ {
		i := int32(i)
		sh := s.shardOfNode(i)
		helloAt := int64(s.hash(purposeHelloJit, uint64(i), 0, 1) % uint64(s.r.helloNs))
		sh.at(helloAt, func() { sh.helloFire(i) })
		if !s.nodes.isSink[i] {
			dataAt := s.r.dataNs/2 + int64(s.hash(purposeDataJit, uint64(i), 0, 1)%uint64(s.r.dataNs))
			sh.at(dataAt, func() { sh.dataFire(i) })
		}
	}
}

// helloFire beacons node i's hop count and re-arms the next beacon. A busy
// radio, channel, or duty budget skips the beacon (no retry: the next
// period comes soon enough for routing).
func (sh *shard) helloFire(i int32) {
	s := sh.sim
	now := sh.nowNs()
	ns := &s.nodes
	s.accrueDuty(i, now)
	ns.helloSeq[i]++
	if s.r.strat == stratReactive && !ns.isSink[i] &&
		(ns.solicitAt[i] < 0 || now-ns.solicitAt[i] > s.r.solicitTTLNs) {
		// Reactive: an unsolicited non-sink node stays silent.
		sh.stats.helloSkips++
	} else if ns.txEnd[i] > now || ns.dutyBudget[i] < s.r.helloAirNs || sh.channelBusy(i, now) {
		sh.stats.helloSkips++
	} else {
		sh.startTx(i, txRec{
			kind:   kindHello,
			dst:    -1,
			hopSrc: s.effHop(i, now),
		}, s.r.helloAirNs)
		ns.cHelloTx[i]++
	}
	next := s.r.helloNs + s.jitter(purposeHelloJit, i, ns.helloSeq[i], s.r.helloNs)
	sh.at(now+next, func() { sh.helloFire(i) })
}

// dataFire generates one telemetry reading, queues it, and re-arms. In
// ICN mode the same cadence expresses an interest in the well-known
// content instead (the reading flows sink-to-node, not node-to-sink).
func (sh *shard) dataFire(i int32) {
	s := sh.sim
	now := sh.nowNs()
	ns := &s.nodes
	ns.dataSeq[i]++
	sh.stats.offered++
	if s.r.strat == stratICN {
		sh.expressInterest(i, now)
	} else {
		sh.enqueue(i, sh.allocPkt(pkt{origin: i, born: now, hops: 0}))
		sh.pump(i)
	}
	next := s.r.dataNs + s.jitter(purposeDataJit, i, ns.dataSeq[i], s.r.dataNs)
	sh.at(now+next, func() { sh.dataFire(i) })
}

// pump tries to transmit the head of node i's queue, observing the radio,
// route freshness, duty budget, and CSMA. Blocked attempts arm exactly one
// deterministic retry.
func (sh *shard) pump(i int32) {
	s := sh.sim
	ns := &s.nodes
	now := sh.nowNs()
	if ns.txEnd[i] > now || ns.qLen[i] == 0 {
		return // busy radio pumps again from txDone; empty queue has nothing to do
	}
	if s.r.strat != stratICN && s.effHop(i, now) == noRoute {
		// ICN forwards by name, never by route. The other strategies need
		// a sink route; reactive ones additionally shout for one.
		if s.r.strat == stratReactive {
			sh.trySolicit(i, now)
		}
		sh.armPump(i, s.r.noRouteWaitNs)
		return
	}
	if s.r.strat == stratSlotted {
		if wait := s.slotWait(i, now); wait > 0 {
			sh.stats.slotDeferrals++
			sh.armPump(i, wait)
			return
		}
	}
	airNs := s.r.dataAirNs
	if s.r.strat == stratICN && sh.peek(i).kind == kindInterest {
		airNs = s.r.helloAirNs // interests ride the small beacon frame
	}
	s.accrueDuty(i, now)
	if ns.dutyBudget[i] < airNs {
		// Wait exactly until the bucket refills at the 1% rate.
		sh.armPump(i, (airNs-ns.dutyBudget[i])*100)
		return
	}
	if sh.channelBusy(i, now) {
		if ns.backoff[i] < 6 {
			ns.backoff[i]++
		}
		window := uint64(1) << ns.backoff[i]
		slots := 1 + s.hash(purposeBackoff, uint64(i), uint64(ns.txSeq[i]), uint64(ns.backoff[i]))%window
		sh.armPump(i, int64(slots)*s.r.csmaSlotNs)
		return
	}
	idx, ok := sh.dequeue(i)
	if !ok {
		return
	}
	p := sh.pkts[idx]
	sh.freePkt(idx)
	ns.backoff[i] = 0
	kind, dst := kindData, ns.next[i]
	if s.r.strat == stratICN {
		kind, dst = p.kind, p.dst
	}
	sh.startTx(i, txRec{
		kind:   kind,
		dst:    dst,
		origin: p.origin,
		born:   p.born,
		hops:   p.hops,
	}, airNs)
	if kind == kindInterest {
		sh.stats.interestsSent++
	} else if p.origin == i {
		ns.cDataTx[i]++
	} else {
		ns.cFwd[i]++
	}
}

// peek returns the head of node i's queue without dequeuing (qLen > 0).
func (sh *shard) peek(i int32) pkt {
	ns := &sh.sim.nodes
	return sh.pkts[ns.qBuf[int(i)*ns.qCap+int(ns.qHead[i])]]
}

// armPump schedules a single pump retry after d; duplicate arms collapse.
func (sh *shard) armPump(i int32, dNs int64) {
	ns := &sh.sim.nodes
	if ns.pumpArmed[i] {
		return
	}
	ns.pumpArmed[i] = true
	sh.at(sh.nowNs()+dNs, func() {
		ns.pumpArmed[i] = false
		sh.pump(i)
	})
}

// startTx puts a frame on the air: records radio state, spends duty
// budget, emits the txRec to the barrier outbox, and arms txDone.
func (sh *shard) startTx(i int32, tx txRec, airNs int64) {
	s := sh.sim
	ns := &s.nodes
	now := sh.nowNs()
	tx.sender = i
	tx.startNs = now
	tx.endNs = now + airNs
	tx.seq = ns.txSeq[i]
	ns.txSeq[i]++
	ns.txEnd[i] = tx.endNs
	ns.recordTx(i, tx.startNs, tx.endNs)
	ns.dutyBudget[i] -= airNs
	sh.stats.framesSent++
	sh.stats.airtimeNs += airNs
	sh.outbox = append(sh.outbox, tx)
	sh.at(tx.endNs, func() { sh.pump(i) })
}

// onHello applies a received beacon to node r's sink route.
func (sh *shard) onHello(r int32, tx *txRec) {
	s := sh.sim
	ns := &s.nodes
	if ns.isSink[r] {
		return
	}
	now := sh.nowNs()
	if tx.hopSrc == noRoute {
		// A routeless beacon from the current next hop poisons the route.
		if ns.next[r] == tx.sender {
			ns.routeAt[r] = -1
		}
		return
	}
	cand := tx.hopSrc + 1
	if ns.next[r] == tx.sender || cand < s.effHop(r, now) {
		ns.hop[r] = cand
		ns.next[r] = tx.sender
		ns.routeAt[r] = now
		if ns.qLen[r] > 0 {
			sh.pump(r)
		}
	}
}

// onData handles a data frame addressed to node r: terminate at sinks,
// forward otherwise.
func (sh *shard) onData(r int32, tx *txRec) {
	s := sh.sim
	ns := &s.nodes
	now := sh.nowNs()
	if ns.isSink[r] {
		ns.cDelivered[r]++
		sh.stats.delivered++
		sh.stats.latencySumNs += now - tx.born
		sh.deliveries = append(sh.deliveries, deliveryRec{
			atNs: now, sink: r, origin: tx.origin, bornNs: tx.born,
		})
		return
	}
	nh := tx.hops + 1
	if int(nh) > s.r.TTLHops {
		sh.stats.dropTTL++
		return
	}
	sh.enqueue(r, sh.allocPkt(pkt{origin: tx.origin, born: tx.born, hops: nh}))
	sh.pump(r)
}
