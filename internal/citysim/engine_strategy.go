// engine_strategy.go — the non-proactive forwarding strategies of the
// city simulator, mirroring the full-engine strategy API at slab scale:
//
//   - reactive: solicitation-gated beaconing. Nodes with traffic and no
//     route flood a solicit; only solicited (or sink) nodes beacon, and a
//     routed node answers a solicit with a jittered one-shot hello.
//   - icn: named-data pub-sub over one well-known content. Non-sink nodes
//     express interests on the telemetry cadence; sinks produce; every hop
//     caches (TTL-bounded) and aggregates concurrent interests in a
//     fixed-capacity PIT, so a flood round costs O(n) frames no matter
//     how many readers ask.
//   - slotted: the proactive engine plus a TDMA gate — data transmits
//     only inside the slot derived from the node's route depth.
//
// Determinism follows the package contract: handlers run on the owning
// shard's wheel and write only that node's slots, every random draw is a
// purpose-keyed hash (purposes 6+, so the proactive streams are
// untouched), and all cross-node effects ride txRec through the barrier.

package citysim

// pitCap bounds the breadcrumbs one node aggregates per pending
// interest; further readers are counted as aggregated but re-fetch on
// their next cadence.
const pitCap = 4

// --- slotted -----------------------------------------------------------

// slotWait returns how long node i must wait for its TDMA slot (0 = the
// current slot window still fits a data frame). The slot is the route
// depth modulo the superframe size, so each tree ring drains in its own
// phase. Callers guarantee a live route.
func (s *Sim) slotWait(i int32, nowNs int64) int64 {
	slot := int64(s.effHop(i, nowNs)) % int64(s.r.SlottedSlots)
	ws := slot * s.r.slotLenNs
	phase := nowNs % s.r.slotPeriodNs
	if phase >= ws && phase+s.r.dataAirNs <= ws+s.r.slotLenNs {
		return 0
	}
	wait := ws - phase
	if wait <= 0 {
		wait += s.r.slotPeriodNs
	}
	return wait
}

// --- reactive ----------------------------------------------------------

// trySolicit broadcasts a route solicit if the radio, duty budget, and
// channel allow; a blocked attempt simply waits for the caller's pump
// retry. The (origin, born) pair names the flood for dedup.
func (sh *shard) trySolicit(i int32, nowNs int64) {
	s := sh.sim
	ns := &s.nodes
	s.accrueDuty(i, nowNs)
	if ns.txEnd[i] > nowNs || ns.dutyBudget[i] < s.r.helloAirNs || sh.channelBusy(i, nowNs) {
		return
	}
	sh.startTx(i, txRec{kind: kindSolicit, dst: -1, origin: i, born: nowNs}, s.r.helloAirNs)
	sh.stats.solicitsSent++
}

// onSolicit handles a received solicit at node r: licence beacons, answer
// immediately when routed, propagate the flood when not.
func (sh *shard) onSolicit(r int32, tx *txRec) {
	s := sh.sim
	ns := &s.nodes
	if tx.origin == r {
		return // own flood echoed back
	}
	now := sh.nowNs()
	ns.solicitAt[r] = now
	if ns.isSink[r] || s.effHop(r, now) != noRoute {
		// Routed: answer with a one-shot hello after a deterministic
		// jitter so concurrent answerers desynchronize.
		if !ns.replyArmed[r] {
			ns.replyArmed[r] = true
			jit := 1 + int64(s.hash(purposeSolicitJit, uint64(r), uint64(tx.origin), uint64(tx.born))%uint64(s.r.relayJitNs))
			sh.at(now+jit, func() {
				ns.replyArmed[r] = false
				sh.helloOnce(r)
			})
		}
		return
	}
	// Routeless: propagate the flood toward someone who knows, once per
	// flood, TTL-bounded, after a jittered hold-off.
	if ns.solSeenFrom[r] == tx.origin && ns.solSeenBorn[r] == tx.born {
		return
	}
	ns.solSeenFrom[r], ns.solSeenBorn[r] = tx.origin, tx.born
	if int(tx.hops)+1 > s.r.TTLHops {
		sh.stats.dropTTL++
		return
	}
	origin, born, hops := tx.origin, tx.born, tx.hops+1
	jit := 1 + int64(s.hash(purposeRelayJit, uint64(r), uint64(origin), uint64(born))%uint64(s.r.relayJitNs))
	sh.at(now+jit, func() { sh.solicitRelay(r, origin, born, hops) })
}

// solicitRelay re-broadcasts a solicit flood from a still-routeless node.
// No retry on a blocked radio: the originator re-solicits on its own
// cadence.
func (sh *shard) solicitRelay(r, origin int32, born int64, hops uint8) {
	s := sh.sim
	ns := &s.nodes
	now := sh.nowNs()
	if s.effHop(r, now) != noRoute {
		return // learned a route during the hold-off; beacons answer now
	}
	s.accrueDuty(r, now)
	if ns.txEnd[r] > now || ns.dutyBudget[r] < s.r.helloAirNs || sh.channelBusy(r, now) {
		return
	}
	sh.startTx(r, txRec{kind: kindSolicit, dst: -1, origin: origin, born: born, hops: hops}, s.r.helloAirNs)
	sh.stats.solicitsSent++
}

// helloOnce transmits one triggered beacon (no re-arm), with the same
// radio gates as the periodic helloFire.
func (sh *shard) helloOnce(i int32) {
	s := sh.sim
	ns := &s.nodes
	now := sh.nowNs()
	s.accrueDuty(i, now)
	if ns.txEnd[i] > now || ns.dutyBudget[i] < s.r.helloAirNs || sh.channelBusy(i, now) {
		sh.stats.helloSkips++
		return
	}
	sh.startTx(i, txRec{kind: kindHello, dst: -1, hopSrc: s.effHop(i, now)}, s.r.helloAirNs)
	ns.cHelloTx[i]++
}

// --- icn ---------------------------------------------------------------

// csValid reports whether node i's content-store entry is fresh.
func (s *Sim) csValid(i int32, nowNs int64) bool {
	at := s.nodes.csAt[i]
	return at >= 0 && nowNs-at <= s.r.csTTLNs
}

// pitLive reports whether node i has an unexpired pending interest,
// clearing it lazily when stale.
func (s *Sim) pitLive(i int32, nowNs int64) bool {
	ns := &s.nodes
	if ns.pitLen[i] == 0 {
		return false
	}
	if nowNs > ns.pitExpiry[i] {
		ns.pitLen[i] = 0
		return false
	}
	return true
}

// pitAdd appends a breadcrumb (downstream hop, requester, express time)
// to node i's pending interest, deduplicating and bounding at pitCap.
func (s *Sim) pitAdd(i, down, origin int32, born int64) {
	ns := &s.nodes
	base := int(i) * pitCap
	for k := 0; k < int(ns.pitLen[i]); k++ {
		if ns.pitDown[base+k] == down && ns.pitOrigin[base+k] == origin {
			return
		}
	}
	if int(ns.pitLen[i]) == pitCap {
		return // full; the reader re-expresses on its next cadence
	}
	k := base + int(ns.pitLen[i])
	ns.pitDown[k], ns.pitOrigin[k], ns.pitBorn[k] = down, origin, born
	ns.pitLen[i]++
}

// expressInterest is the ICN consumer cadence: a fresh local copy
// delivers immediately, a live PIT aggregates, and otherwise a new
// interest flood starts.
func (sh *shard) expressInterest(i int32, nowNs int64) {
	s := sh.sim
	ns := &s.nodes
	if s.csValid(i, nowNs) {
		// Cache hit at the consumer itself: zero-airtime delivery.
		sh.stats.cacheHits++
		sh.deliverICN(i, i, nowNs, nowNs)
		return
	}
	if s.pitLive(i, nowNs) {
		s.pitAdd(i, i, i, nowNs)
		sh.stats.interestAggregated++
		return
	}
	ns.pitLen[i] = 0
	ns.pitExpiry[i] = nowNs + s.r.pitTTLNs
	s.pitAdd(i, i, i, nowNs)
	sh.enqueue(i, sh.allocPkt(pkt{kind: kindInterest, dst: -1, origin: i, born: nowNs, hops: 0}))
	sh.pump(i)
}

// deliverICN records one satisfied interest at requester r (sink column
// = the satisfied node; origin = the requester, mirroring the telemetry
// log's shape).
func (sh *shard) deliverICN(r, origin int32, bornNs, nowNs int64) {
	sh.sim.nodes.cDelivered[r]++
	sh.stats.delivered++
	sh.stats.latencySumNs += nowNs - bornNs
	sh.deliveries = append(sh.deliveries, deliveryRec{
		atNs: nowNs, sink: r, origin: origin, bornNs: bornNs,
	})
}

// onInterest runs the ICN forwarding plane at node r: dedup, producer or
// cache answer, PIT aggregation, or jittered relay.
func (sh *shard) onInterest(r int32, tx *txRec) {
	s := sh.sim
	ns := &s.nodes
	if tx.origin == r {
		return // own flood echoed back
	}
	if ns.intSeenFrom[r] == tx.origin && ns.intSeenBorn[r] == tx.born {
		return
	}
	ns.intSeenFrom[r], ns.intSeenBorn[r] = tx.origin, tx.born
	now := sh.nowNs()

	if ns.isSink[r] || s.csValid(r, now) {
		// Producer (sinks hold the content) or cache: answer along the
		// breadcrumb. hops counts the distance from the content copy.
		var fromHops uint16
		if !ns.isSink[r] {
			sh.stats.cacheHits++
			fromHops = ns.csHops[r]
		}
		if fromHops > 254 {
			fromHops = 254
		}
		hops := uint8(fromHops)
		sh.enqueue(r, sh.allocPkt(pkt{
			kind: kindNamedData, dst: tx.sender,
			origin: tx.origin, born: tx.born, hops: hops,
		}))
		jit := 1 + int64(s.hash(purposeRelayJit, uint64(r), uint64(tx.origin), uint64(tx.born))%uint64(s.r.relayJitNs))
		sh.at(now+jit, func() { sh.pump(r) })
		return
	}

	if s.pitLive(r, now) {
		s.pitAdd(r, tx.sender, tx.origin, tx.born)
		sh.stats.interestAggregated++
		return
	}
	if int(tx.hops)+1 > s.r.TTLHops {
		sh.stats.dropTTL++
		return
	}
	ns.pitLen[r] = 0
	ns.pitExpiry[r] = now + s.r.pitTTLNs
	s.pitAdd(r, tx.sender, tx.origin, tx.born)
	sh.enqueue(r, sh.allocPkt(pkt{
		kind: kindInterest, dst: -1,
		origin: tx.origin, born: tx.born, hops: tx.hops + 1,
	}))
	jit := 1 + int64(s.hash(purposeRelayJit, uint64(r), uint64(tx.origin), uint64(tx.born))%uint64(s.r.relayJitNs))
	sh.at(now+jit, func() { sh.pump(r) })
}

// onNamedData handles content addressed to node r: cache it, deliver to
// our own breadcrumb, and retrace the others.
func (sh *shard) onNamedData(r int32, tx *txRec) {
	s := sh.sim
	ns := &s.nodes
	now := sh.nowNs()
	ns.csAt[r] = now
	ns.csHops[r] = uint16(tx.hops) + 1

	if !s.pitLive(r, now) {
		return // stray (expired breadcrumbs): the cache fill still counts
	}
	base := int(r) * pitCap
	crumbs := int(ns.pitLen[r])
	ns.pitLen[r] = 0
	for k := 0; k < crumbs; k++ {
		down, origin, born := ns.pitDown[base+k], ns.pitOrigin[base+k], ns.pitBorn[base+k]
		if down == r {
			sh.deliverICN(r, origin, born, now)
			continue
		}
		sh.enqueue(r, sh.allocPkt(pkt{
			kind: kindNamedData, dst: down,
			origin: origin, born: born, hops: tx.hops + 1,
		}))
	}
	sh.pump(r)
}
