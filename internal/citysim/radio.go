// radio.go — reception evaluation and carrier sense. Both execution modes
// share every gate here; the serial full scan simply resolves links by
// recomputation where the sharded mode uses slab lookups and cell pruning.
//
// Cross-mode exactness relies on the radio-relevance bound: a node outside
// the sender's 3x3 cell neighborhood is farther than one cell side, so its
// base path loss exceeds maxLossRel and even a -2 sigma shadowing draw
// leaves the link above every threshold used below (delivery, carrier
// sense, the interferer floor). The sharded mode may therefore skip such
// nodes in bulk and the serial mode reject them individually — same
// outcome, same loss bucket.

package citysim

// evaluateTx evaluates one transmission at every candidate receiver this
// shard owns. Fired at tx.endNs + W, when every transmission that can
// overlap tx has crossed a barrier — the interferer set is exact.
func (sh *shard) evaluateTx(tx txRec) {
	s := sh.sim
	if s.fullScan {
		for r := int32(0); r < int32(s.r.Nodes); r++ {
			if r != tx.sender {
				sh.evalAt(r, &tx)
			}
		}
		return
	}
	scell := s.nodes.cell[tx.sender]
	if s.shardOfCell(scell) == sh.id {
		// Bulk-account everything outside the 3x3 neighborhood (which
		// holds the sender itself) as below sensitivity, exactly once per
		// transmission (by the cell owner).
		sh.stats.lostBelowSens += uint64(s.r.Nodes) - uint64(s.pop3x3[scell])
	}
	s.grid.ForNeighbors(int(scell), func(c int) {
		if s.shardOfCell(int32(c)) != sh.id {
			return
		}
		for _, r := range s.cellStations[c] {
			if r != tx.sender {
				sh.evalAt(r, &tx)
			}
		}
	})
}

// evalAt decides one (transmission, receiver) outcome. Gate order is part
// of the determinism contract: sensitivity first (so bulk-skipped and
// individually-rejected far nodes share a bucket), then half-duplex,
// interference, and the erasure channel.
func (sh *shard) evalAt(r int32, tx *txRec) {
	s := sh.sim
	loss, ok := s.lossBetween(r, tx.sender)
	if !ok || loss > s.r.maxLossDel {
		sh.stats.lostBelowSens++
		return
	}
	if s.nodes.transmittedDuring(r, tx.startNs, tx.endNs) {
		sh.stats.lostHalfDuplex++
		return
	}
	if !sh.clearOfInterference(r, tx, s.r.eirpDBm-loss) {
		sh.stats.lostCollision++
		return
	}
	if rate := s.r.ExtraFrameLossRate; rate > 0 &&
		hash01(s.hash(purposeErasure, uint64(tx.sender), uint64(tx.seq), uint64(r))) < rate {
		sh.stats.lostRandom++
		return
	}
	sh.stats.framesDelivered++
	switch tx.kind {
	case kindHello:
		sh.onHello(r, tx)
	case kindData:
		if tx.dst == r {
			sh.onData(r, tx)
		}
	case kindSolicit:
		sh.onSolicit(r, tx)
	case kindInterest:
		sh.onInterest(r, tx)
	case kindNamedData:
		if tx.dst == r {
			sh.onNamedData(r, tx)
		}
	}
}

// clearOfInterference reports whether the frame survives every concurrent
// transmission at receiver r under the capture model. Interferers weaker
// than 10 dB below the noise floor are ignored in both modes (the uniform
// relevance floor that makes cell pruning exact).
func (sh *shard) clearOfInterference(r int32, tx *txRec, rssiDBm float64) bool {
	s := sh.sim
	survives := func(rec *airRec) bool {
		if rec.sender == tx.sender || rec.sender == r {
			return true // own frame; own transmissions are half-duplex's job
		}
		if rec.endNs <= tx.startNs || rec.startNs >= tx.endNs {
			return true // no overlap
		}
		il, ok := s.lossBetween(r, rec.sender)
		if !ok {
			return true
		}
		irssi := s.r.eirpDBm - il
		if irssi < s.r.noiseDBm-10 {
			return true
		}
		return rssiDBm-irssi >= s.r.captureThDB
	}
	if s.fullScan {
		for i := range sh.flightAll {
			if !survives(&sh.flightAll[i]) {
				return false
			}
		}
		return true
	}
	clear := true
	s.grid.ForNeighbors(int(s.nodes.cell[r]), func(c int) {
		if !clear {
			return
		}
		recs := sh.cellTx[c]
		for i := range recs {
			if !survives(&recs[i]) {
				clear = false
				return
			}
		}
	})
	return clear
}

// channelBusy is the CSMA listen: node i senses energy from any
// transmission within delivery range that started before the current
// window and is still on the air. Window quantization (startNs <
// winStartNs) is applied in both modes so carrier sense never depends on
// same-window cross-shard traffic that hasn't crossed a barrier yet.
func (sh *shard) channelBusy(i int32, nowNs int64) bool {
	s := sh.sim
	busy := false
	sense := func(rec *airRec) bool {
		if rec.sender == i || rec.startNs >= sh.winStartNs || rec.endNs <= nowNs {
			return false
		}
		loss, ok := s.lossBetween(i, rec.sender)
		return ok && loss <= s.r.maxLossDel
	}
	if s.fullScan {
		for k := range sh.flightAll {
			if sense(&sh.flightAll[k]) {
				return true
			}
		}
		return false
	}
	s.grid.ForNeighbors(int(s.nodes.cell[i]), func(c int) {
		if busy {
			return
		}
		recs := sh.cellTx[c]
		for k := range recs {
			if sense(&recs[k]) {
				busy = true
				return
			}
		}
	})
	return busy
}
