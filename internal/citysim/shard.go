// shard.go — the parallel execution machinery: per-shard event wheels,
// the two-phase lockstep window loop, the barrier merge, and the cell
// tx-index each shard keeps for its stripe plus a one-column halo.

package citysim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/simtime"
)

// Frame kinds carried in txRec.kind. Hello and data are the proactive
// pair; solicit (reactive), interest and named-data (icn) exist only in
// the non-default strategy modes.
const (
	kindHello uint8 = iota
	kindData
	kindSolicit
	kindInterest
	kindNamedData
)

// txRec is one transmission crossing the barrier: everything any shard
// needs to evaluate reception without reading the sender's mutable state.
type txRec struct {
	startNs int64
	endNs   int64
	born    int64 // data: origin generation instant
	sender  int32
	dst     int32 // data: unicast next hop; hello: -1 (broadcast)
	origin  int32 // data: originating node
	seq     uint32
	hopSrc  uint16 // hello: sender's effective hop at tx time
	kind    uint8
	hops    uint8 // data: hops taken so far
}

// airRec is the on-air footprint of a transmission kept in cell tx-indexes
// for interference and carrier-sense scans.
type airRec struct {
	startNs int64
	endNs   int64
	sender  int32
}

// deliveryRec is one sink delivery, digest material.
type deliveryRec struct {
	atNs   int64
	bornNs int64
	sink   int32
	origin int32
}

// shardStats are per-shard outcome counters, merged order-independently
// (sums) into Stats.
type shardStats struct {
	framesSent      uint64
	framesDelivered uint64
	lostBelowSens   uint64
	lostCollision   uint64
	lostHalfDuplex  uint64
	lostRandom      uint64
	helloSkips      uint64
	airtimeNs       int64
	offered         uint64
	delivered       uint64
	dropQueue       uint64
	dropTTL         uint64
	latencySumNs    int64

	// Strategy-mode counters (zero under proactive).
	solicitsSent       uint64
	interestsSent      uint64
	interestAggregated uint64
	cacheHits          uint64
	slotDeferrals      uint64
}

// Worker command phases.
const (
	phaseRun uint8 = iota
	phaseIntegrate
)

type shardCmd struct {
	phase      uint8
	winStartNs int64
	winEndNs   int64
}

// shard owns a contiguous stripe of grid columns [c0, c1]: the nodes in
// those columns, their event wheel, and a cell tx-index covering the
// stripe plus a one-column halo so border evaluations see foreign traffic.
type shard struct {
	sim    *Sim
	id     int32
	c0, c1 int
	wheel  *simtime.Scheduler

	// outbox collects this shard's transmissions during phase A; drained
	// and merged by the barrier.
	outbox []txRec
	// cellTx holds in-flight airRecs per cell, populated only for cells
	// with columns in [c0-1, c1+1]. Read-only during phases, mutated only
	// at integration in merged order — the determinism invariant.
	cellTx [][]airRec
	// flightAll is the serial reference's single flat list (fullScan).
	flightAll []airRec

	// pkts is the queued-packet slab with a freelist.
	pkts     []pkt
	freePkts []int32

	deliveries []deliveryRec
	stats      shardStats

	winStartNs int64 // current window start: the carrier-sense quantum
	integrated uint64

	cmds chan shardCmd
}

func newShard(s *Sim, id int32) *shard {
	sh := &shard{
		sim:   s,
		id:    id,
		c0:    -1,
		wheel: simtime.NewScheduler(time.Unix(0, 0).UTC()),
	}
	for col, owner := range s.shardOfCol {
		if owner == id {
			if sh.c0 < 0 {
				sh.c0 = col
			}
			sh.c1 = col
		}
	}
	if !s.fullScan {
		sh.cellTx = make([][]airRec, s.grid.NumCells())
	}
	return sh
}

// nowNs returns the shard wheel's clock.
func (sh *shard) nowNs() int64 { return sh.wheel.Now().UnixNano() }

// at schedules fn on the shard wheel. Scheduling in the past is a
// programming bug (the window proofs exclude it), so it panics.
func (sh *shard) at(ns int64, fn func()) {
	if _, err := sh.wheel.At(time.Unix(0, ns).UTC(), fn); err != nil {
		panic(fmt.Sprintf("citysim: shard %d: %v", sh.id, err))
	}
}

// allocPkt stores a packet in the slab and returns its index.
func (sh *shard) allocPkt(p pkt) int32 {
	if n := len(sh.freePkts); n > 0 {
		idx := sh.freePkts[n-1]
		sh.freePkts = sh.freePkts[:n-1]
		sh.pkts[idx] = p
		return idx
	}
	sh.pkts = append(sh.pkts, p)
	return int32(len(sh.pkts) - 1)
}

func (sh *shard) freePkt(idx int32) { sh.freePkts = append(sh.freePkts, idx) }

// ownsCol reports whether the shard keeps tx-index state for col (stripe
// plus halo).
func (sh *shard) indexesCol(col int) bool { return col >= sh.c0-1 && col <= sh.c1+1 }

// evaluatesAround reports whether any cell of the 3x3 neighborhood around
// scol belongs to the stripe — i.e. this shard owns receivers of the tx.
func (sh *shard) evaluatesAround(scol int) bool { return scol >= sh.c0-1 && scol <= sh.c1+1 }

// runWindows drives the lockstep two-phase window loop until the virtual
// clock passes endNs (rounded up to whole windows) or no events remain.
func (s *Sim) runWindows(endNs int64) {
	nsh := len(s.shards)
	var done chan struct{}
	if nsh > 1 {
		done = make(chan struct{}, nsh)
		for _, sh := range s.shards {
			sh.cmds = make(chan shardCmd, 1)
			go sh.work(done)
		}
		defer func() {
			for _, sh := range s.shards {
				close(sh.cmds)
			}
		}()
	}
	winNs := s.r.winNs
	winStart := int64(0)
	for winStart < endNs {
		winEnd := winStart + winNs

		// Phase A: every shard runs its wheel through [winStart, winEnd).
		if nsh == 1 {
			sh := s.shards[0]
			sh.winStartNs = winStart
			sh.wheel.RunBefore(time.Unix(0, winEnd).UTC())
		} else {
			for _, sh := range s.shards {
				sh.cmds <- shardCmd{phase: phaseRun, winStartNs: winStart, winEndNs: winEnd}
			}
			for i := 0; i < nsh; i++ {
				<-done
			}
		}

		// Barrier: merge outboxes into one globally sorted list. The key
		// (startNs, sender) is unique — a sender's transmissions never
		// overlap — so the order is total and mode-independent.
		merged := s.winTxs[:0]
		for _, sh := range s.shards {
			merged = append(merged, sh.outbox...)
			sh.outbox = sh.outbox[:0]
		}
		sort.Slice(merged, func(i, j int) bool {
			if merged[i].startNs != merged[j].startNs {
				return merged[i].startNs < merged[j].startNs
			}
			return merged[i].sender < merged[j].sender
		})
		s.winTxs = merged
		s.stats.Windows++

		// Phase B: shards integrate the merged list into their tx-indexes
		// and schedule reception evaluations at endNs+W. Empty windows
		// skip the phase (nothing to integrate; pruning just waits).
		if len(merged) > 0 {
			if nsh == 1 {
				s.shards[0].integrate(winEnd)
			} else {
				for _, sh := range s.shards {
					sh.cmds <- shardCmd{phase: phaseIntegrate, winEndNs: winEnd}
				}
				for i := 0; i < nsh; i++ {
					<-done
				}
			}
			winStart = winEnd
			continue
		}

		// Empty window: fast-forward to the window holding the globally
		// earliest pending event. Both inputs to this decision (merged
		// emptiness, the global minimum next-event time) are
		// mode-independent, so the window sequence is too.
		var minNext int64
		any := false
		for _, sh := range s.shards {
			if at, ok := sh.wheel.NextAt(); ok {
				if ns := at.UnixNano(); !any || ns < minNext {
					minNext, any = ns, true
				}
			}
		}
		if !any {
			break
		}
		if minNext >= winEnd+winNs {
			winStart = minNext / winNs * winNs
			s.stats.FastForwards++
		} else {
			winStart = winEnd
		}
	}
}

// work is the persistent shard goroutine: phases arrive over cmds, each
// completion is acknowledged on done. All cross-goroutine data handoff
// (outboxes, winTxs, wheel state) is ordered by these channel operations.
func (sh *shard) work(done chan<- struct{}) {
	for cmd := range sh.cmds {
		switch cmd.phase {
		case phaseRun:
			sh.winStartNs = cmd.winStartNs
			sh.wheel.RunBefore(time.Unix(0, cmd.winEndNs).UTC())
		case phaseIntegrate:
			sh.integrate(cmd.winEndNs)
		}
		done <- struct{}{}
	}
}

// integrate (phase B) walks the merged window transmissions in global
// order, records radio-relevant ones in the shard's cell tx-index, and
// schedules a reception evaluation at endNs+W for every transmission whose
// 3x3 neighborhood intersects the stripe. Scheduling in merged order keeps
// same-instant evaluation order identical across execution modes.
func (sh *shard) integrate(winEndNs int64) {
	s := sh.sim
	winNs := s.r.winNs
	for idx := range s.winTxs {
		tx := s.winTxs[idx] // copy: winTxs is reused next window
		scell := s.nodes.cell[tx.sender]
		if s.fullScan {
			sh.flightAll = append(sh.flightAll, airRec{tx.startNs, tx.endNs, tx.sender})
			sh.at(tx.endNs+winNs, func() { sh.evaluateTx(tx) })
			continue
		}
		scol, _ := s.grid.ColRow(int(scell))
		if sh.indexesCol(scol) {
			sh.cellTx[scell] = append(sh.cellTx[scell], airRec{tx.startNs, tx.endNs, tx.sender})
		}
		if sh.evaluatesAround(scol) {
			sh.at(tx.endNs+winNs, func() { sh.evaluateTx(tx) })
		}
	}
	sh.integrated++
	if sh.integrated%16 == 0 {
		sh.prune(winEndNs)
	}
}

// prune drops flight records that can no longer overlap any frame still
// awaiting evaluation: everything ending more than maxAir+2W before the
// current window edge.
func (sh *shard) prune(winEndNs int64) {
	keepAfter := winEndNs - sh.sim.r.maxAirNs - 2*sh.sim.r.winNs
	compact := func(recs []airRec) []airRec {
		kept := recs[:0]
		for _, rec := range recs {
			if rec.endNs > keepAfter {
				kept = append(kept, rec)
			}
		}
		return kept
	}
	if sh.sim.fullScan {
		sh.flightAll = compact(sh.flightAll)
		return
	}
	for c := range sh.cellTx {
		if len(sh.cellTx[c]) > 0 {
			sh.cellTx[c] = compact(sh.cellTx[c])
		}
	}
}
