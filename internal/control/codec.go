// Package control is the mesh's self-healing control plane: a versioned
// desired-state document (internal/control.State) reconciled onto live
// nodes by a Controller that diffs acknowledged node state against the
// document, issues typed in-band commands over the gateway downlink
// channel, and runs recovery playbooks off the health monitor's
// violation feed (blackhole → targeted HELLO purge, silent node →
// scheduled reboot, replay anomaly → network rekey).
//
// This file is the wire codec. Every command — including the key
// rotation that PR 5 shipped as an ad-hoc magic payload — rides one
// framed format with a version byte for forward compatibility:
//
//	magic(2) | ver(1) | op(1) | seq(4) | epoch(4) | body...
//
// Commands travel as ordinary application payloads (sealed like any
// other frame on a secured mesh); core intercepts them on delivery, so
// they never leak to the application. The node answers every command
// with a Report carrying the same seq plus a snapshot of its observed
// configuration — the feedback the controller's convergence detection
// keys on.
package control

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/meshsec"
	"repro/internal/packet"
)

// Op identifies a command type.
type Op uint8

// The typed command set.
const (
	// OpSetConfig reconciles the node's runtime configuration: HELLO
	// period, duty-cycle class, radio SF profile, sleep schedule. Zero
	// fields mean "leave unchanged".
	OpSetConfig Op = 1
	// OpTriggerHello forces an immediate HELLO beacon, optionally first
	// purging routes (withdraw everything via Via, or the current next
	// hop toward Dst) — the blackhole playbook.
	OpTriggerHello Op = 2
	// OpReboot asks the host to power-cycle the node after Delay — the
	// silent-node playbook. The engine cannot reboot itself; a host that
	// cannot either reports StatusUnsupported.
	OpReboot Op = 3
	// OpRekey drives the loss-free three-phase key rotation — the
	// replay playbook, promoted from PR 5's ad-hoc meshsec rekey
	// payload. With Stage set the node only stages the key for
	// acceptance (it keeps sealing under the old key); bare, it rotates
	// the seal key (the old key stays live for Open); with Commit set it
	// retires the old key, the moment replayed old-key traffic stops
	// authenticating. The controller runs each phase as a full
	// farthest-first wave before starting the next, so no frame in
	// either direction ever fails authentication mid-rollout.
	OpRekey Op = 4
)

func (o Op) String() string {
	switch o {
	case OpSetConfig:
		return "set_config"
	case OpTriggerHello:
		return "trigger_hello"
	case OpReboot:
		return "reboot"
	case OpRekey:
		return "rekey"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// CodecVersion is the wire format version this build speaks. Receivers
// ignore frames with a newer version instead of misapplying them; the
// controller counts the resulting retry exhaustion as a stalled node,
// which is the honest outcome for a fleet mid-upgrade.
const CodecVersion = 1

// Command and report magics: two bytes that cannot begin a sensible
// application payload, distinct per direction.
var (
	cmdMagic = [2]byte{0xC7, 'C'}
	repMagic = [2]byte{0xC7, 'R'}
)

const cmdHeaderLen = 2 + 1 + 1 + 4 + 4 // magic ver op seq epoch

// Command is one typed control-plane instruction.
type Command struct {
	Op Op
	// Seq matches a command to its report; the controller keeps it
	// stable across retries so a node can ack idempotently.
	Seq uint32
	// Epoch is the desired-state document version this command realizes
	// (OpSetConfig); nodes re-ack an epoch they already applied without
	// re-applying it.
	Epoch uint32

	// OpSetConfig fields; zero = leave unchanged.
	HelloPeriod time.Duration
	DutyCycle   float64
	SF          int
	Awake       time.Duration
	Sleep       time.Duration

	// OpTriggerHello fields; zero = no purge, just beacon.
	Dst packet.Address
	Via packet.Address

	// OpReboot field; zero lets the host pick its default.
	Delay time.Duration

	// OpRekey fields: Stage and Commit select rollout phases one and
	// three; bare (neither set) is phase two, the seal-key rotation.
	Stage    bool
	Commit   bool
	KeyEpoch uint32
	Key      meshsec.Key
}

// MarshalCommand encodes c for the air.
func MarshalCommand(c Command) []byte {
	b := make([]byte, cmdHeaderLen, cmdHeaderLen+21)
	copy(b, cmdMagic[:])
	b[2] = CodecVersion
	b[3] = byte(c.Op)
	binary.BigEndian.PutUint32(b[4:], c.Seq)
	binary.BigEndian.PutUint32(b[8:], c.Epoch)
	switch c.Op {
	case OpSetConfig:
		var body [11]byte
		binary.BigEndian.PutUint32(body[0:], clampU32(c.HelloPeriod.Milliseconds()))
		binary.BigEndian.PutUint16(body[4:], dutyToWire(c.DutyCycle))
		body[6] = byte(c.SF)
		binary.BigEndian.PutUint16(body[7:], clampU16(int64(c.Awake/time.Second)))
		binary.BigEndian.PutUint16(body[9:], clampU16(int64(c.Sleep/time.Second)))
		b = append(b, body[:]...)
	case OpTriggerHello:
		var body [4]byte
		binary.BigEndian.PutUint16(body[0:], uint16(c.Dst))
		binary.BigEndian.PutUint16(body[2:], uint16(c.Via))
		b = append(b, body[:]...)
	case OpReboot:
		var body [2]byte
		binary.BigEndian.PutUint16(body[0:], clampU16(int64(c.Delay/time.Second)))
		b = append(b, body[:]...)
	case OpRekey:
		var body [21]byte
		if c.Commit {
			body[0] |= 1
		}
		if c.Stage {
			body[0] |= 2
		}
		binary.BigEndian.PutUint32(body[1:], c.KeyEpoch)
		copy(body[5:], c.Key[:])
		b = append(b, body[:]...)
	}
	return b
}

// cmdBodyLen maps each op to its exact body length.
func cmdBodyLen(op Op) (int, bool) {
	switch op {
	case OpSetConfig:
		return 11, true
	case OpTriggerHello:
		return 4, true
	case OpReboot:
		return 2, true
	case OpRekey:
		return 21, true
	}
	return 0, false
}

// ParseCommand reports whether b is a control command and decodes it.
// Unknown versions, unknown ops, and length mismatches all return false:
// the payload then falls through to the application like any other.
func ParseCommand(b []byte) (Command, bool) {
	var c Command
	if len(b) < cmdHeaderLen || b[0] != cmdMagic[0] || b[1] != cmdMagic[1] {
		return c, false
	}
	if b[2] != CodecVersion {
		return c, false
	}
	c.Op = Op(b[3])
	want, ok := cmdBodyLen(c.Op)
	if !ok || len(b) != cmdHeaderLen+want {
		return Command{}, false
	}
	c.Seq = binary.BigEndian.Uint32(b[4:])
	c.Epoch = binary.BigEndian.Uint32(b[8:])
	body := b[cmdHeaderLen:]
	switch c.Op {
	case OpSetConfig:
		c.HelloPeriod = time.Duration(binary.BigEndian.Uint32(body[0:])) * time.Millisecond
		c.DutyCycle = dutyFromWire(binary.BigEndian.Uint16(body[4:]))
		c.SF = int(body[6])
		c.Awake = time.Duration(binary.BigEndian.Uint16(body[7:])) * time.Second
		c.Sleep = time.Duration(binary.BigEndian.Uint16(body[9:])) * time.Second
	case OpTriggerHello:
		c.Dst = packet.Address(binary.BigEndian.Uint16(body[0:]))
		c.Via = packet.Address(binary.BigEndian.Uint16(body[2:]))
	case OpReboot:
		c.Delay = time.Duration(binary.BigEndian.Uint16(body[0:])) * time.Second
	case OpRekey:
		c.Commit = body[0]&1 != 0
		c.Stage = body[0]&2 != 0
		c.KeyEpoch = binary.BigEndian.Uint32(body[1:])
		copy(c.Key[:], body[5:])
	}
	return c, true
}

// Status is a report's outcome classification.
type Status uint8

// Report outcomes.
const (
	// StatusOK: the command was applied (or had already been applied —
	// idempotent re-ack).
	StatusOK Status = 0
	// StatusUnsupported: the node (or its host) cannot perform the
	// command. Terminal — retrying will not help, so the controller
	// stops trying.
	StatusUnsupported Status = 1
	// StatusError: the command was rejected (bad parameter, key
	// mismatch). The controller re-plans from the node's reported state.
	StatusError Status = 2
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusUnsupported:
		return "unsupported"
	case StatusError:
		return "error"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

const reportLen = 2 + 1 + 1 + 4 + 1 + 4 + 4 + 4 + 2 + 1 // magic ver op seq status epoch keyepoch hello duty sf

// Report is a node's answer to one command: the outcome plus a snapshot
// of its observed configuration, which is how node state reaches the
// controller's diff without a separate telemetry format.
type Report struct {
	Op     Op
	Seq    uint32
	Status Status

	// Observed state after the command.
	Epoch       uint32
	KeyEpoch    uint32
	HelloPeriod time.Duration
	DutyCycle   float64
	SF          int
}

// MarshalReport encodes r for the air.
func MarshalReport(r Report) []byte {
	b := make([]byte, reportLen)
	copy(b, repMagic[:])
	b[2] = CodecVersion
	b[3] = byte(r.Op)
	binary.BigEndian.PutUint32(b[4:], r.Seq)
	b[8] = byte(r.Status)
	binary.BigEndian.PutUint32(b[9:], r.Epoch)
	binary.BigEndian.PutUint32(b[13:], r.KeyEpoch)
	binary.BigEndian.PutUint32(b[17:], clampU32(r.HelloPeriod.Milliseconds()))
	binary.BigEndian.PutUint16(b[21:], dutyToWire(r.DutyCycle))
	b[23] = byte(r.SF)
	return b
}

// ParseReport reports whether b is a control report and decodes it.
func ParseReport(b []byte) (Report, bool) {
	var r Report
	if len(b) != reportLen || b[0] != repMagic[0] || b[1] != repMagic[1] || b[2] != CodecVersion {
		return r, false
	}
	r.Op = Op(b[3])
	r.Seq = binary.BigEndian.Uint32(b[4:])
	r.Status = Status(b[8])
	r.Epoch = binary.BigEndian.Uint32(b[9:])
	r.KeyEpoch = binary.BigEndian.Uint32(b[13:])
	r.HelloPeriod = time.Duration(binary.BigEndian.Uint32(b[17:])) * time.Millisecond
	r.DutyCycle = dutyFromWire(binary.BigEndian.Uint16(b[21:]))
	r.SF = int(b[23])
	return r, true
}

// IsReport reports whether b carries the report magic (any version) —
// the cheap pre-check hosts use to count or route control feedback
// without a full parse.
func IsReport(b []byte) bool {
	return len(b) >= 3 && b[0] == repMagic[0] && b[1] == repMagic[1]
}

// dutyToWire encodes a duty-cycle fraction in 1e-4 units (0.01 → 100),
// clamped to [0, 1].
func dutyToWire(f float64) uint16 {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return 10000
	}
	return uint16(f*10000 + 0.5)
}

func dutyFromWire(u uint16) float64 {
	if u == 0 {
		return 0
	}
	return float64(u) / 10000
}

func clampU32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(v)
}

func clampU16(v int64) uint16 {
	if v < 0 {
		return 0
	}
	if v > int64(^uint16(0)) {
		return ^uint16(0)
	}
	return uint16(v)
}
