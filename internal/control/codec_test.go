package control

import (
	"strings"
	"testing"
	"time"

	"repro/internal/meshsec"
	"repro/internal/packet"
)

var testKey = meshsec.Key{
	0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
	0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
}

func TestCommandRoundTrip(t *testing.T) {
	cmds := []Command{
		{Op: OpSetConfig, Seq: 7, Epoch: 3, HelloPeriod: 90 * time.Second,
			DutyCycle: 0.01, SF: 9, Awake: 20 * time.Second, Sleep: 40 * time.Second},
		{Op: OpSetConfig, Seq: 8, Epoch: 3}, // all-zero body: leave everything alone
		{Op: OpTriggerHello, Seq: 9, Dst: 0x0004, Via: 0x0002},
		{Op: OpTriggerHello, Seq: 10}, // bare beacon, no purge
		{Op: OpReboot, Seq: 11, Delay: 5 * time.Second},
		{Op: OpRekey, Seq: 12, Stage: true, KeyEpoch: 2, Key: testKey},
		{Op: OpRekey, Seq: 13, KeyEpoch: 2, Key: testKey},
		{Op: OpRekey, Seq: 14, Commit: true, KeyEpoch: 2, Key: testKey},
	}
	for _, want := range cmds {
		got, ok := ParseCommand(MarshalCommand(want))
		if !ok {
			t.Fatalf("%s seq=%d: did not parse back", want.Op, want.Seq)
		}
		if got != want {
			t.Errorf("%s roundtrip:\n got %+v\nwant %+v", want.Op, got, want)
		}
	}
}

func TestCommandRejectsForeignPayloads(t *testing.T) {
	good := MarshalCommand(Command{Op: OpReboot, Seq: 1})
	cases := map[string][]byte{
		"empty":          nil,
		"application":    []byte("hello sensor 42"),
		"short header":   good[:4],
		"bad magic":      append([]byte{0x00, 0x01}, good[2:]...),
		"report magic":   MarshalReport(Report{Op: OpReboot, Seq: 1}),
		"newer version":  func() []byte { b := append([]byte(nil), good...); b[2] = CodecVersion + 1; return b }(),
		"unknown op":     func() []byte { b := append([]byte(nil), good...); b[3] = 0x7F; return b }(),
		"truncated body": good[:len(good)-1],
		"oversize body":  append(append([]byte(nil), good...), 0xAA),
	}
	for name, b := range cases {
		if _, ok := ParseCommand(b); ok {
			t.Errorf("%s: parsed as a command", name)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	want := Report{Op: OpSetConfig, Seq: 42, Status: StatusError,
		Epoch: 5, KeyEpoch: 2, HelloPeriod: 2 * time.Minute, DutyCycle: 0.1, SF: 12}
	b := MarshalReport(want)
	if !IsReport(b) {
		t.Fatal("IsReport = false for a marshaled report")
	}
	got, ok := ParseReport(b)
	if !ok {
		t.Fatal("report did not parse back")
	}
	if got != want {
		t.Fatalf("report roundtrip:\n got %+v\nwant %+v", got, want)
	}
	if _, ok := ParseReport(b[:len(b)-1]); ok {
		t.Error("truncated report parsed")
	}
	if IsReport(MarshalCommand(Command{Op: OpReboot})) {
		t.Error("IsReport = true for a command")
	}
	if _, ok := ParseCommand(b); ok {
		t.Error("report parsed as a command")
	}
}

func TestDutyWireQuantization(t *testing.T) {
	for _, f := range []float64{0, 0.001, 0.01, 0.1, 0.5, 1} {
		got := dutyFromWire(dutyToWire(f))
		if diff := got - f; diff > 1e-4 || diff < -1e-4 {
			t.Errorf("duty %v came back as %v", f, got)
		}
	}
	if dutyToWire(2) != 10000 || dutyToWire(-1) != 0 {
		t.Error("duty clamp broken")
	}
}

func TestKeyForEpoch(t *testing.T) {
	if KeyForEpoch(testKey, 0) != testKey {
		t.Error("epoch 0 must be the base key")
	}
	k1, k2 := KeyForEpoch(testKey, 1), KeyForEpoch(testKey, 2)
	if k1 == testKey || k2 == testKey || k1 == k2 {
		t.Error("epoch keys must be pairwise distinct from the base")
	}
	if KeyForEpoch(testKey, 2) != k2 {
		t.Error("derivation is not deterministic")
	}
	// The derivation binds the epoch number, not just the chain
	// position: epoch 1 under a different base diverges immediately.
	if KeyForEpoch(k1, 1) == k1 || KeyForEpoch(k1, 1) == KeyForEpoch(k2, 1) {
		t.Error("derived keys must depend on the base key")
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	for s, want := range map[string]string{
		OpSetConfig.String():      "set_config",
		OpRekey.String():          "rekey",
		Op(99).String():           "op(99)",
		StatusOK.String():         "ok",
		Status(99).String():       "status(99)",
		StatusError.String():      "error",
		packet.Broadcast.String(): "FFFF",
	} {
		if !strings.Contains(s, want) && s != want {
			t.Errorf("string %q, want %q", s, want)
		}
	}
}
