package control

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/health"
	"repro/internal/meshsec"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/trace"
)

// SendFunc carries one marshaled command payload toward a node, reliable
// (acknowledged stream) or not. Hosts back it with the gateway downlink
// channel or the control node's own engine.
type SendFunc func(to packet.Address, payload []byte, reliable bool) error

// Config parameterizes a Controller.
type Config struct {
	// State is the desired-state document to reconcile. Required.
	State *State
	// Nodes is every managed node, in any order; the controller derives
	// its rollout order from Distance (farthest first). Required.
	Nodes []packet.Address
	// Send dispatches one command payload. Required.
	Send SendFunc
	// Self, when among Nodes, is the node co-located with the controller
	// (the gateway); commands for it are applied through Local instead
	// of the air.
	Self packet.Address
	// Local applies a command to the co-located node and returns its
	// report. Required when Self is among Nodes.
	Local func(Command) Report
	// Distance returns a node's distance from the controller, used for
	// farthest-first rollout ordering (the order the PR 5 rekey rollout
	// proved out: the far edge rotates first, the gateway last, so the
	// mesh never partitions mid-rollout). Nil keeps the Nodes order.
	Distance func(packet.Address) float64
	// PollInterval documents the host's reconcile cadence (hosts drive
	// Poll themselves). Zero means 30 s.
	PollInterval time.Duration
	// RetryInterval is how long an unacknowledged command waits before a
	// resend (same seq — acks are idempotent). Zero means 60 s.
	RetryInterval time.Duration
	// MaxRetries bounds send attempts per command before the controller
	// gives up and escalates. Zero means 3.
	MaxRetries int
	// Cooldown rate-limits each (node, playbook) pair: a flapping
	// detector re-fires its violation every health poll, and the
	// playbook must stay idempotent under that. Zero means 150 s.
	Cooldown time.Duration
	// MaxInflight bounds concurrently outstanding commands (rekey waves
	// are additionally serialized to one at a time). Zero means 4.
	MaxInflight int
	// StallDecay is how long a retry-exhausted node is left alone before
	// reconciliation tries it again. Exhaustion must not be terminal: a
	// node stalled by transient interference mid-rekey would otherwise
	// stay on the old key forever, cryptographically partitioned. Zero
	// means Cooldown.
	StallDecay time.Duration
	// Escalate, when set, is called after a command exhausts its
	// retries — the out-of-band recovery path (a watchdog or
	// infrastructure power-cycle an in-band command cannot reach).
	// Returning true means the node was forcibly recovered: the
	// controller resets its rollout state and re-reconciles it from
	// scratch.
	Escalate func(addr packet.Address, cmd Command) bool
	// Tracer, when set, receives controller decisions as KindControl
	// events.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.PollInterval <= 0 {
		c.PollInterval = 30 * time.Second
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 60 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 150 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.StallDecay <= 0 {
		c.StallDecay = c.Cooldown
	}
	return c
}

// pending is one command awaiting its report.
type pending struct {
	cmd      Command
	reliable bool
	sentAt   time.Time
	tries    int
}

// nodeTrack is the controller's per-node reconciliation state.
type nodeTrack struct {
	addr packet.Address
	// ackedEpoch is the desired-state version the node last confirmed.
	ackedEpoch uint32
	// stagedKeyEpoch / ackedKeyEpoch / committedKeyEpoch track the three
	// rekey phases (stage, rotate, commit) per node.
	stagedKeyEpoch    uint32
	ackedKeyEpoch     uint32
	committedKeyEpoch uint32
	inflight          *pending
	// stalled marks retry exhaustion; the node is left alone until it
	// reports again, an escalation revives it, or the stall decays
	// (StallDecay) and reconciliation tries again from scratch.
	stalled   bool
	stalledAt time.Time
	// lastPlay rate-limits playbook actions per op.
	lastPlay map[Op]time.Time
}

// queuedCmd is a playbook action awaiting dispatch by the next Poll —
// keeping every send inside the reconcile path keeps runs deterministic.
type queuedCmd struct {
	to       packet.Address
	cmd      Command
	reliable bool
	why      string
}

// actionsCap bounds the retained action journal.
const actionsCap = 4096

// Controller reconciles a desired-state document onto the mesh and runs
// the recovery playbooks. Safe for concurrent use: live hosts call Poll
// from a ticker and ObserveReport/OnViolation from receive goroutines.
type Controller struct {
	cfg Config
	reg *metrics.Registry

	mu      sync.Mutex
	st      *State
	order   []packet.Address // farthest-first rollout order
	nodes   map[packet.Address]*nodeTrack
	queued  []queuedCmd
	seq     uint32
	started bool
	start   time.Time
	// lastViolationSeq detects gaps in the health monitor's violation
	// feed (the monotonic sequence number exists for exactly this).
	lastViolationSeq uint64
	lastRekeyPlay    time.Time
	actions          []string
	actionsDropped   int
	baseKey          meshsec.Key
	hasKey           bool
}

// New builds a controller. The state document is validated here so a
// bad file fails at attach time, not mid-run.
func New(cfg Config) (*Controller, error) {
	if cfg.State == nil {
		return nil, fmt.Errorf("control: nil desired state")
	}
	if err := cfg.State.Validate(); err != nil {
		return nil, err
	}
	if cfg.Send == nil {
		return nil, fmt.Errorf("control: nil Send")
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("control: no nodes to manage")
	}
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:   cfg,
		reg:   metrics.NewRegistry(),
		st:    cfg.State,
		nodes: make(map[packet.Address]*nodeTrack, len(cfg.Nodes)),
	}
	key, hasKey, err := cfg.State.BaseKey()
	if err != nil {
		return nil, err
	}
	c.baseKey, c.hasKey = key, hasKey
	for _, a := range cfg.Nodes {
		if _, dup := c.nodes[a]; dup {
			return nil, fmt.Errorf("control: node %v listed twice", a)
		}
		if a == cfg.Self && cfg.Local == nil {
			return nil, fmt.Errorf("control: managing self (%v) needs Local", a)
		}
		c.nodes[a] = &nodeTrack{addr: a, lastPlay: make(map[Op]time.Time)}
		c.order = append(c.order, a)
	}
	if cfg.Distance != nil {
		// Farthest first; ties break on address so the order is total.
		sort.SliceStable(c.order, func(i, j int) bool {
			di, dj := cfg.Distance(c.order[i]), cfg.Distance(c.order[j])
			if di != dj {
				return di > dj
			}
			return c.order[i] < c.order[j]
		})
	}
	c.preRegister()
	return c, nil
}

func (c *Controller) preRegister() {
	for _, n := range []string{
		"ctl.commands.sent", "ctl.commands.retries", "ctl.commands.senderr",
		"ctl.commands.exhausted",
		"ctl.reports.received", "ctl.reports.stale", "ctl.reports.unknown",
		"ctl.acks.ok", "ctl.acks.unsupported", "ctl.acks.error",
		"ctl.playbook.blackhole", "ctl.playbook.loop", "ctl.playbook.silent",
		"ctl.playbook.replay", "ctl.playbook.duty_stuck", "ctl.playbook.suppressed",
		"ctl.escalations", "ctl.rekey.epochs", "ctl.stalls.decayed",
		"ctl.violations.observed", "ctl.violations.gap",
	} {
		c.reg.Counter(n)
	}
	c.reg.Gauge("ctl.converged")
	c.reg.Gauge("ctl.inflight")
	c.reg.Gauge("ctl.nodes.stalled")
	c.reg.Gauge("ctl.key.epoch")
}

// Metrics exposes the controller's ctl.* instruments.
func (c *Controller) Metrics() *metrics.Registry { return c.reg }

// PollInterval returns the documented reconcile cadence for hosts that
// arm their own timers.
func (c *Controller) PollInterval() time.Duration { return c.cfg.PollInterval }

// logf appends one line to the deterministic action journal (virtual
// timestamps relative to the first event) and mirrors it to the tracer.
// Called under mu.
func (c *Controller) logf(now time.Time, format string, args ...any) {
	c.noteStart(now)
	line := fmt.Sprintf("+%v %s", now.Sub(c.start), fmt.Sprintf(format, args...))
	if len(c.actions) >= actionsCap {
		c.actions = c.actions[1:]
		c.actionsDropped++
	}
	c.actions = append(c.actions, line)
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Emit(now, "control", trace.KindControl, "%s", line)
	}
}

func (c *Controller) noteStart(now time.Time) {
	if !c.started {
		c.started = true
		c.start = now
	}
}

// Actions returns the journal of every controller decision so far, in
// order, with timestamps relative to the controller's first activity —
// byte-identical across same-(plan, seed, state) runs, which the chaos
// suite asserts.
func (c *Controller) Actions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.actions...)
}

// KeyEpoch returns the current desired key epoch (the replay playbook
// bumps it).
func (c *Controller) KeyEpoch() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.KeyEpoch
}

// CurrentKey returns the network key for the current desired key epoch,
// and false when the document carries no key.
func (c *Controller) CurrentKey() (meshsec.Key, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.hasKey {
		return meshsec.Key{}, false
	}
	return KeyForEpoch(c.baseKey, c.st.KeyEpoch), true
}

// Converged reports whether every managed node has acknowledged the
// current document version and key epoch (both rekey phases). Stalled
// nodes count as unconverged.
func (c *Controller) Converged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.convergedLocked()
}

func (c *Controller) convergedLocked() bool {
	for _, a := range c.order {
		t := c.nodes[a]
		if t.stalled || t.inflight != nil {
			return false
		}
		if c.st.Version > 0 && t.ackedEpoch < c.st.Version {
			return false
		}
		if c.hasKey && c.st.KeyEpoch > 0 &&
			(t.ackedKeyEpoch < c.st.KeyEpoch || t.committedKeyEpoch < c.st.KeyEpoch) {
			return false
		}
	}
	return true
}

// sendItem is one dispatch decided under mu, executed after unlock.
type sendItem struct {
	to       packet.Address
	cmd      Command
	reliable bool
	retry    bool
}

// escItem is one escalation decided under mu, executed after unlock.
type escItem struct {
	to  packet.Address
	cmd Command
}

// Poll runs one reconcile round at now: expire and retry outstanding
// commands, dispatch queued playbook actions, then diff every node
// against the desired state and issue what is missing, farthest first.
// It returns the number of commands dispatched. Hosts call it on a
// fixed cadence (virtual time under simulation, a ticker live).
func (c *Controller) Poll(now time.Time) int {
	c.mu.Lock()
	c.noteStart(now)
	var sends []sendItem
	var escs []escItem

	// Phase 0: decay old stalls so a transient outage cannot exile a
	// node from reconciliation permanently.
	for _, a := range c.order {
		t := c.nodes[a]
		if t.stalled && now.Sub(t.stalledAt) >= c.cfg.StallDecay {
			t.stalled = false
			c.reg.Counter("ctl.stalls.decayed").Inc()
			c.logf(now, "stall decay node=%v: reconciling again", a)
		}
	}

	// Phase 1: retries and exhaustion for whatever is outstanding.
	inflight := 0
	for _, a := range c.order {
		t := c.nodes[a]
		p := t.inflight
		if p == nil {
			continue
		}
		if now.Sub(p.sentAt) < c.cfg.RetryInterval {
			inflight++
			continue
		}
		if p.tries >= c.cfg.MaxRetries {
			t.inflight = nil
			t.stalled = true
			t.stalledAt = now
			c.reg.Counter("ctl.commands.exhausted").Inc()
			c.logf(now, "give-up %s seq=%d node=%v after %d tries", p.cmd.Op, p.cmd.Seq, a, p.tries)
			escs = append(escs, escItem{to: a, cmd: p.cmd})
			continue
		}
		p.tries++
		p.sentAt = now
		c.reg.Counter("ctl.commands.retries").Inc()
		c.logf(now, "retry %s seq=%d node=%v try=%d", p.cmd.Op, p.cmd.Seq, a, p.tries)
		sends = append(sends, sendItem{to: a, cmd: p.cmd, reliable: p.reliable, retry: true})
		inflight++
	}

	// Phase 2: queued playbook actions, FIFO, one outstanding command
	// per node.
	var keep []queuedCmd
	for _, q := range c.queued {
		t := c.nodes[q.to]
		if t == nil {
			continue
		}
		if t.inflight != nil || inflight >= c.cfg.MaxInflight {
			keep = append(keep, q)
			continue
		}
		c.seq++
		q.cmd.Seq = c.seq
		t.inflight = &pending{cmd: q.cmd, reliable: q.reliable, sentAt: now, tries: 1}
		t.stalled = false
		inflight++
		c.logf(now, "playbook %s: %s seq=%d node=%v", q.why, q.cmd.Op, q.cmd.Seq, q.to)
		sends = append(sends, sendItem{to: q.to, cmd: q.cmd, reliable: q.reliable})
	}
	c.queued = keep

	// Phase 3: reconcile. Key rollout first (strictly serialized,
	// farthest first: one rotate at a time, then one commit at a time),
	// then configuration epochs, concurrently up to MaxInflight.
	keyBusy := false
	target := c.st.KeyEpoch
	if c.hasKey && target > 0 {
		for _, a := range c.order {
			if t := c.nodes[a]; t.inflight != nil && t.inflight.cmd.Op == OpRekey {
				keyBusy = true
				break
			}
		}
		if !keyBusy {
			if s, ok := c.planRekeyLocked(now, target); ok {
				sends = append(sends, s)
				keyBusy = true
				inflight++
			}
		}
	}
	keyDone := !c.hasKey || target == 0 || (!keyBusy && c.keyConvergedLocked(target))
	if keyDone && c.st.Version > 0 {
		for _, a := range c.order {
			if inflight >= c.cfg.MaxInflight {
				break
			}
			t := c.nodes[a]
			if t.inflight != nil || t.stalled || t.ackedEpoch >= c.st.Version {
				continue
			}
			cmd := c.configCommand(a)
			c.seq++
			cmd.Seq = c.seq
			t.inflight = &pending{cmd: cmd, reliable: true, sentAt: now, tries: 1}
			inflight++
			c.logf(now, "reconcile epoch=%d: set_config seq=%d node=%v", cmd.Epoch, cmd.Seq, a)
			sends = append(sends, sendItem{to: a, cmd: cmd, reliable: true})
		}
	}

	c.refreshGaugesLocked(inflight)
	c.mu.Unlock()

	// Dispatch outside the lock: a self-targeted command applies locally
	// and feeds its report straight back into ObserveReport.
	n := 0
	for _, s := range sends {
		if c.dispatch(now, s) {
			n++
		}
	}
	for _, e := range escs {
		if c.cfg.Escalate == nil {
			continue
		}
		if c.cfg.Escalate(e.to, e.cmd) {
			c.mu.Lock()
			c.reg.Counter("ctl.escalations").Inc()
			if t := c.nodes[e.to]; t != nil {
				// The host forcibly recovered the node; reconcile it from
				// scratch (its engine state is gone, its key link is not).
				t.stalled = false
				t.ackedEpoch = 0
				t.inflight = nil
			}
			c.logf(now, "escalated %s node=%v: host recovered it, re-reconciling", e.cmd.Op, e.to)
			c.mu.Unlock()
		}
	}
	return n
}

// keyConvergedLocked reports whether every node — stalled ones
// included — finished both rekey phases for epoch target. A stalled
// node does not get a pass here: declaring convergence (or starting
// another rollout) while one node still seals under the old key would
// paper over a cryptographic partition. Called under mu.
func (c *Controller) keyConvergedLocked(target uint32) bool {
	for _, a := range c.order {
		t := c.nodes[a]
		if t.ackedKeyEpoch < target || t.committedKeyEpoch < target {
			return false
		}
	}
	return true
}

// planRekeyLocked picks the next rekey command in the loss-free
// three-phase rollout, each phase a complete farthest-first wave before
// the next begins: stage (every node accepts the new key while still
// sealing under the old — no seal key changes anywhere during the wave),
// rotate (seal keys switch; already-rotated peers are readable because
// everyone staged, not-yet-rotated peers because rotation keeps the old
// key live), and commit (the old key is retired everywhere — the moment
// replayed old-key traffic stops authenticating). Called under mu.
func (c *Controller) planRekeyLocked(now time.Time, target uint32) (sendItem, bool) {
	key := KeyForEpoch(c.baseKey, target)
	waves := []struct {
		name string
		need func(*nodeTrack) bool
		cmd  Command
	}{
		// A node that already rotated no longer needs staging — e.g. its
		// engine rebooted mid-rollout and re-reported an epoch it holds.
		{"stage", func(t *nodeTrack) bool { return t.stagedKeyEpoch < target && t.ackedKeyEpoch < target },
			Command{Op: OpRekey, Stage: true, KeyEpoch: target, Key: key}},
		{"rotate", func(t *nodeTrack) bool { return t.ackedKeyEpoch < target },
			Command{Op: OpRekey, KeyEpoch: target, Key: key}},
		{"commit", func(t *nodeTrack) bool { return t.committedKeyEpoch < target },
			Command{Op: OpRekey, Commit: true, KeyEpoch: target, Key: key}},
	}
	for _, w := range waves {
		incomplete := false
		for _, a := range c.order {
			t := c.nodes[a]
			if !w.need(t) {
				continue
			}
			// A node that still needs this wave holds it open even while
			// stalled: advancing past it would retire a key somewhere
			// while this node still seals under it, partitioning it
			// cryptographically. Stall decay gets it retried.
			incomplete = true
			if t.stalled || t.inflight != nil {
				continue // resting after exhaustion, or busy; wait
			}
			cmd := w.cmd
			c.seq++
			cmd.Seq = c.seq
			t.inflight = &pending{cmd: cmd, reliable: true, sentAt: now, tries: 1}
			c.logf(now, "rekey %s epoch=%d seq=%d node=%v", w.name, target, cmd.Seq, a)
			return sendItem{to: a, cmd: cmd, reliable: true}, true
		}
		if incomplete {
			return sendItem{}, false // this wave must finish first
		}
	}
	return sendItem{}, false
}

// configCommand builds the OpSetConfig realizing the document for addr.
func (c *Controller) configCommand(addr packet.Address) Command {
	sp := c.st.Spec(addr)
	return Command{
		Op:          OpSetConfig,
		Epoch:       c.st.Version,
		HelloPeriod: sp.HelloPeriod.D(),
		DutyCycle:   sp.DutyCycle,
		SF:          sp.SF,
		Awake:       sp.Awake.D(),
		Sleep:       sp.Sleep.D(),
	}
}

// dispatch performs one send (or local apply) decided by Poll.
func (c *Controller) dispatch(now time.Time, s sendItem) bool {
	payload := MarshalCommand(s.cmd)
	if s.to == c.cfg.Self && c.cfg.Local != nil {
		rep := c.cfg.Local(s.cmd)
		c.reg.Counter("ctl.commands.sent").Inc()
		c.observe(now, s.to, rep)
		return true
	}
	if err := c.cfg.Send(s.to, payload, s.reliable); err != nil {
		// The attempt still counts (tries was already charged); the
		// retry timer re-sends, and exhaustion escalates as usual.
		c.reg.Counter("ctl.commands.senderr").Inc()
		c.mu.Lock()
		c.logf(now, "send %s seq=%d node=%v failed: %v", s.cmd.Op, s.cmd.Seq, s.to, err)
		c.mu.Unlock()
		return false
	}
	c.reg.Counter("ctl.commands.sent").Inc()
	return true
}

// ObserveReport consumes one mesh delivery if it is a control report,
// reporting whether it was (hosts chain it in front of the application's
// observer). from must be the delivery's source address.
func (c *Controller) ObserveReport(now time.Time, from packet.Address, payload []byte) bool {
	rep, ok := ParseReport(payload)
	if !ok {
		return false
	}
	c.observe(now, from, rep)
	return true
}

func (c *Controller) observe(now time.Time, from packet.Address, rep Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.Counter("ctl.reports.received").Inc()
	t := c.nodes[from]
	if t == nil {
		c.reg.Counter("ctl.reports.unknown").Inc()
		return
	}
	// A report is proof of life regardless of matching: un-stall.
	t.stalled = false
	if t.inflight == nil || t.inflight.cmd.Seq != rep.Seq {
		c.reg.Counter("ctl.reports.stale").Inc()
		return
	}
	cmd := t.inflight.cmd
	t.inflight = nil
	switch rep.Status {
	case StatusOK, StatusUnsupported:
		// Unsupported is terminal too: the node confirmed receipt and
		// will never be able to comply, so retrying is pointless.
		if rep.Status == StatusOK {
			c.reg.Counter("ctl.acks.ok").Inc()
		} else {
			c.reg.Counter("ctl.acks.unsupported").Inc()
		}
		// Sync the rollout ledger from the node's own snapshot.
		t.ackedEpoch = rep.Epoch
		t.ackedKeyEpoch = rep.KeyEpoch
		if cmd.Op == OpRekey && rep.Status == StatusOK {
			switch {
			case cmd.Stage:
				t.stagedKeyEpoch = cmd.KeyEpoch
			case cmd.Commit:
				t.committedKeyEpoch = cmd.KeyEpoch
			}
		}
		c.logf(now, "ack %s seq=%d node=%v status=%s epoch=%d keyepoch=%d",
			cmd.Op, cmd.Seq, from, rep.Status, rep.Epoch, rep.KeyEpoch)
	case StatusError:
		c.reg.Counter("ctl.acks.error").Inc()
		// Trust the node's reported state and let the next Poll re-plan.
		t.ackedEpoch = rep.Epoch
		t.ackedKeyEpoch = rep.KeyEpoch
		c.logf(now, "nack %s seq=%d node=%v epoch=%d keyepoch=%d",
			cmd.Op, cmd.Seq, from, rep.Epoch, rep.KeyEpoch)
	}
	c.refreshGaugesLocked(-1)
}

// OnViolation maps one health violation onto its recovery playbook.
// Hosts subscribe it to the health monitor; it never sends directly —
// actions queue for the next Poll so every dispatch happens inside the
// deterministic reconcile path.
func (c *Controller) OnViolation(now time.Time, v health.Violation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteStart(now)
	c.reg.Counter("ctl.violations.observed").Inc()
	if v.Seq > 0 {
		if c.lastViolationSeq > 0 && v.Seq > c.lastViolationSeq+1 {
			// Dropped or reordered violations between sink restarts; the
			// sequence number exists so this is visible, not silent.
			c.reg.Counter("ctl.violations.gap").Add(v.Seq - c.lastViolationSeq - 1)
		}
		if v.Seq > c.lastViolationSeq {
			c.lastViolationSeq = v.Seq
		}
	}
	switch v.Kind {
	case health.KindBlackhole, health.KindLoop:
		t := c.nodes[v.Node]
		if t == nil || !c.playAllowedLocked(t, OpTriggerHello, now) {
			return
		}
		// Purge the poisoned path (everything via the dead hop, or the
		// next hop toward the unreachable destination) and beacon now.
		cmd := Command{Op: OpTriggerHello, Dst: v.Dst, Via: v.Via}
		c.enqueuePlayLocked(now, t, cmd, false, v.Kind)
	case health.KindSilent:
		t := c.nodes[v.Node]
		if t == nil || !c.playAllowedLocked(t, OpReboot, now) {
			return
		}
		c.enqueuePlayLocked(now, t, Command{Op: OpReboot}, true, v.Kind)
	case health.KindReplay:
		if !c.hasKey {
			return
		}
		if !c.lastRekeyPlay.IsZero() && now.Sub(c.lastRekeyPlay) < c.cfg.Cooldown {
			c.reg.Counter("ctl.playbook.suppressed").Inc()
			return
		}
		// One rollout at a time: bump the epoch only once the previous
		// one has fully converged, or the fleet would chase a moving key.
		if !c.keyConvergedLocked(c.st.KeyEpoch) {
			c.reg.Counter("ctl.playbook.suppressed").Inc()
			return
		}
		c.lastRekeyPlay = now
		c.st.KeyEpoch++
		c.reg.Counter("ctl.playbook.replay").Inc()
		c.reg.Counter("ctl.rekey.epochs").Inc()
		c.logf(now, "playbook replay: key epoch -> %d (violation at %v)", c.st.KeyEpoch, v.Node)
	case health.KindDutyStuck:
		// Observed, not acted on: relaxing a duty budget is a regulatory
		// decision, not a recovery.
		c.reg.Counter("ctl.playbook.duty_stuck").Inc()
	}
}

// playAllowedLocked applies the per-(node, op) cooldown and dedup.
func (c *Controller) playAllowedLocked(t *nodeTrack, op Op, now time.Time) bool {
	if last, ok := t.lastPlay[op]; ok && now.Sub(last) < c.cfg.Cooldown {
		c.reg.Counter("ctl.playbook.suppressed").Inc()
		return false
	}
	if t.inflight != nil && t.inflight.cmd.Op == op {
		c.reg.Counter("ctl.playbook.suppressed").Inc()
		return false
	}
	for _, q := range c.queued {
		if q.to == t.addr && q.cmd.Op == op {
			c.reg.Counter("ctl.playbook.suppressed").Inc()
			return false
		}
	}
	return true
}

func (c *Controller) enqueuePlayLocked(now time.Time, t *nodeTrack, cmd Command, reliable bool, kind string) {
	t.lastPlay[cmd.Op] = now
	c.reg.Counter("ctl.playbook." + kind).Inc()
	c.queued = append(c.queued, queuedCmd{to: t.addr, cmd: cmd, reliable: reliable, why: kind})
}

// refreshGaugesLocked re-exports the convergence and inflight gauges.
// inflight < 0 recounts.
func (c *Controller) refreshGaugesLocked(inflight int) {
	if inflight < 0 {
		inflight = 0
		for _, a := range c.order {
			if c.nodes[a].inflight != nil {
				inflight++
			}
		}
	}
	stalled := 0
	for _, a := range c.order {
		if c.nodes[a].stalled {
			stalled++
		}
	}
	conv := 0.0
	if c.convergedLocked() {
		conv = 1
	}
	c.reg.Gauge("ctl.converged").Set(conv)
	c.reg.Gauge("ctl.inflight").Set(float64(inflight))
	c.reg.Gauge("ctl.nodes.stalled").Set(float64(stalled))
	c.reg.Gauge("ctl.key.epoch").Set(float64(c.st.KeyEpoch))
}
