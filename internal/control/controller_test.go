package control

import (
	"strings"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/meshsec"
	"repro/internal/packet"
)

var ct0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// fakeNode mimics the node-side command semantics of core.ApplyControl
// closely enough to exercise every controller path without a mesh.
type fakeNode struct {
	epoch, keyEpoch uint32
	key, staged     meshsec.Key
	hasStaged       bool
	committed       bool
	hello           time.Duration
	reboots         int
	hellosForced    int
	unsupported     bool // the host cannot perform anything host-side
	deaf            bool // commands vanish: no report ever comes back
}

func (f *fakeNode) apply(cmd Command) Report {
	rep := Report{Op: cmd.Op, Seq: cmd.Seq, Status: StatusOK}
	switch cmd.Op {
	case OpSetConfig:
		if cmd.HelloPeriod > 0 {
			f.hello = cmd.HelloPeriod
		}
		if cmd.Epoch > f.epoch {
			f.epoch = cmd.Epoch
		}
	case OpTriggerHello:
		f.hellosForced++
	case OpReboot:
		if f.unsupported {
			rep.Status = StatusUnsupported
		} else {
			f.reboots++
		}
	case OpRekey:
		switch {
		case cmd.Stage:
			f.staged, f.hasStaged = cmd.Key, true
		case cmd.Commit:
			if f.key != cmd.Key {
				rep.Status = StatusError
				break
			}
			f.committed = true
			if cmd.KeyEpoch > f.keyEpoch {
				f.keyEpoch = cmd.KeyEpoch
			}
		default:
			if f.key != cmd.Key {
				f.key = cmd.Key
				f.committed = false
			}
			if cmd.KeyEpoch > f.keyEpoch {
				f.keyEpoch = cmd.KeyEpoch
			}
		}
	}
	rep.Epoch = f.epoch
	rep.KeyEpoch = f.keyEpoch
	rep.HelloPeriod = f.hello
	return rep
}

type sentCmd struct {
	to       packet.Address
	cmd      Command
	reliable bool
}

// harness wires a controller to a fleet of fake nodes with a manual
// clock; commands sent to a non-deaf node are applied and reported back
// synchronously, like a self-targeted local apply.
type harness struct {
	t     *testing.T
	ctl   *Controller
	nodes map[packet.Address]*fakeNode
	sent  []sentCmd
	now   time.Time
}

func newHarness(t *testing.T, cfg Config, addrs ...packet.Address) *harness {
	t.Helper()
	h := &harness{t: t, now: ct0, nodes: make(map[packet.Address]*fakeNode)}
	for _, a := range addrs {
		h.nodes[a] = &fakeNode{key: testKey}
	}
	cfg.Nodes = addrs
	cfg.Send = func(to packet.Address, payload []byte, reliable bool) error {
		cmd, ok := ParseCommand(payload)
		if !ok {
			t.Fatalf("send to %v: payload is not a command", to)
		}
		h.sent = append(h.sent, sentCmd{to: to, cmd: cmd, reliable: reliable})
		if n := h.nodes[to]; n != nil && !n.deaf {
			h.ctl.ObserveReport(h.now, to, MarshalReport(n.apply(cmd)))
		}
		return nil
	}
	if cfg.Distance == nil {
		// Lower addresses farther away: rollout order 1, 2, 3, ...
		cfg.Distance = func(a packet.Address) float64 { return 100 - float64(a) }
	}
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.ctl = ctl
	return h
}

// poll advances the clock by d and runs one reconcile round.
func (h *harness) poll(d time.Duration) int {
	h.now = h.now.Add(d)
	return h.ctl.Poll(h.now)
}

func (h *harness) counter(name string) float64 {
	return h.ctl.Metrics().Snapshot()[name]
}

func TestNewValidation(t *testing.T) {
	good := Config{
		State: &State{Version: 1},
		Nodes: []packet.Address{1, 2},
		Send:  func(packet.Address, []byte, bool) error { return nil },
	}
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mut := range map[string]func(*Config){
		"nil state":          func(c *Config) { c.State = nil },
		"invalid state":      func(c *Config) { c.State = &State{KeyEpoch: 1} },
		"nil send":           func(c *Config) { c.Send = nil },
		"no nodes":           func(c *Config) { c.Nodes = nil },
		"duplicate node":     func(c *Config) { c.Nodes = []packet.Address{1, 1} },
		"self without local": func(c *Config) { c.Self = 2 },
	} {
		cfg := good
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReconcileConverges(t *testing.T) {
	st := &State{Version: 2, Defaults: NodeSpec{HelloPeriod: Duration(2 * time.Minute)}}
	h := newHarness(t, Config{State: st}, 1, 2, 3)

	if h.ctl.Converged() {
		t.Fatal("converged before any poll")
	}
	if n := h.poll(0); n != 3 {
		t.Fatalf("first poll dispatched %d commands, want 3", n)
	}
	// Farthest first: address 1 is the far edge under the test distance.
	for i, want := range []packet.Address{1, 2, 3} {
		if h.sent[i].to != want || h.sent[i].cmd.Op != OpSetConfig || h.sent[i].cmd.Epoch != 2 {
			t.Fatalf("send %d = %v %s epoch=%d, want set_config epoch=2 to %v",
				i, h.sent[i].to, h.sent[i].cmd.Op, h.sent[i].cmd.Epoch, want)
		}
	}
	if !h.ctl.Converged() {
		t.Fatal("not converged after synchronous acks")
	}
	for a, n := range h.nodes {
		if n.hello != 2*time.Minute {
			t.Errorf("node %v hello = %v", a, n.hello)
		}
	}
	// Idempotence: a converged fleet gets nothing more.
	if n := h.poll(time.Minute); n != 0 {
		t.Fatalf("converged fleet got %d more commands", n)
	}
}

func TestRetryExhaustionAndEscalation(t *testing.T) {
	st := &State{Version: 1, Defaults: NodeSpec{HelloPeriod: Duration(time.Minute)}}
	var escalated []packet.Address
	cfg := Config{
		State:         st,
		RetryInterval: 10 * time.Second,
		MaxRetries:    2,
		Escalate: func(a packet.Address, cmd Command) bool {
			escalated = append(escalated, a)
			return true
		},
	}
	h := newHarness(t, cfg, 1, 2)
	h.nodes[2].deaf = true

	h.poll(0) // initial sends; node 1 acks, node 2 swallows
	if h.ctl.Converged() {
		t.Fatal("converged with a deaf node")
	}
	h.poll(10 * time.Second) // try 2 toward the deaf node
	if got := h.counter("ctl.commands.retries"); got != 1 {
		t.Fatalf("retries = %v, want 1", got)
	}
	h.poll(10 * time.Second) // exhaustion: give up and escalate
	if got := h.counter("ctl.commands.exhausted"); got != 1 {
		t.Fatalf("exhausted = %v, want 1", got)
	}
	if len(escalated) != 1 || escalated[0] != 2 {
		t.Fatalf("escalated = %v, want [2]", escalated)
	}
	if got := h.counter("ctl.escalations"); got != 1 {
		t.Fatalf("ctl.escalations = %v, want 1", got)
	}

	// The escalation "power-cycled" the node: it hears again, and the
	// controller re-reconciles it from scratch.
	h.nodes[2].deaf = false
	h.poll(10 * time.Second)
	if !h.ctl.Converged() {
		t.Fatal("not converged after escalation recovery")
	}
	if h.nodes[2].hello != time.Minute {
		t.Fatalf("recovered node hello = %v", h.nodes[2].hello)
	}
}

func TestRekeyRunsThreeFullWaves(t *testing.T) {
	st := &State{NetKey: "2b7e151628aed2a6abf7158809cf4f3c", KeyEpoch: 1}
	h := newHarness(t, Config{State: st}, 1, 2, 3)

	for i := 0; i < 12 && !h.ctl.Converged(); i++ {
		h.poll(time.Second)
	}
	if !h.ctl.Converged() {
		t.Fatalf("rekey never converged; sent %d commands", len(h.sent))
	}
	// Exactly nine commands: stage/rotate/commit, each a complete
	// farthest-first wave (1, 2, 3) before the next begins.
	if len(h.sent) != 9 {
		t.Fatalf("sent %d commands, want 9", len(h.sent))
	}
	type phase struct {
		stage, commit bool
	}
	wantPhase := []phase{{true, false}, {true, false}, {true, false},
		{false, false}, {false, false}, {false, false},
		{false, true}, {false, true}, {false, true}}
	for i, s := range h.sent {
		if s.cmd.Op != OpRekey || !s.reliable {
			t.Fatalf("send %d: %s reliable=%v", i, s.cmd.Op, s.reliable)
		}
		if (phase{s.cmd.Stage, s.cmd.Commit}) != wantPhase[i] {
			t.Fatalf("send %d: stage=%v commit=%v, want %+v", i, s.cmd.Stage, s.cmd.Commit, wantPhase[i])
		}
		if want := []packet.Address{1, 2, 3}[i%3]; s.to != want {
			t.Fatalf("send %d went to %v, want %v (farthest-first wave)", i, s.to, want)
		}
	}
	want := KeyForEpoch(testKey, 1)
	for a, n := range h.nodes {
		if n.key != want || !n.committed || n.keyEpoch != 1 {
			t.Errorf("node %v: key rotated=%v committed=%v epoch=%d", a, n.key == want, n.committed, n.keyEpoch)
		}
	}
}

func TestPlaybooksAndCooldown(t *testing.T) {
	st := &State{NetKey: "2b7e151628aed2a6abf7158809cf4f3c"}
	h := newHarness(t, Config{State: st, Cooldown: time.Minute}, 1, 2, 3)

	// Blackhole at node 1: purge-and-beacon, dispatched by the NEXT poll
	// (never directly from the violation hook), unreliable.
	h.ctl.OnViolation(h.now, health.Violation{Seq: 1, Node: 1, Kind: health.KindBlackhole, Dst: 3, Via: 2})
	if len(h.sent) != 0 {
		t.Fatal("violation hook sent directly")
	}
	h.poll(time.Second)
	if len(h.sent) != 1 || h.sent[0].cmd.Op != OpTriggerHello || h.sent[0].reliable ||
		h.sent[0].cmd.Dst != 3 || h.sent[0].cmd.Via != 2 {
		t.Fatalf("blackhole playbook sent %+v", h.sent)
	}
	if h.nodes[1].hellosForced != 1 {
		t.Fatal("forced HELLO not applied")
	}

	// The detector re-fires every health poll; the cooldown absorbs it.
	h.ctl.OnViolation(h.now, health.Violation{Seq: 2, Node: 1, Kind: health.KindBlackhole, Dst: 3, Via: 2})
	h.poll(time.Second)
	if len(h.sent) != 1 {
		t.Fatalf("cooldown leaked: %d sends", len(h.sent))
	}
	if got := h.counter("ctl.playbook.suppressed"); got != 1 {
		t.Fatalf("suppressed = %v, want 1", got)
	}

	// Silent node: a reliable reboot.
	h.ctl.OnViolation(h.now, health.Violation{Seq: 3, Node: 2, Kind: health.KindSilent})
	h.poll(time.Second)
	last := h.sent[len(h.sent)-1]
	if last.cmd.Op != OpReboot || !last.reliable || last.to != 2 || h.nodes[2].reboots != 1 {
		t.Fatalf("silent playbook sent %+v", last)
	}

	// Replay anomaly: the desired key epoch advances once; a second
	// violation mid-rollout is suppressed (one rollout at a time).
	h.ctl.OnViolation(h.now, health.Violation{Seq: 4, Node: 3, Kind: health.KindReplay})
	if h.ctl.KeyEpoch() != 1 {
		t.Fatalf("key epoch = %d, want 1", h.ctl.KeyEpoch())
	}
	h.ctl.OnViolation(h.now, health.Violation{Seq: 5, Node: 3, Kind: health.KindReplay})
	if h.ctl.KeyEpoch() != 1 {
		t.Fatal("concurrent replay violation double-bumped the key epoch")
	}

	// Violation sequence gap: seq jumps 5 -> 9, three lost.
	h.ctl.OnViolation(h.now, health.Violation{Seq: 9, Node: 3, Kind: health.KindDutyStuck})
	if got := h.counter("ctl.violations.gap"); got != 3 {
		t.Fatalf("ctl.violations.gap = %v, want 3", got)
	}
	if got := h.counter("ctl.playbook.duty_stuck"); got != 1 {
		t.Fatalf("duty_stuck observed = %v, want 1", got)
	}
}

func TestUnsupportedIsTerminal(t *testing.T) {
	h := newHarness(t, Config{State: &State{}, Cooldown: time.Minute}, 1)
	h.nodes[1].unsupported = true
	h.ctl.OnViolation(h.now, health.Violation{Seq: 1, Node: 1, Kind: health.KindSilent})
	h.poll(time.Second)
	if got := h.counter("ctl.acks.unsupported"); got != 1 {
		t.Fatalf("unsupported acks = %v, want 1", got)
	}
	// Terminal: no retries for a command the node cannot ever perform.
	h.poll(10 * time.Minute)
	if got := h.counter("ctl.commands.retries"); got != 0 {
		t.Fatalf("retried an unsupported command %v times", got)
	}
}

func TestSelfAppliesLocally(t *testing.T) {
	st := &State{Version: 1, Defaults: NodeSpec{HelloPeriod: Duration(time.Minute)}}
	self := &fakeNode{key: testKey}
	cfg := Config{
		State: st,
		Self:  3,
		Local: func(cmd Command) Report { return self.apply(cmd) },
	}
	h := newHarness(t, cfg, 1, 2, 3)
	h.poll(0)
	for _, s := range h.sent {
		if s.to == 3 {
			t.Fatal("self-targeted command went over the air")
		}
	}
	if !h.ctl.Converged() || self.hello != time.Minute {
		t.Fatalf("self not reconciled locally (hello=%v)", self.hello)
	}
}

func TestActionsJournalDeterministic(t *testing.T) {
	run := func() string {
		st := &State{Version: 1, NetKey: "2b7e151628aed2a6abf7158809cf4f3c", KeyEpoch: 1,
			Defaults: NodeSpec{HelloPeriod: Duration(time.Minute)}}
		h := newHarness(t, Config{State: st, Cooldown: time.Minute}, 1, 2, 3)
		h.nodes[3].deaf = true
		h.ctl.OnViolation(h.now, health.Violation{Seq: 1, Node: 2, Kind: health.KindBlackhole, Dst: 1, Via: 3})
		for i := 0; i < 20; i++ {
			h.poll(30 * time.Second)
		}
		return strings.Join(h.ctl.Actions(), "\n")
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("empty action journal")
	}
	if a != b {
		t.Fatalf("same scenario produced different journals:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
