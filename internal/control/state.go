package control

import (
	"crypto/aes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/meshsec"
	"repro/internal/packet"
)

// Duration is a time.Duration that (un)marshals as a Go duration string
// ("90s", "2m30s") in JSON, with plain nanosecond numbers also accepted —
// the same convention internal/faults uses for plans.
type Duration time.Duration

// D returns the native duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "90s"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("control: bad duration %q: %w", s, perr)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("control: bad duration %s", b)
	}
	*d = Duration(n)
	return nil
}

// NodeSpec is the desired configuration for one node (or the fleet
// default). Zero fields mean "no opinion — leave the node's value
// alone"; per-node specs override the defaults field by field.
type NodeSpec struct {
	// HelloPeriod is the routing-beacon interval.
	HelloPeriod Duration `json:"hello_period,omitempty"`
	// DutyCycle is the airtime budget fraction (0.01 = EU868 g1;
	// 1 disables regulation).
	DutyCycle float64 `json:"duty_cycle,omitempty"`
	// SF is the LoRa spreading factor (7–12). Applying it is a radio
	// reconfiguration, which hosts model as a reboot.
	SF int `json:"sf,omitempty"`
	// Awake/Sleep arm a periodic sleep schedule for end devices; both
	// must be set together.
	Awake Duration `json:"awake,omitempty"`
	Sleep Duration `json:"sleep,omitempty"`
}

// merged returns sp with over's non-zero fields taking precedence.
func (sp NodeSpec) merged(over NodeSpec) NodeSpec {
	if over.HelloPeriod > 0 {
		sp.HelloPeriod = over.HelloPeriod
	}
	if over.DutyCycle > 0 {
		sp.DutyCycle = over.DutyCycle
	}
	if over.SF > 0 {
		sp.SF = over.SF
	}
	if over.Awake > 0 && over.Sleep > 0 {
		sp.Awake, sp.Sleep = over.Awake, over.Sleep
	}
	return sp
}

// zero reports whether the spec expresses no opinion at all.
func (sp NodeSpec) zero() bool { return sp == NodeSpec{} }

// Superframe declares a TDMA-like slotted schedule for the real-time
// forwarding strategy (see internal/slotted): the superframe repeats
// every Slots×SlotLen, each node transmits data only inside its assigned
// slot (slot index = route depth modulo Slots), and LatencyBound is the
// per-flow delivery deadline the health monitor enforces as an invariant.
type Superframe struct {
	// Slots is the number of slots per superframe.
	Slots int `json:"slots"`
	// SlotLen is one slot's duration.
	SlotLen Duration `json:"slot_len"`
	// Guard is trimmed from both ends of a slot: a transmission must
	// finish Guard before the slot closes. Zero means no guard.
	Guard Duration `json:"guard,omitempty"`
	// LatencyBound is the per-flow delivery deadline; zero disables the
	// latency-bound invariant.
	LatencyBound Duration `json:"latency_bound,omitempty"`
}

// Period returns the superframe's repeat interval.
func (sf *Superframe) Period() time.Duration {
	return time.Duration(sf.Slots) * sf.SlotLen.D()
}

// State is one versioned desired-state document: what every node's
// configuration should be, declaratively. The controller reconciles
// live nodes toward it and re-reconciles whenever Version grows.
type State struct {
	// Version tags the document; nodes ack the version they applied, and
	// bumping it is how an operator pushes an edit. Zero disables config
	// reconciliation (playbooks still run).
	Version uint32 `json:"version"`
	// NetKey is the epoch-0 network key as 32 hex digits. With it set
	// the controller can run key rotations: the key for epoch e is
	// derived deterministically from NetKey (see KeyForEpoch), so the
	// document never has to carry rotated keys explicitly.
	NetKey string `json:"net_key,omitempty"`
	// KeyEpoch is the desired key epoch. The replay playbook bumps it;
	// operators can too. Zero means the base key, never rotated.
	KeyEpoch uint32 `json:"key_epoch,omitempty"`
	// Defaults applies to every node not overridden below.
	Defaults NodeSpec `json:"defaults,omitempty"`
	// Nodes overrides Defaults per node, keyed by the node's mesh
	// address in hex ("0003").
	Nodes map[string]NodeSpec `json:"nodes,omitempty"`
	// Slotted, when present, declares the TDMA superframe the slotted
	// forwarding strategy runs (see internal/slotted).
	Slotted *Superframe `json:"slotted,omitempty"`
}

// Spec returns the effective desired spec for addr: Defaults overlaid
// with the node's own entry.
func (s *State) Spec(addr packet.Address) NodeSpec {
	sp := s.Defaults
	if over, ok := s.Nodes[addr.String()]; ok {
		return sp.merged(over)
	}
	// Accept lowercase and unpadded hex keys too; a hand-written
	// document should not silently miss its node.
	for k, over := range s.Nodes {
		if a, err := parseAddr(k); err == nil && a == addr {
			return sp.merged(over)
		}
	}
	return sp
}

// BaseKey parses NetKey. The second return is false when the document
// carries no key (rekey playbooks are then disabled).
func (s *State) BaseKey() (meshsec.Key, bool, error) {
	if s.NetKey == "" {
		return meshsec.Key{}, false, nil
	}
	k, err := meshsec.ParseKey(s.NetKey)
	if err != nil {
		return meshsec.Key{}, false, fmt.Errorf("control: net_key: %w", err)
	}
	return k, true, nil
}

// Validate checks the document.
func (s *State) Validate() error {
	if _, _, err := s.BaseKey(); err != nil {
		return err
	}
	if s.KeyEpoch > 0 && s.NetKey == "" {
		return fmt.Errorf("control: key_epoch %d needs net_key", s.KeyEpoch)
	}
	check := func(what string, sp NodeSpec) error {
		if sp.DutyCycle < 0 || sp.DutyCycle > 1 {
			return fmt.Errorf("control: %s duty_cycle %v outside [0,1]", what, sp.DutyCycle)
		}
		if sp.SF != 0 && (sp.SF < 7 || sp.SF > 12) {
			return fmt.Errorf("control: %s sf %d outside 7..12", what, sp.SF)
		}
		if sp.HelloPeriod < 0 || sp.Awake < 0 || sp.Sleep < 0 {
			return fmt.Errorf("control: %s has a negative duration", what)
		}
		if (sp.Awake > 0) != (sp.Sleep > 0) {
			return fmt.Errorf("control: %s needs awake and sleep both set (or neither)", what)
		}
		return nil
	}
	if err := check("defaults", s.Defaults); err != nil {
		return err
	}
	for k, sp := range s.Nodes {
		if _, err := parseAddr(k); err != nil {
			return fmt.Errorf("control: nodes key %q is not a hex address: %w", k, err)
		}
		if err := check("nodes["+k+"]", sp); err != nil {
			return err
		}
	}
	if sf := s.Slotted; sf != nil {
		if sf.Slots < 1 || sf.Slots > 255 {
			return fmt.Errorf("control: slotted slots %d outside 1..255", sf.Slots)
		}
		if sf.SlotLen <= 0 {
			return fmt.Errorf("control: slotted slot_len must be positive")
		}
		if sf.Guard < 0 || sf.LatencyBound < 0 {
			return fmt.Errorf("control: slotted has a negative duration")
		}
		if 2*sf.Guard.D() >= sf.SlotLen.D() {
			return fmt.Errorf("control: slotted guard %v leaves no usable slot time (slot_len %v)",
				sf.Guard.D(), sf.SlotLen.D())
		}
	}
	return nil
}

// parseAddr parses a hex mesh address ("0003", "3", "00ff").
func parseAddr(s string) (packet.Address, error) {
	v, err := strconv.ParseUint(s, 16, 16)
	if err != nil {
		return 0, err
	}
	return packet.Address(v), nil
}

// Load parses a JSON desired-state document. Unknown fields are
// rejected so a typo'd field fails loudly instead of silently leaving
// the fleet unreconciled.
func Load(r io.Reader) (*State, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s State
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("control: parse state: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a desired-state document from a JSON file.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("control: %w", err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("control: %s: %w", path, err)
	}
	return s, nil
}

// KeyForEpoch derives the network key for a key epoch from the base
// (epoch-0) key: K_e = AES_{K_{e-1}}(pad || e). The chain is
// deterministic, so the controller, the test harness, and an operator
// holding the base key all agree on every epoch's key without the
// document ever carrying rotated keys — and a run stays a pure function
// of (plan, seed, state doc).
func KeyForEpoch(base meshsec.Key, epoch uint32) meshsec.Key {
	k := base
	var block [16]byte
	copy(block[:], "CTLKEYEPOCH.")
	for e := uint32(1); e <= epoch; e++ {
		binary.BigEndian.PutUint32(block[12:], e)
		c, err := aes.NewCipher(k[:])
		if err != nil {
			// Key sizes are fixed at 16 bytes; this cannot happen.
			panic(err)
		}
		var out [16]byte
		c.Encrypt(out[:], block[:])
		k = meshsec.Key(out)
	}
	return k
}
