package control

import (
	"strings"
	"testing"
	"time"
)

const stateDoc = `{
  "version": 3,
  "net_key": "2b7e151628aed2a6abf7158809cf4f3c",
  "key_epoch": 1,
  "defaults": {"hello_period": "2m", "duty_cycle": 0.01},
  "nodes": {
    "0003": {"hello_period": "30s", "sf": 9},
    "4":    {"awake": "20s", "sleep": "40s"}
  }
}`

func TestStateLoadAndSpec(t *testing.T) {
	st, err := Load(strings.NewReader(stateDoc))
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 3 || st.KeyEpoch != 1 {
		t.Fatalf("version/key_epoch = %d/%d", st.Version, st.KeyEpoch)
	}
	key, has, err := st.BaseKey()
	if err != nil || !has || key != testKey {
		t.Fatalf("BaseKey = %v has=%v err=%v", key, has, err)
	}

	// Plain node: defaults only.
	sp := st.Spec(0x0001)
	if sp.HelloPeriod.D() != 2*time.Minute || sp.DutyCycle != 0.01 || sp.SF != 0 {
		t.Fatalf("default spec = %+v", sp)
	}
	// Overridden node: per-field merge over defaults.
	sp = st.Spec(0x0003)
	if sp.HelloPeriod.D() != 30*time.Second || sp.DutyCycle != 0.01 || sp.SF != 9 {
		t.Fatalf("merged spec = %+v", sp)
	}
	// Unpadded lowercase key still addresses its node.
	sp = st.Spec(0x0004)
	if sp.Awake.D() != 20*time.Second || sp.Sleep.D() != 40*time.Second {
		t.Fatalf("unpadded-key spec = %+v", sp)
	}
}

func TestStateLoadRejections(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"version": 1, "helo_period": "2m"}`,
		"bad key":          `{"version": 1, "net_key": "zz"}`,
		"epoch sans key":   `{"version": 1, "key_epoch": 2}`,
		"duty over 1":      `{"version": 1, "defaults": {"duty_cycle": 1.5}}`,
		"sf out of range":  `{"version": 1, "nodes": {"0002": {"sf": 6}}}`,
		"awake sans sleep": `{"version": 1, "defaults": {"awake": "20s"}}`,
		"bad node key":     `{"version": 1, "nodes": {"gw": {"sf": 9}}}`,
		"bad duration":     `{"version": 1, "defaults": {"hello_period": "fast"}}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"90s"`)); err != nil || d.D() != 90*time.Second {
		t.Fatalf("string form: %v err=%v", d.D(), err)
	}
	if err := d.UnmarshalJSON([]byte(`1500000000`)); err != nil || d.D() != 1500*time.Millisecond {
		t.Fatalf("numeric form: %v err=%v", d.D(), err)
	}
	b, err := Duration(2 * time.Minute).MarshalJSON()
	if err != nil || string(b) != `"2m0s"` {
		t.Fatalf("marshal: %s err=%v", b, err)
	}
}
