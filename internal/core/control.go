package core

// Control-plane command handling (see internal/control): the node-side
// half of the self-healing loop. Commands arrive as ordinary application
// payloads — sealed like any other frame on a secured mesh — and are
// intercepted in deliver, applied here, and answered with a report the
// controller's convergence detection keys on. Everything the engine can
// do to itself (HELLO period, duty class, route purges, key rotation) is
// applied in place; what needs the host (radio reconfiguration, sleep
// scheduling, reboots) goes through Config.OnControl.

import (
	"time"

	"repro/internal/control"
	"repro/internal/packet"
	"repro/internal/trace"
)

// handleControl applies one command and sends the report back to the
// issuer. Called from deliver, i.e. the node's execution context.
func (n *Node) handleControl(cmd control.Command, from packet.Address) {
	n.reg.Counter("ctl.commands.received").Inc()
	rep := n.ApplyControl(cmd)
	if n.traceOn {
		n.cfg.Tracer.Emit(n.env.Now(), n.addrStr, trace.KindControl,
			"ctl: %s seq=%d from %v -> %s", cmd.Op, cmd.Seq, from, rep.Status)
	}
	if from == n.cfg.Address || from == packet.Broadcast {
		return
	}
	if err := n.Send(from, control.MarshalReport(rep)); err != nil {
		// The controller's retry resends the command; the node will
		// re-ack idempotently.
		n.reg.Counter("ctl.report.senderr").Inc()
		return
	}
	n.reg.Counter("ctl.reports.sent").Inc()
}

// ApplyControl applies one control command to this node and returns the
// report, without sending it (hosts co-located with the controller call
// this directly). Idempotent: re-applying an epoch the node already
// holds just re-acks it.
func (n *Node) ApplyControl(cmd control.Command) control.Report {
	rep := control.Report{Op: cmd.Op, Seq: cmd.Seq, Status: control.StatusOK}
	switch cmd.Op {
	case control.OpSetConfig:
		if cmd.Epoch == 0 || cmd.Epoch > n.ctlEpoch {
			rep.Status = n.applyConfig(cmd)
			if cmd.Epoch > n.ctlEpoch {
				// The epoch advances even on unsupported: the node has
				// converged as far as it ever will on this document, and
				// the report says so honestly.
				n.ctlEpoch = cmd.Epoch
			}
		}
	case control.OpTriggerHello:
		// Purge the faulty path first, then beacon immediately —
		// unthrottled by TriggeredHelloGap: the controller already
		// rate-limits the playbook, and a recovery beacon must not be
		// swallowed by a coincidental earlier trigger.
		if cmd.Via != 0 && cmd.Via != packet.Broadcast {
			n.withdrawNeighbor(cmd.Via, "control purge")
		} else if cmd.Dst != 0 && cmd.Dst != packet.Broadcast {
			if e, ok := n.table.Lookup(cmd.Dst); ok && !e.Poisoned() {
				n.withdrawNeighbor(e.Via, "control purge")
			}
		}
		n.reg.Counter("ctl.hello.forced").Inc()
		n.lastTriggered = n.env.Now()
		n.sendHello()
	case control.OpReboot:
		// The engine cannot power-cycle itself; only the host can.
		if n.cfg.OnControl == nil || !n.cfg.OnControl(cmd) {
			rep.Status = control.StatusUnsupported
		}
	case control.OpRekey:
		rep.Status = n.applyRekey(cmd)
	default:
		rep.Status = control.StatusUnsupported
	}
	// Snapshot the node's observed state into every report — this is how
	// node state reaches the controller's diff.
	rep.Epoch = n.ctlEpoch
	rep.KeyEpoch = n.ctlKeyEpoch
	rep.HelloPeriod = n.cfg.HelloPeriod
	rep.DutyCycle = n.cfg.DutyCycleLimit
	rep.SF = int(n.cfg.Phy.SpreadingFactor)
	return rep
}

// applyConfig realizes an OpSetConfig. Zero fields mean "leave alone".
func (n *Node) applyConfig(cmd control.Command) control.Status {
	status := control.StatusOK
	if cmd.HelloPeriod > 0 && cmd.HelloPeriod != n.cfg.HelloPeriod {
		n.cfg.HelloPeriod = cmd.HelloPeriod
		if n.started && !n.stopped {
			// Re-arm the beacon on the new cadence, jittered like any
			// other HELLO so reconfigured fleets do not synchronize.
			period := cmd.HelloPeriod
			if j := n.cfg.HelloJitter; j > 0 {
				period = time.Duration((1 - j + 2*j*n.env.Rand()) * float64(period))
			}
			n.helloTimer.Reset(period)
		}
	}
	if cmd.DutyCycle > 0 && cmd.DutyCycle != n.cfg.DutyCycleLimit {
		old := n.duty
		n.cfg.DutyCycleLimit = cmd.DutyCycle
		duty, err := newDuty(n.cfg)
		if err != nil {
			return control.StatusError
		}
		// Swap regulators, carrying the lifetime airtime ledger so
		// AirtimeUsed stays monotonic across the swap.
		n.dutyCarry += old.LifetimeAirtime()
		n.duty = duty
	}
	hostSF := cmd.SF != 0 && cmd.SF != int(n.cfg.Phy.SpreadingFactor)
	hostSleep := cmd.Awake > 0 && cmd.Sleep > 0
	if hostSF || hostSleep {
		// Radio and power scheduling belong to the host.
		if n.cfg.OnControl == nil || !n.cfg.OnControl(cmd) {
			status = control.StatusUnsupported
		}
	}
	return status
}

// applyRekey realizes one OpRekey phase: stage installs the new key for
// acceptance only (this node keeps sealing under the old key, so its
// report — and everything else it transmits — stays readable by peers
// that have not rotated yet), rotate switches the seal key with the old
// kept as grace, and commit retires the old key once the controller has
// seen the whole mesh rotate.
func (n *Node) applyRekey(cmd control.Command) control.Status {
	if n.sec == nil {
		return control.StatusUnsupported
	}
	switch {
	case cmd.Stage:
		n.sec.Stage(cmd.Key)
	case cmd.Commit:
		if n.sec.NetKey() != cmd.Key {
			// Committing a key this node does not hold would strand it.
			return control.StatusError
		}
		n.sec.RetirePrev()
		if cmd.KeyEpoch > n.ctlKeyEpoch {
			n.ctlKeyEpoch = cmd.KeyEpoch
		}
	default:
		if n.sec.NetKey() != cmd.Key {
			n.sec.Rotate(cmd.Key)
			n.ins.secRekeys.Inc()
			if n.traceOn {
				n.cfg.Tracer.Emit(n.env.Now(), n.addrStr, trace.KindApp,
					"sec: network key rotated (epoch %d)", cmd.KeyEpoch)
			}
		}
		if cmd.KeyEpoch > n.ctlKeyEpoch {
			n.ctlKeyEpoch = cmd.KeyEpoch
		}
	}
	return control.StatusOK
}
