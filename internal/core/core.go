// Package core implements the LoRaMesher node engine — the library the
// demo paper runs on every LoRa node to form a mesh network.
//
// A Node is a deterministic, event-driven protocol state machine. It owns
// the distance-vector routing table, the HELLO beaconing service, the
// prioritized transmit queue with duty-cycle gating and optional
// listen-before-talk, hop-by-hop forwarding, and the reliable
// large-payload stream transport (SYNC / XL_DATA / ACK / LOST). The node
// performs no I/O and starts no goroutines of its own: a host — the
// discrete-event simulator (internal/netsim) or the goroutine-per-node
// live runtime (internal/livenet) — drives it through HandleFrame and
// scheduled callbacks and carries out its transmissions through the Env
// interface. That makes every simulation bit-for-bit reproducible while
// the identical engine also runs under real concurrency.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/control"
	"repro/internal/forward"
	"repro/internal/loraphy"
	"repro/internal/meshsec"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/span"
	"repro/internal/trace"
)

// Env is the node's view of its host. Implementations serialize all calls
// into the node (the node is not safe for concurrent use) and must not
// re-enter the node synchronously from Transmit.
type Env interface {
	// Now returns the current time (virtual under simulation).
	Now() time.Time
	// Schedule runs fn after d. The returned cancel function prevents a
	// pending fn from running; cancelling after the fact is a no-op.
	Schedule(d time.Duration, fn func()) (cancel func())
	// Transmit puts an encoded frame on the air and returns its airtime.
	// The host signals completion by calling Node.HandleTxDone. The frame
	// buffer is valid only for the duration of the call — the node reuses
	// it for subsequent frames — so implementations that need the bytes
	// after returning must copy them.
	Transmit(frame []byte) (time.Duration, error)
	// ChannelBusy reports whether channel-activity detection senses an
	// ongoing transmission (listen-before-talk).
	ChannelBusy() (bool, error)
	// Deliver hands a received application message to the application.
	Deliver(msg AppMessage)
	// StreamDone reports the outcome of an outgoing reliable stream.
	StreamDone(ev StreamEvent)
	// Rand returns a uniform float64 in [0,1) from the host's seeded
	// source, used for protocol jitter.
	Rand() float64
}

// Timer is a reusable single-shot timer bound at creation to one
// callback. Reset (re)arms it, replacing any pending deadline; Stop
// disarms it, and stopping a disarmed timer is a no-op. Like Schedule,
// the callback runs in the host's execution context.
type Timer interface {
	Reset(d time.Duration)
	Stop()
}

// TimerEnv is optionally implemented by Envs that can hand out reusable
// timers more cheaply than Schedule. The node re-arms its recurring
// timers (queue pump, HELLO beacon, route expiry) on every cycle, and
// Schedule's per-call cancel closure is a measurable share of dense
// simulation allocation; a Timer amortizes that to one allocation per
// node. Envs without it get a Schedule-backed adapter.
type TimerEnv interface {
	NewTimer(fn func()) Timer
}

// NewEnvTimer builds a reusable timer from env — native when the env
// implements TimerEnv, Schedule-backed otherwise. Strategy wrappers
// (e.g. internal/slotted's beacon) use it so their recurring timers get
// the same amortization the node's own timers do.
func NewEnvTimer(env Env, fn func()) Timer { return newTimer(env, fn) }

// newTimer builds a reusable timer from env, native when available.
func newTimer(env Env, fn func()) Timer {
	if te, ok := env.(TimerEnv); ok {
		return te.NewTimer(fn)
	}
	return &schedTimer{env: env, fn: fn}
}

// schedTimer adapts Env.Schedule to the Timer shape for hosts without
// native timers.
type schedTimer struct {
	env    Env
	fn     func()
	cancel func()
}

func (t *schedTimer) Reset(d time.Duration) {
	if t.cancel != nil {
		t.cancel()
	}
	t.cancel = t.env.Schedule(d, func() {
		t.cancel = nil
		t.fn()
	})
}

func (t *schedTimer) Stop() {
	if t.cancel != nil {
		t.cancel()
		t.cancel = nil
	}
}

// AppMessage is a payload delivered to the application.
type AppMessage struct {
	// From is the originating node.
	From packet.Address
	// To is this node's address, or Broadcast.
	To packet.Address
	// Payload is the application data. The node allocates it fresh; the
	// application owns it.
	Payload []byte
	// Reliable marks payloads that arrived via the stream transport.
	Reliable bool
	// Trace is the delivering packet's causal trace ID (for an assembled
	// multi-chunk stream, a stable ID over the stream's end-to-end
	// identity and reassembled payload). It doubles as a dedup
	// fingerprint: re-deliveries of the same reading carry the same ID,
	// which is what the gateway's exactly-once uplink keys on.
	//
	// On a secured mesh (Config.Security set) the ID mixes the sender's
	// monotonic frame counter, so two distinct sends are always distinct
	// IDs even with byte-identical payloads, while mesh re-deliveries of
	// the same frame still share one.
	//
	// On a plaintext mesh the ID is content-derived — hashed from the
	// packet's invariant fields and payload, with no per-send nonce — so
	// two *distinct* sends from the same source with byte-identical
	// payloads share an ID and are indistinguishable from a mesh
	// re-delivery. Plaintext applications whose deliveries feed a
	// deduplicating consumer (the gateway's uplink spool) must make each
	// payload unique per reading: embed a sequence number or timestamp,
	// as netsim's traffic generator does.
	Trace trace.TraceID
	// At is the delivery time.
	At time.Time
}

// StreamEvent reports the completion or failure of an outgoing reliable
// stream.
type StreamEvent struct {
	// ID is the stream sequence id returned by SendReliable.
	ID uint8
	// Dst is the stream's destination.
	Dst packet.Address
	// Err is nil on success; otherwise the reason the stream failed.
	Err error
	// Chunks is the number of data chunks in the stream.
	Chunks int
	// Retransmissions counts chunk retransmissions performed.
	Retransmissions int
	// Elapsed is the time from SendReliable to completion.
	Elapsed time.Duration
}

// Errors returned by the application API.
var (
	ErrNoRoute      = errors.New("core: no route to destination")
	ErrQueueFull    = errors.New("core: transmit queue full")
	ErrTooLarge     = errors.New("core: payload too large")
	ErrStopped      = errors.New("core: node is stopped")
	ErrBusyStream   = errors.New("core: too many concurrent outgoing streams")
	ErrStreamFailed = errors.New("core: stream exhausted retries")
)

// Config parameterizes a node.
type Config struct {
	// Address is the node's 16-bit mesh address (unique per network).
	Address packet.Address
	// Role is advertised in HELLO packets; zero means RoleDefault.
	Role packet.Role
	// Phy selects the radio parameters; zero value means
	// loraphy.DefaultParams().
	Phy loraphy.Params
	// HelloPeriod is the routing-beacon interval; the prototype uses
	// 120 s. Zero means 120 s.
	HelloPeriod time.Duration
	// HelloJitter is the relative desynchronization jitter applied to
	// each HELLO period (0.2 = ±20%). Zero means 0.2; negative disables.
	HelloJitter float64
	// RouteCheck is how often stale routes are expired. Zero means a
	// quarter of the routing entry TTL.
	RouteCheck time.Duration
	// Routing tunes the routing table (TTL, hop cap, poisoning).
	Routing routing.Config
	// QueueCapacity bounds the transmit queue. Zero means 64.
	QueueCapacity int
	// InterFrameGap is the pause between consecutive transmissions from
	// this node, jittered ±50%, which desynchronizes forwarders. Zero
	// means 80 ms; negative disables.
	InterFrameGap time.Duration
	// DutyCycleLimit caps airtime per rolling hour (0.01 = EU868 g1).
	// Zero means derive from Phy.FrequencyHz; 1 disables regulation.
	DutyCycleLimit float64
	// CAD enables listen-before-talk: the node defers transmissions
	// while it senses channel activity.
	CAD bool
	// CADBackoff is the deferral before re-checking a busy channel,
	// jittered. Zero means 3 frame-preamble times.
	CADBackoff time.Duration
	// CADMaxTries bounds deferrals before transmitting regardless.
	// Zero means 8.
	CADMaxTries int
	// StreamWindow is the reliable-transport window in chunks: 1 is the
	// prototype's stop-and-wait; larger values enable go-back-N. Zero
	// means 1.
	StreamWindow int
	// StreamRetry is the retransmission timeout for unacknowledged
	// stream chunks. Zero means 12 s (several multi-hop frame times).
	StreamRetry time.Duration
	// StreamBackoff grows the retransmission timeout each consecutive
	// round without acknowledged progress (capped at StreamRetryCap,
	// jittered ±10%), so a congested or healing path is not hammered at
	// a fixed cadence. Zero means 2 (doubling); 1 restores the
	// prototype's fixed timeout.
	StreamBackoff float64
	// StreamRetryCap bounds the backed-off retransmission timeout.
	// Zero means 8× StreamRetry.
	StreamRetryCap time.Duration
	// StreamPacing spaces consecutive window chunk transmissions so a
	// windowed transfer does not self-collide on a half-duplex
	// multi-hop path. Zero (the prototype) sends the window as fast as
	// the queue drains.
	StreamPacing time.Duration
	// StreamMaxRetries bounds retransmission rounds before a stream
	// fails. Zero means 6.
	StreamMaxRetries int
	// MaxOutStreams bounds concurrent outgoing streams. Zero means 4.
	MaxOutStreams int
	// DedupHorizon is how long a forwarded packet fingerprint is
	// remembered to break transient routing loops (the wire format has
	// no TTL field). Zero means 1500 ms; negative disables.
	DedupHorizon time.Duration
	// TriggeredUpdates withdraws routes the moment a next hop is known
	// dead — when a direct neighbor's entry expires, or when a reliable
	// stream exhausts its retries toward one — poisoning every route
	// through it (routing.Table.RemoveNeighbor) and broadcasting an
	// immediate, rate-limited HELLO so neighbors learn within one frame
	// time instead of one EntryTTL. Off by default (the prototype waits
	// out timeouts); chaos scenarios enable it.
	TriggeredUpdates bool
	// TriggeredHelloGap rate-limits triggered HELLOs. Zero means
	// HelloPeriod/10, clamped to at least one second.
	TriggeredHelloGap time.Duration
	// Security, when set, arms link-layer authenticated encryption: every
	// frame this node transmits is sealed (encrypted + 4-byte MIC) under
	// the Link's network key, every received frame must verify and pass
	// the per-origin replay window before it is processed, and plaintext
	// frames are dropped — including forged HELLOs, which closes the
	// table-poisoning hole. The Link must be owned by the HOST and carry
	// the node's own address: engines are rebuilt on crash/restart, and
	// reusing the host's Link is what keeps the frame counter monotonic
	// so a rebooted node never reuses an AEAD nonce. Nil runs the legacy
	// plaintext protocol.
	Security *meshsec.Link
	// Tracer, when set, receives per-packet causal events — origin,
	// per-hop tx/rx, forwarding decisions, delivery, and every drop with
	// its reason — keyed by the packet's trace ID, plus host-agnostic
	// protocol events. Nil disables tracing; emission costs one nil
	// check. The same tracer works under the deterministic simulator and
	// the live runtimes because the node only stamps events with
	// Env.Now.
	Tracer *trace.Tracer
	// Spans, when set, receives hop-level causal span segments — enqueue,
	// queue-wait, airtime, rx, forward, retransmit, deliver, and drop —
	// keyed by the packet's trace ID (see internal/span). The recorder is
	// a fixed ring; with no trace sink attached to it, recording stays
	// allocation-free, so spans can remain armed on the hot path. Nil
	// disables span capture entirely.
	Spans *span.Recorder
	// OnControl, when set, lets the HOST handle the control-plane
	// commands the engine cannot perform on itself — radio (SF)
	// reconfiguration, sleep scheduling, reboots (see internal/control).
	// It is called from the node's execution context; returning false
	// means the host cannot either, and the node reports the command
	// unsupported. Nil means every host-level command is unsupported.
	OnControl func(cmd control.Command) bool
	// Forwarder, when set, replaces the node's own distance-vector table
	// as the next-hop decision for routed packets (see internal/forward).
	// Nil dispatches through the routing table — the default strategy.
	Forwarder forward.Forwarder
	// TxGate, when set, is consulted before every transmission (after
	// the duty-cycle check, before listen-before-talk): a positive
	// clearance defers the queue pump by that long. The slotted strategy
	// installs its TDMA schedule here. Nil transmits unconditionally.
	TxGate forward.TxGate
	// OnBeacon, when set, receives strategy control beacons
	// (TypeSlotBeacon frames) addressed to or overheard by this node,
	// after security verification. Nil ignores them.
	OnBeacon func(p *packet.Packet, info RxInfo)
}

func (c Config) withDefaults() Config {
	if c.Role == 0 {
		c.Role = packet.RoleDefault
	}
	if c.Phy == (loraphy.Params{}) {
		c.Phy = loraphy.DefaultParams()
	}
	if c.HelloPeriod <= 0 {
		c.HelloPeriod = 120 * time.Second
	}
	if c.HelloJitter == 0 {
		c.HelloJitter = 0.2
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.InterFrameGap == 0 {
		c.InterFrameGap = 80 * time.Millisecond
	}
	if c.CADBackoff <= 0 {
		c.CADBackoff = 3 * c.Phy.PreambleTime()
	}
	if c.CADMaxTries <= 0 {
		c.CADMaxTries = 8
	}
	if c.StreamWindow <= 0 {
		c.StreamWindow = 1
	}
	if c.StreamRetry <= 0 {
		c.StreamRetry = 12 * time.Second
	}
	if c.StreamBackoff == 0 {
		c.StreamBackoff = 2
	}
	if c.StreamRetryCap <= 0 {
		c.StreamRetryCap = 8 * c.StreamRetry
	}
	if c.TriggeredHelloGap <= 0 {
		c.TriggeredHelloGap = c.HelloPeriod / 10
		if c.TriggeredHelloGap < time.Second {
			c.TriggeredHelloGap = time.Second
		}
	}
	if c.StreamMaxRetries <= 0 {
		c.StreamMaxRetries = 6
	}
	if c.MaxOutStreams <= 0 {
		c.MaxOutStreams = 4
	}
	if c.DedupHorizon == 0 {
		c.DedupHorizon = 1500 * time.Millisecond
	}
	return c
}

// EffectivePhy returns the PHY parameters a node built from this config
// will use, after defaulting. Hosts use it to configure the radio side.
func (c Config) EffectivePhy() loraphy.Params {
	return c.withDefaults().Phy
}

// EffectiveHelloPeriod returns the HELLO period after defaulting. Hosts
// use it to reason about convergence windows and clock-skew scaling.
func (c Config) EffectiveHelloPeriod() time.Duration {
	return c.withDefaults().HelloPeriod
}

// Validate checks the configuration.
func (c Config) Validate() error {
	cc := c.withDefaults()
	if cc.Address == packet.Broadcast {
		return fmt.Errorf("core: node address must not be the broadcast address")
	}
	if err := cc.Phy.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if cc.DutyCycleLimit < 0 || cc.DutyCycleLimit > 1 {
		return fmt.Errorf("core: duty-cycle limit %v out of [0,1]", cc.DutyCycleLimit)
	}
	if cc.HelloJitter > 0.9 {
		return fmt.Errorf("core: hello jitter %v too large (max 0.9)", cc.HelloJitter)
	}
	if cc.StreamBackoff < 1 {
		return fmt.Errorf("core: stream backoff %v must be >= 1", cc.StreamBackoff)
	}
	if cc.Security != nil && cc.Security.Addr() != cc.Address {
		return fmt.Errorf("core: security link keyed for %v, node is %v",
			cc.Security.Addr(), cc.Address)
	}
	return nil
}

// Node is one LoRaMesher protocol engine. See the package comment for the
// execution model.
type Node struct {
	cfg   Config
	env   Env
	table *routing.Table
	reg   *metrics.Registry
	// ins caches instrument pointers for the per-frame paths; Registry
	// lookups hash a name and take a mutex, which dominates dense
	// simulations when paid per frame.
	ins hotInstruments
	// traceOn mirrors cfg.Tracer != nil so hot call sites can skip
	// building tracePacket's variadic arguments (the []any boxing
	// allocates even when the tracer is nil).
	traceOn bool
	// sec mirrors cfg.Security; nil means the legacy plaintext protocol.
	sec *meshsec.Link
	// spans mirrors cfg.Spans; nil disables span capture.
	spans *span.Recorder
	// addrStr caches Address.String() — span records carry the rendered
	// address, and formatting it per segment would allocate on the hot
	// path.
	addrStr string
	// secStatTick throttles replay-window gauge refreshes to every 32nd
	// successful frame open; walking the per-origin windows on every frame
	// would show up in dense-simulation profiles.
	secStatTick uint32

	started bool
	stopped bool

	// Transmit path.
	queue        *txQueue
	transmitting bool
	pumpTimer    Timer
	pumpArmed    bool
	cadTries     int
	duty         dutyRegulator
	// txBuf is the reusable frame-encode buffer behind transmitHead; the
	// Env.Transmit contract (no retention after return) makes reuse safe.
	txBuf []byte

	// Beaconing and route maintenance.
	helloTimer  Timer
	expiryTimer Timer
	// lastTriggered rate-limits triggered route-withdrawal HELLOs.
	lastTriggered time.Time

	// Control plane (see internal/control): the last applied desired-state
	// document version and key epoch, echoed in command reports so the
	// controller's convergence detection has ground truth.
	ctlEpoch    uint32
	ctlKeyEpoch uint32
	// dutyCarry preserves lifetime airtime across duty-regulator swaps
	// (an OpSetConfig changing the duty-cycle class replaces n.duty).
	dutyCarry time.Duration

	// Reliable transport.
	nextSeqID  uint8
	outStreams map[uint8]*outStream
	inStreams  map[inKey]*inStream

	// fwd is the next-hop decision for routed packets: the node's own
	// routing table unless Config.Forwarder overrides it.
	fwd forward.Forwarder
	// dedup is the forwarding loop-breaker (shared strategy-API
	// semantics; see forward.Dedup).
	dedup forward.Dedup
}

// Compile-time check: the distance-vector table satisfies the strategy
// API's next-hop contract verbatim.
var _ forward.Forwarder = (*routing.Table)(nil)

// Kind identifies the node's forwarding strategy: the distance-vector
// engine is the proactive strategy.
func (n *Node) Kind() forward.Kind { return forward.KindProactive }

// Beacons describes the proactive strategy's control beacon: the
// periodic routing-table HELLO.
func (n *Node) Beacons() []forward.Beacon {
	return []forward.Beacon{{Type: packet.TypeHello, Period: n.cfg.HelloPeriod}}
}

// dutyRegulator is the subset of dutycycle.Regulator the node needs,
// extracted so tests can substitute a fake.
type dutyRegulator interface {
	CanTransmit(now time.Time, airtime time.Duration) bool
	Record(now time.Time, airtime time.Duration)
	NextAllowed(now time.Time, airtime time.Duration) (time.Time, error)
	LifetimeAirtime() time.Duration
	// Utilization is the fraction of the rolling airtime budget consumed
	// at now (0 when unregulated); it feeds the dutycycle.utilization
	// gauge.
	Utilization(now time.Time) float64
}

// unlimitedDuty disables regulation.
type unlimitedDuty struct{ lifetime time.Duration }

func (*unlimitedDuty) CanTransmit(time.Time, time.Duration) bool { return true }
func (u *unlimitedDuty) Record(_ time.Time, a time.Duration)     { u.lifetime += a }
func (u *unlimitedDuty) NextAllowed(now time.Time, _ time.Duration) (time.Time, error) {
	return now, nil
}
func (u *unlimitedDuty) LifetimeAirtime() time.Duration { return u.lifetime }
func (*unlimitedDuty) Utilization(time.Time) float64    { return 0 }

// NewNode creates a node. The env must outlive the node.
func NewNode(cfg Config, env Env) (*Node, error) {
	if env == nil {
		return nil, fmt.Errorf("core: nil env")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:        cfg,
		env:        env,
		table:      routing.NewTable(cfg.Address, cfg.Routing),
		reg:        metrics.NewRegistry(),
		queue:      newTxQueue(cfg.QueueCapacity),
		outStreams: make(map[uint8]*outStream),
		inStreams:  make(map[inKey]*inStream),
	}
	n.dedup = forward.Dedup{Horizon: cfg.DedupHorizon}
	n.fwd = cfg.Forwarder
	if n.fwd == nil {
		n.fwd = n.table
	}
	duty, err := newDuty(cfg)
	if err != nil {
		return nil, err
	}
	n.duty = duty
	n.traceOn = cfg.Tracer != nil
	n.sec = cfg.Security
	n.spans = cfg.Spans
	n.addrStr = cfg.Address.String()
	n.pumpTimer = newTimer(env, func() {
		n.pumpArmed = false
		n.pump(0)
	})
	n.helloTimer = newTimer(env, n.helloTick)
	n.expiryTimer = newTimer(env, n.expiryTick)
	n.preRegisterInstruments()
	n.cacheInstruments()
	return n, nil
}

// hotInstruments holds instrument pointers resolved once at construction
// for the counters, gauges, and histograms the per-frame paths touch.
// Per-packet-type counters (tx.type.*, rx.type.*) are filled lazily, one
// slot per wire type byte.
type hotInstruments struct {
	txFrames, txBytes, rxFrames       *metrics.Counter
	fwdFrames, appSent, appDelivered  *metrics.Counter
	rxCorrupt, rxOwnEcho, rxOverheard *metrics.Counter
	helloReceived, routesUpdated      *metrics.Counter
	queueDepth, routesCount, dutyUtil *metrics.Gauge
	txAirtimeMs, queueWaitMs          *metrics.Histogram
	txType, rxType                    [256]*metrics.Counter
	// Security instruments; resolved only when cfg.Security is set.
	secSealed, secOpened       *metrics.Counter
	secDropAuth, secDropReplay *metrics.Counter
	secDropLegacy, secRekeys   *metrics.Counter
	secOverheadBytes           *metrics.Counter
	secSealNs, secOpenNs       *metrics.Histogram
	// Replay-protection state gauges, refreshed by refreshSecGauges.
	secWinOrigins, secWinOccupancy *metrics.Gauge
	secTxHigh, secRxHigh           *metrics.Gauge
}

func (n *Node) cacheInstruments() {
	n.ins.txFrames = n.reg.Counter("tx.frames")
	n.ins.txBytes = n.reg.Counter("tx.bytes")
	n.ins.rxFrames = n.reg.Counter("rx.frames")
	n.ins.fwdFrames = n.reg.Counter("fwd.frames")
	n.ins.appSent = n.reg.Counter("app.sent")
	n.ins.appDelivered = n.reg.Counter("app.delivered")
	n.ins.rxCorrupt = n.reg.Counter("rx.corrupt")
	n.ins.rxOwnEcho = n.reg.Counter("rx.own_echo")
	n.ins.rxOverheard = n.reg.Counter("rx.overheard")
	n.ins.helloReceived = n.reg.Counter("hello.received")
	n.ins.routesUpdated = n.reg.Counter("routes.updated")
	n.ins.queueDepth = n.reg.Gauge("queue.depth")
	n.ins.routesCount = n.reg.Gauge("routes.count")
	n.ins.dutyUtil = n.reg.Gauge("dutycycle.utilization")
	n.ins.txAirtimeMs = n.reg.Histogram("tx.airtime_ms")
	n.ins.queueWaitMs = n.reg.Histogram("queue.wait_ms")
	if n.cfg.Security != nil {
		n.ins.secSealed = n.reg.Counter("sec.tx.sealed")
		n.ins.secOpened = n.reg.Counter("sec.rx.opened")
		n.ins.secDropAuth = n.reg.Counter("sec.drop.auth")
		n.ins.secDropReplay = n.reg.Counter("sec.drop.replay")
		n.ins.secDropLegacy = n.reg.Counter("sec.drop.legacy")
		n.ins.secRekeys = n.reg.Counter("sec.rekey.applied")
		n.ins.secOverheadBytes = n.reg.Counter("sec.overhead.bytes")
		n.ins.secSealNs = n.reg.Histogram("sec.seal_ns")
		n.ins.secOpenNs = n.reg.Histogram("sec.open_ns")
		n.ins.secWinOrigins = n.reg.Gauge("sec.replay.window.origins")
		n.ins.secWinOccupancy = n.reg.Gauge("sec.replay.window.occupancy")
		n.ins.secTxHigh = n.reg.Gauge("sec.counter.tx.highwater")
		n.ins.secRxHigh = n.reg.Gauge("sec.counter.rx.highwater")
	}
}

// txTypeCounter returns the cached "tx.type.<T>" counter for t.
func (n *Node) txTypeCounter(t packet.Type) *metrics.Counter {
	c := n.ins.txType[t]
	if c == nil {
		c = n.reg.Counter("tx.type." + t.String())
		n.ins.txType[t] = c
	}
	return c
}

// rxTypeCounter returns the cached "rx.type.<T>" counter for t.
func (n *Node) rxTypeCounter(t packet.Type) *metrics.Counter {
	c := n.ins.rxType[t]
	if c == nil {
		c = n.reg.Counter("rx.type." + t.String())
		n.ins.rxType[t] = c
	}
	return c
}

// preRegisterInstruments creates the node's core instrument set up front,
// so a /metrics scrape (or a dashboard) sees a stable schema from boot —
// a drop counter that reads 0 is very different from one that does not
// exist yet.
func (n *Node) preRegisterInstruments() {
	for _, c := range []string{
		"tx.frames", "tx.bytes", "rx.frames", "fwd.frames",
		"app.sent", "app.delivered",
		"drop.noroute", "drop.duplicate", "drop.queue_full",
		"drop.dutycycle", "drop.marshal", "drop.txerror",
		"dutycycle.deferrals",
	} {
		n.reg.Counter(c)
	}
	n.reg.Gauge("queue.depth")
	n.reg.Gauge("routes.count")
	n.reg.Gauge("dutycycle.utilization")
	n.reg.Histogram("tx.airtime_ms")
	n.reg.Histogram("queue.wait_ms")
	// stream.retx.rounds observes, per finished stream, the longest run
	// of consecutive retransmission rounds without acknowledged
	// progress — the bounded-retry evidence chaos runs assert on.
	n.reg.Histogram("stream.retx.rounds")
	if n.cfg.Security != nil {
		for _, c := range []string{
			"sec.tx.sealed", "sec.rx.opened",
			"sec.drop.auth", "sec.drop.replay", "sec.drop.legacy",
			"sec.rekey.applied", "sec.overhead.bytes",
		} {
			n.reg.Counter(c)
		}
		n.reg.Histogram("sec.seal_ns")
		n.reg.Histogram("sec.open_ns")
		for _, g := range []string{
			"sec.replay.window.origins", "sec.replay.window.occupancy",
			"sec.counter.tx.highwater", "sec.counter.rx.highwater",
		} {
			n.reg.Gauge(g)
		}
	}
}

// tracePacket emits a causal event about p, stamped with p's trace ID.
// It is a no-op without a configured tracer.
func (n *Node) tracePacket(kind trace.Kind, p *packet.Packet, format string, args ...any) {
	if n.cfg.Tracer == nil {
		return
	}
	n.cfg.Tracer.EmitPacket(n.env.Now(), n.cfg.Address.String(), kind,
		trace.TraceID(p.TraceID()), format, args...)
}

// recordSpan captures one hop-level span segment for p. It is a no-op
// without a configured recorder, and with one it allocates nothing:
// node and detail strings are pre-rendered or constant, and the trace ID
// hash works on the packet in place.
func (n *Node) recordSpan(p *packet.Packet, seg span.Seg, dur time.Duration, detail string) {
	if n.spans == nil {
		return
	}
	n.spans.Record(n.env.Now(), n.addrStr, trace.TraceID(p.TraceID()), seg, dur, detail)
}

// refreshSecGauges re-exports the link's replay-protection state —
// window occupancy and frame-counter high-water marks. Called every 32nd
// successful open (see secStatTick) so the per-origin window walk stays
// off the per-frame cost profile.
func (n *Node) refreshSecGauges() {
	origins, occupancy, rxHigh := n.sec.ReplayStats()
	n.ins.secWinOrigins.Set(float64(origins))
	n.ins.secWinOccupancy.Set(float64(occupancy))
	n.ins.secTxHigh.Set(float64(n.sec.Counter()))
	n.ins.secRxHigh.Set(float64(rxHigh))
}

// Address returns the node's mesh address.
func (n *Node) Address() packet.Address { return n.cfg.Address }

// Config returns the node's effective (defaulted) configuration.
func (n *Node) Config() Config { return n.cfg }

// Table exposes the routing table for inspection. Callers must access it
// only from the host's execution context.
func (n *Node) Table() *routing.Table { return n.table }

// Metrics exposes the node's instrument registry.
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// AirtimeUsed returns the node's cumulative transmit airtime, including
// airtime spent under duty regulators replaced by control-plane
// reconfiguration.
func (n *Node) AirtimeUsed() time.Duration { return n.dutyCarry + n.duty.LifetimeAirtime() }

// Start begins beaconing and route maintenance. The first HELLO is sent
// after a random fraction of the hello period, which desynchronizes nodes
// powered on together.
func (n *Node) Start() error {
	if n.stopped {
		return ErrStopped
	}
	if n.started {
		return fmt.Errorf("core: node %v already started", n.cfg.Address)
	}
	n.started = true
	first := time.Duration(n.env.Rand() * float64(n.cfg.HelloPeriod))
	n.helloTimer.Reset(first)
	n.expiryTimer.Reset(n.routeCheckPeriod())
	return nil
}

// Stop cancels all pending work. A stopped node ignores further frames.
func (n *Node) Stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	for _, t := range []Timer{n.helloTimer, n.expiryTimer, n.pumpTimer} {
		t.Stop()
	}
	for _, s := range n.outStreams {
		if s.retryCancel != nil {
			s.retryCancel()
		}
		if s.fillCancel != nil {
			s.fillCancel()
		}
	}
	for _, s := range n.inStreams {
		if s.gcCancel != nil {
			s.gcCancel()
		}
	}
}

func (n *Node) routeCheckPeriod() time.Duration {
	if n.cfg.RouteCheck > 0 {
		return n.cfg.RouteCheck
	}
	ttl := n.cfg.Routing.EntryTTL
	if ttl <= 0 {
		ttl = routing.DefaultConfig().EntryTTL
	}
	return ttl / 4
}

// newDuty builds the duty-cycle gate from the config.
func newDuty(cfg Config) (dutyRegulator, error) {
	if cfg.DutyCycleLimit >= 1 {
		return &unlimitedDuty{}, nil
	}
	limit := cfg.DutyCycleLimit
	if limit == 0 {
		var err error
		limit, err = limitForFrequency(cfg.Phy.FrequencyHz)
		if err != nil {
			return nil, err
		}
	}
	return newRegulator(limit)
}
