package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/simtime"
)

func TestNodeConfigValidation(t *testing.T) {
	env := &testEnv{}
	if _, err := NewNode(Config{Address: packet.Broadcast}, env); err == nil {
		t.Error("broadcast address: want error")
	}
	if _, err := NewNode(Config{Address: 1}, nil); err == nil {
		t.Error("nil env: want error")
	}
	cfg := Config{Address: 1, DutyCycleLimit: 2}
	if _, err := NewNode(cfg, env); err == nil {
		t.Error("duty cycle 2: want error")
	}
	cfg = Config{Address: 1, HelloJitter: 0.95}
	if _, err := NewNode(cfg, env); err == nil {
		t.Error("jitter 0.95: want error")
	}
	// Frequency outside EU868 with automatic duty limit: error surfaces.
	cfg = fastConfig()
	cfg.Address = 1
	cfg.DutyCycleLimit = 0
	cfg.Phy.FrequencyHz = 915e6
	cfg.Phy.SpreadingFactor = 7
	cfg.Phy.Bandwidth = 1
	cfg.Phy.CodingRate = 1
	cfg.Phy.PreambleSymbols = 8
	if _, err := NewNode(cfg, env); err == nil {
		t.Error("915 MHz with auto duty limit: want error")
	}
}

func TestStartTwiceAndStop(t *testing.T) {
	b := newBus(t, fastConfig(), 1)
	n := b.env(1).node
	if err := n.Start(); err == nil {
		t.Error("second Start: want error")
	}
	n.Stop()
	if err := n.Send(2, []byte("x")); !errors.Is(err, ErrStopped) {
		t.Errorf("Send after Stop = %v, want ErrStopped", err)
	}
	if err := n.Start(); !errors.Is(err, ErrStopped) {
		t.Errorf("Start after Stop = %v, want ErrStopped", err)
	}
	// A stopped node ignores frames without panicking.
	n.HandleFrame([]byte{0, 1, 0, 2, 4, 6}, RxInfo{})
	n.HandleTxDone()
}

func TestNeighborDiscoveryViaHello(t *testing.T) {
	b := newBus(t, fastConfig(), 1, 2)
	b.run(5 * time.Second) // a couple of hello periods
	for _, pair := range [][2]packet.Address{{1, 2}, {2, 1}} {
		n := b.env(pair[0]).node
		e, ok := n.Table().Lookup(pair[1])
		if !ok {
			t.Fatalf("node %v did not discover %v", pair[0], pair[1])
		}
		if e.Metric != 1 || e.Via != pair[1] {
			t.Errorf("node %v entry for %v = %+v, want direct neighbor", pair[0], pair[1], e)
		}
	}
}

func TestChainConvergenceAndForwarding(t *testing.T) {
	chain := []packet.Address{1, 2, 3}
	b := newBus(t, fastConfig(), chain...)
	b.drop = chainDrop(chain)
	b.run(10 * time.Second)

	a := b.env(1).node
	e, ok := a.Table().Lookup(3)
	if !ok {
		t.Fatal("node 1 has no route to 3")
	}
	if e.Via != 2 || e.Metric != 2 {
		t.Fatalf("route 1->3 = %+v, want via 2 metric 2", e)
	}

	if err := a.Send(3, []byte("over the hill")); err != nil {
		t.Fatal(err)
	}
	b.run(5 * time.Second)
	msgs := b.env(3).msgs
	if len(msgs) != 1 {
		t.Fatalf("node 3 received %d messages, want 1", len(msgs))
	}
	if string(msgs[0].Payload) != "over the hill" || msgs[0].From != 1 {
		t.Errorf("message = %+v", msgs[0])
	}
	if msgs[0].Reliable {
		t.Error("plain datagram marked reliable")
	}
	// The middle node forwarded exactly one data frame.
	if got := b.env(2).node.Metrics().Counter("fwd.frames").Value(); got != 1 {
		t.Errorf("node 2 forwarded %d frames, want 1", got)
	}
	// The endpoint never saw the packet addressed via node 2's first hop.
	if len(b.env(2).msgs) != 0 {
		t.Error("relay delivered a packet not addressed to it")
	}
}

func TestSendErrors(t *testing.T) {
	b := newBus(t, fastConfig(), 1, 2)
	n := b.env(1).node
	if err := n.Send(9, []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Errorf("Send to unknown = %v, want ErrNoRoute", err)
	}
	big := make([]byte, packet.MaxPayload(packet.TypeData)+1)
	if err := n.Send(2, big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized Send = %v, want ErrTooLarge", err)
	}
}

func TestBroadcastDataIsSingleHop(t *testing.T) {
	chain := []packet.Address{1, 2, 3}
	b := newBus(t, fastConfig(), chain...)
	b.drop = chainDrop(chain)
	b.run(6 * time.Second)
	if err := b.env(1).node.Send(packet.Broadcast, []byte("hi all")); err != nil {
		t.Fatal(err)
	}
	b.run(3 * time.Second)
	if len(b.env(2).msgs) != 1 {
		t.Errorf("neighbor got %d broadcast messages, want 1", len(b.env(2).msgs))
	}
	if len(b.env(3).msgs) != 0 {
		t.Error("broadcast was forwarded beyond one hop")
	}
}

func TestOverhearingIgnored(t *testing.T) {
	// Full connectivity, 3 nodes. 1 sends to 3 directly (via=3); node 2
	// overhears but must not deliver or forward.
	b := newBus(t, fastConfig(), 1, 2, 3)
	b.run(6 * time.Second)
	if err := b.env(1).node.Send(3, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	b.run(2 * time.Second)
	if len(b.env(3).msgs) != 1 {
		t.Fatalf("destination got %d messages, want 1", len(b.env(3).msgs))
	}
	if len(b.env(2).msgs) != 0 {
		t.Error("overhearing node delivered the packet")
	}
	if got := b.env(2).node.Metrics().Counter("rx.overheard").Value(); got == 0 {
		t.Error("overheard counter not incremented")
	}
}

func TestRouteExpiryAfterNodeDeath(t *testing.T) {
	cfg := fastConfig()
	cfg.Routing = routing.Config{EntryTTL: 6 * time.Second}
	b := newBus(t, cfg, 1, 2)
	b.run(5 * time.Second)
	if _, ok := b.env(1).node.Table().Lookup(2); !ok {
		t.Fatal("setup: node 1 should know node 2")
	}
	b.env(2).node.Stop()
	b.run(15 * time.Second)
	if _, ok := b.env(1).node.Table().NextHop(2); ok {
		t.Error("route to dead node did not expire")
	}
	if got := b.env(1).node.Metrics().Counter("routes.expired").Value(); got == 0 {
		t.Error("routes.expired not counted")
	}
}

func TestHelloJitterDesynchronizes(t *testing.T) {
	// With jitter on, two nodes started simultaneously must not beacon at
	// identical instants forever. Count tx frames; both should transmit
	// despite sharing t=0 start.
	b := newBus(t, fastConfig(), 1, 2)
	b.run(20 * time.Second)
	tx1 := b.env(1).node.Metrics().Counter("tx.frames").Value()
	tx2 := b.env(2).node.Metrics().Counter("tx.frames").Value()
	if tx1 < 5 || tx2 < 5 {
		t.Errorf("tx counts %d/%d, want ≥5 each over 10 periods", tx1, tx2)
	}
	// And they discovered each other (so beacons were not all colliding).
	if _, ok := b.env(1).node.Table().Lookup(2); !ok {
		t.Error("nodes failed to discover each other")
	}
}

func TestQueueFullRejectsDataKeepsHello(t *testing.T) {
	cfg := fastConfig()
	cfg.QueueCapacity = 4
	b := newBus(t, cfg, 1, 2)
	b.run(5 * time.Second) // discover each other
	n := b.env(1).node

	// Fill the queue faster than the radio drains (no sim time passes
	// between Sends, so nothing transmits in between; the first Send
	// starts transmitting immediately and the rest stack up).
	var fullErr error
	for i := 0; i < 20 && fullErr == nil; i++ {
		fullErr = n.Send(2, []byte("filler"))
	}
	if !errors.Is(fullErr, ErrQueueFull) {
		t.Fatalf("flooding Sends = %v, want ErrQueueFull", fullErr)
	}
	if n.Metrics().Counter("drop.queue_full").Value() == 0 {
		t.Error("drop.queue_full not counted")
	}
	// A HELLO still gets in by evicting a data packet.
	before := n.queue.len()
	n.sendHello()
	if n.queue.len() != before {
		t.Errorf("queue length changed %d -> %d, want eviction keeping it full", before, n.queue.len())
	}
	hasHello := false
	for _, lvl := range n.queue.levels {
		for _, e := range lvl {
			if e.p.Type == packet.TypeHello {
				hasHello = true
			}
		}
	}
	if !hasHello {
		t.Error("HELLO did not displace a data packet in a full queue")
	}
}

func TestCADDefersWhileBusy(t *testing.T) {
	cfg := fastConfig()
	cfg.CAD = true
	cfg.CADMaxTries = 3
	cfg.CADBackoff = 100 * time.Millisecond
	b := newBus(t, cfg, 1, 2)
	b.busy = true
	b.run(10 * time.Second)
	n := b.env(1).node
	if got := n.Metrics().Counter("cad.deferrals").Value(); got == 0 {
		t.Error("no CAD deferrals on a busy channel")
	}
	// Transmissions still happen after max tries (LBT is best-effort).
	if got := n.Metrics().Counter("tx.frames").Value(); got == 0 {
		t.Error("node never transmitted despite CADMaxTries cap")
	}
}

func TestDutyCycleDefersTransmissions(t *testing.T) {
	cfg := fastConfig()
	cfg.DutyCycleLimit = 0 // derive from 868.1 MHz -> 1%
	b := newBus(t, cfg, 1, 2)
	b.run(5 * time.Second)
	n := b.env(1).node
	// Saturate: each ~230B data frame is ≈0.37 s of airtime; the hourly
	// budget is 36 s, so ~100 frames exhaust it.
	payload := make([]byte, 200)
	sent := 0
	for i := 0; i < 300; i++ {
		if err := n.Send(2, payload); err == nil {
			sent++
		}
		b.run(2 * time.Second)
	}
	if got := n.Metrics().Counter("dutycycle.deferrals").Value(); got == 0 {
		t.Error("saturating sender never hit the duty-cycle gate")
	}
	// Airtime stays within the 1% budget (36s) plus one frame of slack.
	if air := n.AirtimeUsed(); air > 40*time.Second {
		t.Errorf("airtime used = %v, want ≤ ~36s over the first hour", air)
	}
}

func TestDutyCycleDisabledUsesUnlimited(t *testing.T) {
	cfg := fastConfig() // DutyCycleLimit: 1
	b := newBus(t, cfg, 1, 2)
	b.run(5 * time.Second)
	n := b.env(1).node
	for i := 0; i < 150; i++ {
		_ = n.Send(2, make([]byte, 200))
		b.run(time.Second)
	}
	if got := n.Metrics().Counter("dutycycle.deferrals").Value(); got != 0 {
		t.Errorf("deferrals = %d with regulation disabled, want 0", got)
	}
	if air := n.AirtimeUsed(); air < 40*time.Second {
		t.Errorf("airtime = %v, expected well past the 1%% budget", air)
	}
}

func TestForwardingDedupBreaksLoops(t *testing.T) {
	b := newBus(t, fastConfig(), 1, 2)
	b.run(5 * time.Second)
	n := b.env(2).node
	// Hand node 2 the same routed frame twice within the horizon, as a
	// routing loop would. It must forward only once.
	p := &packet.Packet{Dst: 1, Src: 3, Type: packet.TypeData, Via: 2, Payload: []byte("loop")}
	frame, err := packet.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	n.HandleFrame(frame, RxInfo{})
	n.HandleFrame(frame, RxInfo{})
	if got := n.Metrics().Counter("fwd.frames").Value(); got != 1 {
		t.Errorf("forwarded %d copies, want 1 (dedup)", got)
	}
	if got := n.Metrics().Counter("drop.duplicate").Value(); got != 1 {
		t.Errorf("drop.duplicate = %d, want 1", got)
	}
}

func TestOwnEchoDropped(t *testing.T) {
	b := newBus(t, fastConfig(), 1, 2)
	b.run(3 * time.Second)
	n := b.env(1).node
	p := &packet.Packet{Dst: 2, Src: 1, Type: packet.TypeData, Via: 1, Payload: []byte("echo")}
	frame, err := packet.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	fwdBefore := n.Metrics().Counter("fwd.frames").Value()
	n.HandleFrame(frame, RxInfo{})
	if got := n.Metrics().Counter("rx.own_echo").Value(); got != 1 {
		t.Errorf("rx.own_echo = %d, want 1", got)
	}
	if got := n.Metrics().Counter("fwd.frames").Value(); got != fwdBefore {
		t.Error("own echo was forwarded")
	}
}

func TestCorruptFrameCounted(t *testing.T) {
	b := newBus(t, fastConfig(), 1)
	n := b.env(1).node
	n.HandleFrame([]byte{1, 2, 3}, RxInfo{})
	if got := n.Metrics().Counter("rx.corrupt").Value(); got != 1 {
		t.Errorf("rx.corrupt = %d, want 1", got)
	}
}

func TestMetricsNamesStable(t *testing.T) {
	b := newBus(t, fastConfig(), 1, 2)
	b.run(6 * time.Second)
	names := b.env(1).node.Metrics().CounterNames()
	joined := strings.Join(names, ",")
	for _, want := range []string{"tx.frames", "rx.frames", "hello.sent", "hello.received"} {
		if !strings.Contains(joined, want) {
			t.Errorf("counter %q missing from %v", want, names)
		}
	}
}

func TestRoleAdvertisementAndDiscovery(t *testing.T) {
	chain := []packet.Address{1, 2, 3}
	cfg := fastConfig()
	b := &bus{sched: simtime.NewScheduler(t0)}
	roles := map[packet.Address]packet.Role{
		1: packet.RoleDefault, 2: packet.RoleDefault, 3: packet.RoleSink,
	}
	for i, a := range chain {
		c := cfg
		c.Address = a
		c.Role = roles[a]
		env := &testEnv{b: b, addr: a, rng: rand.New(rand.NewSource(int64(i) + 1))}
		n, err := NewNode(c, env)
		if err != nil {
			t.Fatal(err)
		}
		env.node = n
		env.phy = n.Config().Phy
		b.envs = append(b.envs, env)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	b.drop = chainDrop(chain)
	b.run(10 * time.Second)

	// Node 1 is two hops from the sink; the sink's role must have
	// propagated through node 2's adverts.
	sinks := b.env(1).node.FindByRole(packet.RoleSink)
	if len(sinks) != 1 || sinks[0] != 3 {
		t.Fatalf("FindByRole(sink) = %v, want [0003]", sinks)
	}
	if got := b.env(1).node.FindByRole(packet.RoleGateway); len(got) != 0 {
		t.Errorf("FindByRole(gateway) = %v, want empty", got)
	}
	// Defaults: node 3 sees two default-role nodes, nearest first.
	defaults := b.env(3).node.FindByRole(packet.RoleDefault)
	if len(defaults) != 2 || defaults[0] != 2 || defaults[1] != 1 {
		t.Errorf("FindByRole(default) = %v, want [0002 0001] nearest first", defaults)
	}
}
