package core

import (
	"fmt"

	"repro/internal/dutycycle"
)

// limitForFrequency resolves the regulatory duty-cycle limit for a carrier
// frequency, wrapping the dutycycle package so core has a single seam for
// regulation.
func limitForFrequency(freqHz float64) (float64, error) {
	limit, err := dutycycle.LimitForFrequency(freqHz)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return limit, nil
}

// newRegulator builds the standard rolling-hour regulator.
func newRegulator(limit float64) (dutyRegulator, error) {
	reg, err := dutycycle.NewRegulator(limit, dutycycle.DefaultWindow)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return reg, nil
}
