package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/control"
	"repro/internal/forward"
	"repro/internal/meshsec"
	"repro/internal/packet"
	"repro/internal/span"
	"repro/internal/trace"
)

// RxInfo carries link-quality measurements for a received frame. It is
// an alias for the strategy API's type (see internal/forward), so every
// engine shares one signature.
type RxInfo = forward.RxInfo

// HandleFrame processes one frame received from the radio.
func (n *Node) HandleFrame(frame []byte, info RxInfo) {
	if n.stopped {
		return
	}
	// rx.frames counts every frame the radio handed us — including ones
	// that fail to parse — so medium-delivered and engine-received frame
	// counts reconcile exactly (netsim's invariant audit depends on it).
	n.ins.rxFrames.Inc()
	p, err := packet.Unmarshal(frame)
	if err != nil {
		n.ins.rxCorrupt.Inc()
		return
	}
	n.rxTypeCounter(p.Type).Inc()
	if p.Src == n.cfg.Address {
		// Our own packet echoed back through a loop; never process.
		n.ins.rxOwnEcho.Inc()
		return
	}
	if n.sec != nil && !p.Secured {
		// A secured mesh treats every plaintext frame as unauthenticated,
		// whatever its type — this is the drop that keeps forged legacy
		// HELLOs out of the routing table.
		n.ins.secDropLegacy.Inc()
		n.tracePacket(trace.KindDrop, p, "drop: plaintext %v from %v on secured mesh", p.Type, p.Src)
		n.recordSpan(p, span.SegDrop, 0, "plaintext")
		return
	}
	if n.sec == nil && p.Secured {
		// Without key material the ciphertext is indistinguishable from
		// noise; account it with other unparseable traffic.
		n.ins.rxCorrupt.Inc()
		return
	}

	if p.Type == packet.TypeHello {
		// Authenticate before the table sees it: a HELLO that fails the
		// MIC or replay check must never influence routing.
		if n.sec != nil && !n.secOpen(p) {
			return
		}
		n.handleHello(p, info)
		return
	}
	if p.Type == packet.TypeSlotBeacon {
		// Strategy control beacon (link-local broadcast, no via): hand it
		// to the strategy layered on this engine, if any. Must run before
		// the overheard filter — non-routed frames carry Via 0.
		if n.sec != nil && !n.secOpen(p) {
			return
		}
		if n.cfg.OnBeacon != nil {
			n.cfg.OnBeacon(p, info)
		}
		return
	}

	// Routed packet: only the addressed next hop handles it; everyone
	// else merely overhears. The overheard filter must run BEFORE the
	// replay window — an overheard copy and its later legitimate forward
	// carry the same origin counter, and admitting the former would make
	// the latter look like a replay.
	if p.Via != n.cfg.Address && p.Via != packet.Broadcast {
		n.ins.rxOverheard.Inc()
		return
	}
	if n.sec != nil && !n.secOpen(p) {
		return
	}
	n.recordSpan(p, span.SegRx, 0, p.Type.String())
	if n.traceOn {
		n.tracePacket(trace.KindRx, p, "rx %v %v->%v snr=%.1f", p.Type, p.Src, p.Dst, info.SNRDB)
	}
	if p.Dst == n.cfg.Address {
		n.consume(p)
		return
	}
	if p.Dst == packet.Broadcast {
		// Single-hop broadcast datagram: deliver locally, never forward
		// (flooding is the baseline protocol, not LoRaMesher).
		if p.Type == packet.TypeData {
			n.deliverData(p)
		}
		return
	}
	n.forward(p)
}

// secOpen verifies and decrypts a secured frame in place, reporting
// whether processing may continue. Failures are accounted under the
// sec.drop.* counters the chaos suite asserts on.
func (n *Node) secOpen(p *packet.Packet) bool {
	start := time.Now()
	err := n.sec.Open(p)
	n.ins.secOpenNs.Observe(float64(time.Since(start)))
	if err == nil {
		n.ins.secOpened.Inc()
		n.secStatTick++
		if n.secStatTick&31 == 0 {
			n.refreshSecGauges()
		}
		return true
	}
	if errors.Is(err, meshsec.ErrReplay) {
		n.ins.secDropReplay.Inc()
		n.tracePacket(trace.KindDrop, p, "drop: replayed %v from %v (ctr=%d)", p.Type, p.Src, p.Counter)
		n.recordSpan(p, span.SegDrop, 0, "replay")
	} else {
		n.ins.secDropAuth.Inc()
		n.tracePacket(trace.KindDrop, p, "drop: auth failed for %v from %v", p.Type, p.Src)
		n.recordSpan(p, span.SegDrop, 0, "auth")
	}
	return false
}

// maxPayloadFor is packet.MaxPayload adjusted for this node's security
// mode: sealing a frame costs SecOverhead bytes of payload capacity.
func (n *Node) maxPayloadFor(t packet.Type) int {
	m := packet.MaxPayload(t)
	if n.sec != nil {
		m -= packet.SecOverhead
	}
	return m
}

// deliver hands a message to the application, except for control-plane
// commands (gateway downlink reconfiguration, recovery playbooks, key
// rotation), which the node applies to itself and answers with a report
// instead.
func (n *Node) deliver(msg AppMessage) {
	if cmd, ok := control.ParseCommand(msg.Payload); ok {
		n.handleControl(cmd, msg.From)
		return
	}
	n.env.Deliver(msg)
}

// handleHello folds a received routing beacon into the table.
func (n *Node) handleHello(p *packet.Packet, info RxInfo) {
	entries, err := packet.UnmarshalHello(p.Payload)
	if err != nil {
		n.ins.rxCorrupt.Inc()
		return
	}
	// The sender's own role rides on its metric-0 self entry when
	// present; the prototype simply advertises RoleDefault otherwise.
	role := packet.RoleDefault
	for _, e := range entries {
		if e.Addr == p.Src {
			role = e.Role
		}
	}
	if n.table.IsSuppressed(n.env.Now(), p.Src) {
		// Quarantined flapper (see routing.Config.SuppressAfter): its
		// beacons are ignored until the hold expires.
		n.reg.Counter("hello.suppressed").Inc()
		return
	}
	if n.table.ApplyHello(n.env.Now(), p.Src, role, info.SNRDB, entries) {
		n.ins.routesUpdated.Inc()
	}
	n.ins.routesCount.Set(float64(n.table.Len()))
	n.ins.helloReceived.Inc()
}

// consume handles a routed packet addressed to this node.
func (n *Node) consume(p *packet.Packet) {
	switch p.Type {
	case packet.TypeData:
		n.deliverData(p)
	case packet.TypeDataAck:
		n.handleSingle(p)
	case packet.TypeSync:
		n.handleSync(p)
	case packet.TypeXLData:
		n.handleChunk(p)
	case packet.TypeAck:
		n.handleAck(p)
	case packet.TypeLost:
		n.handleLost(p)
	default:
		n.reg.Counter("rx.corrupt").Inc()
	}
}

// deliverData hands a datagram payload to the application.
func (n *Node) deliverData(p *packet.Packet) {
	n.ins.appDelivered.Inc()
	n.recordSpan(p, span.SegDeliver, 0, "data")
	if n.traceOn {
		n.tracePacket(trace.KindApp, p, "delivered %d bytes from %v", len(p.Payload), p.Src)
	}
	n.deliver(AppMessage{
		From:    p.Src,
		To:      p.Dst,
		Payload: append([]byte(nil), p.Payload...),
		Trace:   trace.TraceID(p.TraceID()),
		At:      n.env.Now(),
	})
}

// forward relays a routed packet one hop closer to its destination. The
// next-hop decision dispatches through the strategy API's Forwarder —
// the distance-vector table by default (see Config.Forwarder).
func (n *Node) forward(p *packet.Packet) {
	next, ok := n.fwd.NextHop(p.Dst)
	if !ok {
		n.reg.Counter("drop." + forward.DropNoRoute).Inc()
		n.tracePacket(trace.KindDrop, p, "drop: no route to %v (forwarding)", p.Dst)
		n.recordSpan(p, span.SegDrop, 0, forward.DropNoRoute)
		return
	}
	if n.isDuplicate(p) {
		n.reg.Counter("drop." + forward.DropDuplicate).Inc()
		n.tracePacket(trace.KindDrop, p, "drop: duplicate within dedup horizon (loop breaker)")
		n.recordSpan(p, span.SegDrop, 0, forward.DropDuplicate)
		return
	}
	fwd := p.Clone()
	fwd.Via = next
	if err := n.enqueue(fwd); err != nil {
		// Metrics and the tracer already recorded the drop reason in
		// enqueue.
		return
	}
	n.ins.fwdFrames.Inc()
	n.recordSpan(fwd, span.SegForward, 0, fwd.Type.String())
	if n.traceOn {
		n.tracePacket(trace.KindRoute, fwd, "forward %v->%v via %v", fwd.Src, fwd.Dst, next)
	}
}

// isDuplicate remembers routed-packet fingerprints for DedupHorizon and
// reports repeats, breaking transient routing loops (the wire format has
// no TTL). The suppressor itself lives in the strategy API (forward.Dedup)
// so every strategy shares its exact semantics.
func (n *Node) isDuplicate(p *packet.Packet) bool {
	return n.dedup.Duplicate(n.env.Now(), fingerprint(p))
}

// route prepares a routed packet from this node: it resolves the next hop
// and enqueues. dst must not be broadcast for stream types.
func (n *Node) route(p *packet.Packet) error {
	if p.Dst == packet.Broadcast {
		p.Via = packet.Broadcast
		return n.enqueue(p)
	}
	next, ok := n.fwd.NextHop(p.Dst)
	if !ok {
		n.reg.Counter("drop." + forward.DropNoRoute).Inc()
		n.tracePacket(trace.KindDrop, p, "drop: no route to %v (origin)", p.Dst)
		n.recordSpan(p, span.SegDrop, 0, forward.DropNoRoute)
		return fmt.Errorf("%w: %v", ErrNoRoute, p.Dst)
	}
	p.Via = next
	return n.enqueue(p)
}

// sendControl emits a stream control packet (ACK or LOST) toward dst.
func (n *Node) sendControl(dst packet.Address, typ packet.Type, seqID uint8, number uint16) {
	p := &packet.Packet{
		Dst:    dst,
		Src:    n.cfg.Address,
		Type:   typ,
		SeqID:  seqID,
		Number: number,
	}
	if err := n.route(p); err != nil {
		n.reg.Counter("stream.control_unroutable").Inc()
	}
}

// FindByRole returns reachable nodes advertising the given role, nearest
// first. Applications use it to discover sinks or gateways without
// provisioning addresses.
func (n *Node) FindByRole(role packet.Role) []packet.Address {
	entries := n.table.ByRole(role)
	out := make([]packet.Address, len(entries))
	for i, e := range entries {
		out[i] = e.Addr
	}
	return out
}

// Send transmits an unreliable datagram to dst (or Broadcast for a
// single-hop broadcast). It fails fast when no route exists — the caller
// can retry after the mesh converges.
func (n *Node) Send(dst packet.Address, payload []byte) error {
	if n.stopped {
		return ErrStopped
	}
	if max := n.maxPayloadFor(packet.TypeData); len(payload) > max {
		return fmt.Errorf("%w: %d > %d bytes (use SendReliable for large payloads)",
			ErrTooLarge, len(payload), max)
	}
	p := &packet.Packet{
		Dst:     dst,
		Src:     n.cfg.Address,
		Type:    packet.TypeData,
		Payload: append([]byte(nil), payload...),
	}
	if n.traceOn {
		n.tracePacket(trace.KindApp, p, "origin %d bytes -> %v", len(payload), dst)
	}
	if err := n.route(p); err != nil {
		return err
	}
	n.ins.appSent.Inc()
	return nil
}
