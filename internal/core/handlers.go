package core

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/trace"
)

// RxInfo carries link-quality measurements for a received frame.
type RxInfo struct {
	RSSIDBm float64
	SNRDB   float64
}

// HandleFrame processes one frame received from the radio.
func (n *Node) HandleFrame(frame []byte, info RxInfo) {
	if n.stopped {
		return
	}
	// rx.frames counts every frame the radio handed us — including ones
	// that fail to parse — so medium-delivered and engine-received frame
	// counts reconcile exactly (netsim's invariant audit depends on it).
	n.ins.rxFrames.Inc()
	p, err := packet.Unmarshal(frame)
	if err != nil {
		n.ins.rxCorrupt.Inc()
		return
	}
	n.rxTypeCounter(p.Type).Inc()
	if p.Src == n.cfg.Address {
		// Our own packet echoed back through a loop; never process.
		n.ins.rxOwnEcho.Inc()
		return
	}

	if p.Type == packet.TypeHello {
		n.handleHello(p, info)
		return
	}

	// Routed packet: only the addressed next hop handles it; everyone
	// else merely overhears.
	if p.Via != n.cfg.Address && p.Via != packet.Broadcast {
		n.ins.rxOverheard.Inc()
		return
	}
	if n.traceOn {
		n.tracePacket(trace.KindRx, p, "rx %v %v->%v snr=%.1f", p.Type, p.Src, p.Dst, info.SNRDB)
	}
	if p.Dst == n.cfg.Address {
		n.consume(p)
		return
	}
	if p.Dst == packet.Broadcast {
		// Single-hop broadcast datagram: deliver locally, never forward
		// (flooding is the baseline protocol, not LoRaMesher).
		if p.Type == packet.TypeData {
			n.deliverData(p)
		}
		return
	}
	n.forward(p)
}

// handleHello folds a received routing beacon into the table.
func (n *Node) handleHello(p *packet.Packet, info RxInfo) {
	entries, err := packet.UnmarshalHello(p.Payload)
	if err != nil {
		n.ins.rxCorrupt.Inc()
		return
	}
	// The sender's own role rides on its metric-0 self entry when
	// present; the prototype simply advertises RoleDefault otherwise.
	role := packet.RoleDefault
	for _, e := range entries {
		if e.Addr == p.Src {
			role = e.Role
		}
	}
	if n.table.IsSuppressed(n.env.Now(), p.Src) {
		// Quarantined flapper (see routing.Config.SuppressAfter): its
		// beacons are ignored until the hold expires.
		n.reg.Counter("hello.suppressed").Inc()
		return
	}
	if n.table.ApplyHello(n.env.Now(), p.Src, role, info.SNRDB, entries) {
		n.ins.routesUpdated.Inc()
	}
	n.ins.routesCount.Set(float64(n.table.Len()))
	n.ins.helloReceived.Inc()
}

// consume handles a routed packet addressed to this node.
func (n *Node) consume(p *packet.Packet) {
	switch p.Type {
	case packet.TypeData:
		n.deliverData(p)
	case packet.TypeDataAck:
		n.handleSingle(p)
	case packet.TypeSync:
		n.handleSync(p)
	case packet.TypeXLData:
		n.handleChunk(p)
	case packet.TypeAck:
		n.handleAck(p)
	case packet.TypeLost:
		n.handleLost(p)
	default:
		n.reg.Counter("rx.corrupt").Inc()
	}
}

// deliverData hands a datagram payload to the application.
func (n *Node) deliverData(p *packet.Packet) {
	n.ins.appDelivered.Inc()
	if n.traceOn {
		n.tracePacket(trace.KindApp, p, "delivered %d bytes from %v", len(p.Payload), p.Src)
	}
	n.env.Deliver(AppMessage{
		From:    p.Src,
		To:      p.Dst,
		Payload: append([]byte(nil), p.Payload...),
		Trace:   trace.TraceID(p.TraceID()),
		At:      n.env.Now(),
	})
}

// forward relays a routed packet one hop closer to its destination.
func (n *Node) forward(p *packet.Packet) {
	next, ok := n.table.NextHop(p.Dst)
	if !ok {
		n.reg.Counter("drop.noroute").Inc()
		n.tracePacket(trace.KindDrop, p, "drop: no route to %v (forwarding)", p.Dst)
		return
	}
	if n.isDuplicate(p) {
		n.reg.Counter("drop.duplicate").Inc()
		n.tracePacket(trace.KindDrop, p, "drop: duplicate within dedup horizon (loop breaker)")
		return
	}
	fwd := p.Clone()
	fwd.Via = next
	if err := n.enqueue(fwd); err != nil {
		// Metrics and the tracer already recorded the drop reason in
		// enqueue.
		return
	}
	n.ins.fwdFrames.Inc()
	if n.traceOn {
		n.tracePacket(trace.KindRoute, fwd, "forward %v->%v via %v", fwd.Src, fwd.Dst, next)
	}
}

// isDuplicate remembers routed-packet fingerprints for DedupHorizon and
// reports repeats, breaking transient routing loops (the wire format has
// no TTL).
func (n *Node) isDuplicate(p *packet.Packet) bool {
	if n.cfg.DedupHorizon <= 0 {
		return false
	}
	now := n.env.Now()
	fp := fingerprint(p)
	if last, ok := n.seen[fp]; ok && now.Sub(last) < n.cfg.DedupHorizon {
		return true
	}
	n.seen[fp] = now
	if len(n.seen) > 256 {
		for k, v := range n.seen {
			if now.Sub(v) >= n.cfg.DedupHorizon {
				delete(n.seen, k)
			}
		}
	}
	return false
}

// route prepares a routed packet from this node: it resolves the next hop
// and enqueues. dst must not be broadcast for stream types.
func (n *Node) route(p *packet.Packet) error {
	if p.Dst == packet.Broadcast {
		p.Via = packet.Broadcast
		return n.enqueue(p)
	}
	next, ok := n.table.NextHop(p.Dst)
	if !ok {
		n.reg.Counter("drop.noroute").Inc()
		n.tracePacket(trace.KindDrop, p, "drop: no route to %v (origin)", p.Dst)
		return fmt.Errorf("%w: %v", ErrNoRoute, p.Dst)
	}
	p.Via = next
	return n.enqueue(p)
}

// sendControl emits a stream control packet (ACK or LOST) toward dst.
func (n *Node) sendControl(dst packet.Address, typ packet.Type, seqID uint8, number uint16) {
	p := &packet.Packet{
		Dst:    dst,
		Src:    n.cfg.Address,
		Type:   typ,
		SeqID:  seqID,
		Number: number,
	}
	if err := n.route(p); err != nil {
		n.reg.Counter("stream.control_unroutable").Inc()
	}
}

// FindByRole returns reachable nodes advertising the given role, nearest
// first. Applications use it to discover sinks or gateways without
// provisioning addresses.
func (n *Node) FindByRole(role packet.Role) []packet.Address {
	entries := n.table.ByRole(role)
	out := make([]packet.Address, len(entries))
	for i, e := range entries {
		out[i] = e.Addr
	}
	return out
}

// Send transmits an unreliable datagram to dst (or Broadcast for a
// single-hop broadcast). It fails fast when no route exists — the caller
// can retry after the mesh converges.
func (n *Node) Send(dst packet.Address, payload []byte) error {
	if n.stopped {
		return ErrStopped
	}
	if len(payload) > packet.MaxPayload(packet.TypeData) {
		return fmt.Errorf("%w: %d > %d bytes (use SendReliable for large payloads)",
			ErrTooLarge, len(payload), packet.MaxPayload(packet.TypeData))
	}
	p := &packet.Packet{
		Dst:     dst,
		Src:     n.cfg.Address,
		Type:    packet.TypeData,
		Payload: append([]byte(nil), payload...),
	}
	if n.traceOn {
		n.tracePacket(trace.KindApp, p, "origin %d bytes -> %v", len(payload), dst)
	}
	if err := n.route(p); err != nil {
		return err
	}
	n.ins.appSent.Inc()
	return nil
}
