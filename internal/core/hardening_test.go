package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/trace"
)

// The chaos-hardening mechanics: capped exponential stream backoff, the
// stream.retx.rounds histogram, and triggered route withdrawal.

func TestRetryDelayBackoffCapped(t *testing.T) {
	cfg := fastConfig() // StreamRetry 3s -> default cap 24s, backoff 2x
	b := newBus(t, cfg, 0x01)
	n := b.env(0x01).node

	base := n.cfg.StreamRetry
	cap := n.cfg.StreamRetryCap
	if cap != 8*base {
		t.Fatalf("default StreamRetryCap = %v, want %v", cap, 8*base)
	}
	for rounds := 0; rounds < 8; rounds++ {
		want := base
		for i := 0; i < rounds && want < cap; i++ {
			want *= 2
		}
		if want > cap {
			want = cap
		}
		lo := time.Duration(0.9 * float64(want))
		hi := time.Duration(1.1*float64(want)) + time.Millisecond
		for trial := 0; trial < 20; trial++ {
			got := n.retryDelay(rounds)
			if got < lo || got > hi {
				t.Fatalf("retryDelay(%d) = %v outside jittered [%v, %v]", rounds, got, lo, hi)
			}
		}
	}
}

func TestRetryDelayLegacyFixed(t *testing.T) {
	cfg := fastConfig()
	cfg.StreamBackoff = 1 // the prototype's fixed timeout
	b := newBus(t, cfg, 0x01)
	n := b.env(0x01).node
	for rounds := 0; rounds < 8; rounds++ {
		if got := n.retryDelay(rounds); got != n.cfg.StreamRetry {
			t.Fatalf("legacy retryDelay(%d) = %v, want fixed %v", rounds, got, n.cfg.StreamRetry)
		}
	}
}

func TestRetryBudgetSumsBackoffSeries(t *testing.T) {
	cfg := fastConfig()
	cfg.StreamRetry = time.Second
	cfg.StreamMaxRetries = 4
	b := newBus(t, cfg, 0x01)
	n := b.env(0x01).node
	// Rounds 0..4 at 1,2,4,8,8 (capped) seconds.
	if got, want := n.retryBudget(), 23*time.Second; got != want {
		t.Fatalf("retryBudget = %v, want %v", got, want)
	}
}

func TestStreamRetxRoundsHistogram(t *testing.T) {
	cfg := fastConfig()
	cfg.StreamRetry = 2 * time.Second
	cfg.StreamMaxRetries = 2
	b := newBus(t, cfg, 0x01, 0x02)
	b.run(10 * time.Second) // converge

	// Successful stream: zero consecutive-timeout rounds observed.
	sender := b.env(0x01).node
	if _, err := sender.SendReliable(0x02, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	b.run(5 * time.Second)
	h := sender.Metrics().Histogram("stream.retx.rounds")
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("after clean stream: count=%d max=%v, want 1 and 0", h.Count(), h.Max())
	}

	// Now sever the link: the stream must fail after exactly
	// StreamMaxRetries+1 rounds, and the histogram must record that
	// bounded worst case.
	b.drop = func(from, to packet.Address, _ []byte) bool { return true }
	if _, err := sender.SendReliable(0x02, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Backoff budget: 2+4+8 = 14 s for rounds 0..2 plus jitter.
	b.run(time.Minute)
	if h.Count() != 2 {
		t.Fatalf("failed stream not observed: count=%d", h.Count())
	}
	if got, want := h.Max(), float64(cfg.StreamMaxRetries+1); got != want {
		t.Fatalf("stream.retx.rounds max = %v, want bounded %v", got, want)
	}
	evs := b.env(0x01).events
	if len(evs) != 2 || evs[1].Err == nil {
		t.Fatalf("expected one success and one failure, got %+v", evs)
	}
}

// triggeredConfig is fastConfig plus the hardened routing behaviors.
func triggeredConfig() Config {
	cfg := fastConfig()
	cfg.TriggeredUpdates = true
	cfg.Routing.EntryTTL = 10 * time.Second
	cfg.Routing.Poisoning = true
	return cfg
}

func TestTriggeredWithdrawalOnExpiredNeighbor(t *testing.T) {
	// Chain D-A-B-C. When B (and with it C) falls silent, A expires the
	// whole branch after EntryTTL; with TriggeredUpdates that expiry
	// emits route.withdrawn events and an immediate triggered HELLO
	// whose poisoned rows kill D's routes through A right away.
	chain := []packet.Address{0x04, 0x01, 0x02, 0x03}
	cfg := triggeredConfig()
	cfg.Tracer = trace.New(8192)
	b := newBus(t, cfg, chain...)
	b.drop = chainDrop(chain)
	b.run(15 * time.Second)

	a := b.env(0x01).node
	d := b.env(0x04).node
	if _, ok := d.Table().NextHop(0x03); !ok {
		t.Fatal("chain never converged")
	}

	// The far branch dies silently.
	b.env(0x02).node.Stop()
	b.env(0x03).node.Stop()

	// Within one EntryTTL plus one route-check period A expires the
	// branch, triggers a beacon, and D's routes via A die with it.
	b.run(cfg.Routing.EntryTTL + cfg.Routing.EntryTTL/4 + time.Second)
	if _, ok := a.Table().NextHop(0x02); ok {
		t.Fatal("A still routes to dead B")
	}
	if _, ok := d.Table().NextHop(0x03); ok {
		t.Fatal("poisoned withdrawal did not reach D")
	}
	if a.Metrics().Counter("hello.triggered").Value() == 0 {
		t.Fatal("no triggered HELLO broadcast the withdrawal")
	}
	withdrawn := false
	for _, ev := range cfg.Tracer.Events() {
		if ev.Node == "0001" && ev.Kind == trace.KindRoute &&
			strings.Contains(ev.Detail, "route.withdrawn") {
			withdrawn = true
			break
		}
	}
	if !withdrawn {
		t.Fatal("no route.withdrawn event traced")
	}
}

func TestTriggeredWithdrawalOnStreamFailure(t *testing.T) {
	cfg := triggeredConfig()
	cfg.StreamRetry = time.Second
	cfg.StreamMaxRetries = 1
	b := newBus(t, cfg, 0x01, 0x02)
	b.run(10 * time.Second)

	a := b.env(0x01).node
	if _, ok := a.Table().NextHop(0x02); !ok {
		t.Fatal("pair never converged")
	}
	// Sever the link, then push a reliable stream into the void: retry
	// exhaustion is link-death evidence and must withdraw the neighbor
	// without waiting for HELLO expiry.
	b.drop = func(from, to packet.Address, _ []byte) bool { return true }
	if _, err := a.SendReliable(0x02, []byte("into the void")); err != nil {
		t.Fatal(err)
	}
	b.run(10 * time.Second)
	if _, ok := a.Table().NextHop(0x02); ok {
		t.Fatal("dead next hop still routable after stream retry exhaustion")
	}
	if a.Metrics().Counter("routes.withdrawn").Value() == 0 {
		t.Fatal("routes.withdrawn never counted")
	}
}

func TestTriggeredHelloRateLimited(t *testing.T) {
	cfg := triggeredConfig()
	b := newBus(t, cfg, 0x01)
	n := b.env(0x01).node
	// A burst of withdrawals within the gap costs at most one beacon.
	for i := 0; i < 10; i++ {
		n.triggeredHello()
	}
	if got := n.Metrics().Counter("hello.triggered").Value(); got != 1 {
		t.Fatalf("burst of 10 triggered %d HELLOs, want 1", got)
	}
	b.run(n.cfg.TriggeredHelloGap + time.Millisecond)
	n.triggeredHello()
	if got := n.Metrics().Counter("hello.triggered").Value(); got != 2 {
		t.Fatalf("after the gap: %d triggered HELLOs, want 2", got)
	}
}
