package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/loraphy"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// The core unit tests drive nodes over a loopback bus with programmable
// per-link frame loss, isolating protocol logic from the PHY model (which
// internal/netsim exercises against the real medium).

var t0 = time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

// bus is an idealized broadcast medium: every transmitted frame reaches
// every other node after its real airtime unless the drop function vetoes
// the (from, to) delivery.
type bus struct {
	sched *simtime.Scheduler
	envs  []*testEnv
	// drop decides per-link frame loss; nil means lossless.
	drop func(from, to packet.Address, frame []byte) bool
	busy bool // value returned by ChannelBusy
}

// testEnv adapts one node to the bus.
type testEnv struct {
	b        *bus
	node     *Node
	addr     packet.Address
	rng      *rand.Rand
	msgs     []AppMessage
	events   []StreamEvent
	phy      loraphy.Params
	txActive bool
}

func (e *testEnv) Now() time.Time { return e.b.sched.Now() }

func (e *testEnv) Schedule(d time.Duration, fn func()) func() {
	h := e.b.sched.MustAfter(d, fn)
	return func() { e.b.sched.Cancel(h) }
}

func (e *testEnv) Transmit(frame []byte) (time.Duration, error) {
	airtime := e.phy.MustAirtime(len(frame))
	data := append([]byte(nil), frame...)
	e.txActive = true
	e.b.sched.MustAfter(airtime, func() {
		e.txActive = false
		for _, other := range e.b.envs {
			if other == e || other.txActive {
				continue // half-duplex: a transmitting node misses frames
			}
			if e.b.drop != nil && e.b.drop(e.addr, other.addr, data) {
				continue
			}
			other.node.HandleFrame(data, RxInfo{RSSIDBm: -80, SNRDB: 10})
		}
		e.node.HandleTxDone()
	})
	return airtime, nil
}

func (e *testEnv) ChannelBusy() (bool, error) { return e.b.busy, nil }
func (e *testEnv) Deliver(msg AppMessage)     { e.msgs = append(e.msgs, msg) }
func (e *testEnv) StreamDone(ev StreamEvent)  { e.events = append(e.events, ev) }
func (e *testEnv) Rand() float64              { return e.rng.Float64() }

var _ Env = (*testEnv)(nil)

// newBus builds a bus with nodes at the given addresses, all using cfg
// (with per-node address substituted), started.
func newBus(t *testing.T, cfg Config, addrs ...packet.Address) *bus {
	t.Helper()
	b := &bus{sched: simtime.NewScheduler(t0)}
	for i, a := range addrs {
		c := cfg
		c.Address = a
		env := &testEnv{b: b, addr: a, rng: rand.New(rand.NewSource(int64(i) + 1))}
		n, err := NewNode(c, env)
		if err != nil {
			t.Fatal(err)
		}
		env.node = n
		env.phy = n.Config().Phy
		b.envs = append(b.envs, env)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// env returns the environment for the node with the given address.
func (b *bus) env(a packet.Address) *testEnv {
	for _, e := range b.envs {
		if e.addr == a {
			return e
		}
	}
	return nil
}

// run advances the simulation by d.
func (b *bus) run(d time.Duration) { b.sched.RunFor(d) }

// chainDrop returns a drop function that only lets adjacent addresses in
// the chain hear each other (a line topology on the loopback bus).
func chainDrop(chain []packet.Address) func(from, to packet.Address, frame []byte) bool {
	idx := make(map[packet.Address]int, len(chain))
	for i, a := range chain {
		idx[a] = i
	}
	return func(from, to packet.Address, _ []byte) bool {
		fi, ok1 := idx[from]
		ti, ok2 := idx[to]
		if !ok1 || !ok2 {
			return true
		}
		return abs(fi-ti) != 1
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// fastConfig returns a config with short timers so tests converge quickly.
func fastConfig() Config {
	return Config{
		HelloPeriod:    2 * time.Second,
		StreamRetry:    3 * time.Second,
		DutyCycleLimit: 1, // regulation off unless the test enables it
	}
}
