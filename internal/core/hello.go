package core

import (
	"time"

	"repro/internal/packet"
	"repro/internal/trace"
)

// helloTick broadcasts the routing table and schedules the next beacon.
func (n *Node) helloTick() {
	if n.stopped {
		return
	}
	n.sendHello()
	period := n.cfg.HelloPeriod
	if j := n.cfg.HelloJitter; j > 0 {
		// Uniform in [1-j, 1+j] times the period.
		period = time.Duration((1 - j + 2*j*n.env.Rand()) * float64(period))
	}
	n.helloTimer.Reset(period)
}

// sendHello enqueues the node's routing table as one or more HELLO
// broadcasts, led by a metric-0 self entry that carries the node's own
// advertised role. Tables larger than one frame are split across
// consecutive packets, mirroring how the prototype pages its table out.
func (n *Node) sendHello() {
	table := n.table.HelloEntries()
	entries := make([]packet.HelloEntry, 0, len(table)+1)
	entries = append(entries, packet.HelloEntry{
		Addr: n.cfg.Address, Metric: 0, Role: n.cfg.Role,
	})
	entries = append(entries, table...)
	// A sealed HELLO pays SecOverhead bytes of payload, so a secured mesh
	// pages its table in slightly smaller chunks.
	maxEntries := n.maxPayloadFor(packet.TypeHello) / packet.HelloEntryLen
	// Always send at least one HELLO, even with an empty table: it is
	// how neighbors discover this node in the first place.
	for first := true; first || len(entries) > 0; first = false {
		chunk := entries
		if len(chunk) > maxEntries {
			chunk = chunk[:maxEntries]
		}
		entries = entries[len(chunk):]
		payload, err := packet.MarshalHello(chunk)
		if err != nil {
			n.reg.Counter("drop.marshal").Inc()
			return
		}
		p := &packet.Packet{
			Dst:     packet.Broadcast,
			Src:     n.cfg.Address,
			Type:    packet.TypeHello,
			Payload: payload,
		}
		if err := n.enqueue(p); err != nil {
			// Queue pressure: the next beacon will carry the table.
			return
		}
		n.reg.Counter("hello.sent").Inc()
	}
}

// expiryTick drops stale routes and reschedules itself. With
// TriggeredUpdates, an expired destination is treated as a dead next
// hop: every route through it is withdrawn immediately and a triggered
// HELLO propagates the poisons, instead of each neighbor waiting out
// its own EntryTTL.
func (n *Node) expiryTick() {
	if n.stopped {
		return
	}
	dead := n.table.ExpireStale(n.env.Now())
	if len(dead) > 0 {
		n.reg.Counter("routes.expired").Add(uint64(len(dead)))
		if n.cfg.TriggeredUpdates {
			for _, d := range dead {
				if n.cfg.Tracer != nil {
					n.cfg.Tracer.Emit(n.env.Now(), n.cfg.Address.String(), trace.KindRoute,
						"route.withdrawn dst=%v reason=expired", d)
				}
				n.withdrawNeighbor(d, "routes via expired neighbor")
			}
			n.triggeredHello()
		}
	}
	n.reg.Gauge("routes.count").Set(float64(n.table.Len()))
	n.expiryTimer.Reset(n.routeCheckPeriod())
}

// withdrawNextHop withdraws every route through dst's current next hop
// (triggered updates). A destination with no usable route is a no-op.
func (n *Node) withdrawNextHop(dst packet.Address, reason string) {
	e, ok := n.table.Lookup(dst)
	if !ok || e.Poisoned() {
		return
	}
	n.withdrawNeighbor(e.Via, reason)
	n.triggeredHello()
}

// withdrawNeighbor poisons (or removes) every route via the given
// neighbor, emitting a route.withdrawn event per destination.
func (n *Node) withdrawNeighbor(via packet.Address, reason string) {
	dead := n.table.RemoveNeighbor(n.env.Now(), via)
	if len(dead) == 0 {
		return
	}
	n.reg.Counter("routes.withdrawn").Add(uint64(len(dead)))
	if n.cfg.Tracer != nil {
		for _, d := range dead {
			n.cfg.Tracer.Emit(n.env.Now(), n.cfg.Address.String(), trace.KindRoute,
				"route.withdrawn dst=%v via=%v reason=%s", d, via, reason)
		}
	}
	n.reg.Gauge("routes.count").Set(float64(n.table.Len()))
}

// triggeredHello broadcasts the table out of cycle so withdrawals reach
// neighbors within a frame time. Rate-limited by TriggeredHelloGap: a
// burst of withdrawals costs one beacon, and a flapping link cannot turn
// the node into a beacon firehose.
func (n *Node) triggeredHello() {
	now := n.env.Now()
	if !n.lastTriggered.IsZero() && now.Sub(n.lastTriggered) < n.cfg.TriggeredHelloGap {
		return
	}
	n.lastTriggered = now
	n.reg.Counter("hello.triggered").Inc()
	n.sendHello()
}
