package core

import (
	"time"

	"repro/internal/packet"
)

// helloTick broadcasts the routing table and schedules the next beacon.
func (n *Node) helloTick() {
	if n.stopped {
		return
	}
	n.sendHello()
	period := n.cfg.HelloPeriod
	if j := n.cfg.HelloJitter; j > 0 {
		// Uniform in [1-j, 1+j] times the period.
		period = time.Duration((1 - j + 2*j*n.env.Rand()) * float64(period))
	}
	n.helloCancel = n.env.Schedule(period, n.helloTick)
}

// sendHello enqueues the node's routing table as one or more HELLO
// broadcasts, led by a metric-0 self entry that carries the node's own
// advertised role. Tables larger than one frame are split across
// consecutive packets, mirroring how the prototype pages its table out.
func (n *Node) sendHello() {
	table := n.table.HelloEntries()
	entries := make([]packet.HelloEntry, 0, len(table)+1)
	entries = append(entries, packet.HelloEntry{
		Addr: n.cfg.Address, Metric: 0, Role: n.cfg.Role,
	})
	entries = append(entries, table...)
	// Always send at least one HELLO, even with an empty table: it is
	// how neighbors discover this node in the first place.
	for first := true; first || len(entries) > 0; first = false {
		chunk := entries
		if len(chunk) > packet.MaxHelloEntries {
			chunk = chunk[:packet.MaxHelloEntries]
		}
		entries = entries[len(chunk):]
		payload, err := packet.MarshalHello(chunk)
		if err != nil {
			n.reg.Counter("drop.marshal").Inc()
			return
		}
		p := &packet.Packet{
			Dst:     packet.Broadcast,
			Src:     n.cfg.Address,
			Type:    packet.TypeHello,
			Payload: payload,
		}
		if err := n.enqueue(p); err != nil {
			// Queue pressure: the next beacon will carry the table.
			return
		}
		n.reg.Counter("hello.sent").Inc()
	}
}

// expiryTick drops stale routes and reschedules itself.
func (n *Node) expiryTick() {
	if n.stopped {
		return
	}
	dead := n.table.ExpireStale(n.env.Now())
	if len(dead) > 0 {
		n.reg.Counter("routes.expired").Add(uint64(len(dead)))
	}
	n.reg.Gauge("routes.count").Set(float64(n.table.Len()))
	n.expiryCancel = n.env.Schedule(n.routeCheckPeriod(), n.expiryTick)
}
