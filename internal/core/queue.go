package core

import (
	"fmt"
	"time"

	"repro/internal/packet"
	"repro/internal/span"
	"repro/internal/trace"
)

// priority orders packets in the transmit queue: routing control first
// (the mesh depends on fresh tables), then stream control (ACK/LOST/SYNC,
// which unblock in-flight transfers), then data.
type priority int

const (
	prioRouting priority = iota + 1
	prioControl
	prioData
	prioLevels = 3
)

func priorityFor(t packet.Type) priority {
	switch t {
	case packet.TypeHello:
		return prioRouting
	case packet.TypeAck, packet.TypeLost, packet.TypeSync, packet.TypeSlotBeacon:
		return prioControl
	default:
		return prioData
	}
}

// queued is one packet waiting to transmit, stamped with its enqueue time
// so the queue.wait_ms histogram can measure head-of-line delay.
type queued struct {
	p  *packet.Packet
	at time.Time
}

// txQueue is a fixed-capacity, three-level priority FIFO.
type txQueue struct {
	levels [prioLevels][]queued
	size   int
	cap    int
}

func newTxQueue(capacity int) *txQueue {
	return &txQueue{cap: capacity}
}

func (q *txQueue) len() int { return q.size }

// push enqueues p, rejecting when full. Routing packets may evict the
// newest data packet when full: a mesh that stops beaconing under load
// loses all routes, which is strictly worse than losing one datagram.
func (q *txQueue) push(p *packet.Packet, at time.Time) error {
	prio := priorityFor(p.Type)
	if q.size >= q.cap {
		if prio != prioRouting {
			return fmt.Errorf("%w: %d packets queued", ErrQueueFull, q.size)
		}
		if !q.evictNewestData() {
			return fmt.Errorf("%w: %d control packets queued", ErrQueueFull, q.size)
		}
	}
	idx := int(prio) - 1
	q.levels[idx] = append(q.levels[idx], queued{p: p, at: at})
	q.size++
	return nil
}

// evictNewestData drops the most recently queued data packet to make room.
func (q *txQueue) evictNewestData() bool {
	idx := int(prioData) - 1
	lvl := q.levels[idx]
	if len(lvl) == 0 {
		return false
	}
	lvl[len(lvl)-1] = queued{}
	q.levels[idx] = lvl[:len(lvl)-1]
	q.size--
	return true
}

// peek returns the next packet to transmit without removing it.
func (q *txQueue) peek() (*packet.Packet, bool) {
	for i := range q.levels {
		if len(q.levels[i]) > 0 {
			return q.levels[i][0].p, true
		}
	}
	return nil, false
}

// pop removes and returns the next packet along with its enqueue time.
func (q *txQueue) pop() (*packet.Packet, time.Time, bool) {
	for i := range q.levels {
		if len(q.levels[i]) > 0 {
			e := q.levels[i][0]
			q.levels[i][0] = queued{}
			q.levels[i] = q.levels[i][1:]
			q.size--
			return e.p, e.at, true
		}
	}
	return nil, time.Time{}, false
}

// enqueue validates, queues, and pumps a packet assembled by the node.
func (n *Node) enqueue(p *packet.Packet) error {
	if n.stopped {
		return ErrStopped
	}
	// Stamp origin security state before Validate: WireLen depends on it.
	// Forwarded packets arrive already stamped — their counter belongs to
	// the origin and must survive the hop untouched, or every forwarder
	// would change the frame's identity (and its MIC inputs).
	if n.sec != nil && !p.Secured {
		p.Secured = true
		p.SecFlags = packet.SecFlagEncrypted
		p.Counter = n.sec.NextCounter()
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := n.queue.push(p, n.env.Now()); err != nil {
		n.reg.Counter("drop.queue_full").Inc()
		if p.Type != packet.TypeHello {
			n.tracePacket(trace.KindDrop, p, "drop: queue full (%d queued)", n.queue.len())
			n.recordSpan(p, span.SegDrop, 0, "queue_full")
		}
		return err
	}
	if p.Type != packet.TypeHello {
		n.recordSpan(p, span.SegEnqueue, 0, p.Type.String())
	}
	n.ins.queueDepth.Set(float64(n.queue.len()))
	n.pump(0)
	return nil
}

// pump tries to start transmitting the head-of-queue packet after delay.
// It is idempotent: at most one pending pump timer exists, and nothing
// happens while a transmission is in flight (HandleTxDone re-pumps).
func (n *Node) pump(delay time.Duration) {
	if n.stopped || n.transmitting {
		return
	}
	if n.pumpArmed {
		if delay > 0 {
			// An earlier pump is already scheduled; it will run first.
			return
		}
		n.pumpTimer.Stop()
		n.pumpArmed = false
	}
	if delay > 0 {
		n.pumpArmed = true
		n.pumpTimer.Reset(delay)
		return
	}
	n.transmitHead()
}

// transmitHead performs the duty-cycle and CAD checks and starts the
// head-of-queue transmission.
func (n *Node) transmitHead() {
	head, ok := n.queue.peek()
	if !ok {
		return
	}
	// Encode into the node's reusable buffer: Env.Transmit must not
	// retain the frame past the call, so one buffer serves every
	// transmission this node ever makes.
	frame, err := packet.AppendMarshal(n.txBuf[:0], head)
	if err == nil {
		n.txBuf = frame
		if n.sec != nil && head.Secured {
			// Seal in place. Deterministic, so re-marshalling the same
			// head after a duty-cycle deferral reproduces the same bytes.
			start := time.Now()
			err = n.sec.SealFrame(frame, head)
			n.ins.secSealNs.Observe(float64(time.Since(start)))
		}
	}
	if err != nil {
		// The packet was validated at enqueue; treat as a bug signal,
		// drop it, and keep the queue moving.
		n.queue.pop()
		n.reg.Counter("drop.marshal").Inc()
		n.tracePacket(trace.KindDrop, head, "drop: marshal failed: %v", err)
		n.recordSpan(head, span.SegDrop, 0, "marshal")
		n.pump(0)
		return
	}
	airtime, err := n.cfg.Phy.Airtime(len(frame))
	if err != nil {
		n.queue.pop()
		n.reg.Counter("drop.marshal").Inc()
		n.tracePacket(trace.KindDrop, head, "drop: airtime rejected: %v", err)
		n.recordSpan(head, span.SegDrop, 0, "airtime")
		n.pump(0)
		return
	}
	now := n.env.Now()
	if !n.duty.CanTransmit(now, airtime) {
		at, err := n.duty.NextAllowed(now, airtime)
		if err != nil {
			// The frame alone exceeds the whole budget; it can never
			// be sent legally.
			n.queue.pop()
			n.reg.Counter("drop.dutycycle").Inc()
			n.tracePacket(trace.KindDrop, head, "drop: frame airtime %v exceeds whole duty budget", airtime)
			n.recordSpan(head, span.SegDrop, 0, "dutycycle")
			n.pump(0)
			return
		}
		n.reg.Counter("dutycycle.deferrals").Inc()
		n.ins.dutyUtil.Set(n.duty.Utilization(now))
		n.pump(at.Sub(now) + time.Millisecond)
		return
	}
	if n.cfg.TxGate != nil {
		// Scheduled access (the slotted strategy): outside the node's
		// transmission window the frame waits for clearance. Runs after
		// the duty check so deferred frames never double-spend budget
		// probes, and before CAD so listen-before-talk happens inside the
		// granted window.
		if wait := n.cfg.TxGate.Clearance(now, head.Type, airtime); wait > 0 {
			n.reg.Counter("txgate.deferrals").Inc()
			n.pump(wait)
			return
		}
	}
	if n.cfg.CAD {
		busy, err := n.env.ChannelBusy()
		if err == nil && busy && n.cadTries < n.cfg.CADMaxTries {
			n.cadTries++
			n.reg.Counter("cad.deferrals").Inc()
			backoff := time.Duration((1 + n.env.Rand()) * float64(n.cfg.CADBackoff))
			n.pump(backoff)
			return
		}
		n.cadTries = 0
	}
	_, enqueuedAt, _ := n.queue.pop()
	n.ins.queueDepth.Set(float64(n.queue.len()))
	if _, err := n.env.Transmit(frame); err != nil {
		n.reg.Counter("drop.txerror").Inc()
		n.tracePacket(trace.KindDrop, head, "drop: radio transmit error: %v", err)
		n.recordSpan(head, span.SegDrop, 0, "txerror")
		n.pump(0)
		return
	}
	n.duty.Record(now, airtime)
	n.transmitting = true
	n.ins.txFrames.Inc()
	n.txTypeCounter(head.Type).Inc()
	n.ins.txBytes.Add(uint64(len(frame)))
	if head.Secured {
		n.ins.secSealed.Inc()
		n.ins.secOverheadBytes.Add(uint64(packet.SecOverhead))
	}
	n.ins.txAirtimeMs.ObserveDuration(airtime)
	if !enqueuedAt.IsZero() {
		n.ins.queueWaitMs.ObserveDuration(now.Sub(enqueuedAt))
	}
	n.ins.dutyUtil.Set(n.duty.Utilization(now))
	if n.spans != nil && head.Type != packet.TypeHello {
		id := trace.TraceID(head.TraceID())
		if !enqueuedAt.IsZero() {
			n.spans.Record(now, n.addrStr, id, span.SegQueueWait, now.Sub(enqueuedAt), "")
		}
		n.spans.Record(now, n.addrStr, id, span.SegAirtime, airtime, head.Type.String())
	}
	if n.traceOn && head.Type != packet.TypeHello {
		n.tracePacket(trace.KindTx, head, "tx %v %v->%v via %v, %d bytes, airtime %v",
			head.Type, head.Src, head.Dst, head.Via, len(frame), airtime)
	}
}

// HandleTxDone is called by the host when the node's transmission ends.
func (n *Node) HandleTxDone() {
	if n.stopped {
		return
	}
	n.transmitting = false
	gap := n.cfg.InterFrameGap
	if gap <= 0 {
		n.pump(0)
		return
	}
	// Jitter the inter-frame gap ±50% so forwarders on a shared path
	// don't lock step into repeated collisions.
	n.pump(time.Duration((0.5 + n.env.Rand()) * float64(gap)))
}

// fingerprint is a routed packet's end-to-end identity (everything but
// the hop-local via field) for the forwarding loop-breaker — the same
// hash that serves as the packet's trace ID.
func fingerprint(p *packet.Packet) uint64 { return p.TraceID() }

// SendBeacon enqueues one strategy control beacon: a link-local
// broadcast frame of the given type (e.g. TypeSlotBeacon) that is never
// forwarded. Strategies layered on this engine use it for their own
// periodic control traffic; it rides the control priority level.
func (n *Node) SendBeacon(t packet.Type, payload []byte) error {
	if n.stopped {
		return ErrStopped
	}
	if t.Routed() {
		return fmt.Errorf("core: beacon type %v is routed; beacons are link-local", t)
	}
	p := &packet.Packet{
		Dst:     packet.Broadcast,
		Src:     n.cfg.Address,
		Type:    t,
		Payload: append([]byte(nil), payload...),
	}
	return n.enqueue(p)
}
