package core

import (
	"testing"
	"time"

	"repro/internal/packet"
)

func mkPacket(typ packet.Type, tag byte) *packet.Packet {
	p := &packet.Packet{Dst: 2, Src: 1, Type: typ, Payload: []byte{tag}}
	if typ.Routed() {
		p.Via = 2
	}
	return p
}

func TestTxQueuePriorityOrder(t *testing.T) {
	q := newTxQueue(16)
	// Enqueue low priority first.
	if err := q.push(mkPacket(packet.TypeData, 1), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkPacket(packet.TypeAck, 2), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkPacket(packet.TypeHello, 3), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkPacket(packet.TypeData, 4), time.Time{}); err != nil {
		t.Fatal(err)
	}
	wantOrder := []packet.Type{packet.TypeHello, packet.TypeAck, packet.TypeData, packet.TypeData}
	wantTags := []byte{3, 2, 1, 4} // FIFO within a priority level
	for i, want := range wantOrder {
		p, _, ok := q.pop()
		if !ok {
			t.Fatalf("queue empty at %d", i)
		}
		if p.Type != want || p.Payload[0] != wantTags[i] {
			t.Errorf("pop %d = %v tag %d, want %v tag %d", i, p.Type, p.Payload[0], want, wantTags[i])
		}
	}
	if _, _, ok := q.pop(); ok {
		t.Error("pop on empty queue returned a packet")
	}
}

func TestTxQueuePeekDoesNotRemove(t *testing.T) {
	q := newTxQueue(4)
	if err := q.push(mkPacket(packet.TypeData, 7), time.Time{}); err != nil {
		t.Fatal(err)
	}
	p1, ok1 := q.peek()
	p2, ok2 := q.peek()
	if !ok1 || !ok2 || p1 != p2 {
		t.Error("peek removed or changed the head")
	}
	if q.len() != 1 {
		t.Errorf("len after peeks = %d, want 1", q.len())
	}
}

func TestTxQueuePopReturnsEnqueueTime(t *testing.T) {
	q := newTxQueue(4)
	at := time.Date(2022, 5, 10, 12, 0, 0, 0, time.UTC)
	if err := q.push(mkPacket(packet.TypeData, 1), at); err != nil {
		t.Fatal(err)
	}
	_, got, ok := q.pop()
	if !ok || !got.Equal(at) {
		t.Errorf("pop enqueue time = %v, want %v", got, at)
	}
}

func TestTxQueueCapacityAndEviction(t *testing.T) {
	q := newTxQueue(3)
	for i := 0; i < 3; i++ {
		if err := q.push(mkPacket(packet.TypeData, byte(i)), time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	// Data beyond capacity is rejected.
	if err := q.push(mkPacket(packet.TypeData, 9), time.Time{}); err == nil {
		t.Error("overfull data push: want error")
	}
	// Control (non-routing) beyond capacity is rejected too.
	if err := q.push(mkPacket(packet.TypeAck, 9), time.Time{}); err == nil {
		t.Error("overfull control push: want error")
	}
	// A HELLO evicts the newest data packet.
	if err := q.push(mkPacket(packet.TypeHello, 9), time.Time{}); err != nil {
		t.Fatalf("hello should evict data: %v", err)
	}
	if q.len() != 3 {
		t.Errorf("len = %d after eviction, want 3", q.len())
	}
	// First out is the hello, then data 0, 1 (data 2 was evicted).
	p, _, _ := q.pop()
	if p.Type != packet.TypeHello {
		t.Errorf("head = %v, want HELLO", p.Type)
	}
	p, _, _ = q.pop()
	if p.Payload[0] != 0 {
		t.Errorf("second = tag %d, want 0", p.Payload[0])
	}
	p, _, _ = q.pop()
	if p.Payload[0] != 1 {
		t.Errorf("third = tag %d, want 1 (tag 2 evicted)", p.Payload[0])
	}
}

func TestTxQueueHelloCannotEvictControl(t *testing.T) {
	q := newTxQueue(2)
	if err := q.push(mkPacket(packet.TypeAck, 1), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkPacket(packet.TypeSync, 2), time.Time{}); err != nil {
		t.Fatal(err)
	}
	// Queue full of control packets: even a HELLO is refused rather than
	// dropping stream control.
	if err := q.push(mkPacket(packet.TypeHello, 3), time.Time{}); err == nil {
		t.Error("hello evicted stream control: want error")
	}
}

func TestHelloPagination(t *testing.T) {
	// A routing table larger than one frame's 62 entries must go out as
	// multiple HELLO packets covering every row.
	b := newBus(t, fastConfig(), 1)
	n := b.env(1).node
	total := packet.MaxHelloEntries + 20
	for i := 0; i < total; i++ {
		n.Table().ApplyHello(b.sched.Now(), packet.Address(0x100+i), packet.RoleDefault, 0, nil)
	}
	// Pretend a transmission is in flight so the pump leaves both HELLO
	// pages in the queue for inspection.
	n.transmitting = true
	n.sendHello()
	var frames []*packet.Packet
	for {
		p, _, ok := n.queue.pop()
		if !ok {
			break
		}
		if p.Type == packet.TypeHello {
			frames = append(frames, p)
		}
	}
	if len(frames) != 2 {
		t.Fatalf("table of %d rows went out in %d HELLOs, want 2", total, len(frames))
	}
	seen := map[packet.Address]bool{}
	for _, f := range frames {
		entries, err := packet.UnmarshalHello(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			seen[e.Addr] = true
		}
	}
	// total table rows plus the metric-0 self entry.
	if len(seen) != total+1 {
		t.Errorf("paginated HELLOs covered %d distinct rows, want %d", len(seen), total+1)
	}
	if !seen[n.Address()] {
		t.Error("HELLO pages missing the self entry")
	}
}

func TestFingerprintDistinguishesPackets(t *testing.T) {
	a := &packet.Packet{Dst: 1, Src: 2, Type: packet.TypeData, Via: 3, Payload: []byte("x")}
	b := a.Clone()
	if fingerprint(a) != fingerprint(b) {
		t.Error("identical packets have different fingerprints")
	}
	// Via is hop-local and must not affect identity.
	b.Via = 9
	if fingerprint(a) != fingerprint(b) {
		t.Error("via change altered the end-to-end fingerprint")
	}
	c := a.Clone()
	c.Payload = []byte("y")
	if fingerprint(a) == fingerprint(c) {
		t.Error("different payloads share a fingerprint")
	}
	d := a.Clone()
	d.Number = 7
	if fingerprint(a) == fingerprint(d) {
		t.Error("different stream numbers share a fingerprint")
	}
}
