package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/meshsec"
	"repro/internal/packet"
	"repro/internal/simtime"
)

var testNetKey = meshsec.Key{
	0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
	0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
}

// newSecBus is newBus with per-node security links derived from one
// network key. A nil key for an address leaves that node plaintext,
// which is how the mixed-mesh tests model an unprovisioned device.
func newSecBus(t *testing.T, cfg Config, key *meshsec.Key, plaintext map[packet.Address]bool, addrs ...packet.Address) *bus {
	t.Helper()
	b := &bus{sched: simtime.NewScheduler(t0)}
	for i, a := range addrs {
		c := cfg
		c.Address = a
		if key != nil && !plaintext[a] {
			c.Security = meshsec.NewLink(*key, a)
		}
		env := &testEnv{b: b, addr: a, rng: rand.New(rand.NewSource(int64(i) + 1))}
		n, err := NewNode(c, env)
		if err != nil {
			t.Fatal(err)
		}
		env.node = n
		env.phy = n.Config().Phy
		b.envs = append(b.envs, env)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func counter(t *testing.T, e *testEnv, name string) uint64 {
	t.Helper()
	return e.node.Metrics().Counter(name).Value()
}

// TestSecuredMultiHopDelivery proves the full secured path: seal at the
// origin, hop-by-hop forward with Via rewrite, open at the destination.
func TestSecuredMultiHopDelivery(t *testing.T) {
	chain := []packet.Address{1, 2, 3}
	b := newSecBus(t, fastConfig(), &testNetKey, nil, chain...)
	b.drop = chainDrop(chain)
	b.run(30 * time.Second)

	src, dst := b.env(1), b.env(3)
	payload := []byte("secured hop by hop")
	if err := src.node.Send(3, payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	b.run(20 * time.Second)

	if len(dst.msgs) != 1 {
		t.Fatalf("destination got %d messages, want 1", len(dst.msgs))
	}
	if !bytes.Equal(dst.msgs[0].Payload, payload) {
		t.Fatalf("payload = %q, want %q", dst.msgs[0].Payload, payload)
	}
	if got := counter(t, src, "sec.tx.sealed"); got == 0 {
		t.Error("origin sealed no frames")
	}
	if got := counter(t, dst, "sec.rx.opened"); got == 0 {
		t.Error("destination opened no frames")
	}
	// The relay re-seals the origin's frame byte-identically after the
	// Via rewrite; it must also have opened frames (HELLOs at minimum).
	if got := counter(t, b.env(2), "fwd.frames"); got == 0 {
		t.Error("relay forwarded no frames")
	}
}

// TestSecuredTraceIDDistinctPerSend is the regression for the dedup
// hazard documented on AppMessage.Trace: on a secured mesh, two distinct
// sends of byte-identical payloads must carry different trace IDs
// (the origin frame counter keys the ID).
func TestSecuredTraceIDDistinctPerSend(t *testing.T) {
	b := newSecBus(t, fastConfig(), &testNetKey, nil, 1, 2)
	b.run(20 * time.Second)

	src, dst := b.env(1), b.env(2)
	payload := []byte("identical reading")
	if err := src.node.Send(2, payload); err != nil {
		t.Fatalf("first Send: %v", err)
	}
	b.run(5 * time.Second)
	if err := src.node.Send(2, payload); err != nil {
		t.Fatalf("second Send: %v", err)
	}
	b.run(5 * time.Second)

	if len(dst.msgs) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(dst.msgs))
	}
	if dst.msgs[0].Trace == dst.msgs[1].Trace {
		t.Fatalf("identical payloads from one sender share trace ID %v; counter not mixed in", dst.msgs[0].Trace)
	}
}

// TestSecuredReliableTraceIDDistinct extends the regression to the
// reliable transport: two identical SendReliable payloads (single-packet
// and multi-chunk) must deliver with distinct trace IDs.
func TestSecuredReliableTraceIDDistinct(t *testing.T) {
	b := newSecBus(t, fastConfig(), &testNetKey, nil, 1, 2)
	b.run(20 * time.Second)
	src, dst := b.env(1), b.env(2)

	single := []byte("one frame worth")
	large := bytes.Repeat([]byte("chunky"), 200) // > one frame, identical twice
	for _, payload := range [][]byte{single, single, large, large} {
		if _, err := src.node.SendReliable(2, payload); err != nil {
			t.Fatalf("SendReliable: %v", err)
		}
		b.run(30 * time.Second)
	}
	if len(dst.msgs) != 4 {
		t.Fatalf("got %d deliveries, want 4", len(dst.msgs))
	}
	if dst.msgs[0].Trace == dst.msgs[1].Trace {
		t.Error("identical single-packet reliable payloads share a trace ID")
	}
	if dst.msgs[2].Trace == dst.msgs[3].Trace {
		t.Error("identical multi-chunk reliable payloads share a trace ID")
	}
}

// TestSecuredRejectsReplayAndTamper injects a captured frame back at the
// receiver (replay) and a bit-flipped copy (forgery); both must die with
// the right sec.drop counter and no duplicate app delivery.
func TestSecuredRejectsReplayAndTamper(t *testing.T) {
	b := newSecBus(t, fastConfig(), &testNetKey, nil, 1, 2)
	var captured [][]byte
	b.drop = func(from, to packet.Address, frame []byte) bool {
		if from == 1 && to == 2 {
			captured = append(captured, append([]byte(nil), frame...))
		}
		return false
	}
	b.run(20 * time.Second)

	src, dst := b.env(1), b.env(2)
	if err := src.node.Send(2, []byte("capture me")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	b.run(10 * time.Second)
	if len(dst.msgs) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(dst.msgs))
	}
	if len(captured) == 0 {
		t.Fatal("captured no frames")
	}

	replays := counter(t, dst, "sec.drop.replay")
	auths := counter(t, dst, "sec.drop.auth")
	for _, f := range captured {
		dst.node.HandleFrame(f, RxInfo{})
	}
	if got := counter(t, dst, "sec.drop.replay"); got != replays+uint64(len(captured)) {
		t.Errorf("sec.drop.replay = %d after %d replays (was %d)", got, len(captured), replays)
	}

	flipped := append([]byte(nil), captured[len(captured)-1]...)
	flipped[len(flipped)-1] ^= 0x01 // corrupt the MIC
	dst.node.HandleFrame(flipped, RxInfo{})
	if got := counter(t, dst, "sec.drop.auth"); got != auths+1 {
		t.Errorf("sec.drop.auth = %d, want %d", got, auths+1)
	}
	if len(dst.msgs) != 1 {
		t.Fatalf("forged/replayed traffic reached the app: %d deliveries", len(dst.msgs))
	}
}

// TestSecuredMeshIgnoresPlaintextNode runs an unprovisioned (plaintext)
// node alongside a secured pair: its HELLOs must never enter the secured
// nodes' routing tables, so the table-poisoning hole is closed.
func TestSecuredMeshIgnoresPlaintextNode(t *testing.T) {
	b := newSecBus(t, fastConfig(), &testNetKey, map[packet.Address]bool{3: true}, 1, 2, 3)
	b.run(30 * time.Second)

	for _, a := range []packet.Address{1, 2} {
		e := b.env(a)
		if _, ok := e.node.Table().NextHop(3); ok {
			t.Errorf("node %v learned a route to the plaintext node", a)
		}
		if got := counter(t, e, "sec.drop.legacy"); got == 0 {
			t.Errorf("node %v dropped no plaintext frames", a)
		}
	}
	// The secured pair still converged with each other.
	if _, ok := b.env(1).node.Table().NextHop(2); !ok {
		t.Error("secured nodes failed to converge with each other")
	}
	// Conversely, secured frames are noise to the plaintext node.
	if got := counter(t, b.env(3), "rx.corrupt"); got == 0 {
		t.Error("plaintext node counted no secured frames as corrupt")
	}
}

// TestRekeyDelivery exercises the in-band rotation path: a typed rekey
// command sent under the old key rotates the receiver, which keeps
// accepting old-key frames (prev-key fallback) until the sender rotates
// too.
func TestRekeyDelivery(t *testing.T) {
	b := newSecBus(t, fastConfig(), &testNetKey, nil, 1, 2)
	b.run(20 * time.Second)
	src, dst := b.env(1), b.env(2)

	newKey := meshsec.Key{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6}
	// Stage the new key on the sender first — the controller's stage wave
	// does this mesh-wide — so the receiver's report, sealed under the
	// key it just rotated to, still authenticates here.
	src.node.Config().Security.Stage(newKey)
	cmd := control.Command{Op: control.OpRekey, Seq: 7, KeyEpoch: 1, Key: newKey}
	if err := src.node.Send(2, control.MarshalCommand(cmd)); err != nil {
		t.Fatalf("Send rekey: %v", err)
	}
	b.run(10 * time.Second)

	if got := counter(t, dst, "sec.rekey.applied"); got != 1 {
		t.Fatalf("sec.rekey.applied = %d, want 1", got)
	}
	if len(dst.msgs) != 0 {
		t.Fatalf("rekey command leaked to the app (%d deliveries)", len(dst.msgs))
	}
	if dst.node.Config().Security.NetKey() != newKey {
		t.Fatal("receiver did not install the new key")
	}
	// The node answered with a control report carrying the command's seq
	// and its new key epoch; with no controller chained it surfaces as an
	// ordinary app delivery at the sender.
	if len(src.msgs) != 1 {
		t.Fatalf("sender got %d deliveries, want 1 control report", len(src.msgs))
	}
	rep, ok := control.ParseReport(src.msgs[0].Payload)
	if !ok {
		t.Fatalf("sender delivery is not a control report: %x", src.msgs[0].Payload)
	}
	if rep.Op != control.OpRekey || rep.Seq != 7 || rep.Status != control.StatusOK || rep.KeyEpoch != 1 {
		t.Fatalf("report = %+v, want ok rekey ack seq=7 keyepoch=1", rep)
	}

	// Old-key traffic still flows (prev-key fallback) until the sender
	// rotates; then new-key traffic flows too.
	if err := src.node.Send(2, []byte("still on old key")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	b.run(10 * time.Second)
	if len(dst.msgs) != 1 {
		t.Fatalf("old-key frame dropped after rotation: %d deliveries", len(dst.msgs))
	}
	src.node.Config().Security.Rotate(newKey)
	if err := src.node.Send(2, []byte("now on new key")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	b.run(10 * time.Second)
	if len(dst.msgs) != 2 {
		t.Fatalf("new-key frame dropped: %d deliveries", len(dst.msgs))
	}
}

// TestSecuredPayloadCapacity checks that a secured node refuses payloads
// that would no longer fit once the security header and MIC are added.
func TestSecuredPayloadCapacity(t *testing.T) {
	b := newSecBus(t, fastConfig(), &testNetKey, nil, 1, 2)
	src := b.env(1)
	max := packet.MaxPayload(packet.TypeData)
	if err := src.node.Send(2, make([]byte, max)); err == nil {
		t.Errorf("secured Send accepted %d bytes; the sealed frame cannot fit", max)
	}
	b.run(20 * time.Second)
	if err := src.node.Send(2, make([]byte, max-packet.SecOverhead)); err != nil {
		t.Errorf("secured Send rejected a payload that fits: %v", err)
	}
}

// TestSecurityConfigAddressMismatch rejects a link keyed for a different
// address than the node's at construction time.
func TestSecurityConfigAddressMismatch(t *testing.T) {
	cfg := fastConfig()
	cfg.Address = 7
	cfg.Security = meshsec.NewLink(testNetKey, 8)
	if _, err := NewNode(cfg, &testEnv{b: &bus{sched: simtime.NewScheduler(t0)}, rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("NewNode accepted a security link keyed for another address")
	}
}
