package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/packet"
	"repro/internal/span"
	"repro/internal/trace"
)

// Reliable large-payload transport.
//
// Payloads that fit one frame travel as a single DATA_ACK packet with an
// end-to-end ACK and retransmission. Larger payloads are chunked into a
// stream: the sender opens it with SYNC (Number = chunk count, payload =
// total byte length), the receiver acknowledges, and XL_DATA chunks flow
// under a go-back-N window with cumulative ACKs (window 1 reproduces the
// prototype's stop-and-wait). A receiver that observes a sequence gap
// requests the missing chunk with LOST. Senders retransmit on timeout and
// give up after StreamMaxRetries rounds.

// maxChunk is the data bytes per XL_DATA packet on a plaintext mesh.
var maxChunk = packet.MaxPayload(packet.TypeXLData)

// MaxReliablePayload is the largest payload SendReliable accepts on a
// plaintext mesh: 65535 chunks of maxChunk bytes. A secured node's limit
// is smaller (sealing costs packet.SecOverhead bytes per chunk).
var MaxReliablePayload = 65535 * maxChunk

// chunkSize is the data bytes per XL_DATA packet for this node's
// security mode. Both ends compute the same value because security is a
// network-wide property (a mixed mesh cannot interoperate anyway).
func (n *Node) chunkSize() int { return n.maxPayloadFor(packet.TypeXLData) }

// outMode selects the sender-side reliability machinery.
type outMode int

const (
	modeSingle outMode = iota + 1 // one DATA_ACK packet
	modeStream                    // SYNC + XL_DATA chunks
)

// outStream is the sender-side state of one reliable transfer.
type outStream struct {
	id     uint8
	dst    packet.Address
	mode   outMode
	chunks [][]byte // 1-based: chunk k is chunks[k-1]
	total  int      // total payload bytes

	synced    bool // SYNC acknowledged (modeStream)
	base      int  // lowest unacknowledged chunk (1-based)
	next      int  // next chunk index to transmit
	maxSent   int  // highest chunk index ever transmitted
	rounds    int  // consecutive timeout rounds
	maxRounds int  // worst consecutive-timeout run over the stream's life
	retrans   int  // total chunk retransmissions

	startedAt   time.Time
	retryCancel func()
	fillCancel  func()
}

// inKey identifies an incoming transfer.
type inKey struct {
	src packet.Address
	id  uint8
}

// inStream is the receiver-side state of one reliable transfer.
type inStream struct {
	total        int // expected chunk count
	totalBytes   int // expected payload bytes (from SYNC)
	chunks       [][]byte
	nextExpected int // lowest missing chunk (1-based)
	done         bool
	lastLost     time.Time
	gcCancel     func()
	secured      bool   // the opening SYNC arrived sealed
	counter      uint32 // the opening SYNC's origin frame counter
}

// SendReliable transfers payload to dst with end-to-end acknowledgment and
// retransmission, returning the stream id. Completion or failure is
// reported asynchronously through Env.StreamDone.
func (n *Node) SendReliable(dst packet.Address, payload []byte) (uint8, error) {
	if n.stopped {
		return 0, ErrStopped
	}
	if dst == packet.Broadcast {
		return 0, fmt.Errorf("core: reliable transfer to broadcast is not defined")
	}
	if len(payload) == 0 {
		return 0, fmt.Errorf("core: reliable transfer of empty payload")
	}
	if max := 65535 * n.chunkSize(); len(payload) > max {
		return 0, fmt.Errorf("%w: %d > %d bytes", ErrTooLarge, len(payload), max)
	}
	if len(n.outStreams) >= n.cfg.MaxOutStreams {
		return 0, fmt.Errorf("%w: %d active", ErrBusyStream, len(n.outStreams))
	}
	id, err := n.allocStreamID()
	if err != nil {
		return 0, err
	}

	s := &outStream{
		id:        id,
		dst:       dst,
		total:     len(payload),
		startedAt: n.env.Now(),
		base:      1,
		next:      1,
	}
	if len(payload) <= n.maxPayloadFor(packet.TypeDataAck) {
		s.mode = modeSingle
		s.synced = true
		s.chunks = [][]byte{append([]byte(nil), payload...)}
	} else {
		s.mode = modeStream
		cs := n.chunkSize()
		for off := 0; off < len(payload); off += cs {
			end := off + cs
			if end > len(payload) {
				end = len(payload)
			}
			s.chunks = append(s.chunks, append([]byte(nil), payload[off:end]...))
		}
	}
	n.outStreams[id] = s
	n.reg.Counter("stream.opened").Inc()

	if s.mode == modeSingle {
		if err := n.sendChunk(s, 1); err != nil {
			delete(n.outStreams, id)
			return 0, err
		}
	} else {
		if err := n.sendSync(s); err != nil {
			delete(n.outStreams, id)
			return 0, err
		}
	}
	n.armRetry(s)
	return id, nil
}

// allocStreamID returns an unused stream sequence id.
func (n *Node) allocStreamID() (uint8, error) {
	for i := 0; i < 256; i++ {
		id := n.nextSeqID
		n.nextSeqID++
		if _, busy := n.outStreams[id]; !busy {
			return id, nil
		}
	}
	return 0, ErrBusyStream
}

// sendSync emits the stream-open packet carrying the chunk count and the
// total byte length.
func (n *Node) sendSync(s *outStream) error {
	var total [4]byte
	binary.BigEndian.PutUint32(total[:], uint32(s.total))
	p := &packet.Packet{
		Dst:     s.dst,
		Src:     n.cfg.Address,
		Type:    packet.TypeSync,
		SeqID:   s.id,
		Number:  uint16(len(s.chunks)),
		Payload: total[:],
	}
	return n.route(p)
}

// sendChunk emits chunk k of the stream. Retransmissions are recognized by
// the high-water mark: any chunk at or below it has been sent before.
func (n *Node) sendChunk(s *outStream, k int) error {
	typ := packet.TypeXLData
	if s.mode == modeSingle {
		typ = packet.TypeDataAck
	}
	p := &packet.Packet{
		Dst:     s.dst,
		Src:     n.cfg.Address,
		Type:    typ,
		SeqID:   s.id,
		Number:  uint16(k),
		Payload: s.chunks[k-1],
	}
	if err := n.route(p); err != nil {
		return err
	}
	if k <= s.maxSent {
		s.retrans++
		n.recordSpan(p, span.SegRetransmit, 0, p.Type.String())
	} else {
		s.maxSent = k
	}
	return nil
}

// fillWindow transmits chunks up to the configured window. With
// StreamPacing > 0, consecutive chunks are spaced out so a windowed
// transfer does not collide with its own forwarding on a half-duplex
// multi-hop path (the A3 ablation's subject).
func (n *Node) fillWindow(s *outStream) {
	if s.fillCancel != nil {
		s.fillCancel()
		s.fillCancel = nil
	}
	n.fillStep(s)
}

// fillStep sends the next window chunk and, when pacing, schedules the
// one after it.
func (n *Node) fillStep(s *outStream) {
	for s.next < s.base+n.cfg.StreamWindow && s.next <= len(s.chunks) {
		k := s.next
		s.next++
		if err := n.sendChunk(s, k); err != nil {
			// No route right now; the retry timer re-attempts after the
			// mesh re-converges.
			return
		}
		if n.cfg.StreamPacing > 0 &&
			s.next < s.base+n.cfg.StreamWindow && s.next <= len(s.chunks) {
			s.fillCancel = n.env.Schedule(n.cfg.StreamPacing, func() {
				if n.outStreams[s.id] == s {
					s.fillCancel = nil
					n.fillStep(s)
				}
			})
			return
		}
	}
}

// retryDelay returns the retransmission timeout for the given number of
// consecutive unacknowledged rounds: StreamRetry grown by StreamBackoff
// per round, capped at StreamRetryCap. With backoff enabled the delay is
// jittered ±10% so retransmissions from nodes that lost the same frame
// do not stay synchronized.
func (n *Node) retryDelay(rounds int) time.Duration {
	d := n.cfg.StreamRetry
	if n.cfg.StreamBackoff <= 1 {
		return d // the prototype's fixed timeout
	}
	for i := 0; i < rounds && d < n.cfg.StreamRetryCap; i++ {
		d = time.Duration(float64(d) * n.cfg.StreamBackoff)
	}
	if d > n.cfg.StreamRetryCap {
		d = n.cfg.StreamRetryCap
	}
	return time.Duration(float64(d) * (0.9 + 0.2*n.env.Rand()))
}

// retryBudget is the un-jittered time a stream can spend in timeouts
// before failing: the sum of every round's backed-off delay.
func (n *Node) retryBudget() time.Duration {
	var sum time.Duration
	for r := 0; r <= n.cfg.StreamMaxRetries; r++ {
		d := n.cfg.StreamRetry
		if n.cfg.StreamBackoff > 1 {
			for i := 0; i < r && d < n.cfg.StreamRetryCap; i++ {
				d = time.Duration(float64(d) * n.cfg.StreamBackoff)
			}
			if d > n.cfg.StreamRetryCap {
				d = n.cfg.StreamRetryCap
			}
		}
		sum += d
	}
	return sum
}

// armRetry (re)schedules the stream's retransmission timer with the
// current round's backed-off delay.
func (n *Node) armRetry(s *outStream) {
	if s.retryCancel != nil {
		s.retryCancel()
	}
	s.retryCancel = n.env.Schedule(n.retryDelay(s.rounds), func() { n.retryTick(s) })
}

// retryTick fires when the stream made no acknowledged progress for a full
// retransmission timeout.
func (n *Node) retryTick(s *outStream) {
	if n.stopped || n.outStreams[s.id] != s {
		return
	}
	s.rounds++
	if s.rounds > s.maxRounds {
		s.maxRounds = s.rounds
	}
	if s.rounds > n.cfg.StreamMaxRetries {
		n.finishStream(s, fmt.Errorf("%w: %d rounds to %v", ErrStreamFailed, s.rounds-1, s.dst))
		return
	}
	n.reg.Counter("stream.timeouts").Inc()
	if !s.synced {
		if err := n.sendSync(s); err == nil {
			s.retrans++
		}
	} else {
		// Go-back-N: rewind to the lowest unacknowledged chunk.
		s.next = s.base
		n.fillWindow(s)
	}
	n.armRetry(s)
}

// finishStream reports the outcome and tears down sender state.
func (n *Node) finishStream(s *outStream, err error) {
	if s.retryCancel != nil {
		s.retryCancel()
		s.retryCancel = nil
	}
	if s.fillCancel != nil {
		s.fillCancel()
		s.fillCancel = nil
	}
	delete(n.outStreams, s.id)
	n.reg.Histogram("stream.retx.rounds").Observe(float64(s.maxRounds))
	if err != nil {
		n.reg.Counter("stream.failed").Inc()
		if n.cfg.TriggeredUpdates {
			// Retry exhaustion is link-layer evidence the next hop is
			// dead; withdraw every route through it now rather than
			// waiting out EntryTTL.
			n.withdrawNextHop(s.dst, "stream retries exhausted")
		}
	} else {
		n.reg.Counter("stream.completed").Inc()
	}
	n.env.StreamDone(StreamEvent{
		ID:              s.id,
		Dst:             s.dst,
		Err:             err,
		Chunks:          len(s.chunks),
		Retransmissions: s.retrans,
		Elapsed:         n.env.Now().Sub(s.startedAt),
	})
}

// handleAck processes a cumulative acknowledgment for one of our streams.
func (n *Node) handleAck(p *packet.Packet) {
	s, ok := n.outStreams[p.SeqID]
	if !ok || s.dst != p.Src {
		n.reg.Counter("stream.stray_ack").Inc()
		return
	}
	s.rounds = 0
	if p.Number == 0 {
		// SYNC acknowledged: start the data phase.
		if s.mode == modeStream && !s.synced {
			s.synced = true
			n.fillWindow(s)
			n.armRetry(s)
		}
		return
	}
	k := int(p.Number)
	if k < s.base || k > len(s.chunks) {
		return // stale duplicate
	}
	s.base = k + 1
	if s.base > len(s.chunks) {
		n.finishStream(s, nil)
		return
	}
	n.fillWindow(s)
	n.armRetry(s)
}

// handleLost retransmits the chunk the receiver reported missing.
func (n *Node) handleLost(p *packet.Packet) {
	s, ok := n.outStreams[p.SeqID]
	if !ok || s.dst != p.Src {
		n.reg.Counter("stream.stray_lost").Inc()
		return
	}
	k := int(p.Number)
	if k < 1 || k > len(s.chunks) {
		return
	}
	n.reg.Counter("stream.lost_requests").Inc()
	// sendChunk's high-water mark accounts the retransmission.
	if err := n.sendChunk(s, k); err != nil {
		n.reg.Counter("stream.control_unroutable").Inc()
	}
}

// handleSingle is the receiver side of a single-packet reliable transfer:
// deliver once, acknowledge every copy.
func (n *Node) handleSingle(p *packet.Packet) {
	key := inKey{src: p.Src, id: p.SeqID}
	if s, ok := n.inStreams[key]; ok && s.done {
		n.sendControl(p.Src, packet.TypeAck, p.SeqID, p.Number)
		return
	}
	s := &inStream{total: 1, totalBytes: len(p.Payload), nextExpected: 2, done: true}
	n.inStreams[key] = s
	n.armStreamGC(key, s)
	n.reg.Counter("stream.received").Inc()
	n.reg.Counter("app.delivered").Inc()
	n.recordSpan(p, span.SegDeliver, 0, "data_ack")
	n.deliver(AppMessage{
		From:     p.Src,
		To:       p.Dst,
		Payload:  append([]byte(nil), p.Payload...),
		Reliable: true,
		Trace:    trace.TraceID(p.TraceID()),
		At:       n.env.Now(),
	})
	n.sendControl(p.Src, packet.TypeAck, p.SeqID, p.Number)
}

// handleSync opens (or re-acknowledges) an incoming transfer.
func (n *Node) handleSync(p *packet.Packet) {
	key := inKey{src: p.Src, id: p.SeqID}
	if s, ok := n.inStreams[key]; ok {
		// Duplicate SYNC: re-acknowledge with current progress.
		n.sendControl(p.Src, packet.TypeAck, p.SeqID, uint16(s.nextExpected-1))
		return
	}
	total := int(p.Number)
	if total < 1 {
		n.reg.Counter("rx.corrupt").Inc()
		return
	}
	totalBytes := 0
	if len(p.Payload) == 4 {
		totalBytes = int(binary.BigEndian.Uint32(p.Payload))
	}
	cs := n.chunkSize()
	if totalBytes <= 0 || totalBytes > total*cs || totalBytes <= (total-1)*cs {
		n.reg.Counter("rx.corrupt").Inc()
		return
	}
	s := &inStream{
		total:        total,
		totalBytes:   totalBytes,
		chunks:       make([][]byte, total),
		nextExpected: 1,
		secured:      p.Secured,
		counter:      p.Counter,
	}
	n.inStreams[key] = s
	n.armStreamGC(key, s)
	n.reg.Counter("stream.accepted").Inc()
	n.sendControl(p.Src, packet.TypeAck, p.SeqID, 0)
}

// handleChunk stores one stream chunk and acknowledges cumulatively. It
// also handles single-packet DATA_ACK transfers' receiver side via consume.
func (n *Node) handleChunk(p *packet.Packet) {
	key := inKey{src: p.Src, id: p.SeqID}
	s, ok := n.inStreams[key]
	if !ok {
		// Chunk for an unknown stream: the SYNC was lost. Asking for
		// "chunk 0" tells the sender to re-SYNC via its timeout; we
		// simply drop and let the sender's timer recover.
		n.reg.Counter("stream.orphan_chunk").Inc()
		return
	}
	k := int(p.Number)
	if k < 1 || k > s.total {
		n.reg.Counter("rx.corrupt").Inc()
		return
	}
	if s.done {
		// The whole payload was already delivered; the final ACK must
		// have been lost. Re-acknowledge.
		n.sendControl(p.Src, packet.TypeAck, p.SeqID, uint16(s.total))
		return
	}
	if s.chunks[k-1] == nil {
		s.chunks[k-1] = append([]byte(nil), p.Payload...)
	}
	for s.nextExpected <= s.total && s.chunks[s.nextExpected-1] != nil {
		s.nextExpected++
	}
	if k > s.nextExpected-1 && s.nextExpected <= s.total {
		// Sequence gap: request the missing chunk, rate-limited to one
		// LOST per retry interval per stream.
		now := n.env.Now()
		if now.Sub(s.lastLost) >= n.cfg.StreamRetry/2 {
			s.lastLost = now
			n.sendControl(p.Src, packet.TypeLost, p.SeqID, uint16(s.nextExpected))
		}
	}
	n.sendControl(p.Src, packet.TypeAck, p.SeqID, uint16(s.nextExpected-1))
	n.armStreamGC(key, s)

	if s.nextExpected > s.total {
		s.done = true
		payload := make([]byte, 0, s.totalBytes)
		for _, c := range s.chunks {
			payload = append(payload, c...)
		}
		s.chunks = nil
		if len(payload) != s.totalBytes {
			n.reg.Counter("stream.length_mismatch").Inc()
		}
		n.reg.Counter("stream.received").Inc()
		// A multi-chunk stream has no single delivering packet; derive a
		// stable end-to-end ID from the stream's identity and reassembled
		// payload, so every retransmission-path outcome hashes alike.
		sid := &packet.Packet{
			Dst: n.cfg.Address, Src: p.Src, Type: packet.TypeSync,
			SeqID: p.SeqID, Number: uint16(s.total), Payload: payload,
			// On a secured mesh the opening SYNC's origin counter keys
			// the ID, so re-sends of an identical payload stay distinct.
			Secured: s.secured, Counter: s.counter,
		}
		n.recordSpan(sid, span.SegDeliver, 0, "stream")
		n.deliver(AppMessage{
			From:     p.Src,
			To:       n.cfg.Address,
			Payload:  payload,
			Reliable: true,
			Trace:    trace.TraceID(sid.TraceID()),
			At:       n.env.Now(),
		})
	}
}

// armStreamGC (re)schedules expiry of receiver-side stream state. The
// grace covers the sender's full retry budget so duplicate final chunks
// still find the state and get re-acknowledged.
func (n *Node) armStreamGC(key inKey, s *inStream) {
	if s.gcCancel != nil {
		s.gcCancel()
	}
	// The budget covers every backed-off round; the extra quarter
	// absorbs jitter plus one final duplicate's flight time.
	grace := n.retryBudget() + n.retryBudget()/4
	s.gcCancel = n.env.Schedule(grace, func() {
		if n.inStreams[key] == s {
			delete(n.inStreams, key)
			if !s.done {
				n.reg.Counter("stream.abandoned").Inc()
			}
		}
	})
}
