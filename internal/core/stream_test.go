package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
)

// makePayload returns a deterministic byte pattern of length n.
func makePayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*7 + i>>8)
	}
	return p
}

// converge builds a 2-node full-mesh bus and lets it discover routes.
func converge(t *testing.T, cfg Config, addrs ...packet.Address) *bus {
	t.Helper()
	b := newBus(t, cfg, addrs...)
	b.run(6 * time.Second)
	return b
}

func TestReliableSinglePacket(t *testing.T) {
	b := converge(t, fastConfig(), 1, 2)
	sender := b.env(1)
	id, err := sender.node.SendReliable(2, []byte("important"))
	if err != nil {
		t.Fatal(err)
	}
	b.run(5 * time.Second)

	msgs := b.env(2).msgs
	if len(msgs) != 1 || string(msgs[0].Payload) != "important" {
		t.Fatalf("receiver messages = %+v", msgs)
	}
	if !msgs[0].Reliable {
		t.Error("stream delivery not marked reliable")
	}
	if len(sender.events) != 1 {
		t.Fatalf("sender got %d stream events, want 1", len(sender.events))
	}
	ev := sender.events[0]
	if ev.Err != nil || ev.ID != id || ev.Dst != 2 || ev.Chunks != 1 {
		t.Errorf("stream event = %+v", ev)
	}
}

func TestReliableMultiChunk(t *testing.T) {
	b := converge(t, fastConfig(), 1, 2)
	payload := makePayload(1000) // 5 chunks of 244
	if _, err := b.env(1).node.SendReliable(2, payload); err != nil {
		t.Fatal(err)
	}
	b.run(60 * time.Second)

	msgs := b.env(2).msgs
	if len(msgs) != 1 {
		t.Fatalf("receiver got %d messages, want 1", len(msgs))
	}
	if !bytes.Equal(msgs[0].Payload, payload) {
		t.Fatal("payload corrupted in transfer")
	}
	evs := b.env(1).events
	if len(evs) != 1 || evs[0].Err != nil {
		t.Fatalf("stream events = %+v", evs)
	}
	if want := (len(payload) + maxChunk - 1) / maxChunk; evs[0].Chunks != want {
		t.Errorf("chunks = %d, want %d", evs[0].Chunks, want)
	}
	if evs[0].Retransmissions != 0 {
		t.Errorf("lossless link had %d retransmissions", evs[0].Retransmissions)
	}
}

func TestReliableMultiHop(t *testing.T) {
	chain := []packet.Address{1, 2, 3}
	cfg := fastConfig()
	b := newBus(t, cfg, chain...)
	b.drop = chainDrop(chain)
	b.run(10 * time.Second)

	payload := makePayload(600)
	if _, err := b.env(1).node.SendReliable(3, payload); err != nil {
		t.Fatal(err)
	}
	b.run(60 * time.Second)
	msgs := b.env(3).msgs
	if len(msgs) != 1 || !bytes.Equal(msgs[0].Payload, payload) {
		t.Fatalf("multi-hop transfer failed: %d messages", len(msgs))
	}
}

func TestReliableRecoversFromLoss(t *testing.T) {
	cfg := fastConfig()
	b := converge(t, cfg, 1, 2)
	// Drop the first two XL_DATA frames (by content sniff on type byte).
	dropped := 0
	b.drop = func(from, to packet.Address, frame []byte) bool {
		if len(frame) > 4 && packet.Type(frame[4]) == packet.TypeXLData && dropped < 2 {
			dropped++
			return true
		}
		return false
	}
	payload := makePayload(1200)
	if _, err := b.env(1).node.SendReliable(2, payload); err != nil {
		t.Fatal(err)
	}
	b.run(2 * time.Minute)

	msgs := b.env(2).msgs
	if len(msgs) != 1 || !bytes.Equal(msgs[0].Payload, payload) {
		t.Fatalf("lossy transfer failed: %d messages", len(msgs))
	}
	evs := b.env(1).events
	if len(evs) != 1 || evs[0].Err != nil {
		t.Fatalf("stream events = %+v", evs)
	}
	if evs[0].Retransmissions == 0 {
		t.Error("recovery without retransmissions is impossible here")
	}
	if dropped != 2 {
		t.Fatalf("setup: dropped %d frames, want 2", dropped)
	}
}

func TestReliableSurvivesLostSync(t *testing.T) {
	cfg := fastConfig()
	b := converge(t, cfg, 1, 2)
	droppedSync := false
	b.drop = func(from, to packet.Address, frame []byte) bool {
		if len(frame) > 4 && packet.Type(frame[4]) == packet.TypeSync && !droppedSync {
			droppedSync = true
			return true
		}
		return false
	}
	payload := makePayload(500)
	if _, err := b.env(1).node.SendReliable(2, payload); err != nil {
		t.Fatal(err)
	}
	b.run(2 * time.Minute)
	if msgs := b.env(2).msgs; len(msgs) != 1 || !bytes.Equal(msgs[0].Payload, payload) {
		t.Fatalf("transfer with lost SYNC failed: %d messages", len(msgs))
	}
}

func TestReliableSurvivesLostAck(t *testing.T) {
	cfg := fastConfig()
	b := converge(t, cfg, 1, 2)
	droppedAck := false
	b.drop = func(from, to packet.Address, frame []byte) bool {
		if len(frame) > 4 && packet.Type(frame[4]) == packet.TypeAck && !droppedAck {
			droppedAck = true
			return true
		}
		return false
	}
	payload := makePayload(500)
	if _, err := b.env(1).node.SendReliable(2, payload); err != nil {
		t.Fatal(err)
	}
	b.run(2 * time.Minute)
	if msgs := b.env(2).msgs; len(msgs) != 1 || !bytes.Equal(msgs[0].Payload, payload) {
		t.Fatalf("transfer with lost ACK failed: %d messages", len(msgs))
	}
	// The duplicate retransmission must not double-deliver.
	if msgs := b.env(2).msgs; len(msgs) != 1 {
		t.Fatalf("double delivery: %d messages", len(msgs))
	}
}

func TestReliableFailsAfterMaxRetries(t *testing.T) {
	cfg := fastConfig()
	cfg.StreamMaxRetries = 2
	cfg.StreamRetry = 2 * time.Second
	b := converge(t, cfg, 1, 2)
	// Total blackout for stream traffic after convergence.
	b.drop = func(from, to packet.Address, frame []byte) bool {
		return len(frame) > 4 && packet.Type(frame[4]) != packet.TypeHello
	}
	if _, err := b.env(1).node.SendReliable(2, makePayload(500)); err != nil {
		t.Fatal(err)
	}
	b.run(time.Minute)
	evs := b.env(1).events
	if len(evs) != 1 {
		t.Fatalf("stream events = %+v, want one failure", evs)
	}
	if !errors.Is(evs[0].Err, ErrStreamFailed) {
		t.Errorf("stream error = %v, want ErrStreamFailed", evs[0].Err)
	}
	if len(b.env(1).node.outStreams) != 0 {
		t.Error("failed stream state not cleaned up")
	}
}

func TestReliableGoBackNWindow(t *testing.T) {
	// Windowed (go-back-N) transfers must stay correct under the
	// half-duplex intra-flow interference they create on a chain: a
	// forwarder transmitting chunk k misses chunk k+1, so pipelining
	// triggers loss recovery. (Whether windowing is *faster* is the A3
	// ablation's question — over half-duplex LoRa it generally is not,
	// which is why the prototype ships stop-and-wait.)
	chain := []packet.Address{1, 2, 3, 4}
	payload := makePayload(2000) // 9 chunks
	for _, window := range []int{1, 4} {
		cfg := fastConfig()
		cfg.StreamWindow = window
		b := newBus(t, cfg, chain...)
		b.drop = chainDrop(chain)
		b.run(15 * time.Second)
		if _, err := b.env(1).node.SendReliable(4, payload); err != nil {
			t.Fatal(err)
		}
		b.run(5 * time.Minute)
		msgs := b.env(4).msgs
		if len(msgs) != 1 || !bytes.Equal(msgs[0].Payload, payload) {
			t.Fatalf("window=%d transfer failed: %d messages", window, len(msgs))
		}
		evs := b.env(1).events
		if len(evs) != 1 || evs[0].Err != nil {
			t.Fatalf("window=%d stream events = %+v", window, evs)
		}
	}
}

func TestReliableValidation(t *testing.T) {
	b := converge(t, fastConfig(), 1, 2)
	n := b.env(1).node
	if _, err := n.SendReliable(packet.Broadcast, []byte("x")); err == nil {
		t.Error("broadcast stream: want error")
	}
	if _, err := n.SendReliable(2, nil); err == nil {
		t.Error("empty stream: want error")
	}
	if _, err := n.SendReliable(9, []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Errorf("stream to unknown = %v, want ErrNoRoute", err)
	}
}

func TestReliableConcurrentStreamLimit(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxOutStreams = 2
	b := converge(t, cfg, 1, 2)
	n := b.env(1).node
	for i := 0; i < 2; i++ {
		if _, err := n.SendReliable(2, makePayload(3000)); err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}
	if _, err := n.SendReliable(2, makePayload(100)); !errors.Is(err, ErrBusyStream) {
		t.Errorf("third concurrent stream = %v, want ErrBusyStream", err)
	}
	b.run(3 * time.Minute)
	// Both streams complete and the slot frees up.
	if len(b.env(2).msgs) != 2 {
		t.Fatalf("receiver got %d messages, want 2", len(b.env(2).msgs))
	}
	if _, err := n.SendReliable(2, makePayload(100)); err != nil {
		t.Errorf("stream after completion: %v", err)
	}
}

func TestReliableDistinctStreamsDoNotInterfere(t *testing.T) {
	b := converge(t, fastConfig(), 1, 2, 3)
	p1, p2 := makePayload(700), makePayload(900)
	if _, err := b.env(1).node.SendReliable(3, p1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.env(2).node.SendReliable(3, p2); err != nil {
		t.Fatal(err)
	}
	b.run(2 * time.Minute)
	msgs := b.env(3).msgs
	if len(msgs) != 2 {
		t.Fatalf("receiver got %d messages, want 2", len(msgs))
	}
	seen := map[int]bool{}
	for _, m := range msgs {
		seen[len(m.Payload)] = true
		var want []byte
		if len(m.Payload) == 700 {
			want = p1
		} else {
			want = p2
		}
		if !bytes.Equal(m.Payload, want) {
			t.Error("stream payload corrupted or interleaved")
		}
	}
	if !seen[700] || !seen[900] {
		t.Errorf("got payload sizes %v, want 700 and 900", seen)
	}
}

func TestStreamStrayControlIgnored(t *testing.T) {
	b := converge(t, fastConfig(), 1, 2)
	n := b.env(1).node
	// ACK/LOST for a stream we never opened.
	for _, typ := range []packet.Type{packet.TypeAck, packet.TypeLost} {
		p := &packet.Packet{Dst: 1, Src: 2, Type: typ, Via: 1, SeqID: 99, Number: 1}
		frame, err := packet.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		n.HandleFrame(frame, RxInfo{})
	}
	if got := n.Metrics().Counter("stream.stray_ack").Value(); got != 1 {
		t.Errorf("stray_ack = %d, want 1", got)
	}
	if got := n.Metrics().Counter("stream.stray_lost").Value(); got != 1 {
		t.Errorf("stray_lost = %d, want 1", got)
	}
}

func TestStreamCorruptSyncRejected(t *testing.T) {
	b := converge(t, fastConfig(), 1, 2)
	n := b.env(2).node
	// SYNC claiming 0 chunks.
	p := &packet.Packet{Dst: 2, Src: 1, Type: packet.TypeSync, Via: 2, SeqID: 1, Number: 0,
		Payload: []byte{0, 0, 0, 10}}
	frame, err := packet.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	before := n.Metrics().Counter("rx.corrupt").Value()
	n.HandleFrame(frame, RxInfo{})
	// SYNC whose byte length disagrees with the chunk count.
	p.Number = 3
	p.Payload = []byte{0, 0, 0, 5} // 5 bytes cannot need 3 chunks
	frame, err = packet.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	n.HandleFrame(frame, RxInfo{})
	if got := n.Metrics().Counter("rx.corrupt").Value(); got != before+2 {
		t.Errorf("rx.corrupt = %d, want %d", got, before+2)
	}
	if len(n.inStreams) != 0 {
		t.Error("corrupt SYNC created receiver state")
	}
}

func TestStreamElapsedAndMetrics(t *testing.T) {
	b := converge(t, fastConfig(), 1, 2)
	if _, err := b.env(1).node.SendReliable(2, makePayload(600)); err != nil {
		t.Fatal(err)
	}
	b.run(time.Minute)
	ev := b.env(1).events[0]
	if ev.Elapsed <= 0 {
		t.Errorf("elapsed = %v, want positive", ev.Elapsed)
	}
	m := b.env(1).node.Metrics()
	if m.Counter("stream.opened").Value() != 1 || m.Counter("stream.completed").Value() != 1 {
		t.Error("stream counters wrong")
	}
	if b.env(2).node.Metrics().Counter("stream.received").Value() != 1 {
		t.Error("receiver stream counter wrong")
	}
}

// TestPropertyStreamIntegrityUnderRandomLoss drives reliable transfers
// through random loss patterns: whatever arrives must be byte-identical,
// and the sender must always reach a terminal event (success or failure),
// never a hung stream.
func TestPropertyStreamIntegrityUnderRandomLoss(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, lossRaw uint8) bool {
		size := int(sizeRaw)%3000 + 1
		lossNum := int(lossRaw) % 4 // drop every k-th frame for k in {0..3}
		cfg := fastConfig()
		cfg.StreamRetry = 3 * time.Second
		cfg.StreamMaxRetries = 6
		b := newBus(t, cfg, 1, 2)
		b.run(5 * time.Second)
		count := 0
		b.drop = func(from, to packet.Address, frame []byte) bool {
			if lossNum == 0 {
				return false
			}
			count++
			return count%(lossNum+3) == 0
		}
		payload := makePayload(size)
		if _, err := b.env(1).node.SendReliable(2, payload); err != nil {
			return false
		}
		b.run(10 * time.Minute)
		evs := b.env(1).events
		if len(evs) != 1 {
			return false // stream hung: no terminal event
		}
		msgs := b.env(2).msgs
		if evs[0].Err == nil {
			// Success must mean exact delivery.
			return len(msgs) == 1 && bytes.Equal(msgs[0].Payload, payload)
		}
		// Failure must not have delivered a corrupted payload.
		return len(msgs) == 0 || bytes.Equal(msgs[0].Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
