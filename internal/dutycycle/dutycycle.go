// Package dutycycle enforces ISM-band airtime regulations. LoRa in the
// EU868 band is limited to a per-sub-band duty cycle (1% on the common
// g1 sub-band: at most 36 s of airtime per rolling hour). The mesh node
// consults a Regulator before every transmission and defers frames that
// would exceed the budget, which is what keeps a beaconing mesh legal.
package dutycycle

import (
	"fmt"
	"time"
)

// EU868 sub-band duty-cycle limits.
const (
	// LimitG1 applies to 868.0–868.6 MHz (the default mesh channel).
	LimitG1 = 0.01
	// LimitG2 applies to 868.7–869.2 MHz.
	LimitG2 = 0.001
	// LimitG3 applies to 869.4–869.65 MHz (the high-power sub-band).
	LimitG3 = 0.10
)

// DefaultWindow is the rolling accounting window used by the regulation.
const DefaultWindow = time.Hour

// LimitForFrequency returns the EU868 duty-cycle limit for a carrier
// frequency, or an error for frequencies outside the regulated sub-bands.
func LimitForFrequency(freqHz float64) (float64, error) {
	switch {
	case freqHz >= 868.0e6 && freqHz <= 868.6e6:
		return LimitG1, nil
	case freqHz >= 868.7e6 && freqHz <= 869.2e6:
		return LimitG2, nil
	case freqHz >= 869.4e6 && freqHz <= 869.65e6:
		return LimitG3, nil
	default:
		return 0, fmt.Errorf("dutycycle: %.3f MHz is outside the EU868 sub-bands", freqHz/1e6)
	}
}

// record is one past transmission.
type record struct {
	start time.Time
	dur   time.Duration
}

// Regulator tracks transmissions over a rolling window and answers whether
// a new transmission fits the duty-cycle budget. It is not safe for
// concurrent use; each node owns one regulator per sub-band.
type Regulator struct {
	limit   float64
	window  time.Duration
	history []record
	// total airtime ever recorded, for compliance reporting.
	lifetime time.Duration
}

// NewRegulator returns a regulator enforcing the given duty-cycle limit
// over the given rolling window. A limit of 1 effectively disables
// regulation (useful for ablations).
func NewRegulator(limit float64, window time.Duration) (*Regulator, error) {
	if limit <= 0 || limit > 1 {
		return nil, fmt.Errorf("dutycycle: limit %v out of (0,1]", limit)
	}
	if window <= 0 {
		return nil, fmt.Errorf("dutycycle: window %v must be positive", window)
	}
	return &Regulator{limit: limit, window: window}, nil
}

// Budget returns the airtime allowed per window.
func (r *Regulator) Budget() time.Duration {
	return time.Duration(float64(r.window) * r.limit)
}

// usedAt returns the airtime counted against the window ending at t,
// assuming no transmissions after the recorded history.
func (r *Regulator) usedAt(t time.Time) time.Duration {
	from := t.Add(-r.window)
	var used time.Duration
	for _, rec := range r.history {
		end := rec.start.Add(rec.dur)
		lo := rec.start
		if lo.Before(from) {
			lo = from
		}
		hi := end
		if hi.After(t) {
			hi = t
		}
		if hi.After(lo) {
			used += hi.Sub(lo)
		}
	}
	return used
}

// prune drops records that can no longer affect any window at or after now.
// It must only be called with the actual clock (from Record), never with a
// speculative future instant: NextAllowed probes future times, and pruning
// against a probe would discard records still counted at the present.
func (r *Regulator) prune(now time.Time) {
	from := now.Add(-r.window)
	kept := r.history[:0]
	for _, rec := range r.history {
		if rec.start.Add(rec.dur).After(from) {
			kept = append(kept, rec)
		}
	}
	r.history = kept
}

// usedWithCandidate returns the airtime counted against the window ending
// at t, including a candidate transmission [candStart, candStart+candDur]
// that has not been recorded yet. Unlike usedAt, recorded intervals are
// clipped only by the window — their scheduled future portions count too,
// so admission control sees in-flight transmissions in full.
func (r *Regulator) usedWithCandidate(t time.Time, candStart time.Time, candDur time.Duration) time.Duration {
	from := t.Add(-r.window)
	overlap := func(s time.Time, d time.Duration) time.Duration {
		lo, hi := s, s.Add(d)
		if lo.Before(from) {
			lo = from
		}
		if hi.After(t) {
			hi = t
		}
		if hi.After(lo) {
			return hi.Sub(lo)
		}
		return 0
	}
	used := overlap(candStart, candDur)
	for _, rec := range r.history {
		used += overlap(rec.start, rec.dur)
	}
	return used
}

// CanTransmit reports whether a transmission of the given airtime starting
// at now fits the budget at every future instant. Window usage including
// the candidate peaks where some transmission ends, so it suffices to
// check the candidate's own end and the ends of recorded transmissions
// that finish after it starts.
func (r *Regulator) CanTransmit(now time.Time, airtime time.Duration) bool {
	if airtime > r.Budget() {
		return false
	}
	end := now.Add(airtime)
	if r.usedWithCandidate(end, now, airtime) > r.Budget() {
		return false
	}
	for _, rec := range r.history {
		if e := rec.start.Add(rec.dur); e.After(end) {
			if r.usedWithCandidate(e, now, airtime) > r.Budget() {
				return false
			}
		}
	}
	return true
}

// Record registers a transmission of the given airtime starting at now.
// Callers record after the decision to transmit; the regulator does not
// enforce that CanTransmit was consulted (ablations transmit regardless
// and then measure violations).
func (r *Regulator) Record(now time.Time, airtime time.Duration) {
	if airtime <= 0 {
		return
	}
	r.prune(now)
	r.history = append(r.history, record{start: now, dur: airtime})
	r.lifetime += airtime
}

// NextAllowed returns the earliest instant at or after now when a
// transmission of the given airtime fits the budget. If the airtime alone
// exceeds the whole budget it returns an error: the frame can never be
// sent legally and must be re-chunked.
func (r *Regulator) NextAllowed(now time.Time, airtime time.Duration) (time.Time, error) {
	if airtime > r.Budget() {
		return time.Time{}, fmt.Errorf("dutycycle: airtime %v exceeds the whole %v budget", airtime, r.Budget())
	}
	if r.CanTransmit(now, airtime) {
		return now, nil
	}
	// Past the end of the last recorded transmission, window usage is
	// nonincreasing in time, so admissibility is monotone there and a
	// binary search finds the earliest legal start. (Gaps between
	// in-flight transmissions before that point are conservatively
	// skipped; mesh nodes are half-duplex and do not schedule into them
	// anyway.) Every record has left the window after lastEnd+window.
	lo := now
	for _, rec := range r.history {
		if e := rec.start.Add(rec.dur); e.After(lo) {
			lo = e
		}
	}
	if r.CanTransmit(lo, airtime) {
		return lo, nil
	}
	hi := lo.Add(r.window)
	for i := 0; i < 64 && hi.Sub(lo) > time.Microsecond; i++ {
		mid := lo.Add(hi.Sub(lo) / 2)
		if r.CanTransmit(mid, airtime) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// Utilization returns the fraction of the budget consumed in the window
// ending at now (1.0 = at the regulatory limit).
func (r *Regulator) Utilization(now time.Time) float64 {
	b := r.Budget()
	if b == 0 {
		return 0
	}
	return float64(r.usedAt(now)) / float64(b)
}

// DutyCycle returns the raw duty cycle over the window ending at now
// (airtime / window), the quantity the regulation caps.
func (r *Regulator) DutyCycle(now time.Time) float64 {
	return float64(r.usedAt(now)) / float64(r.window)
}

// LifetimeAirtime returns all airtime ever recorded.
func (r *Regulator) LifetimeAirtime() time.Duration { return r.lifetime }
