// Package dutycycle enforces ISM-band airtime regulations. LoRa in the
// EU868 band is limited to a per-sub-band duty cycle (1% on the common
// g1 sub-band: at most 36 s of airtime per rolling hour). The mesh node
// consults a Regulator before every transmission and defers frames that
// would exceed the budget, which is what keeps a beaconing mesh legal.
package dutycycle

import (
	"fmt"
	"time"
)

// EU868 sub-band duty-cycle limits.
const (
	// LimitG1 applies to 868.0–868.6 MHz (the default mesh channel).
	LimitG1 = 0.01
	// LimitG2 applies to 868.7–869.2 MHz.
	LimitG2 = 0.001
	// LimitG3 applies to 869.4–869.65 MHz (the high-power sub-band).
	LimitG3 = 0.10
)

// DefaultWindow is the rolling accounting window used by the regulation.
const DefaultWindow = time.Hour

// LimitForFrequency returns the EU868 duty-cycle limit for a carrier
// frequency, or an error for frequencies outside the regulated sub-bands.
func LimitForFrequency(freqHz float64) (float64, error) {
	switch {
	case freqHz >= 868.0e6 && freqHz <= 868.6e6:
		return LimitG1, nil
	case freqHz >= 868.7e6 && freqHz <= 869.2e6:
		return LimitG2, nil
	case freqHz >= 869.4e6 && freqHz <= 869.65e6:
		return LimitG3, nil
	default:
		return 0, fmt.Errorf("dutycycle: %.3f MHz is outside the EU868 sub-bands", freqHz/1e6)
	}
}

// record is one past transmission, in integer nanoseconds since the Unix
// epoch. The regulator sits on the per-frame hot path (every queue pump
// consults it, and NextAllowed binary-searches through CanTransmit), so
// interval math runs on int64 rather than time.Time.
type record struct {
	start, end int64
}

// Regulator tracks transmissions over a rolling window and answers whether
// a new transmission fits the duty-cycle budget. It is not safe for
// concurrent use; each node owns one regulator per sub-band.
type Regulator struct {
	limit   float64
	window  int64 // ns
	budget  int64 // ns per window, precomputed from limit*window
	history []record
	// histSum is the total duration of every record still in history
	// (pruned or not); it upper-bounds the usage of any window and feeds
	// CanTransmit's O(1) under-budget fast path.
	histSum int64
	// total airtime ever recorded, for compliance reporting.
	lifetime time.Duration
}

// NewRegulator returns a regulator enforcing the given duty-cycle limit
// over the given rolling window. A limit of 1 effectively disables
// regulation (useful for ablations).
func NewRegulator(limit float64, window time.Duration) (*Regulator, error) {
	if limit <= 0 || limit > 1 {
		return nil, fmt.Errorf("dutycycle: limit %v out of (0,1]", limit)
	}
	if window <= 0 {
		return nil, fmt.Errorf("dutycycle: window %v must be positive", window)
	}
	return &Regulator{
		limit:  limit,
		window: int64(window),
		budget: int64(float64(window) * limit),
	}, nil
}

// Budget returns the airtime allowed per window.
func (r *Regulator) Budget() time.Duration {
	return time.Duration(r.budget)
}

// usedAt returns the airtime counted against the window ending at t,
// assuming no transmissions after the recorded history.
func (r *Regulator) usedAt(t time.Time) time.Duration {
	tn := t.UnixNano()
	from := tn - r.window
	var used int64
	for _, rec := range r.history {
		lo, hi := rec.start, rec.end
		if lo < from {
			lo = from
		}
		if hi > tn {
			hi = tn
		}
		if hi > lo {
			used += hi - lo
		}
	}
	return time.Duration(used)
}

// prune drops records that can no longer affect any window at or after now.
// It must only be called with the actual clock (from Record), never with a
// speculative future instant: NextAllowed probes future times, and pruning
// against a probe would discard records still counted at the present.
func (r *Regulator) prune(now int64) {
	from := now - r.window
	kept := r.history[:0]
	var sum int64
	for _, rec := range r.history {
		if rec.end > from {
			kept = append(kept, rec)
			sum += rec.end - rec.start
		}
	}
	r.history = kept
	r.histSum = sum
}

// usedWithCandidate returns the airtime counted against the window ending
// at t, including a candidate transmission [candStart, candEnd] that has
// not been recorded yet. Unlike usedAt, recorded intervals are clipped
// only by the window — their scheduled future portions count too, so
// admission control sees in-flight transmissions in full.
func (r *Regulator) usedWithCandidate(t, candStart, candEnd int64) int64 {
	from := t - r.window
	used := overlapNs(candStart, candEnd, from, t)
	for _, rec := range r.history {
		used += overlapNs(rec.start, rec.end, from, t)
	}
	return used
}

// overlapNs returns the length of [s,e] ∩ [from,t].
func overlapNs(s, e, from, t int64) int64 {
	if s < from {
		s = from
	}
	if e > t {
		e = t
	}
	if e > s {
		return e - s
	}
	return 0
}

// CanTransmit reports whether a transmission of the given airtime starting
// at now fits the budget at every future instant. Window usage including
// the candidate peaks where some transmission ends, so it suffices to
// check the candidate's own end and the ends of recorded transmissions
// that finish after it starts.
func (r *Regulator) CanTransmit(now time.Time, airtime time.Duration) bool {
	a := int64(airtime)
	if a > r.budget {
		return false
	}
	// Fast path: every window's usage is bounded by the total duration of
	// the records still in history plus the candidate, however the
	// intervals fall. An under-utilized node (the common case away from
	// the regulatory limit) admits in O(1).
	if r.histSum+a <= r.budget {
		return true
	}
	n := now.UnixNano()
	end := n + a
	if r.usedWithCandidate(end, n, end) > r.budget {
		return false
	}
	for _, rec := range r.history {
		if rec.end > end {
			if r.usedWithCandidate(rec.end, n, end) > r.budget {
				return false
			}
		}
	}
	return true
}

// Record registers a transmission of the given airtime starting at now.
// Callers record after the decision to transmit; the regulator does not
// enforce that CanTransmit was consulted (ablations transmit regardless
// and then measure violations).
func (r *Regulator) Record(now time.Time, airtime time.Duration) {
	if airtime <= 0 {
		return
	}
	n := now.UnixNano()
	r.prune(n)
	r.history = append(r.history, record{start: n, end: n + int64(airtime)})
	r.histSum += int64(airtime)
	r.lifetime += airtime
}

// NextAllowed returns the earliest instant at or after now when a
// transmission of the given airtime fits the budget. If the airtime alone
// exceeds the whole budget it returns an error: the frame can never be
// sent legally and must be re-chunked.
func (r *Regulator) NextAllowed(now time.Time, airtime time.Duration) (time.Time, error) {
	if airtime > r.Budget() {
		return time.Time{}, fmt.Errorf("dutycycle: airtime %v exceeds the whole %v budget", airtime, r.Budget())
	}
	if r.CanTransmit(now, airtime) {
		return now, nil
	}
	// Past the end of the last recorded transmission, window usage is
	// nonincreasing in time, so admissibility is monotone there and a
	// binary search finds the earliest legal start. (Gaps between
	// in-flight transmissions before that point are conservatively
	// skipped; mesh nodes are half-duplex and do not schedule into them
	// anyway.) Every record has left the window after lastEnd+window.
	lo := now
	for _, rec := range r.history {
		if e := time.Unix(0, rec.end); e.After(lo) {
			lo = e
		}
	}
	if r.CanTransmit(lo, airtime) {
		return lo, nil
	}
	hi := lo.Add(time.Duration(r.window))
	for i := 0; i < 64 && hi.Sub(lo) > time.Microsecond; i++ {
		mid := lo.Add(hi.Sub(lo) / 2)
		if r.CanTransmit(mid, airtime) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// Utilization returns the fraction of the budget consumed in the window
// ending at now (1.0 = at the regulatory limit).
func (r *Regulator) Utilization(now time.Time) float64 {
	b := r.Budget()
	if b == 0 {
		return 0
	}
	return float64(r.usedAt(now)) / float64(b)
}

// DutyCycle returns the raw duty cycle over the window ending at now
// (airtime / window), the quantity the regulation caps.
func (r *Regulator) DutyCycle(now time.Time) float64 {
	return float64(r.usedAt(now)) / float64(r.window)
}

// LifetimeAirtime returns all airtime ever recorded.
func (r *Regulator) LifetimeAirtime() time.Duration { return r.lifetime }
