package dutycycle

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

func mustRegulator(t *testing.T, limit float64, window time.Duration) *Regulator {
	t.Helper()
	r, err := NewRegulator(limit, window)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLimitForFrequency(t *testing.T) {
	tests := []struct {
		mhz  float64
		want float64
	}{
		{868.1, LimitG1},
		{868.3, LimitG1},
		{869.0, LimitG2},
		{869.525, LimitG3},
	}
	for _, tt := range tests {
		got, err := LimitForFrequency(tt.mhz * 1e6)
		if err != nil {
			t.Fatalf("%.3f MHz: %v", tt.mhz, err)
		}
		if got != tt.want {
			t.Errorf("%.3f MHz limit = %v, want %v", tt.mhz, got, tt.want)
		}
	}
	if _, err := LimitForFrequency(915e6); err == nil {
		t.Error("915 MHz: want error (not an EU868 sub-band)")
	}
}

func TestNewRegulatorValidation(t *testing.T) {
	if _, err := NewRegulator(0, time.Hour); err == nil {
		t.Error("limit 0: want error")
	}
	if _, err := NewRegulator(1.5, time.Hour); err == nil {
		t.Error("limit 1.5: want error")
	}
	if _, err := NewRegulator(0.01, 0); err == nil {
		t.Error("window 0: want error")
	}
}

func TestBudget(t *testing.T) {
	r := mustRegulator(t, 0.01, time.Hour)
	if got, want := r.Budget(), 36*time.Second; got != want {
		t.Errorf("1%% hourly budget = %v, want %v", got, want)
	}
}

func TestCanTransmitUntilBudgetExhausted(t *testing.T) {
	r := mustRegulator(t, 0.01, time.Hour)
	now := t0
	var spent time.Duration
	tx := 4 * time.Second
	for spent+tx <= r.Budget() {
		if !r.CanTransmit(now, tx) {
			t.Fatalf("transmission at %v spent %v rejected under budget", now, spent)
		}
		r.Record(now, tx)
		spent += tx
		now = now.Add(10 * time.Second)
	}
	if r.CanTransmit(now, tx) {
		t.Fatalf("transmission beyond the %v budget allowed", r.Budget())
	}
}

func TestBudgetRecoversAsWindowSlides(t *testing.T) {
	r := mustRegulator(t, 0.01, time.Hour)
	r.Record(t0, 36*time.Second) // exhaust the whole budget at once
	if r.CanTransmit(t0.Add(36*time.Second), time.Second) {
		t.Fatal("budget should be exhausted right after the burst")
	}
	// While the window's trailing edge crosses the burst, only part of it
	// still counts. (Queries are time-monotone: the regulator prunes.)
	mid := t0.Add(time.Hour + 18*time.Second) // window starts at t0+18s
	if got := r.usedAt(mid); got != 18*time.Second {
		t.Errorf("mid-window used = %v, want 18s", got)
	}
	// One hour after the burst *ended*, it has fully left the window.
	after := t0.Add(36*time.Second + time.Hour)
	if !r.CanTransmit(after, 36*time.Second) {
		t.Fatal("budget should be fully recovered one window after the burst")
	}
}

func TestNextAllowed(t *testing.T) {
	r := mustRegulator(t, 0.01, time.Hour)
	// Immediately allowed when idle.
	at, err := r.NextAllowed(t0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !at.Equal(t0) {
		t.Errorf("idle NextAllowed = %v, want now", at)
	}
	// Exhaust the budget. A 1 s frame starting at t fits when the window
	// ending at t+1s holds at most 35 s of the burst: 36-(t+1-3600) <= 35
	// gives t >= 3600 s, exactly one window after the burst began.
	r.Record(t0, 36*time.Second)
	now := t0.Add(40 * time.Second)
	at, err = r.NextAllowed(now, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := t0.Add(time.Hour)
	if d := at.Sub(want); d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("NextAllowed = %v, want ≈%v", at, want)
	}
	if !r.CanTransmit(at, time.Second) {
		t.Error("transmission at NextAllowed instant still rejected")
	}
	// An impossible frame errors.
	if _, err := r.NextAllowed(now, time.Minute); err == nil {
		t.Error("airtime above whole budget: want error")
	}
}

func TestUtilizationAndDutyCycle(t *testing.T) {
	r := mustRegulator(t, 0.01, time.Hour)
	r.Record(t0, 18*time.Second) // half the budget
	now := t0.Add(time.Minute)
	if u := r.Utilization(now); u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %v, want ≈0.5", u)
	}
	if d := r.DutyCycle(now); d < 0.0049 || d > 0.0051 {
		t.Errorf("duty cycle = %v, want ≈0.005", d)
	}
}

func TestLifetimeAirtime(t *testing.T) {
	r := mustRegulator(t, 0.01, time.Hour)
	r.Record(t0, 2*time.Second)
	r.Record(t0.Add(2*time.Hour), 3*time.Second)
	// Pruning must not affect lifetime accounting.
	r.CanTransmit(t0.Add(5*time.Hour), time.Second)
	if got := r.LifetimeAirtime(); got != 5*time.Second {
		t.Errorf("lifetime = %v, want 5s", got)
	}
}

func TestRecordIgnoresNonPositive(t *testing.T) {
	r := mustRegulator(t, 0.01, time.Hour)
	r.Record(t0, 0)
	r.Record(t0, -time.Second)
	if got := r.LifetimeAirtime(); got != 0 {
		t.Errorf("lifetime after no-op records = %v, want 0", got)
	}
}

// TestPropertyNeverExceedsBudget: any schedule of transmissions gated by
// CanTransmit keeps the rolling-window duty cycle at or under the limit.
func TestPropertyNeverExceedsBudget(t *testing.T) {
	f := func(gapsMS []uint16, airtimesMS []uint8) bool {
		r, err := NewRegulator(0.01, 10*time.Minute)
		if err != nil {
			return false
		}
		now := t0
		n := len(gapsMS)
		if len(airtimesMS) < n {
			n = len(airtimesMS)
		}
		for i := 0; i < n; i++ {
			now = now.Add(time.Duration(gapsMS[i]) * time.Millisecond)
			air := time.Duration(airtimesMS[i]) * time.Millisecond * 10
			if r.CanTransmit(now, air) {
				r.Record(now, air)
			}
			if r.usedAt(now.Add(air)) > r.Budget() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNextAllowedIsLegal: the instant NextAllowed returns must
// itself admit the transmission, for any prior burst schedule. (Earlier
// instants may also be legal between in-flight bursts — NextAllowed is
// documented as conservative there.)
func TestPropertyNextAllowedIsLegal(t *testing.T) {
	f := func(bursts []uint8) bool {
		r, err := NewRegulator(0.01, 10*time.Minute)
		if err != nil {
			return false
		}
		now := t0
		for _, b := range bursts {
			air := time.Duration(b) * 50 * time.Millisecond
			if air == 0 {
				continue
			}
			if r.CanTransmit(now, air) {
				r.Record(now, air)
			}
			now = now.Add(time.Duration(b) * time.Second)
		}
		want := 2 * time.Second
		at, err := r.NextAllowed(now, want)
		if err != nil {
			return false
		}
		if at.Before(now) {
			return false
		}
		return r.CanTransmit(at.Add(time.Microsecond), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
