// Package energy models node power consumption from radio-state
// occupancy. The paper's motivation is battery-powered IoT nodes, so the
// evaluation must answer "what does meshing cost in battery life": every
// forwarded frame and every hour spent listening for neighbors' traffic
// draws current. The model uses the SX1276 datasheet's typical draws plus
// an ESP32-class MCU floor and integrates state residency into charge
// (mAh) and battery-life estimates.
package energy

import (
	"fmt"
	"time"
)

// Profile holds current draws in milliamps per radio state.
type Profile struct {
	// TxMA is the transmit draw. SX1276 at +13 dBm (RFO) draws ≈29 mA;
	// with the ESP32 awake the node totals ≈120 mA.
	TxMA float64
	// RxMA is the receive/listen draw (SX1276 ≈11 mA plus MCU floor).
	RxMA float64
	// SleepMA is the deep-sleep draw with the radio idle.
	SleepMA float64
	// SupplyVolts is the battery voltage for energy (J) conversions.
	SupplyVolts float64
}

// DefaultProfile returns the TTGO LoRa32-class figures used in the
// reproduction: the demo's hardware keeps the ESP32 and radio awake to
// route for others (no LoRaWAN-style class-A sleep), so the listen draw
// dominates.
func DefaultProfile() Profile {
	return Profile{
		TxMA:        120, // radio TX + MCU
		RxMA:        48,  // radio RX + MCU awake
		SleepMA:     0.8, // deep sleep with RTC
		SupplyVolts: 3.7,
	}
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.TxMA <= 0 || p.RxMA <= 0 || p.SleepMA < 0 || p.SupplyVolts <= 0 {
		return fmt.Errorf("energy: profile %+v has non-positive draws", p)
	}
	return nil
}

// Usage is a node's radio-state residency over an observation window.
type Usage struct {
	// Tx is cumulative transmit airtime.
	Tx time.Duration
	// Sleep is time spent in deep sleep.
	Sleep time.Duration
	// Window is the total observed duration; receive/listen time is
	// Window - Tx - Sleep (the mesh router listens whenever it is not
	// transmitting or sleeping).
	Window time.Duration
}

// Rx returns the derived listen time.
func (u Usage) Rx() time.Duration {
	rx := u.Window - u.Tx - u.Sleep
	if rx < 0 {
		return 0
	}
	return rx
}

// Validate checks internal consistency.
func (u Usage) Validate() error {
	if u.Tx < 0 || u.Sleep < 0 || u.Window <= 0 {
		return fmt.Errorf("energy: usage %+v has non-positive components", u)
	}
	if u.Tx+u.Sleep > u.Window {
		return fmt.Errorf("energy: usage %v tx+sleep exceeds window %v", u.Tx+u.Sleep, u.Window)
	}
	return nil
}

// ChargeMAH returns the charge consumed over the window in milliamp-hours.
func (p Profile) ChargeMAH(u Usage) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := u.Validate(); err != nil {
		return 0, err
	}
	hours := func(d time.Duration) float64 { return d.Hours() }
	return p.TxMA*hours(u.Tx) + p.RxMA*hours(u.Rx()) + p.SleepMA*hours(u.Sleep), nil
}

// EnergyJoules returns the energy consumed over the window.
func (p Profile) EnergyJoules(u Usage) (float64, error) {
	mah, err := p.ChargeMAH(u)
	if err != nil {
		return 0, err
	}
	// 1 mAh at V volts = 3.6 * V joules.
	return mah * 3.6 * p.SupplyVolts, nil
}

// MeanCurrentMA returns the average draw over the window.
func (p Profile) MeanCurrentMA(u Usage) (float64, error) {
	mah, err := p.ChargeMAH(u)
	if err != nil {
		return 0, err
	}
	return mah / u.Window.Hours(), nil
}

// BatteryLife extrapolates how long a battery of the given capacity lasts
// at the observed duty pattern.
func (p Profile) BatteryLife(u Usage, capacityMAH float64) (time.Duration, error) {
	if capacityMAH <= 0 {
		return 0, fmt.Errorf("energy: capacity %v mAh must be positive", capacityMAH)
	}
	mean, err := p.MeanCurrentMA(u)
	if err != nil {
		return 0, err
	}
	if mean <= 0 {
		return 0, fmt.Errorf("energy: mean current is zero")
	}
	hours := capacityMAH / mean
	return time.Duration(hours * float64(time.Hour)), nil
}
