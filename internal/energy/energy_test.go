package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestUsageRxDerivation(t *testing.T) {
	u := Usage{Tx: 10 * time.Minute, Sleep: 20 * time.Minute, Window: time.Hour}
	if got := u.Rx(); got != 30*time.Minute {
		t.Errorf("Rx = %v, want 30m", got)
	}
	over := Usage{Tx: 2 * time.Hour, Window: time.Hour}
	if got := over.Rx(); got != 0 {
		t.Errorf("overfull Rx = %v, want clamped 0", got)
	}
}

func TestChargeMAH(t *testing.T) {
	p := Profile{TxMA: 100, RxMA: 10, SleepMA: 1, SupplyVolts: 3.7}
	u := Usage{Tx: 30 * time.Minute, Sleep: 30 * time.Minute, Window: 2 * time.Hour}
	// 0.5h*100 + 1h*10 + 0.5h*1 = 60.5 mAh
	got, err := p.ChargeMAH(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-60.5) > 1e-9 {
		t.Errorf("charge = %v mAh, want 60.5", got)
	}
}

func TestEnergyJoules(t *testing.T) {
	p := Profile{TxMA: 100, RxMA: 10, SleepMA: 1, SupplyVolts: 3.7}
	u := Usage{Tx: time.Hour, Window: time.Hour}
	// 100 mAh at 3.7 V = 100 * 3.6 * 3.7 J.
	got, err := p.EnergyJoules(u)
	if err != nil {
		t.Fatal(err)
	}
	if want := 100 * 3.6 * 3.7; math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %v J, want %v", got, want)
	}
}

func TestMeanCurrentAndBatteryLife(t *testing.T) {
	p := Profile{TxMA: 100, RxMA: 10, SleepMA: 1, SupplyVolts: 3.7}
	u := Usage{Window: time.Hour} // pure listening
	mean, err := p.MeanCurrentMA(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-10) > 1e-9 {
		t.Errorf("mean = %v mA, want 10", mean)
	}
	life, err := p.BatteryLife(u, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if want := 200 * time.Hour; life != want {
		t.Errorf("life = %v, want %v", life, want)
	}
}

func TestValidation(t *testing.T) {
	good := DefaultProfile()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.TxMA = 0
	if _, err := bad.ChargeMAH(Usage{Window: time.Hour}); err == nil {
		t.Error("zero TxMA: want error")
	}
	if _, err := good.ChargeMAH(Usage{Window: 0}); err == nil {
		t.Error("zero window: want error")
	}
	if _, err := good.ChargeMAH(Usage{Tx: 2 * time.Hour, Window: time.Hour}); err == nil {
		t.Error("tx > window: want error")
	}
	if _, err := good.BatteryLife(Usage{Window: time.Hour}, 0); err == nil {
		t.Error("zero capacity: want error")
	}
}

// TestPropertySleepReducesCharge: for any valid split, moving listen time
// into sleep never increases consumption (SleepMA < RxMA in every sane
// profile).
func TestPropertySleepReducesCharge(t *testing.T) {
	p := DefaultProfile()
	f := func(txMin, sleepMin uint8) bool {
		window := 10 * time.Hour
		tx := time.Duration(txMin) * time.Minute
		sleep := time.Duration(sleepMin) * time.Minute
		if tx+sleep > window {
			return true // skip invalid splits
		}
		base, err := p.ChargeMAH(Usage{Tx: tx, Sleep: sleep, Window: window})
		if err != nil {
			return false
		}
		moreSleep := sleep + 30*time.Minute
		if tx+moreSleep > window {
			return true
		}
		lower, err := p.ChargeMAH(Usage{Tx: tx, Sleep: moreSleep, Window: window})
		if err != nil {
			return false
		}
		return lower <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDefaultProfileSanity(t *testing.T) {
	p := DefaultProfile()
	// An always-listening router on a 3000 mAh cell: life should land in
	// the 2-3 day range — the paper's motivation for duty-cycled designs.
	u := Usage{Tx: 36 * time.Second, Window: time.Hour}
	life, err := p.BatteryLife(u, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if life < 36*time.Hour || life > 96*time.Hour {
		t.Errorf("always-on router life = %v, want 1.5-4 days", life)
	}
}
