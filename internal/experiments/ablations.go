package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/loraphy"
	"repro/internal/netsim"
	"repro/internal/routing"
)

// A1Poisoning compares the prototype's expiry-only route invalidation
// against route poisoning on the classic distance-vector pathology: when
// a destination dies, neighbors that keep advertising their stale routes
// to each other re-refresh them at climbing metrics (count-to-infinity),
// so phantom routes far outlive the entry TTL. Poisoned routes are
// advertised at the infinity metric and die in a few HELLO periods.
func A1Poisoning(opt Options) (*Result, error) {
	res := &Result{
		ID:     "A1",
		Title:  "phantom-route lifetime after endpoint death: expiry-only vs poisoning",
		Header: []string{"mode", "phantom route lifetime", "max phantom metric", "stale forwards"},
	}
	n := 6
	ttl := 5 * time.Minute
	if opt.Quick {
		ttl = 2 * time.Minute
	}
	modes := []bool{false, true}
	rows, err := forEachPoint(opt, len(modes), func(p int) ([]string, error) {
		poisoning := modes[p]
		topo, err := geo.Line(n, chainSpacing)
		if err != nil {
			return nil, err
		}
		cfg := expNode()
		cfg.Routing = routing.Config{EntryTTL: ttl, Poisoning: poisoning, MaxHops: 16}
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: cfg, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
			return nil, fmt.Errorf("A1: no convergence")
		}
		dead := sim.Handle(n - 1)
		if err := sim.Kill(n - 1); err != nil {
			return nil, err
		}
		// Probe traffic toward the dead endpoint measures stale forwards.
		stats, err := sim.StartFlow(netsim.Flow{
			From: 0, To: n - 1, Payload: 16, Interval: time.Minute,
		})
		if err != nil {
			return nil, err
		}
		maxMetric := uint8(0)
		gone := func() bool {
			anyRoute := false
			for i := 0; i < n-1; i++ {
				if e, ok := sim.Handle(i).Mesher.Table().Lookup(dead.Addr); ok && !e.Poisoned() {
					anyRoute = true
					if e.Metric > maxMetric {
						maxMetric = e.Metric
					}
				}
			}
			return !anyRoute
		}
		lifetime, ok := sim.RunUntil(gone, 15*time.Second, 12*time.Hour)
		mode := "expiry-only"
		if poisoning {
			mode = "poisoning"
		}
		life := ">12h"
		if ok {
			life = fmtDur(lifetime)
		}
		return []string{mode, life, fmt.Sprintf("%d", maxMetric),
			fmt.Sprintf("%d", stats.Accepted)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"expiry-only suffers count-to-infinity: neighbors mutually refresh the dead route at climbing metrics until the hop cap, multiplying the phantom lifetime; poisoning kills it within ~TTL + a few HELLO periods")
	return res, nil
}

// A2HelloPeriod sweeps the beacon period: short periods converge and
// repair fast but burn airtime; long periods are cheap but slow. The
// prototype's 2-minute choice sits on this curve.
func A2HelloPeriod(opt Options) (*Result, error) {
	periods := []time.Duration{30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute}
	if opt.Quick {
		periods = []time.Duration{30 * time.Second, 2 * time.Minute}
	}
	n := 8
	res := &Result{
		ID:     "A2",
		Title:  fmt.Sprintf("HELLO period trade-off (%d-node random field)", n),
		Header: []string{"period", "convergence", "hello airtime/node/h", "% of 1% budget"},
	}
	side := 12000.0 * math.Sqrt(float64(n)/4)
	topo, err := geo.ConnectedRandomGeometric(n, side, side, 12000, opt.Seed, 1000)
	if err != nil {
		return nil, err
	}
	rows, err := forEachPoint(opt, len(periods), func(i int) ([]string, error) {
		period := periods[i]
		cfg := expNode()
		cfg.HelloPeriod = period
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: cfg, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		conv, ok := sim.TimeToConvergence(5*time.Second, 6*time.Hour)
		if !ok {
			return []string{fmtDur(period), ">6h", "-", "-"}, nil
		}
		// Measure steady-state overhead for a further hour.
		before := sim.TotalAirtime()
		sim.Run(time.Hour)
		perNodeH := (sim.TotalAirtime() - before) / time.Duration(n)
		budget := 36 * time.Second
		return []string{fmtDur(period), fmtDur(conv), fmtDur(perNodeH),
			fmtPct(float64(perNodeH) / float64(budget))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"convergence scales with the period (diameter x period), overhead scales inversely — the knee sits near the prototype's 2 min")
	return res, nil
}

// A3ARQWindow sweeps the reliable transport's window: stop-and-wait (the
// prototype) against go-back-N over a half-duplex multi-hop chain.
func A3ARQWindow(opt Options) (*Result, error) {
	type variant struct {
		window int
		pacing time.Duration
	}
	variants := []variant{
		{1, 0}, {2, 0}, {4, 0}, {8, 0},
		{2, 3 * time.Second}, {4, 3 * time.Second},
	}
	if opt.Quick {
		variants = []variant{{1, 0}, {4, 0}, {4, 3 * time.Second}}
	}
	size := 4096
	hops := 3
	res := &Result{
		ID:     "A3",
		Title:  fmt.Sprintf("ARQ window sweep: %d B over %d hops", size, hops),
		Header: []string{"window", "pacing", "time", "goodput B/s", "retransmissions"},
	}
	rows, err := forEachPoint(opt, len(variants), func(i int) ([]string, error) {
		v := variants[i]
		w := v.window
		topo, err := geo.Line(hops+1, chainSpacing)
		if err != nil {
			return nil, err
		}
		cfg := expNode()
		cfg.StreamWindow = w
		cfg.StreamPacing = v.pacing
		cfg.StreamRetry = 20 * time.Second
		cfg.StreamMaxRetries = 10
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: cfg, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
			return nil, fmt.Errorf("A3: no convergence")
		}
		src := sim.Handle(0)
		if _, err := src.Mesher.SendReliable(sim.Handle(hops).Addr, make([]byte, size)); err != nil {
			return nil, err
		}
		pacingStr := "none"
		if v.pacing > 0 {
			pacingStr = fmtDur(v.pacing)
		}
		for tries := 0; len(src.StreamEvents) == 0 && tries < 720; tries++ {
			sim.Run(10 * time.Second)
		}
		if len(src.StreamEvents) == 0 {
			return []string{fmt.Sprintf("%d", w), pacingStr, ">2h", "-", "-"}, nil
		}
		ev := src.StreamEvents[0]
		if ev.Err != nil {
			return []string{fmt.Sprintf("%d", w), pacingStr, "failed", "-", fmt.Sprintf("%d", ev.Retransmissions)}, nil
		}
		return []string{fmt.Sprintf("%d", w), pacingStr, fmtDur(ev.Elapsed),
			fmtF(float64(size)/ev.Elapsed.Seconds(), 1),
			fmt.Sprintf("%d", ev.Retransmissions)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"windowing cannot win on a half-duplex single-channel chain: unpaced windows collide with their own forwarding (retransmissions explode, transfers can fail), and pacing wide enough to be safe degenerates to stop-and-wait timing — validating the prototype's stop-and-wait design")
	return res, nil
}

// A4SpreadingFactor sweeps SF7–SF12 on a fixed sparse field: low SFs lack
// range (disconnected mesh), high SFs connect everything but pay an
// airtime and duty-cycle price. The crossover picks the deployment SF.
func A4SpreadingFactor(opt Options) (*Result, error) {
	sfs := loraphy.AllSpreadingFactors()
	if opt.Quick {
		sfs = []loraphy.SpreadingFactor{loraphy.SF7, loraphy.SF10}
	}
	n := 10
	res := &Result{
		ID:     "A4",
		Title:  fmt.Sprintf("spreading-factor sweep: %d nodes on a fixed sparse field", n),
		Header: []string{"SF", "est. range", "connected", "convergence", "PDR", "airtime/node/h"},
	}
	// Field sized so SF7 cannot connect it but higher SFs can.
	topo, err := geo.ConnectedRandomGeometric(n, 60000, 60000, 28000, opt.Seed, 2000)
	if err != nil {
		return nil, err
	}
	rows, err := forEachPoint(opt, len(sfs), func(p int) ([]string, error) {
		sf := sfs[p]
		phy := loraphy.DefaultParams()
		phy.SpreadingFactor = sf
		rng, err := loraphy.MaxRangeMeters(phy, loraphy.DefaultLinkBudget(), loraphy.DefaultLogDistance(), 1e6)
		if err != nil {
			return nil, err
		}
		connected := geo.Connected(topo, rng)
		cfg := expNode()
		cfg.Phy = phy
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: cfg, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		convStr, pdrStr, airStr := ">2h", "-", "-"
		conv, ok := sim.TimeToConvergence(30*time.Second, 2*time.Hour)
		if ok {
			convStr = fmtDur(conv)
			var all []*netsim.TrafficStats
			for i := 0; i < n; i++ {
				st, err := sim.StartFlow(netsim.Flow{
					From: i, To: (i + n/2) % n, Payload: 24,
					Interval: 5 * time.Minute, Poisson: true,
				})
				if err != nil {
					return nil, err
				}
				all = append(all, st)
			}
			before := sim.TotalAirtime()
			sim.Run(time.Hour)
			total := netsim.MergeStats(all)
			pdrStr = fmtPct(total.DeliveryRatio())
			airStr = fmtDur((sim.TotalAirtime() - before) / time.Duration(n))
		}
		return []string{sf.String(), fmt.Sprintf("%.0fkm", rng/1000),
			fmt.Sprintf("%v", connected), convStr, pdrStr, airStr}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"the crossover: the lowest SF whose range connects the field wins — higher SFs only multiply airtime (x2 per step) against the same duty budget")
	return res, nil
}

// A5CAD toggles listen-before-talk under contention: many nodes in mutual
// range transmitting to a hub. CAD defers transmissions that would
// collide, trading latency for delivery.
func A5CAD(opt Options) (*Result, error) {
	n := 10
	dur := time.Hour
	if opt.Quick {
		n = 6
		dur = 30 * time.Minute
	}
	res := &Result{
		ID:     "A5",
		Title:  fmt.Sprintf("listen-before-talk: %d nodes in mutual range -> hub", n),
		Header: []string{"CAD", "PDR", "mean latency", "collision losses", "CAD deferrals"},
	}
	topo, err := geo.Star(n, 5000)
	if err != nil {
		return nil, err
	}
	cads := []bool{false, true}
	rows, err := forEachPoint(opt, len(cads), func(i int) ([]string, error) {
		cad := cads[i]
		cfg := expNode()
		cfg.CAD = cad
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: cfg, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(10*time.Second, 2*time.Hour); !ok {
			return nil, fmt.Errorf("A5: no convergence")
		}
		stats, err := sim.StartManyToOne(0, 24, 90*time.Second, true)
		if err != nil {
			return nil, err
		}
		sim.Run(dur)
		total := netsim.MergeStats(stats)
		ms := sim.Medium.Stats()
		snap := sim.AggregateMetrics().Snapshot()
		return []string{fmt.Sprintf("%v", cad), fmtPct(total.DeliveryRatio()),
			fmtDur(total.MeanLatency()),
			fmt.Sprintf("%d", ms.LostCollision),
			fmtF(snap["total.cad.deferrals"], 0)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"CAD converts collision losses into short deferrals: delivery rises, latency pays milliseconds")
	return res, nil
}
