package experiments

import (
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/gateway"
	"repro/internal/geo"
	"repro/internal/netsim"
)

// E11GatewayUplink measures the store-and-forward bridge end to end:
// telemetry flows many-to-one into a sink-side gateway whose uplink
// backend goes dark, and two minutes into that outage the mesh also
// partitions the sink away for a sweep of durations — a gateway site
// losing first its backhaul, then its radio neighborhood. The table
// reports what survives: uplink delivery ratio relative to the readings
// the sink heard, exactly-once integrity, spool high-water mark, breaker
// activity, and the age readings had reached when they finally left the
// spool.
func E11GatewayUplink(opt Options) (*Result, error) {
	n := 5
	outages := []time.Duration{0, 2 * time.Minute, 5 * time.Minute, 10 * time.Minute}
	if opt.Quick {
		n = 4
		outages = []time.Duration{0, 2 * time.Minute, 5 * time.Minute}
	}
	res := &Result{
		ID:    "E11",
		Title: fmt.Sprintf("gateway uplink under backend outage + sink partition, %d-node chain", n),
		Header: []string{"partition", "at sink", "uplinked", "ratio", "dupes",
			"spool max", "breaker opens", "mean age", "p95 age"},
	}

	rows, err := forEachPoint(opt, len(outages), func(p int) ([]string, error) {
		outage := outages[p]
		backend := gateway.NewBackend()
		srv := httptest.NewServer(backend)
		defer srv.Close()

		topo, err := geo.Line(n, chainSpacing)
		if err != nil {
			return nil, err
		}
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: expNode(), Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		g, err := gateway.New(gateway.Config{
			URL:              srv.URL,
			BatchSize:        8,
			FlushInterval:    30 * time.Second,
			RetryBase:        10 * time.Second,
			RetryMax:         time.Minute,
			BreakerThreshold: 3,
			BreakerCooldown:  time.Minute,
		})
		if err != nil {
			return nil, err
		}
		defer g.Close()
		if _, err := gateway.AttachSim(sim, 0, g); err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(30*time.Second, 2*time.Hour); !ok {
			return nil, fmt.Errorf("E11: mesh never converged")
		}
		if _, err := sim.StartManyToOne(0, 16, time.Minute, true); err != nil {
			return nil, err
		}

		// Warm-up with everything healthy, then the staged failure: the
		// backend goes dark first (readings still arrive, so the spool
		// absorbs them and the breaker trips), and two minutes later the
		// mesh partitions the sink away for the swept duration.
		sim.Run(5 * time.Minute)
		spoolMax := g.Pending()
		sample := func(total time.Duration) {
			for remaining := total; remaining > 0; {
				step := 30 * time.Second
				if step > remaining {
					step = remaining
				}
				sim.Run(step)
				remaining -= step
				if p := g.Pending(); p > spoolMax {
					spoolMax = p
				}
			}
		}
		if outage > 0 {
			rest := make([]int, 0, n-1)
			for i := 1; i < n; i++ {
				rest = append(rest, i)
			}
			backend.SetFailing(true)
			sample(2 * time.Minute)
			if err := sim.Partition([]int{0}, rest); err != nil {
				return nil, err
			}
			sample(outage)
			if err := sim.Heal([]int{0}, rest); err != nil {
				return nil, err
			}
			backend.SetFailing(false)
		}
		// Recovery window, then drain the spool completely.
		sim.Run(10 * time.Minute)
		if p := g.Pending(); p > spoolMax {
			spoolMax = p
		}
		if _, ok := sim.RunUntil(func() bool { return g.Pending() == 0 },
			30*time.Second, time.Hour); !ok {
			return nil, fmt.Errorf("E11: spool never drained after outage %v", outage)
		}

		reg := g.Metrics()
		atSink := len(sim.Handle(0).Msgs)
		uplinked := backend.Distinct()
		ratio := 0.0
		if atSink > 0 {
			ratio = float64(uplinked) / float64(atSink)
		}
		age := reg.Histogram("gw.uplink.age_ms")
		return []string{fmtDur(outage),
			fmt.Sprintf("%d", atSink),
			fmt.Sprintf("%d", uplinked),
			fmtF(100*ratio, 1) + "%",
			fmt.Sprintf("%d", backend.Duplicates()),
			fmt.Sprintf("%d", spoolMax),
			fmt.Sprintf("%d", reg.Counter("gw.breaker.opened").Value()),
			fmtDur(time.Duration(age.Mean()) * time.Millisecond),
			fmtDur(time.Duration(age.Quantile(0.95)) * time.Millisecond)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"ratio is uplinked/at-sink: the spool makes the backend outage invisible (100% with zero duplicates) while the partition only suppresses arrivals",
		"mean/p95 age show readings waiting out the outage in the spool rather than being lost")
	return res, nil
}
