package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/routing"
)

// chaosExpNode is the hardened configuration the chaos matrix measures:
// poisoning with triggered withdrawals plus capped-backoff streams, on
// timers fast enough that a two-hour run sees several fault cycles.
func chaosExpNode() core.Config {
	return core.Config{
		HelloPeriod:      time.Minute,
		Routing:          routing.Config{EntryTTL: 5 * time.Minute, Poisoning: true},
		TriggeredUpdates: true,
	}
}

// E12ChaosMatrix runs one telemetry workload under each fault class the
// injection layer models — random loss, burst loss, a one-way link, a
// flapping backbone link, a crash/restart, payload corruption, and all of
// them at once — and tabulates what the hardened stack still delivers.
// Every cell is deterministic in (scenario plan, seed).
func E12ChaosMatrix(opt Options) (*Result, error) {
	const n = 5
	runFor := 2 * time.Hour
	if opt.Quick {
		runFor = time.Hour
	}
	min := faults.Duration(time.Minute)

	scenarios := []struct {
		name string
		plan *faults.Plan
	}{
		{"baseline (no faults)", &faults.Plan{Name: "baseline"}},
		{"bernoulli p=0.2 on 1-2", &faults.Plan{Name: "bernoulli", Links: []faults.LinkFault{
			{From: 1, To: 2, Symmetric: true, Kind: faults.KindBernoulli, P: 0.2},
		}}},
		{"gilbert burst on 2-3", &faults.Plan{Name: "gilbert", Links: []faults.LinkFault{
			{From: 2, To: 3, Symmetric: true, Kind: faults.KindGilbert,
				PGoodToBad: 0.05, PBadToGood: 0.25, LossGood: 0.01, LossBad: 0.9},
		}}},
		{"asymmetric 1->2 block", &faults.Plan{Name: "asym", Links: []faults.LinkFault{
			{From: 1, To: 2, Kind: faults.KindBlock},
		}}},
		{"flap 1-2 (6min down/20min)", &faults.Plan{Name: "flap", Flaps: []faults.Flap{
			{A: 1, B: 2, Start: 10 * min, Period: 20 * min, Down: 6 * min, Count: 4},
		}}},
		{"crash node 2 (10min down)", &faults.Plan{Name: "crash", Crashes: []faults.Crash{
			{Node: 2, At: 30 * min, Downtime: 10 * min},
			{Node: 2, At: 80 * min, Downtime: 10 * min},
		}}},
		{"corruption 5%", &faults.Plan{Name: "corrupt",
			Corrupt: &faults.Corrupt{Rate: 0.05, MaxBits: 3}}},
		{"combined", &faults.Plan{Name: "combined",
			Links: []faults.LinkFault{
				{From: 2, To: 3, Symmetric: true, Kind: faults.KindBernoulli, P: 0.1},
			},
			Flaps: []faults.Flap{
				{A: 0, B: 1, Start: 15 * min, Period: 40 * min, Down: 6 * min, Count: 2},
			},
			Crashes: []faults.Crash{{Node: 3, At: 50 * min, Downtime: 10 * min}},
			Corrupt: &faults.Corrupt{Rate: 0.02, MaxBits: 3},
		}},
	}

	res := &Result{
		ID: "E12",
		Title: fmt.Sprintf("chaos matrix: delivery under injected faults, %d-node chain, %v",
			n, runFor),
		Header: []string{"scenario", "offered", "delivered", "PDR", "mean lat",
			"fault drops", "expired", "trig HELLOs"},
	}

	rows, err := forEachPoint(opt, len(scenarios), func(i int) ([]string, error) {
		sc := scenarios[i]
		topo, err := geo.Line(n, chainSpacing)
		if err != nil {
			return nil, err
		}
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: chaosExpNode(), Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(30*time.Second, 2*time.Hour); !ok {
			return nil, fmt.Errorf("E12 %s: mesh never converged", sc.name)
		}
		if err := sim.ApplyFaultPlan(sc.plan); err != nil {
			return nil, err
		}
		all, err := sim.StartManyToOne(0, 16, 2*time.Minute, true)
		if err != nil {
			return nil, err
		}
		sim.Run(runFor)
		if err := sim.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("E12 %s: invariants: %w", sc.name, err)
		}

		total := netsim.MergeStats(all)
		snap := sim.AggregateMetrics().Snapshot()
		// Injector drops plus frames dropped at crashed nodes, which the
		// injector never sees ("sim.drop.fault.down").
		var drops float64
		for key, v := range snap {
			if strings.HasPrefix(key, "sim.drop.fault.") {
				drops += v
			}
		}
		return []string{sc.name,
			fmt.Sprintf("%d", total.Offered),
			fmt.Sprintf("%d", total.Delivered),
			fmtPct(total.DeliveryRatio()),
			fmtDur(total.MeanLatency()),
			fmt.Sprintf("%.0f", drops),
			fmt.Sprintf("%.0f", snap["total.routes.expired"]),
			fmt.Sprintf("%.0f", snap["total.hello.triggered"]),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}

	res.Notes = []string{
		"Random and burst loss on one link cost delivery roughly in proportion to the",
		"loss the link's models inject; the ARQ on reliable paths is not exercised by",
		"these unicast datagrams, so the PDR drop is the raw multi-hop exposure.",
		"The asymmetric link is the worst case: the far side keeps hearing HELLOs it",
		"cannot answer, so everything upstream of the dead direction blackholes until",
		"poisoning withdraws it. Flaps and crashes cost little once triggered",
		"withdrawals prune the dead branch between windows; corruption behaves like",
		"light random loss because the virtual PHY CRC catches nearly every hit.",
		"The crash row shows zero fault drops because a crashed radio is deaf at the",
		"medium — frames aimed at it are never delivered, so they never reach the",
		"drop ledger; the loss appears purely as the PDR dip while the node is down.",
	}
	return res, nil
}
