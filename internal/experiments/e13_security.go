package experiments

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/meshsec"
	"repro/internal/netsim"
)

// e13Key is the fixed network key E13 uses when Options.SecKey is nil, so
// the published tables reproduce without any flag.
var e13Key = meshsec.Key{
	0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
	0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
}

// E13Security measures what link-layer security costs: the same
// multi-hop datagram workload runs over each chain length twice — once
// plaintext, once with authenticated encryption on every frame — and the
// table puts delivery, latency, airtime, and the security header+MIC's
// share of transmitted bytes side by side. The expected shape is
// delivery parity (the 9-byte overhead rarely pushes a frame over an
// airtime threshold) with a single-digit byte-overhead percentage that
// shrinks as payloads grow.
func E13Security(opt Options) (*Result, error) {
	hops := []int{1, 3, 5}
	count := 30
	interval := time.Minute
	if opt.Quick {
		hops = []int{1, 3}
		count = 10
	}
	key := opt.SecKey
	if key == nil {
		k := e13Key
		key = &k
	}

	res := &Result{
		ID: "E13",
		Title: fmt.Sprintf("link-layer security overhead (%d datagrams per cell, 24 B payload)",
			count),
		Header: []string{"hops", "security", "PDR", "mean lat", "airtime", "sec bytes"},
	}

	type cell struct {
		hops    int
		secured bool
	}
	var cells []cell
	for _, h := range hops {
		cells = append(cells, cell{h, false}, cell{h, true})
	}

	rows, err := forEachPoint(opt, len(cells), func(i int) ([]string, error) {
		c := cells[i]
		n := c.hops + 1
		topo, err := geo.Line(n, chainSpacing)
		if err != nil {
			return nil, err
		}
		var sk *meshsec.Key
		mode := "off"
		if c.secured {
			sk = key
			mode = "on"
		}
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: expNode(), Seed: opt.Seed, SecKey: sk})
		if err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(30*time.Second, 2*time.Hour); !ok {
			return nil, fmt.Errorf("E13 %d hops (sec %s): mesh never converged", c.hops, mode)
		}
		stats, err := sim.StartFlow(netsim.Flow{
			From: 0, To: n - 1, Payload: 24, Interval: interval, Count: count, Poisson: true,
		})
		if err != nil {
			return nil, err
		}
		sim.Run(time.Duration(count)*interval + 10*time.Minute)
		if err := sim.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("E13 %d hops (sec %s): invariants: %w", c.hops, mode, err)
		}

		snap := sim.AggregateMetrics().Snapshot()
		// A benign secured run that rejects its own traffic is a protocol
		// bug, not a data point.
		if hostile := snap["total.sec.drop.auth"] + snap["total.sec.drop.replay"]; hostile != 0 {
			return nil, fmt.Errorf("E13 %d hops (sec %s): %v frames dropped as hostile with no attacker",
				c.hops, mode, hostile)
		}
		secShare := "—"
		if c.secured && snap["total.tx.bytes"] > 0 {
			secShare = fmtPct(snap["total.sec.overhead.bytes"] / snap["total.tx.bytes"])
		}
		return []string{fmt.Sprintf("%d", c.hops), mode,
			fmtPct(stats.DeliveryRatio()),
			fmtDur(stats.MeanLatency()),
			fmtDur(sim.TotalAirtime()),
			secShare,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}

	res.Notes = []string{
		"Authenticated encryption is delivery-neutral at every chain length: the",
		"security header+MIC neither changes routing behavior nor pushes these",
		"frames across a collision-odds threshold, so the secured PDR tracks",
		"plaintext within noise. End-to-end latency grows ~15 ms per hop — the",
		"airtime of the 9 extra on-air bytes at this spreading factor; the CMAC",
		"itself costs microseconds and is invisible. The sec-bytes column is the",
		"real price: on a mesh of small frames (HELLOs, 24 B datagrams) the fixed",
		"per-frame overhead is a dominant fraction of transmitted bytes, and it",
		"amortizes only as payloads grow.",
	}
	return res, nil
}
