package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
)

// E14Observer measures what always-on observability costs: the same
// 3-hop datagram workload runs three times — bare, with hop-level span
// capture armed (flight recorder, no sink), and with span capture plus
// the mesh health monitor polling — and the table puts delivery,
// latency, and heap allocations side by side. Under virtual time the
// observer must be behavior-neutral: spans and health polls read the
// simulation, never perturb it, so PDR and latency are asserted
// identical across modes and the only degree of freedom left is the
// allocation count. The run is serial by design (it ignores
// Options.Parallel): the allocation deltas come from
// runtime.ReadMemStats, a process-global counter that concurrent sweep
// workers would pollute.
func E14Observer(opt Options) (*Result, error) {
	count := 30
	interval := time.Minute
	if opt.Quick {
		count = 10
	}

	res := &Result{
		ID: "E14",
		Title: fmt.Sprintf("observer overhead: spans and health monitor on vs off (%d datagrams, 3 hops)",
			count),
		Header: []string{"observer", "PDR", "mean lat", "heap allocs", "segments", "health polls"},
	}

	type mode struct {
		name   string
		spans  int
		health time.Duration
	}
	modes := []mode{
		{"off", 0, 0},
		{"spans", 16384, 0},
		{"spans+health", 16384, 30 * time.Second},
	}

	var basePDR, baseLat string
	for _, m := range modes {
		topo, err := geo.Line(4, chainSpacing)
		if err != nil {
			return nil, err
		}
		sim, err := netsim.New(netsim.Config{
			Topology: topo, Node: expNode(), Seed: opt.Seed,
			SpanCapacity: m.spans, HealthInterval: m.health,
		})
		if err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(30*time.Second, 2*time.Hour); !ok {
			return nil, fmt.Errorf("E14 (%s): mesh never converged", m.name)
		}
		stats, err := sim.StartFlow(netsim.Flow{
			From: 0, To: 3, Payload: 24, Interval: interval, Count: count, Poisson: true,
		})
		if err != nil {
			return nil, err
		}

		// Allocation accounting brackets the measured run only: setup and
		// convergence (identical across modes) stay outside, and a forced
		// GC settles the heap so the delta is the run's own.
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		sim.Run(time.Duration(count)*interval + 10*time.Minute)
		runtime.ReadMemStats(&after)
		allocs := after.Mallocs - before.Mallocs

		if err := sim.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("E14 (%s): invariants: %w", m.name, err)
		}
		pdr := fmtPct(stats.DeliveryRatio())
		lat := fmtDur(stats.MeanLatency())
		if m.name == "off" {
			basePDR, baseLat = pdr, lat
		} else if pdr != basePDR || lat != baseLat {
			// The observer changed what it observed — a bug, not overhead.
			return nil, fmt.Errorf("E14 (%s): behavior not neutral: PDR %s vs %s, latency %s vs %s",
				m.name, pdr, basePDR, lat, baseLat)
		}

		segments := "—"
		if sim.Spans != nil {
			segments = fmt.Sprintf("%d", sim.Spans.Total())
		}
		polls := "—"
		if sim.Health != nil {
			polls = fmt.Sprintf("%d", sim.Health.Verdict()["polls"])
		}
		res.AddRow(m.name, pdr, lat, fmt.Sprintf("%d", allocs), segments, polls)
	}

	res.Notes = []string{
		"Observability is behavior-neutral by construction: span capture and",
		"health polls read the simulation without perturbing it, so delivery and",
		"latency are identical across the three rows (the run fails if not). The",
		"cost shows up only as heap allocations. The span hot path itself is",
		"allocation-free (value records into a pre-allocated ring; see the",
		"0 allocs/op guard in internal/span) — the delta against `off` comes",
		"from per-poll health snapshots and span-ring bookkeeping at the edges,",
		"and stays small against the simulator's own event machinery.",
	}
	return res, nil
}
