package experiments

import (
	"fmt"
	"time"

	"repro/internal/citysim"
)

// E15CityMesh produces the city-scale scaling curve: the same telemetry
// workload at each network size runs once on the serial reference executor
// (single wheel, full O(n) station scans — the design that caps the
// per-node engine at demo scale) and once per shard count on the sharded
// executor, and the table lines up events/sec, wall-clock speedup,
// delivery, latency, and resident state. The digest column is the
// determinism witness: rows of the same size must print the same digest
// regardless of executor, which the experiment asserts. Wall-clock derived
// columns (wall, events/s, speedup) are machine-specific; everything else
// is byte-reproducible per seed.
//
// The run is serial by design (it ignores Options.Parallel): rows measure
// wall time, which concurrent sweep workers would distort.
func E15CityMesh(opt Options) (*Result, error) {
	type size struct {
		nodes  int
		shards []int // 0 is the serial reference
		sim    time.Duration
	}
	var plan []size
	if opt.Quick {
		plan = []size{
			{1000, []int{0, 4}, 12 * time.Minute},
			{4000, []int{4}, 12 * time.Minute},
		}
	} else {
		plan = []size{
			{1000, []int{0, 2, 4, 8}, 20 * time.Minute},
			// At 10k the serial reference costs ~100ms of wall per
			// simulated second, so its horizon stays short: the row pins
			// digest equality and the speedup at scale. Six minutes is
			// just long enough for the first telemetry readings (which
			// fire between 3 and 9 min) to reach nearby sinks; routes to
			// distant sinks are still converging, so delivery is partial
			// by design — the 50k row carries the long-horizon PDR.
			{10000, []int{0, 4, 8}, 6 * time.Minute},
			// The RAM-fit row: sharded only (a full scan at this size
			// costs minutes of wall per simulated minute), long horizon
			// for a meaningful delivery figure.
			{50000, []int{8}, 20 * time.Minute},
		}
	}
	if opt.Nodes > 0 {
		sh := 4
		if opt.Shards > 0 {
			sh = opt.Shards
		}
		plan = []size{{opt.Nodes, []int{0, sh}, 150 * time.Second}}
	} else if opt.Shards > 0 {
		for i := range plan {
			kept := plan[i].shards[:0]
			for _, k := range plan[i].shards {
				if k == 0 || k == opt.Shards {
					kept = append(kept, k)
				}
			}
			if len(kept) == 0 || kept[len(kept)-1] != opt.Shards {
				kept = append(kept, opt.Shards)
			}
			plan[i].shards = kept
		}
	}

	res := &Result{
		ID:     "E15",
		Title:  "city mesh: sharded-simulator scaling curve (telemetry workload, sinks every ~640 nodes)",
		Header: []string{"nodes", "executor", "sim", "sinks", "cells", "frames", "PDR", "mean lat", "events/s", "speedup", "state", "digest"},
	}

	var bestSpeedup float64
	var bestLabel string
	for _, sz := range plan {
		var serialWall time.Duration
		var serialDigest uint64
		for _, shards := range sz.shards {
			sim, err := citysim.New(citysim.Config{
				Nodes:  sz.nodes,
				Shards: shards,
				Seed:   opt.Seed,
				// City-telemetry cadence: beacons every 2 min, readings
				// every 6 min, so the default sink density (~1 per 640
				// nodes) keeps last-hop channel utilization under ~15%.
				HelloPeriod: 2 * time.Minute,
				DataPeriod:  6 * time.Minute,
			})
			if err != nil {
				return nil, fmt.Errorf("E15 (n=%d shards=%d): %w", sz.nodes, shards, err)
			}
			if err := sim.Run(sz.sim); err != nil {
				return nil, fmt.Errorf("E15 (n=%d shards=%d): %w", sz.nodes, shards, err)
			}
			st := sim.Stats()
			digest := sim.Digest()

			executor := "serial"
			speedup := "1.00x"
			if shards == 0 {
				serialWall = st.Wall
				serialDigest = digest
			} else {
				executor = fmt.Sprintf("%d-shard", st.Shards)
				if serialWall > 0 {
					ratio := serialWall.Seconds() / st.Wall.Seconds()
					speedup = fmtF(ratio, 2) + "x"
					if ratio > bestSpeedup {
						bestSpeedup = ratio
						bestLabel = fmt.Sprintf("%d nodes / %d shards", sz.nodes, st.Shards)
					}
				} else {
					speedup = "-"
				}
				if serialWall > 0 && digest != serialDigest {
					return nil, fmt.Errorf("E15 (n=%d shards=%d): digest %016x diverged from serial %016x",
						sz.nodes, shards, digest, serialDigest)
				}
			}
			res.AddRow(
				fmt.Sprintf("%d", st.Nodes),
				executor,
				fmtDur(sz.sim),
				fmt.Sprintf("%d", st.Sinks),
				fmt.Sprintf("%d", st.Cells),
				fmt.Sprintf("%d", st.FramesSent),
				fmtPct(st.PDR()),
				fmtDur(st.MeanLatency()),
				fmt.Sprintf("%.0f", st.EventsPerSec()),
				speedup,
				fmtMB(st.StateBytes),
				fmt.Sprintf("%016x", digest),
			)
		}
	}
	res.Notes = append(res.Notes,
		"rows of equal size share a digest: the sharded executor is byte-identical to the serial reference per seed (asserted)")
	if bestLabel != "" {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"best wall-clock speedup %.1fx at %s; the win is algorithmic (cell-bounded neighbor scans vs full O(n) scans) and grows with node count",
			bestSpeedup, bestLabel))
	}
	res.Notes = append(res.Notes,
		"state column is resident engine footprint (SoA slabs + link slabs + queues): the city fits in RAM at 50k nodes and extrapolates linearly to 100k",
		"wall-clock columns (events/s, speedup) are machine-specific; all other columns reproduce byte-identically per seed")
	return res, nil
}

func fmtMB(b uint64) string {
	return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
}
