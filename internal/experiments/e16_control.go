package experiments

import (
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/meshsec"
	"repro/internal/netsim"
)

// E16SelfHealing measures mean-time-to-repair for the self-healing
// control plane: three fault scenarios, each run with the controller off
// and on, with MTTR measured from fault injection to the recovery
// signal.
//
//   - blackhole: a relay on the active path dies while an equal-metric
//     alternate exists. Distance-vector tables do not switch on equal
//     metric, so without a controller the stale route persists until
//     EntryTTL; the blackhole playbook purges it and re-routes within a
//     HELLO period. Recovery = first probe delivered after the kill.
//   - silent: a relay wedges (powered, radio deaf, counters frozen).
//     Nothing in the data plane can fix a hung engine; the silent
//     playbook's in-band reboot exhausts its retries and escalates to a
//     host power-cycle. Recovery = first probe delivered after the hang.
//   - replay: an attacker camps next to a relay replaying a sniffed
//     corpus (capture frozen after 60 s). Replays of old frames are
//     rejected forever but keep authenticating, so the anomaly never
//     ends on its own; the replay playbook rotates the network key and
//     the commit wave makes the corpus die at the MIC. Recovery = the
//     replay-drop counter going quiet while the attacker keeps
//     transmitting.
//
// The table's shape is the point: every controller-on cell recovers
// inside the horizon and no controller-off cell does, with detection
// latency (the health monitor runs in both columns) separated from
// repair latency (controller-only).
func E16SelfHealing(opt Options) (*Result, error) {
	const probeEvery = 15 * time.Second
	horizon := 8 * time.Minute
	if opt.Quick {
		horizon = 6 * time.Minute
	}
	key := opt.SecKey
	if key == nil {
		k := e13Key
		key = &k
	}

	res := &Result{
		ID: "E16",
		Title: fmt.Sprintf("self-healing MTTR: controller off vs on (%v horizon, probes every %v)",
			horizon, probeEvery),
		Header: []string{"fault", "controller", "detected", "recovered", "MTTR", "mechanism"},
	}

	type cell struct {
		fault string
		ctl   bool
	}
	var cells []cell
	for _, f := range []string{"blackhole", "silent", "replay"} {
		cells = append(cells, cell{f, false}, cell{f, true})
	}

	rows, err := forEachPoint(opt, len(cells), func(i int) ([]string, error) {
		return e16Cell(opt, cells[i].fault, cells[i].ctl, *key, horizon, probeEvery)
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows

	res.Notes = append(res.Notes,
		"MTTR runs from fault injection to the recovery signal: a delivered probe (blackhole, silent) or the replay-drop counter going quiet for 2min while the attacker keeps injecting (replay).",
		"Detection is the health monitor's first matching violation and is controller-independent; repair is what the controller adds.",
		"Every controller-off cell holds its fault to the horizon: the stale route outlives it (EntryTTL 10m), the wedged node has no external actor, and the frozen corpus keeps authenticating under the never-rotated key.")
	return res, nil
}

// e16Cell runs one (fault, controller) cell and returns its table row.
func e16Cell(opt Options, fault string, withCtl bool, key meshsec.Key,
	horizon, probeEvery time.Duration) ([]string, error) {

	const settle = time.Minute
	// The replay cell judges recovery by quiescence: no replay-drop
	// growth for this long (8 attacker periods) while injections go on.
	const quiet = 2 * time.Minute

	nodeCfg := expNode()
	nodeCfg.HelloPeriod = time.Minute // repair latency is bounded by the beacon period

	var topo *geo.Topology
	var err error
	probeTo := 0
	switch fault {
	case "blackhole":
		// A diamond: 0-1, 0-2, 1-3, 2-3 in range, diagonals out of
		// range. Killing the relay 0 routes through leaves the other as
		// an equal-metric alternate.
		topo, err = geo.Grid(2, 2, 10000)
		probeTo = 3
	case "silent":
		topo, err = geo.Line(4, chainSpacing)
		probeTo = 3
	case "replay":
		topo, err = geo.Line(3, chainSpacing)
		probeTo = 2
	default:
		return nil, fmt.Errorf("experiments: e16: unknown fault %q", fault)
	}
	if err != nil {
		return nil, err
	}

	k := key
	// Health polls at 30 s: the silent detector's window (3 polls) must
	// exceed the 1 min HELLO period, or a merely-quiet leaf node looks
	// dead every time a beacon misses the window.
	sim, err := netsim.New(netsim.Config{
		Topology:       topo,
		Node:           nodeCfg,
		Seed:           opt.Seed,
		SecKey:         &k,
		HealthInterval: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	if _, ok := sim.TimeToConvergence(time.Second, 30*time.Minute); !ok {
		return nil, fmt.Errorf("experiments: e16 %s: mesh never converged", fault)
	}

	// Probe deliveries timestamped at the sink: the recovery signal for
	// the path faults, and capture material for the attacker in all
	// three scenarios.
	var delivered []time.Time
	sim.Handle(probeTo).OnMessage = func(core.AppMessage) {
		delivered = append(delivered, sim.Now())
	}

	if withCtl {
		if _, err := sim.AttachController(netsim.ControllerConfig{
			// Version 0 + KeyEpoch 0: no configuration churn — the
			// controller is idle until the playbooks have a violation
			// to act on, so pre-fault behavior matches the off column.
			State: &control.State{
				Version: 0,
				NetKey:  hex.EncodeToString(k[:]),
			},
			PollInterval:  10 * time.Second,
			RetryInterval: 45 * time.Second,
			MaxRetries:    2,
			Cooldown:      5 * time.Minute,
			StallDecay:    90 * time.Second,
		}); err != nil {
			return nil, err
		}
	}

	probe := func() {
		// Unreliable datagrams: a probe must not outlive the fault via
		// transport retries, or MTTR would measure the stream layer.
		_ = sim.Handle(0).Mesher.Send(sim.Handle(probeTo).Addr, []byte("e16 probe"))
	}

	// Settle with live probes so the attacker (armed at fault time)
	// has traffic to capture and the pre-fault path demonstrably works.
	for t := time.Duration(0); t < settle; t += probeEvery {
		probe()
		sim.Run(probeEvery)
	}
	if len(delivered) == 0 {
		return nil, fmt.Errorf("experiments: e16 %s: no probe delivered before the fault", fault)
	}

	// Inject the fault.
	faultAt := sim.Now()
	switch fault {
	case "blackhole":
		via, ok := sim.Handle(0).Mesher.Table().NextHop(sim.Handle(probeTo).Addr)
		if !ok {
			return nil, fmt.Errorf("experiments: e16: no route to the probe sink")
		}
		relay := sim.ByAddr(via)
		if relay == nil {
			return nil, fmt.Errorf("experiments: e16: next hop %v is not a node", via)
		}
		if err := sim.Kill(relay.Index); err != nil {
			return nil, err
		}
	case "silent":
		if err := sim.Hang(2); err != nil {
			return nil, err
		}
	case "replay":
		// The attacker camps at the far edge node: its corpus reaches
		// only nodes that already hear the replayed origins live, so
		// every injection is detectably stale (meshsec drops it) rather
		// than a wormhole teleporting beacons past their one-hop reach.
		if err := sim.ApplyFaultPlan(&faults.Plan{
			Name: "e16-replay",
			Attackers: []faults.Attacker{{
				Node:         2,
				Start:        0,
				Period:       faults.Duration(4 * time.Second),
				Replay:       true,
				CaptureUntil: faults.Duration(time.Minute),
			}},
		}); err != nil {
			return nil, err
		}
	}

	// Measure: step to the horizon, recording first detection and the
	// recovery signal.
	var detectedAt, recoveredAt time.Time
	kind := fault // violation kinds share the scenario names
	lastReplayDrops := sim.AggregateMetrics().Snapshot()["total.sec.drop.replay"]
	lastGrowth := faultAt
	for sim.Now().Sub(faultAt) < horizon {
		probe()
		sim.Run(probeEvery)
		snap := sim.AggregateMetrics().Snapshot()
		if detectedAt.IsZero() && snap["health.violation."+kind] > 0 {
			detectedAt = sim.Now()
		}
		switch fault {
		case "blackhole", "silent":
			if recoveredAt.IsZero() {
				for _, at := range delivered {
					if at.After(faultAt) {
						recoveredAt = at
						break
					}
				}
			}
		case "replay":
			if d := snap["total.sec.drop.replay"]; d > lastReplayDrops {
				lastReplayDrops = d
				lastGrowth = sim.Now()
			}
		}
	}
	if fault == "replay" && sim.Now().Sub(lastGrowth) >= quiet && lastGrowth.After(faultAt) {
		recoveredAt = lastGrowth
	}

	// Render the row.
	ctlCol := "off"
	if withCtl {
		ctlCol = "on"
	}
	detCol, recCol, mttrCol := "never", "no", ">"+fmtDur(horizon)
	if !detectedAt.IsZero() {
		detCol = fmtDur(detectedAt.Sub(faultAt))
	}
	if !recoveredAt.IsZero() {
		recCol = "yes"
		mttrCol = fmtDur(recoveredAt.Sub(faultAt))
	}
	snap := sim.AggregateMetrics().Snapshot()
	var mech string
	switch {
	case fault == "blackhole" && withCtl:
		mech = "route purged, re-routed via alternate relay"
	case fault == "blackhole":
		mech = "stale route held (EntryTTL 10m > horizon)"
	case fault == "silent" && withCtl:
		mech = fmt.Sprintf("in-band reboot exhausted; %d power-cycle escalation(s)",
			int(snap["sim.fault.reboot"]))
	case fault == "silent":
		mech = "node stays wedged (no external actor)"
	case fault == "replay" && withCtl:
		mech = fmt.Sprintf("rekeyed to epoch %d; corpus now dies at auth",
			int(snap["ctl.key.epoch"]))
	case fault == "replay":
		mech = "frozen corpus keeps authenticating under old key"
	}
	return []string{fault, ctlCol, detCol, recCol, mttrCol, mech}, nil
}
