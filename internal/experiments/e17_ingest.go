package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/gateway"
)

// E17Ingest measures the ingest path's throughput ladder on the load
// harness (internal/gateway.RunLoad): the same reading population runs
// through one configuration per rung — serial baseline, WAL group
// commit, pipelined uplink, sharded backend, the full combination, and
// finally a two-gateway fleet with handover overlap and a mid-stream
// crash/restart. Every rung must stay exactly-once (asserted: zero lost,
// zero double-accepted readings); the crash rung additionally proves the
// group-commit window lost by kill -9 is recovered through fleet
// handover plus origin-sharded backend dedup.
//
// The backend answers after a simulated WAN round trip, so the ladder
// shows what each knob actually buys: group commit amortizes WAL
// flushes, sharding multiplies independent lanes, pipelining overlaps
// round trips within a lane. Wall-clock columns (readings/s, speedup)
// are machine-specific; the delivery ledger reproduces per seed.
//
// The run is serial by design (it ignores Options.Parallel): rungs
// measure wall time, which concurrent workers would distort.
func E17Ingest(opt Options) (*Result, error) {
	readings, rtt := 20000, 10*time.Millisecond
	if opt.Quick {
		readings, rtt = 6000, 5*time.Millisecond
	}
	spool, err := os.MkdirTemp("", "e17-ingest-")
	if err != nil {
		return nil, fmt.Errorf("E17: %w", err)
	}
	defer os.RemoveAll(spool)

	base := gateway.LoadConfig{
		Readings: readings, Origins: 64, BatchSize: 64,
		BackendLatency: rtt, Seed: opt.Seed,
	}
	type rung struct {
		label string
		mod   func(*gateway.LoadConfig)
	}
	gc := 2 * time.Millisecond
	rungs := []rung{
		{"serial", func(c *gateway.LoadConfig) {}},
		{"group-commit", func(c *gateway.LoadConfig) { c.GroupCommit = gc }},
		{"pipelined w4", func(c *gateway.LoadConfig) { c.Pipeline = 4 }},
		{"sharded 4", func(c *gateway.LoadConfig) { c.Shards = 4 }},
		{"sharded+pipelined", func(c *gateway.LoadConfig) {
			c.Shards, c.Pipeline, c.GroupCommit = 4, 4, gc
		}},
		{"fleet 2gw overlap", func(c *gateway.LoadConfig) {
			c.Shards, c.Pipeline, c.GroupCommit = 4, 4, gc
			c.Gateways, c.Overlap = 2, 0.2
		}},
		{"fleet+crash/restart", func(c *gateway.LoadConfig) {
			c.Shards, c.Pipeline, c.GroupCommit = 4, 4, gc
			c.Gateways, c.Overlap, c.CrashRestart = 2, 0.2, true
		}},
	}

	res := &Result{
		ID:     "E17",
		Title:  "ingest at scale: WAL group commit, sharded dedup, pipelined uplink, fleet handover",
		Header: []string{"config", "gw", "shards", "pipeline", "gc", "readings/s", "speedup", "distinct", "dupes", "double-acc", "lost"},
	}
	var serialRate float64
	for _, r := range rungs {
		cfg := base
		r.mod(&cfg)
		dir, err := os.MkdirTemp(spool, "rung-")
		if err != nil {
			return nil, fmt.Errorf("E17 (%s): %w", r.label, err)
		}
		cfg.SpoolDir = dir
		rep, err := gateway.RunLoad(cfg)
		if err != nil {
			return nil, fmt.Errorf("E17 (%s): %w", r.label, err)
		}
		if !rep.ExactlyOnce() {
			return nil, fmt.Errorf("E17 (%s): delivery not exactly-once: %s", r.label, rep)
		}
		speedup := "1.00x"
		if r.label == "serial" {
			serialRate = rep.ReadingsPerSec
		} else if serialRate > 0 {
			speedup = fmtF(rep.ReadingsPerSec/serialRate, 2) + "x"
		}
		gcCell := "off"
		if rep.GroupCommit > 0 {
			gcCell = rep.GroupCommit.String()
		}
		res.AddRow(
			r.label,
			fmt.Sprintf("%d", rep.Gateways),
			fmt.Sprintf("%d", rep.Shards),
			fmt.Sprintf("%d", rep.Pipeline),
			gcCell,
			fmt.Sprintf("%.0f", rep.ReadingsPerSec),
			speedup,
			fmt.Sprintf("%d", rep.Distinct),
			fmt.Sprintf("%d", rep.Duplicates),
			fmt.Sprintf("%d", rep.DoubleAccepted),
			fmt.Sprintf("%d", rep.Lost),
		)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("every rung delivered %d/%d readings with zero double-accepts (asserted): sharded dedup keeps exactly-once through overlap and crash/restart", readings, readings),
		fmt.Sprintf("backend answers after a %v simulated round trip: the knobs amortize that latency — sharding multiplies lanes, pipelining overlaps round trips within a lane, group commit batches WAL flushes", rtt),
		"dupes are redundant uploads the backend suppressed (handover/crash re-delivery working as designed), not correctness violations",
		"wall-clock columns (readings/s, speedup) are machine-specific; the delivery ledger reproduces per seed")
	return res, nil
}
