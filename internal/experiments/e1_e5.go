package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/airmedium"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/loraphy"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/routing"
)

// chainSpacing keeps adjacent chain nodes in SF7 range (≈13 km) while the
// next-but-one node is out of range, forcing true multi-hop structure.
const chainSpacing = 8000.0

// expNode is the node template experiments share: a 2-minute HELLO period
// (the prototype's order of magnitude, shortened for simulation economy)
// and regulation on.
func expNode() core.Config {
	return core.Config{
		HelloPeriod: 2 * time.Minute,
		Routing:     routing.Config{EntryTTL: 10 * time.Minute},
	}
}

// E1MeshFormation reproduces the demo's headline scene: nodes powered on
// with empty tables form a mesh, and two end nodes communicate while the
// others route. The table tracks the network's knowledge over time.
func E1MeshFormation(opt Options) (*Result, error) {
	n := 5
	topo, err := geo.Line(n, chainSpacing)
	if err != nil {
		return nil, err
	}
	sim, err := netsim.New(netsim.Config{Topology: topo, Node: expNode(), Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "E1",
		Title:  fmt.Sprintf("mesh formation, %d-node chain, %0.f km spacing", n, chainSpacing/1000),
		Header: []string{"t", "avg routes known", "converged"},
	}
	checkpoints := []time.Duration{
		30 * time.Second, time.Minute, 2 * time.Minute, 4 * time.Minute,
		8 * time.Minute, 16 * time.Minute,
	}
	prev := time.Duration(0)
	for _, cp := range checkpoints {
		sim.Run(cp - prev)
		prev = cp
		total := 0
		for i := 0; i < sim.N(); i++ {
			total += sim.Handle(i).Mesher.Table().Len()
		}
		res.AddRow(fmtDur(cp), fmtF(float64(total)/float64(sim.N()), 1),
			fmt.Sprintf("%v", sim.Converged()))
	}
	// The demo's payoff: end-to-end data through the routers.
	if err := sim.Handle(0).Proto.Send(sim.Handle(n-1).Addr, []byte("demo")); err != nil {
		return nil, err
	}
	sim.Run(time.Minute)
	delivered := len(sim.Handle(n - 1).Msgs)
	forwards := uint64(0)
	for i := 1; i < n-1; i++ {
		forwards += sim.Handle(i).Proto.Metrics().Counter("fwd.frames").Value()
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("end-to-end datagram delivered=%d via %d router forwards (paper: two nodes communicate while the others operate as routers)", delivered, forwards))
	return res, nil
}

// E2PacketFormats regenerates the library's packet-format table: per-type
// header overhead, maximum payload, and SF7 airtime — the structural cost
// of the protocol.
func E2PacketFormats(Options) (*Result, error) {
	res := &Result{
		ID:     "E2",
		Title:  "LoRaMesher wire formats (SF7/BW125/CR4_5 airtimes)",
		Header: []string{"type", "header B", "max payload B", "airtime empty", "airtime full"},
	}
	phy := loraphy.DefaultParams()
	types := []packet.Type{
		packet.TypeHello, packet.TypeData, packet.TypeDataAck,
		packet.TypeSync, packet.TypeXLData, packet.TypeAck, packet.TypeLost,
	}
	for _, typ := range types {
		hdr := packet.HeaderLen(typ)
		maxP := packet.MaxPayload(typ)
		empty, err := phy.Airtime(hdr)
		if err != nil {
			return nil, err
		}
		full, err := phy.Airtime(hdr + maxP)
		if err != nil {
			return nil, err
		}
		res.AddRow(typ.String(), fmt.Sprintf("%d", hdr), fmt.Sprintf("%d", maxP),
			fmtDur(empty), fmtDur(full))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("HELLO carries %d routing entries per frame at 4 B each", packet.MaxHelloEntries))
	return res, nil
}

// E3Convergence measures time until every routing table is complete, as a
// function of network size, on chains and connected random fields.
func E3Convergence(opt Options) (*Result, error) {
	sizes := []int{2, 4, 8, 12, 16, 24}
	if opt.Quick {
		sizes = []int{2, 4, 8}
	}
	res := &Result{
		ID:     "E3",
		Title:  "time to full routing convergence (HELLO period 2 min)",
		Header: []string{"nodes", "chain", "chain diam", "random", "random diam"},
	}
	rows, err := forEachPoint(opt, len(sizes), func(i int) ([]string, error) {
		n := sizes[i]
		chain, err := geo.Line(n, chainSpacing)
		if err != nil {
			return nil, err
		}
		chainT, chainOK, err := convergenceTime(chain, opt.Seed)
		if err != nil {
			return nil, err
		}
		side := 12000.0 * math.Sqrt(float64(n)/4) // area grows with n: constant density
		random, err := geo.ConnectedRandomGeometric(n, side, side, 12000, opt.Seed, 1000)
		if err != nil {
			return nil, err
		}
		randT, randOK, err := convergenceTime(random, opt.Seed)
		if err != nil {
			return nil, err
		}
		cd := geo.Diameter(chain, 13000)
		rd := geo.Diameter(random, 13000)
		return []string{fmt.Sprintf("%d", n),
			okDur(chainT, chainOK), fmt.Sprintf("%d", cd),
			okDur(randT, randOK), fmt.Sprintf("%d", rd)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"convergence grows with network diameter: each extra hop costs about one HELLO period",
	)
	return res, nil
}

func okDur(d time.Duration, ok bool) string {
	if !ok {
		return ">max"
	}
	return fmtDur(d)
}

func convergenceTime(topo *geo.Topology, seed int64) (time.Duration, bool, error) {
	sim, err := netsim.New(netsim.Config{Topology: topo, Node: expNode(), Seed: seed})
	if err != nil {
		return 0, false, err
	}
	d, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour)
	return d, ok, nil
}

// E4ControlOverhead measures the airtime the routing protocol itself
// consumes: HELLO beacons per node per hour across network sizes, against
// the EU868 1% budget.
func E4ControlOverhead(opt Options) (*Result, error) {
	sizes := []int{4, 8, 16}
	if opt.Quick {
		sizes = []int{4, 8}
	}
	dur := 2 * time.Hour
	if opt.Quick {
		dur = time.Hour
	}
	res := &Result{
		ID:     "E4",
		Title:  "routing control overhead (idle mesh, HELLO period 2 min)",
		Header: []string{"nodes", "hello frames/node/h", "hello airtime/node/h", "% of 1% budget", "hello bytes/frame"},
	}
	rows, err := forEachPoint(opt, len(sizes), func(i int) ([]string, error) {
		n := sizes[i]
		side := 12000.0 * math.Sqrt(float64(n)/4)
		topo, err := geo.ConnectedRandomGeometric(n, side, side, 12000, opt.Seed, 1000)
		if err != nil {
			return nil, err
		}
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: expNode(), Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		sim.Run(dur)
		snap := sim.AggregateMetrics().Snapshot()
		hours := dur.Hours()
		helloFrames := snap["total.hello.sent"] / float64(n) / hours
		airPerNodeH := sim.TotalAirtime() / time.Duration(n) / time.Duration(hours)
		budget := 36 * time.Second
		txBytes := snap["total.tx.bytes"]
		txFrames := snap["total.tx.frames"]
		avgFrame := 0.0
		if txFrames > 0 {
			avgFrame = txBytes / txFrames
		}
		return []string{fmt.Sprintf("%d", n),
			fmtF(helloFrames, 1), fmtDur(airPerNodeH),
			fmtPct(float64(airPerNodeH) / float64(budget)),
			fmtF(avgFrame, 1)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"HELLO frames grow with table size (larger meshes advertise more rows), but stay well inside the duty budget at the 2-min period")
	return res, nil
}

// E5Delivery measures the packet delivery ratio across hop counts, with
// and without the reliable transport, under injected per-link loss.
func E5Delivery(opt Options) (*Result, error) {
	hops := []int{1, 2, 3, 5, 7}
	losses := []float64{0, 0.10, 0.20}
	count := 40
	if opt.Quick {
		hops = []int{1, 3}
		losses = []float64{0, 0.20}
		count = 15
	}
	res := &Result{
		ID:     "E5",
		Title:  "delivery ratio vs hops (40 datagrams / 15 reliable msgs per cell)",
		Header: []string{"hops", "link loss", "datagram PDR", "reliable PDR", "reliable retrans"},
	}
	type cell struct {
		hops int
		loss float64
	}
	var cells []cell
	for _, h := range hops {
		for _, loss := range losses {
			cells = append(cells, cell{h, loss})
		}
	}
	rows, err := forEachPoint(opt, len(cells), func(i int) ([]string, error) {
		return deliveryCell(opt.Seed, cells[i].hops, cells[i].loss, count)
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"datagram PDR decays roughly as (1-loss)^hops; the reliable transport holds ≈100% through moderate hop-loss products by paying retransmissions, and degrades only where the end-to-end round trip itself is unlikely (7 hops at 20% per-link loss)",
	)
	return res, nil
}

func deliveryCell(seed int64, hops int, loss float64, count int) ([]string, error) {
	topo, err := geo.Line(hops+1, chainSpacing)
	if err != nil {
		return nil, err
	}
	cfg := expNode()
	cfg.StreamRetry = 15 * time.Second
	cfg.StreamMaxRetries = 8
	sim, err := netsim.New(netsim.Config{
		Topology: topo,
		Node:     cfg,
		Seed:     seed,
		Medium:   airmedium.Config{ExtraFrameLossRate: loss},
	})
	if err != nil {
		return nil, err
	}
	if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
		return nil, fmt.Errorf("E5: no convergence at %d hops", hops)
	}
	// Unreliable datagrams.
	stats, err := sim.StartFlow(netsim.Flow{
		From: 0, To: hops, Payload: 24, Interval: 20 * time.Second, Count: count,
	})
	if err != nil {
		return nil, err
	}
	sim.Run(time.Duration(count+8) * 20 * time.Second)

	// Reliable messages (single-frame payloads via DATA_ACK).
	relCount := count / 2
	if relCount < 5 {
		relCount = 5
	}
	okRel, retrans := 0, 0
	for i := 0; i < relCount; i++ {
		src := sim.Handle(0)
		before := len(src.StreamEvents)
		if _, err := src.Mesher.SendReliable(sim.Handle(hops).Addr, make([]byte, 24)); err != nil {
			continue
		}
		for tries := 0; len(src.StreamEvents) == before && tries < 360; tries++ {
			sim.Run(5 * time.Second)
		}
		if len(src.StreamEvents) > before {
			ev := src.StreamEvents[len(src.StreamEvents)-1]
			if ev.Err == nil {
				okRel++
			}
			retrans += ev.Retransmissions
		}
	}
	return []string{
		fmt.Sprintf("%d", hops), fmtPct(loss),
		fmtPct(stats.DeliveryRatio()),
		fmtPct(float64(okRel) / float64(relCount)),
		fmt.Sprintf("%d", retrans),
	}, nil
}
