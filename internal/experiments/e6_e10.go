package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/baseline"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/routing"
)

// E6LargePayload measures the reliable transport's transfer time and
// goodput across payload sizes and hop counts.
func E6LargePayload(opt Options) (*Result, error) {
	sizes := []int{512, 1024, 2048, 4096, 8192}
	hops := []int{1, 2, 4}
	if opt.Quick {
		sizes = []int{512, 2048}
		hops = []int{1, 2}
	}
	res := &Result{
		ID:     "E6",
		Title:  "reliable large-payload transfer (stop-and-wait, clean channel)",
		Header: []string{"size B", "hops", "chunks", "time", "goodput B/s"},
	}
	type cell struct{ size, hops int }
	var cells []cell
	for _, size := range sizes {
		for _, h := range hops {
			cells = append(cells, cell{size, h})
		}
	}
	rows, err := forEachPoint(opt, len(cells), func(i int) ([]string, error) {
		size, h := cells[i].size, cells[i].hops
		topo, err := geo.Line(h+1, chainSpacing)
		if err != nil {
			return nil, err
		}
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: expNode(), Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
			return nil, fmt.Errorf("E6: no convergence")
		}
		src := sim.Handle(0)
		if _, err := src.Mesher.SendReliable(sim.Handle(h).Addr, make([]byte, size)); err != nil {
			return nil, err
		}
		for tries := 0; len(src.StreamEvents) == 0 && tries < 720; tries++ {
			sim.Run(10 * time.Second)
		}
		if len(src.StreamEvents) == 0 || src.StreamEvents[0].Err != nil {
			return nil, fmt.Errorf("E6: transfer %dB/%dhops failed", size, h)
		}
		ev := src.StreamEvents[0]
		return []string{fmt.Sprintf("%d", size), fmt.Sprintf("%d", h),
			fmt.Sprintf("%d", ev.Chunks), fmtDur(ev.Elapsed),
			fmtF(float64(size)/ev.Elapsed.Seconds(), 1)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"transfer time scales linearly in chunks and in hops (stop-and-wait pays one mesh round-trip per chunk)")
	return res, nil
}

// E7Baseline compares LoRaMesher against controlled flooding on the same
// field and workload: delivery, latency, and transmission cost, replicated
// across several topology seeds so the headline factor is not a
// single-draw artifact.
func E7Baseline(opt Options) (*Result, error) {
	n := 12
	dur := 2 * time.Hour
	seeds := []int64{opt.Seed, opt.Seed + 1, opt.Seed + 2}
	if opt.Quick {
		n = 8
		dur = 45 * time.Minute
		seeds = seeds[:1]
	}
	res := &Result{
		ID:     "E7",
		Title:  fmt.Sprintf("LoRaMesher vs flooding: %d nodes, Poisson unicast, mean of %d seeds", n, len(seeds)),
		Header: []string{"protocol", "PDR", "mean latency", "tx frames", "tx per delivery", "airtime"},
	}
	type outcome struct {
		pdr      float64
		latency  time.Duration
		txFrames float64
		perDel   float64
		airtime  time.Duration
	}
	run := func(kind netsim.ProtocolKind, seed int64) (*outcome, error) {
		side := 12000.0 * math.Sqrt(float64(n)/4)
		topo, err := geo.ConnectedRandomGeometric(n, side, side, 12000, seed, 1000)
		if err != nil {
			return nil, err
		}
		cfg := netsim.Config{
			Topology: topo,
			Protocol: kind,
			Node:     expNode(),
			Flood:    baseline.Config{TTL: 8},
			Seed:     seed,
		}
		sim, err := netsim.New(cfg)
		if err != nil {
			return nil, err
		}
		if kind == netsim.KindMesher {
			if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
				return nil, fmt.Errorf("E7: no convergence")
			}
		}
		// Fixed unicast pairs i -> (i+n/2) mod n, Poisson.
		var all []*netsim.TrafficStats
		for i := 0; i < n; i++ {
			st, err := sim.StartFlow(netsim.Flow{
				From: i, To: (i + n/2) % n, Payload: 24,
				Interval: 4 * time.Minute, Poisson: true,
			})
			if err != nil {
				return nil, err
			}
			all = append(all, st)
		}
		sim.Run(dur)
		total := netsim.MergeStats(all)
		snap := sim.AggregateMetrics().Snapshot()
		tx := snap["total.tx.frames"]
		per := 0.0
		if total.Delivered > 0 {
			per = tx / float64(total.Delivered)
		}
		return &outcome{
			pdr:      total.DeliveryRatio(),
			latency:  total.MeanLatency(),
			txFrames: tx,
			perDel:   per,
			airtime:  sim.TotalAirtime(),
		}, nil
	}
	// Every (protocol, seed) replicate is independent; fan them all out
	// at once and fold the means afterwards in fixed index order, so the
	// float sums associate identically however the runs were scheduled.
	kinds := []netsim.ProtocolKind{netsim.KindMesher, netsim.KindFlooding}
	type point struct {
		kind netsim.ProtocolKind
		seed int64
	}
	var points []point
	for _, kind := range kinds {
		for _, seed := range seeds {
			points = append(points, point{kind, seed})
		}
	}
	outcomes, err := forEachPoint(opt, len(points), func(i int) (*outcome, error) {
		return run(points[i].kind, points[i].seed)
	})
	if err != nil {
		return nil, err
	}
	mean := func(kindIdx int) *outcome {
		var agg outcome
		for s := range seeds {
			o := outcomes[kindIdx*len(seeds)+s]
			agg.pdr += o.pdr
			agg.latency += o.latency
			agg.txFrames += o.txFrames
			agg.perDel += o.perDel
			agg.airtime += o.airtime
		}
		k := float64(len(seeds))
		agg.pdr /= k
		agg.latency /= time.Duration(len(seeds))
		agg.txFrames /= k
		agg.perDel /= k
		agg.airtime /= time.Duration(len(seeds))
		return &agg
	}
	mesher := mean(0)
	flood := mean(1)
	for _, row := range []struct {
		name string
		o    *outcome
	}{{"LoRaMesher", mesher}, {"flooding", flood}} {
		res.AddRow(row.name, fmtPct(row.o.pdr), fmtDur(row.o.latency),
			fmtF(row.o.txFrames, 0), fmtF(row.o.perDel, 1), fmtDur(row.o.airtime))
	}
	if flood.airtime > 0 && mesher.airtime > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"flooding spends %.1fx the airtime of routed forwarding for comparable delivery (cost grows with network size)",
			float64(flood.airtime)/float64(mesher.airtime)))
	}
	return res, nil
}

// E8DutyCycle runs a day of sensornet telemetry and audits every node
// against the EU868 1% budget.
func E8DutyCycle(opt Options) (*Result, error) {
	n := 12
	dur := 24 * time.Hour
	if opt.Quick {
		n = 8
		dur = 4 * time.Hour
	}
	topo, err := geo.ConnectedRandomGeometric(n+1, 25000, 25000, 12000, opt.Seed, 1000)
	if err != nil {
		return nil, err
	}
	sim, err := netsim.New(netsim.Config{Topology: topo, Node: expNode(), Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
		return nil, fmt.Errorf("E8: no convergence")
	}
	stats, err := sim.StartManyToOne(0, 24, 10*time.Minute, true)
	if err != nil {
		return nil, err
	}
	sim.Run(dur)
	res := &Result{
		ID:     "E8",
		Title:  fmt.Sprintf("duty-cycle audit: %d sensors -> sink, %v of telemetry", n, dur),
		Header: []string{"node", "role", "sent", "delivered", "airtime/h", "duty cycle", "within 1%"},
	}
	budget := 36 * time.Second
	violations := 0
	for i := 0; i <= n; i++ {
		h := sim.Handle(i)
		role := "sensor"
		if i == 0 {
			role = "sink"
		}
		perHour := h.Mesher.AirtimeUsed() / time.Duration(dur.Hours())
		duty := float64(perHour) / float64(time.Hour)
		within := perHour <= budget
		if !within {
			violations++
		}
		sent, del := 0, 0
		if st := statsFor(stats, i); st != nil {
			sent, del = st.Offered, st.Delivered
		}
		res.AddRow(h.Addr.String(), role, fmt.Sprintf("%d", sent), fmt.Sprintf("%d", del),
			fmtDur(perHour), fmtPct(duty), fmt.Sprintf("%v", within))
	}
	total := netsim.MergeStats(stats)
	res.Notes = append(res.Notes,
		fmt.Sprintf("network PDR %s over %v; %d duty-cycle violations (regulator gates every transmission)",
			fmtPct(total.DeliveryRatio()), dur, violations))
	return res, nil
}

func statsFor(all []*netsim.TrafficStats, i int) *netsim.TrafficStats {
	if i < 0 || i >= len(all) {
		return nil
	}
	return all[i]
}

// E9Density grows the node count in a fixed field: more nodes mean more
// beacons and more forwarding on the same spectrum, so collisions climb
// and delivery sags — the mesh's scalability ceiling.
func E9Density(opt Options) (*Result, error) {
	sizes := []int{5, 10, 20, 30, 40}
	dur := time.Hour
	if opt.Quick {
		sizes = []int{5, 15}
		dur = 30 * time.Minute
	}
	res := &Result{
		ID:     "E9",
		Title:  "density sweep: fixed 30x30 km field, Poisson unicast",
		Header: []string{"nodes", "mean degree", "PDR", "mean latency", "collision losses", "tx frames"},
	}
	rows, err := forEachPoint(opt, len(sizes), func(p int) ([]string, error) {
		n := sizes[p]
		topo, err := geo.ConnectedRandomGeometric(n, 30000, 30000, 12000, opt.Seed, 2000)
		if err != nil {
			return nil, err
		}
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: expNode(), Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(10*time.Second, 6*time.Hour); !ok {
			return []string{fmt.Sprintf("%d", n), "-", "no convergence", "-", "-", "-"}, nil
		}
		var all []*netsim.TrafficStats
		for i := 0; i < n; i++ {
			st, err := sim.StartFlow(netsim.Flow{
				From: i, To: (i + n/2) % n, Payload: 24,
				Interval: 3 * time.Minute, Poisson: true,
			})
			if err != nil {
				return nil, err
			}
			all = append(all, st)
		}
		sim.Run(dur)
		total := netsim.MergeStats(all)
		ms := sim.Medium.Stats()
		snap := sim.AggregateMetrics().Snapshot()
		return []string{fmt.Sprintf("%d", n),
			fmtF(geo.MeanDegree(topo, 13000), 1),
			fmtPct(total.DeliveryRatio()),
			fmtDur(total.MeanLatency()),
			fmt.Sprintf("%d", ms.LostCollision),
			fmtF(snap["total.tx.frames"], 0)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"collision losses grow superlinearly with density while PDR degrades gracefully — capture lets the strongest frame survive")
	return res, nil
}

// E10Repair kills the router on the only short path and measures the
// outage: time from failure until traffic flows again, which for the
// prototype is governed by the routing entry TTL.
func E10Repair(opt Options) (*Result, error) {
	ttls := []time.Duration{2 * time.Minute, 5 * time.Minute, 10 * time.Minute}
	if opt.Quick {
		ttls = ttls[:2]
	}
	res := &Result{
		ID:     "E10",
		Title:  "route repair after router death (diamond topology, redundant path)",
		Header: []string{"entry TTL", "repair time", "lost in outage", "delivered after"},
	}
	rows, err := forEachPoint(opt, len(ttls), func(i int) ([]string, error) {
		return repairCell(opt.Seed, ttls[i], false)
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"repair ≈ entry TTL + one HELLO period: the dead route must expire before the alternative is adopted",
	)
	return res, nil
}

// repairCell runs one router-failure scenario; used by E10 and A1.
func repairCell(seed int64, ttl time.Duration, poisoning bool) ([]string, error) {
	topo := &geo.Topology{Name: "diamond", Positions: []geo.Point{
		{X: 0, Y: 0}, {X: 8000, Y: 3000}, {X: 8000, Y: -3000}, {X: 16000, Y: 0},
	}}
	cfg := expNode()
	cfg.Routing = routing.Config{EntryTTL: ttl, Poisoning: poisoning}
	sim, err := netsim.New(netsim.Config{Topology: topo, Node: cfg, Seed: seed})
	if err != nil {
		return nil, err
	}
	if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
		return nil, fmt.Errorf("repair: no convergence")
	}
	// Steer the 0->3 route through node 1, then kill node 1.
	if via, _ := sim.Handle(0).Mesher.Table().NextHop(sim.Handle(3).Addr); via == sim.Handle(2).Addr {
		// Symmetric topology: the route may go either way; kill the
		// router actually in use.
		if err := sim.Kill(2); err != nil {
			return nil, err
		}
	} else {
		if err := sim.Kill(1); err != nil {
			return nil, err
		}
	}
	// Constant probe traffic across the failure.
	stats, err := sim.StartFlow(netsim.Flow{
		From: 0, To: 3, Payload: 16, Interval: 15 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	killAt := sim.Now()
	repaired := func() bool { return stats.Delivered > 0 }
	outage, ok := sim.RunUntil(repaired, 5*time.Second, 4*time.Hour)
	if !ok {
		return []string{fmtDur(ttl), ">4h", "-", "-"}, nil
	}
	lost := stats.Offered - stats.Delivered
	sim.Run(5 * time.Minute) // confirm steady delivery after repair
	after := stats.Delivered
	_ = killAt
	return []string{fmtDur(ttl), fmtDur(outage), fmt.Sprintf("%d", lost),
		fmt.Sprintf("%d", after)}, nil
}
