// Package experiments regenerates every table and figure in the
// evaluation (see DESIGN.md's experiment index): each experiment builds
// its workload on internal/netsim, runs it under the deterministic
// simulator, and renders the same rows/series the paper-scale evaluation
// reports. cmd/meshbench is the CLI front end; bench_test.go at the repo
// root wraps each experiment as a Go benchmark.
package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/meshsec"
)

// Options tunes an experiment run.
type Options struct {
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// Quick shrinks sweeps and durations for CI and benchmarks.
	Quick bool
	// Parallel caps the worker goroutines evaluating independent sweep
	// points: 0 means GOMAXPROCS, 1 forces serial evaluation. Tables
	// come out byte-identical at any setting — workers only compute
	// cells, and rows are assembled in sweep order afterwards.
	Parallel int
	// SecKey, when set, replaces the built-in network key in the
	// security-aware experiments (E13). Nil keeps the fixed default so
	// published tables reproduce without flags.
	SecKey *meshsec.Key
	// Nodes, when positive, replaces the node-count sweep of the
	// city-scale experiments (E15, X7's city section) with this single
	// size.
	Nodes int
	// Shards, when positive, restricts E15's sharded rows to this shard
	// count (the serial baseline always runs for the speedup column) and
	// overrides X7's city shard count. Zero keeps the defaults.
	Shards int
	// Strategy, when set to a forward.Kind name, restricts X7's city
	// section to that single forwarding strategy (the chain and
	// many-reader sections always run the full comparison set — their
	// cross-strategy assertions need every row). Empty keeps all four.
	Strategy string
}

// Result is one regenerated table/figure as rows of text cells.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries the interpretation the evaluation draws from the
	// numbers ("who wins, by what factor, where the crossover falls").
	Notes []string
}

// AddRow appends a row of stringified cells.
func (r *Result) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// WriteTo renders the result as an aligned text table.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(r.Header)
	for i, wd := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", wd))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// Spec registers one experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)
}

// All returns every experiment and ablation in display order.
func All() []Spec {
	return []Spec{
		{"E1", "Mesh formation on the demo topology", E1MeshFormation},
		{"E2", "Packet formats and header overhead", E2PacketFormats},
		{"E3", "Routing convergence time vs network size", E3Convergence},
		{"E4", "Routing control overhead (HELLO airtime)", E4ControlOverhead},
		{"E5", "Multi-hop delivery: datagrams vs reliable transport", E5Delivery},
		{"E6", "Large-payload transfer time vs size and hops", E6LargePayload},
		{"E7", "LoRaMesher vs controlled flooding", E7Baseline},
		{"E8", "EU868 duty-cycle compliance over 24 h", E8DutyCycle},
		{"E9", "Scalability with node density", E9Density},
		{"E10", "Route repair after router failure", E10Repair},
		{"E11", "Gateway uplink under backend outage and partition", E11GatewayUplink},
		{"E12", "Chaos matrix: delivery under injected faults", E12ChaosMatrix},
		{"E13", "Link-layer security overhead (on vs off)", E13Security},
		{"E14", "Observer overhead: spans and health monitor (on vs off)", E14Observer},
		{"E15", "City mesh: sharded-simulator scaling curve", E15CityMesh},
		{"E16", "Self-healing MTTR: controller off vs on", E16SelfHealing},
		{"E17", "Ingest at scale: sharded, pipelined gateway fleet", E17Ingest},
		{"A1", "Ablation: route poisoning vs expiry-only", A1Poisoning},
		{"A2", "Ablation: HELLO period trade-off", A2HelloPeriod},
		{"A3", "Ablation: ARQ window (stop-and-wait vs go-back-N)", A3ARQWindow},
		{"A4", "Ablation: spreading-factor sweep", A4SpreadingFactor},
		{"A5", "Ablation: listen-before-talk (CAD) under contention", A5CAD},
		{"X1", "Extension: energy and battery-life audit", X1Energy},
		{"X2", "Extension: duty-cycled sleep for end devices", X2Sleep},
		{"X3", "Extension: node mobility (random waypoint)", X3Mobility},
		{"X4", "Extension: link-quality (SNR) routing metric", X4SNRRouting},
		{"X5", "Extension: network partition and merge", X5Partition},
		{"X6", "Extension: proactive vs reactive vs flooding", X6Reactive},
		{"X7", "Extension: forwarding-strategy shoot-out (proactive/reactive/ICN/slotted)", X7Strategies},
	}
}

// Find returns the spec with the given id (case-insensitive).
func Find(id string) (Spec, bool) {
	for _, s := range All() {
		if strings.EqualFold(s.ID, id) {
			return s, true
		}
	}
	return Spec{}, false
}

// IDs returns every experiment id, sorted by display order.
func IDs() []string {
	specs := All()
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	return ids
}

// Formatting helpers shared by the experiment implementations.

func fmtDur(d time.Duration) string {
	switch {
	case d >= 48*time.Hour:
		return fmt.Sprintf("%.1fd", d.Hours()/24)
	case d >= 2*time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}

func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func fmtF(f float64, dec int) string { return fmt.Sprintf("%.*f", dec, f) }

// median returns the middle of a small sample.
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// WriteCSV renders the result as RFC-4180 CSV with a leading comment row
// for the title, for plotting pipelines.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"# " + r.ID}, r.Title)); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	if err := cw.Write(r.Header); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the result as a JSON document.
func (r *Result) WriteJSON(w io.Writer) error {
	doc := struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{r.ID, r.Title, r.Header, r.Rows, r.Notes}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("experiments: json: %w", err)
	}
	return nil
}
