package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestResultWriteTo(t *testing.T) {
	res := &Result{
		ID:     "EX",
		Title:  "example",
		Header: []string{"col", "value"},
		Notes:  []string{"a note"},
	}
	res.AddRow("first", "1")
	res.AddRow("second-longer", "2")
	var sb strings.Builder
	if _, err := res.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== EX: example ==", "col", "second-longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns are aligned: both rows place the second cell at the same
	// offset.
	lines := strings.Split(out, "\n")
	var rows []string
	for _, l := range lines {
		if strings.HasPrefix(l, "first") || strings.HasPrefix(l, "second") {
			rows = append(rows, l)
		}
	}
	if len(rows) != 2 || strings.Index(rows[0], "1") != strings.Index(rows[1], "2") {
		t.Errorf("rows not aligned:\n%s", out)
	}
}

func TestFindAndIDs(t *testing.T) {
	if _, ok := Find("e7"); !ok {
		t.Error("Find should be case-insensitive")
	}
	if _, ok := Find("E99"); ok {
		t.Error("Find returned a bogus experiment")
	}
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs() has %d entries, want %d", len(ids), len(All()))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate experiment id %s", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"E1", "E10", "A5"} {
		if !seen[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestEverySpecHasRunAndTitle(t *testing.T) {
	for _, s := range All() {
		if s.Run == nil {
			t.Errorf("%s has no Run func", s.ID)
		}
		if s.Title == "" {
			t.Errorf("%s has no title", s.ID)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := fmtDur(90 * time.Second); got != "1.5min" {
		t.Errorf("fmtDur(90s) = %q", got)
	}
	if got := fmtDur(2500 * time.Millisecond); got != "2.50s" {
		t.Errorf("fmtDur(2.5s) = %q", got)
	}
	if got := fmtDur(42 * time.Millisecond); got != "42ms" {
		t.Errorf("fmtDur(42ms) = %q", got)
	}
	if got := fmtPct(0.123); got != "12.3%" {
		t.Errorf("fmtPct = %q", got)
	}
	if got := fmtF(3.14159, 2); got != "3.14" {
		t.Errorf("fmtF = %q", got)
	}
	if got := median([]time.Duration{3, 1, 2}); got != 2 {
		t.Errorf("median = %v", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %v", got)
	}
}

func TestResultCSVAndJSON(t *testing.T) {
	res := &Result{ID: "T", Title: "t", Header: []string{"a", "b"}, Notes: []string{"n"}}
	res.AddRow("1", "2")
	var csvOut, jsonOut strings.Builder
	if err := res.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvOut.String(), "a,b") || !strings.Contains(csvOut.String(), "1,2") {
		t.Errorf("csv = %q", csvOut.String())
	}
	if err := res.WriteJSON(&jsonOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id": "T"`, `"rows"`, `"n"`} {
		if !strings.Contains(jsonOut.String(), want) {
			t.Errorf("json missing %q: %s", want, jsonOut.String())
		}
	}
}
