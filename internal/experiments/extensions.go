package experiments

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/netsim"
)

// X1Energy is an extension experiment beyond the demo paper: the battery
// cost of meshing. A LoRaMesher router must keep its receiver on to
// forward for others, so the listen current — not transmit airtime —
// dominates consumption; the experiment quantifies that and the marginal
// cost of relaying.
func X1Energy(opt Options) (*Result, error) {
	hours := 24
	if opt.Quick {
		hours = 6
	}
	n := 7
	topo, err := geo.Line(n, chainSpacing)
	if err != nil {
		return nil, err
	}
	sim, err := netsim.New(netsim.Config{Topology: topo, Node: expNode(), Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
		return nil, fmt.Errorf("X1: no convergence")
	}
	// Endpoint-to-endpoint telemetry: every interior node relays.
	stats, err := sim.StartFlow(netsim.Flow{
		From: 0, To: n - 1, Payload: 24, Interval: 5 * time.Minute, Poisson: true,
	})
	if err != nil {
		return nil, err
	}
	sim.Run(time.Duration(hours) * time.Hour)

	profile := energy.DefaultProfile()
	const capacity = 3000 // mAh, a typical 18650 cell
	report, err := sim.EnergyReport(profile, capacity)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "X1",
		Title:  fmt.Sprintf("extension: energy audit, %d-node chain, %d h of end-to-end telemetry", n, hours),
		Header: []string{"node", "role", "fwd frames", "tx airtime", "mean mA", "life @3000mAh"},
	}
	for i, ne := range report {
		h := sim.Handle(i)
		role := "endpoint"
		if i > 0 && i < n-1 {
			role = "router"
		}
		tx, err := sim.Medium.StationAirtime(h.Station)
		if err != nil {
			return nil, err
		}
		res.AddRow(h.Addr.String(), role,
			fmt.Sprintf("%d", h.Proto.Metrics().Counter("fwd.frames").Value()),
			fmtDur(tx), fmtF(ne.MeanCurrentMA, 2),
			fmtDur(ne.BatteryLife))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("PDR %s; the listen floor (%.0f mA) dominates — relaying adds only the marginal transmit charge, so router and endpoint battery life differ by hours, not days; duty-cycled sleep, not routing load, is the lever for longer life",
			fmtPct(stats.DeliveryRatio()), profile.RxMA))
	return res, nil
}
