package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachPoint evaluates fn(i) for every i in [0, n) and returns the
// results indexed by i. Points run concurrently across the worker budget
// from opt.Parallel; each point must therefore be self-contained (build
// its own simulation, touch no shared mutable state). Results land in
// input order regardless of completion order, and callers render rows
// from the returned slice, so a parallel table is byte-identical to a
// serial one. On failure the lowest-index error is returned — also
// order-independent — after all in-flight points finish.
func forEachPoint[T any](opt Options, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
