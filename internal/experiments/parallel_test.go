package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachPointPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := forEachPoint(Options{Parallel: workers}, 20, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachPointZeroPoints(t *testing.T) {
	out, err := forEachPoint(Options{}, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestForEachPointLowestIndexErrorWins(t *testing.T) {
	wantErr := errors.New("point 3")
	_, err := forEachPoint(Options{Parallel: 4}, 10, func(i int) (string, error) {
		if i == 7 {
			return "", errors.New("point 7")
		}
		if i == 3 {
			return "", wantErr
		}
		return fmt.Sprintf("ok-%d", i), nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the lowest-index error %v", err, wantErr)
	}
}

func TestForEachPointRunsEveryPointDespiteError(t *testing.T) {
	// An early failure must not strand later points half-evaluated: all
	// points run to completion before the error is surfaced, so partial
	// side effects are at least deterministic.
	var ran atomic.Int64
	_, err := forEachPoint(Options{Parallel: 3}, 12, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if got := ran.Load(); got != 12 {
		t.Fatalf("%d points ran, want 12", got)
	}
}

func TestForEachPointSerialFallback(t *testing.T) {
	// workers <= 1 must run on the calling goroutine in index order and
	// stop at the first error (the serial fast path).
	var order []int
	_, err := forEachPoint(Options{Parallel: 1}, 5, func(i int) (int, error) {
		order = append(order, i)
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("serial order = %v, want [0 1 2]", order)
	}
}

// renderTable runs one experiment and returns its fully rendered table; any
// scheduling-dependent divergence in cell values shows up as a byte diff.
func renderTable(t *testing.T, id string, opt Options) string {
	t.Helper()
	spec, ok := Find(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	res, err := spec.Run(opt)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var sb strings.Builder
	if _, err := res.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestParallelTablesByteIdentical is the determinism contract for the
// parallel sweep runner: at the same seed, a table computed with 4 workers
// must be byte-for-byte identical to the serial one. E3 (per-size sims),
// E5 (hops×loss grid), and E12 (chaos scenarios with fault injection)
// cover the three heaviest sweep shapes.
func TestParallelTablesByteIdentical(t *testing.T) {
	for _, id := range []string{"E3", "E5", "E12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := renderTable(t, id, Options{Seed: 1, Quick: true, Parallel: 1})
			parallel := renderTable(t, id, Options{Seed: 1, Quick: true, Parallel: 4})
			if serial != parallel {
				t.Errorf("%s: serial and parallel tables differ\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, serial, parallel)
			}
		})
	}
}
