package experiments

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/netsim"
)

// X2Sleep is an extension experiment: duty-cycled sleep for end devices —
// the obvious follow-up to X1's finding that the listen floor dominates
// battery drain. A sleepy leaf keeps sending telemetry (the radio wakes
// to transmit) and catches enough HELLOs during its awake windows to keep
// a route; a sleepy *router* black-holes the traffic it is supposed to
// forward. The experiment sweeps the sleep duty on both roles.
func X2Sleep(opt Options) (*Result, error) {
	hours := 12
	if opt.Quick {
		hours = 3
	}
	res := &Result{
		ID:     "X2",
		Title:  fmt.Sprintf("extension: duty-cycled sleep, 3-node chain leaf->router->sink, %d h", hours),
		Header: []string{"sleeper", "sleep duty", "PDR", "mean mA", "life @3000mAh"},
	}
	type variant struct {
		sleeper int // node index that sleeps, -1 for none
		duty    float64
		label   string
	}
	variants := []variant{
		{-1, 0, "nobody"},
		{2, 0.5, "leaf"},
		{2, 0.9, "leaf"},
		{2, 0.97, "leaf"},
		{1, 0.9, "router"},
	}
	if opt.Quick {
		variants = []variant{{-1, 0, "nobody"}, {2, 0.9, "leaf"}, {1, 0.9, "router"}}
	}
	rows, err := forEachPoint(opt, len(variants), func(i int) ([]string, error) {
		v := variants[i]
		// Chain: 0 = sink, 1 = router, 2 = leaf.
		topo, err := geo.Line(3, chainSpacing)
		if err != nil {
			return nil, err
		}
		cfg := expNode()
		// Sleepy devices pair with a long routing TTL: the leaf hears
		// HELLOs only during awake windows, and the chain is static, so
		// holding entries longer costs nothing and keeps its route alive
		// across sleep cycles.
		cfg.Routing.EntryTTL = time.Hour
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: cfg, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
			return nil, fmt.Errorf("X2: no convergence")
		}
		if v.sleeper >= 0 {
			// Awake windows sized to catch HELLOs: 30 s awake, scaled
			// asleep time for the target duty.
			awake := 30 * time.Second
			asleep := time.Duration(float64(awake) * v.duty / (1 - v.duty))
			if err := sim.StartSleepCycle(v.sleeper, awake, asleep); err != nil {
				return nil, err
			}
		}
		stats, err := sim.StartFlow(netsim.Flow{
			From: 2, To: 0, Payload: 24, Interval: 5 * time.Minute, Poisson: true,
		})
		if err != nil {
			return nil, err
		}
		sim.Run(time.Duration(hours) * time.Hour)
		report, err := sim.EnergyReport(energy.DefaultProfile(), 3000)
		if err != nil {
			return nil, err
		}
		// Report the sleeper's energy (or the leaf's when nobody sleeps).
		idx := v.sleeper
		if idx < 0 {
			idx = 2
		}
		ne := report[idx]
		return []string{v.label, fmtPct(v.duty), fmtPct(stats.DeliveryRatio()),
			fmtF(ne.MeanCurrentMA, 2), fmtDur(ne.BatteryLife)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"paired with a long routing TTL, a sleeping leaf keeps near-full delivery (transmissions wake the radio; routes refresh during awake windows) while battery life multiplies ~10-20x; a sleeping router black-holes the frames it should forward — only edge devices may sleep")
	return res, nil
}
