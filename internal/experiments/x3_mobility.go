package experiments

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
)

// X3Mobility is an extension experiment: the protocol under node movement.
// Distance-vector tables chase a moving topology at HELLO-period speed, so
// delivery degrades as node velocity grows relative to (radio range /
// hello period) — the classic mobility wall for proactive protocols.
func X3Mobility(opt Options) (*Result, error) {
	speeds := []float64{0, 1, 5, 15, 30} // m/s: static, walking, cycling, driving
	dur := 2 * time.Hour
	if opt.Quick {
		speeds = []float64{0, 5, 30}
		dur = 45 * time.Minute
	}
	n := 10
	res := &Result{
		ID:     "X3",
		Title:  fmt.Sprintf("extension: random-waypoint mobility, %d nodes, Poisson unicast", n),
		Header: []string{"speed m/s", "PDR", "mean latency", "no-route drops", "routes expired"},
	}
	rows, err := forEachPoint(opt, len(speeds), func(p int) ([]string, error) {
		speed := speeds[p]
		side := 12000.0 * 1.6 // keep the roaming field comfortably connected
		topo, err := geo.ConnectedRandomGeometric(n, side, side, 12000, opt.Seed, 2000)
		if err != nil {
			return nil, err
		}
		cfg := expNode()
		// Mobile meshes need faster failure detection than the static
		// default: TTL of a few HELLO periods.
		cfg.Routing.EntryTTL = 6 * time.Minute
		sim, err := netsim.New(netsim.Config{Topology: topo, Node: cfg, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
			return nil, fmt.Errorf("X3: no convergence")
		}
		if speed > 0 {
			model, err := geo.NewRandomWaypoint(n, side, side, speed, speed, 30*time.Second, opt.Seed)
			if err != nil {
				return nil, err
			}
			if err := sim.StartMobility(model, 10*time.Second); err != nil {
				return nil, err
			}
		}
		var all []*netsim.TrafficStats
		for i := 0; i < n; i++ {
			st, err := sim.StartFlow(netsim.Flow{
				From: i, To: (i + n/2) % n, Payload: 24,
				Interval: 3 * time.Minute, Poisson: true,
			})
			if err != nil {
				return nil, err
			}
			all = append(all, st)
		}
		sim.Run(dur)
		total := netsim.MergeStats(all)
		snap := sim.AggregateMetrics().Snapshot()
		return []string{fmtF(speed, 0), fmtPct(total.DeliveryRatio()),
			fmtDur(total.MeanLatency()),
			fmtF(snap["total.drop.noroute"], 0),
			fmtF(snap["total.routes.expired"], 0)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"pedestrian speeds are nearly free (links outlive the hello period); vehicular speeds outrun the 2-min beacons — stale next hops and no-route drops climb, the proactive protocol's known mobility wall")
	return res, nil
}
