package experiments

import (
	"fmt"
	"time"

	"repro/internal/airmedium"
	"repro/internal/geo"
	"repro/internal/netsim"
)

// X4SNRRouting is an extension experiment: link-quality-aware route
// selection. Under shadowing, two equal-hop-count paths can differ by
// tens of dB; the obvious refinement is to break metric ties toward the
// stronger first link. The measured result is a *negative* finding: the
// first-link-greedy tiebreak consistently hurts end-to-end delivery,
// because strong first links belong to nearby neighbors whose onward
// links span more distance and are therefore weaker — a quality metric
// must be end-to-end (ETX-style), which the prototype's 4-byte HELLO row
// (addr, metric, role) cannot carry.
func X4SNRRouting(opt Options) (*Result, error) {
	dur := 3 * time.Hour
	seeds := []int64{opt.Seed, opt.Seed + 1, opt.Seed + 2}
	if opt.Quick {
		dur = time.Hour
		seeds = seeds[:1]
	}
	n := 14
	res := &Result{
		ID:     "X4",
		Title:  fmt.Sprintf("extension: hop-count vs SNR-tiebreak routing, %d nodes, 8 dB shadowing", n),
		Header: []string{"metric", "seed", "PDR", "mean latency", "marginal-link drops"},
	}
	type cell struct {
		seed int64
		snr  bool
	}
	var cells []cell
	for _, seed := range seeds {
		for _, snr := range []bool{false, true} {
			cells = append(cells, cell{seed, snr})
		}
	}
	rows, err := forEachPoint(opt, len(cells), func(p int) ([]string, error) {
		seed, snr := cells[p].seed, cells[p].snr
		// Dense enough that equal-hop alternatives exist; shadowing
		// makes their quality diverge.
		side := 12000.0 * 1.9
		topo, err := geo.ConnectedRandomGeometric(n, side, side, 9000, seed, 2000)
		if err != nil {
			return nil, err
		}
		cfg := expNode()
		cfg.Routing.SNRTiebreak = snr
		sim, err := netsim.New(netsim.Config{
			Topology: topo,
			Node:     cfg,
			Seed:     seed,
			// Shadowing spreads link qualities; soft decoding makes
			// marginal links lossy instead of binary, which is what
			// a quality metric can route around.
			Medium: airmedium.Config{ShadowSigmaDB: 8, SoftDecodingWidthDB: 3, Seed: seed},
		})
		if err != nil {
			return nil, err
		}
		if _, ok := sim.TimeToConvergence(10*time.Second, 6*time.Hour); !ok {
			return []string{metricName(snr), fmt.Sprintf("%d", seed), "no convergence", "-", "-"}, nil
		}
		var all []*netsim.TrafficStats
		for i := 0; i < n; i++ {
			st, err := sim.StartFlow(netsim.Flow{
				From: i, To: (i + n/2) % n, Payload: 24,
				Interval: 3 * time.Minute, Poisson: true,
			})
			if err != nil {
				return nil, err
			}
			all = append(all, st)
		}
		sim.Run(dur)
		total := netsim.MergeStats(all)
		ms := sim.Medium.Stats()
		return []string{metricName(snr), fmt.Sprintf("%d", seed),
			fmtPct(total.DeliveryRatio()), fmtDur(total.MeanLatency()),
			fmt.Sprintf("%d", ms.LostBelowSensitivity)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"NEGATIVE RESULT: the first-link-greedy SNR tiebreak consistently lowers PDR — it pulls routes toward strong nearby neighbors whose onward links are weaker. Link-quality routing needs an end-to-end metric (ETX-style) carried in the advertisement, which the prototype's 4-byte HELLO row cannot express; hop count with implicit survivor bias (weak neighbors' HELLOs rarely arrive) is the better default")
	return res, nil
}

func metricName(snr bool) string {
	if snr {
		return "hop+SNR"
	}
	return "hop-only"
}
