package experiments

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/routing"
)

// X5Partition is an extension experiment: the mesh through a network
// partition and merge — the failure mode a standalone infrastructure-less
// mesh exists to survive. Two clusters joined by one inter-cluster radio
// path get severed; intra-cluster traffic must keep flowing while
// cross-cluster traffic black-holes, and after the heal the mesh must
// re-merge on its own.
func X5Partition(opt Options) (*Result, error) {
	phase := 45 * time.Minute
	if opt.Quick {
		phase = 20 * time.Minute
	}
	// Two 4-node square clusters, 8 km apart: only the facing corners
	// bridge the gap.
	cluster := func(ox, oy float64) []geo.Point {
		return []geo.Point{
			{X: ox, Y: oy}, {X: ox + 6000, Y: oy},
			{X: ox, Y: oy + 6000}, {X: ox + 6000, Y: oy + 6000},
		}
	}
	topo := &geo.Topology{
		Name:      "two-cluster bridge",
		Positions: append(cluster(0, 0), cluster(14000, 0)...),
	}
	groupA := []int{0, 1, 2, 3}
	groupB := []int{4, 5, 6, 7}

	cfg := expNode()
	cfg.Routing = routing.Config{EntryTTL: 6 * time.Minute, Poisoning: true}
	sim, err := netsim.New(netsim.Config{Topology: topo, Node: cfg, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
		return nil, fmt.Errorf("X5: no convergence")
	}

	// One intra-cluster flow per side plus two cross-cluster flows.
	// Poisson gaps desynchronize the flows; fixed intervals would fire
	// all four senders at identical instants and collide every round.
	flows := []netsim.Flow{
		{From: 0, To: 3, Payload: 20, Interval: time.Minute, Poisson: true}, // intra A
		{From: 4, To: 7, Payload: 20, Interval: time.Minute, Poisson: true}, // intra B
		{From: 0, To: 7, Payload: 20, Interval: time.Minute, Poisson: true}, // cross
		{From: 5, To: 2, Payload: 20, Interval: time.Minute, Poisson: true}, // cross
	}
	res := &Result{
		ID:     "X5",
		Title:  "extension: partition and merge, two bridged 4-node clusters",
		Header: []string{"phase", "intra PDR", "cross PDR", "cross routes at end"},
	}
	crossRoutes := func() int {
		n := 0
		for _, i := range groupA {
			for _, j := range groupB {
				if _, ok := sim.Handle(i).Mesher.Table().NextHop(sim.Handle(j).Addr); ok {
					n++
				}
			}
		}
		return n
	}
	// Each phase runs its own bounded flows so phases do not overlap.
	runPhase := func(name string) error {
		var stats []*netsim.TrafficStats
		for _, f := range flows {
			f.Count = int(phase / f.Interval / 2) // finish well inside the phase
			st, err := sim.StartFlow(f)
			if err != nil {
				return err
			}
			stats = append(stats, st)
		}
		sim.Run(phase)
		intra := netsim.MergeStats(stats[:2])
		cross := netsim.MergeStats(stats[2:])
		res.AddRow(name, fmtPct(intra.DeliveryRatio()), fmtPct(cross.DeliveryRatio()),
			fmt.Sprintf("%d", crossRoutes()))
		return nil
	}
	// Phase 1: healthy mesh.
	if err := runPhase("connected"); err != nil {
		return nil, err
	}
	// Phase 2: sever the clusters.
	if err := sim.Partition(groupA, groupB); err != nil {
		return nil, err
	}
	if err := runPhase("partitioned"); err != nil {
		return nil, err
	}
	// Phase 3: heal and measure the re-merge.
	if err := sim.Heal(groupA, groupB); err != nil {
		return nil, err
	}
	merge, ok := sim.RunUntil(func() bool { return crossRoutes() == 16 }, 30*time.Second, 4*time.Hour)
	if err := runPhase("healed"); err != nil {
		return nil, err
	}
	mergeStr := ">4h"
	if ok {
		mergeStr = fmtDur(merge)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"intra-cluster delivery rides through the partition; cross traffic black-holes until stale routes poison out, and the mesh re-merges %s after the heal with no operator action",
		mergeStr))
	return res, nil
}
