package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/forward"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/reactive"
)

// X6Reactive is an extension experiment: the canonical proactive-versus-
// reactive-versus-flooding comparison. The proactive protocol (LoRaMesher)
// pays a constant beacon tax to answer every route instantly; the reactive
// baseline (AODV-lite) is silent until traffic appears and pays a
// discovery flood plus first-packet latency per route; flooding pays per
// packet forever. Idle overhead, first-packet latency, and steady-state
// cost separate the three.
func X6Reactive(opt Options) (*Result, error) {
	n := 10
	idle := time.Hour
	active := 2 * time.Hour
	if opt.Quick {
		n = 8
		idle = 20 * time.Minute
		active = 40 * time.Minute
	}
	res := &Result{
		ID:    "X6",
		Title: fmt.Sprintf("extension: proactive vs reactive vs flooding, %d nodes", n),
		Header: []string{"protocol", "idle airtime/h", "first-packet latency",
			"steady PDR", "steady latency", "tx frames"},
	}
	side := 12000.0 * math.Sqrt(float64(n)/4)
	topo, err := geo.ConnectedRandomGeometric(n, side, side, 12000, opt.Seed, 1000)
	if err != nil {
		return nil, err
	}
	// The comparison set is expressed in strategy-API terms: each row is
	// a forward.Kind plus its display name, resolved to the engine that
	// runs it via netsim.KindForStrategy.
	protos := []struct {
		kind forward.Kind
		name string
	}{
		{forward.KindProactive, "LoRaMesher (proactive)"},
		{forward.KindReactive, "AODV-lite (reactive)"},
		{forward.KindFlooding, "flooding"},
	}
	rows, err := forEachPoint(opt, len(protos), func(p int) ([]string, error) {
		pr := protos[p]
		pk, ok := netsim.KindForStrategy(pr.kind)
		if !ok {
			return nil, fmt.Errorf("X6: no engine runs strategy %q", pr.kind)
		}
		cfg := netsim.Config{
			Topology: topo,
			Protocol: pk,
			Node:     expNode(),
			Reactive: reactive.Config{DiscoveryTimeout: 15 * time.Second},
			Seed:     opt.Seed,
		}
		sim, err := netsim.New(cfg)
		if err != nil {
			return nil, err
		}
		if pr.kind == forward.KindProactive {
			if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
				return nil, fmt.Errorf("X6: no convergence")
			}
		}
		// Phase 1: a silent network — what does just existing cost?
		airBefore := sim.TotalAirtime()
		sim.Run(idle)
		idleAir := time.Duration(float64(sim.TotalAirtime()-airBefore) / float64(n) / idle.Hours())

		// Phase 2: traffic appears. The first packet of each flow
		// measures cold-route latency; the rest measure steady state.
		var all []*netsim.TrafficStats
		for i := 0; i < n; i++ {
			st, err := sim.StartFlow(netsim.Flow{
				From: i, To: (i + n/2) % n, Payload: 24,
				Interval: 3 * time.Minute, Poisson: true,
			})
			if err != nil {
				return nil, err
			}
			all = append(all, st)
		}
		sim.Run(active)
		total := netsim.MergeStats(all)
		var firsts []time.Duration
		for _, st := range all {
			if len(st.Latencies) > 0 {
				firsts = append(firsts, st.Latencies[0])
			}
		}
		snap := sim.AggregateMetrics().Snapshot()
		first := "-"
		if len(firsts) > 0 {
			first = fmtDur(median(firsts))
		}
		return []string{pr.name, fmtDur(idleAir), first,
			fmtPct(total.DeliveryRatio()), fmtDur(total.MeanLatency()),
			fmtF(snap["total.tx.frames"], 0)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"the trade: proactive pays idle beacons and answers instantly; reactive is silent when idle but the first packet of every flow waits out a discovery round trip; flooding pays the most airtime forever. For always-on telemetry (this paper's workload) proactive wins; for rare event traffic reactive's silence is worth the latency")
	return res, nil
}
