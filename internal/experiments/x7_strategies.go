package experiments

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/citysim"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/forward"
	"repro/internal/geo"
	"repro/internal/health"
	"repro/internal/icn"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/reactive"
	"repro/internal/slotted"
)

// X7Strategies is the four-way forwarding-strategy shoot-out the strategy
// API exists for: the same workloads run under proactive (LoRaMesher),
// reactive (AODV-lite), ICN (named-data pub-sub with in-mesh caching),
// and slotted (TDMA real-time mode), selected purely by configuration.
// Three sections share one table:
//
//  1. the E12-derived chaos matrix on the 5-node chain — delivery and
//     latency per strategy under injected faults;
//  2. a many-reader workload (one producer, every other node reads the
//     same datum each period) — the content-centric case, where ICN's
//     interest aggregation and caching must beat per-reader unicast and
//     flooding on airtime (asserted, with the cache-hit evidence in the
//     table);
//  3. the city-scale topology — all four strategies on the sharded
//     simulator, each row carrying its determinism digest.
//
// The slotted rows declare a latency bound via the superframe; the
// baseline (fault-free) slotted row must finish with zero latency_bound
// health violations (asserted). Cells are byte-identical per (plan,
// seed) at any Options.Parallel: every sweep point builds its own
// simulation and rows are assembled in sweep order.
func X7Strategies(opt Options) (*Result, error) {
	active := 2 * time.Hour
	manyFor := 2 * time.Hour
	cityNodes, cityShards, cityFor := 10000, 4, 15*time.Minute
	if opt.Quick {
		active = 40 * time.Minute
		manyFor = time.Hour
		cityNodes, cityShards, cityFor = 2000, 2, 12*time.Minute
	}
	if opt.Nodes > 0 {
		cityNodes = opt.Nodes
	}
	if opt.Shards > 0 {
		cityShards = opt.Shards
	}

	res := &Result{
		ID: "X7",
		Title: fmt.Sprintf("forwarding-strategy shoot-out: chaos chain (%v), many-reader (%v), city n=%d",
			active, manyFor, cityNodes),
		Header: []string{"strategy", "scenario", "offered", "delivered", "PDR",
			"mean lat", "air/node/h", "strategy detail", "digest"},
	}

	// --- section 1: chaos matrix × four strategies -------------------
	kinds := []netsim.ProtocolKind{
		netsim.KindMesher, netsim.KindReactive, netsim.KindICN, netsim.KindSlotted,
	}
	scenarios := x7Scenarios()
	chainRows, err := forEachPoint(opt, len(kinds)*len(scenarios), func(i int) ([]string, error) {
		return x7ChainCell(opt, kinds[i/len(scenarios)], scenarios[i%len(scenarios)], active)
	})
	if err != nil {
		return nil, err
	}
	for _, row := range chainRows {
		res.AddRow(row...)
	}

	// --- section 2: many-reader workload -----------------------------
	type manyCell struct {
		row  []string
		air  time.Duration
		hits float64
	}
	manyKinds := []netsim.ProtocolKind{netsim.KindMesher, netsim.KindFlooding, netsim.KindICN}
	manyCells, err := forEachPoint(opt, len(manyKinds), func(i int) (manyCell, error) {
		row, air, hits, err := x7ManyReaderCell(opt, manyKinds[i], manyFor)
		return manyCell{row, air, hits}, err
	})
	if err != nil {
		return nil, err
	}
	for _, c := range manyCells {
		res.AddRow(c.row...)
	}
	proAir, floodAir, icnAir := manyCells[0].air, manyCells[1].air, manyCells[2].air
	if manyCells[2].hits == 0 {
		return nil, fmt.Errorf("X7: many-reader ICN run recorded no content-store hits")
	}
	if icnAir >= proAir || icnAir >= floodAir {
		return nil, fmt.Errorf("X7: ICN airtime %v does not beat proactive %v / flooding %v on the many-reader workload",
			icnAir, proAir, floodAir)
	}

	// --- section 3: city scale ---------------------------------------
	cityStrats := []string{"proactive", "reactive", "icn", "slotted"}
	if opt.Strategy != "" {
		k, err := forward.ParseKind(opt.Strategy)
		if err != nil {
			return nil, fmt.Errorf("X7: %w", err)
		}
		if k == forward.KindFlooding {
			return nil, fmt.Errorf("X7: the city engine does not run %q", k)
		}
		cityStrats = []string{string(k)}
	}
	cityRows, err := forEachPoint(opt, len(cityStrats), func(i int) ([]string, error) {
		return x7CityCell(opt, cityStrats[i], cityNodes, cityShards, cityFor)
	})
	if err != nil {
		return nil, err
	}
	for _, row := range cityRows {
		res.AddRow(row...)
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("many-reader airtime: ICN %v/node/h vs proactive %v and flooding %v — interest aggregation and in-mesh caching collapse N reads of one datum into one flood plus cached answers (asserted, with the cache-hit count in the table)",
			icnAir, proAir, floodAir),
		"ICN PDR counts one offer per (reader, round); readers re-express unsatisfied interests (the strategy never retransmits — retry is the application's job), so pull-based delivery converges where a lost push datagram is simply gone",
		"the slotted baseline row must end with zero latency_bound health violations (asserted); under crash/loss scenarios violations are reported, not hidden — a TDMA schedule bounds queueing, not outages",
		"city rows carry the citysim determinism digest: the same (strategy, seed) reproduces the digest byte-identically at any shard count or -parallel setting",
		"city ICN delivery is a round trip (interest out, data back) bounded by the hop TTL, so within this horizon only nodes whose interest flood reaches a sink and returns are served — the airtime column, not PDR, is ICN's city-scale story")
	return res, nil
}

// x7Scenarios is the E12-derived fault set the chain section sweeps: no
// faults, steady random loss on a middle link, and a mid-route crash.
func x7Scenarios() []struct {
	name string
	plan *faults.Plan
} {
	min := faults.Duration(time.Minute)
	return []struct {
		name string
		plan *faults.Plan
	}{
		{"baseline (no faults)", &faults.Plan{Name: "baseline"}},
		{"bernoulli p=0.15 on 1-2", &faults.Plan{Name: "bernoulli", Links: []faults.LinkFault{
			{From: 1, To: 2, Symmetric: true, Kind: faults.KindBernoulli, P: 0.15},
		}}},
		{"crash node 2 (8min down)", &faults.Plan{Name: "crash", Crashes: []faults.Crash{
			{Node: 2, At: 20 * min, Downtime: 8 * min},
		}}},
	}
}

// x7Superframe is the real-time schedule X7 declares for the slotted
// strategy: three slots of 2 s with a 100 ms guard, and a 90 s end-to-end
// latency bound the health monitor enforces per delivery.
func x7Superframe() control.Superframe {
	return control.Superframe{
		Slots:        3,
		SlotLen:      control.Duration(2 * time.Second),
		Guard:        control.Duration(100 * time.Millisecond),
		LatencyBound: control.Duration(90 * time.Second),
	}
}

// x7ICNConfig is the ICN template for X7: the PIT window sits below the
// 40 s application re-express cadence so lost rounds re-flood instead of
// aggregating against a dead pending interest.
func x7ICNConfig() icn.Config {
	return icn.Config{
		RebroadcastDelay: 200 * time.Millisecond,
		PITTimeout:       20 * time.Second,
	}
}

// x7Content is the deterministic producer function: content is a pure
// function of the name, so every cached answer is checkable.
func x7Content(name string) []byte { return []byte("x7(" + name + ")") }

// x7Sim assembles a chain-or-grid simulation for one strategy, keeping
// every strategy on the same radio profile and seed. producer is the node
// index that answers ICN interests (and the slotted/ManyToOne sink).
func x7Sim(opt Options, kind netsim.ProtocolKind, topo *geo.Topology, producer int) (*netsim.Sim, error) {
	cfg := netsim.Config{Topology: topo, Protocol: kind, Seed: opt.Seed}
	switch kind {
	case netsim.KindMesher:
		cfg.Node = expNode()
	case netsim.KindFlooding:
		// Defaults; the baseline has no routing state to configure.
	case netsim.KindReactive:
		cfg.Reactive = reactive.Config{DiscoveryTimeout: 15 * time.Second}
	case netsim.KindICN:
		cfg.ICN = x7ICNConfig()
		cfg.ICNProduce = func(i int, name string) []byte {
			if i == producer {
				return x7Content(name)
			}
			return nil
		}
	case netsim.KindSlotted:
		sf := x7Superframe()
		cfg.Node = expNode()
		cfg.Slotted = slotted.Config{
			Superframe: sf,
			Sink:       packet.Address(0x0001 + producer),
		}
		cfg.HealthInterval = time.Minute
		cfg.FlowLatencyBound = sf.LatencyBound.D()
	}
	sim, err := netsim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("X7 %s: %w", kind.StrategyKind(), err)
	}
	if kind == netsim.KindMesher || kind == netsim.KindSlotted {
		if _, ok := sim.TimeToConvergence(10*time.Second, 4*time.Hour); !ok {
			return nil, fmt.Errorf("X7 %s: mesh never converged", kind.StrategyKind())
		}
	}
	return sim, nil
}

// x7ChainCell evaluates one (strategy, chaos scenario) cell on the
// 5-node chain under the shared telemetry workload.
func x7ChainCell(opt Options, kind netsim.ProtocolKind, sc struct {
	name string
	plan *faults.Plan
}, active time.Duration) ([]string, error) {
	const n = 5
	topo, err := geo.Line(n, chainSpacing)
	if err != nil {
		return nil, err
	}
	sim, err := x7Sim(opt, kind, topo, 0)
	if err != nil {
		return nil, err
	}
	if err := sim.ApplyFaultPlan(sc.plan); err != nil {
		return nil, err
	}
	airStart := sim.TotalAirtime()

	// MergeStats snapshots by value, so push-strategy flows are merged
	// only after the run; the ICN accounting object is mutated in place.
	var stats *netsim.TrafficStats
	var flows []*netsim.TrafficStats
	if kind == netsim.KindICN {
		consumers := make([]int, 0, n-1)
		for i := 1; i < n; i++ {
			consumers = append(consumers, i)
		}
		stats = x7ICNRounds(sim, consumers, int(active/(2*time.Minute)), 2*time.Minute)
	} else {
		flows, err = sim.StartManyToOne(0, 16, 2*time.Minute, true)
		if err != nil {
			return nil, err
		}
	}
	sim.Run(active)
	if stats == nil {
		stats = netsim.MergeStats(flows)
	}

	airPerNodeH := time.Duration(float64(sim.TotalAirtime()-airStart) / n / active.Hours())
	detail, err := x7Detail(sim, kind, sc.name == "baseline (no faults)")
	if err != nil {
		return nil, err
	}
	return []string{
		string(kind.StrategyKind()), sc.name,
		fmt.Sprintf("%d", stats.Offered),
		fmt.Sprintf("%d", stats.Delivered),
		fmtPct(stats.DeliveryRatio()),
		fmtDur(stats.MeanLatency()),
		fmtDur(airPerNodeH),
		detail, "-",
	}, nil
}

// x7Detail renders the strategy-specific evidence column and enforces
// the slotted zero-violation bar on fault-free runs.
func x7Detail(sim *netsim.Sim, kind netsim.ProtocolKind, faultFree bool) (string, error) {
	snap := sim.AggregateMetrics().Snapshot()
	switch kind {
	case netsim.KindICN:
		return fmt.Sprintf("cs.hit=%.0f agg=%.0f",
			snap["total.icn.cs.hit"], snap["total.icn.interest.aggregated"]), nil
	case netsim.KindSlotted:
		viol := snap["health.violation."+health.KindLatencyBound]
		if faultFree && viol != 0 {
			return "", fmt.Errorf("X7: slotted fault-free run has %.0f latency_bound violations, want 0", viol)
		}
		return fmt.Sprintf("defer=%.0f viol=%.0f",
			snap["total.slotted.gate.deferrals"], viol), nil
	}
	return "-", nil
}

// x7ManyReaderCell evaluates one strategy on the many-reader workload: a
// 4x4 grid, the producer in one corner, and every other node reading the
// same per-round datum every 10 minutes. Push strategies model the reads
// as one unicast per reader per round; ICN readers express interest in
// the round's name. Returns the row plus the airtime and cache-hit
// figures the caller's cross-strategy assertion needs.
func x7ManyReaderCell(opt Options, kind netsim.ProtocolKind, runFor time.Duration) ([]string, time.Duration, float64, error) {
	const period = 10 * time.Minute
	topo, err := geo.Grid(4, 4, 8000)
	if err != nil {
		return nil, 0, 0, err
	}
	sim, err := x7Sim(opt, kind, topo, 0)
	if err != nil {
		return nil, 0, 0, err
	}
	airStart := sim.TotalAirtime()

	readers := make([]int, 0, topo.N()-1)
	for i := 1; i < topo.N(); i++ {
		readers = append(readers, i)
	}
	var stats *netsim.TrafficStats
	var flows []*netsim.TrafficStats
	if kind == netsim.KindICN {
		stats = x7ICNRounds(sim, readers, int(runFor/period), period)
	} else {
		for _, r := range readers {
			st, err := sim.StartFlow(netsim.Flow{
				From: 0, To: r, Payload: 24, Interval: period, Poisson: true,
			})
			if err != nil {
				return nil, 0, 0, err
			}
			flows = append(flows, st)
		}
	}
	sim.Run(runFor)
	if stats == nil {
		stats = netsim.MergeStats(flows)
	}

	n := float64(topo.N())
	airPerNodeH := time.Duration(float64(sim.TotalAirtime()-airStart) / n / runFor.Hours())
	snap := sim.AggregateMetrics().Snapshot()
	hits := snap["total.icn.cs.hit"]
	detail := "-"
	if kind == netsim.KindICN {
		ratio := 0.0
		if denom := hits + snap["total.icn.cs.miss"]; denom > 0 {
			ratio = hits / denom
		}
		detail = fmt.Sprintf("cs.hit=%.0f agg=%.0f hit-ratio=%s",
			hits, snap["total.icn.interest.aggregated"], fmtPct(ratio))
	}
	row := []string{
		string(kind.StrategyKind()),
		fmt.Sprintf("many-reader 4x4 grid, %d readers", len(readers)),
		fmt.Sprintf("%d", stats.Offered),
		fmt.Sprintf("%d", stats.Delivered),
		fmtPct(stats.DeliveryRatio()),
		fmtDur(stats.MeanLatency()),
		fmtDur(airPerNodeH),
		detail, "-",
	}
	return row, airPerNodeH, hits, nil
}

// x7ICNRounds drives the named-data equivalent of a periodic workload:
// each consumer expresses the round's name at a staggered offset and
// re-expresses up to twice (40 s apart) while unsatisfied — interests
// are never retransmitted by the strategy, so retry is the application's
// job. Offered counts one per (consumer, round); latency runs from the
// consumer's first expression to its first delivery of that round.
func x7ICNRounds(sim *netsim.Sim, consumers []int, rounds int, period time.Duration) *netsim.TrafficStats {
	stats := &netsim.TrafficStats{}
	type key struct{ consumer, round int }
	exprAt := make(map[key]time.Time)
	satisfied := make(map[key]bool)

	for _, c := range consumers {
		c := c
		h := sim.Handle(c)
		prev := h.OnMessage
		h.OnMessage = func(msg core.AppMessage) {
			if prev != nil {
				prev(msg)
			}
			sep := bytes.IndexByte(msg.Payload, 0)
			if sep < 0 {
				return
			}
			var round int
			if _, err := fmt.Sscanf(string(msg.Payload[:sep]), "x7/reading/%d", &round); err != nil {
				return
			}
			k := key{c, round}
			at, ok := exprAt[k]
			if !ok || satisfied[k] {
				return
			}
			satisfied[k] = true
			stats.Delivered++
			stats.Latencies = append(stats.Latencies, msg.At.Sub(at))
		}
	}

	for r := 0; r < rounds; r++ {
		name := fmt.Sprintf("x7/reading/%d", r)
		for ci, c := range consumers {
			k := key{c, r}
			base := time.Duration(r)*period + time.Second +
				time.Duration(ci)*1700*time.Millisecond
			for attempt := 0; attempt < 3; attempt++ {
				at := base + time.Duration(attempt)*40*time.Second
				sim.Sched.MustAfter(at, func() {
					if satisfied[k] {
						return
					}
					if _, ok := exprAt[k]; !ok {
						exprAt[k] = sim.Now()
						stats.Offered++
					}
					if sim.Handle(k.consumer).ICN.Express(name) == nil {
						stats.Accepted++
					}
				})
			}
		}
	}
	return stats
}

// x7CityCell runs one strategy on the city-scale sharded simulator and
// renders its row, digest included.
func x7CityCell(opt Options, strategy string, nodes, shards int, simFor time.Duration) ([]string, error) {
	sim, err := citysim.New(citysim.Config{
		Nodes:       nodes,
		Shards:      shards,
		Seed:        opt.Seed,
		Strategy:    strategy,
		HelloPeriod: 2 * time.Minute,
		DataPeriod:  6 * time.Minute,
	})
	if err != nil {
		return nil, fmt.Errorf("X7 city %s: %w", strategy, err)
	}
	if err := sim.Run(simFor); err != nil {
		return nil, fmt.Errorf("X7 city %s: %w", strategy, err)
	}
	st := sim.Stats()
	detail := "-"
	switch strategy {
	case "reactive":
		detail = fmt.Sprintf("solicits=%d", st.SolicitsSent)
	case "icn":
		detail = fmt.Sprintf("int=%d agg=%d cs.hit=%d",
			st.InterestsSent, st.InterestAggregated, st.CacheHits)
	case "slotted":
		detail = fmt.Sprintf("defer=%d", st.SlotDeferrals)
	}
	airPerNodeH := time.Duration(float64(st.AirtimeTotal) / float64(nodes) / simFor.Hours())
	return []string{
		strategy,
		fmt.Sprintf("citysim n=%d %d-shard %s", nodes, shards, fmtDur(simFor)),
		fmt.Sprintf("%d", st.Offered),
		fmt.Sprintf("%d", st.Delivered),
		fmtPct(st.PDR()),
		fmtDur(st.MeanLatency()),
		fmtDur(airPerNodeH),
		detail,
		fmt.Sprintf("%016x", sim.Digest()),
	}, nil
}
