// Package faults defines deterministic, seed-driven fault plans for the
// mesh simulator. A Plan is a declarative description of everything that
// goes wrong during a run — per-link Bernoulli or Gilbert-Elliott loss,
// asymmetric (one-way) links, scheduled link flaps, node crash/restart
// churn, clock-skewed HELLO timers, and payload bit corruption — and an
// Injector evaluates that plan against the simulator's virtual clock.
//
// Everything is a pure function of (plan, seed, virtual time): flap
// windows are computed from timestamps alone, and every random draw
// comes from a per-directed-link PRNG seeded from the plan seed and the
// link endpoints. Two runs with the same plan and seed therefore produce
// the same drop and corruption sequence byte for byte, which is what
// makes a failing chaos scenario replayable from its seed.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Link fault kinds.
const (
	// KindBernoulli drops each frame independently with probability P.
	KindBernoulli = "bernoulli"
	// KindGilbert is the two-state Gilbert-Elliott burst-loss model:
	// a good state losing LossGood of frames and a bad state losing
	// LossBad, with per-frame transition probabilities between them.
	KindGilbert = "gilbert"
	// KindBlock drops every frame on the link. A directional block
	// (Symmetric=false) models an asymmetric link: A hears B while B
	// never hears A.
	KindBlock = "block"
)

// Duration is a time.Duration that (un)marshals as a Go duration string
// ("90s", "2m30s") in JSON, with plain nanosecond numbers also accepted.
type Duration time.Duration

// D returns the native duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "90s"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("faults: bad duration %q: %w", s, perr)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("faults: bad duration %s", b)
	}
	*d = Duration(n)
	return nil
}

// LinkFault attaches a loss model to the directed link From→To. With
// Symmetric set the same model (with an independent random stream per
// direction) applies To→From as well.
type LinkFault struct {
	From      int    `json:"from"`
	To        int    `json:"to"`
	Symmetric bool   `json:"symmetric,omitempty"`
	Kind      string `json:"kind"`

	// P is the per-frame loss probability for KindBernoulli.
	P float64 `json:"p,omitempty"`

	// Gilbert-Elliott parameters (KindGilbert). The chain starts good.
	PGoodToBad float64 `json:"p_good_to_bad,omitempty"`
	PBadToGood float64 `json:"p_bad_to_good,omitempty"`
	LossGood   float64 `json:"loss_good,omitempty"`
	LossBad    float64 `json:"loss_bad,omitempty"`
}

// Flap periodically severs the link between nodes A and B (both
// directions): down for Down at Start, Start+Period, ... Count times.
// Count <= 0 means the flapping never stops.
type Flap struct {
	A      int      `json:"a"`
	B      int      `json:"b"`
	Start  Duration `json:"start"`
	Period Duration `json:"period"`
	Down   Duration `json:"down"`
	Count  int      `json:"count,omitempty"`
}

// active reports whether this flap holds the link down at offset t from
// the plan epoch.
func (f Flap) active(t time.Duration) bool {
	start, period, down := f.Start.D(), f.Period.D(), f.Down.D()
	if t < start {
		return false
	}
	if period <= 0 {
		// Single window (or Count windows collapse to one).
		return t < start+down
	}
	n := int64((t - start) / period)
	if f.Count > 0 && n >= int64(f.Count) {
		return false
	}
	return (t-start)-time.Duration(n)*period < down
}

// end returns when this flap's last down-window closes, and false if it
// never stops.
func (f Flap) end() (time.Duration, bool) {
	if f.Count <= 0 && f.Period.D() > 0 {
		return 0, false
	}
	if f.Period.D() <= 0 {
		return f.Start.D() + f.Down.D(), true
	}
	return f.Start.D() + time.Duration(f.Count-1)*f.Period.D() + f.Down.D(), true
}

// Crash takes a node down at At, losing its routing table and all
// in-flight state. Downtime > 0 restarts it cold after that long;
// Downtime == 0 leaves it down for the rest of the run.
type Crash struct {
	Node     int      `json:"node"`
	At       Duration `json:"at"`
	Downtime Duration `json:"downtime,omitempty"`
}

// Corrupt flips 1..MaxBits random payload bits in a fraction Rate of
// otherwise-delivered frames. The virtual PHY CRC (packet.CRC16) then
// decides the frame's fate: a changed checksum drops it as a detected
// corruption; the rare unchanged checksum lets the mangled frame
// through, modelling the residual error rate of a 16-bit CRC.
type Corrupt struct {
	Rate    float64 `json:"rate"`
	MaxBits int     `json:"max_bits,omitempty"`
}

// Attacker places a hostile radio next to a victim node. It overhears
// the victim's neighborhood and, on a fixed schedule, transmits hostile
// frames chosen by the enabled behaviors:
//
//   - Replay retransmits a previously captured frame verbatim.
//   - ForgeHello fabricates a HELLO from an address that does not exist
//     in the mesh, advertising cheap routes (table poisoning).
//   - BitFlip retransmits a captured frame with flipped bits (MIC/CRC
//     tampering).
//
// With several behaviors enabled the attacker cycles through them
// deterministically. The attacker has no network key: against a secured
// mesh every injected frame must die at the receivers' MIC or replay
// checks, which is precisely what the chaos suite asserts.
type Attacker struct {
	// Node is the victim whose neighborhood the attacker camps in.
	Node int `json:"node"`
	// Start is when the first injection fires, relative to the plan epoch.
	Start Duration `json:"start"`
	// Period is the injection cadence.
	Period Duration `json:"period"`
	// Count caps the number of injections; <= 0 means no cap.
	Count int `json:"count,omitempty"`
	// CaptureUntil freezes the attacker's capture ring that long after
	// the plan epoch (zero = keep capturing forever). A frozen ring
	// models an attacker replaying a previously sniffed corpus — the
	// corpus a network key rotation is supposed to kill.
	CaptureUntil Duration `json:"capture_until,omitempty"`

	Replay     bool `json:"replay,omitempty"`
	ForgeHello bool `json:"forge_hello,omitempty"`
	BitFlip    bool `json:"bit_flip,omitempty"`
}

// behaviors returns the enabled behavior names in cycling order.
func (a Attacker) behaviors() []string {
	var bs []string
	if a.Replay {
		bs = append(bs, "replay")
	}
	if a.ForgeHello {
		bs = append(bs, "forge_hello")
	}
	if a.BitFlip {
		bs = append(bs, "bit_flip")
	}
	return bs
}

// Behaviors exposes the enabled behavior names in cycling order.
func (a Attacker) Behaviors() []string { return a.behaviors() }

// ClockSkew multiplies one node's HELLO timer period by Factor,
// modelling the cheap-crystal drift real SX127x boards exhibit (a
// factor of 1.25 beacons 25% slower than its neighbors expect).
type ClockSkew struct {
	Node   int     `json:"node"`
	Factor float64 `json:"factor"`
}

// Plan is one complete fault schedule. The zero Plan injects nothing.
type Plan struct {
	Name       string      `json:"name,omitempty"`
	Links      []LinkFault `json:"links,omitempty"`
	Flaps      []Flap      `json:"flaps,omitempty"`
	Crashes    []Crash     `json:"crashes,omitempty"`
	Corrupt    *Corrupt    `json:"corrupt,omitempty"`
	ClockSkews []ClockSkew `json:"clock_skews,omitempty"`
	Attackers  []Attacker  `json:"attackers,omitempty"`
}

// Validate checks the plan against a simulation of n nodes.
func (p *Plan) Validate(n int) error {
	node := func(what string, i int) error {
		if i < 0 || i >= n {
			return fmt.Errorf("faults: %s references node %d, have %d nodes", what, i, n)
		}
		return nil
	}
	prob := func(what string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", what, v)
		}
		return nil
	}
	for i, l := range p.Links {
		what := fmt.Sprintf("links[%d]", i)
		if err := node(what+".from", l.From); err != nil {
			return err
		}
		if err := node(what+".to", l.To); err != nil {
			return err
		}
		if l.From == l.To {
			return fmt.Errorf("faults: %s is a self-link", what)
		}
		switch l.Kind {
		case KindBernoulli:
			if err := prob(what+".p", l.P); err != nil {
				return err
			}
		case KindGilbert:
			for _, pr := range []struct {
				name string
				v    float64
			}{
				{".p_good_to_bad", l.PGoodToBad}, {".p_bad_to_good", l.PBadToGood},
				{".loss_good", l.LossGood}, {".loss_bad", l.LossBad},
			} {
				if err := prob(what+pr.name, pr.v); err != nil {
					return err
				}
			}
		case KindBlock:
			// No parameters.
		default:
			return fmt.Errorf("faults: %s has unknown kind %q", what, l.Kind)
		}
	}
	for i, f := range p.Flaps {
		what := fmt.Sprintf("flaps[%d]", i)
		if err := node(what+".a", f.A); err != nil {
			return err
		}
		if err := node(what+".b", f.B); err != nil {
			return err
		}
		if f.A == f.B {
			return fmt.Errorf("faults: %s flaps a self-link", what)
		}
		if f.Down.D() <= 0 {
			return fmt.Errorf("faults: %s down window must be positive", what)
		}
		if f.Period.D() > 0 && f.Down.D() > f.Period.D() {
			return fmt.Errorf("faults: %s down %v exceeds period %v", what, f.Down.D(), f.Period.D())
		}
	}
	for i, c := range p.Crashes {
		what := fmt.Sprintf("crashes[%d]", i)
		if err := node(what+".node", c.Node); err != nil {
			return err
		}
		if c.At.D() < 0 || c.Downtime.D() < 0 {
			return fmt.Errorf("faults: %s has negative time", what)
		}
	}
	if c := p.Corrupt; c != nil {
		if err := prob("corrupt.rate", c.Rate); err != nil {
			return err
		}
		if c.MaxBits < 0 {
			return fmt.Errorf("faults: corrupt.max_bits must be >= 0")
		}
	}
	for i, s := range p.ClockSkews {
		what := fmt.Sprintf("clock_skews[%d]", i)
		if err := node(what+".node", s.Node); err != nil {
			return err
		}
		if s.Factor <= 0 {
			return fmt.Errorf("faults: %s factor must be positive", what)
		}
	}
	for i, a := range p.Attackers {
		what := fmt.Sprintf("attackers[%d]", i)
		if err := node(what+".node", a.Node); err != nil {
			return err
		}
		if a.Start.D() < 0 {
			return fmt.Errorf("faults: %s has negative start", what)
		}
		if a.Period.D() <= 0 {
			return fmt.Errorf("faults: %s period must be positive", what)
		}
		if a.CaptureUntil.D() < 0 {
			return fmt.Errorf("faults: %s has negative capture_until", what)
		}
		if len(a.behaviors()) == 0 {
			return fmt.Errorf("faults: %s enables no behavior (replay, forge_hello, bit_flip)", what)
		}
	}
	return nil
}

// LastFlapEnd returns when the final scheduled flap window closes (the
// moment after which the topology is stable again), or false if the
// plan has no flaps or a flap that never stops.
func (p *Plan) LastFlapEnd() (time.Duration, bool) {
	if len(p.Flaps) == 0 {
		return 0, false
	}
	var last time.Duration
	for _, f := range p.Flaps {
		e, ok := f.end()
		if !ok {
			return 0, false
		}
		if e > last {
			last = e
		}
	}
	return last, true
}

// FlapDown reports whether any flap holds the (unordered) link a–b down
// at offset t from the plan epoch.
func (p *Plan) FlapDown(t time.Duration, a, b int) bool {
	for _, f := range p.Flaps {
		if (f.A == a && f.B == b) || (f.A == b && f.B == a) {
			if f.active(t) {
				return true
			}
		}
	}
	return false
}

// Load parses a JSON-encoded plan. Unknown fields are rejected so a
// typo'd field name fails loudly instead of silently injecting nothing.
func Load(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	return &p, nil
}

// LoadFile reads a plan from a JSON file.
func LoadFile(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	defer f.Close()
	p, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	return p, nil
}

// Reasons orders fault-drop reason strings for stable reporting.
func Reasons(stats map[string]uint64) []string {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
