package faults

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	in := `{
		"name": "flaky",
		"links": [
			{"from":0,"to":1,"symmetric":true,"kind":"gilbert",
			 "p_good_to_bad":0.1,"p_bad_to_good":0.3,"loss_good":0.01,"loss_bad":0.9},
			{"from":2,"to":1,"kind":"block"}
		],
		"flaps": [{"a":1,"b":2,"start":"60s","period":"30s","down":"10s","count":5}],
		"crashes": [{"node":3,"at":"2m","downtime":"60s"}],
		"corrupt": {"rate":0.02,"max_bits":4},
		"clock_skews": [{"node":2,"factor":1.25}]
	}`
	p, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := p.Validate(4); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Flaps[0].Start.D() != time.Minute || p.Crashes[0].At.D() != 2*time.Minute {
		t.Fatalf("duration strings misparsed: %+v", p)
	}
	// Round trip: marshal then reload yields the same plan.
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	p2, err := Load(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	b2, _ := json.Marshal(p2)
	if !bytes.Equal(b, b2) {
		t.Fatalf("round trip diverged:\n%s\n%s", b, b2)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"linkz": []}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"node out of range", Plan{Crashes: []Crash{{Node: 9}}}},
		{"self link", Plan{Links: []LinkFault{{From: 1, To: 1, Kind: KindBlock}}}},
		{"unknown kind", Plan{Links: []LinkFault{{From: 0, To: 1, Kind: "weird"}}}},
		{"probability > 1", Plan{Links: []LinkFault{{From: 0, To: 1, Kind: KindBernoulli, P: 1.5}}}},
		{"flap down > period", Plan{Flaps: []Flap{{A: 0, B: 1, Period: Duration(time.Second), Down: Duration(2 * time.Second)}}}},
		{"flap zero down", Plan{Flaps: []Flap{{A: 0, B: 1, Period: Duration(time.Second)}}}},
		{"skew factor zero", Plan{ClockSkews: []ClockSkew{{Node: 0}}}},
		{"corrupt rate", Plan{Corrupt: &Corrupt{Rate: -0.1}}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(4); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestFlapWindows(t *testing.T) {
	f := Flap{A: 0, B: 1, Start: Duration(60 * time.Second),
		Period: Duration(30 * time.Second), Down: Duration(10 * time.Second), Count: 3}
	cases := []struct {
		at   time.Duration
		down bool
	}{
		{0, false},
		{59 * time.Second, false},
		{60 * time.Second, true},
		{69 * time.Second, true},
		{70 * time.Second, false},
		{90 * time.Second, true},
		{100 * time.Second, false},
		{120 * time.Second, true},
		{130 * time.Second, false},
		{150 * time.Second, false}, // Count exhausted
	}
	for _, c := range cases {
		if got := f.active(c.at); got != c.down {
			t.Errorf("at %v: down=%v, want %v", c.at, got, c.down)
		}
	}
	p := Plan{Flaps: []Flap{f}}
	if !p.FlapDown(65*time.Second, 1, 0) {
		t.Error("FlapDown not symmetric in endpoints")
	}
	end, ok := p.LastFlapEnd()
	if !ok || end != 130*time.Second {
		t.Errorf("LastFlapEnd = %v,%v, want 130s,true", end, ok)
	}
	// An endless flap has no end.
	p2 := Plan{Flaps: []Flap{{A: 0, B: 1, Period: Duration(time.Minute), Down: Duration(time.Second)}}}
	if _, ok := p2.LastFlapEnd(); ok {
		t.Error("endless flap reported an end")
	}
}

// epoch is an arbitrary wall-clock origin for injector tests.
var epoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func TestInjectorDeterministicReplay(t *testing.T) {
	plan := &Plan{
		Links: []LinkFault{
			{From: 0, To: 1, Symmetric: true, Kind: KindGilbert,
				PGoodToBad: 0.2, PBadToGood: 0.3, LossGood: 0.05, LossBad: 0.8},
			{From: 1, To: 2, Kind: KindBernoulli, P: 0.3},
		},
		Corrupt: &Corrupt{Rate: 0.1, MaxBits: 4},
	}
	run := func() []Outcome {
		inj := NewInjector(plan, 42, epoch)
		var out []Outcome
		frame := []byte("the quick brown fox jumps over")
		for i := 0; i < 500; i++ {
			now := epoch.Add(time.Duration(i) * time.Second)
			out = append(out, inj.OnDelivery(now, i%3, (i+1)%3, frame))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i].Drop != b[i].Drop || a[i].Reason != b[i].Reason ||
			a[i].Corrupted != b[i].Corrupted || !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("outcome %d diverged between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must produce a different sequence.
	inj := NewInjector(plan, 43, epoch)
	diff := false
	frame := []byte("the quick brown fox jumps over")
	for i := 0; i < 500; i++ {
		now := epoch.Add(time.Duration(i) * time.Second)
		o := inj.OnDelivery(now, i%3, (i+1)%3, frame)
		if o.Drop != a[i].Drop {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seed 42 and 43 produced identical drop sequences")
	}
}

func TestInjectorBernoulliRate(t *testing.T) {
	plan := &Plan{Links: []LinkFault{{From: 0, To: 1, Kind: KindBernoulli, P: 0.25}}}
	inj := NewInjector(plan, 7, epoch)
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if inj.OnDelivery(epoch, 0, 1, []byte{1}).Drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("bernoulli(0.25) dropped at rate %.3f", rate)
	}
	// The unmodelled reverse direction loses nothing.
	if inj.OnDelivery(epoch, 1, 0, []byte{1}).Drop {
		t.Error("reverse direction dropped without a model")
	}
}

func TestInjectorGilbertBursts(t *testing.T) {
	// Sticky bad state with heavy loss: drops must arrive in runs, and
	// the overall rate must sit between LossGood and LossBad.
	plan := &Plan{Links: []LinkFault{{From: 0, To: 1, Kind: KindGilbert,
		PGoodToBad: 0.02, PBadToGood: 0.1, LossGood: 0.0, LossBad: 1.0}}}
	inj := NewInjector(plan, 3, epoch)
	const n = 50000
	drops, runs, inRun := 0, 0, false
	for i := 0; i < n; i++ {
		if inj.OnDelivery(epoch, 0, 1, []byte{1}).Drop {
			drops++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if drops == 0 || runs == 0 {
		t.Fatal("gilbert model never dropped")
	}
	meanRun := float64(drops) / float64(runs)
	if meanRun < 3 {
		t.Errorf("mean loss burst %.1f frames; want bursty (>= 3)", meanRun)
	}
	// Stationary loss ≈ pi_bad = g2b/(g2b+b2g) = 1/6 with LossBad=1.
	rate := float64(drops) / n
	if rate < 0.10 || rate > 0.24 {
		t.Errorf("gilbert loss rate %.3f outside expected band", rate)
	}
}

func TestInjectorAsymmetricBlock(t *testing.T) {
	plan := &Plan{Links: []LinkFault{{From: 0, To: 1, Kind: KindBlock}}}
	inj := NewInjector(plan, 1, epoch)
	if o := inj.OnDelivery(epoch, 0, 1, []byte{1}); !o.Drop || o.Reason != ReasonLink {
		t.Fatalf("blocked direction delivered: %+v", o)
	}
	if o := inj.OnDelivery(epoch, 1, 0, []byte{1}); o.Drop {
		t.Fatalf("open direction dropped: %+v", o)
	}
}

func TestInjectorCorruptionCaughtByCRC(t *testing.T) {
	plan := &Plan{Corrupt: &Corrupt{Rate: 1.0, MaxBits: 3}}
	inj := NewInjector(plan, 11, epoch)
	frame := make([]byte, 40)
	for i := range frame {
		frame[i] = byte(i)
	}
	detected, passed := 0, 0
	for i := 0; i < 1000; i++ {
		o := inj.OnDelivery(epoch, 0, 1, frame)
		switch {
		case o.Drop && o.Reason == ReasonCorrupt:
			detected++
		case o.Corrupted:
			passed++
			if bytes.Equal(o.Data, frame) {
				t.Fatal("corrupted outcome carries unmutated frame")
			}
		case !o.Drop:
			t.Fatal("rate-1.0 corruption left a frame untouched")
		}
	}
	if detected < 990 {
		// 1..3 bit flips are always within CRC-16's guaranteed detection
		// (burst < 16 would be, but scattered flips can in principle
		// collide; in practice essentially never at these counts).
		t.Errorf("only %d/1000 corruptions caught by CRC", detected)
	}
	st := inj.Stats()
	if st[ReasonCorrupt] != uint64(detected) || st["corrupt.undetected"] != uint64(passed) {
		t.Errorf("stats %v disagree with observed %d/%d", st, detected, passed)
	}
}

func TestFlapConsumesNoRandomness(t *testing.T) {
	// Drops during a flap window must not advance the link PRNG:
	// outcomes after the window are identical whether or not frames
	// crossed during it.
	plan := &Plan{
		Links: []LinkFault{{From: 0, To: 1, Kind: KindBernoulli, P: 0.5}},
		Flaps: []Flap{{A: 0, B: 1, Start: 0, Down: Duration(10 * time.Second)}},
	}
	after := func(duringFlap int) []bool {
		inj := NewInjector(plan, 5, epoch)
		for i := 0; i < duringFlap; i++ {
			if o := inj.OnDelivery(epoch.Add(time.Second), 0, 1, []byte{1}); !o.Drop || o.Reason != ReasonFlap {
				t.Fatalf("frame crossed a down link: %+v", o)
			}
		}
		var out []bool
		for i := 0; i < 50; i++ {
			out = append(out, inj.OnDelivery(epoch.Add(time.Minute), 0, 1, []byte{1}).Drop)
		}
		return out
	}
	a, b := after(0), after(17)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("flap-window traffic perturbed the loss PRNG")
		}
	}
}
