package faults

import (
	"math/rand"
	"time"

	"repro/internal/packet"
)

// Drop reasons reported by the injector. The simulator surfaces each as
// a drop.fault.<reason> counter and trace event.
const (
	// ReasonFlap: the frame arrived while a scheduled flap held the
	// link down.
	ReasonFlap = "flap"
	// ReasonLink: a block-kind link fault (asymmetric or severed link)
	// swallowed the frame.
	ReasonLink = "link"
	// ReasonLoss: the link's Bernoulli/Gilbert-Elliott model rolled a
	// loss.
	ReasonLoss = "loss"
	// ReasonCorrupt: injected bit errors changed the frame's CRC16, so
	// the virtual PHY rejected it.
	ReasonCorrupt = "corrupt"
)

// Outcome is the injector's verdict on one delivery.
type Outcome struct {
	// Drop set means the frame must not reach the receiver; Reason
	// says why (one of the Reason* constants).
	Drop   bool
	Reason string
	// Data is the frame to deliver when not dropped. It aliases the
	// input unless Corrupted is set, in which case it is a mutated
	// copy whose bit errors slipped past the 16-bit CRC.
	Data      []byte
	Corrupted bool
}

// linkState holds the per-directed-link mutable state: the PRNG for
// every probabilistic draw on that direction, and the Gilbert-Elliott
// channel state.
type linkState struct {
	rng *rand.Rand
	bad bool // Gilbert-Elliott chain state; starts good
}

type linkKey struct{ from, to int }

// Injector evaluates a Plan against virtual time. It is not safe for
// concurrent use; the discrete-event simulator is single-threaded.
type Injector struct {
	plan  *Plan
	seed  int64
	epoch time.Time

	links map[linkKey]*linkState
	// model indexes the loss model (if any) for each direction.
	model map[linkKey]*LinkFault

	stats map[string]uint64
}

// NewInjector builds an injector for plan. All plan offsets (flap
// starts, crash times) are relative to epoch — normally the virtual
// time at which the plan was applied. seed drives every random draw;
// the same (plan, seed, delivery sequence) yields the same outcomes.
func NewInjector(plan *Plan, seed int64, epoch time.Time) *Injector {
	inj := &Injector{
		plan:  plan,
		seed:  seed,
		epoch: epoch,
		links: make(map[linkKey]*linkState),
		model: make(map[linkKey]*LinkFault),
		stats: make(map[string]uint64),
	}
	for i := range plan.Links {
		l := &plan.Links[i]
		inj.model[linkKey{l.From, l.To}] = l
		if l.Symmetric {
			inj.model[linkKey{l.To, l.From}] = l
		}
	}
	return inj
}

// Plan returns the plan this injector evaluates.
func (inj *Injector) Plan() *Plan { return inj.plan }

// Epoch returns the virtual time the plan's offsets are relative to.
func (inj *Injector) Epoch() time.Time { return inj.epoch }

// state returns (lazily creating) the directed link's mutable state.
// The PRNG seed mixes the injector seed with both endpoints so each
// direction has an independent, reproducible random stream that does
// not depend on traffic interleaving across links.
func (inj *Injector) state(k linkKey) *linkState {
	if s, ok := inj.links[k]; ok {
		return s
	}
	h := uint64(inj.seed) ^ 0x9e3779b97f4a7c15
	h = (h ^ uint64(k.from+1)) * 0x100000001b3
	h = (h ^ uint64(k.to+1)*0x10001) * 0x100000001b3
	s := &linkState{rng: rand.New(rand.NewSource(int64(h)))}
	inj.links[k] = s
	return s
}

// OnDelivery decides the fate of a frame the medium is about to hand
// from station `from` to station `to` at virtual time now. Evaluation
// order is flap → link loss model → corruption: a link that is down
// drops the frame before any probability is rolled, so flap windows
// consume no randomness and stay pure functions of time.
func (inj *Injector) OnDelivery(now time.Time, from, to int, data []byte) Outcome {
	t := now.Sub(inj.epoch)
	if inj.plan.FlapDown(t, from, to) {
		inj.stats[ReasonFlap]++
		return Outcome{Drop: true, Reason: ReasonFlap}
	}
	k := linkKey{from, to}
	if m := inj.model[k]; m != nil {
		st := inj.state(k)
		switch m.Kind {
		case KindBlock:
			inj.stats[ReasonLink]++
			return Outcome{Drop: true, Reason: ReasonLink}
		case KindBernoulli:
			if st.rng.Float64() < m.P {
				inj.stats[ReasonLoss]++
				return Outcome{Drop: true, Reason: ReasonLoss}
			}
		case KindGilbert:
			// Advance the chain once per frame, then roll loss in the
			// (possibly new) state.
			if st.bad {
				if st.rng.Float64() < m.PBadToGood {
					st.bad = false
				}
			} else if st.rng.Float64() < m.PGoodToBad {
				st.bad = true
			}
			loss := m.LossGood
			if st.bad {
				loss = m.LossBad
			}
			if st.rng.Float64() < loss {
				inj.stats[ReasonLoss]++
				return Outcome{Drop: true, Reason: ReasonLoss}
			}
		}
	}
	if c := inj.plan.Corrupt; c != nil && c.Rate > 0 && len(data) > 0 {
		st := inj.state(k)
		if st.rng.Float64() < c.Rate {
			maxBits := c.MaxBits
			if maxBits <= 0 {
				maxBits = 3
			}
			mutated := append([]byte(nil), data...)
			flips := 1 + st.rng.Intn(maxBits)
			// Distinct bit positions: flipping the same bit twice would
			// undo the error and deliver a pristine frame as "corrupt".
			seen := make(map[int]bool, flips)
			for i := 0; i < flips; i++ {
				bit := st.rng.Intn(len(mutated) * 8)
				for seen[bit] {
					bit = (bit + 1) % (len(mutated) * 8)
				}
				seen[bit] = true
				mutated[bit/8] ^= 1 << (bit % 8)
			}
			if packet.CRC16(mutated) != packet.CRC16(data) {
				inj.stats[ReasonCorrupt]++
				return Outcome{Drop: true, Reason: ReasonCorrupt}
			}
			// CRC collision: the mangled frame passes the PHY check.
			inj.stats["corrupt.undetected"]++
			return Outcome{Data: mutated, Corrupted: true}
		}
	}
	return Outcome{Data: data}
}

// Stats returns the per-reason injection counts so far. The returned
// map is a copy.
func (inj *Injector) Stats() map[string]uint64 {
	out := make(map[string]uint64, len(inj.stats))
	for k, v := range inj.stats {
		out[k] = v
	}
	return out
}
