// Package forward defines the pluggable forwarding-strategy API: the
// engine surface every mesh protocol in this repository presents to its
// host, plus the smaller contracts a strategy is assembled from — the
// next-hop decision (Forwarder), transmission admission for scheduled
// access (TxGate), per-strategy control beacons (Beaconer), the routed-
// packet duplicate suppressor (Dedup), and the canonical drop-reason
// vocabulary shared by every strategy's drop accounting.
//
// Four strategies implement the API today:
//
//   - proactive — LoRaMesher's distance-vector engine (internal/core on
//     internal/routing), the paper's protocol;
//   - reactive  — the AODV-style on-demand engine (internal/reactive);
//   - icn       — named-data pub-sub with in-mesh caching and interest
//     aggregation (internal/icn); and
//   - slotted   — the proactive engine under a TDMA-like transmission
//     schedule with per-flow latency bounds (internal/slotted).
//
// The controlled-flooding baseline (internal/baseline) implements the
// same surface, so comparison experiments dispatch every engine —
// baseline or strategy — through one interface instead of hard-wired
// per-protocol calls.
package forward

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/packet"
)

// Kind names a forwarding strategy. The string forms are the values the
// meshsim/meshbench -strategy flags accept.
type Kind string

// Known strategies.
const (
	// KindProactive is LoRaMesher's distance-vector engine.
	KindProactive Kind = "proactive"
	// KindReactive is the AODV-style on-demand engine.
	KindReactive Kind = "reactive"
	// KindICN is the named-data pub-sub strategy with in-mesh caching.
	KindICN Kind = "icn"
	// KindSlotted is the proactive engine under a TDMA-like schedule.
	KindSlotted Kind = "slotted"
	// KindFlooding is the controlled-flooding baseline.
	KindFlooding Kind = "flooding"
)

// Kinds returns every selectable strategy kind in display order.
func Kinds() []Kind {
	return []Kind{KindProactive, KindReactive, KindICN, KindSlotted, KindFlooding}
}

// ParseKind maps a -strategy flag value to its Kind, failing cleanly on
// anything unknown.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if string(k) == s {
			return k, nil
		}
	}
	return "", fmt.Errorf("forward: unknown strategy %q (want proactive, reactive, icn, slotted, or flooding)", s)
}

// RxInfo carries link-quality measurements for a received frame.
type RxInfo struct {
	RSSIDBm float64
	SNRDB   float64
}

// Strategy is the host-driven engine surface every forwarding strategy
// implements. Engines perform no I/O and start no goroutines: a host —
// the deterministic simulator or a live runtime — serializes all calls
// and carries out transmissions through the engine's Env.
type Strategy interface {
	// Start arms the strategy's timers (beacons, schedules); reactive
	// strategies may be silent until traffic appears.
	Start() error
	// Stop cancels all pending work; a stopped engine ignores frames.
	Stop()
	// Send admits one application payload for dst. Strategies that route
	// by name rather than address (ICN) interpret the payload as the
	// content name and dst as advisory.
	Send(dst packet.Address, payload []byte) error
	// HandleFrame processes one frame received from the radio.
	HandleFrame(frame []byte, info RxInfo)
	// HandleTxDone is the host's signal that the engine's transmission
	// ended.
	HandleTxDone()
	// Address returns the node's mesh address.
	Address() packet.Address
	// Metrics exposes the engine's drop accounting and counters.
	Metrics() *metrics.Registry
	// Kind identifies the strategy for dispatch and reporting.
	Kind() Kind
}

// Forwarder makes the next-hop decision for a routed packet — the
// contract the distance-vector table (routing.Table) satisfies and a
// strategy may replace wholesale.
type Forwarder interface {
	// NextHop returns the neighbor to hand a packet for dst to; ok is
	// false when the destination is unreachable (the "noroute" drop).
	NextHop(dst packet.Address) (packet.Address, bool)
}

// TxGate is the transmission-admission hook scheduled-access strategies
// install in the engine's transmit path. Clearance is consulted after
// the duty-cycle check and before listen-before-talk: a zero return
// clears the frame to transmit now; a positive return defers the queue
// pump by that long (the engine re-consults at the new time).
type TxGate interface {
	Clearance(now time.Time, t packet.Type, airtime time.Duration) time.Duration
}

// Beacon describes one per-strategy control beacon: the wire type it
// rides and its nominal period. Strategies with no beacons return none.
type Beacon struct {
	Type   packet.Type
	Period time.Duration
}

// Beaconer is implemented by strategies that emit periodic control
// beacons (proactive HELLOs, slotted slot advertisements), so hosts and
// experiments can account control overhead per strategy uniformly.
type Beaconer interface {
	Beacons() []Beacon
}

// Canonical drop reasons. Every strategy accounts drops under a
// "drop.<reason>" counter using this vocabulary, and span/trace sinks
// carry the same strings, so drop tables compare across strategies.
const (
	DropNoRoute   = "noroute"
	DropDuplicate = "duplicate"
	DropQueueFull = "queue_full"
	DropDutyCycle = "dutycycle"
	DropMarshal   = "marshal"
	DropTxError   = "txerror"
	DropTTL       = "ttl"
	DropNoPIT     = "nopit"
)

// Dedup is the routed-packet duplicate suppressor strategies share: it
// remembers packet fingerprints for a horizon and reports repeats,
// breaking transient forwarding loops (the wire format has no TTL
// field). A non-positive horizon disables it. The zero value is ready
// to use.
//
// Semantics are load-bearing for replay determinism: a duplicate hit
// does NOT refresh the remembered timestamp (the horizon measures from
// first sight), and the table is swept of stale entries only when it
// grows past 256 fingerprints.
type Dedup struct {
	// Horizon is how long a fingerprint is remembered.
	Horizon time.Duration
	seen    map[uint64]time.Time
}

// Duplicate records fp at now and reports whether it was already seen
// within the horizon.
func (d *Dedup) Duplicate(now time.Time, fp uint64) bool {
	if d.Horizon <= 0 {
		return false
	}
	if last, ok := d.seen[fp]; ok && now.Sub(last) < d.Horizon {
		return true
	}
	if d.seen == nil {
		d.seen = make(map[uint64]time.Time)
	}
	d.seen[fp] = now
	if len(d.seen) > 256 {
		for k, v := range d.seen {
			if now.Sub(v) >= d.Horizon {
				delete(d.seen, k)
			}
		}
	}
	return false
}

// Len returns the number of remembered fingerprints (for tests).
func (d *Dedup) Len() int { return len(d.seen) }
