package forward

import (
	"strings"
	"testing"
	"time"
)

func TestParseKindRoundTrip(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 5 {
		t.Fatalf("Kinds() = %v, want 5 strategies", kinds)
	}
	for _, k := range kinds {
		got, err := ParseKind(string(k))
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k, err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %q", k, got)
		}
	}
	if kinds[0] != KindProactive {
		t.Errorf("display order must lead with the default: %v", kinds)
	}
}

func TestParseKindUnknown(t *testing.T) {
	for _, bad := range []string{"", "Proactive", "dv", "icn "} {
		k, err := ParseKind(bad)
		if err == nil {
			t.Fatalf("ParseKind(%q) = %q, want error", bad, k)
		}
		// The message must name every accepted value — it is the -strategy
		// flag's usage hint.
		for _, want := range Kinds() {
			if !strings.Contains(err.Error(), string(want)) {
				t.Errorf("ParseKind(%q) error %q does not mention %q", bad, err, want)
			}
		}
	}
}

func TestDedupDisabled(t *testing.T) {
	var d Dedup // zero horizon: disabled
	now := time.Unix(0, 0)
	for i := 0; i < 3; i++ {
		if d.Duplicate(now, 42) {
			t.Fatal("disabled dedup reported a duplicate")
		}
	}
	if d.Len() != 0 {
		t.Errorf("disabled dedup remembered %d fingerprints", d.Len())
	}
}

func TestDedupHorizon(t *testing.T) {
	d := Dedup{Horizon: 10 * time.Second}
	now := time.Unix(0, 0)
	if d.Duplicate(now, 1) {
		t.Fatal("first sight reported as duplicate")
	}
	if !d.Duplicate(now.Add(5*time.Second), 1) {
		t.Fatal("repeat within the horizon not reported")
	}
	// The horizon measures from FIRST sight: the duplicate hit at +5s must
	// not have refreshed the timestamp, so at +10s the entry is stale.
	if d.Duplicate(now.Add(10*time.Second), 1) {
		t.Fatal("fingerprint still duplicate one full horizon after first sight")
	}
	if d.Duplicate(now, 2) {
		t.Fatal("distinct fingerprint reported as duplicate")
	}
	if d.Len() != 2 {
		t.Errorf("Len() = %d, want 2", d.Len())
	}
}

func TestDedupSweep(t *testing.T) {
	d := Dedup{Horizon: time.Second}
	now := time.Unix(0, 0)
	for fp := uint64(0); fp < 300; fp++ {
		d.Duplicate(now, fp)
	}
	// Past 256 entries, inserts sweep fingerprints older than the horizon.
	d.Duplicate(now.Add(2*time.Second), 1000)
	if d.Len() != 1 {
		t.Errorf("after sweep Len() = %d, want 1 (only the fresh fingerprint)", d.Len())
	}
}
