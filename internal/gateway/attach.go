package gateway

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// This file wires a Gateway onto the repo's mesh runtimes.
//
// The deterministic simulator needs an externally-clocked drive: Sim
// chains onto the sink handle's OnMessage hook and reschedules
// Gateway.Poll on the virtual scheduler, so uplink batching, backoff, and
// breaker windows all elapse in virtual time and a scenario stays
// bit-for-bit reproducible. (The HTTP POST itself runs synchronously
// inside the scheduled event — wall-clock work under a paused virtual
// clock, invisible to the simulation.)
//
// The live runtimes (livenet, udpnet) just need the observer hook and a
// downlink sender; AttachHost wires both and the caller runs the
// real-time loop with Gateway.Start.

// Sim attaches a Gateway to one node of a netsim simulation.
type Sim struct {
	g        *Gateway
	sim      *netsim.Sim
	h        *netsim.Handle
	detached bool
}

// AttachSim hooks g onto node index's deliveries and starts polling the
// uplinker on the simulation's scheduler. The node keeps accumulating
// Msgs and running any previously-installed OnMessage observer; the
// gateway observes in addition, not instead.
func AttachSim(s *netsim.Sim, index int, g *Gateway) (*Sim, error) {
	if index < 0 || index >= s.N() {
		return nil, fmt.Errorf("gateway: attach: node %d out of range", index)
	}
	h := s.Handle(index)
	g.setAddr(h.Addr)
	if g.cfg.Spans == nil {
		// Inherit the simulation's recorder (when span capture is on) so
		// a reading's span tree runs mesh hop → spool → backend uplink.
		g.cfg.Spans = s.Spans
	}
	a := &Sim{g: g, sim: s, h: h}

	prev := h.OnMessage
	h.OnMessage = func(m core.AppMessage) {
		if prev != nil {
			prev(m)
		}
		if !a.detached {
			g.OfferMessage(m)
		}
	}
	g.SetSender(func(d Downlink) error {
		if a.detached {
			return fmt.Errorf("gateway: detached from simulation")
		}
		if d.Reliable {
			if a.h.Mesher == nil {
				return fmt.Errorf("gateway: node %v has no reliable transport", a.h.Addr)
			}
			_, err := a.h.Mesher.SendReliable(d.To, d.Payload)
			return err
		}
		return a.h.Proto.Send(d.To, d.Payload)
	})

	var tick func()
	tick = func() {
		if a.detached {
			return
		}
		d := g.Poll(s.Now())
		if d <= 0 {
			d = time.Millisecond
		}
		s.Sched.MustAfter(d, tick)
	}
	// First poll after one flush interval; deliveries before that simply
	// accumulate into the first batch.
	s.Sched.MustAfter(g.cfg.FlushInterval, tick)
	return a, nil
}

// Detach stops the adapter: deliveries are no longer offered and polling
// ceases at the next tick. The gateway itself stays usable — close it,
// or re-attach a successor to model a process restart on the same spool.
func (a *Sim) Detach() { a.detached = true }

// Gateway returns the attached gateway.
func (a *Sim) Gateway() *Gateway { return a.g }

// MeshHost is the surface a live runtime exposes for gateway attachment;
// *livenet.Handle and *udpnet.Host both satisfy it.
type MeshHost interface {
	MeshAddress() packet.Address
	SetOnMessage(func(core.AppMessage))
	Send(dst packet.Address, payload []byte) error
	SendReliable(dst packet.Address, payload []byte) (uint8, error)
}

// AttachHost hooks g onto a live host's deliveries and downlink path.
// Drive the uplinker with g.Start(); the observer must stay cheap, and
// Offer is (it never touches the network).
func AttachHost(h MeshHost, g *Gateway) {
	g.setAddr(h.MeshAddress())
	h.SetOnMessage(func(m core.AppMessage) { g.OfferMessage(m) })
	g.SetSender(func(d Downlink) error {
		if d.Reliable {
			_, err := h.SendReliable(d.To, d.Payload)
			return err
		}
		return h.Send(d.To, d.Payload)
	})
}
