package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/packet"
	"repro/internal/trace"
)

// Backend is an embedded in-memory uplink collector: an http.Handler
// speaking the gateway's POST protocol. It exists so every layer of the
// bridge can be exercised end to end without external infrastructure —
// cmd/meshgw embeds it behind a flag, examples/sensornet drains field
// telemetry into it, experiment E11 measures against it, and the tests
// use its exactly-once bookkeeping (Duplicates) to verify dedup.
//
// It also implements the reverse path: downlink commands queued with
// PushDownlink ride out in the response to the gateway's next uplink
// POST, and fault injection (FailNext, SetFailing) simulates backend
// outages so backoff and the circuit breaker can be observed.
type Backend struct {
	mu        sync.Mutex
	readings  []Reading
	seen      map[trace.TraceID]int // uploads per trace ID (first + dupes)
	downlinks []Downlink
	batches   int
	failNext  int
	failing   bool
}

// NewBackend returns an empty collector.
func NewBackend() *Backend {
	return &Backend{seen: make(map[trace.TraceID]int)}
}

// ServeHTTP implements http.Handler for the uplink endpoint.
func (b *Backend) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	b.mu.Lock()
	if b.failing || b.failNext > 0 {
		if b.failNext > 0 {
			b.failNext--
		}
		b.mu.Unlock()
		http.Error(w, "injected outage", http.StatusServiceUnavailable)
		return
	}
	b.mu.Unlock()

	var ur uplinkRequest
	if err := json.NewDecoder(req.Body).Decode(&ur); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	b.mu.Lock()
	accepted := 0
	for _, r := range ur.Readings {
		b.seen[r.Trace]++
		if b.seen[r.Trace] == 1 {
			b.readings = append(b.readings, r)
			accepted++
		}
	}
	b.batches++
	resp := uplinkResponse{Accepted: accepted, Downlinks: b.downlinks}
	b.downlinks = nil
	b.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// FailNext makes the next n uplink requests fail with 503.
func (b *Backend) FailNext(n int) {
	b.mu.Lock()
	b.failNext = n
	b.mu.Unlock()
}

// SetFailing switches an indefinite outage on or off.
func (b *Backend) SetFailing(on bool) {
	b.mu.Lock()
	b.failing = on
	b.mu.Unlock()
}

// PushDownlink queues a command for the mesh; it departs in the response
// to the next successful uplink POST.
func (b *Backend) PushDownlink(d Downlink) {
	b.mu.Lock()
	b.downlinks = append(b.downlinks, d)
	b.mu.Unlock()
}

// Readings returns the distinct readings received, in arrival order.
func (b *Backend) Readings() []Reading {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Reading(nil), b.readings...)
}

// Distinct returns how many unique readings (by trace ID) arrived.
func (b *Backend) Distinct() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.readings)
}

// Duplicates returns how many redundant uploads arrived — readings whose
// trace ID had already been accepted. Zero means the gateway achieved
// exactly-once delivery.
func (b *Backend) Duplicates() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := 0
	for _, n := range b.seen {
		d += n - 1
	}
	return d
}

// Batches returns how many uplink POSTs succeeded.
func (b *Backend) Batches() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches
}

// FromAddr returns the distinct readings originated by a given node.
func (b *Backend) FromAddr(a packet.Address) []Reading {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Reading
	for _, r := range b.readings {
		if r.From == a {
			out = append(out, r)
		}
	}
	return out
}

// ShardedBackend is N Backend collectors behind one handler — the
// horizontally sharded ingest tier the gateway's consistent-hash
// partitioning uploads into. Shard i listens at path "/s/<i>"; wire a
// gateway with Config.URLs = sb.URLs(server.URL). Each shard dedups
// independently, exactly like a real partitioned store: cross-gateway
// exactly-once holds only if every gateway maps an origin to the same
// shard, which is precisely what DoubleAccepted verifies.
type ShardedBackend struct {
	shards []*Backend
}

// NewShardedBackend returns n empty shard collectors.
func NewShardedBackend(n int) *ShardedBackend {
	if n < 1 {
		n = 1
	}
	sb := &ShardedBackend{}
	for i := 0; i < n; i++ {
		sb.shards = append(sb.shards, NewBackend())
	}
	return sb
}

// ServeHTTP routes "/s/<i>" to shard i.
func (sb *ShardedBackend) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	var i int
	if _, err := fmt.Sscanf(req.URL.Path, "/s/%d", &i); err != nil || i < 0 || i >= len(sb.shards) {
		http.Error(w, "no such shard", http.StatusNotFound)
		return
	}
	sb.shards[i].ServeHTTP(w, req)
}

// URLs derives the per-shard endpoint list from the server's base URL.
func (sb *ShardedBackend) URLs(base string) []string {
	urls := make([]string, len(sb.shards))
	for i := range sb.shards {
		urls[i] = fmt.Sprintf("%s/s/%d", base, i)
	}
	return urls
}

// Shard exposes one shard's collector.
func (sb *ShardedBackend) Shard(i int) *Backend { return sb.shards[i] }

// Shards returns the shard count.
func (sb *ShardedBackend) Shards() int { return len(sb.shards) }

// Distinct sums the unique readings accepted across all shards. If an
// origin's readings ever split across shards this exceeds the true
// unique count — use DoubleAccepted to detect that directly.
func (sb *ShardedBackend) Distinct() int {
	total := 0
	for _, b := range sb.shards {
		total += b.Distinct()
	}
	return total
}

// Duplicates sums redundant uploads across shards — uploads whose trace
// ID the receiving shard had already accepted. Nonzero is normal under
// handover or crash replay (the WAL re-uploads, the shard suppresses);
// it measures wasted uplink work, not a correctness violation.
func (sb *ShardedBackend) Duplicates() int {
	total := 0
	for _, b := range sb.shards {
		total += b.Duplicates()
	}
	return total
}

// DoubleAccepted counts trace IDs accepted (stored) by MORE than one
// shard — the exactly-once violation sharded dedup must prevent: it can
// only happen when two gateways map the same origin to different
// shards. Zero means cross-gateway exactly-once held.
func (sb *ShardedBackend) DoubleAccepted() int {
	counts := make(map[trace.TraceID]int)
	for _, b := range sb.shards {
		for _, r := range b.Readings() {
			counts[r.Trace]++
		}
	}
	double := 0
	for _, n := range counts {
		if n > 1 {
			double++
		}
	}
	return double
}

// Batches sums successful uplink POSTs across shards.
func (sb *ShardedBackend) Batches() int {
	total := 0
	for _, b := range sb.shards {
		total += b.Batches()
	}
	return total
}

// SetFailing switches an indefinite outage on or off for every shard.
func (sb *ShardedBackend) SetFailing(on bool) {
	for _, b := range sb.shards {
		b.SetFailing(on)
	}
}
