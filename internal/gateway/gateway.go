// Package gateway bridges a LoRa mesh to an IP backend: the missing layer
// between a gateway-less field mesh and the infrastructure that ultimately
// consumes its data. A Gateway attaches to a sink-role node on any of the
// repo's mesh runtimes — the deterministic simulator (internal/netsim, via
// AttachSim), the goroutine-per-node live runtime (internal/livenet), or
// the UDP socket runtime (internal/udpnet, both via AttachHost) — and
// store-and-forwards every application delivery to an HTTP backend:
//
//   - every mesh delivery is deduplicated by its causal trace ID and
//     appended to a file-backed WAL spool (see spool.go), so no reading is
//     lost across a gateway restart; on a plaintext mesh the trace ID is
//     content-derived, so uplink payloads must be unique per reading (see
//     Reading.Trace — secured meshes mix a per-send counter and have no
//     such constraint);
//   - the ingest path is sharded: readings are partitioned across backend
//     shards by the consistent-hashed origin address (see shard.go), each
//     shard owning its own dedup horizon, WAL (with optional group
//     commit), uplink window, backoff, and circuit breaker — so shards
//     never contend on one lock, and a fleet of overlapping gateways maps
//     any given origin to the same backend shard, whose dedup delivers
//     cross-gateway exactly-once through handover and crash replay;
//   - an uplinker drains each shard in size- or time-triggered batches
//     over plain net/http POSTs, with up to Pipeline batches in flight
//     per shard (windowed acks), exponential backoff plus jitter on
//     failure, and a per-shard circuit breaker after consecutive
//     failures;
//   - the spool is a bounded queue: under sustained backend outage an
//     explicit drop policy (oldest or newest) decides what gives, and the
//     decision is counted, never silent;
//   - the backend's POST responses may carry downlink commands, which the
//     gateway injects back into the mesh through the node's normal
//     datagram/reliable API; versioned commands are applied idempotently,
//     so out-of-order batch acks cannot regress controller state.
//
// Every decision — admission, dedup, drop, batch outcome, breaker
// transition, downlink injection — surfaces through internal/metrics
// instruments and internal/trace events, so the bridge is as observable
// as the mesh under it.
package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/meshsec"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/span"
	"repro/internal/trace"
)

// DropPolicy selects which reading a full spool sacrifices.
type DropPolicy int

const (
	// DropOldest evicts the oldest pending reading (default): under
	// prolonged outage the spool holds the freshest window of data.
	DropOldest DropPolicy = iota
	// DropNewest rejects the incoming reading, preserving the backlog in
	// arrival order.
	DropNewest
)

func (p DropPolicy) String() string {
	if p == DropNewest {
		return "newest"
	}
	return "oldest"
}

// Reading is one spooled uplink record: an application message the mesh
// delivered to the gateway node.
type Reading struct {
	// From is the originating mesh node — also the shard key: readings
	// from one origin always map to the same backend shard, on every
	// gateway in a fleet.
	From packet.Address
	// To is the gateway node's address (or broadcast).
	To packet.Address
	// Trace is the reading's end-to-end causal ID — the dedup key. On a
	// secured mesh (core.Config.Security set) the ID mixes the sender's
	// monotonic frame counter, so repeated byte-identical payloads are
	// distinct readings and dedup only ever suppresses true mesh-level
	// duplicates. On a plaintext mesh the ID is derived from packet
	// content with no per-send nonce, so two distinct readings from the
	// same sensor with byte-identical payloads share an ID and the later
	// one is suppressed as a duplicate within the dedup horizon —
	// plaintext uplink payloads must therefore be unique per reading
	// (embed a sequence number or timestamp; see core.AppMessage.Trace).
	Trace trace.TraceID
	// Payload is the application data.
	Payload []byte
	// Reliable marks readings that arrived via the stream transport.
	Reliable bool
	// At is the mesh delivery time (virtual under simulation).
	At time.Time
}

// readingJSON is Reading's wire/WAL form: the trace ID travels as the
// canonical 16-hex-digit string so non-Go backends never face a 64-bit
// JSON number.
type readingJSON struct {
	From     packet.Address `json:"from"`
	To       packet.Address `json:"to"`
	Trace    string         `json:"trace"`
	Payload  []byte         `json:"payload"`
	Reliable bool           `json:"reliable,omitempty"`
	At       time.Time      `json:"at"`
}

// MarshalJSON implements json.Marshaler.
func (r Reading) MarshalJSON() ([]byte, error) {
	return json.Marshal(readingJSON{
		From: r.From, To: r.To, Trace: r.Trace.String(),
		Payload: r.Payload, Reliable: r.Reliable, At: r.At,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Reading) UnmarshalJSON(b []byte) error {
	var j readingJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	id, err := trace.ParseTraceID(j.Trace)
	if err != nil {
		return err
	}
	*r = Reading{
		From: j.From, To: j.To, Trace: id,
		Payload: j.Payload, Reliable: j.Reliable, At: j.At,
	}
	return nil
}

// FromAppMessage converts a mesh delivery into a spoolable reading.
func FromAppMessage(m core.AppMessage) Reading {
	return Reading{
		From:     m.From,
		To:       m.To,
		Trace:    m.Trace,
		Payload:  append([]byte(nil), m.Payload...),
		Reliable: m.Reliable,
		At:       m.At,
	}
}

// Downlink is one backend→mesh command, returned in uplink responses.
type Downlink struct {
	// To is the destination mesh node.
	To packet.Address `json:"to"`
	// Payload is the command bytes.
	Payload []byte `json:"payload"`
	// Reliable selects the stream transport over a plain datagram.
	Reliable bool `json:"reliable,omitempty"`
	// Command, when set, is a typed control-plane command (see
	// internal/control); Payload is ignored and synthesized from it. Key
	// rotations (control.OpRekey) always ride the reliable transport —
	// a lost rotation partitions the mesh. Rotate the fleet
	// farthest-first and the gateway's own node last: receivers keep the
	// prior key live, so the mesh stays connected mid-rollout.
	Command *control.Command `json:"command,omitempty"`
	// Rekey carries a replacement network key as 32 hex digits — the
	// backend-facing shorthand for Command{Op: OpRekey, Key: ...} kept
	// for wire compatibility with PR 5 backends. When set, Payload and
	// Command are ignored.
	Rekey string `json:"rekey,omitempty"`
}

// uplinkRequest is the POST body.
type uplinkRequest struct {
	Gateway  packet.Address `json:"gateway"`
	Readings []Reading      `json:"readings"`
}

// uplinkResponse is the POST response body.
type uplinkResponse struct {
	Accepted  int        `json:"accepted"`
	Downlinks []Downlink `json:"downlinks,omitempty"`
}

// Config parameterizes a gateway.
type Config struct {
	// URL is the backend uplink endpoint (POST) — the single-shard
	// shorthand for URLs with one entry.
	URL string
	// URLs lists one uplink endpoint per backend shard; when set it
	// overrides URL and fixes the shard count at len(URLs). Readings are
	// partitioned across shards by consistent-hashed origin address, so
	// every gateway configured with the same shard COUNT routes a given
	// origin to the same shard index — the property cross-gateway dedup
	// rests on. Keep the count stable across restarts of one spool
	// directory: each shard owns its own WAL file.
	URLs []string
	// Addr is the gateway node's mesh address, stamped on every uplink
	// request. Attach helpers fill it from the node when zero.
	Addr packet.Address
	// SpoolPath is the WAL file backing the spool; empty means a
	// memory-only spool (no restart durability). With multiple shards,
	// shard i's WAL lives at SpoolPath+".s<i>".
	SpoolPath string
	// SpoolCapacity bounds the pending queue, split evenly across
	// shards. Zero means 1024.
	SpoolCapacity int
	// Drop selects the full-spool policy (default DropOldest).
	Drop DropPolicy
	// BatchSize is the most readings per POST; reaching it triggers an
	// immediate flush. Zero means 32.
	BatchSize int
	// FlushInterval is the time-triggered flush for partial batches.
	// Zero means 5 s.
	FlushInterval time.Duration
	// Pipeline is how many uplink batches may be in flight per backend
	// shard at once. Zero or one means stop-and-wait (the classic
	// behavior); higher values pipeline the uplink — the next batches
	// launch without waiting for the previous ack, multiplying
	// throughput on long round trips.
	Pipeline int
	// GroupCommit bounds how long an appended WAL record may wait in the
	// writer buffer before it is flushed to the OS. Zero flushes every
	// record immediately (classic behavior); a small interval (1–5 ms)
	// turns thousands of per-record write syscalls into a handful of
	// group commits under load, at the cost of a GroupCommit-sized
	// window a crash can lose — which a gateway fleet recovers through
	// handover re-delivery plus origin-sharded backend dedup.
	GroupCommit time.Duration
	// RetryBase is the first backoff after a failed POST; it doubles per
	// consecutive failure. Zero means 500 ms.
	RetryBase time.Duration
	// RetryMax caps the backoff. Zero means 1 min.
	RetryMax time.Duration
	// BreakerThreshold opens the circuit breaker after that many
	// consecutive failures. Zero means 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks attempts before
	// a half-open probe. Zero means 30 s.
	BreakerCooldown time.Duration
	// DedupHorizon bounds how many trace IDs each shard's spool
	// remembers for duplicate suppression. Zero means 8192.
	DedupHorizon int
	// Client performs the POSTs. Nil means an http.Client with a 10 s
	// timeout.
	Client *http.Client
	// Tracer, when set, receives gateway events. Nil disables tracing.
	Tracer *trace.Tracer
	// Spans, when set, records the uplink leg of each reading's span:
	// spool admission (enqueue), spool drops, and backend delivery on a
	// successful batch ack. Nil disables span capture.
	Spans *span.Recorder
	// Jitter returns a uniform float64 in [0,1) used to decorrelate
	// retry backoffs across a fleet. Nil means a fixed midpoint (no
	// jitter, fully deterministic); pass a seeded source for
	// reproducible jittered runs.
	Jitter func() float64
}

func (c Config) withDefaults() Config {
	if len(c.URLs) == 0 && c.URL != "" {
		c.URLs = []string{c.URL}
	}
	if c.SpoolCapacity <= 0 {
		c.SpoolCapacity = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 5 * time.Second
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 500 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Minute
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.DedupHorizon <= 0 {
		c.DedupHorizon = 8192
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.Jitter == nil {
		c.Jitter = func() float64 { return 0.5 }
	}
	return c
}

// dlKey identifies one command stream for idempotent downlink
// application: per destination node, per operation.
type dlKey struct {
	to packet.Address
	op control.Op
}

// Gateway is a store-and-forward bridge instance. Create with New, feed
// with Offer (usually via AttachSim/AttachHost), and drive either with
// Start (real time, own goroutine) or Poll (externally clocked — the
// deterministic simulator). It is safe for concurrent use.
//
// Internally the gateway is a set of independent shard lanes (see
// gwShard): Offer routes a reading to its origin's lane and touches only
// that lane's lock; Poll walks the lanes, launches every batch whose
// window has room, posts them concurrently, and applies the results in
// launch order — deterministic under the simulator, pipelined in the
// wall-clock sense either way.
type Gateway struct {
	cfg Config
	reg *metrics.Registry

	ring   *hashRing
	shards []*gwShard

	// mu guards the engine-level state below — never held across a
	// network call, never nested with a shard lock.
	mu      sync.Mutex
	sender  func(Downlink) error
	applied map[dlKey]uint32 // highest Seq injected per command stream

	closed atomic.Bool

	// kick wakes the real-time loop when a batch fills.
	kick     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// launch is one batch POST decided under a shard lock and executed
// outside it.
type launch struct {
	sh       *gwShard
	batch    []Reading
	halfOpen bool
	resp     *uplinkResponse
	rtt      time.Duration
	err      error
}

// New opens the spools (replaying any WALs) and returns a ready gateway.
// Nothing uplinks until Start or Poll drives it.
func New(cfg Config) (*Gateway, error) {
	if cfg.URL == "" && len(cfg.URLs) == 0 {
		return nil, fmt.Errorf("gateway: config needs a backend URL")
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:     cfg,
		reg:     metrics.NewRegistry(),
		applied: make(map[dlKey]uint32),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	g.preRegisterInstruments()
	n := len(cfg.URLs)
	g.ring = newHashRing(n)
	perShardCap := (cfg.SpoolCapacity + n - 1) / n
	replayed := 0
	for i, u := range cfg.URLs {
		sp, err := openSpool(walShardPath(cfg.SpoolPath, i, n), perShardCap, cfg.Drop, cfg.DedupHorizon, g.reg)
		if err != nil {
			for _, sh := range g.shards {
				sh.sp.close()
			}
			return nil, err
		}
		sp.groupCommit = cfg.GroupCommit
		g.shards = append(g.shards, newGwShard(i, u, sp, g.reg))
		replayed += sp.replayed
	}
	if replayed > 0 {
		g.reg.Counter("gw.spool.replayed").Add(uint64(replayed))
		g.emit("replayed %d pending readings from %s", replayed, cfg.SpoolPath)
	}
	g.reg.Gauge("gw.spool.depth").Set(float64(g.depth()))
	return g, nil
}

// preRegisterInstruments creates the gateway's instrument schema up
// front, mirroring core.Node: a scrape sees stable names from boot.
func (g *Gateway) preRegisterInstruments() {
	for _, c := range []string{
		"gw.offered", "gw.accepted", "gw.drop.duplicate", "gw.drop.oldest",
		"gw.drop.newest", "gw.wal.errors",
		"gw.uplink.batches", "gw.uplink.readings", "gw.uplink.failures",
		"gw.breaker.opened", "gw.spool.replayed", "gw.spool.compactions",
		"gw.downlink.received", "gw.downlink.injected", "gw.downlink.errors",
		"gw.downlink.stale", "ingest.wal.commits",
	} {
		g.reg.Counter(c)
	}
	g.reg.Gauge("gw.spool.depth")
	g.reg.Gauge("gw.breaker.open")
	g.reg.Gauge("gw.backoff_ms")
	g.reg.Histogram("gw.uplink.batch_size")
	g.reg.Histogram("gw.uplink.rtt_ms")
	g.reg.Histogram("gw.uplink.age_ms")
	g.reg.Histogram("gw.wal.compact_ns")
	g.reg.Histogram("ingest.wal.commit_records")
}

// emit records a gateway trace event (no-op without a tracer).
func (g *Gateway) emit(format string, args ...any) {
	g.cfg.Tracer.Emit(time.Now(), fmt.Sprintf("gw.%v", g.cfg.Addr), trace.KindGateway, format, args...)
}

// emitPacket records a gateway trace event tied to one reading.
func (g *Gateway) emitPacket(id trace.TraceID, format string, args ...any) {
	g.cfg.Tracer.EmitPacket(time.Now(), fmt.Sprintf("gw.%v", g.cfg.Addr), trace.KindGateway, id, format, args...)
}

// recordSpan appends one uplink-leg span segment for a reading (no-op
// without a recorder). The node label matches the gateway's trace
// label so span trees and JSONL events line up.
func (g *Gateway) recordSpan(at time.Time, id trace.TraceID, seg span.Seg, dur time.Duration, detail string) {
	if g.cfg.Spans == nil {
		return
	}
	g.cfg.Spans.Record(at, fmt.Sprintf("gw.%v", g.cfg.Addr), id, seg, dur, detail)
}

// Metrics exposes the gateway's instrument registry.
func (g *Gateway) Metrics() *metrics.Registry { return g.reg }

// Shards returns the number of backend shards.
func (g *Gateway) Shards() int { return len(g.shards) }

// ShardOf returns the backend shard index owning an origin address — the
// same mapping every gateway with this shard count computes.
func (g *Gateway) ShardOf(origin packet.Address) int { return g.ring.shard(origin) }

// Addr returns the gateway's mesh address.
func (g *Gateway) Addr() packet.Address {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg.Addr
}

// setAddr fills the mesh address when the config left it zero (used by
// the attach helpers).
func (g *Gateway) setAddr(a packet.Address) {
	g.mu.Lock()
	if g.cfg.Addr == 0 {
		g.cfg.Addr = a
	}
	g.mu.Unlock()
}

// SetSender installs the downlink injector — the function that puts a
// backend command onto the mesh. Attach helpers wire it to the node's
// Send/SendReliable.
func (g *Gateway) SetSender(fn func(Downlink) error) {
	g.mu.Lock()
	g.sender = fn
	g.mu.Unlock()
}

// depth sums pending readings across shards.
func (g *Gateway) depth() int {
	total := 0
	for _, sh := range g.shards {
		sh.mu.Lock()
		total += sh.sp.len()
		sh.mu.Unlock()
	}
	return total
}

// Pending returns the number of spooled readings awaiting uplink.
func (g *Gateway) Pending() int { return g.depth() }

// BreakerOpen reports whether any shard's circuit breaker is open.
func (g *Gateway) BreakerOpen() bool {
	for _, sh := range g.shards {
		sh.mu.Lock()
		open := sh.breakerOpen
		sh.mu.Unlock()
		if open {
			return true
		}
	}
	return false
}

// Offer admits one reading into its origin's shard. It returns true when
// the reading was admitted, false when it was recognized as a duplicate
// or rejected by the DropNewest policy. Offer never blocks on the
// network, and offers for different origins contend only on their own
// shard's lock.
func (g *Gateway) Offer(r Reading) bool {
	if control.IsReport(r.Payload) {
		// Control-plane feedback reaching the spool means no reconciler
		// observer is chained in front of the gateway (or the controller
		// runs elsewhere); count it so the miswiring is visible, then
		// spool it like any reading — the backend sees the raw report.
		g.reg.Counter("gw.reports.observed").Inc()
	}
	if g.closed.Load() {
		return false
	}
	sh := g.shards[g.ring.shard(r.From)]
	g.reg.Counter("gw.offered").Inc()
	sh.mu.Lock()
	res, evicted, err := sh.sp.add(r)
	depth := sh.sp.len()
	sh.mu.Unlock()

	if err != nil {
		// The reading is queued in memory even when the WAL write
		// failed; durability degrades, delivery does not.
		g.reg.Counter("gw.wal.errors").Inc()
		g.emit("WAL append failed: %v", err)
	}
	sh.gDepth.Set(float64(depth))
	g.reg.Gauge("gw.spool.depth").Set(float64(g.depth()))
	switch res {
	case addDuplicate:
		g.reg.Counter("gw.drop.duplicate").Inc()
		g.recordSpan(time.Now(), r.Trace, span.SegDrop, 0, "gw_duplicate")
		g.emitPacket(r.Trace, "duplicate reading from %v suppressed", r.From)
		return false
	case addRejected:
		g.reg.Counter("gw.drop.newest").Inc()
		g.recordSpan(time.Now(), r.Trace, span.SegDrop, 0, "gw_spool_full")
		g.emitPacket(r.Trace, "spool full (%d): newest reading from %v dropped", g.cfg.SpoolCapacity, r.From)
		return false
	}
	if evicted != nil {
		g.reg.Counter("gw.drop.oldest").Inc()
		g.recordSpan(time.Now(), evicted.Trace, span.SegDrop, 0, "gw_evicted")
		g.emitPacket(evicted.Trace, "spool full (%d): oldest reading from %v evicted", g.cfg.SpoolCapacity, evicted.From)
	}
	g.reg.Counter("gw.accepted").Inc()
	g.recordSpan(time.Now(), r.Trace, span.SegEnqueue, 0, "gw_spool")
	g.emitPacket(r.Trace, "spooled %d bytes from %v (depth %d)", len(r.Payload), r.From, depth)
	if depth >= g.cfg.BatchSize {
		select {
		case g.kick <- struct{}{}:
		default:
		}
	}
	return true
}

// OfferMessage converts and admits a mesh delivery.
func (g *Gateway) OfferMessage(m core.AppMessage) bool { return g.Offer(FromAppMessage(m)) }

// Poll advances the uplinker at the given time: it performs every flush
// that is due (full batches drain eagerly, up to Pipeline batches in
// flight per shard; a partial batch flushes once FlushInterval has
// passed; per-shard backoff and breaker windows are respected; dirty WAL
// buffers group-commit when their interval expires) and returns how long
// until it next wants to run. Poll is the externally-clocked drive used
// by the simulator adapter; the real-time loop calls it with time.Now().
//
// Each round launches every due batch across all shards, posts them
// concurrently, then applies the results in launch order — so a
// simulation's metrics and state transitions stay deterministic while
// the POSTs themselves overlap in wall-clock time.
func (g *Gateway) Poll(now time.Time) time.Duration {
	for {
		launches, wait := g.collect(now)
		if len(launches) == 0 {
			return wait
		}
		g.execute(launches)
		for _, l := range launches {
			g.apply(l, now)
		}
	}
}

// collect walks the shards under their locks, gathering every batch that
// may launch now and the earliest next-wake deadline otherwise. It also
// runs due WAL group commits — the spool flush clock rides the same
// drive as the uplinker.
func (g *Gateway) collect(now time.Time) ([]*launch, time.Duration) {
	if g.closed.Load() {
		return nil, time.Hour
	}
	minWait := time.Hour
	var launches []*launch
	for _, sh := range g.shards {
		sh.mu.Lock()
		for {
			wait, attempt := g.decideShard(sh, now)
			if !attempt {
				if wait < minWait {
					minWait = wait
				}
				break
			}
			batch := sh.sp.peekExcluding(g.cfg.BatchSize, sh.inflight)
			if len(batch) == 0 {
				break
			}
			for _, r := range batch {
				sh.inflight[r.Trace] = struct{}{}
			}
			sh.inflightBatches++
			sh.gInflight.Set(float64(sh.inflightBatches))
			launches = append(launches, &launch{sh: sh, batch: batch, halfOpen: sh.breakerOpen})
			if sh.breakerOpen {
				// Half-open: exactly one probe batch.
				break
			}
		}
		if err := sh.sp.commitIfDue(now); err != nil {
			g.reg.Counter("gw.wal.errors").Inc()
		}
		if dl, ok := sh.sp.commitDeadline(); ok {
			if w := dl.Sub(now); w < minWait {
				minWait = w
			}
		}
		sh.mu.Unlock()
	}
	if minWait < 0 {
		minWait = 0
	}
	return launches, minWait
}

// decideShard reports whether a flush attempt is due on one shard at
// now, or how long to wait otherwise. Caller holds sh.mu.
func (g *Gateway) decideShard(sh *gwShard, now time.Time) (time.Duration, bool) {
	if sh.lastFlush.IsZero() {
		sh.lastFlush = now
	}
	if sh.breakerOpen {
		if now.Before(sh.breakerTil) {
			return sh.breakerTil.Sub(now), false
		}
		if sh.inflightBatches > 0 {
			// The half-open probe is already out; wait for its verdict.
			return g.cfg.FlushInterval, false
		}
		// Half-open: one probe attempt passes straight through — the
		// breaker supersedes the per-attempt backoff gate.
	} else if now.Before(sh.nextRetryAt) {
		return sh.nextRetryAt.Sub(now), false
	}
	if sh.inflightBatches >= g.cfg.Pipeline {
		// Window full; an ack will reopen it.
		return g.cfg.FlushInterval, false
	}
	avail := sh.sp.len() - len(sh.inflight)
	if avail <= 0 {
		if sh.sp.len() == 0 {
			sh.lastFlush = now
		}
		return g.cfg.FlushInterval, false
	}
	if avail >= g.cfg.BatchSize || now.Sub(sh.lastFlush) >= g.cfg.FlushInterval {
		return 0, true
	}
	return sh.lastFlush.Add(g.cfg.FlushInterval).Sub(now), false
}

// execute performs the launches' POSTs — inline when there is only one
// (the stop-and-wait fast path keeps its old single-threaded profile),
// concurrently otherwise. All posts complete before execute returns;
// results are applied by the caller in launch order.
func (g *Gateway) execute(launches []*launch) {
	if len(launches) == 1 {
		l := launches[0]
		l.resp, l.rtt, l.err = g.post(l.sh.url, uplinkRequest{Gateway: g.Addr(), Readings: l.batch})
		return
	}
	addr := g.Addr()
	var wg sync.WaitGroup
	wg.Add(len(launches))
	for _, l := range launches {
		go func(l *launch) {
			defer wg.Done()
			l.resp, l.rtt, l.err = g.post(l.sh.url, uplinkRequest{Gateway: addr, Readings: l.batch})
		}(l)
	}
	wg.Wait()
}

// apply folds one completed launch back into its shard's state: failure
// advances backoff and may open the breaker; success acks the WAL,
// closes a half-open breaker, and injects any downlinks.
func (g *Gateway) apply(l *launch, now time.Time) {
	sh := l.sh
	sh.mu.Lock()
	for _, r := range l.batch {
		delete(sh.inflight, r.Trace)
	}
	sh.inflightBatches--
	sh.gInflight.Set(float64(sh.inflightBatches))

	if l.err != nil {
		sh.consecFails++
		g.reg.Counter("gw.uplink.failures").Inc()
		backoff := g.backoff(sh.consecFails)
		sh.nextRetryAt = now.Add(backoff)
		g.reg.Gauge("gw.backoff_ms").Set(float64(backoff) / float64(time.Millisecond))
		opened := false
		if g.cfg.BreakerThreshold > 0 && sh.consecFails >= g.cfg.BreakerThreshold {
			sh.breakerOpen = true
			sh.breakerTil = now.Add(g.cfg.BreakerCooldown)
			g.reg.Gauge("gw.breaker.open").Set(1)
			sh.gBreaker.Set(1)
			opened = true
		}
		fails := sh.consecFails
		sh.mu.Unlock()
		if opened {
			g.reg.Counter("gw.breaker.opened").Inc()
			g.emit("circuit breaker OPEN after %d consecutive failures (cooldown %v): %v",
				fails, g.cfg.BreakerCooldown, l.err)
		} else {
			g.emit("uplink batch of %d failed (attempt %d, retry in %v): %v",
				len(l.batch), fails, g.backoff(fails), l.err)
		}
		return
	}

	// Success: acknowledge the batch in the WAL, reset failure state.
	if wErr := sh.sp.ackAt(l.batch, now); wErr != nil {
		g.reg.Counter("gw.wal.errors").Inc()
		g.emit("WAL ack failed: %v", wErr)
	}
	if l.halfOpen || sh.breakerOpen {
		sh.breakerOpen = false
		g.reg.Gauge("gw.breaker.open").Set(0)
		sh.gBreaker.Set(0)
		g.emit("circuit breaker CLOSED after successful probe")
	}
	sh.consecFails = 0
	sh.nextRetryAt = time.Time{}
	sh.lastFlush = now
	depth := sh.sp.len()
	compactDue := sh.sp.compactDue()
	sh.mu.Unlock()

	sh.gDepth.Set(float64(depth))
	sh.cUplinked.Add(uint64(len(l.batch)))
	g.reg.Gauge("gw.backoff_ms").Set(0)
	g.reg.Gauge("gw.spool.depth").Set(float64(g.depth()))
	g.reg.Counter("gw.uplink.batches").Inc()
	g.reg.Counter("gw.uplink.readings").Add(uint64(len(l.batch)))
	g.reg.Histogram("gw.uplink.batch_size").Observe(float64(len(l.batch)))
	g.reg.Histogram("gw.uplink.rtt_ms").ObserveDuration(l.rtt)
	for _, r := range l.batch {
		g.reg.Histogram("gw.uplink.age_ms").ObserveDuration(now.Sub(r.At))
		// Queue-wait is the reading's spool residency; the batch POST's
		// round trip stands in for the uplink "airtime".
		g.recordSpan(now, r.Trace, span.SegQueueWait, now.Sub(r.At), "gw_spool")
		g.recordSpan(now, r.Trace, span.SegDeliver, l.rtt, "gw_uplink")
	}
	g.emit("uplinked batch of %d (accepted %d, depth %d)", len(l.batch), l.resp.Accepted, depth)
	if compactDue {
		g.compactShard(sh)
	}
	g.injectDownlinks(l.resp.Downlinks)
}

// compactShard rewrites one shard's WAL off the hot path: the pending
// snapshot is taken under the lock, the O(capacity) bulk write runs
// unlocked (admissions and other shards proceed), and the atomic rename
// happens back under the lock. The stall a compaction does cost is
// observed into gw.wal.compact_ns.
func (g *Gateway) compactShard(sh *gwShard) {
	start := time.Now()
	sh.mu.Lock()
	snap, ok := sh.sp.beginCompact()
	sh.mu.Unlock()
	if !ok {
		return
	}
	st := sh.sp.writeCompactTmp(snap)
	sh.mu.Lock()
	err := sh.sp.finishCompact(st)
	sh.mu.Unlock()
	g.reg.Histogram("gw.wal.compact_ns").Observe(float64(time.Since(start)))
	if err != nil {
		g.reg.Counter("gw.wal.errors").Inc()
		g.emit("WAL compaction failed: %v", err)
	}
}

// post performs the HTTP round trip against one shard's endpoint.
func (g *Gateway) post(url string, req uplinkRequest) (*uplinkResponse, time.Duration, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, fmt.Errorf("gateway: encode batch: %w", err)
	}
	start := time.Now()
	hr, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("gateway: %w", err)
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := g.cfg.Client.Do(hr)
	if err != nil {
		return nil, time.Since(start), fmt.Errorf("gateway: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	rtt := time.Since(start)
	if err != nil {
		return nil, rtt, fmt.Errorf("gateway: read response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, rtt, fmt.Errorf("gateway: backend status %d", resp.StatusCode)
	}
	var ur uplinkResponse
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &ur); err != nil {
			return nil, rtt, fmt.Errorf("gateway: decode response: %w", err)
		}
	}
	return &ur, rtt, nil
}

// injectDownlinks pushes backend commands into the mesh via the sender.
func (g *Gateway) injectDownlinks(cmds []Downlink) {
	if len(cmds) == 0 {
		return
	}
	g.reg.Counter("gw.downlink.received").Add(uint64(len(cmds)))
	for _, d := range cmds {
		g.Inject(d) // errors are counted and emitted inside
	}
}

// Inject pushes one downlink command into the mesh immediately — the
// path both backend-returned downlinks and a locally attached
// control-plane reconciler (internal/control) share.
//
// Versioned commands (Command.Seq set) are applied idempotently per
// (destination, op) stream: a command older than one already injected is
// skipped, so out-of-order batch acks from the pipelined uplink cannot
// regress controller state. Retries of the CURRENT version pass through
// — the controller keeps Seq stable across retries, and suppressing them
// would break its delivery loop.
func (g *Gateway) Inject(d Downlink) error {
	g.mu.Lock()
	sender := g.sender
	g.mu.Unlock()
	if sender == nil {
		g.reg.Counter("gw.downlink.errors").Inc()
		g.emit("downlink to %v dropped: no mesh sender attached", d.To)
		return fmt.Errorf("gateway: no mesh sender attached")
	}
	if d.Rekey != "" {
		// Backend shorthand: expand into the typed command.
		k, err := meshsec.ParseKey(d.Rekey)
		if err != nil {
			g.reg.Counter("gw.downlink.errors").Inc()
			g.emit("rekey downlink to %v rejected: %v", d.To, err)
			return err
		}
		d.Command = &control.Command{Op: control.OpRekey, Key: k}
	}
	if d.Command != nil && d.Command.Seq != 0 {
		key := dlKey{to: d.To, op: d.Command.Op}
		g.mu.Lock()
		last, seen := g.applied[key]
		stale := seen && d.Command.Seq < last
		g.mu.Unlock()
		if stale {
			g.reg.Counter("gw.downlink.stale").Inc()
			g.emit("stale %s downlink to %v skipped (seq %d < %d)",
				d.Command.Op, d.To, d.Command.Seq, last)
			return nil
		}
	}
	if d.Command != nil {
		d.Payload = control.MarshalCommand(*d.Command)
		if d.Command.Op == control.OpRekey {
			// A lost key rotation partitions the mesh: always reliable.
			d.Reliable = true
		}
		g.reg.Counter("gw.downlink.commands").Inc()
	}
	if err := sender(d); err != nil {
		g.reg.Counter("gw.downlink.errors").Inc()
		g.emit("downlink to %v failed: %v", d.To, err)
		return err
	}
	if d.Command != nil && d.Command.Seq != 0 {
		key := dlKey{to: d.To, op: d.Command.Op}
		g.mu.Lock()
		if d.Command.Seq > g.applied[key] {
			g.applied[key] = d.Command.Seq
		}
		g.mu.Unlock()
	}
	g.reg.Counter("gw.downlink.injected").Inc()
	if d.Command != nil {
		g.emit("control downlink %s injected toward %v (reliable=%v)", d.Command.Op, d.To, d.Reliable)
	} else {
		g.emit("downlink %d bytes injected toward %v (reliable=%v)", len(d.Payload), d.To, d.Reliable)
	}
	return nil
}

// backoff computes the exponential, jittered delay for the nth
// consecutive failure (n >= 1).
func (g *Gateway) backoff(n int) time.Duration {
	d := g.cfg.RetryBase
	for i := 1; i < n && d < g.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > g.cfg.RetryMax {
		d = g.cfg.RetryMax
	}
	// Decorrelate retries across a fleet: scale into [0.5, 1.0] of the
	// computed delay.
	return time.Duration(float64(d) * (0.5 + 0.5*g.cfg.Jitter()))
}

// Start launches the real-time drain loop (livenet/udpnet hosts and
// cmd/meshgw). Pair with Close.
func (g *Gateway) Start() {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		for {
			d := g.Poll(time.Now())
			timer := time.NewTimer(d)
			select {
			case <-g.stop:
				timer.Stop()
				return
			case <-g.kick:
				timer.Stop()
			case <-timer.C:
			}
		}
	}()
}

// Close stops the loop, attempts one final best-effort flush of every
// shard's full or partial batches, and closes the spool WALs. Readings
// still pending remain in the WALs for the next process to replay.
func (g *Gateway) Close() error {
	if g.closed.Load() {
		return nil
	}
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()

	// Final flush outside the loop: drain what the backend will take,
	// but do not retry — the WAL keeps the rest. Each shard drains
	// independently; a backed-off or open-breaker shard is left alone.
	now := time.Now()
	for _, sh := range g.shards {
		sh.mu.Lock()
		blocked := sh.breakerOpen && now.Before(sh.breakerTil) || now.Before(sh.nextRetryAt)
		sh.mu.Unlock()
		if blocked {
			continue
		}
		for {
			sh.mu.Lock()
			batch := sh.sp.peekExcluding(g.cfg.BatchSize, sh.inflight)
			if len(batch) == 0 {
				sh.mu.Unlock()
				break
			}
			for _, r := range batch {
				sh.inflight[r.Trace] = struct{}{}
			}
			sh.inflightBatches++
			halfOpen := sh.breakerOpen
			sh.mu.Unlock()
			l := &launch{sh: sh, batch: batch, halfOpen: halfOpen}
			l.resp, l.rtt, l.err = g.post(sh.url, uplinkRequest{Gateway: g.Addr(), Readings: batch})
			g.apply(l, now)
			if l.err != nil {
				break
			}
		}
	}

	g.closed.Store(true)
	var firstErr error
	for _, sh := range g.shards {
		sh.mu.Lock()
		if err := sh.sp.close(); err != nil && firstErr == nil {
			firstErr = err
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// crash abandons the gateway without the final drain or WAL flush —
// test and load-harness support for modeling a process crash: buffered
// group-commit records are lost, pending readings stay only as far as
// the WAL's last flush, exactly as kill -9 would leave them. A successor
// built on the same SpoolPath replays what was durable.
func (g *Gateway) crash() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
	g.closed.Store(true)
	for _, sh := range g.shards {
		sh.mu.Lock()
		sh.sp.crash()
		sh.mu.Unlock()
	}
}
