package gateway

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/trace"
)

// newTestGateway builds a gateway against an embedded backend with
// deterministic timing; mut can adjust the Config before construction.
func newTestGateway(t *testing.T, b *Backend, mut func(*Config)) (*Gateway, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(b)
	t.Cleanup(srv.Close)
	cfg := Config{
		URL:              srv.URL,
		Addr:             0x0001,
		BatchSize:        4,
		FlushInterval:    10 * time.Second,
		RetryBase:        time.Second,
		RetryMax:         8 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		Jitter:           func() float64 { return 1 }, // exact doubling
	}
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g, srv
}

func TestReadingJSONRoundTrip(t *testing.T) {
	r := testReading(7)
	r.Reliable = true
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	// The trace ID must travel as the canonical hex string.
	var raw map[string]any
	json.Unmarshal(b, &raw)
	if raw["trace"] != r.Trace.String() {
		t.Fatalf("trace serialized as %v, want %q", raw["trace"], r.Trace.String())
	}
	var back Reading
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != r.Trace || back.From != r.From || !back.At.Equal(r.At) ||
		string(back.Payload) != string(r.Payload) || !back.Reliable {
		t.Fatalf("round trip mutated the reading: %+v vs %+v", back, r)
	}
}

func TestGatewayBatchSizeTrigger(t *testing.T) {
	b := NewBackend()
	g, _ := newTestGateway(t, b, nil)
	now := time.Unix(0, 0)

	// Three readings: under the batch size, nothing uplinks before the
	// flush interval.
	for i := 0; i < 3; i++ {
		if !g.Offer(testReading(i)) {
			t.Fatalf("offer %d rejected", i)
		}
	}
	g.Poll(now)
	if b.Distinct() != 0 {
		t.Fatal("partial batch flushed before the interval")
	}
	// The fourth reading completes a batch: the next poll drains it
	// immediately, no interval wait.
	g.Offer(testReading(3))
	g.Poll(now.Add(time.Second))
	if b.Distinct() != 4 || b.Batches() != 1 {
		t.Fatalf("full batch: distinct=%d batches=%d", b.Distinct(), b.Batches())
	}
}

func TestGatewayTimeTrigger(t *testing.T) {
	b := NewBackend()
	g, _ := newTestGateway(t, b, nil)
	now := time.Unix(0, 0)

	g.Poll(now) // anchor lastFlush
	g.Offer(testReading(0))
	if d := g.Poll(now.Add(time.Second)); d <= 0 || d > 10*time.Second {
		t.Fatalf("poll wait %v, want remaining interval", d)
	}
	if b.Distinct() != 0 {
		t.Fatal("flushed early")
	}
	g.Poll(now.Add(11 * time.Second))
	if b.Distinct() != 1 {
		t.Fatalf("time-triggered flush missing: distinct=%d", b.Distinct())
	}
	if g.Pending() != 0 {
		t.Fatalf("pending %d after flush", g.Pending())
	}
}

func TestGatewayBackoffAndCircuitBreaker(t *testing.T) {
	b := NewBackend()
	b.SetFailing(true)
	g, _ := newTestGateway(t, b, nil)
	reg := g.Metrics()
	now := time.Unix(0, 0)

	for i := 0; i < 4; i++ {
		g.Offer(testReading(i))
	}

	// Failure 1: backoff = RetryBase (jitter pinned to 1.0).
	if d := g.Poll(now); d != time.Second {
		t.Fatalf("backoff after failure 1 = %v, want 1s", d)
	}
	// Poll again inside the backoff window: no extra attempt.
	g.Poll(now.Add(500 * time.Millisecond))
	if got := reg.Counter("gw.uplink.failures").Value(); got != 1 {
		t.Fatalf("failures=%d, want 1 (backoff not respected)", got)
	}
	// Failure 2 doubles the backoff.
	now = now.Add(time.Second)
	if d := g.Poll(now); d != 2*time.Second {
		t.Fatalf("backoff after failure 2 = %v, want 2s", d)
	}
	// Failure 3 crosses the threshold: breaker opens for the cooldown.
	now = now.Add(2 * time.Second)
	if d := g.Poll(now); d != time.Minute {
		t.Fatalf("after failure 3 want breaker cooldown 1m, got %v", d)
	}
	if !g.BreakerOpen() {
		t.Fatal("breaker not open after threshold failures")
	}
	if reg.Counter("gw.breaker.opened").Value() != 1 || reg.Gauge("gw.breaker.open").Value() != 1 {
		t.Fatal("breaker metrics not recorded")
	}
	// While open, attempts are suppressed entirely.
	g.Poll(now.Add(30 * time.Second))
	if got := reg.Counter("gw.uplink.failures").Value(); got != 3 {
		t.Fatalf("failures=%d while breaker open, want 3", got)
	}

	// Backend recovers; the half-open probe closes the breaker and the
	// spool drains with zero loss and no duplicates.
	b.SetFailing(false)
	now = now.Add(time.Minute)
	g.Poll(now)
	if g.BreakerOpen() {
		t.Fatal("breaker still open after successful probe")
	}
	if reg.Gauge("gw.breaker.open").Value() != 0 {
		t.Fatal("breaker gauge still 1 after close")
	}
	if b.Distinct() != 4 || b.Duplicates() != 0 || g.Pending() != 0 {
		t.Fatalf("post-recovery: distinct=%d dupes=%d pending=%d",
			b.Distinct(), b.Duplicates(), g.Pending())
	}
}

func TestGatewayReopensBreakerOnFailedProbe(t *testing.T) {
	b := NewBackend()
	b.SetFailing(true)
	g, _ := newTestGateway(t, b, nil)
	now := time.Unix(0, 0)
	// A full batch so the very first poll attempts an uplink.
	for i := 0; i < 4; i++ {
		g.Offer(testReading(i))
	}

	for i := 0; i < 3; i++ {
		d := g.Poll(now)
		now = now.Add(d)
	}
	if !g.BreakerOpen() {
		t.Fatal("breaker should be open")
	}
	// Probe fails: the breaker re-arms for another cooldown.
	g.Poll(now)
	if !g.BreakerOpen() {
		t.Fatal("breaker closed on a failed probe")
	}
	if got := g.Metrics().Counter("gw.uplink.failures").Value(); got != 4 {
		t.Fatalf("failures=%d, want 4 (exactly one probe)", got)
	}
}

func TestGatewayDedupAcrossOffers(t *testing.T) {
	b := NewBackend()
	g, _ := newTestGateway(t, b, nil)
	r := testReading(0)
	if !g.Offer(r) {
		t.Fatal("first offer rejected")
	}
	if g.Offer(r) {
		t.Fatal("duplicate offer accepted")
	}
	if got := g.Metrics().Counter("gw.drop.duplicate").Value(); got != 1 {
		t.Fatalf("gw.drop.duplicate=%d, want 1", got)
	}
	g.Poll(time.Unix(100, 0))
	// Even after upload, a mesh re-delivery stays suppressed.
	if g.Offer(r) {
		t.Fatal("post-upload duplicate accepted")
	}
}

func TestGatewayDropOldestUnderOutage(t *testing.T) {
	b := NewBackend()
	b.SetFailing(true)
	g, _ := newTestGateway(t, b, func(c *Config) { c.SpoolCapacity = 3 })
	now := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		g.Offer(testReading(i))
		g.Poll(now)
	}
	if g.Pending() != 3 {
		t.Fatalf("pending=%d, want capacity 3", g.Pending())
	}
	if got := g.Metrics().Counter("gw.drop.oldest").Value(); got != 2 {
		t.Fatalf("gw.drop.oldest=%d, want 2", got)
	}
	// Recovery delivers exactly the surviving window: readings 2..4.
	b.SetFailing(false)
	g.Poll(now.Add(time.Hour))
	got := b.Readings()
	if len(got) != 3 || got[0].Trace != testReading(2).Trace {
		t.Fatalf("survivors wrong: %v", got)
	}
}

func TestGatewayDownlinkInjection(t *testing.T) {
	b := NewBackend()
	g, _ := newTestGateway(t, b, nil)
	var injected []Downlink
	g.SetSender(func(d Downlink) error {
		injected = append(injected, d)
		return nil
	})
	b.PushDownlink(Downlink{To: 0x0007, Payload: []byte("valve off"), Reliable: true})

	now := time.Unix(0, 0)
	g.Poll(now) // anchor lastFlush
	g.Offer(testReading(0))
	g.Poll(now.Add(time.Hour))
	if len(injected) != 1 || injected[0].To != packet.Address(0x0007) || !injected[0].Reliable {
		t.Fatalf("downlink not injected: %v", injected)
	}
	reg := g.Metrics()
	if reg.Counter("gw.downlink.received").Value() != 1 || reg.Counter("gw.downlink.injected").Value() != 1 {
		t.Fatal("downlink metrics missing")
	}
}

// TestGatewayRestartReplay is the durability acceptance test: readings
// spooled during a backend outage survive a gateway process restart and
// upload exactly once afterward.
func TestGatewayRestartReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "uplink.wal")
	b := NewBackend()
	b.SetFailing(true)
	srv := httptest.NewServer(b)
	defer srv.Close()

	cfg := Config{
		URL:           srv.URL,
		Addr:          0x0001,
		SpoolPath:     path,
		BatchSize:     8,
		FlushInterval: 20 * time.Millisecond,
		RetryBase:     10 * time.Millisecond,
		RetryMax:      50 * time.Millisecond,
	}
	g1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g1.Start()
	var want []trace.TraceID
	for i := 0; i < 10; i++ {
		r := testReading(i)
		want = append(want, r.Trace)
		if !g1.Offer(r) {
			t.Fatalf("offer %d rejected", i)
		}
	}
	// Give the loop a few failed attempts, then stop the process.
	time.Sleep(100 * time.Millisecond)
	if err := g1.Close(); err != nil {
		t.Fatal(err)
	}
	if b.Distinct() != 0 {
		t.Fatal("nothing should have reached the failing backend")
	}

	// "New process": same WAL, healthy backend.
	b.SetFailing(false)
	g2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if g2.Pending() != len(want) {
		t.Fatalf("replayed %d pending, want %d", g2.Pending(), len(want))
	}
	if g2.Metrics().Counter("gw.spool.replayed").Value() != uint64(len(want)) {
		t.Fatal("gw.spool.replayed not recorded")
	}
	g2.Start()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && b.Distinct() < len(want) {
		time.Sleep(10 * time.Millisecond)
	}
	if b.Distinct() != len(want) || b.Duplicates() != 0 {
		t.Fatalf("after restart: distinct=%d dupes=%d, want %d/0",
			b.Distinct(), b.Duplicates(), len(want))
	}
	got := b.Readings()
	for i, id := range want {
		if got[i].Trace != id {
			t.Fatalf("reading %d out of order or lost: %v != %v", i, got[i].Trace, id)
		}
	}
}
