package gateway

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/livenet"
	"repro/internal/routing"
)

// TestAttachHostLivenet wires the gateway onto the goroutine-per-node
// live runtime: readings from a peer reach the backend through the
// sink's gateway, and a queued downlink command crosses back.
func TestAttachHostLivenet(t *testing.T) {
	b := NewBackend()
	srv := httptest.NewServer(b)
	defer srv.Close()

	net, err := livenet.New(livenet.Config{
		TimeScale: 200,
		Seed:      1,
		Node: core.Config{
			HelloPeriod:    2 * time.Second,
			DutyCycleLimit: 1,
			Routing:        routing.Config{EntryTTL: 20 * time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	sink, err := net.AddNode(0x0001)
	if err != nil {
		t.Fatal(err)
	}
	sensor, err := net.AddNode(0x0002)
	if err != nil {
		t.Fatal(err)
	}

	g, err := New(Config{
		URL:           srv.URL,
		BatchSize:     4,
		FlushInterval: 100 * time.Millisecond,
		RetryBase:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	AttachHost(sink, g)
	g.Start()
	defer g.Close()

	waitFor := func(d time.Duration, cond func() bool) bool {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(10 * time.Millisecond)
		}
		return cond()
	}

	if !waitFor(10*time.Second, func() bool { return sensor.HasRoute(0x0001) }) {
		t.Fatal("live mesh did not converge")
	}
	b.PushDownlink(Downlink{To: sensor.Addr(), Payload: []byte("ack")})
	for i := 0; i < 3; i++ {
		if err := sensor.Send(0x0001, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(10*time.Second, func() bool { return b.Distinct() == 3 }) {
		t.Fatalf("backend has %d readings, want 3", b.Distinct())
	}
	if b.Duplicates() != 0 {
		t.Fatalf("%d duplicate uploads", b.Duplicates())
	}
	if !waitFor(10*time.Second, func() bool {
		for _, m := range sensor.Messages() {
			if string(m.Payload) == "ack" {
				return true
			}
		}
		return false
	}) {
		t.Fatal("downlink never reached the sensor")
	}
}
