package gateway

// load.go — the ingest load harness behind cmd/meshload and experiment
// E17. It stands up a real sharded HTTP backend on a loopback listener,
// runs a fleet of gateways against it at full speed, and reports
// wall-clock ingest throughput together with the exactly-once ledger
// (distinct accepted, redundant uploads suppressed, double-accepted
// violations, losses). Everything runs in-process over real sockets, so
// the numbers include JSON encoding, HTTP round trips, and WAL fsync
// behavior — the layers the batching/pipelining knobs exist to amortize.

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"repro/internal/packet"
	"repro/internal/trace"
)

// LoadConfig parameterizes one ingest load run.
type LoadConfig struct {
	// Readings is the total number of distinct readings offered. Zero
	// means 10000.
	Readings int
	// Origins is how many distinct origin addresses the readings spread
	// over (the shard key population). Zero means 64.
	Origins int
	// Gateways is the fleet size; readings are assigned round-robin.
	// Zero means 1.
	Gateways int
	// Shards is the backend shard count. Zero means 1.
	Shards int
	// BatchSize, Pipeline, GroupCommit and FlushInterval are handed to
	// every gateway (see Config). Zero BatchSize means 64; zero
	// FlushInterval means 200 ms.
	BatchSize     int
	Pipeline      int
	GroupCommit   time.Duration
	FlushInterval time.Duration
	// SpoolDir, when set, backs each gateway with a WAL file inside it
	// (gw<i>.wal); empty runs memory-only spools.
	SpoolDir string
	// Overlap is the fraction of readings offered to a second gateway as
	// well — the duplicate delivery a mesh handover produces. The backend
	// must suppress every one.
	Overlap float64
	// CrashRestart kills gateway 0 mid-run (no final flush, buffered
	// group-commit window lost), re-delivers its readings through the
	// next gateway — the fleet handover — and then restarts it from its
	// WAL. Requires Gateways >= 2 and SpoolDir.
	CrashRestart bool
	// BackendLatency delays every backend response by this much — the
	// WAN round trip a real uplink pays. Zero replies at loopback speed,
	// which makes every configuration CPU-bound and hides the pipelining
	// win; the E17 matrix uses a realistic 10 ms.
	BackendLatency time.Duration
	// Seed drives reading assignment; runs are reproducible per seed up
	// to wall-clock columns. Zero means 1.
	Seed int64
	// Timeout bounds the drain wait. Zero means 60 s.
	Timeout time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Readings <= 0 {
		c.Readings = 10000
	}
	if c.Origins <= 0 {
		c.Origins = 64
	}
	if c.Gateways <= 0 {
		c.Gateways = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Millisecond
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Readings, Origins, Gateways, Shards int
	BatchSize, Pipeline                 int
	GroupCommit, BackendLatency         time.Duration

	// Offered counts Offer calls across the fleet (>= Readings when
	// Overlap or CrashRestart re-delivers).
	Offered int
	// Distinct is how many unique readings the backend accepted.
	Distinct int
	// Duplicates is redundant uploads the backend suppressed — wasted
	// uplink work, not a correctness violation.
	Duplicates int
	// DoubleAccepted counts readings accepted by more than one backend
	// shard — the exactly-once violation; must be zero.
	DoubleAccepted int
	// Lost is Readings - Distinct at the deadline; must be zero.
	Lost int
	// Batches is successful uplink POSTs.
	Batches int
	// Elapsed is offer-start to full acceptance (or deadline).
	Elapsed time.Duration
	// ReadingsPerSec is Distinct / Elapsed.
	ReadingsPerSec float64
}

// ExactlyOnce reports whether delivery was complete with no reading
// accepted twice.
func (r LoadReport) ExactlyOnce() bool {
	return r.Lost == 0 && r.DoubleAccepted == 0 && r.Distinct == r.Readings
}

// String renders the report as one human-readable line.
func (r LoadReport) String() string {
	return fmt.Sprintf(
		"%d readings %d origins | %d gw x %d shards batch %d pipeline %d gc %v rtt %v | %.0f readings/s in %v | distinct %d dupes %d double-accepted %d lost %d",
		r.Readings, r.Origins, r.Gateways, r.Shards, r.BatchSize, r.Pipeline, r.GroupCommit, r.BackendLatency,
		r.ReadingsPerSec, r.Elapsed.Round(time.Millisecond),
		r.Distinct, r.Duplicates, r.DoubleAccepted, r.Lost)
}

// RunLoad executes one load run and returns its report.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	cfg = cfg.withDefaults()
	if cfg.CrashRestart && (cfg.Gateways < 2 || cfg.SpoolDir == "") {
		return LoadReport{}, fmt.Errorf("meshload: CrashRestart needs Gateways >= 2 and a SpoolDir")
	}

	sb := NewShardedBackend(cfg.Shards)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return LoadReport{}, fmt.Errorf("meshload: %w", err)
	}
	var handler http.Handler = sb
	if cfg.BackendLatency > 0 {
		handler = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			time.Sleep(cfg.BackendLatency)
			sb.ServeHTTP(w, req)
		})
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln) //nolint:errcheck // closed via ln below
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	// One shared client sized for the full fleet's windows, so pipelined
	// batches reuse connections instead of fighting the default idle cap.
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Gateways*cfg.Shards*cfg.Pipeline + 4,
			MaxIdleConnsPerHost: cfg.Gateways*cfg.Shards*cfg.Pipeline + 4,
		},
	}

	gwCfg := func(i int) Config {
		c := Config{
			URLs:          sb.URLs(base),
			Addr:          packet.Address(0xF000 + i),
			BatchSize:     cfg.BatchSize,
			FlushInterval: cfg.FlushInterval,
			Pipeline:      cfg.Pipeline,
			GroupCommit:   cfg.GroupCommit,
			// The harness offers at memory speed with no mesh pacing, so
			// each shard must hold a full backlog: capacity is per-gateway
			// and split evenly across shards (see Config.SpoolCapacity).
			SpoolCapacity: 2 * cfg.Readings * cfg.Shards,
			DedupHorizon:  2 * cfg.Readings,
			Client:        client,
		}
		if cfg.SpoolDir != "" {
			c.SpoolPath = filepath.Join(cfg.SpoolDir, fmt.Sprintf("gw%d.wal", i))
		}
		return c
	}

	gws := make([]*Gateway, cfg.Gateways)
	for i := range gws {
		g, err := New(gwCfg(i))
		if err != nil {
			return LoadReport{}, fmt.Errorf("meshload: gateway %d: %w", i, err)
		}
		g.Start()
		gws[i] = g
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	mkReading := func(i int) Reading {
		return Reading{
			From:    packet.Address(2 + i%cfg.Origins),
			To:      0x0001,
			Trace:   trace.TraceID(uint64(i) + 1),
			Payload: []byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)},
			At:      time.Now(),
		}
	}

	report := LoadReport{
		Readings: cfg.Readings, Origins: cfg.Origins,
		Gateways: cfg.Gateways, Shards: cfg.Shards,
		BatchSize: cfg.BatchSize, Pipeline: cfg.Pipeline,
		GroupCommit: cfg.GroupCommit, BackendLatency: cfg.BackendLatency,
	}
	crashAt := cfg.Readings / 2
	live := append([]*Gateway(nil), gws...)
	start := time.Now()
	for i := 0; i < cfg.Readings; i++ {
		if cfg.CrashRestart && i == crashAt {
			// kill -9 gateway 0: its buffered group-commit window and
			// unacked spool are gone from the process. The fleet hands its
			// readings over through gateway 1; the origin-sharded backend
			// suppresses whatever gateway 0 had already uploaded.
			gws[0].crash()
			live = live[1:]
			for j := 0; j < i; j++ {
				if j%cfg.Gateways == 0 {
					gws[1].Offer(mkReading(j))
					report.Offered++
				}
			}
			// Restart from the surviving WAL: replayed pending readings
			// re-upload and dedup to zero extra accepts.
			g, err := New(gwCfg(0))
			if err != nil {
				return report, fmt.Errorf("meshload: restart gateway 0: %w", err)
			}
			g.Start()
			gws[0] = g
			live = append(live, g)
		}
		primary := i % len(live)
		live[primary].Offer(mkReading(i))
		report.Offered++
		if cfg.Overlap > 0 && len(live) > 1 && rng.Float64() < cfg.Overlap {
			live[(primary+1)%len(live)].Offer(mkReading(i))
			report.Offered++
		}
	}

	deadline := time.Now().Add(cfg.Timeout)
	for sb.Distinct() < cfg.Readings && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	report.Elapsed = time.Since(start)

	var firstErr error
	for _, g := range gws {
		if err := g.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	report.Distinct = sb.Distinct()
	report.Duplicates = sb.Duplicates()
	report.DoubleAccepted = sb.DoubleAccepted()
	report.Batches = sb.Batches()
	report.Lost = cfg.Readings - report.Distinct
	if report.Lost < 0 {
		report.Lost = 0
	}
	if report.Elapsed > 0 {
		report.ReadingsPerSec = float64(report.Distinct) / report.Elapsed.Seconds()
	}
	return report, firstErr
}
