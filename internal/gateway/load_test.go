package gateway

import (
	"testing"
	"time"

	"repro/internal/packet"
)

// TestHashRingBalance guards the ring's dispersion: mesh deployments
// number their nodes consecutively, so consecutive 16-bit addresses must
// spread across shards. (Raw FNV-1a without the avalanche finalizer
// parks ALL of them on one shard — this test is the regression fence.)
func TestHashRingBalance(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		ring := newHashRing(shards)
		counts := make([]int, shards)
		const origins = 1024
		for o := 0; o < origins; o++ {
			counts[ring.shard(packet.Address(2+o))]++
		}
		fair := origins / shards
		for s, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Errorf("%d shards: shard %d owns %d origins (fair %d) — ring badly skewed: %v",
					shards, s, c, fair, counts)
			}
		}
	}
}

// TestHashRingStableAcrossInstances pins the fleet-wide property dedup
// rests on: two independently built rings with the same shard count map
// every origin identically.
func TestHashRingStableAcrossInstances(t *testing.T) {
	a, b := newHashRing(4), newHashRing(4)
	for o := 0; o < 4096; o++ {
		if a.shard(packet.Address(o)) != b.shard(packet.Address(o)) {
			t.Fatalf("origin %d maps differently across ring instances", o)
		}
	}
}

// TestRunLoadSerialExact is the plain single-lane configuration: every
// reading delivered exactly once, no duplicates at all.
func TestRunLoadSerialExact(t *testing.T) {
	rep, err := RunLoad(LoadConfig{
		Readings: 2000, Origins: 32, SpoolDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ExactlyOnce() || rep.Duplicates != 0 {
		t.Fatalf("serial load not exactly-once: %s", rep)
	}
}

// TestRunLoadFleetCrashExactlyOnce is the full gauntlet: two overlapping
// gateways, four backend shards, pipelined uplink, group commit, a mid-
// stream crash of gateway 0 with handover re-delivery and a WAL restart.
// Delivery must stay complete with zero double-accepts; redundant
// uploads are expected (handover) and must all be suppressed.
func TestRunLoadFleetCrashExactlyOnce(t *testing.T) {
	rep, err := RunLoad(LoadConfig{
		Readings: 2000, Origins: 32, Gateways: 2, Shards: 4,
		Pipeline: 4, BatchSize: 64, GroupCommit: 2 * time.Millisecond,
		SpoolDir: t.TempDir(), Overlap: 0.2, CrashRestart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ExactlyOnce() {
		t.Fatalf("fleet crash load not exactly-once: %s", rep)
	}
	if rep.Duplicates == 0 {
		t.Error("handover produced no redundant uploads — overlap/crash path not exercised")
	}
	if rep.Offered <= rep.Readings {
		t.Errorf("offered %d <= readings %d: re-delivery did not happen", rep.Offered, rep.Readings)
	}
}

// TestRunLoadValidation pins the config guards.
func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(LoadConfig{Readings: 10, CrashRestart: true}); err == nil {
		t.Error("CrashRestart without fleet+spool: want error")
	}
}
