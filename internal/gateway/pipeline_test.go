package gateway

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/trace"
)

// reading builds a test reading with explicit origin, trace, and time —
// the fleet tests need control over all three.
func reading(origin packet.Address, id uint64, at time.Time) Reading {
	return Reading{
		From:    origin,
		To:      0x0001,
		Trace:   trace.TraceID(id),
		Payload: []byte{byte(id), byte(id >> 8), byte(id >> 16)},
		At:      at,
	}
}

// drainPoll drives Poll until the gateway is empty (healthy backend) or
// the round budget runs out.
func drainPoll(t *testing.T, g *Gateway, now time.Time) {
	t.Helper()
	for i := 0; i < 50 && g.Pending() > 0; i++ {
		now = now.Add(time.Hour)
		g.Poll(now)
	}
	if g.Pending() != 0 {
		t.Fatalf("gateway did not drain: %d pending", g.Pending())
	}
}

// TestPipelinedUplinkOverlapsBatches proves the windowed uplink actually
// pipelines: with Pipeline=3 one poll round launches three batches whose
// POSTs overlap in wall-clock time, instead of stop-and-wait's one round
// trip per batch.
func TestPipelinedUplinkOverlapsBatches(t *testing.T) {
	b := NewBackend()
	var cur, peak atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := cur.Add(1)
		for {
			m := peak.Load()
			if c <= m || peak.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(30 * time.Millisecond) // hold the request open so windows overlap
		b.ServeHTTP(w, r)
		cur.Add(-1)
	}))
	defer srv.Close()

	g, err := New(Config{
		URL:           srv.URL,
		Addr:          0x0001,
		BatchSize:     2,
		Pipeline:      3,
		FlushInterval: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	now := time.Unix(0, 0)
	for i := 0; i < 6; i++ {
		if !g.Offer(reading(0x0002, uint64(0x2000+i), now)) {
			t.Fatalf("offer %d rejected", i)
		}
	}
	g.Poll(now)
	if b.Distinct() != 6 || b.Duplicates() != 0 {
		t.Fatalf("distinct=%d dupes=%d, want 6/0", b.Distinct(), b.Duplicates())
	}
	if b.Batches() != 3 {
		t.Fatalf("batches=%d, want 3 (batch size 2)", b.Batches())
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak concurrent uplinks %d: window did not pipeline", p)
	}
	if g.Pending() != 0 {
		t.Fatalf("pending %d after drain", g.Pending())
	}
}

// TestShardedGatewayPartitionsByOrigin checks the consistent-hash ingest
// partition: every reading lands on exactly the shard its origin hashes
// to, nothing is double-accepted, and the per-shard dedup still holds.
func TestShardedGatewayPartitionsByOrigin(t *testing.T) {
	sb := NewShardedBackend(4)
	srv := httptest.NewServer(sb)
	defer srv.Close()

	g, err := New(Config{
		URLs:          sb.URLs(srv.URL),
		Addr:          0x0001,
		BatchSize:     8,
		Pipeline:      2,
		FlushInterval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	now := time.Unix(0, 0)
	const origins, perOrigin = 16, 4
	for o := 0; o < origins; o++ {
		for k := 0; k < perOrigin; k++ {
			r := reading(packet.Address(0x0100+o), uint64(0x3000+o*perOrigin+k), now)
			if !g.Offer(r) {
				t.Fatalf("offer origin %d #%d rejected", o, k)
			}
		}
	}
	drainPoll(t, g, now)

	if got := sb.Distinct(); got != origins*perOrigin {
		t.Fatalf("distinct=%d, want %d", got, origins*perOrigin)
	}
	if d := sb.DoubleAccepted(); d != 0 {
		t.Fatalf("%d readings accepted by more than one shard", d)
	}
	for o := 0; o < origins; o++ {
		origin := packet.Address(0x0100 + o)
		home := g.ShardOf(origin)
		for s := 0; s < sb.Shards(); s++ {
			got := len(sb.Shard(s).FromAddr(origin))
			want := 0
			if s == home {
				want = perOrigin
			}
			if got != want {
				t.Fatalf("origin %v: shard %d holds %d readings, want %d (home shard %d)",
					origin, s, got, want, home)
			}
		}
	}
}

// TestCrossGatewayHandoverExactlyOnce is the fleet dedup acceptance
// test: readings delivered via gateway A and re-delivered via gateway B
// after a handover — including a mid-stream crash of A with unflushed
// group-commit records, a restart on A's WAL, and B re-uploading A's
// whole window — are accepted exactly once by the sharded backend,
// across three seeds.
func TestCrossGatewayHandoverExactlyOnce(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			sb := NewShardedBackend(2)
			srv := httptest.NewServer(sb)
			defer srv.Close()

			mk := func(name string, addr packet.Address) *Gateway {
				g, err := New(Config{
					URLs:          sb.URLs(srv.URL),
					Addr:          addr,
					SpoolPath:     filepath.Join(dir, name),
					SpoolCapacity: 4096,
					DedupHorizon:  1 << 16,
					BatchSize:     8,
					Pipeline:      2,
					GroupCommit:   time.Millisecond,
					FlushInterval: time.Second,
				})
				if err != nil {
					t.Fatal(err)
				}
				return g
			}
			ga := mk("a.wal", 0x00A0)
			gb := mk("b.wal", 0x00B0)
			defer gb.Close()

			// The workload: 200 readings from 20 origins, in a
			// seed-shuffled order.
			const total, origins = 200, 20
			now := time.Unix(1000, 0)
			var all []Reading
			for i := 0; i < total; i++ {
				id := uint64(seed)<<32 | uint64(0x4000+i)
				all = append(all, reading(packet.Address(0x0200+i%origins), id, now))
			}
			rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

			// Phase 1: the first 100 arrive via A; most are uploaded.
			for _, r := range all[:100] {
				ga.Offer(r)
			}
			now = now.Add(time.Hour)
			ga.Poll(now)
			// 20 more arrive moments before the crash: their WAL records
			// sit in the group-commit buffer, never flushed.
			for _, r := range all[100:120] {
				ga.Offer(r)
			}
			ga.crash()

			// Phase 2: handover. The mesh re-delivers A's entire window
			// through B (B cannot know what A already uploaded), plus the
			// remaining fresh traffic.
			for _, r := range all[:120] {
				gb.Offer(r)
			}
			for _, r := range all[120:] {
				gb.Offer(r)
			}
			drainPoll(t, gb, now)

			// Phase 3: A restarts on its WAL and re-uploads whatever had
			// been durable.
			ga2 := mk("a.wal", 0x00A0)
			defer ga2.Close()
			drainPoll(t, ga2, now)

			// Exactly-once: every reading accepted, none twice.
			if d := sb.DoubleAccepted(); d != 0 {
				t.Fatalf("%d readings double-accepted across shards", d)
			}
			got := make(map[trace.TraceID]bool)
			for s := 0; s < sb.Shards(); s++ {
				for _, r := range sb.Shard(s).Readings() {
					got[r.Trace] = true
				}
			}
			if len(got) != total {
				t.Fatalf("accepted %d unique readings, want %d", len(got), total)
			}
			for _, r := range all {
				if !got[r.Trace] {
					t.Fatalf("reading %v lost", r.Trace)
				}
			}
			// Redundant uploads are expected (handover re-delivery, WAL
			// replay) — they must all have been suppressed shard-side.
			if sb.Distinct() != total {
				t.Fatalf("distinct=%d, want %d", sb.Distinct(), total)
			}
		})
	}
}

// TestGroupCommitBatchesWALFlushes checks the group-commit clock: WAL
// appends sit in the writer buffer until the interval expires, Poll
// schedules itself for the commit deadline, and one flush covers the
// whole group.
func TestGroupCommitBatchesWALFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	b := NewBackend()
	srv := httptest.NewServer(b)
	defer srv.Close()

	g, err := New(Config{
		URL:           srv.URL,
		Addr:          0x0001,
		SpoolPath:     path,
		GroupCommit:   100 * time.Millisecond,
		BatchSize:     100, // never size-triggered in this test
		FlushInterval: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	now := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		g.Offer(reading(0x0002, uint64(0x5000+i), now))
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL flushed before the group-commit interval (size %d, err %v)", fi.Size(), err)
	}
	// Poll must wake again no later than the commit deadline.
	if d := g.Poll(now); d > 100*time.Millisecond {
		t.Fatalf("poll wait %v ignores the 100ms commit deadline", d)
	}
	g.Poll(now.Add(100 * time.Millisecond))
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("WAL not flushed at the commit deadline (err %v)", err)
	}
	if got := g.Metrics().Counter("ingest.wal.commits").Value(); got != 1 {
		t.Fatalf("ingest.wal.commits=%d, want 1 (one flush for the whole group)", got)
	}

	// Durable restart: the committed group survives even a crash (no
	// close-time flush) because the deadline already flushed it.
	g.crash()
	sp, err := openSpool(path, 1024, DropOldest, 8192, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.close()
	if sp.replayed != 5 {
		t.Fatalf("replayed %d, want the 5 committed readings", sp.replayed)
	}
}

// TestGroupCommitCrashLosesOnlyBufferedWindow documents the group-commit
// durability trade: a crash before the commit deadline loses exactly the
// buffered records (recovered fleet-wide via handover), never flushed
// ones.
func TestGroupCommitCrashLosesOnlyBufferedWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.wal")
	b := NewBackend()
	srv := httptest.NewServer(b)
	defer srv.Close()

	mk := func() *Gateway {
		g, err := New(Config{
			URL:           srv.URL,
			Addr:          0x0001,
			SpoolPath:     path,
			GroupCommit:   100 * time.Millisecond,
			BatchSize:     100,
			FlushInterval: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g := mk()
	now := time.Unix(0, 0)
	// Three readings commit (deadline passes)…
	for i := 0; i < 3; i++ {
		g.Offer(reading(0x0002, uint64(0x6000+i), now))
	}
	g.Poll(now.Add(100 * time.Millisecond))
	// …two more are only buffered when the process dies.
	for i := 3; i < 5; i++ {
		g.Offer(reading(0x0002, uint64(0x6000+i), now))
	}
	g.crash()

	g2 := mk()
	defer g2.Close()
	if got := g2.Pending(); got != 3 {
		t.Fatalf("replayed %d readings, want exactly the 3 committed ones", got)
	}
}

// TestDownlinkIdempotentAcrossReorderedAcks is the regression test for
// pipelined acks: batch responses applied out of order must not regress
// controller state. An older command version is skipped; retries of the
// current version, other op streams, and other destinations pass.
func TestDownlinkIdempotentAcrossReorderedAcks(t *testing.T) {
	b := NewBackend()
	g, _ := newTestGateway(t, b, nil)
	var sent []control.Command
	g.SetSender(func(d Downlink) error {
		if c, ok := control.ParseCommand(d.Payload); ok {
			sent = append(sent, c)
		}
		return nil
	})

	cmd := func(to packet.Address, op control.Op, seq uint32) []Downlink {
		return []Downlink{{To: to, Command: &control.Command{Op: op, Seq: seq, HelloPeriod: time.Minute}}}
	}

	// Two batch acks arrive reversed: seq 2 first, then the stale seq 1.
	g.injectDownlinks(cmd(0x0007, control.OpSetConfig, 2))
	g.injectDownlinks(cmd(0x0007, control.OpSetConfig, 1))
	if len(sent) != 1 || sent[0].Seq != 2 {
		t.Fatalf("stale downlink not suppressed: sent=%v", sent)
	}
	if got := g.Metrics().Counter("gw.downlink.stale").Value(); got != 1 {
		t.Fatalf("gw.downlink.stale=%d, want 1", got)
	}

	// A retry of the CURRENT version must pass — the controller keeps
	// Seq stable across retries and depends on re-injection.
	g.injectDownlinks(cmd(0x0007, control.OpSetConfig, 2))
	if len(sent) != 2 || sent[1].Seq != 2 {
		t.Fatalf("same-seq retry suppressed: sent=%v", sent)
	}

	// Other op streams and destinations keep their own version counters.
	g.injectDownlinks(cmd(0x0007, control.OpTriggerHello, 1))
	g.injectDownlinks(cmd(0x0008, control.OpSetConfig, 1))
	if len(sent) != 4 {
		t.Fatalf("independent streams were cross-suppressed: sent=%v", sent)
	}
}
