package gateway

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/trace"
)

// This file holds the sharded-ingest machinery: the consistent hash ring
// that partitions readings across backend shards by their origin address,
// and the per-shard state (spool, uplink window, backoff, breaker) that
// lets shards make progress independently.
//
// Why consistent hashing by origin rather than round-robin or by trace
// ID: every gateway in a fleet computes the same origin→shard mapping
// from nothing but the shard count, so when a sensor hands over from
// gateway A to gateway B — or its readings are re-delivered through B
// after A crashes — both gateways upload that origin's readings to the
// SAME backend shard, whose dedup horizon then suppresses the duplicate.
// Round-robin would scatter the two copies across shards and double-
// accept them; hashing the full trace ID would too, since the replayed
// copy rides a different uplink batch but the same ID must land on the
// same shard, which origin hashing guarantees for free (a trace ID's
// origin never changes). The ring's virtual points keep the partition
// balanced and stable as shard counts change between deployments.

// ringReplicas is the number of virtual points each shard places on the
// ring. Shard share deviation shrinks as ~1/sqrt(replicas): 256 points
// keeps the worst shard within ~±10% of fair share while the whole ring
// (shards*256 points) stays small enough to rebuild on every New.
const ringReplicas = 256

// hashRing maps mesh origin addresses onto backend shards.
type hashRing struct {
	points []uint64 // sorted virtual points
	owner  []int    // owner[i] is the shard owning points[i]
	shards int
}

// fnv1a64 folds a byte sequence with FNV-1a and finishes with a 64-bit
// avalanche mix. The mix is not optional: raw FNV-1a over a 2-byte mesh
// address leaves all addresses sharing a high byte within a ~2^48-wide
// band of hash space — a 1/65536 sliver of the ring — so without it every
// origin in a typical deployment lands on one shard's segment and the
// "sharded" ingest degenerates to a single lane.
func fnv1a64(data ...byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	// fmix64 finalizer: full avalanche, so short keys spread uniformly.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// newHashRing builds the ring for the given shard count. Every gateway
// and backend with the same shard count derives the identical ring.
func newHashRing(shards int) *hashRing {
	if shards < 1 {
		shards = 1
	}
	r := &hashRing{shards: shards}
	if shards == 1 {
		return r
	}
	type pt struct {
		h uint64
		s int
	}
	pts := make([]pt, 0, shards*ringReplicas)
	for s := 0; s < shards; s++ {
		for v := 0; v < ringReplicas; v++ {
			h := fnv1a64(byte(s>>8), byte(s), 0x9e, byte(v>>8), byte(v))
			pts = append(pts, pt{h, s})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].h < pts[j].h })
	r.points = make([]uint64, len(pts))
	r.owner = make([]int, len(pts))
	for i, p := range pts {
		r.points[i] = p.h
		r.owner[i] = p.s
	}
	return r
}

// shard returns the backend shard owning the given origin address.
func (r *hashRing) shard(origin packet.Address) int {
	if r.shards == 1 {
		return 0
	}
	h := fnv1a64(byte(origin>>8), byte(origin))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.owner[i]
}

// gwShard is one backend shard's independent ingest lane: its own spool
// (dedup horizon + WAL), uplink window, backoff, and circuit breaker,
// all behind its own lock so lanes never contend with each other.
type gwShard struct {
	id  int
	url string

	mu sync.Mutex
	sp *spool
	// lastFlush anchors the time-triggered flush for this lane.
	lastFlush time.Time
	// consecFails drives backoff growth and the breaker.
	consecFails int
	nextRetryAt time.Time
	breakerOpen bool
	breakerTil  time.Time
	// inflight marks readings currently riding an unacknowledged batch,
	// so overlapping launches never upload the same reading twice.
	inflight map[trace.TraceID]struct{}
	// inflightBatches counts launched-but-unapplied posts; bounded by
	// Config.Pipeline.
	inflightBatches int

	// Per-lane instruments, resolved once (fmt on the hot path would
	// undo the sharding win).
	gDepth    *metrics.Gauge
	gInflight *metrics.Gauge
	gBreaker  *metrics.Gauge
	cUplinked *metrics.Counter
}

// newGwShard wires one lane and its instruments.
func newGwShard(id int, url string, sp *spool, reg *metrics.Registry) *gwShard {
	prefix := "gw.shard." + strconv.Itoa(id) + "."
	return &gwShard{
		id:        id,
		url:       url,
		sp:        sp,
		inflight:  make(map[trace.TraceID]struct{}),
		gDepth:    reg.Gauge(prefix + "depth"),
		gInflight: reg.Gauge(prefix + "inflight"),
		gBreaker:  reg.Gauge(prefix + "breaker_open"),
		cUplinked: reg.Counter(prefix + "uplinked"),
	}
}

// walShardPath derives shard i's WAL path from the configured base path.
// A single-shard gateway keeps the base path itself, so existing spools
// replay unchanged; a sharded gateway suffixes ".s<i>". Shard counts must
// stay stable across restarts of the same spool directory — the mapping
// of origins to lanes (and so to WAL files) is a function of the count.
func walShardPath(base string, i, n int) string {
	if base == "" {
		return ""
	}
	if n <= 1 {
		return base
	}
	return base + ".s" + strconv.Itoa(i)
}
