package gateway

import (
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/meshsec"
	"repro/internal/netsim"
	"repro/internal/routing"

	"repro/internal/core"
)

// simChain builds a converged n-node chain with node 0 as the sink.
func simChain(t *testing.T, n int, seed int64) *netsim.Sim {
	return simChainKeyed(t, n, seed, nil)
}

// simChainKeyed is simChain on a link-layer-secured mesh when key is
// non-nil.
func simChainKeyed(t *testing.T, n int, seed int64, key *meshsec.Key) *netsim.Sim {
	t.Helper()
	topo, err := geo.Line(n, 8000)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.New(netsim.Config{
		Topology: topo,
		Node: core.Config{
			HelloPeriod: 2 * time.Minute,
			Routing:     routing.Config{EntryTTL: 10 * time.Minute},
		},
		Seed:   seed,
		SecKey: key,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sim.TimeToConvergence(30*time.Second, 30*time.Minute); !ok {
		t.Fatal("chain never converged")
	}
	return sim
}

// simGateway builds a gateway with virtual-time-friendly windows.
func simGateway(t *testing.T, url, spoolPath string) *Gateway {
	t.Helper()
	g, err := New(Config{
		URL:              url,
		SpoolPath:        spoolPath,
		BatchSize:        8,
		FlushInterval:    30 * time.Second,
		RetryBase:        10 * time.Second,
		RetryMax:         time.Minute,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// drain runs the simulation until the gateway spool is empty.
func drain(t *testing.T, sim *netsim.Sim, g *Gateway) {
	t.Helper()
	if _, ok := sim.RunUntil(func() bool { return g.Pending() == 0 }, 10*time.Second, 30*time.Minute); !ok {
		t.Fatalf("spool never drained: pending=%d breaker=%v", g.Pending(), g.BreakerOpen())
	}
}

// TestSimEndToEnd is the subsystem acceptance test: a 5-node chain with a
// sink-side gateway delivers every reading that reaches the sink to the
// backend exactly once (trace-ID dedup verified backend-side).
func TestSimEndToEnd(t *testing.T) {
	b := NewBackend()
	srv := httptest.NewServer(b)
	defer srv.Close()

	sim := simChain(t, 5, 1)
	g := simGateway(t, srv.URL, "")
	if _, err := AttachSim(sim, 0, g); err != nil {
		t.Fatal(err)
	}

	// Telemetry from every node to the sink, a fixed number of readings
	// per source so the workload finishes and the spool can fully drain.
	// Poisson gaps desynchronize the sources; fixed gaps would collide on
	// a common grid forever.
	var stats []*netsim.TrafficStats
	for i := 1; i < sim.N(); i++ {
		st, err := sim.StartFlow(netsim.Flow{
			From: i, To: 0, Payload: 12, Interval: 15 * time.Second, Count: 10,
			Poisson: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
	}
	sim.Run(5 * time.Minute) // sends complete within 150s; leave slack
	drain(t, sim, g)

	merged := netsim.MergeStats(stats)
	atSink := len(sim.Handle(0).Msgs)
	if merged.Delivered < 36 { // the mesh itself must mostly work
		t.Fatalf("mesh delivered only %d/40", merged.Delivered)
	}
	if b.Duplicates() != 0 {
		t.Fatalf("backend saw %d duplicate uploads", b.Duplicates())
	}
	// Exactly-once and lossless: everything the sink heard is uplinked.
	if b.Distinct() != atSink {
		t.Fatalf("backend has %d readings, sink delivered %d", b.Distinct(), atSink)
	}
	if float64(b.Distinct()) < 0.99*float64(atSink) {
		t.Fatalf("delivery ratio below 99%%: %d/%d", b.Distinct(), atSink)
	}
	if got := g.Metrics().Counter("gw.uplink.readings").Value(); got != uint64(atSink) {
		t.Fatalf("gw.uplink.readings=%d, want %d", got, atSink)
	}
}

// TestSimPartitionHealWithOutage exercises the two failure domains
// together: a backend outage makes the spool absorb readings (growth,
// backoff, breaker all observable), and a mesh partition of the sink
// stops new arrivals; after Heal and backend recovery every reading that
// reached the sink is uplinked exactly once.
func TestSimPartitionHealWithOutage(t *testing.T) {
	b := NewBackend()
	srv := httptest.NewServer(b)
	defer srv.Close()

	sim := simChain(t, 4, 2)
	g := simGateway(t, srv.URL, "")
	if _, err := AttachSim(sim, 0, g); err != nil {
		t.Fatal(err)
	}
	reg := g.Metrics()

	b.SetFailing(true)
	for i := 1; i < sim.N(); i++ {
		if _, err := sim.StartFlow(netsim.Flow{
			From: i, To: 0, Payload: 12, Interval: 20 * time.Second, Count: 8,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Outage phase: readings reach the sink but not the backend, so the
	// spool grows and the uplinker backs off until the breaker opens.
	sim.Run(2 * time.Minute)
	grown := g.Pending()
	if grown == 0 {
		t.Fatal("spool did not grow during backend outage")
	}
	if reg.Counter("gw.uplink.failures").Value() == 0 {
		t.Fatal("no failed uplink attempts recorded during outage")
	}
	if reg.Counter("gw.breaker.opened").Value() == 0 {
		t.Fatal("breaker never opened during sustained outage")
	}

	// Partition the sink away mid-outage: no new readings arrive, the
	// spooled backlog must survive untouched.
	rest := make([]int, 0, sim.N()-1)
	for i := 1; i < sim.N(); i++ {
		rest = append(rest, i)
	}
	if err := sim.Partition([]int{0}, rest); err != nil {
		t.Fatal(err)
	}
	sim.Run(2 * time.Minute)
	if g.Pending() < grown {
		t.Fatalf("spool shrank during outage: %d -> %d", grown, g.Pending())
	}

	// Heal the mesh and the backend; the remaining traffic flows and the
	// whole backlog drains with zero loss and zero duplicates.
	if err := sim.Heal([]int{0}, rest); err != nil {
		t.Fatal(err)
	}
	b.SetFailing(false)
	sim.Run(5 * time.Minute)
	drain(t, sim, g)

	atSink := len(sim.Handle(0).Msgs)
	if atSink == 0 {
		t.Fatal("no readings reached the sink at all")
	}
	if b.Distinct() != atSink || b.Duplicates() != 0 {
		t.Fatalf("after heal: backend %d/%d dupes=%d, want lossless exactly-once",
			b.Distinct(), atSink, b.Duplicates())
	}
}

// TestSimRestartReplay models a gateway process restart inside the
// simulation: the first gateway spools under a backend outage and is
// detached and closed; a successor on the same WAL replays and uplinks
// everything exactly once.
func TestSimRestartReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "uplink.wal")
	b := NewBackend()
	srv := httptest.NewServer(b)
	defer srv.Close()

	sim := simChain(t, 3, 3)
	g1 := simGateway(t, srv.URL, path)
	a1, err := AttachSim(sim, 0, g1)
	if err != nil {
		t.Fatal(err)
	}

	b.SetFailing(true)
	for i := 1; i < sim.N(); i++ {
		if _, err := sim.StartFlow(netsim.Flow{
			From: i, To: 0, Payload: 12, Interval: 15 * time.Second, Count: 5,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Let the workload finish so no deliveries land in the attachment gap.
	sim.Run(4 * time.Minute)
	atSink := len(sim.Handle(0).Msgs)
	if atSink == 0 || g1.Pending() != atSink {
		t.Fatalf("outage phase: sink=%d pending=%d, want equal and nonzero", atSink, g1.Pending())
	}

	// "Process restart": stop the first gateway, bring up a successor on
	// the same spool file.
	a1.Detach()
	if err := g1.Close(); err != nil {
		t.Fatal(err)
	}
	b.SetFailing(false)
	g2 := simGateway(t, srv.URL, path)
	if g2.Pending() != atSink {
		t.Fatalf("successor replayed %d, want %d", g2.Pending(), atSink)
	}
	if _, err := AttachSim(sim, 0, g2); err != nil {
		t.Fatal(err)
	}
	drain(t, sim, g2)

	if b.Distinct() != atSink || b.Duplicates() != 0 {
		t.Fatalf("after restart: backend %d/%d dupes=%d", b.Distinct(), atSink, b.Duplicates())
	}
}

// TestSimRekeyRollout provisions a new network key over the air: the
// backend queues rekey downlinks farthest-first, each rides a reliable
// stream out of the gateway node, and the gateway's own link rotates
// host-side last. Telemetry keeps flowing across the rollout — receivers
// hold the previous key live, so the mesh never partitions — and the
// backend ends with exactly-once delivery of readings sealed under both
// keys.
func TestSimRekeyRollout(t *testing.T) {
	oldKey := meshsec.Key{
		0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
	}
	newKey := meshsec.Key{
		0x60, 0x3d, 0xeb, 0x10, 0x15, 0xca, 0x71, 0xbe,
		0x2b, 0x73, 0xae, 0xf0, 0x85, 0x7d, 0x77, 0x81,
	}

	b := NewBackend()
	srv := httptest.NewServer(b)
	defer srv.Close()

	sim := simChainKeyed(t, 3, 5, &oldKey)
	g := simGateway(t, srv.URL, "")
	if _, err := AttachSim(sim, 0, g); err != nil {
		t.Fatal(err)
	}

	// Telemetry spanning the whole rollout: the uplink batches it
	// produces are also what carries the rekey downlinks back out.
	for i := 1; i < sim.N(); i++ {
		if _, err := sim.StartFlow(netsim.Flow{
			From: i, To: 0, Payload: 12, Interval: 15 * time.Second, Count: 30,
			Poisson: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(time.Minute)

	// Farthest-first: each rekey command crosses only forwarders still on
	// the old key, so it authenticates hop by hop on its way out.
	for i := sim.N() - 1; i >= 1; i-- {
		b.PushDownlink(Downlink{To: sim.Handle(i).Addr, Rekey: newKey.String()})
		h := sim.Handle(i)
		if _, ok := sim.RunUntil(func() bool { return h.Sec.NetKey() == newKey },
			10*time.Second, 20*time.Minute); !ok {
			t.Fatalf("node %v never applied the rekey", h.Addr)
		}
	}
	// The gateway node is the key source; its link rotates host-side.
	sim.Handle(0).Sec.Rotate(newKey)
	preRotate := b.Distinct()

	sim.Run(6 * time.Minute) // remaining sends finish on the new key
	drain(t, sim, g)

	for i := 0; i < sim.N(); i++ {
		if got := sim.Handle(i).Sec.NetKey(); got != newKey {
			t.Errorf("node %v still on key %v after rollout", sim.Handle(i).Addr, got)
		}
	}
	snap := sim.AggregateMetrics().Snapshot()
	if snap["total.sec.rekey.applied"] < float64(sim.N()-1) {
		t.Errorf("sec.rekey.applied=%v, want >= %d", snap["total.sec.rekey.applied"], sim.N()-1)
	}
	if g.Metrics().Counter("gw.downlink.injected").Value() < uint64(sim.N()-1) {
		t.Errorf("gateway injected %d downlinks, want >= %d",
			g.Metrics().Counter("gw.downlink.injected").Value(), sim.N()-1)
	}
	atSink := len(sim.Handle(0).Msgs)
	if b.Distinct() <= preRotate {
		t.Errorf("no readings arrived after the rotation (%d before, %d after)", preRotate, b.Distinct())
	}
	if b.Distinct() != atSink || b.Duplicates() != 0 {
		t.Errorf("backend %d/%d dupes=%d, want lossless exactly-once across the rollout",
			b.Distinct(), atSink, b.Duplicates())
	}
}

// TestSimSecuredGatewayRestart restarts the gateway process on a secured
// mesh: the node's security link (and with it the monotonic frame
// counter) belongs to the node, not the gateway, so a detach/close/
// re-attach cycle must never reset it — no nonce is ever reused because
// a gateway process bounced.
func TestSimSecuredGatewayRestart(t *testing.T) {
	key := meshsec.Key{
		0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
	}
	path := filepath.Join(t.TempDir(), "uplink.wal")
	b := NewBackend()
	srv := httptest.NewServer(b)
	defer srv.Close()

	sim := simChainKeyed(t, 3, 6, &key)
	g1 := simGateway(t, srv.URL, path)
	a1, err := AttachSim(sim, 0, g1)
	if err != nil {
		t.Fatal(err)
	}

	b.SetFailing(true)
	for i := 1; i < sim.N(); i++ {
		if _, err := sim.StartFlow(netsim.Flow{
			From: i, To: 0, Payload: 12, Interval: 15 * time.Second, Count: 5,
		}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(4 * time.Minute)
	atOutage := len(sim.Handle(0).Msgs)
	if atOutage == 0 || g1.Pending() != atOutage {
		t.Fatalf("outage phase: sink=%d pending=%d, want equal and nonzero", atOutage, g1.Pending())
	}
	counterBefore := sim.Handle(0).Sec.Counter()
	if counterBefore == 0 {
		t.Fatal("gateway node sent no secured frames before the restart")
	}

	a1.Detach()
	if err := g1.Close(); err != nil {
		t.Fatal(err)
	}
	b.SetFailing(false)
	g2 := simGateway(t, srv.URL, path)
	if g2.Pending() != atOutage {
		t.Fatalf("successor replayed %d, want %d", g2.Pending(), atOutage)
	}
	if _, err := AttachSim(sim, 0, g2); err != nil {
		t.Fatal(err)
	}
	drain(t, sim, g2)

	if got := sim.Handle(0).Sec.Counter(); got < counterBefore {
		t.Fatalf("frame counter went backwards across gateway restart: %d -> %d", counterBefore, got)
	}
	if b.Distinct() != atOutage || b.Duplicates() != 0 {
		t.Fatalf("after restart: backend %d/%d dupes=%d", b.Distinct(), atOutage, b.Duplicates())
	}
	snap := sim.AggregateMetrics().Snapshot()
	if snap["total.sec.drop.auth"]+snap["total.sec.drop.replay"] != 0 {
		t.Fatalf("benign secured run dropped frames as hostile: auth=%v replay=%v",
			snap["total.sec.drop.auth"], snap["total.sec.drop.replay"])
	}
}
