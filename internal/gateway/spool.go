package gateway

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// The spool is the gateway's durable uplink queue: a bounded in-memory
// FIFO mirrored by an append-only write-ahead log. Every admitted reading
// is appended as a "put" record before it becomes eligible for uplink;
// acknowledged (uploaded) and evicted readings append a "del" record. On
// open the log is replayed, so readings that were spooled but never
// acknowledged survive a process restart and upload then — no reading the
// mesh delivered is lost to a crash or a long backend outage.
//
// The log also persists the dedup horizon: every trace ID that ever
// entered the spool (uploaded, pending, or evicted) is remembered — up to
// a bounded horizon — so a reading re-delivered by the mesh after a
// restart is still recognized as a duplicate.
//
// Two write modes exist. With groupCommit zero (the default), every
// append is flushed to the OS immediately — crash-of-process safe, one
// syscall per record. With groupCommit set, appends land in the writer
// buffer and are flushed together once the oldest buffered record has
// waited groupCommit — the group-commit path that turns N records into
// one write syscall under load, at the cost of a bounded window of
// records that a crash can lose (a fleet recovers those via handover:
// the mesh re-delivers through another gateway and the origin-sharded
// backend dedup suppresses whatever was already uploaded). The append
// path is allocation-free in steady state: records are hand-encoded into
// a reusable scratch buffer instead of going through encoding/json.
//
// The spool never fsyncs; power-loss durability is the file system's
// affair — the right trade for an edge bridge whose upstream retries
// anyway.

// walRecord is one WAL line. It is the decode-side schema; the encode
// side is the hand-rolled appendPut/appendDel below, which emit the same
// shape without allocating.
type walRecord struct {
	// Op is "put" (reading admitted) or "del" (reading uploaded or
	// evicted; only Trace is set).
	Op      string   `json:"op"`
	Reading *Reading `json:"r,omitempty"`
	Trace   string   `json:"trace,omitempty"`
}

// spool is the bounded durable queue. It has no lock of its own: every
// method runs under the owning shard's mutex (compaction's bulk write is
// the deliberate exception — see beginCompact).
type spool struct {
	path     string // "" = memory-only
	capacity int
	policy   DropPolicy
	reg      *metrics.Registry

	f *os.File
	w *bufio.Writer

	// groupCommit bounds how long an appended record may sit unflushed;
	// zero flushes every append. Set once, before the first add.
	groupCommit time.Duration
	dirty       bool
	dirtySince  time.Time
	unflushed   int

	pending []Reading // FIFO; head is the oldest admitted reading
	seen    map[trace.TraceID]struct{}
	// seenOrder evicts the oldest remembered IDs once the horizon fills,
	// bounding memory for long-running gateways.
	seenOrder []trace.TraceID
	seenCap   int

	lines    int // WAL records written since last compaction (incl. replayed)
	replayed int // pending readings recovered at open

	// encBuf is the reusable scratch buffer for WAL encoding; it grows to
	// the largest record and stays there, making appends allocation-free.
	encBuf []byte

	// compacting marks a compaction in progress: appends keep going to
	// the live WAL (crash safety) and are additionally captured in
	// compactLog so finishCompact can replay them into the sidecar.
	compacting bool
	compactLog [][]byte

	// validLen is the byte offset just past the last intact,
	// newline-terminated record seen during replay. A torn tail (crash
	// mid-append) is truncated back to this offset before the file is
	// reopened for append, so the next record never concatenates onto a
	// partial line.
	validLen int64
	// tail holds a final record that parsed completely but lost its
	// trailing newline to a crash; it is truncated away with the torn
	// bytes and re-appended once the writer is open.
	tail *walRecord
}

// spoolAdd is the outcome of an admission attempt.
type spoolAdd int

const (
	addOK spoolAdd = iota
	addDuplicate
	addRejected // DropNewest under a full queue
)

// openSpool opens (and replays) the WAL at path, or builds a memory-only
// spool when path is empty. Group commit is off until the owner sets
// s.groupCommit; open-time appends (tail rewrite, capacity trim) are
// always flushed immediately.
func openSpool(path string, capacity int, policy DropPolicy, seenCap int, reg *metrics.Registry) (*spool, error) {
	s := &spool{
		path:     path,
		capacity: capacity,
		policy:   policy,
		reg:      reg,
		seen:     make(map[trace.TraceID]struct{}),
		seenCap:  seenCap,
	}
	if path == "" {
		return s, nil
	}
	torn, err := s.replay()
	if err != nil {
		return nil, err
	}
	if torn {
		// Cut the torn tail off now, while nothing is appending: leaving
		// it would glue the next record onto the partial line and poison
		// the replay after the *next* restart.
		if err := os.Truncate(path, s.validLen); err != nil {
			return nil, fmt.Errorf("gateway: spool: truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("gateway: spool: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	if s.tail != nil {
		// The final record was complete but unterminated; it was truncated
		// with the torn bytes, so write it back properly framed.
		if err := s.appendJSON(*s.tail); err != nil {
			return nil, err
		}
		s.tail = nil
	}
	// Respect the capacity bound even across a config change: evict per
	// policy — with del records and counted drops, so the evictees neither
	// resurrect on the next replay nor vanish silently.
	for len(s.pending) > s.capacity {
		var ev Reading
		if s.policy == DropNewest {
			ev = s.pending[len(s.pending)-1]
			s.pending = s.pending[:len(s.pending)-1]
			s.reg.Counter("gw.drop.newest").Inc()
		} else {
			ev = s.pending[0]
			s.pending = s.pending[1:]
			s.reg.Counter("gw.drop.oldest").Inc()
		}
		if err := s.appendJSON(walRecord{Op: "del", Trace: ev.Trace.String()}); err != nil {
			return nil, err
		}
	}
	s.replayed = len(s.pending)
	return s, nil
}

// replay rebuilds the pending queue and dedup horizon from the WAL. A
// truncated final line (crash mid-append) is tolerated — torn reports it
// so openSpool truncates the file back to the last intact record before
// appending resumes. Any earlier malformed line is an error, because
// silently skipping it could drop data the log promised to keep.
func (s *spool) replay() (torn bool, err error) {
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("gateway: spool: %w", err)
	}
	defer f.Close()

	type slot struct {
		r    Reading
		live bool
	}
	var order []trace.TraceID
	slots := make(map[trace.TraceID]*slot)
	apply := func(rec walRecord, line int) error {
		switch rec.Op {
		case "put":
			if rec.Reading == nil {
				return fmt.Errorf("gateway: spool %s: put without reading at line %d", s.path, line)
			}
			id := rec.Reading.Trace
			if _, ok := slots[id]; !ok {
				order = append(order, id)
			}
			slots[id] = &slot{r: *rec.Reading, live: true}
			s.remember(id)
		case "del":
			id, err := trace.ParseTraceID(rec.Trace)
			if err != nil {
				return fmt.Errorf("gateway: spool %s: line %d: %w", s.path, line, err)
			}
			if sl, ok := slots[id]; ok {
				sl.live = false
			}
			s.remember(id)
		default:
			return fmt.Errorf("gateway: spool %s: unknown op %q at line %d", s.path, rec.Op, line)
		}
		return nil
	}

	br := bufio.NewReaderSize(f, 64*1024)
	lines := 0
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return false, fmt.Errorf("gateway: spool %s: %w", s.path, rerr)
		}
		terminated := rerr == nil
		raw := bytes.TrimSuffix(line, []byte{'\n'})
		if len(raw) > 0 {
			var rec walRecord
			if jerr := json.Unmarshal(raw, &rec); jerr != nil {
				if terminated {
					// A framed record that does not parse is corruption,
					// not a crash artifact.
					return false, fmt.Errorf("gateway: spool %s: malformed record at line %d", s.path, lines+1)
				}
				// Torn final record: the expected crash artifact. Drop the
				// partial bytes (the reading was never fully durable).
				torn = true
				break
			}
			if aerr := apply(rec, lines+1); aerr != nil {
				return false, aerr
			}
			lines++
			if !terminated {
				// Complete record, missing only its newline: keep it, but
				// have openSpool rewrite it properly framed (append will
				// re-count it, so it is not counted here).
				s.tail = &rec
				lines--
				torn = true
				break
			}
		}
		s.validLen += int64(len(line))
		if rerr == io.EOF {
			break
		}
	}
	for _, id := range order {
		if sl := slots[id]; sl.live {
			s.pending = append(s.pending, sl.r)
		}
	}
	s.lines = lines
	return torn, nil
}

// remember adds id to the bounded dedup horizon.
func (s *spool) remember(id trace.TraceID) {
	if _, ok := s.seen[id]; ok {
		return
	}
	s.seen[id] = struct{}{}
	s.seenOrder = append(s.seenOrder, id)
	for len(s.seenOrder) > s.seenCap {
		delete(s.seen, s.seenOrder[0])
		s.seenOrder = s.seenOrder[1:]
	}
}

// growTo extends b by n bytes, reallocating only when capacity runs out.
func growTo(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, 2*(len(b)+n))
	copy(nb, b)
	return nb
}

// appendHexTrace appends the canonical 16-hex-digit trace ID.
func appendHexTrace(dst []byte, id trace.TraceID) []byte {
	const hexd = "0123456789abcdef"
	v := uint64(id)
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexd[(v>>uint(shift))&0xf])
	}
	return dst
}

// encodePut appends one framed put record to dst. The output parses as
// the walRecord/readingJSON schema; every field is from a JSON-safe
// alphabet (decimal, hex, base64, RFC 3339), so no escaping pass is
// needed and the encoder allocates nothing once dst has grown.
func encodePut(dst []byte, r *Reading) []byte {
	dst = append(dst, `{"op":"put","r":{"from":`...)
	dst = strconv.AppendUint(dst, uint64(r.From), 10)
	dst = append(dst, `,"to":`...)
	dst = strconv.AppendUint(dst, uint64(r.To), 10)
	dst = append(dst, `,"trace":"`...)
	dst = appendHexTrace(dst, r.Trace)
	dst = append(dst, `","payload":"`...)
	n := base64.StdEncoding.EncodedLen(len(r.Payload))
	off := len(dst)
	dst = growTo(dst, n)
	base64.StdEncoding.Encode(dst[off:off+n], r.Payload)
	if r.Reliable {
		dst = append(dst, `","reliable":true,"at":"`...)
	} else {
		dst = append(dst, `","at":"`...)
	}
	dst = r.At.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, '"', '}', '}', '\n')
	return dst
}

// encodeDel appends one framed del record to dst.
func encodeDel(dst []byte, id trace.TraceID) []byte {
	dst = append(dst, `{"op":"del","trace":"`...)
	dst = appendHexTrace(dst, id)
	dst = append(dst, '"', '}', '\n')
	return dst
}

// appendLine writes one pre-encoded record line: straight to the OS when
// group commit is off, into the buffered writer (marked dirty at time at)
// when it is on. A compaction in progress captures a copy so the sidecar
// stays complete.
func (s *spool) appendLine(line []byte, at time.Time) error {
	if s.w == nil {
		return nil
	}
	if s.compacting {
		s.compactLog = append(s.compactLog, append([]byte(nil), line...))
	}
	if _, err := s.w.Write(line); err != nil {
		return fmt.Errorf("gateway: spool: %w", err)
	}
	s.lines++
	if s.groupCommit <= 0 {
		if err := s.w.Flush(); err != nil {
			return fmt.Errorf("gateway: spool: %w", err)
		}
		return nil
	}
	s.unflushed++
	if !s.dirty {
		s.dirty = true
		s.dirtySince = at
	}
	return nil
}

// appendPut hand-encodes and writes one put record (zero-alloc).
func (s *spool) appendPut(r *Reading, at time.Time) error {
	if s.w == nil {
		return nil
	}
	s.encBuf = encodePut(s.encBuf[:0], r)
	return s.appendLine(s.encBuf, at)
}

// appendDel hand-encodes and writes one del record (zero-alloc).
func (s *spool) appendDel(id trace.TraceID, at time.Time) error {
	if s.w == nil {
		return nil
	}
	s.encBuf = encodeDel(s.encBuf[:0], id)
	return s.appendLine(s.encBuf, at)
}

// appendJSON writes one record through encoding/json — the cold path used
// only at open time (tail rewrite, capacity trim), always flushed.
func (s *spool) appendJSON(rec walRecord) error {
	if s.w == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("gateway: spool: %w", err)
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		return fmt.Errorf("gateway: spool: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("gateway: spool: %w", err)
	}
	s.lines++
	return nil
}

// commitDeadline reports when buffered appends must be flushed.
func (s *spool) commitDeadline() (time.Time, bool) {
	if !s.dirty {
		return time.Time{}, false
	}
	return s.dirtySince.Add(s.groupCommit), true
}

// commitIfDue flushes buffered appends once the oldest has waited the
// group-commit interval.
func (s *spool) commitIfDue(now time.Time) error {
	if !s.dirty || now.Before(s.dirtySince.Add(s.groupCommit)) {
		return nil
	}
	return s.commit()
}

// commit force-flushes buffered appends and records the group size.
func (s *spool) commit() error {
	if !s.dirty {
		return nil
	}
	recs := s.unflushed
	s.dirty = false
	s.unflushed = 0
	if s.w == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("gateway: spool: %w", err)
	}
	if recs > 0 {
		s.reg.Counter("ingest.wal.commits").Inc()
		s.reg.Histogram("ingest.wal.commit_records").Observe(float64(recs))
	}
	return nil
}

// add admits a reading: dedup against the horizon, then enqueue, evicting
// per policy when full. The evicted reading (DropOldest) is returned so
// the caller can record it. The in-memory queue is updated before the WAL
// is written: a failed append degrades durability (reported via err), but
// the admitted reading still uplinks from memory.
func (s *spool) add(r Reading) (res spoolAdd, evicted *Reading, err error) {
	if _, dup := s.seen[r.Trace]; dup {
		return addDuplicate, nil, nil
	}
	if len(s.pending) >= s.capacity {
		if s.policy == DropNewest {
			// The newcomer is rejected and deliberately NOT remembered:
			// if the mesh ever re-delivers it when there is room, it
			// should be admitted.
			return addRejected, nil, nil
		}
		old := s.pending[0]
		s.pending = s.pending[1:]
		evicted = &old
	}
	s.remember(r.Trace)
	s.pending = append(s.pending, r)
	var firstErr error
	if evicted != nil {
		if werr := s.appendDel(evicted.Trace, r.At); werr != nil {
			firstErr = werr
		}
	}
	if werr := s.appendPut(&r, r.At); werr != nil && firstErr == nil {
		firstErr = werr
	}
	return addOK, evicted, firstErr
}

// peek returns up to n readings from the head without removing them.
func (s *spool) peek(n int) []Reading {
	if n > len(s.pending) {
		n = len(s.pending)
	}
	return append([]Reading(nil), s.pending[:n]...)
}

// peekExcluding returns up to n readings from the head, skipping trace
// IDs in excl — the pipelined uplinker's view, which must not re-launch
// readings already riding an in-flight batch.
func (s *spool) peekExcluding(n int, excl map[trace.TraceID]struct{}) []Reading {
	if len(excl) == 0 {
		return s.peek(n)
	}
	out := make([]Reading, 0, n)
	for i := range s.pending {
		if len(out) == n {
			break
		}
		if _, busy := excl[s.pending[i].Trace]; busy {
			continue
		}
		out = append(out, s.pending[i])
	}
	return out
}

// ack removes the given readings at the zero time; test convenience for
// spools without group commit (where the dirty timestamp is unused).
func (s *spool) ack(rs []Reading) error { return s.ackAt(rs, time.Time{}) }

// ackAt removes the given readings (matched by trace ID, wherever they
// sit: an eviction may have shifted the head while an upload was in
// flight) and logs their deletion. Compaction is the caller's affair —
// check compactDue afterwards and run it off the hot path.
func (s *spool) ackAt(rs []Reading, now time.Time) error {
	ids := make(map[trace.TraceID]struct{}, len(rs))
	for _, r := range rs {
		ids[r.Trace] = struct{}{}
	}
	kept := s.pending[:0]
	for _, p := range s.pending {
		if _, ok := ids[p.Trace]; !ok {
			kept = append(kept, p)
		}
	}
	s.pending = kept
	var firstErr error
	for _, r := range rs {
		if err := s.appendDel(r.Trace, now); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// compactDue reports whether dead records dominate the WAL enough to be
// worth rewriting — the trigger check is cheap and runs under the lock;
// the rewrite itself must not (see beginCompact).
func (s *spool) compactDue() bool {
	return s.f != nil && !s.compacting &&
		s.lines >= 1024 && s.lines >= 4*(len(s.pending)+1)
}

// compactState carries an in-progress compaction between the unlocked
// bulk write and finishCompact.
type compactState struct {
	tmp     string
	f       *os.File
	w       *bufio.Writer
	written int
	err     error
}

// beginCompact snapshots the pending queue and marks the compaction in
// progress. Runs under the owner's lock; returns ok=false when no
// compaction is due. From here until finishCompact, appends keep landing
// in the live WAL (nothing is lost to a crash mid-compaction) and are
// captured for the sidecar.
func (s *spool) beginCompact() ([]Reading, bool) {
	if !s.compactDue() {
		return nil, false
	}
	s.compacting = true
	return append([]Reading(nil), s.pending...), true
}

// writeCompactTmp bulk-writes the snapshot into the sidecar file. It
// touches no mutable spool state, so it runs WITHOUT the owner's lock —
// the whole point of the split: admissions and uplinks proceed while the
// O(capacity) rewrite happens here.
func (s *spool) writeCompactTmp(snap []Reading) *compactState {
	st := &compactState{tmp: s.path + ".compact"}
	nf, err := os.OpenFile(st.tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		st.err = fmt.Errorf("gateway: spool compact: %w", err)
		return st
	}
	st.f = nf
	st.w = bufio.NewWriter(nf)
	var buf []byte
	for i := range snap {
		buf = encodePut(buf[:0], &snap[i])
		if _, err := st.w.Write(buf); err != nil {
			st.err = fmt.Errorf("gateway: spool compact: %w", err)
			return st
		}
		st.written++
	}
	return st
}

// finishCompact appends the records logged during the bulk write, then
// atomically renames the sidecar over the live WAL and reopens it. Runs
// under the owner's lock; on any failure the live WAL (which kept
// receiving every append) stays authoritative and the sidecar is
// discarded.
func (s *spool) finishCompact(st *compactState) error {
	defer func() {
		s.compacting = false
		s.compactLog = nil
	}()
	fail := func(err error) error {
		if st.f != nil {
			st.f.Close()
		}
		os.Remove(st.tmp)
		return err
	}
	if st.err != nil {
		return fail(st.err)
	}
	for _, line := range s.compactLog {
		if _, err := st.w.Write(line); err != nil {
			return fail(fmt.Errorf("gateway: spool compact: %w", err))
		}
		st.written++
	}
	if err := st.w.Flush(); err != nil {
		return fail(fmt.Errorf("gateway: spool compact: %w", err))
	}
	if err := st.f.Close(); err != nil {
		st.f = nil
		return fail(fmt.Errorf("gateway: spool compact: %w", err))
	}
	if err := os.Rename(st.tmp, s.path); err != nil {
		os.Remove(st.tmp)
		return fmt.Errorf("gateway: spool compact: %w", err)
	}
	// The sidecar is now the log; retire the old handle. Its buffered
	// bytes (group commit) are superseded by the sidecar's contents.
	s.w.Flush()
	s.f.Close()
	s.dirty = false
	s.unflushed = 0
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.f = nil
		s.w = nil
		return fmt.Errorf("gateway: spool compact: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.lines = st.written
	// The dedup horizon intentionally survives compaction in memory only:
	// after a restart the horizon shrinks to the IDs still in the log,
	// trading perfect restart-dedup for a bounded file.
	s.reg.Counter("gw.spool.compactions").Inc()
	return nil
}

// compactBlocking runs a due compaction start to finish — for callers
// (and tests) that hold the spool exclusively anyway.
func (s *spool) compactBlocking() error {
	snap, ok := s.beginCompact()
	if !ok {
		return nil
	}
	return s.finishCompact(s.writeCompactTmp(snap))
}

// len returns the number of pending readings.
func (s *spool) len() int { return len(s.pending) }

// close flushes and closes the WAL.
func (s *spool) close() error {
	if s.f == nil {
		return nil
	}
	s.dirty = false
	s.unflushed = 0
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		s.f = nil
		s.w = nil
		return fmt.Errorf("gateway: spool: %w", err)
	}
	err := s.f.Close()
	s.f = nil
	s.w = nil
	if err != nil {
		return fmt.Errorf("gateway: spool: %w", err)
	}
	return nil
}

// crash abandons the WAL without flushing buffered appends — test and
// load-harness support for modeling a process crash under group commit:
// whatever sat in the writer buffer is lost, exactly as a real crash
// would lose it.
func (s *spool) crash() {
	if s.f != nil {
		s.f.Close()
	}
	s.f = nil
	s.w = nil
	s.dirty = false
	s.unflushed = 0
}
