package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// The spool is the gateway's durable uplink queue: a bounded in-memory
// FIFO mirrored by an append-only write-ahead log. Every admitted reading
// is appended as a "put" record before it becomes eligible for uplink;
// acknowledged (uploaded) and evicted readings append a "del" record. On
// open the log is replayed, so readings that were spooled but never
// acknowledged survive a process restart and upload then — no reading the
// mesh delivered is lost to a crash or a long backend outage.
//
// The log also persists the dedup horizon: every trace ID that ever
// entered the spool (uploaded, pending, or evicted) is remembered — up to
// a bounded horizon — so a reading re-delivered by the mesh after a
// restart is still recognized as a duplicate.
//
// Writes are flushed to the OS on every append (crash-of-process safe);
// the spool does not fsync, so power-loss durability is the file system's
// affair — the right trade for an edge bridge whose upstream retries
// anyway.

// walRecord is one WAL line.
type walRecord struct {
	// Op is "put" (reading admitted) or "del" (reading uploaded or
	// evicted; only Trace is set).
	Op      string   `json:"op"`
	Reading *Reading `json:"r,omitempty"`
	Trace   string   `json:"trace,omitempty"`
}

// spool is the bounded durable queue. It has no lock of its own: every
// method runs under the owning Gateway's mutex.
type spool struct {
	path     string // "" = memory-only
	capacity int
	policy   DropPolicy
	reg      *metrics.Registry

	f *os.File
	w *bufio.Writer

	pending []Reading // FIFO; head is the oldest admitted reading
	seen    map[trace.TraceID]struct{}
	// seenOrder evicts the oldest remembered IDs once the horizon fills,
	// bounding memory for long-running gateways.
	seenOrder []trace.TraceID
	seenCap   int

	lines    int // WAL records written since last compaction (incl. replayed)
	replayed int // pending readings recovered at open

	// validLen is the byte offset just past the last intact,
	// newline-terminated record seen during replay. A torn tail (crash
	// mid-append) is truncated back to this offset before the file is
	// reopened for append, so the next record never concatenates onto a
	// partial line.
	validLen int64
	// tail holds a final record that parsed completely but lost its
	// trailing newline to a crash; it is truncated away with the torn
	// bytes and re-appended once the writer is open.
	tail *walRecord
}

// spoolAdd is the outcome of an admission attempt.
type spoolAdd int

const (
	addOK spoolAdd = iota
	addDuplicate
	addRejected // DropNewest under a full queue
)

// openSpool opens (and replays) the WAL at path, or builds a memory-only
// spool when path is empty.
func openSpool(path string, capacity int, policy DropPolicy, seenCap int, reg *metrics.Registry) (*spool, error) {
	s := &spool{
		path:     path,
		capacity: capacity,
		policy:   policy,
		reg:      reg,
		seen:     make(map[trace.TraceID]struct{}),
		seenCap:  seenCap,
	}
	if path == "" {
		return s, nil
	}
	torn, err := s.replay()
	if err != nil {
		return nil, err
	}
	if torn {
		// Cut the torn tail off now, while nothing is appending: leaving
		// it would glue the next record onto the partial line and poison
		// the replay after the *next* restart.
		if err := os.Truncate(path, s.validLen); err != nil {
			return nil, fmt.Errorf("gateway: spool: truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("gateway: spool: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	if s.tail != nil {
		// The final record was complete but unterminated; it was truncated
		// with the torn bytes, so write it back properly framed.
		if err := s.append(*s.tail); err != nil {
			return nil, err
		}
		s.tail = nil
	}
	// Respect the capacity bound even across a config change: evict per
	// policy — with del records and counted drops, so the evictees neither
	// resurrect on the next replay nor vanish silently.
	for len(s.pending) > s.capacity {
		var ev Reading
		if s.policy == DropNewest {
			ev = s.pending[len(s.pending)-1]
			s.pending = s.pending[:len(s.pending)-1]
			s.reg.Counter("gw.drop.newest").Inc()
		} else {
			ev = s.pending[0]
			s.pending = s.pending[1:]
			s.reg.Counter("gw.drop.oldest").Inc()
		}
		if err := s.append(walRecord{Op: "del", Trace: ev.Trace.String()}); err != nil {
			return nil, err
		}
	}
	s.replayed = len(s.pending)
	return s, nil
}

// replay rebuilds the pending queue and dedup horizon from the WAL. A
// truncated final line (crash mid-append) is tolerated — torn reports it
// so openSpool truncates the file back to the last intact record before
// appending resumes. Any earlier malformed line is an error, because
// silently skipping it could drop data the log promised to keep.
func (s *spool) replay() (torn bool, err error) {
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("gateway: spool: %w", err)
	}
	defer f.Close()

	type slot struct {
		r    Reading
		live bool
	}
	var order []trace.TraceID
	slots := make(map[trace.TraceID]*slot)
	apply := func(rec walRecord, line int) error {
		switch rec.Op {
		case "put":
			if rec.Reading == nil {
				return fmt.Errorf("gateway: spool %s: put without reading at line %d", s.path, line)
			}
			id := rec.Reading.Trace
			if _, ok := slots[id]; !ok {
				order = append(order, id)
			}
			slots[id] = &slot{r: *rec.Reading, live: true}
			s.remember(id)
		case "del":
			id, err := trace.ParseTraceID(rec.Trace)
			if err != nil {
				return fmt.Errorf("gateway: spool %s: line %d: %w", s.path, line, err)
			}
			if sl, ok := slots[id]; ok {
				sl.live = false
			}
			s.remember(id)
		default:
			return fmt.Errorf("gateway: spool %s: unknown op %q at line %d", s.path, rec.Op, line)
		}
		return nil
	}

	br := bufio.NewReaderSize(f, 64*1024)
	lines := 0
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return false, fmt.Errorf("gateway: spool %s: %w", s.path, rerr)
		}
		terminated := rerr == nil
		raw := bytes.TrimSuffix(line, []byte{'\n'})
		if len(raw) > 0 {
			var rec walRecord
			if jerr := json.Unmarshal(raw, &rec); jerr != nil {
				if terminated {
					// A framed record that does not parse is corruption,
					// not a crash artifact.
					return false, fmt.Errorf("gateway: spool %s: malformed record at line %d", s.path, lines+1)
				}
				// Torn final record: the expected crash artifact. Drop the
				// partial bytes (the reading was never fully durable).
				torn = true
				break
			}
			if aerr := apply(rec, lines+1); aerr != nil {
				return false, aerr
			}
			lines++
			if !terminated {
				// Complete record, missing only its newline: keep it, but
				// have openSpool rewrite it properly framed (append will
				// re-count it, so it is not counted here).
				s.tail = &rec
				lines--
				torn = true
				break
			}
		}
		s.validLen += int64(len(line))
		if rerr == io.EOF {
			break
		}
	}
	for _, id := range order {
		if sl := slots[id]; sl.live {
			s.pending = append(s.pending, sl.r)
		}
	}
	s.lines = lines
	return torn, nil
}

// remember adds id to the bounded dedup horizon.
func (s *spool) remember(id trace.TraceID) {
	if _, ok := s.seen[id]; ok {
		return
	}
	s.seen[id] = struct{}{}
	s.seenOrder = append(s.seenOrder, id)
	for len(s.seenOrder) > s.seenCap {
		delete(s.seen, s.seenOrder[0])
		s.seenOrder = s.seenOrder[1:]
	}
}

// append writes one WAL record and flushes it to the OS.
func (s *spool) append(rec walRecord) error {
	if s.w == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("gateway: spool: %w", err)
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		return fmt.Errorf("gateway: spool: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("gateway: spool: %w", err)
	}
	s.lines++
	return nil
}

// add admits a reading: dedup against the horizon, then enqueue, evicting
// per policy when full. The evicted reading (DropOldest) is returned so
// the caller can record it. The in-memory queue is updated before the WAL
// is written: a failed append degrades durability (reported via err), but
// the admitted reading still uplinks from memory.
func (s *spool) add(r Reading) (res spoolAdd, evicted *Reading, err error) {
	if _, dup := s.seen[r.Trace]; dup {
		return addDuplicate, nil, nil
	}
	if len(s.pending) >= s.capacity {
		if s.policy == DropNewest {
			// The newcomer is rejected and deliberately NOT remembered:
			// if the mesh ever re-delivers it when there is room, it
			// should be admitted.
			return addRejected, nil, nil
		}
		old := s.pending[0]
		s.pending = s.pending[1:]
		evicted = &old
	}
	s.remember(r.Trace)
	s.pending = append(s.pending, r)
	var firstErr error
	if evicted != nil {
		if werr := s.append(walRecord{Op: "del", Trace: evicted.Trace.String()}); werr != nil {
			firstErr = werr
		}
	}
	if werr := s.append(walRecord{Op: "put", Reading: &r}); werr != nil && firstErr == nil {
		firstErr = werr
	}
	return addOK, evicted, firstErr
}

// peek returns up to n readings from the head without removing them.
func (s *spool) peek(n int) []Reading {
	if n > len(s.pending) {
		n = len(s.pending)
	}
	return append([]Reading(nil), s.pending[:n]...)
}

// ack removes the given readings (matched by trace ID, wherever they sit:
// an eviction may have shifted the head while an upload was in flight)
// and logs their deletion.
func (s *spool) ack(rs []Reading) error {
	ids := make(map[trace.TraceID]struct{}, len(rs))
	for _, r := range rs {
		ids[r.Trace] = struct{}{}
	}
	kept := s.pending[:0]
	for _, p := range s.pending {
		if _, ok := ids[p.Trace]; !ok {
			kept = append(kept, p)
		}
	}
	s.pending = kept
	var firstErr error
	for _, r := range rs {
		if err := s.append(walRecord{Op: "del", Trace: r.Trace.String()}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return s.maybeCompact()
}

// maybeCompact rewrites the WAL with only the pending readings once dead
// records dominate, bounding the file to O(capacity) instead of O(history).
func (s *spool) maybeCompact() error {
	if s.f == nil {
		return nil
	}
	if s.lines < 1024 || s.lines < 4*(len(s.pending)+1) {
		return nil
	}
	tmp := s.path + ".compact"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("gateway: spool compact: %w", err)
	}
	nw := bufio.NewWriter(nf)
	enc := json.NewEncoder(nw)
	written := 0
	for i := range s.pending {
		if err := enc.Encode(walRecord{Op: "put", Reading: &s.pending[i]}); err != nil {
			nf.Close()
			os.Remove(tmp)
			return fmt.Errorf("gateway: spool compact: %w", err)
		}
		written++
	}
	if err := nw.Flush(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("gateway: spool compact: %w", err)
	}
	if err := nf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("gateway: spool compact: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("gateway: spool compact: %w", err)
	}
	s.w.Flush()
	s.f.Close()
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("gateway: spool compact: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.lines = written
	// The dedup horizon intentionally survives compaction in memory only:
	// after a restart the horizon shrinks to the IDs still in the log,
	// trading perfect restart-dedup for a bounded file.
	s.reg.Counter("gw.spool.compactions").Inc()
	return nil
}

// len returns the number of pending readings.
func (s *spool) len() int { return len(s.pending) }

// close flushes and closes the WAL.
func (s *spool) close() error {
	if s.f == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("gateway: spool: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("gateway: spool: %w", err)
	}
	s.f = nil
	return nil
}
