package gateway

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func testReading(i int) Reading {
	return Reading{
		From:    0x0002,
		To:      0x0001,
		Trace:   trace.TraceID(0x1000 + i),
		Payload: []byte{byte(i), byte(i >> 8)},
		At:      time.Date(2022, 7, 1, 0, 0, i, 0, time.UTC),
	}
}

func TestSpoolMemoryOnlyFIFO(t *testing.T) {
	s, err := openSpool("", 4, DropOldest, 16, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if res, _, err := s.add(testReading(i)); res != addOK || err != nil {
			t.Fatalf("add %d: res=%v err=%v", i, res, err)
		}
	}
	if got := s.peek(2); len(got) != 2 || got[0].Trace != testReading(0).Trace {
		t.Fatalf("peek returned %v", got)
	}
	if err := s.ack(s.peek(2)); err != nil {
		t.Fatal(err)
	}
	if s.len() != 1 || s.peek(1)[0].Trace != testReading(2).Trace {
		t.Fatalf("after ack: len=%d", s.len())
	}
}

func TestSpoolDedup(t *testing.T) {
	s, err := openSpool("", 4, DropOldest, 16, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	r := testReading(1)
	if res, _, _ := s.add(r); res != addOK {
		t.Fatalf("first add: %v", res)
	}
	if res, _, _ := s.add(r); res != addDuplicate {
		t.Fatalf("second add: %v, want duplicate", res)
	}
	// Still a duplicate after upload: the horizon outlives the queue.
	if err := s.ack([]Reading{r}); err != nil {
		t.Fatal(err)
	}
	if res, _, _ := s.add(r); res != addDuplicate {
		t.Fatalf("post-ack add: %v, want duplicate", res)
	}
}

func TestSpoolDropPolicies(t *testing.T) {
	// DropOldest evicts the head and admits the newcomer.
	s, _ := openSpool("", 2, DropOldest, 16, metrics.NewRegistry())
	s.add(testReading(0))
	s.add(testReading(1))
	res, evicted, _ := s.add(testReading(2))
	if res != addOK || evicted == nil || evicted.Trace != testReading(0).Trace {
		t.Fatalf("DropOldest: res=%v evicted=%v", res, evicted)
	}
	if s.len() != 2 || s.peek(1)[0].Trace != testReading(1).Trace {
		t.Fatalf("DropOldest queue state wrong")
	}

	// DropNewest rejects the newcomer and forgets it, so it can return.
	s, _ = openSpool("", 2, DropNewest, 16, metrics.NewRegistry())
	s.add(testReading(0))
	s.add(testReading(1))
	if res, _, _ := s.add(testReading(2)); res != addRejected {
		t.Fatalf("DropNewest: %v, want rejected", res)
	}
	s.ack(s.peek(1))
	if res, _, _ := s.add(testReading(2)); res != addOK {
		t.Fatalf("DropNewest re-offer after space freed: %v, want ok", res)
	}
}

func TestSpoolReplayAfterRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.wal")
	s, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if res, _, err := s.add(testReading(i)); res != addOK || err != nil {
			t.Fatalf("add %d: res=%v err=%v", i, res, err)
		}
	}
	// Upload the first two, then "crash".
	if err := s.ack(s.peek(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}

	s2, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if s2.replayed != 3 || s2.len() != 3 {
		t.Fatalf("replayed %d pending, want 3", s2.len())
	}
	got := s2.peek(3)
	for i, r := range got {
		want := testReading(i + 2)
		if r.Trace != want.Trace || string(r.Payload) != string(want.Payload) || !r.At.Equal(want.At) {
			t.Errorf("replayed[%d] = %+v, want %+v", i, r, want)
		}
	}
	// Uploaded readings must still be recognized as duplicates.
	if res, _, _ := s2.add(testReading(0)); res != addDuplicate {
		t.Errorf("replayed horizon lost an uploaded ID")
	}
}

func TestSpoolReplayToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.wal")
	s, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	s.add(testReading(0))
	s.add(testReading(1))
	if err := s.close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unterminated record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"put","r":{"from":2,"to"`)
	f.Close()

	s2, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatalf("torn tail must not poison the spool: %v", err)
	}
	if s2.len() != 2 {
		t.Fatalf("replayed %d, want the 2 intact readings", s2.len())
	}
}

func TestSpoolTornTailTruncatedBeforeAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.wal")
	s, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	s.add(testReading(0))
	s.add(testReading(1))
	if err := s.close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"put","r":{"from":2,"to"`)
	f.Close()

	// First restart tolerates the torn tail and must truncate it, so the
	// next append starts on a fresh line.
	s2, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if s2.len() != 2 {
		t.Fatalf("replayed %d, want 2", s2.len())
	}
	if res, _, err := s2.add(testReading(2)); res != addOK || err != nil {
		t.Fatalf("post-torn add: res=%v err=%v", res, err)
	}
	if err := s2.close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: without truncation the new record would have been
	// glued onto the partial line — replay would fail or drop it.
	s3, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatalf("second replay after torn tail: %v", err)
	}
	if s3.len() != 3 {
		t.Fatalf("second replay recovered %d readings, want 3", s3.len())
	}
	if got := s3.peek(3)[2].Trace; got != testReading(2).Trace {
		t.Fatalf("post-torn record lost: tail trace %v", got)
	}
}

func TestSpoolUnterminatedFinalRecordKept(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.wal")
	s, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	s.add(testReading(0))
	s.add(testReading(1))
	if err := s.close(); err != nil {
		t.Fatal(err)
	}
	// Crash exactly between the record bytes and the newline: the final
	// record is complete JSON but unframed.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if s2.len() != 2 {
		t.Fatalf("replayed %d, want both readings (unterminated final record dropped?)", s2.len())
	}
	if err := s2.close(); err != nil {
		t.Fatal(err)
	}
	// The record must have been rewritten properly framed.
	s3, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if s3.len() != 2 {
		t.Fatalf("re-replay recovered %d readings, want 2", s3.len())
	}
}

func TestSpoolReplayTrimWritesDels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.wal")
	s, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.add(testReading(i))
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}

	// Reopen under a shrunk capacity: the trim must count its drops and
	// log del records so the evictees stay dead.
	reg := metrics.NewRegistry()
	s2, err := openSpool(path, 2, DropOldest, 64, reg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.len() != 2 || s2.replayed != 2 {
		t.Fatalf("trimmed replay: len=%d replayed=%d, want 2", s2.len(), s2.replayed)
	}
	if got := reg.Counter("gw.drop.oldest").Value(); got != 3 {
		t.Fatalf("trim dropped 3 readings but counted %d", got)
	}
	if err := s2.close(); err != nil {
		t.Fatal(err)
	}
	// A later restart with the original capacity must not resurrect them.
	s3, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if s3.len() != 2 {
		t.Fatalf("trimmed readings resurrected: len=%d, want 2", s3.len())
	}
}

func TestSpoolAddKeepsReadingOnWALError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.wal")
	s, err := openSpool(path, 16, DropOldest, 64, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the WAL: every flush now fails.
	s.f.Close()
	res, _, err := s.add(testReading(0))
	if res != addOK {
		t.Fatalf("add under WAL failure: res=%v, want ok", res)
	}
	if err == nil {
		t.Fatal("add under WAL failure reported no error")
	}
	// Durability degraded; delivery must not: the reading is queued.
	if s.len() != 1 || s.peek(1)[0].Trace != testReading(0).Trace {
		t.Fatalf("reading lost on WAL failure: len=%d", s.len())
	}
}

func TestSpoolCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.wal")
	reg := metrics.NewRegistry()
	s, err := openSpool(path, 8, DropOldest, 4096, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Push enough churn through to cross the compaction threshold,
	// driving the rewrite the way the gateway does: check the trigger
	// after each ack and run the begin/write/finish cycle when due.
	for i := 0; i < 700; i++ {
		if res, _, err := s.add(testReading(i)); res != addOK || err != nil {
			t.Fatalf("add %d: res=%v err=%v", i, res, err)
		}
		if err := s.ack(s.peek(1)); err != nil {
			t.Fatal(err)
		}
		if err := s.compactBlocking(); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Counter("gw.spool.compactions").Value() == 0 {
		t.Fatal("no compaction after 1400 WAL records")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 64*1024 {
		t.Fatalf("WAL grew to %d bytes despite compaction", fi.Size())
	}
	// The compacted log must still replay correctly.
	s.add(testReading(9000))
	s.close()
	s2, err := openSpool(path, 8, DropOldest, 4096, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if s2.len() != 1 || s2.peek(1)[0].Trace != testReading(9000).Trace {
		t.Fatalf("post-compaction replay: len=%d", s2.len())
	}
}

func TestSpoolSeenHorizonBounded(t *testing.T) {
	s, _ := openSpool("", 4, DropOldest, 8, metrics.NewRegistry())
	for i := 0; i < 100; i++ {
		s.add(testReading(i))
		s.ack(s.peek(1))
	}
	if len(s.seen) > 8 || len(s.seenOrder) > 8 {
		t.Fatalf("horizon grew to %d, cap 8", len(s.seen))
	}
	// An ID evicted from the horizon is admissible again.
	if res, _, _ := s.add(testReading(0)); res != addOK {
		t.Fatalf("evicted-horizon re-add: %v, want ok", res)
	}
}
