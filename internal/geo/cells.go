// cells.go — uniform spatial cell grid for range-bounded neighbor queries.
//
// A CellGrid partitions an axis-aligned rectangle into square cells whose
// side is at least the maximum radio-relevant distance (delivery or
// interference range, plus any shadowing margin). Under that sizing
// invariant, every station a transmission can reach lies in the 3x3 cell
// neighborhood of the sender's cell, which turns the O(n) per-transmission
// station scan into an O(density) one. The city-scale simulator
// (internal/citysim) shards the grid by contiguous cell columns; airmedium
// keeps its own sparse variant because its stations have no field bounds.

package geo

import (
	"fmt"
	"math"
)

// CellGrid is a uniform partition of [minX,maxX] x [minY,maxY] into square
// cells of side Cell meters, indexed row-major: cell = row*cols + col.
// The zero value is not usable; construct with NewCellGrid.
type CellGrid struct {
	minX, minY float64
	cell       float64
	cols, rows int
}

// NewCellGrid builds a grid covering the given rectangle with square cells
// of side cellMeters. Points outside the rectangle clamp to the border
// cells, so callers with floating-point jitter at the field edge stay safe.
func NewCellGrid(minX, minY, maxX, maxY, cellMeters float64) (CellGrid, error) {
	if cellMeters <= 0 {
		return CellGrid{}, fmt.Errorf("geo: cell size %v must be positive", cellMeters)
	}
	if maxX < minX || maxY < minY {
		return CellGrid{}, fmt.Errorf("geo: inverted field [%v,%v]x[%v,%v]", minX, maxX, minY, maxY)
	}
	cols := int(math.Ceil((maxX - minX) / cellMeters))
	rows := int(math.Ceil((maxY - minY) / cellMeters))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return CellGrid{minX: minX, minY: minY, cell: cellMeters, cols: cols, rows: rows}, nil
}

// Cols returns the number of cell columns.
func (g CellGrid) Cols() int { return g.cols }

// Rows returns the number of cell rows.
func (g CellGrid) Rows() int { return g.rows }

// NumCells returns the total cell count.
func (g CellGrid) NumCells() int { return g.cols * g.rows }

// CellSize returns the cell side length in meters.
func (g CellGrid) CellSize() float64 { return g.cell }

// CellOf returns the cell index containing p, clamping out-of-field points
// to the border cells.
func (g CellGrid) CellOf(p Point) int {
	col := int((p.X - g.minX) / g.cell)
	row := int((p.Y - g.minY) / g.cell)
	if col < 0 {
		col = 0
	} else if col >= g.cols {
		col = g.cols - 1
	}
	if row < 0 {
		row = 0
	} else if row >= g.rows {
		row = g.rows - 1
	}
	return row*g.cols + col
}

// ColRow splits a cell index into its column and row.
func (g CellGrid) ColRow(cell int) (col, row int) {
	return cell % g.cols, cell / g.cols
}

// ForNeighbors calls fn for every existing cell in the 3x3 neighborhood of
// cell (including cell itself), in row-major order. The fixed order keeps
// iteration deterministic for digest-sensitive callers.
func (g CellGrid) ForNeighbors(cell int, fn func(cell int)) {
	col, row := g.ColRow(cell)
	for dr := -1; dr <= 1; dr++ {
		r := row + dr
		if r < 0 || r >= g.rows {
			continue
		}
		for dc := -1; dc <= 1; dc++ {
			c := col + dc
			if c < 0 || c >= g.cols {
				continue
			}
			fn(r*g.cols + c)
		}
	}
}
