package geo

import (
	"math/rand"
	"testing"
)

func TestCellGridCover(t *testing.T) {
	g, err := NewCellGrid(0, 0, 1000, 600, 250)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols() != 4 || g.Rows() != 3 || g.NumCells() != 12 {
		t.Fatalf("got %dx%d cells, want 4x3", g.Cols(), g.Rows())
	}
	// Corners land in the corner cells; out-of-field points clamp.
	if c := g.CellOf(Point{0, 0}); c != 0 {
		t.Fatalf("origin in cell %d, want 0", c)
	}
	if c := g.CellOf(Point{999, 599}); c != 11 {
		t.Fatalf("far corner in cell %d, want 11", c)
	}
	if c := g.CellOf(Point{-50, -50}); c != 0 {
		t.Fatalf("clamped point in cell %d, want 0", c)
	}
	if c := g.CellOf(Point{5000, 5000}); c != 11 {
		t.Fatalf("clamped point in cell %d, want 11", c)
	}
}

func TestCellGridDegenerate(t *testing.T) {
	if _, err := NewCellGrid(0, 0, 100, 100, 0); err == nil {
		t.Fatal("zero cell size accepted")
	}
	if _, err := NewCellGrid(100, 0, 0, 100, 10); err == nil {
		t.Fatal("inverted field accepted")
	}
	// A field smaller than one cell still yields a 1x1 grid.
	g, err := NewCellGrid(0, 0, 5, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 1 {
		t.Fatalf("tiny field has %d cells, want 1", g.NumCells())
	}
	g.ForNeighbors(0, func(c int) {
		if c != 0 {
			t.Fatalf("1x1 grid visited cell %d", c)
		}
	})
}

// TestCellGridNeighborInvariant is the sizing contract the simulators rely
// on: any two points within one cell side of each other live in cells that
// are 3x3 neighbors.
func TestCellGridNeighborInvariant(t *testing.T) {
	const side = 300.0
	g, err := NewCellGrid(0, 0, 3000, 3000, side)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := Point{rng.Float64() * 3000, rng.Float64() * 3000}
		b := Point{a.X + (rng.Float64()*2-1)*side, a.Y + (rng.Float64()*2-1)*side}
		if a.Distance(b) > side {
			continue
		}
		found := false
		g.ForNeighbors(g.CellOf(a), func(c int) {
			if c == g.CellOf(b) {
				found = true
			}
		})
		if !found {
			t.Fatalf("points %v and %v at distance %.1f not cell neighbors", a, b, a.Distance(b))
		}
	}
}

func TestCellGridNeighborsDeterministicOrder(t *testing.T) {
	g, err := NewCellGrid(0, 0, 1000, 1000, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Interior cell: full 3x3 block in row-major order.
	var got []int
	g.ForNeighbors(g.CellOf(Point{500, 500}), func(c int) { got = append(got, c) })
	want := []int{6, 7, 8, 11, 12, 13, 16, 17, 18}
	if len(got) != len(want) {
		t.Fatalf("interior neighborhood %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interior neighborhood %v, want %v", got, want)
		}
	}
	// Corner cell: clipped to the field.
	got = got[:0]
	g.ForNeighbors(0, func(c int) { got = append(got, c) })
	want = []int{0, 1, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("corner neighborhood %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("corner neighborhood %v, want %v", got, want)
		}
	}
}
