// Package geo provides 2-D node placement and deterministic topology
// generators for mesh experiments. The demo paper's physical testbed is one
// instance of a connectivity graph; these generators reproduce the same
// multi-hop structures (chains, grids, random fields) with controllable
// size and density, under explicit seeds so every experiment is
// reproducible.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q in meters.
func (p Point) Distance(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Topology is a set of node placements. Index i is node i's position; the
// caller maps indices to protocol addresses.
type Topology struct {
	// Name describes the generator and parameters, for traces.
	Name string
	// Positions holds one point per node.
	Positions []Point
}

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.Positions) }

// Line places n nodes on a straight line with the given spacing, starting
// at the origin. With spacing chosen near the radio range it produces the
// canonical multi-hop chain used in the delivery-vs-hops experiments.
func Line(n int, spacingMeters float64) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("geo: line topology needs n >= 1, got %d", n)
	}
	if spacingMeters <= 0 {
		return nil, fmt.Errorf("geo: line spacing %v must be positive", spacingMeters)
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: float64(i) * spacingMeters}
	}
	return &Topology{Name: fmt.Sprintf("line(n=%d,d=%.0fm)", n, spacingMeters), Positions: pts}, nil
}

// Ring places n nodes evenly on a circle of the given radius.
func Ring(n int, radiusMeters float64) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("geo: ring topology needs n >= 1, got %d", n)
	}
	if radiusMeters <= 0 {
		return nil, fmt.Errorf("geo: ring radius %v must be positive", radiusMeters)
	}
	pts := make([]Point, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = Point{X: radiusMeters * math.Cos(a), Y: radiusMeters * math.Sin(a)}
	}
	return &Topology{Name: fmt.Sprintf("ring(n=%d,r=%.0fm)", n, radiusMeters), Positions: pts}, nil
}

// Grid places rows*cols nodes on a rectangular lattice with the given
// spacing.
func Grid(rows, cols int, spacingMeters float64) (*Topology, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("geo: grid needs positive dimensions, got %dx%d", rows, cols)
	}
	if spacingMeters <= 0 {
		return nil, fmt.Errorf("geo: grid spacing %v must be positive", spacingMeters)
	}
	pts := make([]Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, Point{X: float64(c) * spacingMeters, Y: float64(r) * spacingMeters})
		}
	}
	return &Topology{Name: fmt.Sprintf("grid(%dx%d,d=%.0fm)", rows, cols, spacingMeters), Positions: pts}, nil
}

// Star places one hub at the origin and n-1 spokes on a circle around it.
func Star(n int, radiusMeters float64) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("geo: star needs n >= 2, got %d", n)
	}
	ring, err := Ring(n-1, radiusMeters)
	if err != nil {
		return nil, err
	}
	pts := append([]Point{{}}, ring.Positions...)
	return &Topology{Name: fmt.Sprintf("star(n=%d,r=%.0fm)", n, radiusMeters), Positions: pts}, nil
}

// RandomGeometric scatters n nodes uniformly in a width x height field,
// using the seed for reproducibility.
func RandomGeometric(n int, widthMeters, heightMeters float64, seed int64) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("geo: random topology needs n >= 1, got %d", n)
	}
	if widthMeters <= 0 || heightMeters <= 0 {
		return nil, fmt.Errorf("geo: field %vx%v must be positive", widthMeters, heightMeters)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * widthMeters, Y: rng.Float64() * heightMeters}
	}
	return &Topology{
		Name:      fmt.Sprintf("random(n=%d,%gx%gm,seed=%d)", n, widthMeters, heightMeters, seed),
		Positions: pts,
	}, nil
}

// ConnectedRandomGeometric draws random geometric topologies until one is
// connected under the given radio range, bumping the seed each attempt.
// It fails after maxTries attempts so impossible densities surface as
// errors instead of spinning forever.
func ConnectedRandomGeometric(n int, widthMeters, heightMeters, rangeMeters float64, seed int64, maxTries int) (*Topology, error) {
	if maxTries < 1 {
		maxTries = 100
	}
	for i := 0; i < maxTries; i++ {
		topo, err := RandomGeometric(n, widthMeters, heightMeters, seed+int64(i))
		if err != nil {
			return nil, err
		}
		if Connected(topo, rangeMeters) {
			return topo, nil
		}
	}
	return nil, fmt.Errorf("geo: no connected random topology with n=%d field=%gx%g range=%g after %d tries",
		n, widthMeters, heightMeters, rangeMeters, maxTries)
}

// Cluster places k clusters of nodes; each cluster center is uniform in the
// field and members are Gaussian around it with the given spread. Models
// the "groups of sensors per building" deployments from the motivation.
func Cluster(n, k int, widthMeters, heightMeters, spreadMeters float64, seed int64) (*Topology, error) {
	if n < 1 || k < 1 || k > n {
		return nil, fmt.Errorf("geo: cluster needs 1 <= k <= n, got n=%d k=%d", n, k)
	}
	if widthMeters <= 0 || heightMeters <= 0 || spreadMeters <= 0 {
		return nil, fmt.Errorf("geo: cluster dimensions must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Point, k)
	for i := range centers {
		centers[i] = Point{X: rng.Float64() * widthMeters, Y: rng.Float64() * heightMeters}
	}
	pts := make([]Point, n)
	for i := range pts {
		c := centers[i%k]
		pts[i] = Point{
			X: clamp(c.X+rng.NormFloat64()*spreadMeters, 0, widthMeters),
			Y: clamp(c.Y+rng.NormFloat64()*spreadMeters, 0, heightMeters),
		}
	}
	return &Topology{
		Name:      fmt.Sprintf("cluster(n=%d,k=%d,seed=%d)", n, k, seed),
		Positions: pts,
	}, nil
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}
