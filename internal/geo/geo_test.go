package geo

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestLine(t *testing.T) {
	topo, err := Line(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 4 {
		t.Fatalf("N = %d, want 4", topo.N())
	}
	for i, p := range topo.Positions {
		if p.X != float64(i)*100 || p.Y != 0 {
			t.Errorf("node %d at %v, want (%d,0)", i, p, i*100)
		}
	}
	if _, err := Line(0, 100); err == nil {
		t.Error("Line(0): want error")
	}
	if _, err := Line(3, -1); err == nil {
		t.Error("Line negative spacing: want error")
	}
}

func TestRingEquidistantFromCenter(t *testing.T) {
	topo, err := Ring(8, 250)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range topo.Positions {
		if d := p.Distance(Point{}); math.Abs(d-250) > 1e-9 {
			t.Errorf("node %d at radius %v, want 250", i, d)
		}
	}
}

func TestGrid(t *testing.T) {
	topo, err := Grid(3, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 12 {
		t.Fatalf("N = %d, want 12", topo.N())
	}
	// Corner-to-corner distance.
	want := math.Hypot(3*50, 2*50)
	if d := topo.Positions[0].Distance(topo.Positions[11]); math.Abs(d-want) > 1e-9 {
		t.Errorf("diagonal = %v, want %v", d, want)
	}
}

func TestStar(t *testing.T) {
	topo, err := Star(5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 5 {
		t.Fatalf("N = %d, want 5", topo.N())
	}
	if (topo.Positions[0] != Point{}) {
		t.Errorf("hub at %v, want origin", topo.Positions[0])
	}
	for i := 1; i < 5; i++ {
		if d := topo.Positions[i].Distance(Point{}); math.Abs(d-300) > 1e-9 {
			t.Errorf("spoke %d at radius %v, want 300", i, d)
		}
	}
}

func TestRandomGeometricDeterministic(t *testing.T) {
	a, err := RandomGeometric(20, 1000, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomGeometric(20, 1000, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("same seed produced different positions at %d", i)
		}
	}
	c, err := RandomGeometric(20, 1000, 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Positions {
		if a.Positions[i] != c.Positions[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestRandomGeometricInBounds(t *testing.T) {
	f := func(seed int64) bool {
		topo, err := RandomGeometric(30, 500, 200, seed)
		if err != nil {
			return false
		}
		for _, p := range topo.Positions {
			if p.X < 0 || p.X > 500 || p.Y < 0 || p.Y > 200 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConnectedLineChain(t *testing.T) {
	topo, err := Line(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !Connected(topo, 100) {
		t.Error("chain with spacing = range should be connected")
	}
	if Connected(topo, 99) {
		t.Error("chain with spacing > range should be disconnected")
	}
}

func TestConnectedRandomGeometric(t *testing.T) {
	topo, err := ConnectedRandomGeometric(15, 1000, 1000, 400, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !Connected(topo, 400) {
		t.Error("ConnectedRandomGeometric returned disconnected topology")
	}
	// Impossible density errors out rather than spinning.
	if _, err := ConnectedRandomGeometric(50, 100000, 100000, 10, 1, 5); err == nil {
		t.Error("impossible density: want error")
	}
}

func TestHopDistancesChain(t *testing.T) {
	topo, err := Line(6, 100)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := HopDistances(topo, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dist {
		if d != i {
			t.Errorf("hop distance to node %d = %d, want %d", i, d, i)
		}
	}
	if _, err := HopDistances(topo, 100, 9); err == nil {
		t.Error("out-of-range source: want error")
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	topo := &Topology{Positions: []Point{{0, 0}, {1000, 0}}}
	dist, err := HopDistances(topo, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[1] != -1 {
		t.Errorf("unreachable node distance = %d, want -1", dist[1])
	}
}

func TestDiameter(t *testing.T) {
	topo, err := Line(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diameter(topo, 100); d != 6 {
		t.Errorf("chain diameter = %d, want 6", d)
	}
	if d := Diameter(topo, 50); d != -1 {
		t.Errorf("disconnected diameter = %d, want -1", d)
	}
	full, err := Grid(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diameter(full, 100); d != 1 {
		t.Errorf("clique diameter = %d, want 1", d)
	}
}

func TestMeanDegree(t *testing.T) {
	topo, err := Line(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Degrees 1,2,1 → mean 4/3.
	if got := MeanDegree(topo, 100); math.Abs(got-4.0/3.0) > 1e-9 {
		t.Errorf("mean degree = %v, want 4/3", got)
	}
	if got := MeanDegree(&Topology{}, 100); got != 0 {
		t.Errorf("empty mean degree = %v, want 0", got)
	}
}

func TestCluster(t *testing.T) {
	topo, err := Cluster(20, 4, 1000, 1000, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 20 {
		t.Fatalf("N = %d, want 20", topo.N())
	}
	for _, p := range topo.Positions {
		if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 1000 {
			t.Errorf("cluster node %v out of field", p)
		}
	}
	if _, err := Cluster(3, 5, 1000, 1000, 50, 3); err == nil {
		t.Error("k > n: want error")
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	topo, err := RandomGeometric(25, 800, 800, 11)
	if err != nil {
		t.Fatal(err)
	}
	adj := Neighbors(topo, 300)
	for i, neigh := range adj {
		for _, j := range neigh {
			found := false
			for _, k := range adj[j] {
				if k == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d->%d", i, j)
			}
		}
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	orig, err := RandomGeometric(7, 1000, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.N() != orig.N() {
		t.Fatalf("round trip changed shape: %q/%d vs %q/%d", got.Name, got.N(), orig.Name, orig.N())
	}
	for i := range orig.Positions {
		if got.Positions[i] != orig.Positions[i] {
			t.Errorf("position %d = %v, want %v", i, got.Positions[i], orig.Positions[i])
		}
	}
	// Rejects junk and empty documents.
	if _, err := ReadJSON(strings.NewReader(`{"positions": []}`)); err == nil {
		t.Error("empty topology: want error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown field: want error")
	}
}

func TestTopologyFileRoundTrip(t *testing.T) {
	orig, err := Line(4, 500)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 4 || got.Positions[3].X != 1500 {
		t.Errorf("loaded topology = %+v", got)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
}
