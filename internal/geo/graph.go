package geo

import "fmt"

// Neighbors returns, for each node, the indices of nodes within
// rangeMeters (excluding itself). The result is a unit-disk connectivity
// graph — the idealized view used for sanity checks; the actual simulator
// decides reachability from the link budget.
func Neighbors(t *Topology, rangeMeters float64) [][]int {
	// Two passes — count degrees, then fill rows carved from one flat
	// backing array. Topology generators call this hundreds of times
	// while searching for a connected placement, and append-grown rows
	// made it the dominant setup allocator.
	n := t.N()
	deg := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if t.Positions[i].Distance(t.Positions[j]) <= rangeMeters {
				deg[i]++
				deg[j]++
				total += 2
			}
		}
	}
	adj := make([][]int, n)
	flat := make([]int, total)
	off := 0
	for i, d := range deg {
		adj[i] = flat[off : off : off+d]
		off += d
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if t.Positions[i].Distance(t.Positions[j]) <= rangeMeters {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj
}

// Connected reports whether the unit-disk graph at rangeMeters is a single
// connected component.
func Connected(t *Topology, rangeMeters float64) bool {
	n := t.N()
	if n == 0 {
		return true
	}
	adj := Neighbors(t, rangeMeters)
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// HopDistances returns the BFS hop count from src to every node in the
// unit-disk graph, or -1 where unreachable.
func HopDistances(t *Topology, rangeMeters float64, src int) ([]int, error) {
	n := t.N()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("geo: source index %d out of range [0,%d)", src, n)
	}
	adj := Neighbors(t, rangeMeters)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist, nil
}

// Diameter returns the longest shortest-path hop count in the unit-disk
// graph, or -1 if the graph is disconnected.
func Diameter(t *Topology, rangeMeters float64) int {
	max := 0
	for i := 0; i < t.N(); i++ {
		dist, err := HopDistances(t, rangeMeters, i)
		if err != nil {
			return -1
		}
		for _, d := range dist {
			if d == -1 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// MeanDegree returns the average neighbor count at rangeMeters.
func MeanDegree(t *Topology, rangeMeters float64) float64 {
	if t.N() == 0 {
		return 0
	}
	adj := Neighbors(t, rangeMeters)
	total := 0
	for _, a := range adj {
		total += len(a)
	}
	return float64(total) / float64(t.N())
}
