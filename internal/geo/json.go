package geo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Topologies serialize to a small JSON document so a measured deployment
// (or a generated field someone wants to pin) can be saved and replayed:
//
//	{"name": "campus", "positions": [{"x":0,"y":0}, {"x":8000,"y":0}]}

// topologyJSON is the wire form of a Topology.
type topologyJSON struct {
	Name      string      `json:"name"`
	Positions []pointJSON `json:"positions"`
}

type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// WriteJSON serializes the topology.
func (t *Topology) WriteJSON(w io.Writer) error {
	doc := topologyJSON{Name: t.Name, Positions: make([]pointJSON, len(t.Positions))}
	for i, p := range t.Positions {
		doc.Positions[i] = pointJSON{X: p.X, Y: p.Y}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("geo: encoding topology: %w", err)
	}
	return nil
}

// ReadJSON deserializes a topology.
func ReadJSON(r io.Reader) (*Topology, error) {
	var doc topologyJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("geo: decoding topology: %w", err)
	}
	if len(doc.Positions) == 0 {
		return nil, fmt.Errorf("geo: topology %q has no positions", doc.Name)
	}
	t := &Topology{Name: doc.Name, Positions: make([]Point, len(doc.Positions))}
	for i, p := range doc.Positions {
		t.Positions[i] = Point{X: p.X, Y: p.Y}
	}
	return t, nil
}

// SaveFile writes the topology to path.
func (t *Topology) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("geo: %w", err)
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a topology from path.
func LoadFile(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("geo: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
