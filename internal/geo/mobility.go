package geo

import (
	"fmt"
	"math/rand"
	"time"
)

// Mobility steps node positions through time. Implementations are pure
// state machines driven by the simulation clock, so runs stay
// deterministic per seed.
type Mobility interface {
	// Step returns node i's new position after dt starting from cur.
	Step(i int, cur Point, dt time.Duration) Point
}

// RandomWaypoint is the classic mobility model: each node picks a uniform
// waypoint in the field, travels there at a uniform-random speed, pauses,
// and repeats.
type RandomWaypoint struct {
	width, height      float64
	minSpeed, maxSpeed float64 // meters/second
	pause              time.Duration
	rng                *rand.Rand
	states             []waypointState
}

type waypointState struct {
	target    Point
	speed     float64 // m/s
	hasTarget bool
	pauseLeft time.Duration
}

// NewRandomWaypoint builds a model for n nodes roaming a width x height
// field at speeds in [minSpeed, maxSpeed] m/s with the given pause at each
// waypoint.
func NewRandomWaypoint(n int, width, height, minSpeed, maxSpeed float64, pause time.Duration, seed int64) (*RandomWaypoint, error) {
	if n < 1 {
		return nil, fmt.Errorf("geo: mobility needs n >= 1, got %d", n)
	}
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("geo: mobility field %vx%v must be positive", width, height)
	}
	if minSpeed <= 0 || maxSpeed < minSpeed {
		return nil, fmt.Errorf("geo: mobility speeds [%v,%v] invalid", minSpeed, maxSpeed)
	}
	if pause < 0 {
		return nil, fmt.Errorf("geo: negative pause %v", pause)
	}
	return &RandomWaypoint{
		width:    width,
		height:   height,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		pause:    pause,
		rng:      rand.New(rand.NewSource(seed)),
		states:   make([]waypointState, n),
	}, nil
}

var _ Mobility = (*RandomWaypoint)(nil)

// Step implements Mobility.
func (m *RandomWaypoint) Step(i int, cur Point, dt time.Duration) Point {
	if i < 0 || i >= len(m.states) || dt <= 0 {
		return cur
	}
	st := &m.states[i]
	remaining := dt
	for remaining > 0 {
		if st.pauseLeft > 0 {
			if st.pauseLeft >= remaining {
				st.pauseLeft -= remaining
				return cur
			}
			remaining -= st.pauseLeft
			st.pauseLeft = 0
		}
		if !st.hasTarget {
			st.target = Point{X: m.rng.Float64() * m.width, Y: m.rng.Float64() * m.height}
			st.speed = m.minSpeed + m.rng.Float64()*(m.maxSpeed-m.minSpeed)
			st.hasTarget = true
		}
		dist := cur.Distance(st.target)
		travel := st.speed * remaining.Seconds()
		if travel >= dist {
			// Arrive, spend the proportional time, then pause.
			if st.speed > 0 {
				used := time.Duration(dist / st.speed * float64(time.Second))
				remaining -= used
			} else {
				remaining = 0
			}
			cur = st.target
			st.hasTarget = false
			st.pauseLeft = m.pause
			continue
		}
		frac := travel / dist
		cur = Point{
			X: cur.X + (st.target.X-cur.X)*frac,
			Y: cur.Y + (st.target.Y-cur.Y)*frac,
		}
		remaining = 0
	}
	return cur
}
