package geo

import (
	"math"
	"testing"
	"time"
)

func TestRandomWaypointValidation(t *testing.T) {
	if _, err := NewRandomWaypoint(0, 100, 100, 1, 2, 0, 1); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := NewRandomWaypoint(3, -1, 100, 1, 2, 0, 1); err == nil {
		t.Error("negative field: want error")
	}
	if _, err := NewRandomWaypoint(3, 100, 100, 2, 1, 0, 1); err == nil {
		t.Error("max < min speed: want error")
	}
	if _, err := NewRandomWaypoint(3, 100, 100, 1, 2, -time.Second, 1); err == nil {
		t.Error("negative pause: want error")
	}
}

func TestRandomWaypointStaysInField(t *testing.T) {
	m, err := NewRandomWaypoint(4, 1000, 500, 1, 10, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	pos := []Point{{0, 0}, {500, 250}, {999, 499}, {100, 400}}
	for step := 0; step < 500; step++ {
		for i := range pos {
			pos[i] = m.Step(i, pos[i], 10*time.Second)
			p := pos[i]
			if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 500 {
				t.Fatalf("node %d left the field at %v (step %d)", i, p, step)
			}
		}
	}
}

func TestRandomWaypointSpeedBound(t *testing.T) {
	m, err := NewRandomWaypoint(1, 10000, 10000, 2, 5, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	cur := Point{5000, 5000}
	dt := 7 * time.Second
	for step := 0; step < 200; step++ {
		next := m.Step(0, cur, dt)
		if d := cur.Distance(next); d > 5*dt.Seconds()+1e-6 {
			t.Fatalf("moved %v m in %v at max speed 5 m/s", d, dt)
		}
		cur = next
	}
}

func TestRandomWaypointPauses(t *testing.T) {
	// With an enormous pause, a node that reaches its first waypoint must
	// stay put.
	m, err := NewRandomWaypoint(1, 100, 100, 50, 50, time.Hour, 5)
	if err != nil {
		t.Fatal(err)
	}
	cur := Point{50, 50}
	// At 50 m/s in a 100 m field, any waypoint is reached within ~3 s.
	cur = m.Step(0, cur, 10*time.Second)
	arrived := cur
	for i := 0; i < 10; i++ {
		cur = m.Step(0, cur, 10*time.Second)
	}
	if cur != arrived {
		t.Errorf("node moved during pause: %v -> %v", arrived, cur)
	}
}

func TestRandomWaypointActuallyMoves(t *testing.T) {
	m, err := NewRandomWaypoint(1, 10000, 10000, 5, 5, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	start := Point{5000, 5000}
	cur := start
	var travelled float64
	for i := 0; i < 100; i++ {
		next := m.Step(0, cur, time.Minute)
		travelled += cur.Distance(next)
		cur = next
	}
	// 100 minutes at 5 m/s with no pause ≈ 30 km of travel.
	if travelled < 25000 {
		t.Errorf("travelled only %v m in 100 min at 5 m/s", travelled)
	}
	if math.Abs(cur.X-start.X)+math.Abs(cur.Y-start.Y) < 1 {
		t.Error("node ended exactly where it started; suspicious")
	}
}

func TestRandomWaypointIgnoresBadInput(t *testing.T) {
	m, err := NewRandomWaypoint(2, 100, 100, 1, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := Point{10, 10}
	if got := m.Step(-1, p, time.Second); got != p {
		t.Error("negative index should be a no-op")
	}
	if got := m.Step(5, p, time.Second); got != p {
		t.Error("out-of-range index should be a no-op")
	}
	if got := m.Step(0, p, 0); got != p {
		t.Error("zero dt should be a no-op")
	}
}
