// Package health is the mesh's always-on self-diagnosis: the invariant
// checks that previously existed only as test-time assertions
// (netsim.CheckInvariants / CheckRoutingLoops) promoted into a runtime
// monitor. A Monitor periodically walks every node's routing table and
// counter deltas to detect
//
//   - routing loops (a next-hop walk revisits a node),
//   - blackholes (a route's next hop is dead or unknown),
//   - silent nodes (no tx/rx progress across consecutive polls),
//   - stuck duty-cycle budgets (utilization pinned at the cap while the
//     queue keeps deferring), and
//   - replay-counter anomalies (bursts of sec.drop.replay — a replay
//     attack or a counter-desynchronized peer).
//
// Each detection is a Violation: scored into a per-node 0–100 health
// score, exported as health.* gauges, surfaced through the /healthz
// verdict of the live runtimes, and emitted as a structured
// trace.KindHealth JSONL event — the trigger feed a self-healing control
// plane (ROADMAP E16) consumes.
//
// The monitor is host-driven: it never schedules itself. The simulator
// polls it on the virtual clock, the live runtimes on a wall ticker, so
// the same detectors run deterministically under test and continuously
// in production.
package health

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/trace"
)

// Route is one usable routing-table row as the monitor sees it.
type Route struct {
	// Dst is the destination address.
	Dst packet.Address
	// Via is the next hop toward Dst.
	Via packet.Address
}

// NodeStatus is one node's state snapshot, produced by a Source per poll.
type NodeStatus struct {
	// Addr is the node's mesh address.
	Addr packet.Address
	// Alive reports whether the node is currently running (not crashed,
	// killed, or unreachable).
	Alive bool
	// Routes are the node's usable (non-poisoned) routes. Empty for
	// dead nodes.
	Routes []Route
	// Stats is the node's metric snapshot (counter and gauge values);
	// the delta detectors key on tx.frames, rx.frames,
	// dutycycle.utilization, dutycycle.deferrals, and sec.drop.replay.
	// Nil disables the delta detectors for this node.
	Stats map[string]float64
}

// Source snapshots the mesh for one poll. It is called from Poll's
// goroutine; hosts make it safe against their own concurrency.
type Source func() []NodeStatus

// Violation is one detected health fault.
type Violation struct {
	// Seq is a monotonic sequence number (1, 2, 3, ...) stamped by the
	// monitor, so a consumer can detect dropped or reordered violations
	// across a sink restart. It restarts at 1 with a fresh Monitor.
	Seq uint64
	// At is the poll time the violation was observed.
	At time.Time
	// Node is the node the violation is attributed to.
	Node packet.Address
	// Kind classifies the fault: loop, blackhole, silent, duty_stuck,
	// or replay.
	Kind string
	// Dst, when non-zero, is the destination whose path the violation
	// concerns (loop and blackhole kinds) — the address a recovery
	// playbook needs to purge the faulty route.
	Dst packet.Address
	// Via, when non-zero, is the faulty next hop (blackhole kind).
	Via packet.Address
	// Detail is the human-readable specifics.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s@%v: %s", v.Kind, v.Node, v.Detail)
}

// Violation kinds.
const (
	KindLoop      = "loop"
	KindBlackhole = "blackhole"
	KindSilent    = "silent"
	KindDutyStuck = "duty_stuck"
	KindReplay    = "replay"
	// KindLatencyBound flags a flow delivery that exceeded the declared
	// per-flow latency bound — the real-time invariant the slotted
	// forwarding strategy promises (see internal/slotted).
	KindLatencyBound = "latency_bound"
)

// scorePenalty maps a violation kind to its health-score cost. A node
// accumulates each kind's penalty at most once per poll.
var scorePenalty = map[string]int{
	KindLoop:         40,
	KindBlackhole:    40,
	KindSilent:       50,
	KindDutyStuck:    30,
	KindReplay:       25,
	KindLatencyBound: 30,
}

// FlowSample is one end-to-end application delivery as observed by the
// host, fed to the latency-bound invariant.
type FlowSample struct {
	// Src is the flow's originator, Dst the delivering node.
	Src, Dst packet.Address
	// Latency is send-to-delivery time.
	Latency time.Duration
}

// Config tunes the monitor.
type Config struct {
	// Interval is the intended poll period; it only documents the
	// cadence for Verdict (hosts drive Poll themselves). Zero means 30s.
	Interval time.Duration
	// SilentPolls is how many consecutive polls without any tx or rx
	// progress mark a node silent. Zero means 3.
	SilentPolls int
	// DutyStuckUtil is the utilization at or above which the duty
	// budget counts as saturated. Zero means 0.95.
	DutyStuckUtil float64
	// DutyStuckPolls is how many consecutive saturated polls (with
	// deferrals still accruing) mark the budget stuck. Zero means 2.
	DutyStuckPolls int
	// ReplayBurst is the sec.drop.replay increase within one poll that
	// flags a replay anomaly. Zero means 5.
	ReplayBurst float64
	// FlowLatencyBound, when positive, arms the per-flow latency-bound
	// invariant: every FlowSample whose Latency exceeds the bound is a
	// latency_bound violation. Zero disables the detector.
	FlowLatencyBound time.Duration
	// Flows, when set, returns the flow deliveries observed since the
	// previous poll (the host drains its sample buffer here). Called
	// from Poll's goroutine; nil disables the latency-bound detector.
	Flows func() []FlowSample
	// Tracer, when set, receives every violation as a structured
	// trace.KindHealth event (the violation kind rides Event.Seg).
	Tracer *trace.Tracer
	// OnViolation, when set, observes each violation as it is detected,
	// from Poll's goroutine — the hook a reconciliation playbook
	// attaches to.
	OnViolation func(Violation)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.SilentPolls <= 0 {
		c.SilentPolls = 3
	}
	if c.DutyStuckUtil <= 0 {
		c.DutyStuckUtil = 0.95
	}
	if c.DutyStuckPolls <= 0 {
		c.DutyStuckPolls = 2
	}
	if c.ReplayBurst <= 0 {
		c.ReplayBurst = 5
	}
	return c
}

// history carries one node's state between polls for the delta detectors.
type history struct {
	seen      bool
	txrx      float64
	replays   float64
	silentN   int
	dutyN     int
	deferrals float64
}

// Monitor runs the detectors over successive Source snapshots. Safe for
// concurrent use (Poll, Verdict, and the accessors may race freely).
type Monitor struct {
	cfg Config
	src Source

	mu         sync.Mutex
	reg        *metrics.Registry
	hist       map[packet.Address]*history
	scores     map[packet.Address]int
	recent     []Violation // bounded tail of detections
	total      uint64
	polls      uint64
	seq        uint64 // monotonic Violation.Seq source
	lastPoll   time.Time
	lastStatus string
	subs       map[int]func(Violation)
	nextSub    int
}

// recentCap bounds the violation tail kept for Verdict.
const recentCap = 256

// New builds a monitor over src.
func New(cfg Config, src Source) *Monitor {
	m := &Monitor{
		cfg:        cfg.withDefaults(),
		src:        src,
		reg:        metrics.NewRegistry(),
		hist:       make(map[packet.Address]*history),
		scores:     make(map[packet.Address]int),
		lastStatus: "unknown",
		subs:       make(map[int]func(Violation)),
	}
	// Pre-register the stable schema so a scrape before the first poll
	// sees zeros, not absence.
	m.reg.Counter("health.polls")
	m.reg.Counter("health.violations")
	for _, k := range []string{KindLoop, KindBlackhole, KindSilent, KindDutyStuck, KindReplay, KindLatencyBound} {
		m.reg.Counter("health.violation." + k)
	}
	m.reg.Gauge("health.mesh.score.min")
	m.reg.Gauge("health.mesh.score.avg")
	m.reg.Gauge("health.nodes.alive")
	m.reg.Gauge("health.nodes.total")
	return m
}

// Interval returns the configured poll cadence (for hosts that arm their
// own timers).
func (m *Monitor) Interval() time.Duration { return m.cfg.Interval }

// Metrics exposes the monitor's health.* instruments for aggregation.
func (m *Monitor) Metrics() *metrics.Registry { return m.reg }

// Subscribe registers fn to observe every violation as it is detected
// (after Config.OnViolation, in subscription order), called from Poll's
// goroutine. The returned function cancels the subscription. This is the
// attachment point for consumers added after construction — notably the
// internal/control reconciler.
func (m *Monitor) Subscribe(fn func(Violation)) (cancel func()) {
	m.mu.Lock()
	id := m.nextSub
	m.nextSub++
	m.subs[id] = fn
	m.mu.Unlock()
	return func() {
		m.mu.Lock()
		delete(m.subs, id)
		m.mu.Unlock()
	}
}

// Poll snapshots the mesh, runs every detector, updates scores and
// gauges, and returns the violations detected this round.
func (m *Monitor) Poll(now time.Time) []Violation {
	nodes := m.src()
	var vs []Violation
	vs = append(vs, RouteFaults(nodes)...)
	vs = append(vs, m.latencyFaults()...)

	m.mu.Lock()
	vs = append(vs, m.deltaDetectors(nodes)...)
	for i := range vs {
		m.seq++
		vs[i].Seq = m.seq
		vs[i].At = now
	}
	m.score(now, nodes, vs)
	tracer := m.cfg.Tracer
	onV := m.cfg.OnViolation
	// Snapshot subscribers in id (= subscription) order so every run
	// notifies in the same deterministic order.
	ids := make([]int, 0, len(m.subs))
	for id := range m.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	subs := make([]func(Violation), len(ids))
	for i, id := range ids {
		subs[i] = m.subs[id]
	}
	m.mu.Unlock()

	for _, v := range vs {
		if tracer != nil {
			tracer.EmitSeg(now, v.Node.String(), trace.KindHealth, 0, v.Kind, 0,
				"health.violation: "+v.Detail)
		}
		if onV != nil {
			onV(v)
		}
		for _, fn := range subs {
			fn(v)
		}
	}
	return vs
}

// latencyFaults drains the host's flow-delivery samples and flags every
// one exceeding the declared per-flow latency bound. The violation is
// attributed to the flow's originator (whose traffic missed its
// deadline), with Dst recording the delivering node.
func (m *Monitor) latencyFaults() []Violation {
	if m.cfg.FlowLatencyBound <= 0 || m.cfg.Flows == nil {
		return nil
	}
	var vs []Violation
	for _, f := range m.cfg.Flows() {
		if f.Latency <= m.cfg.FlowLatencyBound {
			continue
		}
		vs = append(vs, Violation{Node: f.Src, Kind: KindLatencyBound, Dst: f.Dst,
			Detail: fmt.Sprintf("flow %v -> %v delivered in %v, bound %v",
				f.Src, f.Dst, f.Latency, m.cfg.FlowLatencyBound)})
	}
	return vs
}

// deltaDetectors runs the counter-delta checks (silent, duty-stuck,
// replay) against the previous poll's history. Called under mu.
func (m *Monitor) deltaDetectors(nodes []NodeStatus) []Violation {
	var vs []Violation
	for _, n := range nodes {
		if !n.Alive || n.Stats == nil {
			// A dead node's engine is gone; its silence is expected and
			// its routes are judged by the blackhole walk on its peers.
			delete(m.hist, n.Addr)
			continue
		}
		h := m.hist[n.Addr]
		if h == nil {
			h = &history{}
			m.hist[n.Addr] = h
		}
		txrx := n.Stats["tx.frames"] + n.Stats["rx.frames"]
		replays := n.Stats["sec.drop.replay"]
		util := n.Stats["dutycycle.utilization"]
		deferrals := n.Stats["dutycycle.deferrals"]
		if h.seen {
			if txrx == h.txrx {
				h.silentN++
				if h.silentN >= m.cfg.SilentPolls {
					vs = append(vs, Violation{Node: n.Addr, Kind: KindSilent,
						Detail: fmt.Sprintf("node %v: no tx/rx progress for %d polls", n.Addr, h.silentN)})
				}
			} else {
				h.silentN = 0
			}
			if util >= m.cfg.DutyStuckUtil && deferrals > h.deferrals {
				h.dutyN++
				if h.dutyN >= m.cfg.DutyStuckPolls {
					vs = append(vs, Violation{Node: n.Addr, Kind: KindDutyStuck,
						Detail: fmt.Sprintf("node %v: duty budget saturated (util %.2f) with deferrals accruing for %d polls", n.Addr, util, h.dutyN)})
				}
			} else {
				h.dutyN = 0
			}
			if d := replays - h.replays; d >= m.cfg.ReplayBurst {
				vs = append(vs, Violation{Node: n.Addr, Kind: KindReplay,
					Detail: fmt.Sprintf("node %v: %d replayed frames rejected in one poll", n.Addr, int(d))})
			}
		}
		h.seen = true
		h.txrx = txrx
		h.replays = replays
		h.deferrals = deferrals
	}
	return vs
}

// score recomputes per-node and mesh scores from this poll's violations
// and refreshes the gauges. Called under mu.
func (m *Monitor) score(now time.Time, nodes []NodeStatus, vs []Violation) {
	m.polls++
	m.lastPoll = now
	m.reg.Counter("health.polls").Inc()
	penalized := make(map[packet.Address]map[string]bool)
	for _, v := range vs {
		m.total++
		m.reg.Counter("health.violations").Inc()
		m.reg.Counter("health.violation." + v.Kind).Inc()
		if penalized[v.Node] == nil {
			penalized[v.Node] = make(map[string]bool)
		}
		penalized[v.Node][v.Kind] = true
		m.recent = append(m.recent, v)
	}
	if len(m.recent) > recentCap {
		m.recent = append([]Violation(nil), m.recent[len(m.recent)-recentCap:]...)
	}

	m.scores = make(map[packet.Address]int, len(nodes))
	alive, minScore, sum := 0, 100, 0
	for _, n := range nodes {
		if !n.Alive {
			continue
		}
		alive++
		score := 100
		for kind := range penalized[n.Addr] {
			score -= scorePenalty[kind]
		}
		if score < 0 {
			score = 0
		}
		m.scores[n.Addr] = score
		m.reg.Gauge("health.node." + n.Addr.String() + ".score").Set(float64(score))
		if score < minScore {
			minScore = score
		}
		sum += score
	}
	avg := 100.0
	if alive > 0 {
		avg = float64(sum) / float64(alive)
	} else {
		minScore = 0
	}
	m.reg.Gauge("health.mesh.score.min").Set(float64(minScore))
	m.reg.Gauge("health.mesh.score.avg").Set(avg)
	m.reg.Gauge("health.nodes.alive").Set(float64(alive))
	m.reg.Gauge("health.nodes.total").Set(float64(len(nodes)))
	switch {
	case minScore >= 80:
		m.lastStatus = "ok"
	case minScore >= 50:
		m.lastStatus = "degraded"
	default:
		m.lastStatus = "critical"
	}
}

// Score returns a node's current health score (100 when never scored).
func (m *Monitor) Score(addr packet.Address) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.scores[addr]; ok {
		return s
	}
	return 100
}

// Scores returns a snapshot of every scored node.
func (m *Monitor) Scores() map[packet.Address]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[packet.Address]int, len(m.scores))
	for a, s := range m.scores {
		out[a] = s
	}
	return out
}

// Violations returns the retained violation tail, oldest first.
func (m *Monitor) Violations() []Violation {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Violation(nil), m.recent...)
}

// Verdict summarizes mesh health for a /healthz endpoint: an overall
// status ("ok" ≥ 80, "degraded" ≥ 50, else "critical"; "unknown" before
// the first poll), per-node scores, and the most recent violations.
func (m *Monitor) Verdict() map[string]any {
	m.mu.Lock()
	defer m.mu.Unlock()
	scores := make(map[string]int, len(m.scores))
	addrs := make([]packet.Address, 0, len(m.scores))
	for a := range m.scores {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		scores[a.String()] = m.scores[a]
	}
	tail := m.recent
	if len(tail) > 8 {
		tail = tail[len(tail)-8:]
	}
	recent := make([]string, 0, len(tail))
	for _, v := range tail {
		recent = append(recent, v.String())
	}
	v := map[string]any{
		"status":     m.lastStatus,
		"polls":      m.polls,
		"violations": m.total,
		"scores":     scores,
		"recent":     recent,
	}
	if !m.lastPoll.IsZero() {
		v["last_poll"] = m.lastPoll
	}
	return v
}

// RouteFaults walks every (source, destination) pair's next-hop chain
// across the snapshot and returns the loop and blackhole violations — the
// runtime promotion of the invariant netsim.CheckRoutingLoops asserts
// after convergence (which now delegates here). Routing only settles
// between convergence windows; callers poll at a cadence coarser than
// route churn or expect transient findings mid-churn.
func RouteFaults(nodes []NodeStatus) []Violation {
	byAddr := make(map[packet.Address]*NodeStatus, len(nodes))
	routes := make(map[packet.Address]map[packet.Address]packet.Address, len(nodes))
	for i := range nodes {
		n := &nodes[i]
		byAddr[n.Addr] = n
		r := make(map[packet.Address]packet.Address, len(n.Routes))
		for _, e := range n.Routes {
			r[e.Dst] = e.Via
		}
		routes[n.Addr] = r
	}
	var vs []Violation
	for _, src := range nodes {
		if !src.Alive {
			continue
		}
		for _, dst := range nodes {
			if dst.Addr == src.Addr || !dst.Alive {
				continue
			}
			visited := make(map[packet.Address]bool)
			cur := src.Addr
			for cur != dst.Addr {
				if visited[cur] {
					vs = append(vs, Violation{Node: src.Addr, Kind: KindLoop, Dst: dst.Addr,
						Detail: fmt.Sprintf("routing loop: %v -> %v revisits node %v", src.Addr, dst.Addr, cur)})
					break
				}
				visited[cur] = true
				via, ok := routes[cur][dst.Addr]
				if !ok {
					break // no route: not a loop (coverage is convergence's job)
				}
				next, known := byAddr[via]
				if !known {
					vs = append(vs, Violation{Node: cur, Kind: KindBlackhole, Dst: dst.Addr, Via: via,
						Detail: fmt.Sprintf("blackhole: %v routes %v via unknown address %v", cur, dst.Addr, via)})
					break
				}
				if !next.Alive {
					vs = append(vs, Violation{Node: cur, Kind: KindBlackhole, Dst: dst.Addr, Via: via,
						Detail: fmt.Sprintf("blackhole: %v routes %v via dead node %v", cur, dst.Addr, via)})
					break
				}
				cur = via
			}
		}
	}
	return vs
}
