package health

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/trace"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func addr(i int) packet.Address { return packet.Address(i) }

// chain builds a healthy linear topology 1 -> 2 -> ... -> n with correct
// next-hop routes in both directions.
func chain(n int) []NodeStatus {
	nodes := make([]NodeStatus, n)
	for i := range nodes {
		nodes[i] = NodeStatus{Addr: addr(i + 1), Alive: true}
		for j := range nodes {
			if j == i {
				continue
			}
			via := addr(i + 2)
			if j < i {
				via = addr(i)
			}
			nodes[i].Routes = append(nodes[i].Routes, Route{Dst: addr(j + 1), Via: via})
		}
	}
	return nodes
}

func TestRouteFaultsClean(t *testing.T) {
	if vs := RouteFaults(chain(4)); len(vs) != 0 {
		t.Fatalf("healthy chain flagged: %v", vs)
	}
}

func TestRouteFaultsLoop(t *testing.T) {
	// 1 routes 3 via 2, 2 routes 3 via 1: a two-node loop.
	nodes := []NodeStatus{
		{Addr: addr(1), Alive: true, Routes: []Route{{Dst: addr(3), Via: addr(2)}}},
		{Addr: addr(2), Alive: true, Routes: []Route{{Dst: addr(3), Via: addr(1)}}},
		{Addr: addr(3), Alive: true},
	}
	vs := RouteFaults(nodes)
	var loops int
	for _, v := range vs {
		if v.Kind == KindLoop {
			loops++
			if !strings.Contains(v.Detail, "revisits node") {
				t.Fatalf("loop detail = %q", v.Detail)
			}
		}
	}
	if loops == 0 {
		t.Fatalf("loop not detected: %v", vs)
	}
}

func TestRouteFaultsBlackhole(t *testing.T) {
	// Dead next hop.
	nodes := []NodeStatus{
		{Addr: addr(1), Alive: true, Routes: []Route{{Dst: addr(3), Via: addr(2)}}},
		{Addr: addr(2), Alive: false},
		{Addr: addr(3), Alive: true},
	}
	vs := RouteFaults(nodes)
	if len(vs) != 1 || vs[0].Kind != KindBlackhole || vs[0].Node != addr(1) ||
		!strings.Contains(vs[0].Detail, "via dead node") {
		t.Fatalf("dead-hop blackhole: %v", vs)
	}

	// Unknown next hop.
	nodes = []NodeStatus{
		{Addr: addr(1), Alive: true, Routes: []Route{{Dst: addr(3), Via: addr(9)}}},
		{Addr: addr(3), Alive: true},
	}
	vs = RouteFaults(nodes)
	if len(vs) != 1 || vs[0].Kind != KindBlackhole ||
		!strings.Contains(vs[0].Detail, "via unknown address") {
		t.Fatalf("unknown-hop blackhole: %v", vs)
	}
}

// poller wraps a mutable snapshot as a Source.
type poller struct{ nodes []NodeStatus }

func (p *poller) source() []NodeStatus { return p.nodes }

func stats(tx, rx, replay, util, deferrals float64) map[string]float64 {
	return map[string]float64{
		"tx.frames": tx, "rx.frames": rx, "sec.drop.replay": replay,
		"dutycycle.utilization": util, "dutycycle.deferrals": deferrals,
	}
}

func TestSilentDetector(t *testing.T) {
	p := &poller{nodes: []NodeStatus{
		{Addr: addr(1), Alive: true, Stats: stats(10, 10, 0, 0, 0)},
		{Addr: addr(2), Alive: true, Stats: stats(5, 5, 0, 0, 0)},
	}}
	m := New(Config{SilentPolls: 3}, p.source)

	now := t0
	for i := 0; i < 3; i++ {
		now = now.Add(time.Minute)
		// Node 2 makes progress every poll; node 1 never does.
		p.nodes[1].Stats = stats(float64(6+i), 5, 0, 0, 0)
		if vs := m.Poll(now); len(vs) != 0 {
			t.Fatalf("poll %d flagged early: %v", i, vs)
		}
	}
	now = now.Add(time.Minute)
	p.nodes[1].Stats = stats(10, 5, 0, 0, 0)
	vs := m.Poll(now)
	if len(vs) != 1 || vs[0].Kind != KindSilent || vs[0].Node != addr(1) {
		t.Fatalf("silent node not flagged: %v", vs)
	}
	if s := m.Score(addr(1)); s != 100-scorePenalty[KindSilent] {
		t.Fatalf("silent score = %d", s)
	}
	if s := m.Score(addr(2)); s != 100 {
		t.Fatalf("healthy score = %d", s)
	}

	// Progress resets the streak.
	now = now.Add(time.Minute)
	p.nodes[0].Stats = stats(11, 10, 0, 0, 0)
	if vs := m.Poll(now); len(vs) != 0 {
		t.Fatalf("progress did not clear silence: %v", vs)
	}
	if s := m.Score(addr(1)); s != 100 {
		t.Fatalf("score did not recover: %d", s)
	}
}

func TestDutyStuckDetector(t *testing.T) {
	p := &poller{nodes: []NodeStatus{
		{Addr: addr(1), Alive: true, Stats: stats(1, 1, 0, 0.99, 10)},
	}}
	m := New(Config{DutyStuckPolls: 2}, p.source)

	m.Poll(t0) // baseline
	p.nodes[0].Stats = stats(2, 2, 0, 0.99, 20)
	if vs := m.Poll(t0.Add(time.Minute)); len(vs) != 0 {
		t.Fatalf("one saturated poll flagged early: %v", vs)
	}
	p.nodes[0].Stats = stats(3, 3, 0, 0.99, 30)
	vs := m.Poll(t0.Add(2 * time.Minute))
	if len(vs) != 1 || vs[0].Kind != KindDutyStuck {
		t.Fatalf("stuck duty budget not flagged: %v", vs)
	}

	// Utilization dropping clears the streak.
	p.nodes[0].Stats = stats(4, 4, 0, 0.30, 30)
	if vs := m.Poll(t0.Add(3 * time.Minute)); len(vs) != 0 {
		t.Fatalf("recovered budget still flagged: %v", vs)
	}
}

func TestReplayDetector(t *testing.T) {
	p := &poller{nodes: []NodeStatus{
		{Addr: addr(1), Alive: true, Stats: stats(1, 1, 0, 0, 0)},
	}}
	var seen []Violation
	m := New(Config{ReplayBurst: 5, OnViolation: func(v Violation) { seen = append(seen, v) }}, p.source)

	m.Poll(t0)
	p.nodes[0].Stats = stats(2, 2, 3, 0, 0) // +3 replays: under the burst
	if vs := m.Poll(t0.Add(time.Minute)); len(vs) != 0 {
		t.Fatalf("sub-burst replays flagged: %v", vs)
	}
	p.nodes[0].Stats = stats(3, 3, 9, 0, 0) // +6 replays in one poll
	vs := m.Poll(t0.Add(2 * time.Minute))
	if len(vs) != 1 || vs[0].Kind != KindReplay {
		t.Fatalf("replay burst not flagged: %v", vs)
	}
	if len(seen) != 1 || seen[0].Kind != KindReplay {
		t.Fatalf("OnViolation hook saw %v", seen)
	}
}

func TestScoringAndVerdict(t *testing.T) {
	// A blackhole (40) on node 1 -> min score 60 -> "degraded".
	p := &poller{nodes: []NodeStatus{
		{Addr: addr(1), Alive: true, Routes: []Route{{Dst: addr(3), Via: addr(9)}}},
		{Addr: addr(3), Alive: true},
	}}
	m := New(Config{}, p.source)
	m.Poll(t0)

	v := m.Verdict()
	if v["status"] != "degraded" {
		t.Fatalf("status = %v", v["status"])
	}
	if v["polls"] != uint64(1) || v["violations"] != uint64(1) {
		t.Fatalf("verdict counters: %+v", v)
	}
	scores := v["scores"].(map[string]int)
	if scores[addr(1).String()] != 60 || scores[addr(3).String()] != 100 {
		t.Fatalf("scores = %v", scores)
	}
	if len(m.Violations()) != 1 {
		t.Fatalf("violation tail: %v", m.Violations())
	}

	snap := m.Metrics().Snapshot()
	if snap["health.violation.blackhole"] != 1 || snap["health.mesh.score.min"] != 60 {
		t.Fatalf("gauges: min=%v blackhole=%v", snap["health.mesh.score.min"], snap["health.violation.blackhole"])
	}
	if snap["health.nodes.alive"] != 2 || snap["health.nodes.total"] != 2 {
		t.Fatalf("node gauges: %v/%v", snap["health.nodes.alive"], snap["health.nodes.total"])
	}
}

func TestPenaltyOncePerPollAndClamp(t *testing.T) {
	// Node 1 blackholes toward three destinations: the blackhole penalty
	// still applies once, and scores never go below zero.
	p := &poller{nodes: []NodeStatus{
		{Addr: addr(1), Alive: true, Routes: []Route{
			{Dst: addr(2), Via: addr(9)}, {Dst: addr(3), Via: addr(9)}, {Dst: addr(4), Via: addr(9)},
		}},
		{Addr: addr(2), Alive: true},
		{Addr: addr(3), Alive: true},
		{Addr: addr(4), Alive: true},
	}}
	m := New(Config{}, p.source)
	vs := m.Poll(t0)
	if len(vs) != 3 {
		t.Fatalf("want 3 blackhole violations, got %v", vs)
	}
	if s := m.Score(addr(1)); s != 100-scorePenalty[KindBlackhole] {
		t.Fatalf("repeated kind penalized more than once: %d", s)
	}
}

func TestViolationTracerEmission(t *testing.T) {
	var sink bytes.Buffer
	tr := trace.New(16)
	tr.SetSink(&sink)
	p := &poller{nodes: []NodeStatus{
		{Addr: addr(1), Alive: true, Routes: []Route{{Dst: addr(2), Via: addr(9)}}},
		{Addr: addr(2), Alive: true},
	}}
	m := New(Config{Tracer: tr}, p.source)
	m.Poll(t0)

	evs, err := trace.ReadJSONL(&sink)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, ev := range evs {
		if ev.Kind == trace.KindHealth {
			found = true
			if ev.Seg != KindBlackhole || !strings.Contains(ev.Detail, "health.violation:") {
				t.Fatalf("health event = %+v", ev)
			}
		}
	}
	if !found {
		t.Fatalf("no health.violation event in stream: %v", evs)
	}
}

func TestDeadNodeHistoryDropped(t *testing.T) {
	p := &poller{nodes: []NodeStatus{
		{Addr: addr(1), Alive: true, Stats: stats(1, 1, 0, 0, 0)},
	}}
	m := New(Config{SilentPolls: 2}, p.source)
	m.Poll(t0)
	m.Poll(t0.Add(time.Minute)) // silent streak 1

	// The node dies, then comes back (a restart): the streak must not
	// survive the outage.
	p.nodes[0].Alive = false
	m.Poll(t0.Add(2 * time.Minute))
	p.nodes[0].Alive = true
	m.Poll(t0.Add(3 * time.Minute)) // fresh baseline
	if vs := m.Poll(t0.Add(4 * time.Minute)); len(vs) != 0 {
		t.Fatalf("restart inherited the silent streak: %v", vs)
	}
}

// TestViolationSeqMonotonic is the regression contract for
// Violation.Seq: every violation the monitor emits carries a strictly
// increasing sequence number with no gaps, across polls and detector
// kinds — what lets a consumer (the control plane) distinguish "no
// violations" from "violations I never saw".
func TestViolationSeqMonotonic(t *testing.T) {
	// A loop and a blackhole every poll, plus a replay burst on node 4:
	// several violations per poll, from both detector families.
	p := &poller{nodes: []NodeStatus{
		{Addr: addr(1), Alive: true, Routes: []Route{{Dst: addr(3), Via: addr(2)}}},
		{Addr: addr(2), Alive: true, Routes: []Route{{Dst: addr(3), Via: addr(1)}}},
		{Addr: addr(3), Alive: false},
		{Addr: addr(4), Alive: true, Stats: stats(1, 1, 0, 0, 0)},
	}}
	m := New(Config{}, p.source)

	var seen []uint64
	m.Subscribe(func(v Violation) { seen = append(seen, v.Seq) })

	now := t0
	for i := 1; i <= 3; i++ {
		now = now.Add(time.Minute)
		p.nodes[3].Stats = stats(float64(i+1), 1, float64(i*10), 0, 0)
		for _, v := range m.Poll(now) {
			if v.Seq == 0 {
				t.Fatalf("poll %d: violation without a sequence number: %v", i, v)
			}
			if !v.At.Equal(now) {
				t.Fatalf("poll %d: violation not stamped with the poll time", i)
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("subscriber saw no violations")
	}
	for i, s := range seen {
		if s != uint64(i+1) {
			t.Fatalf("violation %d carried seq %d: want a gapless 1..n sequence (got %v)", i, s, seen)
		}
	}
}

// TestSubscribeCancel verifies subscriber lifecycle: both the
// Config.OnViolation hook and Subscribe observers fire per violation,
// and a canceled subscription stops immediately.
func TestSubscribeCancel(t *testing.T) {
	p := &poller{nodes: []NodeStatus{
		{Addr: addr(1), Alive: true, Routes: []Route{{Dst: addr(2), Via: addr(9)}}},
		{Addr: addr(2), Alive: true},
	}}
	var hook, subbed int
	m := New(Config{OnViolation: func(Violation) { hook++ }}, p.source)
	cancel := m.Subscribe(func(Violation) { subbed++ })

	m.Poll(t0.Add(time.Minute))
	if hook != 1 || subbed != 1 {
		t.Fatalf("after one poll: hook=%d sub=%d, want 1/1", hook, subbed)
	}
	cancel()
	m.Poll(t0.Add(2 * time.Minute))
	if hook != 2 || subbed != 1 {
		t.Fatalf("after cancel: hook=%d sub=%d, want 2/1", hook, subbed)
	}
}
