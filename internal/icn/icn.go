// Package icn implements a named-data (ICN) pub-sub forwarding strategy
// with in-mesh caching, after the Long-Range ICN line of work: consumers
// express interests in content NAMES rather than node addresses, the
// interest floods hop by hop leaving breadcrumbs in a Pending Interest
// Table (PIT), and the producer — or ANY intermediate node holding the
// content in its content store — answers with a named-data packet that
// retraces the breadcrumbs, being cached at every hop it crosses.
//
// Two mechanisms give the strategy its airtime win on many-reader
// workloads:
//
//   - in-mesh caching: a content store (LRU, bounded by bytes) at every
//     node answers repeat interests locally, cutting the round trip to
//     the producer — and the airtime of every hop it would have crossed;
//   - interest aggregation: while an interest for a name is pending, further
//     interests for the same name add a breadcrumb but do NOT re-flood,
//     collapsing N concurrent readers into one upstream round trip.
//
// The engine is host-driven exactly like core.Node: no I/O, no
// goroutines, every simulation bit-for-bit reproducible. It implements
// the forwarding-strategy API (see internal/forward); the Strategy
// Send(dst, payload) surface maps to Express(string(payload)) so generic
// traffic harnesses can drive it, with dst advisory.
package icn

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/forward"
	"repro/internal/loraphy"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/span"
	"repro/internal/trace"
)

// interestHeaderLen is nonce(2) + hops(1) + prevHop(2); the content name
// follows.
const interestHeaderLen = 5

// dataHeaderLen is producer(2) + hops(1) + nameLen(1); the name and then
// the content follow.
const dataHeaderLen = 4

// MaxNameLen bounds content names (they ride a length byte on data
// packets).
const MaxNameLen = 64

// Errors returned by the API.
var (
	ErrStopped  = errors.New("icn: node is stopped")
	ErrBadName  = errors.New("icn: bad content name")
	ErrTooLarge = errors.New("icn: content too large")
)

// Config parameterizes an ICN node.
type Config struct {
	// Address is the node's mesh address.
	Address packet.Address
	// Phy selects the radio parameters, used to estimate the airtime a
	// cache hit saves. Zero value means loraphy.DefaultParams().
	Phy loraphy.Params
	// ContentStoreBytes bounds the content store (sum of cached content
	// bytes, LRU eviction). Zero means 4096; negative disables caching.
	ContentStoreBytes int
	// PITTimeout is how long a pending interest waits for data before
	// its breadcrumbs are forgotten. Zero means 60 s.
	PITTimeout time.Duration
	// MaxHops bounds interest flood propagation. Zero means 16.
	MaxHops uint8
	// RebroadcastDelay is the mean randomized hold-off before relaying
	// an interest, desynchronizing the flood. Zero means 300 ms.
	RebroadcastDelay time.Duration
	// Produce, when set, makes this node a producer: called with a
	// content name, it returns the content (nil = not produced here).
	Produce func(name string) []byte
	// Tracer, when set, receives interest/data lifecycle events.
	Tracer *trace.Tracer
	// Spans, when set, records hop-level span segments, including the
	// SegCacheHit segment that marks cached replies in hop trees.
	Spans *span.Recorder
}

func (c Config) withDefaults() Config {
	if c.Phy == (loraphy.Params{}) {
		c.Phy = loraphy.DefaultParams()
	}
	if c.ContentStoreBytes == 0 {
		c.ContentStoreBytes = 4096
	}
	if c.PITTimeout <= 0 {
		c.PITTimeout = 60 * time.Second
	}
	if c.MaxHops == 0 {
		c.MaxHops = 16
	}
	if c.RebroadcastDelay <= 0 {
		c.RebroadcastDelay = 300 * time.Millisecond
	}
	return c
}

// nonceKey identifies one interest flood network-wide.
type nonceKey struct {
	origin packet.Address
	nonce  uint16
}

// dataKey identifies one data answer in flight: which name is being
// carried to which requester. Overhearing a frame with this key means
// somebody else is already serving that requester.
type dataKey struct {
	name   string
	origin packet.Address
}

// crumb is one PIT breadcrumb: where to send the data when it arrives.
type crumb struct {
	// downstream is the neighbor the interest arrived from (self when
	// this node expressed the interest).
	downstream packet.Address
	// origin is the requester the data packet is ultimately addressed
	// to.
	origin packet.Address
}

// pitEntry aggregates the pending interests for one name.
type pitEntry struct {
	crumbs  []crumb
	expires time.Time
	// relayed marks that this node already relayed the interest
	// upstream; aggregated interests only add crumbs.
	relayed bool
}

// csEntry is one cached content object.
type csEntry struct {
	name    string
	content []byte
	// producer is the content's origin node.
	producer packet.Address
	// hops is how far the content had traveled from the producer when
	// it was cached here — the path length a cache hit saves.
	hops uint8
	// elem is the entry's LRU list position.
	elem *list.Element
}

// Node is one ICN protocol engine.
type Node struct {
	cfg     Config
	env     core.Env
	reg     *metrics.Registry
	stopped bool
	addrStr string

	nextNonce uint16
	seen      map[nonceKey]struct{}
	seenFIFO  []nonceKey

	// dataSeen remembers when a data frame for (name, requester) was last
	// heard — addressed to us or overheard — so a queued answer of our own
	// for the same requester can stand down (broadcast-medium data
	// suppression).
	dataSeen     map[dataKey]time.Time
	dataSeenFIFO []dataKey

	pit map[string]*pitEntry

	cs      map[string]*csEntry
	csLRU   *list.List // front = most recent
	csBytes int

	queue        []*packet.Packet
	transmitting bool
}

// NewNode creates an ICN node on the given env.
func NewNode(cfg Config, env core.Env) (*Node, error) {
	if env == nil {
		return nil, fmt.Errorf("icn: nil env")
	}
	if cfg.Address == packet.Broadcast {
		return nil, fmt.Errorf("icn: node address must not be broadcast")
	}
	n := &Node{
		cfg:      cfg.withDefaults(),
		env:      env,
		reg:      metrics.NewRegistry(),
		addrStr:  cfg.Address.String(),
		seen:     make(map[nonceKey]struct{}),
		dataSeen: make(map[dataKey]time.Time),
		pit:      make(map[string]*pitEntry),
		cs:       make(map[string]*csEntry),
		csLRU:    list.New(),
	}
	// Pre-register the icn.* schema so scrapes before traffic see zeros.
	for _, c := range []string{
		"icn.interest.expressed", "icn.interest.relayed",
		"icn.interest.aggregated", "icn.interest.duplicate",
		"icn.data.produced", "icn.data.forwarded", "icn.data.delivered",
		"icn.data.overheard", "icn.data.suppressed",
		"icn.cs.hit", "icn.cs.miss", "icn.cs.evict",
		"icn.airtime.saved_ms",
		"drop." + forward.DropTTL, "drop." + forward.DropNoPIT,
		"drop." + forward.DropMarshal, "drop." + forward.DropTxError,
		"app.sent", "app.delivered", "fwd.frames",
		"tx.frames", "tx.bytes", "rx.frames", "rx.corrupt", "rx.ignored",
	} {
		n.reg.Counter(c)
	}
	n.reg.Gauge("icn.cs.bytes")
	n.reg.Gauge("icn.pit.entries")
	return n, nil
}

// Address returns the node's mesh address.
func (n *Node) Address() packet.Address { return n.cfg.Address }

// Metrics exposes the node's instruments.
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// Kind identifies the strategy: named-data pub-sub with caching.
func (n *Node) Kind() forward.Kind { return forward.KindICN }

// Beacons reports no periodic control beacons: ICN control traffic is
// the interest flood itself.
func (n *Node) Beacons() []forward.Beacon { return nil }

// CacheHitRatio returns hits/(hits+misses) over the node's lifetime
// (zero before any lookup).
func (n *Node) CacheHitRatio() float64 {
	snap := n.reg.Snapshot()
	h, m := snap["icn.cs.hit"], snap["icn.cs.miss"]
	if h+m == 0 {
		return 0
	}
	return h / (h + m)
}

// Start is a no-op: an ICN node is silent until an interest appears.
func (n *Node) Start() error {
	if n.stopped {
		return ErrStopped
	}
	return nil
}

// Stop silences the node.
func (n *Node) Stop() {
	n.stopped = true
}

// Send maps the generic strategy surface onto Express: the payload is
// the content name, dst advisory (ICN routes by name, not address).
func (n *Node) Send(_ packet.Address, payload []byte) error {
	return n.Express(string(payload))
}

// Express broadcasts an interest in name. The matching data arrives as
// an application delivery (Env.Deliver) with From = the producer. While
// an interest in the same name is already pending, the call aggregates
// instead of re-flooding. Content already in the local store is
// delivered synchronously.
//
// The engine does not retransmit lost interests: retry is the
// application's (re-Express), so size PITTimeout below the retry cadence
// — a re-expression inside the pending window only aggregates.
func (n *Node) Express(name string) error {
	if n.stopped {
		return ErrStopped
	}
	if len(name) == 0 || len(name) > MaxNameLen {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrBadName, len(name), MaxNameLen)
	}
	n.reg.Counter("app.sent").Inc()
	n.reg.Counter("icn.interest.expressed").Inc()

	// Producer or local cache: the content never touches the air. A local
	// content-store read is a cache hit like any other — it saves the full
	// round trip to the producer.
	if content := n.localContent(name); content != nil {
		if content.producer != n.cfg.Address {
			n.reg.Counter("icn.cs.hit").Inc()
			n.creditAirtimeSaved(content, len(name))
		}
		n.deliverContent(name, content.producer, content.content, true)
		return nil
	}
	if e, ok := n.livePIT(name); ok {
		// Already pending upstream: aggregate our own crumb.
		e.addCrumb(crumb{downstream: n.cfg.Address, origin: n.cfg.Address})
		n.reg.Counter("icn.interest.aggregated").Inc()
		return nil
	}
	e := n.newPIT(name)
	e.addCrumb(crumb{downstream: n.cfg.Address, origin: n.cfg.Address})
	e.relayed = true
	nonce := n.nextNonce
	n.nextNonce++
	n.remember(nonceKey{origin: n.cfg.Address, nonce: nonce})
	n.sendInterest(name, nonce, 0, n.cfg.Address, n.cfg.Address)
	return nil
}

// localContent returns the node's own copy of name — produced or cached
// — touching the LRU on a cache read.
func (n *Node) localContent(name string) *csEntry {
	if n.cfg.Produce != nil {
		if c := n.cfg.Produce(name); c != nil {
			return &csEntry{name: name, content: c, producer: n.cfg.Address}
		}
	}
	if e, ok := n.cs[name]; ok {
		n.csLRU.MoveToFront(e.elem)
		return e
	}
	return nil
}

// livePIT returns the unexpired PIT entry for name.
func (n *Node) livePIT(name string) (*pitEntry, bool) {
	e, ok := n.pit[name]
	if !ok {
		return nil, false
	}
	if !e.expires.After(n.env.Now()) {
		delete(n.pit, name)
		n.reg.Gauge("icn.pit.entries").Set(float64(len(n.pit)))
		return nil, false
	}
	return e, true
}

func (n *Node) newPIT(name string) *pitEntry {
	e := &pitEntry{expires: n.env.Now().Add(n.cfg.PITTimeout)}
	n.pit[name] = e
	n.reg.Gauge("icn.pit.entries").Set(float64(len(n.pit)))
	return e
}

func (e *pitEntry) addCrumb(c crumb) {
	for _, have := range e.crumbs {
		if have == c {
			return
		}
	}
	e.crumbs = append(e.crumbs, c)
}

// sendInterest enqueues one interest frame. origin is preserved across
// relays (like an RREQ flood); prevHop is this hop's sender.
func (n *Node) sendInterest(name string, nonce uint16, hops uint8, origin, prevHop packet.Address) {
	payload := make([]byte, interestHeaderLen+len(name))
	binary.BigEndian.PutUint16(payload[0:2], nonce)
	payload[2] = hops
	binary.BigEndian.PutUint16(payload[3:5], uint16(prevHop))
	copy(payload[interestHeaderLen:], name)
	p := &packet.Packet{
		Dst: packet.Broadcast, Src: origin, Type: packet.TypeInterest, Payload: payload,
	}
	if n.cfg.Tracer != nil {
		n.cfg.Tracer.EmitPacket(n.env.Now(), n.addrStr, trace.KindInterest,
			trace.TraceID(p.TraceID()), "interest %q nonce=%d hops=%d", name, nonce, hops)
	}
	n.enqueue(p, 0)
}

// sendData enqueues one named-data frame carrying content toward origin
// via the downstream breadcrumb.
func (n *Node) sendData(name string, content []byte, producer packet.Address, hops uint8, origin, downstream packet.Address) {
	payload := make([]byte, dataHeaderLen+len(name)+len(content))
	binary.BigEndian.PutUint16(payload[0:2], uint16(producer))
	payload[2] = hops
	payload[3] = uint8(len(name))
	copy(payload[dataHeaderLen:], name)
	copy(payload[dataHeaderLen+len(name):], content)
	p := &packet.Packet{
		Dst: origin, Src: n.cfg.Address, Type: packet.TypeNamedData,
		Via: downstream, Payload: payload,
	}
	if n.cfg.Tracer != nil {
		n.cfg.Tracer.EmitPacket(n.env.Now(), n.addrStr, trace.KindData,
			trace.TraceID(p.TraceID()), "data %q -> %v via %v (%d bytes, hops=%d)",
			name, origin, downstream, len(content), hops)
	}
	// Half the interest jitter: a producer or cache answering the instant
	// an interest lands collides with that interest's relays still
	// propagating outward (classic hidden-terminal loss on dense
	// topologies), so data transmissions hold off briefly too — but
	// strictly less than a relay hold-off (see handleInterest), so a
	// nearby answer wins the channel before the flood grows.
	delay := time.Duration((0.5 + n.env.Rand()) * float64(n.cfg.RebroadcastDelay) / 2)
	scheduledAt := n.env.Now()
	n.env.Schedule(delay, func() {
		if n.stopped {
			return
		}
		// Somebody else's answer to the same requester crossed the air
		// during our hold-off: transmitting ours too would only collide.
		if at, ok := n.dataSeen[dataKey{name: name, origin: origin}]; ok && at.After(scheduledAt) {
			n.reg.Counter("icn.data.suppressed").Inc()
			return
		}
		n.enqueue(p, 0)
	})
}

// HandleFrame processes one received frame.
func (n *Node) HandleFrame(frame []byte, _ core.RxInfo) {
	if n.stopped {
		return
	}
	n.reg.Counter("rx.frames").Inc()
	p, err := packet.Unmarshal(frame)
	if err != nil {
		n.reg.Counter("rx.corrupt").Inc()
		return
	}
	if p.Src == n.cfg.Address {
		return
	}
	switch p.Type {
	case packet.TypeInterest:
		n.handleInterest(p)
	case packet.TypeNamedData:
		// Frames retracing somebody else's breadcrumbs are still heard on
		// a broadcast medium: overhearing fills the content store and
		// stands down redundant relays and answers of our own.
		n.handleData(p, p.Via != n.cfg.Address && p.Via != packet.Broadcast)
	default:
		n.reg.Counter("rx.ignored").Inc()
	}
}

// handleInterest runs the ICN forwarding plane for one interest: dedup,
// producer/cache answer, PIT aggregation, or relay.
func (n *Node) handleInterest(p *packet.Packet) {
	if len(p.Payload) < interestHeaderLen+1 {
		n.reg.Counter("rx.corrupt").Inc()
		return
	}
	nonce := binary.BigEndian.Uint16(p.Payload[0:2])
	hops := p.Payload[2]
	prevHop := packet.Address(binary.BigEndian.Uint16(p.Payload[3:5]))
	name := string(p.Payload[interestHeaderLen:])
	if len(name) > MaxNameLen {
		n.reg.Counter("rx.corrupt").Inc()
		return
	}
	key := nonceKey{origin: p.Src, nonce: nonce}
	if n.isSeen(key) {
		n.reg.Counter("icn.interest.duplicate").Inc()
		return
	}
	n.remember(key)

	// Producer or cache answer: the interest stops here.
	if own := n.localContent(name); own != nil {
		fromCache := own.producer != n.cfg.Address
		if fromCache {
			n.reg.Counter("icn.cs.hit").Inc()
			n.creditAirtimeSaved(own, len(name))
			if n.cfg.Spans != nil {
				n.cfg.Spans.Record(n.env.Now(), n.addrStr, trace.TraceID(p.TraceID()),
					span.SegCacheHit, 0, name)
			}
			if n.cfg.Tracer != nil {
				n.cfg.Tracer.EmitPacket(n.env.Now(), n.addrStr, trace.KindInterest,
					trace.TraceID(p.TraceID()), "cache hit %q for %v (saves %d hops)", name, p.Src, own.hops)
			}
		} else {
			n.reg.Counter("icn.data.produced").Inc()
		}
		n.sendData(name, own.content, own.producer, own.hops, p.Src, prevHop)
		return
	}
	n.reg.Counter("icn.cs.miss").Inc()

	c := crumb{downstream: prevHop, origin: p.Src}
	if e, ok := n.livePIT(name); ok {
		// Aggregation: the upstream round trip is already in flight; this
		// reader just adds a breadcrumb.
		e.addCrumb(c)
		n.reg.Counter("icn.interest.aggregated").Inc()
		if n.cfg.Tracer != nil {
			n.cfg.Tracer.EmitPacket(n.env.Now(), n.addrStr, trace.KindInterest,
				trace.TraceID(p.TraceID()), "aggregated interest %q from %v", name, p.Src)
		}
		return
	}
	if hops+1 >= n.cfg.MaxHops {
		n.reg.Counter("drop." + forward.DropTTL).Inc()
		return
	}
	e := n.newPIT(name)
	e.addCrumb(c)
	e.relayed = true
	// Relay after a randomized hold-off, preserving the originator. The
	// hold-off is deliberately LONGER than a cache or producer answer
	// delay (see sendData): a nearby copy of the content must win the
	// channel before the flood expands another ring — and a relay whose
	// content arrives (or is overheard) during the hold-off is cancelled
	// outright.
	delay := time.Duration((1.5 + n.env.Rand()) * float64(n.cfg.RebroadcastDelay))
	n.reg.Counter("icn.interest.relayed").Inc()
	n.scheduleInterest(name, nonce, hops+1, p.Src, delay)
}

// scheduleInterest defers a relayed interest (jittered flood).
func (n *Node) scheduleInterest(name string, nonce uint16, hops uint8, origin packet.Address, delay time.Duration) {
	n.env.Schedule(delay, func() {
		if n.stopped {
			return
		}
		// The data may have arrived during the hold-off; relaying then
		// would re-flood for nothing.
		if _, ok := n.cs[name]; ok {
			return
		}
		n.sendInterest(name, nonce, hops, origin, n.cfg.Address)
	})
}

// creditAirtimeSaved estimates the airtime a cache hit avoided: the
// interest and data legs that will NOT cross the hops between this cache
// and the producer.
func (n *Node) creditAirtimeSaved(e *csEntry, nameLen int) {
	if e.hops == 0 {
		return
	}
	wire := packet.HeaderLen(packet.TypeNamedData) + dataHeaderLen + nameLen + len(e.content)
	if wire > packet.MaxFrameLen {
		wire = packet.MaxFrameLen
	}
	air, err := n.cfg.Phy.Airtime(wire)
	if err != nil {
		return
	}
	saved := 2 * time.Duration(e.hops) * air
	n.reg.Counter("icn.airtime.saved_ms").Add(uint64(saved.Milliseconds()))
}

// handleData caches arriving content, delivers it when we requested it,
// and retraces PIT breadcrumbs otherwise. With overheard set, the frame
// was addressed through some other node: we still cache the content
// (opportunistic fill — also cancelling any pending relay of the
// matching interest) and satisfy our PIT, but breadcrumbs whose
// requester the overheard frame is already travelling to are dropped
// silently rather than served twice.
func (n *Node) handleData(p *packet.Packet, overheard bool) {
	if len(p.Payload) < dataHeaderLen {
		n.reg.Counter("rx.corrupt").Inc()
		return
	}
	producer := packet.Address(binary.BigEndian.Uint16(p.Payload[0:2]))
	hops := p.Payload[2]
	nameLen := int(p.Payload[3])
	if len(p.Payload) < dataHeaderLen+nameLen {
		n.reg.Counter("rx.corrupt").Inc()
		return
	}
	name := string(p.Payload[dataHeaderLen : dataHeaderLen+nameLen])
	content := append([]byte(nil), p.Payload[dataHeaderLen+nameLen:]...)

	// Remember the answer in flight so a queued answer of our own for the
	// same requester stands down (see sendData).
	n.rememberData(dataKey{name: name, origin: p.Dst})

	// Cache on path: every hop the data crosses becomes a future answer
	// point. hops+1 is the distance from the producer at THIS node.
	n.cacheContent(name, content, producer, hops+1)

	if overheard {
		n.reg.Counter("icn.data.overheard").Inc()
	}

	e, ok := n.livePIT(name)
	if !ok {
		if overheard {
			return // stray overhears carry no drop accounting
		}
		// No breadcrumbs (expired or never ours): a stray.
		if p.Dst == n.cfg.Address {
			// Addressed to us anyway (direct reply beat PIT expiry).
			n.deliverContent(name, producer, content, false)
			return
		}
		n.reg.Counter("drop." + forward.DropNoPIT).Inc()
		return
	}
	delete(n.pit, name)
	n.reg.Gauge("icn.pit.entries").Set(float64(len(n.pit)))
	for _, c := range e.crumbs {
		if overheard && c.origin == p.Dst && c.downstream != n.cfg.Address {
			// The overheard frame is already on its way to this requester
			// along another path; forwarding our copy would duplicate it.
			continue
		}
		if c.downstream == n.cfg.Address {
			n.deliverContent(name, producer, content, false)
			continue
		}
		n.sendData(name, content, producer, hops+1, c.origin, c.downstream)
		n.reg.Counter("icn.data.forwarded").Inc()
		n.reg.Counter("fwd.frames").Inc()
	}
}

// rememberData records a heard data answer in the bounded FIFO set.
func (n *Node) rememberData(k dataKey) {
	if _, ok := n.dataSeen[k]; !ok {
		n.dataSeenFIFO = append(n.dataSeenFIFO, k)
		if len(n.dataSeenFIFO) > 512 {
			old := n.dataSeenFIFO[0]
			n.dataSeenFIFO = n.dataSeenFIFO[1:]
			delete(n.dataSeen, old)
		}
	}
	n.dataSeen[k] = n.env.Now()
}

// cacheContent inserts (or refreshes) name in the content store, LRU-
// evicting past the byte bound.
func (n *Node) cacheContent(name string, content []byte, producer packet.Address, hops uint8) {
	if n.cfg.ContentStoreBytes < 0 || len(content) > n.cfg.ContentStoreBytes {
		return
	}
	if e, ok := n.cs[name]; ok {
		n.csBytes += len(content) - len(e.content)
		e.content = content
		e.producer = producer
		e.hops = hops
		n.csLRU.MoveToFront(e.elem)
	} else {
		e := &csEntry{name: name, content: content, producer: producer, hops: hops}
		e.elem = n.csLRU.PushFront(e)
		n.cs[name] = e
		n.csBytes += len(content)
	}
	for n.csBytes > n.cfg.ContentStoreBytes {
		back := n.csLRU.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*csEntry)
		n.csLRU.Remove(back)
		delete(n.cs, victim.name)
		n.csBytes -= len(victim.content)
		n.reg.Counter("icn.cs.evict").Inc()
	}
	n.reg.Gauge("icn.cs.bytes").Set(float64(n.csBytes))
}

// deliverContent hands named content to the application. The payload is
// "name\x00content" so the consumer can tell which name resolved.
func (n *Node) deliverContent(name string, producer packet.Address, content []byte, local bool) {
	n.reg.Counter("icn.data.delivered").Inc()
	n.reg.Counter("app.delivered").Inc()
	payload := make([]byte, 0, len(name)+1+len(content))
	payload = append(payload, name...)
	payload = append(payload, 0)
	payload = append(payload, content...)
	if n.cfg.Tracer != nil {
		src := "mesh"
		if local {
			src = "local"
		}
		n.cfg.Tracer.Emit(n.env.Now(), n.addrStr, trace.KindData,
			"delivered %q from %v (%s, %d bytes)", name, producer, src, len(content))
	}
	n.env.Deliver(core.AppMessage{
		From:    producer,
		To:      n.cfg.Address,
		Payload: payload,
		At:      n.env.Now(),
	})
}

// isSeen / remember implement the bounded interest dedup set.
func (n *Node) isSeen(k nonceKey) bool {
	_, ok := n.seen[k]
	return ok
}

func (n *Node) remember(k nonceKey) {
	if _, ok := n.seen[k]; ok {
		return
	}
	n.seen[k] = struct{}{}
	n.seenFIFO = append(n.seenFIFO, k)
	if len(n.seenFIFO) > 512 {
		old := n.seenFIFO[0]
		n.seenFIFO = n.seenFIFO[1:]
		delete(n.seen, old)
	}
}

// enqueue schedules a packet for transmission after delay.
func (n *Node) enqueue(p *packet.Packet, delay time.Duration) {
	if delay > 0 {
		n.env.Schedule(delay, func() { n.enqueue(p, 0) })
		return
	}
	n.queue = append(n.queue, p)
	n.pump()
}

func (n *Node) pump() {
	if n.stopped || n.transmitting || len(n.queue) == 0 {
		return
	}
	p := n.queue[0]
	n.queue[0] = nil
	n.queue = n.queue[1:]
	frame, err := packet.Marshal(p)
	if err != nil {
		n.reg.Counter("drop." + forward.DropMarshal).Inc()
		n.pump()
		return
	}
	if _, err := n.env.Transmit(frame); err != nil {
		n.reg.Counter("drop." + forward.DropTxError).Inc()
		return
	}
	n.transmitting = true
	n.reg.Counter("tx.frames").Inc()
	n.reg.Counter("tx.bytes").Add(uint64(len(frame)))
}

// HandleTxDone resumes the transmit queue.
func (n *Node) HandleTxDone() {
	if n.stopped {
		return
	}
	n.transmitting = false
	n.pump()
}
