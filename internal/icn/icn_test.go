package icn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/forward"
	"repro/internal/loraphy"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// The unit tests drive ICN nodes over a loopback bus with a programmable
// link topology, isolating the forwarding plane (PIT, content store,
// flood control) from the PHY model, which internal/netsim's strategy
// tests exercise against the real medium.

var t0 = time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

type bus struct {
	sched *simtime.Scheduler
	envs  []*testEnv
	// drop decides per-link frame loss; nil means every node hears every
	// other.
	drop func(from, to packet.Address) bool
}

type testEnv struct {
	b    *bus
	node *Node
	addr packet.Address
	rng  *rand.Rand
	msgs []core.AppMessage
	phy  loraphy.Params
}

func (e *testEnv) Now() time.Time { return e.b.sched.Now() }

func (e *testEnv) Schedule(d time.Duration, fn func()) func() {
	h := e.b.sched.MustAfter(d, fn)
	return func() { e.b.sched.Cancel(h) }
}

func (e *testEnv) Transmit(frame []byte) (time.Duration, error) {
	airtime := e.phy.MustAirtime(len(frame))
	data := append([]byte(nil), frame...)
	e.b.sched.MustAfter(airtime, func() {
		for _, other := range e.b.envs {
			if other == e {
				continue
			}
			if e.b.drop != nil && e.b.drop(e.addr, other.addr) {
				continue
			}
			other.node.HandleFrame(data, core.RxInfo{RSSIDBm: -80, SNRDB: 10})
		}
		e.node.HandleTxDone()
	})
	return airtime, nil
}

func (e *testEnv) ChannelBusy() (bool, error)     { return false, nil }
func (e *testEnv) Deliver(msg core.AppMessage)    { e.msgs = append(e.msgs, msg) }
func (e *testEnv) StreamDone(ev core.StreamEvent) {}
func (e *testEnv) Rand() float64                  { return e.rng.Float64() }

var _ core.Env = (*testEnv)(nil)

// newBus builds a started node per config on a shared medium.
func newBus(t *testing.T, cfgs ...Config) *bus {
	t.Helper()
	b := &bus{sched: simtime.NewScheduler(t0)}
	for i, cfg := range cfgs {
		env := &testEnv{b: b, addr: cfg.Address, rng: rand.New(rand.NewSource(int64(i) + 1)), phy: loraphy.DefaultParams()}
		n, err := NewNode(cfg, env)
		if err != nil {
			t.Fatal(err)
		}
		env.node = n
		b.envs = append(b.envs, env)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func (b *bus) env(a packet.Address) *testEnv {
	for _, e := range b.envs {
		if e.addr == a {
			return e
		}
	}
	return nil
}

// chainDrop restricts the bus to a line topology.
func chainDrop(chain ...packet.Address) func(from, to packet.Address) bool {
	idx := make(map[packet.Address]int, len(chain))
	for i, a := range chain {
		idx[a] = i
	}
	return func(from, to packet.Address) bool {
		fi, ok1 := idx[from]
		ti, ok2 := idx[to]
		if !ok1 || !ok2 {
			return true
		}
		return fi-ti > 1 || ti-fi > 1
	}
}

func counter(t *testing.T, n *Node, name string) float64 {
	t.Helper()
	v, ok := n.Metrics().Snapshot()[name]
	if !ok {
		t.Fatalf("counter %q not registered", name)
	}
	return v
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Phy == (loraphy.Params{}) {
		t.Error("Phy not defaulted")
	}
	if c.ContentStoreBytes != 4096 || c.PITTimeout != 60*time.Second ||
		c.MaxHops != 16 || c.RebroadcastDelay != 300*time.Millisecond {
		t.Errorf("defaults: %+v", c)
	}
	// Negative content-store budget (caching disabled) must survive
	// defaulting.
	if d := (Config{ContentStoreBytes: -1}).withDefaults(); d.ContentStoreBytes != -1 {
		t.Errorf("negative ContentStoreBytes overwritten: %d", d.ContentStoreBytes)
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{Address: 1}, nil); err == nil {
		t.Error("nil env accepted")
	}
	b := &bus{sched: simtime.NewScheduler(t0)}
	env := &testEnv{b: b, rng: rand.New(rand.NewSource(1)), phy: loraphy.DefaultParams()}
	if _, err := NewNode(Config{Address: packet.Broadcast}, env); err == nil {
		t.Error("broadcast address accepted")
	}
}

func TestExpressValidation(t *testing.T) {
	b := newBus(t, Config{Address: 0x0001})
	n := b.env(0x0001).node
	if err := n.Express(""); !errors.Is(err, ErrBadName) {
		t.Errorf("empty name: %v", err)
	}
	if err := n.Express(strings.Repeat("x", MaxNameLen+1)); !errors.Is(err, ErrBadName) {
		t.Errorf("oversized name: %v", err)
	}
	n.Stop()
	if err := n.Express("ok"); !errors.Is(err, ErrStopped) {
		t.Errorf("stopped Express: %v", err)
	}
	if err := n.Start(); !errors.Is(err, ErrStopped) {
		t.Errorf("restarting a stopped node: %v", err)
	}
}

func TestProducerRoundTripAndLocalCache(t *testing.T) {
	producer := Config{Address: 0x0001, Produce: func(name string) []byte {
		if name == "sensor/1" {
			return []byte("21.5C")
		}
		return nil
	}}
	consumer := Config{Address: 0x0002}
	b := newBus(t, producer, consumer)
	cons := b.env(0x0002)

	if err := cons.node.Express("sensor/1"); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(10 * time.Second)
	if len(cons.msgs) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(cons.msgs))
	}
	got := cons.msgs[0]
	if got.From != 0x0001 {
		t.Errorf("From = %v, want the producer", got.From)
	}
	if want := []byte("sensor/1\x0021.5C"); !bytes.Equal(got.Payload, want) {
		t.Errorf("payload = %q, want %q", got.Payload, want)
	}
	if counter(t, b.env(0x0001).node, "icn.data.produced") == 0 {
		t.Error("producer never counted a production")
	}

	// The answer was cached on the consumer: a re-expression is a local
	// cache hit, delivered synchronously with the saved airtime credited.
	if err := cons.node.Express("sensor/1"); err != nil {
		t.Fatal(err)
	}
	if len(cons.msgs) != 2 {
		t.Fatalf("local cache hit did not deliver synchronously: %d deliveries", len(cons.msgs))
	}
	if counter(t, cons.node, "icn.cs.hit") != 1 {
		t.Errorf("cs.hit = %v, want 1", counter(t, cons.node, "icn.cs.hit"))
	}
	if counter(t, cons.node, "icn.airtime.saved_ms") == 0 {
		t.Error("cache hit credited no saved airtime")
	}
	if r := cons.node.CacheHitRatio(); r <= 0 || r > 1 {
		t.Errorf("CacheHitRatio = %v", r)
	}
}

func TestIntermediateCacheAnswers(t *testing.T) {
	// Line topology consumer(1) - mid(2) - producer(3). The consumer's own
	// store is disabled, so its second interest must be answered by the
	// mid node's cache instead of the producer.
	consumer := Config{Address: 0x0001, ContentStoreBytes: -1}
	mid := Config{Address: 0x0002}
	producer := Config{Address: 0x0003, Produce: func(name string) []byte { return []byte("v:" + name) }}
	b := newBus(t, consumer, mid, producer)
	b.drop = chainDrop(0x0001, 0x0002, 0x0003)
	cons := b.env(0x0001)

	if err := cons.node.Express("city/7/air"); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(30 * time.Second)
	if len(cons.msgs) != 1 {
		t.Fatalf("first read: %d deliveries, want 1", len(cons.msgs))
	}

	if err := cons.node.Express("city/7/air"); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(30 * time.Second)
	if len(cons.msgs) != 2 {
		t.Fatalf("second read: %d deliveries, want 2", len(cons.msgs))
	}
	midNode := b.env(0x0002).node
	if counter(t, midNode, "icn.cs.hit") == 0 {
		t.Error("mid node never answered from its content store")
	}
	if counter(t, midNode, "icn.airtime.saved_ms") == 0 {
		t.Error("mid-cache hit credited no saved airtime")
	}
	// Both deliveries name the true producer even when served from cache.
	if cons.msgs[1].From != 0x0003 {
		t.Errorf("cached answer From = %v, want the producer", cons.msgs[1].From)
	}
}

func TestInterestAggregation(t *testing.T) {
	// An isolated consumer with nobody to answer: the second expression of
	// a pending name aggregates instead of re-flooding.
	b := newBus(t, Config{Address: 0x0001, PITTimeout: time.Minute})
	n := b.env(0x0001).node
	if err := n.Express("demo/1"); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(5 * time.Second)
	txAfterFirst := counter(t, n, "tx.frames")
	if txAfterFirst == 0 {
		t.Fatal("first expression transmitted no interest")
	}
	if err := n.Express("demo/1"); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(5 * time.Second)
	if got := counter(t, n, "icn.interest.aggregated"); got != 1 {
		t.Errorf("aggregated = %v, want 1", got)
	}
	if got := counter(t, n, "tx.frames"); got != txAfterFirst {
		t.Errorf("aggregation re-flooded: tx %v -> %v", txAfterFirst, got)
	}
	if got := counter(t, n, "icn.interest.expressed"); got != 2 {
		t.Errorf("expressed = %v, want 2", got)
	}
}

// interestFrame marshals one interest as a peer would send it.
func interestFrame(t *testing.T, src packet.Address, name string, nonce uint16, hops uint8) []byte {
	t.Helper()
	payload := make([]byte, interestHeaderLen+len(name))
	binary.BigEndian.PutUint16(payload[0:2], nonce)
	payload[2] = hops
	binary.BigEndian.PutUint16(payload[3:5], uint16(src))
	copy(payload[interestHeaderLen:], name)
	frame, err := packet.Marshal(&packet.Packet{
		Dst: packet.Broadcast, Src: src, Type: packet.TypeInterest, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestInterestTTLAndDedup(t *testing.T) {
	b := newBus(t, Config{Address: 0x0001, MaxHops: 4})
	n := b.env(0x0001).node

	// At the hop limit the interest is dropped under the canonical reason.
	n.HandleFrame(interestFrame(t, 0x0009, "far/name", 7, 3), core.RxInfo{})
	if got := counter(t, n, "drop."+forward.DropTTL); got != 1 {
		t.Errorf("drop.ttl = %v, want 1", got)
	}

	// The same (origin, nonce) seen again is a flood duplicate.
	n.HandleFrame(interestFrame(t, 0x0009, "near/name", 8, 0), core.RxInfo{})
	n.HandleFrame(interestFrame(t, 0x0009, "near/name", 8, 0), core.RxInfo{})
	if got := counter(t, n, "icn.interest.duplicate"); got != 1 {
		t.Errorf("interest.duplicate = %v, want 1", got)
	}
}

func TestCorruptAndForeignFrames(t *testing.T) {
	b := newBus(t, Config{Address: 0x0001})
	n := b.env(0x0001).node

	short, err := packet.Marshal(&packet.Packet{
		Dst: packet.Broadcast, Src: 0x0002, Type: packet.TypeInterest, Payload: []byte{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.HandleFrame(short, core.RxInfo{})

	// A named-data frame whose name length overruns the payload.
	bad, err := packet.Marshal(&packet.Packet{
		Dst: 0x0001, Src: 0x0002, Type: packet.TypeNamedData,
		Payload: []byte{0x00, 0x02, 1, 200, 'x'},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.HandleFrame(bad, core.RxInfo{})
	if got := counter(t, n, "rx.corrupt"); got != 2 {
		t.Errorf("rx.corrupt = %v, want 2", got)
	}

	// Frames of other strategies are ignored, not errors.
	hello, err := packet.Marshal(&packet.Packet{
		Dst: packet.Broadcast, Src: 0x0002, Type: packet.TypeHello,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.HandleFrame(hello, core.RxInfo{})
	if got := counter(t, n, "rx.ignored"); got != 1 {
		t.Errorf("rx.ignored = %v, want 1", got)
	}
}

func TestContentStoreLRUEviction(t *testing.T) {
	b := newBus(t, Config{Address: 0x0001, ContentStoreBytes: 10})
	n := b.env(0x0001).node

	n.cacheContent("a", []byte("aaaaaa"), 0x0002, 1) // 6 bytes
	n.cacheContent("b", []byte("bbbbbb"), 0x0002, 1) // 6 bytes: evicts a
	if _, ok := n.cs["a"]; ok {
		t.Error("LRU victim still cached")
	}
	if _, ok := n.cs["b"]; !ok {
		t.Error("fresh entry evicted")
	}
	if got := counter(t, n, "icn.cs.evict"); got != 1 {
		t.Errorf("cs.evict = %v, want 1", got)
	}
	if n.csBytes > 10 {
		t.Errorf("store over budget: %d bytes", n.csBytes)
	}

	// Refreshing an entry adjusts the byte account instead of duplicating.
	n.cacheContent("b", []byte("bb"), 0x0003, 2)
	if n.csBytes != 2 || n.cs["b"].producer != 0x0003 || n.cs["b"].hops != 2 {
		t.Errorf("refresh: bytes=%d entry=%+v", n.csBytes, n.cs["b"])
	}

	// Content larger than the whole budget is never cached.
	n.cacheContent("huge", bytes.Repeat([]byte{'h'}, 11), 0x0002, 1)
	if _, ok := n.cs["huge"]; ok {
		t.Error("over-budget content cached")
	}

	// A disabled store caches nothing.
	b2 := newBus(t, Config{Address: 0x0002, ContentStoreBytes: -1})
	n2 := b2.env(0x0002).node
	n2.cacheContent("a", []byte("x"), 0x0001, 1)
	if len(n2.cs) != 0 {
		t.Error("disabled content store accepted an entry")
	}
}

func TestStrategySurface(t *testing.T) {
	b := newBus(t, Config{Address: 0x0001, Produce: func(string) []byte { return []byte("v") }})
	n := b.env(0x0001).node
	if n.Kind() != forward.KindICN {
		t.Errorf("Kind = %v", n.Kind())
	}
	if n.Address() != 0x0001 {
		t.Errorf("Address = %v", n.Address())
	}
	if bs := n.Beacons(); len(bs) != 0 {
		t.Errorf("ICN reports beacons: %v", bs)
	}
	if n.CacheHitRatio() != 0 {
		t.Error("hit ratio nonzero before any lookup")
	}
	// Send maps the generic surface onto Express (dst advisory): the
	// producer answers itself without touching the air.
	if err := n.Send(0x00FF, []byte("any/name")); err != nil {
		t.Fatal(err)
	}
	if got := counter(t, n, "app.delivered"); got != 1 {
		t.Errorf("Send did not deliver the self-produced content: %v", got)
	}
}
