// Package livenet runs the same LoRaMesher protocol engines as the
// discrete-event simulator, but live: one goroutine per node, real timers
// (optionally time-scaled), and a concurrent in-memory medium. It exists
// to prove the engine's host contract under genuine concurrency — the
// deterministic simulator can hide ordering assumptions that a
// goroutine-per-node deployment (or real hardware) would violate — and it
// is exercised under the race detector in this package's tests.
//
// Each node owns a serial event loop; every interaction with its engine
// (frames, timers, API calls) is a closure delivered to that loop, so the
// engine itself still sees single-threaded execution, exactly as it would
// behind an interrupt-driven radio driver.
package livenet

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/loraphy"
	"repro/internal/metrics"
	"repro/internal/packet"
)

// Config describes a live network.
type Config struct {
	// TimeScale compresses virtual time: a scale of 60 runs one virtual
	// minute per wall second. Zero means 1 (real time).
	TimeScale float64
	// Connect decides whether a frame transmitted by a reaches b. Nil
	// means full connectivity. It must be safe for concurrent use.
	Connect func(from, to packet.Address) bool
	// Node is the engine configuration template; Address is assigned
	// per node.
	Node core.Config
	// Seed drives per-node jitter randomness.
	Seed int64
	// MailboxDepth bounds each node's pending-event queue. Zero means
	// 256.
	MailboxDepth int
	// MetricsAddr, when non-empty, serves Prometheus-format metrics on
	// that TCP address: GET /metrics exposes every node's registry under
	// node_<addr>_* plus network totals under mesh_*, and GET /healthz
	// answers with a JSON liveness summary. Use "127.0.0.1:0" to let the
	// kernel pick a free port (see Net.MetricsAddr).
	MetricsAddr string
	// HealthInterval arms the always-on mesh health monitor when
	// positive: every interval of VIRTUAL time (wall time divided by
	// TimeScale) the monitor snapshots every node's routing table and
	// counters to detect loops, blackholes, silent nodes, stuck duty
	// budgets, and replay anomalies (see internal/health). With a
	// MetricsAddr, /healthz then reports the monitor's verdict and
	// /metrics exports the health.* instruments.
	HealthInterval time.Duration
	// Pprof, when true together with MetricsAddr, additionally mounts the
	// net/http/pprof profiling handlers under /debug/pprof/ on the
	// metrics mux. Off by default: profiling endpoints on a mesh debug
	// port are opt-in.
	Pprof bool
}

// Net is a running live network.
type Net struct {
	cfg   Config
	start time.Time // wall anchor
	phy   loraphy.Params

	mu     sync.Mutex
	nodes  []*Handle
	byAddr map[packet.Address]*Handle
	closed chan struct{}
	wg     sync.WaitGroup

	// onAir counts in-flight transmissions for ChannelBusy.
	onAir atomic.Int64

	metricsLis net.Listener
	metricsSrv *http.Server

	// health is the always-on monitor; nil unless Config.HealthInterval
	// is positive.
	health *health.Monitor
}

// Handle is one live node.
type Handle struct {
	net  *Net
	addr packet.Address
	node *core.Node

	events chan func()

	mu      sync.Mutex
	msgs    []core.AppMessage
	events2 []core.StreamEvent
	onMsg   func(core.AppMessage)
	rng     *rand.Rand
}

// New creates an empty live network.
func New(cfg Config) (*Net, error) {
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("livenet: negative time scale")
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 256
	}
	n := &Net{
		cfg:    cfg,
		start:  time.Now(),
		phy:    cfg.Node.EffectivePhy(),
		byAddr: make(map[packet.Address]*Handle),
		closed: make(chan struct{}),
	}
	if cfg.HealthInterval > 0 {
		n.health = health.New(health.Config{
			Interval: cfg.HealthInterval,
			Tracer:   cfg.Node.Tracer,
		}, n.healthSource)
		go n.healthLoop()
	}
	if cfg.MetricsAddr != "" {
		if err := n.serveMetrics(cfg.MetricsAddr); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Health returns the mesh health monitor, or nil when disabled.
func (n *Net) Health() *health.Monitor { return n.health }

// healthLoop polls the monitor on the (time-scaled) wall clock until the
// network closes.
func (n *Net) healthLoop() {
	t := time.NewTicker(n.wall(n.cfg.HealthInterval))
	defer t.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-t.C:
			n.health.Poll(n.virtualNow())
		}
	}
}

// healthSource snapshots every node for the monitor. Each snapshot runs
// on the node's own event loop (Do), so table walks never race the
// engine.
func (n *Net) healthSource() []health.NodeStatus {
	var out []health.NodeStatus
	for _, h := range n.handles() {
		st := health.NodeStatus{Addr: h.addr, Alive: true}
		h.Do(func(node *core.Node) {
			st.Stats = node.Metrics().Snapshot()
			for _, e := range node.Table().Entries() {
				if e.Poisoned() {
					continue
				}
				st.Routes = append(st.Routes, health.Route{Dst: e.Addr, Via: e.Via})
			}
		})
		out = append(out, st)
	}
	return out
}

// serveMetrics starts the /metrics and /healthz listener.
func (n *Net) serveMetrics(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("livenet: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(n.AggregateMetrics))
	mux.Handle("/healthz", metrics.HealthHandler(func() map[string]any {
		v := map[string]any{"status": "ok"}
		if n.health != nil {
			// The monitor's verdict IS the liveness answer: a mesh with
			// loops or silent nodes is not "ok" just because the process
			// responds.
			v = n.health.Verdict()
		}
		v["nodes"] = len(n.handles())
		v["timescale"] = n.cfg.TimeScale
		v["uptime"] = time.Since(n.start).String()
		return v
	}))
	if n.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	n.metricsLis = lis
	n.metricsSrv = &http.Server{Handler: mux}
	go n.metricsSrv.Serve(lis)
	return nil
}

// MetricsAddr returns the metrics listener's address ("" when disabled) —
// with a ":0" config this is where the kernel actually bound it.
func (n *Net) MetricsAddr() string {
	if n.metricsLis == nil {
		return ""
	}
	return n.metricsLis.Addr().String()
}

// AggregateMetrics merges every node's registry under "node.<addr>." plus
// network-wide totals under "mesh.". Registries are safe to read while
// the node loops run, so a scrape never blocks the mesh.
func (n *Net) AggregateMetrics() *metrics.Registry {
	agg := metrics.NewRegistry()
	for _, h := range n.handles() {
		reg := h.node.Metrics()
		agg.Merge(fmt.Sprintf("node.%v.", h.addr), reg)
		agg.Merge("mesh.", reg)
	}
	if n.health != nil {
		agg.Merge("", n.health.Metrics())
	}
	return agg
}

// wall converts a virtual duration to wall-clock time.
func (n *Net) wall(d time.Duration) time.Duration {
	return time.Duration(float64(d) / n.cfg.TimeScale)
}

// virtualNow returns the current virtual time.
func (n *Net) virtualNow() time.Time {
	return n.start.Add(time.Duration(float64(time.Since(n.start)) * n.cfg.TimeScale))
}

// AddNode creates, registers, and starts a node with the given address.
func (n *Net) AddNode(addr packet.Address) (*Handle, error) {
	select {
	case <-n.closed:
		return nil, fmt.Errorf("livenet: network is closed")
	default:
	}
	n.mu.Lock()
	if _, dup := n.byAddr[addr]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("livenet: duplicate address %v", addr)
	}
	h := &Handle{
		net:    n,
		addr:   addr,
		events: make(chan func(), n.cfg.MailboxDepth),
		rng:    rand.New(rand.NewSource(n.cfg.Seed ^ int64(addr)*0x9e3779b9)),
	}
	cfg := n.cfg.Node
	cfg.Address = addr
	node, err := core.NewNode(cfg, (*liveEnv)(h))
	if err != nil {
		n.mu.Unlock()
		return nil, fmt.Errorf("livenet: %w", err)
	}
	h.node = node
	n.nodes = append(n.nodes, h)
	n.byAddr[addr] = h
	n.wg.Add(1)
	go h.loop(&n.wg)
	n.mu.Unlock()

	var startErr error
	h.Do(func(node *core.Node) { startErr = node.Start() })
	if startErr != nil {
		return nil, fmt.Errorf("livenet: start %v: %w", addr, startErr)
	}
	return h, nil
}

// Close stops every node and waits for their loops to drain.
func (n *Net) Close() {
	n.mu.Lock()
	select {
	case <-n.closed:
		n.mu.Unlock()
		return
	default:
	}
	close(n.closed)
	nodes := append([]*Handle(nil), n.nodes...)
	n.mu.Unlock()
	if n.metricsSrv != nil {
		n.metricsSrv.Close()
	}
	n.wg.Wait()
	for _, h := range nodes {
		h.node.Stop()
	}
}

// handles returns a snapshot of the registered nodes.
func (n *Net) handles() []*Handle {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*Handle(nil), n.nodes...)
}

// Addr returns the handle's mesh address.
func (h *Handle) Addr() packet.Address { return h.addr }

// MeshAddress returns the handle's mesh address; it exists alongside Addr
// so livenet.Handle and udpnet.Host satisfy the same attachment interface
// (see internal/gateway.MeshHost).
func (h *Handle) MeshAddress() packet.Address { return h.addr }

// SetOnMessage installs an observer invoked for every application
// delivery, after the message is recorded. The observer runs on the
// node's event loop, so it must not block; pass nil to remove it.
func (h *Handle) SetOnMessage(fn func(core.AppMessage)) {
	h.mu.Lock()
	h.onMsg = fn
	h.mu.Unlock()
}

// loop serializes all engine interactions. It exits when the network
// closes; the mailbox channel itself is never closed, because timer
// goroutines may still attempt sends during shutdown (enqueue's select on
// the closed signal drops those safely).
func (h *Handle) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-h.net.closed:
			return
		case fn := <-h.events:
			fn()
		}
	}
}

// enqueue delivers a closure to the node's loop; it drops the event if the
// network is shutting down (matching a powered-off radio).
func (h *Handle) enqueue(fn func()) {
	select {
	case <-h.net.closed:
	case h.events <- fn:
	}
}

// Do runs fn inside the node's event loop and waits for it, giving callers
// race-free access to the engine (tables, sends, metrics).
func (h *Handle) Do(fn func(n *core.Node)) {
	done := make(chan struct{})
	h.enqueue(func() {
		fn(h.node)
		close(done)
	})
	select {
	case <-done:
	case <-h.net.closed:
	}
}

// Send transmits a datagram from this node.
func (h *Handle) Send(dst packet.Address, payload []byte) error {
	var err error
	h.Do(func(n *core.Node) { err = n.Send(dst, payload) })
	return err
}

// SendReliable opens a reliable transfer from this node.
func (h *Handle) SendReliable(dst packet.Address, payload []byte) (uint8, error) {
	var (
		id  uint8
		err error
	)
	h.Do(func(n *core.Node) { id, err = n.SendReliable(dst, payload) })
	return id, err
}

// Messages returns a snapshot of delivered application messages.
func (h *Handle) Messages() []core.AppMessage {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]core.AppMessage(nil), h.msgs...)
}

// StreamEvents returns a snapshot of reliable-transfer outcomes.
func (h *Handle) StreamEvents() []core.StreamEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]core.StreamEvent(nil), h.events2...)
}

// RouteCount returns the node's usable routing-table size.
func (h *Handle) RouteCount() int {
	var c int
	h.Do(func(n *core.Node) { c = n.Table().Len() })
	return c
}

// HasRoute reports whether the node can reach dst.
func (h *Handle) HasRoute(dst packet.Address) bool {
	var ok bool
	h.Do(func(n *core.Node) { _, ok = n.Table().NextHop(dst) })
	return ok
}

// liveEnv adapts a Handle into the engine's host interface. Its methods
// are invoked from the node's event loop.
type liveEnv Handle

var _ core.Env = (*liveEnv)(nil)

func (e *liveEnv) handle() *Handle { return (*Handle)(e) }

// Now implements core.Env.
func (e *liveEnv) Now() time.Time { return e.handle().net.virtualNow() }

// Schedule implements core.Env using wall timers scaled to virtual time.
func (e *liveEnv) Schedule(d time.Duration, fn func()) func() {
	h := e.handle()
	t := time.AfterFunc(h.net.wall(d), func() { h.enqueue(fn) })
	return func() { t.Stop() }
}

// Transmit implements core.Env: the frame arrives at every connected peer
// after its airtime; the sender gets TxDone then.
func (e *liveEnv) Transmit(frame []byte) (time.Duration, error) {
	h := e.handle()
	n := h.net
	airtime, err := n.phy.Airtime(len(frame))
	if err != nil {
		return 0, fmt.Errorf("livenet: %w", err)
	}
	data := append([]byte(nil), frame...)
	n.onAir.Add(1)
	time.AfterFunc(n.wall(airtime), func() {
		n.onAir.Add(-1)
		for _, peer := range n.handles() {
			if peer == h {
				continue
			}
			if n.cfg.Connect != nil && !n.cfg.Connect(h.addr, peer.addr) {
				continue
			}
			peer.enqueue(func() {
				peer.node.HandleFrame(data, core.RxInfo{RSSIDBm: -80, SNRDB: 10})
			})
		}
		h.enqueue(func() { h.node.HandleTxDone() })
	})
	return airtime, nil
}

// ChannelBusy implements core.Env from the global on-air count.
func (e *liveEnv) ChannelBusy() (bool, error) {
	return e.handle().net.onAir.Load() > 0, nil
}

// Deliver implements core.Env.
func (e *liveEnv) Deliver(msg core.AppMessage) {
	h := e.handle()
	h.mu.Lock()
	h.msgs = append(h.msgs, msg)
	fn := h.onMsg
	h.mu.Unlock()
	if fn != nil {
		fn(msg)
	}
}

// StreamDone implements core.Env.
func (e *liveEnv) StreamDone(ev core.StreamEvent) {
	h := e.handle()
	h.mu.Lock()
	h.events2 = append(h.events2, ev)
	h.mu.Unlock()
}

// Rand implements core.Env. It runs only inside the node's loop, so the
// unsynchronized source is safe.
func (e *liveEnv) Rand() float64 { return e.handle().rng.Float64() }
