package livenet

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/routing"
)

// liveConfig compresses time 200x so a 2 s virtual HELLO period fires
// every 10 ms of wall time.
func liveConfig(connect func(a, b packet.Address) bool) Config {
	return Config{
		TimeScale: 200,
		Connect:   connect,
		Seed:      1,
		Node: core.Config{
			HelloPeriod:    2 * time.Second,
			StreamRetry:    4 * time.Second,
			DutyCycleLimit: 1,
			Routing:        routing.Config{EntryTTL: 20 * time.Second},
		},
	}
}

// chainConnect restricts connectivity to adjacent addresses.
func chainConnect(addrs ...packet.Address) func(a, b packet.Address) bool {
	idx := make(map[packet.Address]int, len(addrs))
	for i, a := range addrs {
		idx[a] = i
	}
	return func(a, b packet.Address) bool {
		ia, ok1 := idx[a]
		ib, ok2 := idx[b]
		if !ok1 || !ok2 {
			return false
		}
		d := ia - ib
		return d == 1 || d == -1
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

func TestLiveMeshConvergesAndRoutes(t *testing.T) {
	addrs := []packet.Address{1, 2, 3}
	net, err := New(liveConfig(chainConnect(addrs...)))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	var hs []*Handle
	for _, a := range addrs {
		h, err := net.AddNode(a)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	if !waitFor(t, 10*time.Second, func() bool { return hs[0].HasRoute(3) && hs[2].HasRoute(1) }) {
		t.Fatal("live mesh did not converge")
	}
	if err := hs[0].Send(3, []byte("live multi-hop")); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 10*time.Second, func() bool { return len(hs[2].Messages()) >= 1 }) {
		t.Fatal("datagram not delivered over the live mesh")
	}
	msg := hs[2].Messages()[0]
	if string(msg.Payload) != "live multi-hop" || msg.From != 1 {
		t.Errorf("message = %+v", msg)
	}
}

func TestLiveReliableTransfer(t *testing.T) {
	addrs := []packet.Address{1, 2, 3}
	net, err := New(liveConfig(chainConnect(addrs...)))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	var hs []*Handle
	for _, a := range addrs {
		h, err := net.AddNode(a)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	if !waitFor(t, 10*time.Second, func() bool { return hs[0].HasRoute(3) }) {
		t.Fatal("no convergence")
	}
	payload := make([]byte, 1200)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if _, err := hs[0].SendReliable(3, payload); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 30*time.Second, func() bool { return len(hs[0].StreamEvents()) == 1 }) {
		t.Fatal("stream never completed")
	}
	if ev := hs[0].StreamEvents()[0]; ev.Err != nil {
		t.Fatalf("stream failed: %v", ev.Err)
	}
	msgs := hs[2].Messages()
	if len(msgs) != 1 || !bytes.Equal(msgs[0].Payload, payload) {
		t.Fatal("reliable payload corrupted over live mesh")
	}
}

func TestLiveConcurrentSenders(t *testing.T) {
	// Full connectivity, several nodes sending simultaneously from test
	// goroutines: exercises the mailbox serialization under the race
	// detector.
	net, err := New(liveConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	const n = 5
	var hs []*Handle
	for i := 1; i <= n; i++ {
		h, err := net.AddNode(packet.Address(i))
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	if !waitFor(t, 10*time.Second, func() bool {
		for _, h := range hs {
			if h.RouteCount() < n-1 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("full mesh did not converge")
	}
	var wg sync.WaitGroup
	for i, h := range hs {
		wg.Add(1)
		go func(i int, h *Handle) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				dst := packet.Address((i+1)%n + 1)
				if err := h.Send(dst, []byte{byte(i), byte(j)}); err != nil {
					t.Errorf("send %d/%d: %v", i, j, err)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i, h)
	}
	wg.Wait()
	total := func() int {
		sum := 0
		for _, h := range hs {
			sum += len(h.Messages())
		}
		return sum
	}
	if !waitFor(t, 20*time.Second, func() bool { return total() >= n*5*8/10 }) {
		t.Fatalf("only %d/%d messages delivered", total(), n*5)
	}
}

func TestLiveValidation(t *testing.T) {
	if _, err := New(Config{TimeScale: -1}); err == nil {
		t.Error("negative time scale: want error")
	}
	net, err := New(liveConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNode(1); err == nil {
		t.Error("duplicate address: want error")
	}
	net.Close()
	net.Close() // idempotent
	if _, err := net.AddNode(2); err == nil {
		t.Error("AddNode after Close: want error")
	}
}

func TestLiveCloseUnblocksDo(t *testing.T) {
	net, err := New(liveConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	h, err := net.AddNode(1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		net.Close()
	}()
	go func() {
		// Hammer Do across the close; none may hang.
		for i := 0; i < 1000; i++ {
			h.Do(func(*core.Node) {})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Do hung across Close")
	}
}

// TestMetricsEndpointScrape is the live-exposition acceptance test: an
// opt-in HTTP listener serves Prometheus-format metrics and a health
// probe while the mesh runs, and a real scrape over TCP finds tx/rx/drop
// counters and the duty-cycle gauge.
func TestMetricsEndpointScrape(t *testing.T) {
	addrs := []packet.Address{1, 2, 3}
	cfg := liveConfig(chainConnect(addrs...))
	cfg.MetricsAddr = "127.0.0.1:0"
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	hs := make([]*Handle, len(addrs))
	for i, a := range addrs {
		if hs[i], err = net.AddNode(a); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, 10*time.Second, func() bool { return hs[0].HasRoute(3) }) {
		t.Fatal("no route 1->3")
	}
	if err := hs[0].Send(3, []byte("scrape me")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return len(hs[2].Messages()) >= 1 })

	base := "http://" + net.MetricsAddr()
	scrape := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	body := scrape("/metrics")
	for _, want := range []string{
		"mesh_tx_frames_total",
		"mesh_rx_frames_total",
		"mesh_drop_noroute_total",
		"mesh_dutycycle_utilization",
		"node_0001_tx_frames_total",
		"# TYPE mesh_tx_frames_total counter",
		"# TYPE mesh_dutycycle_utilization gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The mesh has been beaconing and forwarding: totals must be nonzero.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "mesh_tx_frames_total ") {
			if strings.TrimPrefix(line, "mesh_tx_frames_total ") == "0" {
				t.Error("mesh_tx_frames_total is zero on a running mesh")
			}
		}
	}

	health := scrape("/healthz")
	if !strings.Contains(health, `"status":"ok"`) || !strings.Contains(health, `"nodes":3`) {
		t.Errorf("healthz = %s", health)
	}

	// Scrapes must stay readable while nodes keep working (the race
	// detector guards this test).
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = scrape("/metrics")
		}()
	}
	hs[0].Send(3, []byte("concurrent with scrapes"))
	wg.Wait()
}
