package loraphy

import (
	"fmt"
	"math"
	"time"
)

// PayloadSymbols returns the number of payload symbols for a PHY payload of
// payloadLen bytes, per the Semtech SX1276 datasheet (§4.1.1.7):
//
//	n = 8 + max(ceil((8PL - 4SF + 28 + 16CRC - 20IH) / (4(SF - 2DE))) * (CR+4), 0)
//
// where PL is the payload length in bytes, IH is 1 for implicit headers,
// DE is 1 when low-data-rate optimization is on, and CR+4 is the coding
// denominator.
func (p Params) PayloadSymbols(payloadLen int) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if payloadLen < 0 || payloadLen > MaxPHYPayload {
		return 0, fmt.Errorf("loraphy: payload length %d out of range [0,%d]", payloadLen, MaxPHYPayload)
	}
	sf := int(p.SpreadingFactor)
	crc := 0
	if p.CRC {
		crc = 1
	}
	ih := 0
	if !p.ExplicitHeader {
		ih = 1
	}
	de := 0
	if p.LowDataRateEnabled() {
		de = 1
	}
	num := 8*payloadLen - 4*sf + 28 + 16*crc - 20*ih
	den := 4 * (sf - 2*de)
	extra := int(math.Ceil(float64(num)/float64(den))) * p.CodingRate.Denominator()
	if extra < 0 {
		extra = 0
	}
	return 8 + extra, nil
}

// PreambleTime returns the duration of the preamble including the 4.25
// symbols of sync word: (N_preamble + 4.25) * T_sym.
func (p Params) PreambleTime() time.Duration {
	sym := p.SymbolTime()
	return time.Duration((float64(p.PreambleSymbols) + 4.25) * float64(sym))
}

// Airtime returns the total time on air of a frame with a PHY payload of
// payloadLen bytes: preamble plus payload symbols.
func (p Params) Airtime(payloadLen int) (time.Duration, error) {
	nSym, err := p.PayloadSymbols(payloadLen)
	if err != nil {
		return 0, err
	}
	payload := time.Duration(float64(nSym) * float64(p.SymbolTime()))
	return p.PreambleTime() + payload, nil
}

// MustAirtime is Airtime for parameters and lengths already validated by
// the caller; it panics on error (a programming bug, not a runtime
// condition).
func (p Params) MustAirtime(payloadLen int) time.Duration {
	d, err := p.Airtime(payloadLen)
	if err != nil {
		panic(err)
	}
	return d
}
