package loraphy

import "fmt"

// Capture and co-channel rejection model.
//
// When two LoRa transmissions overlap on the same channel, the receiver
// may still decode the stronger one ("capture effect") if it exceeds the
// interferer by a margin that depends on the spreading-factor pair.
// Same-SF transmissions require roughly a 6 dB margin; different SFs are
// quasi-orthogonal and tolerate the interferer being substantially
// *stronger* than the signal. The matrix below follows the co-channel
// rejection measurements popularised by Croce et al., "Impact of LoRa
// Imperfect Orthogonality" (IEEE Comm. Letters 2018), also used by the
// LoRaSim / FLoRa simulators.

// captureThresholdDB[signalSF][interfererSF] is the minimum
// (signal - interferer) power difference in dB for the signal to survive.
// Negative entries mean the interferer may exceed the signal by that
// magnitude and the signal still decodes.
var captureThresholdDB = map[SpreadingFactor]map[SpreadingFactor]float64{
	SF7:  {SF7: 6, SF8: -8, SF9: -9, SF10: -9, SF11: -9, SF12: -9},
	SF8:  {SF7: -11, SF8: 6, SF9: -11, SF10: -12, SF11: -13, SF12: -13},
	SF9:  {SF7: -15, SF8: -13, SF9: 6, SF10: -13, SF11: -14, SF12: -15},
	SF10: {SF7: -19, SF8: -18, SF9: -17, SF10: 6, SF11: -17, SF12: -18},
	SF11: {SF7: -22, SF8: -22, SF9: -21, SF10: -20, SF11: 6, SF12: -20},
	SF12: {SF7: -25, SF8: -25, SF9: -25, SF10: -24, SF11: -23, SF12: 6},
}

// CaptureThresholdDB returns the minimum power margin (dB) by which a
// signal at signalSF must exceed an interferer at interfererSF to survive
// the overlap.
func CaptureThresholdDB(signalSF, interfererSF SpreadingFactor) (float64, error) {
	row, ok := captureThresholdDB[signalSF]
	if !ok {
		return 0, fmt.Errorf("loraphy: no capture row for signal %v", signalSF)
	}
	th, ok := row[interfererSF]
	if !ok {
		return 0, fmt.Errorf("loraphy: no capture threshold for %v vs %v", signalSF, interfererSF)
	}
	return th, nil
}

// Survives reports whether a signal with power signalDBm at signalSF
// decodes despite an overlapping interferer with power interfererDBm at
// interfererSF on the same channel.
func Survives(signalSF SpreadingFactor, signalDBm float64, interfererSF SpreadingFactor, interfererDBm float64) (bool, error) {
	th, err := CaptureThresholdDB(signalSF, interfererSF)
	if err != nil {
		return false, err
	}
	return signalDBm-interfererDBm >= th, nil
}

// CriticalSectionSymbols is the number of final preamble symbols that must
// be interference-free for the receiver to lock onto a frame. The LoRaSim
// collision model uses the last 5 preamble symbols.
const CriticalSectionSymbols = 5
