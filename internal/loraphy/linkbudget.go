package loraphy

import (
	"fmt"
	"math"
)

// Receiver noise characteristics. The thermal noise floor is
// -174 dBm/Hz + 10*log10(BW) + NF, with the SX127x noise figure commonly
// taken as 6 dB.
const (
	// ThermalNoiseDensityDBm is thermal noise power density at 290 K.
	ThermalNoiseDensityDBm = -174.0
	// ReceiverNoiseFigureDB is the assumed SX127x receiver noise figure.
	ReceiverNoiseFigureDB = 6.0
)

// NoiseFloorDBm returns the receiver noise floor for the configured
// bandwidth in dBm.
func (p Params) NoiseFloorDBm() float64 {
	return ThermalNoiseDensityDBm + 10*math.Log10(p.Bandwidth.Hz()) + ReceiverNoiseFigureDB
}

// snrFloorDB maps each spreading factor to the minimum SNR (dB) at which
// the demodulator still decodes, per the SX1276 datasheet.
var snrFloorDB = map[SpreadingFactor]float64{
	SF7:  -7.5,
	SF8:  -10.0,
	SF9:  -12.5,
	SF10: -15.0,
	SF11: -17.5,
	SF12: -20.0,
}

// SNRFloorDB returns the demodulation SNR floor for the spreading factor.
func (sf SpreadingFactor) SNRFloorDB() (float64, error) {
	v, ok := snrFloorDB[sf]
	if !ok {
		return 0, fmt.Errorf("loraphy: no SNR floor for %v", sf)
	}
	return v, nil
}

// SensitivityDBm returns the receiver sensitivity for the configured SF and
// bandwidth: noise floor + SNR demodulation floor. At BW125 this reproduces
// the familiar datasheet ladder (≈ -123 dBm at SF7 down to ≈ -136 dBm at
// SF12).
func (p Params) SensitivityDBm() (float64, error) {
	floor, err := p.SpreadingFactor.SNRFloorDB()
	if err != nil {
		return 0, err
	}
	return p.NoiseFloorDBm() + floor, nil
}

// LinkBudget describes one end-to-end radio link configuration.
type LinkBudget struct {
	// TxPowerDBm is the transmit power at the antenna connector.
	// EU868 permits up to 14 dBm ERP on the common sub-bands.
	TxPowerDBm float64
	// TxAntennaGainDBi and RxAntennaGainDBi are antenna gains.
	TxAntennaGainDBi float64
	RxAntennaGainDBi float64
}

// DefaultLinkBudget returns the EU868 defaults used by the reproduction:
// 14 dBm transmit power with 2.15 dBi (dipole) antennas on both ends.
func DefaultLinkBudget() LinkBudget {
	return LinkBudget{TxPowerDBm: 14, TxAntennaGainDBi: 2.15, RxAntennaGainDBi: 2.15}
}

// RSSI returns the received signal strength for a given path loss in dB.
func (lb LinkBudget) RSSI(pathLossDB float64) float64 {
	return lb.TxPowerDBm + lb.TxAntennaGainDBi + lb.RxAntennaGainDBi - pathLossDB
}

// Reception is the PHY-level outcome of receiving one frame over one link.
type Reception struct {
	RSSIDBm float64
	SNRDB   float64
	// AboveSensitivity reports whether the signal clears both the
	// sensitivity and SNR demodulation floors, i.e. is decodable absent
	// interference.
	AboveSensitivity bool
}

// Receive computes the reception outcome for a frame sent with params p
// over a link with the given budget and path loss.
func Receive(p Params, lb LinkBudget, pathLossDB float64) (Reception, error) {
	sens, err := p.SensitivityDBm()
	if err != nil {
		return Reception{}, err
	}
	snrFloor, err := p.SpreadingFactor.SNRFloorDB()
	if err != nil {
		return Reception{}, err
	}
	rssi := lb.RSSI(pathLossDB)
	snr := rssi - p.NoiseFloorDBm()
	return Reception{
		RSSIDBm:          rssi,
		SNRDB:            snr,
		AboveSensitivity: rssi >= sens && snr >= snrFloor,
	}, nil
}

// MaxRangeMeters returns the distance at which the link exactly meets the
// sensitivity floor under the given path-loss model, found by bisection.
// It returns 0 if even zero distance is below sensitivity, and cap if the
// link still closes at the cap distance.
func MaxRangeMeters(p Params, lb LinkBudget, model PathLossModel, capMeters float64) (float64, error) {
	sens, err := p.SensitivityDBm()
	if err != nil {
		return 0, err
	}
	closes := func(d float64) bool {
		return lb.RSSI(model.PathLossDB(d, p.FrequencyHz)) >= sens
	}
	if !closes(1) {
		return 0, nil
	}
	if closes(capMeters) {
		return capMeters, nil
	}
	lo, hi := 1.0, capMeters
	for i := 0; i < 64 && hi-lo > 0.1; i++ {
		mid := (lo + hi) / 2
		if closes(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
