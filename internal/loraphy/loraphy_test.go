package loraphy

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSymbolTime(t *testing.T) {
	tests := []struct {
		sf   SpreadingFactor
		bw   Bandwidth
		want time.Duration
	}{
		{SF7, BW125, 1024 * time.Microsecond},
		{SF8, BW125, 2048 * time.Microsecond},
		{SF12, BW125, 32768 * time.Microsecond},
		{SF7, BW250, 512 * time.Microsecond},
		{SF7, BW500, 256 * time.Microsecond},
	}
	for _, tt := range tests {
		p := DefaultParams()
		p.SpreadingFactor = tt.sf
		p.Bandwidth = tt.bw
		if got := p.SymbolTime(); got != tt.want {
			t.Errorf("%v/%v symbol time = %v, want %v", tt.sf, tt.bw, got, tt.want)
		}
	}
}

func TestLowDataRateAutomaticRule(t *testing.T) {
	p := DefaultParams()
	for _, sf := range AllSpreadingFactors() {
		p.SpreadingFactor = sf
		want := sf >= SF11 // at BW125, symbol time exceeds 16 ms from SF11
		if got := p.LowDataRateEnabled(); got != want {
			t.Errorf("%v LowDataRateEnabled = %v, want %v", sf, got, want)
		}
	}
	p.SpreadingFactor = SF7
	p.ForceLowDataRate = true
	if !p.LowDataRateEnabled() {
		t.Error("ForceLowDataRate not honoured")
	}
}

// TestAirtimeKnownValues cross-checks the Semtech formula against values
// produced by the widely used airtime calculators (SX1276 datasheet
// formula, 8-symbol preamble, explicit header, CRC on).
func TestAirtimeKnownValues(t *testing.T) {
	tests := []struct {
		name    string
		sf      SpreadingFactor
		bw      Bandwidth
		cr      CodingRate
		payload int
		wantMS  float64
	}{
		// Canonical reference points for LoRaWAN-style frames.
		{"SF7/125 13B", SF7, BW125, CR4_5, 13, 46.34},
		{"SF7/125 51B", SF7, BW125, CR4_5, 51, 102.66},
		{"SF9/125 13B", SF9, BW125, CR4_5, 13, 164.86},
		{"SF12/125 13B", SF12, BW125, CR4_5, 13, 1155.07},
		{"SF7/125 222B", SF7, BW125, CR4_5, 222, 348.42},
		{"SF7/250 13B", SF7, BW250, CR4_5, 13, 23.17},
	}
	for _, tt := range tests {
		p := DefaultParams()
		p.SpreadingFactor = tt.sf
		p.Bandwidth = tt.bw
		p.CodingRate = tt.cr
		got, err := p.Airtime(tt.payload)
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		gotMS := float64(got) / float64(time.Millisecond)
		if math.Abs(gotMS-tt.wantMS) > 0.5 {
			t.Errorf("%s airtime = %.2f ms, want %.2f ms", tt.name, gotMS, tt.wantMS)
		}
	}
}

func TestAirtimeMonotonicInPayload(t *testing.T) {
	p := DefaultParams()
	prev := time.Duration(0)
	for n := 0; n <= MaxPHYPayload; n++ {
		d, err := p.Airtime(n)
		if err != nil {
			t.Fatal(err)
		}
		if d < prev {
			t.Fatalf("airtime(%d) = %v < airtime(%d) = %v", n, d, n-1, prev)
		}
		prev = d
	}
}

func TestAirtimeRejectsBadInput(t *testing.T) {
	p := DefaultParams()
	if _, err := p.Airtime(-1); err == nil {
		t.Error("negative payload: want error")
	}
	if _, err := p.Airtime(MaxPHYPayload + 1); err == nil {
		t.Error("oversize payload: want error")
	}
	p.SpreadingFactor = 42
	if _, err := p.Airtime(10); err == nil {
		t.Error("invalid SF: want error")
	}
}

// TestAirtimePropertySFDoubling checks the structural property that one SF
// step roughly doubles symbol time, so airtime grows monotonically with SF
// for a fixed payload.
func TestAirtimePropertySFDoubling(t *testing.T) {
	f := func(raw uint8) bool {
		payload := int(raw) % (MaxPHYPayload + 1)
		prev := time.Duration(0)
		for _, sf := range AllSpreadingFactors() {
			p := DefaultParams()
			p.SpreadingFactor = sf
			d, err := p.Airtime(payload)
			if err != nil || d <= prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitRate(t *testing.T) {
	p := DefaultParams() // SF7 BW125 CR4/5
	want := 7.0 * (4.0 / 5.0) * 125e3 / 128.0
	if got := p.BitRate(); math.Abs(got-want) > 1e-6 {
		t.Errorf("BitRate = %v, want %v", got, want)
	}
}

func TestSensitivityLadder(t *testing.T) {
	// The classic BW125 sensitivity ladder from the SX1276 datasheet
	// derivation: noise floor ≈ -117.1 dBm; SF7 ≈ -124.6 ... SF12 ≈ -137.1.
	p := DefaultParams()
	wants := map[SpreadingFactor]float64{
		SF7: -124.6, SF8: -127.1, SF9: -129.6, SF10: -132.1, SF11: -134.6, SF12: -137.1,
	}
	for sf, want := range wants {
		p.SpreadingFactor = sf
		got, err := p.SensitivityDBm()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.2 {
			t.Errorf("%v sensitivity = %.2f, want %.2f", sf, got, want)
		}
	}
}

func TestReceiveThresholds(t *testing.T) {
	p := DefaultParams()
	lb := LinkBudget{TxPowerDBm: 14}
	sens, err := p.SensitivityDBm()
	if err != nil {
		t.Fatal(err)
	}
	// Just above sensitivity: decodable.
	r, err := Receive(p, lb, lb.TxPowerDBm-sens-0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AboveSensitivity {
		t.Errorf("reception at sensitivity+0.1dB should decode: %+v", r)
	}
	// Just below: not decodable.
	r, err = Receive(p, lb, lb.TxPowerDBm-sens+0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.AboveSensitivity {
		t.Errorf("reception at sensitivity-0.1dB should fail: %+v", r)
	}
}

func TestFreeSpacePathLoss(t *testing.T) {
	// Friis at 868 MHz, 1 km is ≈ 91.2 dB.
	got := FreeSpace{}.PathLossDB(1000, 868e6)
	if math.Abs(got-91.2) > 0.3 {
		t.Errorf("free-space 1km@868MHz = %.2f dB, want ≈91.2", got)
	}
	// Clamps below 1 m.
	if a, b := (FreeSpace{}).PathLossDB(0, 868e6), (FreeSpace{}).PathLossDB(1, 868e6); a != b {
		t.Errorf("free-space should clamp d<1m: %v vs %v", a, b)
	}
}

func TestLogDistanceReducesToFreeSpaceAtReference(t *testing.T) {
	m := DefaultLogDistance()
	fs := FreeSpace{}.PathLossDB(1, 868e6)
	if got := m.PathLossDB(1, 868e6); math.Abs(got-fs) > 1e-9 {
		t.Errorf("log-distance at d0 = %v, want free-space %v", got, fs)
	}
	// 10x distance adds 10*n dB.
	d1, d10 := m.PathLossDB(10, 868e6), m.PathLossDB(100, 868e6)
	if math.Abs((d10-d1)-27.0) > 1e-9 {
		t.Errorf("decade slope = %v dB, want 27 (n=2.7)", d10-d1)
	}
}

func TestShadowedModelDeterministicAndSymmetric(t *testing.T) {
	m := ShadowedModel{Base: DefaultLogDistance(), SigmaDB: 8, Seed: 7}
	a := m.LinkPathLossDB(1, 2, 500, 868e6)
	b := m.LinkPathLossDB(1, 2, 500, 868e6)
	if a != b {
		t.Errorf("shadowing not deterministic: %v vs %v", a, b)
	}
	if c := m.LinkPathLossDB(2, 1, 500, 868e6); c != a {
		t.Errorf("shadowing not symmetric: %v vs %v", c, a)
	}
	if d := m.LinkPathLossDB(1, 3, 500, 868e6); d == a {
		t.Errorf("different links got identical shadowing %v", d)
	}
	m2 := m
	m2.Seed = 8
	if e := m2.LinkPathLossDB(1, 2, 500, 868e6); e == a {
		t.Errorf("different seeds got identical shadowing %v", e)
	}
}

func TestShadowedModelZeroSigmaIsBase(t *testing.T) {
	base := DefaultLogDistance()
	m := ShadowedModel{Base: base}
	if got, want := m.LinkPathLossDB(1, 2, 500, 868e6), base.PathLossDB(500, 868e6); got != want {
		t.Errorf("σ=0 shadowed loss = %v, want base %v", got, want)
	}
}

// TestShadowingIsRoughlyStandardNormal samples many links and checks mean
// and variance of the shadowing term.
func TestShadowingIsRoughlyStandardNormal(t *testing.T) {
	m := ShadowedModel{Base: FreeSpace{}, SigmaDB: 1, Seed: 99}
	base := FreeSpace{}.PathLossDB(100, 868e6)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		s := m.LinkPathLossDB(uint64(i), uint64(i)+100000, 100, 868e6) - base
		sum += s
		sumSq += s * s
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("shadowing mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("shadowing variance = %v, want ≈1", variance)
	}
}

func TestCaptureSameSF(t *testing.T) {
	ok, err := Survives(SF7, -100, SF7, -107)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("7 dB margin at same SF should capture")
	}
	ok, err = Survives(SF7, -100, SF7, -104)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("4 dB margin at same SF should collide")
	}
}

func TestCaptureInterSFQuasiOrthogonal(t *testing.T) {
	// SF7 signal survives an SF12 interferer 9 dB stronger but not 10 dB.
	ok, err := Survives(SF7, -100, SF12, -91)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("SF7 vs SF12 at -9 dB margin should survive")
	}
	ok, err = Survives(SF7, -100, SF12, -90)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("SF7 vs SF12 at -10 dB margin should fail")
	}
}

func TestCaptureMatrixComplete(t *testing.T) {
	for _, a := range AllSpreadingFactors() {
		for _, b := range AllSpreadingFactors() {
			th, err := CaptureThresholdDB(a, b)
			if err != nil {
				t.Fatalf("missing capture entry %v vs %v", a, b)
			}
			if a == b && th != 6 {
				t.Errorf("co-SF threshold %v = %v, want 6", a, th)
			}
			if a != b && th >= 0 {
				t.Errorf("inter-SF threshold %v vs %v = %v, want negative", a, b, th)
			}
		}
	}
}

func TestMaxRange(t *testing.T) {
	p := DefaultParams()
	lb := DefaultLinkBudget()
	model := DefaultLogDistance()
	r7, err := MaxRangeMeters(p, lb, model, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	p.SpreadingFactor = SF12
	r12, err := MaxRangeMeters(p, lb, model, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	if r7 <= 0 || r12 <= r7 {
		t.Errorf("ranges SF7=%v SF12=%v, want 0 < SF7 < SF12", r7, r12)
	}
	// SF12 has 12.5 dB more sensitivity; at n=2.7 that is 10^(12.5/27) ≈ 2.9x range.
	ratio := r12 / r7
	if ratio < 2.5 || ratio > 3.3 {
		t.Errorf("range ratio SF12/SF7 = %.2f, want ≈2.9", ratio)
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := good
	bad.PreambleSymbols = 2
	if err := bad.Validate(); err == nil {
		t.Error("preamble=2: want error")
	}
	bad = good
	bad.FrequencyHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("frequency=0: want error")
	}
	bad = good
	bad.CodingRate = 9
	if err := bad.Validate(); err == nil {
		t.Error("CR=9: want error")
	}
}

func TestEnumStrings(t *testing.T) {
	if got := SF7.String(); got != "SF7" {
		t.Errorf("SF7.String() = %q", got)
	}
	if got := BW125.String(); got != "BW125" {
		t.Errorf("BW125.String() = %q", got)
	}
	if got := CR4_5.String(); got != "CR4/5" {
		t.Errorf("CR4_5.String() = %q", got)
	}
	if got := DefaultParams().String(); got != "SF7/BW125/CR4/5@868.1MHz" {
		t.Errorf("Params.String() = %q", got)
	}
}

func BenchmarkAirtime(b *testing.B) {
	p := DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Airtime(i % MaxPHYPayload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShadowedPathLoss(b *testing.B) {
	m := ShadowedModel{Base: DefaultLogDistance(), SigmaDB: 8, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.LinkPathLossDB(uint64(i), uint64(i+1), 500, 868e6)
	}
}

// TestAirtimePropertyCodingRate: airtime is nondecreasing in coding
// overhead for any payload.
func TestAirtimePropertyCodingRate(t *testing.T) {
	f := func(raw uint8) bool {
		payload := int(raw) % (MaxPHYPayload + 1)
		prev := time.Duration(0)
		for _, cr := range []CodingRate{CR4_5, CR4_6, CR4_7, CR4_8} {
			p := DefaultParams()
			p.CodingRate = cr
			d, err := p.Airtime(payload)
			if err != nil || d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSurvivesAntisymmetry: at equal SF, two frames cannot both capture
// each other (one wins or both lose).
func TestSurvivesAntisymmetry(t *testing.T) {
	f := func(p1Raw, p2Raw uint8) bool {
		p1 := -130 + float64(p1Raw)/4
		p2 := -130 + float64(p2Raw)/4
		a, err1 := Survives(SF7, p1, SF7, p2)
		b, err2 := Survives(SF7, p2, SF7, p1)
		if err1 != nil || err2 != nil {
			return false
		}
		return !(a && b) // both surviving a same-SF overlap is impossible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
