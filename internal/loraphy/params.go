// Package loraphy models the LoRa physical layer of an SX127x-class
// transceiver: modulation parameters, the exact Semtech time-on-air
// formula, receiver sensitivity and SNR demodulation floors, path-loss
// models, and the co-channel capture/rejection rules that govern whether
// overlapping transmissions survive.
//
// The model reproduces the published equations and thresholds from the
// Semtech SX1276/77/78/79 datasheet and the LoRa interference literature,
// because the reproduction's evaluation shapes (airtime overhead, range,
// collision losses) depend on those quantities rather than on the silicon.
package loraphy

import (
	"fmt"
	"time"
)

// SpreadingFactor selects the LoRa spreading factor. Higher factors spread
// each symbol over more chips: longer range, lower bit rate, more airtime.
type SpreadingFactor uint8

// Supported spreading factors. Values match the over-the-air SF so that
// arithmetic on them (2^SF chips per symbol) reads naturally.
const (
	SF7  SpreadingFactor = 7
	SF8  SpreadingFactor = 8
	SF9  SpreadingFactor = 9
	SF10 SpreadingFactor = 10
	SF11 SpreadingFactor = 11
	SF12 SpreadingFactor = 12
)

// Valid reports whether the spreading factor is one this model supports.
func (sf SpreadingFactor) Valid() bool { return sf >= SF7 && sf <= SF12 }

func (sf SpreadingFactor) String() string { return fmt.Sprintf("SF%d", uint8(sf)) }

// AllSpreadingFactors lists the supported factors in ascending order,
// for parameter sweeps.
func AllSpreadingFactors() []SpreadingFactor {
	return []SpreadingFactor{SF7, SF8, SF9, SF10, SF11, SF12}
}

// Bandwidth is the LoRa channel bandwidth.
type Bandwidth uint8

// Supported bandwidths.
const (
	BW125 Bandwidth = iota + 1 // 125 kHz, the EU868 default
	BW250                      // 250 kHz
	BW500                      // 500 kHz
)

// Hz returns the bandwidth in hertz.
func (bw Bandwidth) Hz() float64 {
	switch bw {
	case BW125:
		return 125e3
	case BW250:
		return 250e3
	case BW500:
		return 500e3
	default:
		return 0
	}
}

// Valid reports whether the bandwidth is supported.
func (bw Bandwidth) Valid() bool { return bw >= BW125 && bw <= BW500 }

func (bw Bandwidth) String() string {
	switch bw {
	case BW125:
		return "BW125"
	case BW250:
		return "BW250"
	case BW500:
		return "BW500"
	default:
		return fmt.Sprintf("Bandwidth(%d)", uint8(bw))
	}
}

// CodingRate is the LoRa forward-error-correction rate 4/(4+CR).
type CodingRate uint8

// Supported coding rates.
const (
	CR4_5 CodingRate = iota + 1 // 4/5
	CR4_6                       // 4/6
	CR4_7                       // 4/7
	CR4_8                       // 4/8
)

// Denominator returns the (4+CR) denominator used by the airtime formula;
// e.g. CR4_5 yields 5.
func (cr CodingRate) Denominator() int { return int(cr) + 4 }

// Valid reports whether the coding rate is supported.
func (cr CodingRate) Valid() bool { return cr >= CR4_5 && cr <= CR4_8 }

func (cr CodingRate) String() string {
	if !cr.Valid() {
		return fmt.Sprintf("CodingRate(%d)", uint8(cr))
	}
	return fmt.Sprintf("CR4/%d", cr.Denominator())
}

// MaxPHYPayload is the largest LoRa PHY payload in bytes (SX127x FIFO and
// length-field limit). The mesh layer chunks anything larger.
const MaxPHYPayload = 255

// Params bundles the radio settings that determine airtime and reception.
type Params struct {
	// SpreadingFactor, Bandwidth and CodingRate select the LoRa
	// modulation. The EU868 mesh default is SF7/BW125/CR4_5.
	SpreadingFactor SpreadingFactor
	Bandwidth       Bandwidth
	CodingRate      CodingRate

	// PreambleSymbols is the programmed preamble length, excluding the
	// 4.25 symbols of sync word the radio appends. SX127x default: 8.
	PreambleSymbols int

	// ExplicitHeader selects the standard explicit PHY header (length,
	// CR, CRC flag). LoRaMesher uses explicit headers.
	ExplicitHeader bool

	// CRC enables the 16-bit payload CRC.
	CRC bool

	// LowDataRateOptimize widens symbols for stability; the SX127x
	// mandates it when the symbol time exceeds 16 ms (SF11/SF12 at
	// BW125). ForceLowDataRate overrides the automatic rule for tests.
	ForceLowDataRate bool

	// FrequencyHz is the carrier frequency, used to separate logical
	// channels and for free-space path loss. Default 868.1 MHz.
	FrequencyHz float64
}

// DefaultParams returns the configuration the LoRaMesher prototype ships
// with: SF7, 125 kHz, CR 4/5, 8-symbol preamble, explicit header with CRC,
// on the EU868 868.1 MHz channel.
func DefaultParams() Params {
	return Params{
		SpreadingFactor: SF7,
		Bandwidth:       BW125,
		CodingRate:      CR4_5,
		PreambleSymbols: 8,
		ExplicitHeader:  true,
		CRC:             true,
		FrequencyHz:     868.1e6,
	}
}

// Validate checks the parameter combination.
func (p Params) Validate() error {
	if !p.SpreadingFactor.Valid() {
		return fmt.Errorf("loraphy: invalid spreading factor %d", p.SpreadingFactor)
	}
	if !p.Bandwidth.Valid() {
		return fmt.Errorf("loraphy: invalid bandwidth %d", p.Bandwidth)
	}
	if !p.CodingRate.Valid() {
		return fmt.Errorf("loraphy: invalid coding rate %d", p.CodingRate)
	}
	if p.PreambleSymbols < 6 || p.PreambleSymbols > 65535 {
		return fmt.Errorf("loraphy: preamble %d symbols out of range [6,65535]", p.PreambleSymbols)
	}
	if p.FrequencyHz <= 0 {
		return fmt.Errorf("loraphy: frequency %v Hz must be positive", p.FrequencyHz)
	}
	return nil
}

// SymbolTime returns the duration of one LoRa symbol: 2^SF / BW.
func (p Params) SymbolTime() time.Duration {
	chips := float64(int(1) << p.SpreadingFactor)
	sec := chips / p.Bandwidth.Hz()
	return time.Duration(sec * float64(time.Second))
}

// LowDataRateEnabled reports whether low-data-rate optimization applies,
// either forced or by the SX127x 16 ms symbol-time rule.
func (p Params) LowDataRateEnabled() bool {
	if p.ForceLowDataRate {
		return true
	}
	return p.SymbolTime() > 16*time.Millisecond
}

// BitRate returns the equivalent physical bit rate in bits/second:
// SF * (4 / (4+CR)) * BW / 2^SF.
func (p Params) BitRate() float64 {
	sf := float64(p.SpreadingFactor)
	return sf * (4.0 / float64(p.CodingRate.Denominator())) * p.Bandwidth.Hz() / float64(int(1)<<p.SpreadingFactor)
}

func (p Params) String() string {
	return fmt.Sprintf("%v/%v/%v@%.1fMHz", p.SpreadingFactor, p.Bandwidth, p.CodingRate, p.FrequencyHz/1e6)
}
