package loraphy

import (
	"fmt"
	"math"
)

// PathLossModel maps a link distance to an attenuation in dB. Models are
// pure functions of distance and frequency; per-link shadowing is layered
// on top by ShadowedModel so the base models stay deterministic.
type PathLossModel interface {
	// PathLossDB returns the attenuation in dB over distanceMeters at
	// carrier frequency freqHz. Implementations must clamp distances
	// below one meter to one meter to stay finite.
	PathLossDB(distanceMeters, freqHz float64) float64
	// Name identifies the model in traces and experiment output.
	Name() string
}

// FreeSpace is the Friis free-space path-loss model:
// 20log10(d) + 20log10(f) - 147.55.
type FreeSpace struct{}

var _ PathLossModel = FreeSpace{}

// PathLossDB implements PathLossModel.
func (FreeSpace) PathLossDB(distanceMeters, freqHz float64) float64 {
	d := math.Max(distanceMeters, 1)
	return 20*math.Log10(d) + 20*math.Log10(freqHz) - 147.55
}

// Name implements PathLossModel.
func (FreeSpace) Name() string { return "free-space" }

// LogDistance is the log-distance model PL(d) = PL(d0) + 10·n·log10(d/d0),
// the standard fit for LoRa deployments. The urban LoRa literature uses
// exponents n ≈ 2.7–3.5; suburban campus fits around 2.7.
type LogDistance struct {
	// ReferenceLossDB is PL(d0), the loss at the reference distance.
	// If zero, the free-space loss at d0 is used.
	ReferenceLossDB float64
	// ReferenceMeters is d0; defaults to 1 m when zero.
	ReferenceMeters float64
	// Exponent is the decay exponent n; defaults to 2.7 when zero.
	Exponent float64
}

var _ PathLossModel = LogDistance{}

// DefaultLogDistance returns the suburban-campus fit used for the
// reproduction's testbed-like topologies: d0 = 1 m, n = 2.7, free-space
// reference loss.
func DefaultLogDistance() LogDistance {
	return LogDistance{ReferenceMeters: 1, Exponent: 2.7}
}

// PathLossDB implements PathLossModel.
func (m LogDistance) PathLossDB(distanceMeters, freqHz float64) float64 {
	d0 := m.ReferenceMeters
	if d0 <= 0 {
		d0 = 1
	}
	n := m.Exponent
	if n <= 0 {
		n = 2.7
	}
	ref := m.ReferenceLossDB
	if ref == 0 {
		ref = FreeSpace{}.PathLossDB(d0, freqHz)
	}
	d := math.Max(distanceMeters, d0)
	return ref + 10*n*math.Log10(d/d0)
}

// Name implements PathLossModel.
func (m LogDistance) Name() string {
	n := m.Exponent
	if n <= 0 {
		n = 2.7
	}
	return fmt.Sprintf("log-distance(n=%.2f)", n)
}

// ShadowedModel adds static per-link log-normal shadowing on top of a base
// model. The shadowing sample for a link is a deterministic function of the
// (unordered) link key and the seed, so a given link has a stable quality
// for the whole run — matching how obstacles affect a fixed deployment —
// and runs are reproducible.
type ShadowedModel struct {
	// Base is the underlying distance-dependent model.
	Base PathLossModel
	// SigmaDB is the shadowing standard deviation; LoRa measurement
	// campaigns report 6–10 dB outdoors.
	SigmaDB float64
	// Seed decorrelates shadowing across runs.
	Seed uint64
}

// LinkPathLossDB returns the shadowed loss for the specific link keyed by
// (a, b). The key is order-independent: shadowing is symmetric.
func (m ShadowedModel) LinkPathLossDB(a, b uint64, distanceMeters, freqHz float64) float64 {
	base := m.Base.PathLossDB(distanceMeters, freqHz)
	if m.SigmaDB <= 0 {
		return base
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return base + m.SigmaDB*gaussianFromHash(mix64(lo^rotl(hi, 32)^m.Seed))
}

// PathLossDB implements PathLossModel by returning the unshadowed base
// loss; use LinkPathLossDB when link identities are known.
func (m ShadowedModel) PathLossDB(distanceMeters, freqHz float64) float64 {
	return m.Base.PathLossDB(distanceMeters, freqHz)
}

// Name implements PathLossModel.
func (m ShadowedModel) Name() string {
	return fmt.Sprintf("%s+shadow(σ=%.1fdB)", m.Base.Name(), m.SigmaDB)
}

var _ PathLossModel = ShadowedModel{}

// mix64 is the SplitMix64 finalizer, a high-quality 64-bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// gaussianFromHash converts a hash to a standard normal sample using the
// Box-Muller transform on two derived uniforms.
func gaussianFromHash(h uint64) float64 {
	u1 := (float64(h>>11) + 0.5) / (1 << 53)
	u2 := (float64(mix64(h)>>11) + 0.5) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
