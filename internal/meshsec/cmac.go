package meshsec

import "crypto/cipher"

// AES-CMAC (RFC 4493): the MAC half of the frame AEAD. Implemented here
// because the standard library ships AES but no CMAC, and the repo is
// dependency-free by policy.

// cmacSubkeys derives the two CMAC subkeys K1, K2 from the block cipher.
func cmacSubkeys(b cipher.Block, k1, k2 *[16]byte) {
	var l [16]byte
	b.Encrypt(l[:], l[:])
	dbl(k1, &l)
	dbl(k2, k1)
}

// dbl is doubling in GF(2^128) with the x^128+x^7+x^2+x+1 polynomial.
func dbl(dst, src *[16]byte) {
	var carry byte
	for i := 15; i >= 0; i-- {
		c := src[i] >> 7
		dst[i] = src[i]<<1 | carry
		carry = c
	}
	if carry != 0 {
		dst[15] ^= 0x87
	}
}

// cmac computes the full 16-byte AES-CMAC tag of msg.
func cmac(b cipher.Block, k1, k2 *[16]byte, msg []byte, tag *[16]byte) {
	var x [16]byte
	n := len(msg)
	// All complete blocks but the last.
	full := (n - 1) / 16 // index of the final block
	if n == 0 {
		full = 0
	}
	for i := 0; i < full; i++ {
		for j := 0; j < 16; j++ {
			x[j] ^= msg[16*i+j]
		}
		b.Encrypt(x[:], x[:])
	}
	// Final block: XOR K1 when complete, pad + XOR K2 otherwise.
	var last [16]byte
	rem := msg[16*full:]
	if len(rem) == 16 {
		copy(last[:], rem)
		for j := 0; j < 16; j++ {
			last[j] ^= k1[j]
		}
	} else {
		copy(last[:], rem)
		last[len(rem)] = 0x80
		for j := 0; j < 16; j++ {
			last[j] ^= k2[j]
		}
	}
	for j := 0; j < 16; j++ {
		x[j] ^= last[j]
	}
	b.Encrypt(x[:], x[:])
	*tag = x
}
