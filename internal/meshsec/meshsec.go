// Package meshsec is the mesh's link-layer security subsystem:
// authenticated encryption, replay protection, and key management for
// LoRaMesher frames.
//
// The model is a single shared network key per mesh (the way deployed
// LoRa meshes such as Meshtastic provision channels). Every node derives
// a per-origin session key from (netkey, 16-bit origin address); a frame
// is encrypted and authenticated ONCE by its originator under that
// origin's session key, with an AEAD nonce built from the origin address
// and a monotonic 32-bit frame counter carried in the secured wire
// header (see internal/packet). Because the MIC covers only the
// hop-invariant fields — the hop-local via is excluded, exactly like the
// trace ID — forwarders verify, rewrite via, and re-seal byte-identically
// without any per-hop key agreement, and every receiver keeps one sliding
// replay window per origin.
//
// Construction: AES-128-CTR encryption with an AES-CMAC (RFC 4493) tag
// truncated to the 4-byte wire MIC, i.e. CCM's two halves composed
// encrypt-then-MAC. Everything is a pure function of (netkey, addresses,
// counters), so seeded simulator runs stay byte-identical replayable.
//
// Threat model: an outside radio without the network key cannot read
// payloads, forge or tamper with frames (including routing HELLOs), or
// replay captured traffic. NOT protected: traffic analysis (headers are
// plaintext so forwarders can route), jamming/collisions, via-field
// tampering (hop-local, self-healing via retransmission), and insiders
// holding the network key.
package meshsec

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/packet"
)

// Key is a 128-bit network key.
type Key [16]byte

// ParseKey decodes a 32-hex-digit network key.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("meshsec: malformed key (want 32 hex digits): %v", err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("meshsec: malformed key: got %d hex digits, want 32", 2*len(b))
	}
	copy(k[:], b)
	return k, nil
}

func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Errors returned by Open.
var (
	// ErrAuth means the MIC did not verify under any installed key: the
	// frame is forged, corrupted, or sealed under an unknown key.
	ErrAuth = errors.New("meshsec: authentication failed")
	// ErrReplay means the frame authenticated but its counter was already
	// accepted from that origin (or fell behind the replay window).
	ErrReplay = errors.New("meshsec: replayed frame counter")
)

// session holds the cipher state derived for one origin address under
// one network key.
type session struct {
	block  cipher.Block
	k1, k2 [16]byte // CMAC subkeys
}

// Link is one node's security state: the installed network key(s), the
// node's own monotonic frame counter, per-origin session-key caches, and
// per-origin replay windows.
//
// The Link is designed to be owned by the HOST (the simulator handle or
// the device firmware's persistent store), not by the protocol engine:
// engines are rebuilt on crash/restart, and a counter that reset to zero
// would reuse AEAD nonces. Passing the same Link into the rebuilt engine
// models counter persistence across reboots.
//
// Not safe for concurrent use; each node owns exactly one.
type Link struct {
	addr packet.Address

	cur, prev, next          Key
	hasPrev, hasNext         bool
	curGen, prevGen, nextGen uint32 // allocated by genSeq; key session cache entries
	genSeq                   uint32 // generation allocator (never reused)

	counter uint32

	sessions map[sessKey]*session
	windows  map[packet.Address]*window

	scratch []byte // decrypted-payload buffer, valid until the next Open
	macBuf  []byte // CMAC input assembly buffer
}

type sessKey struct {
	addr packet.Address
	gen  uint32
}

// NewLink returns the security state for a node with the given address
// under the given network key.
func NewLink(key Key, addr packet.Address) *Link {
	return &Link{
		addr:     addr,
		cur:      key,
		curGen:   1,
		genSeq:   1,
		sessions: make(map[sessKey]*session),
		windows:  make(map[packet.Address]*window),
	}
}

// newGen allocates a session-cache generation that has never been used
// by this link, so retired generations' cache entries can never alias a
// live key's.
func (l *Link) newGen() uint32 {
	l.genSeq++
	return l.genSeq
}

// Addr returns the owning node's address.
func (l *Link) Addr() packet.Address { return l.addr }

// Counter returns the last frame counter issued (0 = none yet).
func (l *Link) Counter() uint32 { return l.counter }

// ReplayStats summarizes the link's replay-protection state for the
// health/metrics exporters: how many origins have a replay window, the
// total admitted counters those windows remember (occupancy), and the
// highest frame counter authenticated from any origin (the rx
// high-water mark; the tx mark is Counter). Call from the owning node's
// execution context, like Open.
func (l *Link) ReplayStats() (origins, occupancy int, rxHigh uint32) {
	for _, w := range l.windows {
		origins++
		occupancy += w.occupancy()
		if w.top > rxHigh {
			rxHigh = w.top
		}
	}
	return origins, occupancy, rxHigh
}

// NextCounter issues the next monotonic frame counter. Counters start at
// 1; 0 on the wire would mean "never sealed". The 32-bit space outlasts
// any deployment (one frame per second for 136 years).
func (l *Link) NextCounter() uint32 {
	l.counter++
	return l.counter
}

// Stage installs key for ACCEPTANCE only: frames sealed under it open,
// but Seal keeps using the current key. Staging is phase one of a
// loss-free three-phase rotation (stage everywhere, Rotate everywhere,
// RetirePrev everywhere): once the whole mesh has the new key staged,
// nodes can switch their seal key in any order without a single frame —
// in either direction — failing authentication mid-rollout. Staging the
// current key is a no-op; staging a different key replaces any earlier
// staged key. Idempotent.
func (l *Link) Stage(key Key) {
	if key == l.cur || (l.hasNext && key == l.next) {
		return
	}
	if l.hasNext {
		l.evictGen(l.nextGen)
	}
	l.next, l.nextGen, l.hasNext = key, l.newGen(), true
}

// Rotate installs a new network key as the seal key. The old key is
// kept as a fallback for Open so a mesh can be re-keyed node by node
// (far-to-near from the gateway) without partitioning itself
// mid-rotation; Seal switches to the new key immediately. A previously
// Staged key is promoted in place (its cached sessions carry over). The
// frame counter is NOT reset: it keeps climbing across rotations, so a
// nonce is never reused even if a key is ever re-installed. Replay
// windows are kept for the same reason.
func (l *Link) Rotate(key Key) {
	if key == l.cur {
		return
	}
	l.prev, l.prevGen, l.hasPrev = l.cur, l.curGen, true
	if l.hasNext && key == l.next {
		l.cur, l.curGen = l.next, l.nextGen
	} else {
		if l.hasNext {
			// Rotating to an unrelated key supersedes the staged one.
			l.evictGen(l.nextGen)
		}
		l.cur, l.curGen = key, l.newGen()
	}
	l.next, l.nextGen, l.hasNext = Key{}, 0, false
}

// NetKey returns the current network key (for host-side provisioning of
// additional nodes).
func (l *Link) NetKey() Key { return l.cur }

// RetirePrev drops the previous network key kept by Rotate, ending the
// rollout grace period: frames sealed under the old key stop
// authenticating from this moment. A control plane calls this on every
// node once the whole mesh has rotated (the commit phase of a two-phase
// rekey) — until then a captured old-key corpus still authenticates and
// burns replay-window checks; after it, replayed old traffic is plain
// garbage (sec.drop.auth). Idempotent.
func (l *Link) RetirePrev() {
	if !l.hasPrev {
		return
	}
	l.evictGen(l.prevGen)
	l.prev = Key{}
	l.prevGen = 0
	l.hasPrev = false
}

// evictGen drops a retired generation's cached cipher state.
func (l *Link) evictGen(gen uint32) {
	for sk := range l.sessions {
		if sk.gen == gen {
			delete(l.sessions, sk)
		}
	}
}

// session returns (caching) the cipher state for frames originated by
// addr under the given key generation.
func (l *Link) session(addr packet.Address, key Key, gen uint32) (*session, error) {
	sk := sessKey{addr, gen}
	if s, ok := l.sessions[sk]; ok {
		return s, nil
	}
	nk, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("meshsec: %w", err)
	}
	// Per-origin session key: AES(netkey, 0x01 || addr || 0...). Distinct
	// origins get unrelated keys; an attacker learning one session key
	// (e.g. from a captured device) still cannot forge for other origins
	// without inverting AES.
	var blk [16]byte
	blk[0] = 0x01
	binary.BigEndian.PutUint16(blk[1:3], uint16(addr))
	nk.Encrypt(blk[:], blk[:])
	b, err := aes.NewCipher(blk[:])
	if err != nil {
		return nil, fmt.Errorf("meshsec: %w", err)
	}
	s := &session{block: b}
	cmacSubkeys(b, &s.k1, &s.k2)
	l.sessions[sk] = s
	return s, nil
}

// aad assembles the 13 bytes of authenticated associated data: every
// hop-invariant header field. Via is deliberately excluded so forwarders
// can rewrite it; see the package comment for why that is acceptable.
func secAAD(p *packet.Packet, buf *[13]byte) {
	buf[0] = packet.SecVersion<<4 | p.SecFlags&0x0F
	binary.BigEndian.PutUint16(buf[1:3], uint16(p.Dst))
	binary.BigEndian.PutUint16(buf[3:5], uint16(p.Src))
	buf[5] = byte(p.Type)
	buf[6] = p.SeqID
	binary.BigEndian.PutUint16(buf[7:9], p.Number)
	binary.BigEndian.PutUint32(buf[9:13], p.Counter)
}

// ctrXOR applies the CTR keystream for (origin, counter) to data in
// place. The IV is unique per (session key, origin, counter) and frames
// are < 16 blocks, so the keystream never repeats.
func ctrXOR(s *session, src packet.Address, counter uint32, data []byte) {
	var iv, ks [16]byte
	iv[0] = 0x02
	binary.BigEndian.PutUint16(iv[1:3], uint16(src))
	binary.BigEndian.PutUint32(iv[3:7], counter)
	for i := 0; i < len(data); i += 16 {
		binary.BigEndian.PutUint16(iv[14:16], uint16(i/16))
		s.block.Encrypt(ks[:], iv[:])
		n := len(data) - i
		if n > 16 {
			n = 16
		}
		for j := 0; j < n; j++ {
			data[i+j] ^= ks[j]
		}
	}
}

// mic computes the truncated CMAC tag over aad || ciphertext.
func (l *Link) mic(s *session, p *packet.Packet, ct []byte) [packet.SecMICLen]byte {
	var aad [13]byte
	secAAD(p, &aad)
	l.macBuf = append(l.macBuf[:0], aad[:]...)
	l.macBuf = append(l.macBuf, ct...)
	var tag [16]byte
	cmac(s.block, &s.k1, &s.k2, l.macBuf, &tag)
	var out [packet.SecMICLen]byte
	copy(out[:], tag[:])
	return out
}

// SealFrame encrypts and authenticates an encoded secured frame in
// place. frame must be the AppendMarshal encoding of p (plaintext
// payload, zero MIC trailer); on return the payload bytes are ciphertext
// and the trailer holds the MIC. Sealing uses the session key of the
// frame's ORIGIN (p.Src) under the current network key, so forwarding a
// frame re-seals it byte-identically to the original transmission.
func (l *Link) SealFrame(frame []byte, p *packet.Packet) error {
	if !p.Secured {
		return errors.New("meshsec: SealFrame on an unsecured packet")
	}
	if len(frame) < packet.SecMICLen || len(frame) != p.WireLen() {
		return errors.New("meshsec: frame does not match packet")
	}
	s, err := l.session(p.Src, l.cur, l.curGen)
	if err != nil {
		return err
	}
	end := len(frame) - packet.SecMICLen
	start := end - len(p.Payload)
	if p.SecFlags&packet.SecFlagEncrypted != 0 {
		ctrXOR(s, p.Src, p.Counter, frame[start:end])
	}
	m := l.mic(s, p, frame[start:end])
	copy(frame[end:], m[:])
	return nil
}

// Open verifies and decrypts a secured packet fresh from Unmarshal
// (payload still ciphertext, aliasing the receive buffer). On success
// the packet's payload is replaced with plaintext held in a buffer owned
// by the Link — valid until the next Open; callers that retain it must
// copy (core's deliver/forward paths already do).
//
// Verification order matters: the MIC is checked first (under the
// current key, then the previous key during a rotation), and only an
// authenticated counter may advance the replay window — otherwise a
// forger could poison windows and block legitimate traffic.
func (l *Link) Open(p *packet.Packet) error {
	if !p.Secured {
		return errors.New("meshsec: Open on an unsecured packet")
	}
	s, err := l.session(p.Src, l.cur, l.curGen)
	if err != nil {
		return err
	}
	if l.mic(s, p, p.Payload) != p.MIC {
		ok := false
		if l.hasPrev {
			ps, err := l.session(p.Src, l.prev, l.prevGen)
			if err != nil {
				return err
			}
			if l.mic(ps, p, p.Payload) == p.MIC {
				s, ok = ps, true
			}
		}
		if !ok && l.hasNext {
			// A staged (not yet active) key accepts too: peers that have
			// already rotated stay readable mid-rollout.
			ns, err := l.session(p.Src, l.next, l.nextGen)
			if err != nil {
				return err
			}
			if l.mic(ns, p, p.Payload) == p.MIC {
				s, ok = ns, true
			}
		}
		if !ok {
			return ErrAuth
		}
	}
	w := l.windows[p.Src]
	if w == nil {
		w = &window{}
		l.windows[p.Src] = w
	}
	if p.Type == packet.TypeHello && p.Counter <= w.top {
		// Beacons get strict freshness, not the reordering window: a
		// HELLO carries topology state, and an old-but-never-seen one
		// replayed out of position would install routes to wherever the
		// origin used to be (a wormhole: the attacker teleports a stale
		// beacon past its one-hop reach). Beacons are broadcast once and
		// never forwarded or retransmitted, so a legitimate one always
		// arrives with the highest counter yet heard from its origin.
		return ErrReplay
	}
	if !w.admit(p.Counter) {
		return ErrReplay
	}
	l.scratch = append(l.scratch[:0], p.Payload...)
	if p.SecFlags&packet.SecFlagEncrypted != 0 {
		ctrXOR(s, p.Src, p.Counter, l.scratch)
	}
	p.Payload = l.scratch
	return nil
}

// VerifyOnly checks a packet's MIC without touching replay windows or
// the scratch buffer, and reports whether it verified and (if encrypted)
// returns the decrypted payload as a fresh allocation. Offline tooling
// (packetdump) uses it; the engine path uses Open.
func (l *Link) VerifyOnly(p *packet.Packet) ([]byte, bool) {
	s, err := l.session(p.Src, l.cur, l.curGen)
	if err != nil || l.mic(s, p, p.Payload) != p.MIC {
		return nil, false
	}
	pt := append([]byte(nil), p.Payload...)
	if p.SecFlags&packet.SecFlagEncrypted != 0 {
		ctrXOR(s, p.Src, p.Counter, pt)
	}
	return pt, true
}

// ReplayCheck runs just the replay-window admission for (origin,
// counter), for tooling that verifies with VerifyOnly first.
func (l *Link) ReplayCheck(src packet.Address, counter uint32) bool {
	w := l.windows[src]
	if w == nil {
		w = &window{}
		l.windows[src] = w
	}
	return w.admit(counter)
}

// Key rotation rides the gateway downlink channel as a typed
// internal/control command (OpRekey); core intercepts it on delivery and
// rotates the node's Link instead of handing it to the application. The
// ad-hoc magic-prefixed rekey payload this package used to define was
// promoted into that codec.
